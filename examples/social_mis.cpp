// Example: independent moderator committees on a social graph (Sec. 5.3).
//
// On a power-law "follower" graph we pick (1) a maximal independent set of
// moderators — no two moderators adjacent, everyone has a moderator
// neighbor; (2) a greedy coloring that partitions all users into
// independent committees; (3) a maximal matching for peer-review pairing.
// All three run with TAS-tree / round wake-ups and are verified against
// their sequential greedy counterparts.
#include <chrono>
#include <cstdio>
#include <functional>

#include "algos/coloring.h"
#include "algos/matching.h"
#include "algos/mis.h"
#include "core/context.h"
#include "graph/generators.h"
#include "parallel/random.h"

namespace {
double secs(std::function<void()> f) {
  auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

int main() {
  const pp::context ctx = pp::default_context();  // backend/workers/seed in one place
  auto g = pp::rmat_graph(1 << 17, 1 << 21, 2718);
  std::printf("social graph: %u users, %zu follow edges, max degree %u\n", g.num_vertices(),
              g.num_edges(), g.max_degree());

  auto prio = pp::random_permutation(g.num_vertices(), 31);
  pp::mis_result mis;
  double t_mis = secs([&] { mis = pp::mis_tas(g, prio, ctx); });
  std::printf("\nmoderators (greedy MIS, TAS trees): %zu selected in %.3fs\n", mis.mis_size,
              t_mis);
  std::printf("  maximal independent: %s, wake-chain depth %zu\n",
              pp::is_maximal_independent_set(g, mis.in_mis) ? "yes" : "NO", mis.stats.substeps);

  pp::coloring_result col;
  double t_col = secs([&] { col = pp::coloring_tas(g, prio, ctx); });
  std::printf("\ncommittees (Jones-Plassmann coloring): %u committees in %.3fs\n",
              col.num_colors, t_col);
  std::printf("  valid: %s (max degree + 1 = %u is the greedy bound)\n",
              pp::is_valid_coloring(g, col.color) ? "yes" : "NO", g.max_degree() + 1);

  auto eprio = pp::random_permutation(g.num_edges(), 77);
  pp::matching_result match;
  double t_match = secs([&] { match = pp::matching_rounds(g, eprio, ctx); });
  std::printf("\npeer-review pairs (greedy matching): %zu pairs in %.3fs, %zu rounds\n",
              match.matching_size, t_match, match.stats.rounds);
  std::printf("  maximal: %s, identical to sequential greedy: %s\n",
              pp::is_maximal_matching(g, match.partner) ? "yes" : "NO",
              match.partner == pp::matching_sequential(g, eprio, ctx).partner ? "yes" : "NO");
  return 0;
}
