// Example: entropy coding with a parallel Huffman tree (Sec. 4.3).
//
// Builds byte frequencies of a synthetic Zipf-distributed corpus, builds
// the Huffman code with the phase-parallel constructor, encodes and
// decodes a sample, and reports the compression ratio against the 8-bit
// baseline (and against the entropy bound).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "algos/huffman.h"
#include "core/context.h"
#include "parallel/random.h"

namespace {

// Assign canonical code lengths from the parent array.
std::vector<uint32_t> leaf_depths(const pp::huffman_result& h, size_t n) {
  std::vector<uint32_t> depth(2 * n - 1, 0);
  for (size_t i = 2 * n - 1; i-- > 0;)
    if (h.parent[i] != pp::kNoParent) depth[i] = depth[h.parent[i]] + 1;
  depth.resize(n);
  return depth;
}

}  // namespace

int main() {
  // Synthetic corpus: 256 symbols, Zipf-ish usage like natural text.
  constexpr size_t corpus_len = 4'000'000;
  pp::random_stream rs(99);
  std::vector<uint64_t> count(256, 1);
  std::vector<uint8_t> corpus(corpus_len);
  for (size_t i = 0; i < corpus_len; ++i) {
    // Zipf by inverse CDF over ranks
    double u = std::max(rs.ith_double(i), 1e-12);
    int sym = static_cast<int>(255.0 * std::pow(u, 3.0));  // skewed toward 0
    corpus[i] = static_cast<uint8_t>(sym);
    count[sym]++;
  }

  // Huffman wants frequencies sorted ascending; remember the permutation.
  std::vector<int> sym_of_rank(256);
  for (int s = 0; s < 256; ++s) sym_of_rank[s] = s;
  std::sort(sym_of_rank.begin(), sym_of_rank.end(),
            [&](int a, int b) { return count[a] < count[b]; });
  std::vector<uint64_t> freqs(256);
  for (int r = 0; r < 256; ++r) freqs[r] = count[sym_of_rank[r]];

  auto tree = pp::huffman_parallel(freqs, pp::default_context());
  auto depths = leaf_depths(tree, 256);
  std::vector<uint32_t> code_len(256);
  for (int r = 0; r < 256; ++r) code_len[sym_of_rank[r]] = depths[r];

  uint64_t bits = 0;
  for (auto b : corpus) bits += code_len[b];
  double entropy = 0;
  for (int s = 0; s < 256; ++s) {
    double p = static_cast<double>(count[s]) / (corpus_len + 256);
    entropy -= p * std::log2(p);
  }
  std::printf("corpus: %zu bytes, %u distinct symbols\n", corpus.size(), 256u);
  std::printf("huffman tree: height %u, built in %zu parallel rounds, WPL %llu\n", tree.height,
              tree.stats.rounds, (unsigned long long)tree.wpl);
  std::printf("encoded size: %.2f MB vs %.2f MB raw  (%.3f bits/symbol; entropy %.3f)\n",
              bits / 8.0 / 1e6, corpus.size() / 1e6, static_cast<double>(bits) / corpus.size(),
              entropy);

  // sanity roundtrip on a prefix: decode by walking the tree
  // children[parent] -> (left, right) reconstructed from the parent array
  std::vector<std::pair<int, int>> child(2 * 256 - 1, {-1, -1});
  for (int i = 0; i < 2 * 256 - 2; ++i) {
    auto& c = child[tree.parent[i]];
    (c.first < 0 ? c.first : c.second) = i;
  }
  // encode+decode first 1000 symbols
  std::string bitstream;
  std::vector<std::string> codes(256);
  for (int r = 0; r < 256; ++r) {
    std::string code;
    for (uint32_t node = r; tree.parent[node] != pp::kNoParent; node = tree.parent[node])
      code += (child[tree.parent[node]].first == static_cast<int>(node)) ? '0' : '1';
    std::reverse(code.begin(), code.end());
    codes[sym_of_rank[r]] = code;
  }
  for (size_t i = 0; i < 1000; ++i) bitstream += codes[corpus[i]];
  size_t pos = 0;
  bool ok = true;
  for (size_t i = 0; i < 1000 && ok; ++i) {
    int node = 2 * 256 - 2;  // root
    while (child[node].first >= 0) node = (bitstream[pos++] == '0') ? child[node].first : child[node].second;
    ok = sym_of_rank[node] == corpus[i];
  }
  std::printf("roundtrip decode of 1000 symbols: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
