// Quickstart: the phase-parallel library in five minutes.
//
// The library has one configuration surface (pp::context) and one dispatch
// surface (pp::registry). A context carries the backend, worker count,
// seed, and policy knobs; the registry runs any solver by name on a typed
// problem input and returns a uniform run_result envelope (payload +
// phase statistics + wall time + the context facts).
//
// Shown here:
//   * building a context and running solvers through the registry,
//   * a Type-2 algorithm (LIS: pivot wake-ups on the 2D range tree),
//   * a Type-1 algorithm (activity selection: range-query frontiers),
//   * a TAS-tree algorithm (greedy MIS: asynchronous wake-ups),
//   * calling a solver directly with a context (no registry),
// plus the runtime statistics (rounds == rank, wake-up counts) that make
// the paper's round-efficiency claims observable.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/registry.h"
#include "graph/generators.h"
#include "parallel/random.h"

int main() {
  // One context for the whole program: native work-stealing backend,
  // seed 1. Everything below is reproducible from this line.
  pp::context ctx = pp::context{}.with_backend(pp::backend_kind::native).with_seed(1);
  std::printf("phase-parallel quickstart (%u workers, %s backend)\n\n", pp::num_workers(ctx),
              std::string(pp::backend_name(ctx.backend)).c_str());

  // --- LIS (Type 2) through the registry ------------------------------------
  pp::sequence_input lis_in;
  lis_in.a = {6, 8, 4, 7, 3, 9, 1, 5, 2};  // Fig. 1 of the paper
  auto lis = pp::registry::run("lis/parallel", pp::problem_input(lis_in), ctx);
  const auto& lis_val = std::get<pp::lis_result>(lis.value);
  std::printf("LIS of {6 8 4 7 3 9 1 5 2}: length %lld, %zu rounds, %.2f wake-ups/object\n",
              (long long)lis_val.length, lis.stats.rounds, lis.stats.avg_wakeups());
  auto sub = pp::lis_reconstruct(lis_in.a, lis_val.dp);
  std::printf("  one optimal subsequence:");
  for (auto i : sub) std::printf(" %lld", (long long)lis_in.a[i]);
  std::printf("\n  envelope: solver=%s backend=%s time=%.4fs\n\n", lis.solver.c_str(),
              std::string(pp::backend_name(lis.backend)).c_str(), lis.seconds);

  // --- Activity selection (Type 1) on a generated default input -------------
  auto act_in = pp::registry::instance().make_input("activity", 100'000, ctx.seed);
  auto sel = pp::registry::run("activity/type1", act_in, ctx);
  std::printf("activity selection on 100000 activities: best weight %lld\n",
              (long long)pp::score_of(sel.value));
  std::printf("  rank(S) = %zu rounds, largest frontier %zu\n\n", sel.stats.rounds,
              sel.stats.max_frontier);

  // --- Greedy MIS (TAS trees): asynchronous wake-ups -------------------------
  pp::graph_input mis_in;
  mis_in.g = pp::rmat_graph(1 << 14, 1 << 17, 7);
  mis_in.vertex_priority = pp::random_permutation(mis_in.g.num_vertices(), 13);
  pp::problem_input mis_pin(std::move(mis_in));
  auto mis = pp::registry::run("mis/tas", mis_pin, ctx);
  auto mis_seq = pp::registry::run("mis/sequential", mis_pin, ctx);
  const auto& g = std::get<pp::graph_input>(mis_pin).g;
  std::printf("greedy MIS on rmat(n=%u, m=%zu): |MIS| = %lld, wake-chain depth %zu\n",
              g.num_vertices(), g.num_edges(), (long long)pp::score_of(mis.value),
              mis.stats.substeps);
  std::printf("  same set as sequential greedy: %s\n\n",
              std::get<pp::mis_result>(mis.value).in_mis ==
                      std::get<pp::mis_result>(mis_seq.value).in_mis
                  ? "yes"
                  : "NO (bug!)");

  // --- Direct call with a context (no registry) ------------------------------
  // Solvers also take a context directly; the registry is sugar over this.
  auto moles = pp::random_moles(50'000, 1'000'000, 20'000, 3);
  auto whac = pp::whac_parallel(moles, ctx.with_pivot(pp::pivot_policy::rightmost));
  std::printf("whac-a-mole with %zu moles: best plan hits %lld (in %zu rounds)\n", moles.size(),
              (long long)whac.best, whac.stats.rounds);

  // --- The same run on another backend is one .with_backend away -------------
  // (smaller instance: the OpenMP backend pays a parallel-region setup per
  // round, which dominates on round-heavy inputs)
  auto whac_in = pp::whac_input{pp::random_moles(5'000, 1'000'000, 20'000, 3)};
  auto small_native = pp::registry::run("whac/parallel", pp::problem_input(whac_in), ctx);
  auto omp = pp::registry::run("whac/parallel", pp::problem_input(whac_in),
                               ctx.with_backend(pp::backend_kind::openmp));
  std::printf("  openmp backend agrees: %s (%.4fs)\n",
              pp::score_of(omp.value) == pp::score_of(small_native.value) ? "yes" : "NO (bug!)",
              omp.seconds);
  return 0;
}
