// Quickstart: the phase-parallel library in five minutes.
//
// Shows the three kinds of algorithms the library ships:
//   * a Type-1 algorithm (activity selection: range-query frontiers),
//   * a Type-2 algorithm (LIS: pivot wake-ups on the 2D range tree),
//   * a TAS-tree algorithm (greedy MIS: asynchronous wake-ups),
// plus the runtime statistics (rounds == rank, wake-up counts) that make
// the paper's round-efficiency claims observable.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "algos/activity.h"
#include "algos/lis.h"
#include "algos/mis.h"
#include "algos/whac.h"
#include "graph/generators.h"
#include "parallel/random.h"

int main() {
  std::printf("phase-parallel quickstart (%u workers, %s backend)\n\n", pp::num_workers(),
              std::string(pp::backend_name(pp::get_backend())).c_str());

  // --- LIS (Type 2): longest increasing subsequence -------------------------
  std::vector<int64_t> a = {6, 8, 4, 7, 3, 9, 1, 5, 2};  // Fig. 1 of the paper
  auto lis = pp::lis_parallel(a);
  std::printf("LIS of {6 8 4 7 3 9 1 5 2}: length %lld, %zu rounds, %.2f wake-ups/object\n",
              (long long)lis.length, lis.stats.rounds, lis.stats.avg_wakeups());
  auto sub = pp::lis_reconstruct(a, lis.dp);
  std::printf("  one optimal subsequence:");
  for (auto i : sub) std::printf(" %lld", (long long)a[i]);
  std::printf("\n\n");

  // --- Activity selection (Type 1): range-query frontiers -------------------
  auto acts = pp::random_activities(100'000, 1'000'000, 800.0, 200.0, 100, 1);
  auto sel = pp::activity_select_type1(acts);
  std::printf("activity selection on %zu activities: best weight %lld\n", acts.size(),
              (long long)sel.best);
  std::printf("  rank(S) = %zu rounds, largest frontier %zu\n\n", sel.stats.rounds,
              sel.stats.max_frontier);

  // --- Greedy MIS (TAS trees): asynchronous wake-ups -------------------------
  auto g = pp::rmat_graph(1 << 14, 1 << 17, 7);
  auto prio = pp::random_permutation(g.num_vertices(), 13);
  auto mis = pp::mis_tas(g, prio);
  std::printf("greedy MIS on rmat(n=%u, m=%zu): |MIS| = %zu, wake-chain depth %zu\n",
              g.num_vertices(), g.num_edges(), mis.mis_size, mis.stats.substeps);
  std::printf("  same set as sequential greedy: %s\n\n",
              mis.in_mis == pp::mis_sequential(g, prio).in_mis ? "yes" : "NO (bug!)");

  // --- Whac-A-Mole (Appendix B): LIS in rotated coordinates ------------------
  auto moles = pp::random_moles(50'000, 1'000'000, 20'000, 3);
  auto whac = pp::whac_parallel(moles);
  std::printf("whac-a-mole with %zu moles: best plan hits %lld (in %zu rounds)\n", moles.size(),
              (long long)whac.best, whac.stats.rounds);
  return 0;
}
