// Example: revenue-maximal batch-job scheduling on an exclusive resource.
//
// A queue of batch jobs (submission window [start, end), payment weight)
// competes for one exclusive machine; we pick the non-overlapping subset
// maximizing total payment — weighted activity selection (Sec. 4.1). The
// example compares the sequential DP with both parallel variants and
// reconstructs the winning schedule from the dp array.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "algos/activity.h"
#include "core/context.h"

namespace {

double secs(std::function<void()> f) {
  auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Walk the dp array backwards to extract one optimal schedule.
std::vector<size_t> reconstruct(std::span<const pp::activity> acts,
                                std::span<const int64_t> dp) {
  if (acts.empty()) return {};
  size_t cur = 0;
  for (size_t i = 1; i < acts.size(); ++i)
    if (dp[i] > dp[cur]) cur = i;
  std::vector<size_t> picked = {cur};
  int64_t need = dp[cur] - acts[cur].weight;
  int64_t bound = acts[cur].start;
  for (size_t i = cur; i-- > 0 && need > 0;) {
    if (acts[i].end <= bound && dp[i] == need) {
      picked.push_back(i);
      need -= acts[i].weight;
      bound = acts[i].start;
    }
  }
  std::reverse(picked.begin(), picked.end());
  return picked;
}

}  // namespace

int main() {
  // One day of jobs: bursty arrivals, durations 1-30 min, payments 1-1000.
  constexpr size_t n_jobs = 500'000;
  auto jobs = pp::random_activities(n_jobs, 24 * 3600, 8 * 60.0, 6 * 60.0, 1000, 2024);
  std::printf("scheduling %zu candidate jobs on one machine\n", jobs.size());

  const pp::context ctx = pp::default_context();
  pp::activity_result seq, par1, par2;
  double ts = secs([&] { seq = pp::activity_select_seq(jobs, ctx); });
  double t1 = secs([&] { par1 = pp::activity_select_type1_flat(jobs, ctx); });
  double t2 = secs([&] { par2 = pp::activity_select_type2(jobs, ctx); });

  std::printf("best total payment: %lld (seq %.3fs | type1 %.3fs | type2 %.3fs)\n",
              (long long)seq.best, ts, t1, t2);
  std::printf("agreement: %s; rank of the day's schedule: %zu rounds\n",
              (seq.best == par1.best && seq.best == par2.best) ? "all equal" : "MISMATCH",
              par1.stats.rounds);

  auto picked = reconstruct(jobs, par1.dp);
  int64_t total = 0;
  for (auto i : picked) total += jobs[i].weight;
  std::printf("reconstructed schedule: %zu jobs, total %lld (matches best: %s)\n",
              picked.size(), (long long)total, total == seq.best ? "yes" : "NO");
  std::printf("first three slots:\n");
  for (size_t k = 0; k < std::min<size_t>(3, picked.size()); ++k) {
    auto& j = jobs[picked[k]];
    std::printf("  job #%zu  [%5lld s .. %5lld s)  pays %lld\n", picked[k], (long long)j.start,
                (long long)j.end, (long long)j.weight);
  }
  return 0;
}
