// Example: longest upward run in a noisy price series (Sec. 5.2).
//
// A drifting random price series stands in for intraday tick data; the
// longest (strictly) increasing subsequence is the maximal "momentum
// chain". Compares the classic sequential DP with the phase-parallel
// Algorithm 3, reconstructs the chain, and reports the wake-up behaviour.
#include <chrono>
#include <cstdio>
#include <functional>

#include "algos/lis.h"
#include "core/context.h"

namespace {
double secs(std::function<void()> f) {
  auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

int main() {
  constexpr size_t n_ticks = 150'000;
  // cents: upward drift 2c/tick + heavy noise
  auto prices = pp::lis_line_pattern(n_ticks, 2, 500'000, 314);
  std::printf("price series: %zu ticks\n", n_ticks);

  const pp::context ctx = pp::default_context().with_seed(314);
  pp::lis_result classic, par;
  double tc = secs([&] { classic = pp::lis_sequential(prices, ctx); });
  double tp = secs([&] { par = pp::lis_parallel(prices, ctx); });
  std::printf("longest momentum chain: %lld ticks (classic %.3fs, phase-parallel %.3fs)\n",
              (long long)par.length, tc, tp);
  std::printf("agreement: %s | rounds = chain length = %zu | avg wake-ups %.2f\n",
              classic.length == par.length ? "yes" : "NO", par.stats.rounds,
              par.stats.avg_wakeups());

  auto chain = pp::lis_reconstruct(prices, par.dp);
  std::printf("chain touches ticks %u .. %u; first/last prices %lld -> %lld cents\n",
              chain.front(), chain.back(), (long long)prices[chain.front()],
              (long long)prices[chain.back()]);

  // weighted variant: weight = trade volume; maximize traded volume along
  // an increasing chain
  auto volume = pp::tabulate<int32_t>(n_ticks, [](size_t i) {
    return 1 + static_cast<int32_t>(pp::hash64(i) % 100);
  });
  auto wpar = pp::lis_parallel_weighted(prices, volume, ctx);
  std::printf("volume-weighted momentum chain: total volume %lld\n", (long long)wpar.length);
  return 0;
}
