// Example: route planning on a road-like grid network (Sec. 4.3 + 6.3).
//
// Builds a city-scale grid with travel-time weights, runs Delta-stepping
// from a depot with several Delta choices (including the phase-parallel
// Delta = w*), verifies them against Dijkstra, and prints a sample route.
#include <chrono>
#include <cstdio>
#include <functional>

#include "algos/sssp.h"
#include "core/context.h"
#include "graph/generators.h"

namespace {
double secs(std::function<void()> f) {
  auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

int main() {
  constexpr uint32_t side = 400;  // 160k intersections
  auto grid = pp::grid_graph(side, side);
  auto roads = pp::add_weights(grid, 30, 600, 5);  // 30s..10min per segment
  std::printf("road grid: %u intersections, %zu directed segments, w*=%us\n",
              roads.num_vertices(), roads.num_edges(), roads.min_weight());

  const pp::context ctx = pp::default_context();
  pp::vertex_t depot = 0;
  pp::sssp_result dj;
  double t_dj = secs([&] { dj = pp::sssp_dijkstra(roads, depot, ctx); });
  std::printf("%-28s %8.3fs\n", "dijkstra (sequential)", t_dj);

  for (uint32_t delta : {roads.min_weight(), 4 * roads.min_weight(), 64 * roads.min_weight()}) {
    pp::sssp_result ds;
    double t = secs([&] { ds = pp::sssp_delta_stepping(roads, depot, delta, ctx); });
    std::printf("delta-stepping (Delta=%5u)  %8.3fs   buckets=%zu substeps=%zu  %s\n", delta, t,
                ds.stats.rounds, ds.stats.substeps,
                ds.dist == dj.dist ? "distances OK" : "MISMATCH");
  }

  // Print the travel time to the far corner and a coarse route preview.
  pp::vertex_t corner = side * side - 1;
  std::printf("\ndepot -> far corner: %lld seconds of travel\n", (long long)dj.dist[corner]);
  // greedy backward walk along tight edges to recover a route
  std::vector<pp::vertex_t> route = {corner};
  pp::vertex_t cur = corner;
  while (cur != depot) {
    auto nbrs = roads.out_neighbors(cur);
    auto wts = roads.out_weights(cur);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (dj.dist[nbrs[i]] + wts[i] == dj.dist[cur]) {
        cur = nbrs[i];
        route.push_back(cur);
        break;
      }
    }
  }
  std::printf("route has %zu segments; first hops:", route.size() - 1);
  for (size_t k = route.size(); k-- > route.size() - std::min<size_t>(6, route.size());)
    std::printf(" %u", route[k]);
  std::printf(" ...\n");
  return 0;
}
