// ppfuzz: registry-driven nightly fuzzer (the ROADMAP soak harness, grown
// up from tests/test_soak.cpp's fixed sweep).
//
// Until --duration expires, repeatedly: pick a random registered solver, a
// random backend, a random seed, and a random size n (log-uniform in
// [50, --max-n]); build the problem's default input; run the solver and
// its family's sequential reference on the same input; compare canonical
// scores (pp::score_of). Relaxed-paradigm solvers (*/relaxed) are instead
// validated structurally (tests/checkers.h) — their schedules are
// nondeterministic, so score equality would be the wrong oracle.
// On a mismatch the failure is *minimized* — n is
// halved while the mismatch reproduces — and printed as a ready-to-run
// ppdriver command line:
//
//   ppfuzz: FAILURE solver=mis/tas backend=native seed=123 n=800 ...
//   reproduce: ppdriver run mis/tas --n 800 --seed 123 --backend native
//
// Exit code: 0 = all iterations agreed, 1 = at least one failure (the
// nightly workflow fails on it). PP_TEST_SKIP_OPENMP=1 drops the OpenMP
// backend, same as the test suite (for TSan-instrumented builds).
//
// Already-exercised (solver, backend, input-fingerprint, seed) quadruples
// are skipped (content-addressed corpus dedup; the "deduped" count in the
// summary line), so long soaks spend their budget on fresh points.
//
// flags: --duration SEC (default 10), --max-n N (default 4000),
//        --seed S (base for the run-to-run RNG, default 1),
//        --verbose (print every iteration)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/registry.h"
#include "parallel/random.h"
#include "../tests/checkers.h"

namespace {

using pp::registry;

// Sequential reference of a solver family ("lis/parallel" -> family "lis").
// Every family names its reference "<family>/sequential" except sssp,
// whose sequential baseline is Dijkstra.
std::string reference_of(const std::string& solver_name) {
  std::string family = solver_name.substr(0, solver_name.find('/'));
  std::string ref = family + "/sequential";
  if (!registry::instance().contains(ref) && family == "sssp") ref = "sssp/dijkstra";
  return ref;
}

struct trial {
  std::string solver;
  std::string reference;
  pp::backend_kind backend = pp::backend_kind::native;
  uint64_t seed = 0;
  size_t n = 0;
};

// Run one (solver, backend, seed, n) comparison. Returns true on
// agreement; on disagreement fills the two scores. Exceptions count as
// failures too (what() into `error`).
//
// Relaxed-paradigm solvers are nondeterministic in everything but the
// structure of their answer, so for them "agree" means structural validity
// (a maximal independent set, a maximal matching, a proper coloring —
// exact distances for SSSP), checked against the same reference run the
// deterministic branch scores against.
bool agree(const trial& t, int64_t& ref_score, int64_t& got_score, std::string& error) {
  try {
    const pp::solver_info* si = registry::instance().info(t.solver);
    auto input = registry::instance().make_input(si->problem, t.n, t.seed);
    auto ref = registry::run(
        t.reference, input,
        pp::context{}.with_backend(pp::backend_kind::sequential).with_seed(t.seed));
    auto got =
        registry::run(t.solver, input, pp::context{}.with_backend(t.backend).with_seed(t.seed));
    ref_score = pp::score_of(ref.value);
    got_score = pp::score_of(got.value);
    if (pp::paradigm_of(*si) == pp::solver_paradigm::relaxed) {
      std::string why;
      if (pp_check::structurally_valid(t.solver, input, got.value, ref.value, &why)) return true;
      error = why;
      return false;
    }
    return ref_score == got_score;
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--duration SEC] [--max-n N] [--seed S] [--verbose]\n"
               "fuzzes every registered solver against its sequential reference on\n"
               "random (backend, seed, n) triples until the duration expires;\n"
               "mismatches are minimized and printed as ppdriver repro lines.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double duration = 10.0;
  size_t max_n = 4000;
  uint64_t base_seed = 1;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--duration") == 0) {
      duration = std::atof(need("--duration"));
    } else if (std::strcmp(argv[i], "--max-n") == 0) {
      max_n = static_cast<size_t>(std::strtoull(need("--max-n"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      base_seed = std::strtoull(need("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (max_n < 50) max_n = 50;

  // Candidate solvers: everything that is not its own reference.
  std::vector<trial> candidates;
  for (const auto& s : registry::instance().solvers()) {
    std::string ref = reference_of(s.name);
    if (ref == s.name) continue;
    if (!registry::instance().contains(ref)) continue;
    candidates.push_back({s.name, ref, pp::backend_kind::native, 0, 0});
  }
  std::vector<pp::backend_kind> backends{pp::backend_kind::sequential,
                                         pp::backend_kind::openmp, pp::backend_kind::native};
  if (std::getenv("PP_TEST_SKIP_OPENMP") != nullptr) backends.erase(backends.begin() + 1);

  pp::random_stream rng(pp::hash64(base_seed ^ 0xf022a3ull) | 1);
  auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  uint64_t iters = 0;
  uint64_t failures = 0;
  uint64_t deduped = 0;
  // Content-addressed corpus: every comparison already exercised, keyed by
  // (solver, backend, input fingerprint, seed). The log-uniform size draw
  // lands on small n constantly and the default factories make the input a
  // pure function of (problem, n, seed), so without dedup a long soak
  // re-runs quadruples whose outcome is already decided — skipping them
  // spends the duration budget on fresh points instead.
  std::set<std::tuple<std::string, pp::backend_kind, pp::fingerprint, uint64_t>> corpus;
  while (elapsed() < duration) {
    trial t = candidates[rng.ith_bounded(iters * 4 + 0, candidates.size())];
    t.backend = backends[rng.ith_bounded(iters * 4 + 1, backends.size())];
    // Seed from a bounded 1024-slot pool, not the full 64-bit space: the
    // input is a pure function of (problem, n, seed), so fuzz diversity
    // lives in the (solver, backend, n, seed) cross product either way —
    // but a bounded pool lets long soaks revisit a quadruple, which the
    // fingerprint corpus below detects and skips instead of re-proving.
    t.seed = pp::hash64(rng.ith_bounded(iters * 4 + 2, 1024));
    // log-uniform n in [50, max_n]: squash a uniform draw through x^2 so
    // small sizes (where phase boundaries and empty frontiers live) are
    // drawn as often as big ones.
    double u = static_cast<double>(rng.ith_bounded(iters * 4 + 3, 1u << 20)) /
               static_cast<double>(1u << 20);
    size_t n = 50 + static_cast<size_t>(u * u * static_cast<double>(max_n - 50));
    t.n = n;
    ++iters;

    try {
      const pp::solver_info* si = registry::instance().info(t.solver);
      auto fp = pp::fingerprint_of(registry::instance().make_input(si->problem, t.n, t.seed));
      if (!corpus.insert({t.solver, t.backend, fp, t.seed}).second) {
        ++deduped;
        continue;
      }
    } catch (const std::exception&) {
      // Couldn't even build the input — fall through so agree() rebuilds
      // it and reports the exception as a proper minimized failure.
    }

    int64_t ref_score = 0, got_score = 0;
    std::string error;
    bool ok = agree(t, ref_score, got_score, error);
    if (verbose) {
      std::printf("ppfuzz: %-30s backend=%-10s seed=%llu n=%zu %s\n", t.solver.c_str(),
                  std::string(pp::backend_name(t.backend)).c_str(),
                  static_cast<unsigned long long>(t.seed), t.n, ok ? "ok" : "MISMATCH");
    }
    if (ok) continue;

    ++failures;
    // Minimize: halve n while the mismatch still reproduces (the input is
    // regenerated per size, so a shrunk case is a real standalone repro).
    size_t fail_n = t.n;
    while (fail_n > 50) {
      trial smaller = t;
      smaller.n = fail_n / 2 < 50 ? 50 : fail_n / 2;
      if (smaller.n == fail_n) break;
      int64_t r2 = 0, g2 = 0;
      std::string e2;
      if (agree(smaller, r2, g2, e2)) break;
      fail_n = smaller.n;
      ref_score = r2;
      got_score = g2;
      error = e2;
    }
    std::string why = !error.empty() ? error
                                     : "reference " + t.reference + " score " +
                                           std::to_string(ref_score) + " vs " +
                                           std::to_string(got_score);
    std::printf("ppfuzz: FAILURE solver=%s backend=%s seed=%llu n=%zu (%s)\n",
                t.solver.c_str(), std::string(pp::backend_name(t.backend)).c_str(),
                static_cast<unsigned long long>(t.seed), fail_n, why.c_str());
    std::printf("reproduce: ppdriver run %s --n %zu --seed %llu --backend %s\n",
                t.solver.c_str(), fail_n, static_cast<unsigned long long>(t.seed),
                std::string(pp::backend_name(t.backend)).c_str());
    std::fflush(stdout);
  }

  std::printf("ppfuzz: %llu iterations in %.1f s, %llu deduped, %llu failure(s)\n",
              static_cast<unsigned long long>(iters), elapsed(),
              static_cast<unsigned long long>(deduped),
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}
