// ppdriver: registry-driven CLI for every solver in the library.
//
//   ppdriver list                      # all solvers (name, problem, description)
//   ppdriver problems                  # all problems + default input descriptors
//   ppdriver run <solver> [options]    # generate an input, run, print the envelope
//
// run options:
//   --n N              input size (default 100000)
//   --seed S           input + execution seed (default 1)
//   --backend B        native | openmp | sequential   (default: process default)
//   --workers W        worker count (0 = backend default)
//   --grain G          parallel_for grain (0 = auto)
//   --pivot P          rightmost | random   (Type-2 pivot policy)
//   --repeats R        run R times, report min/mean seconds (default 1)
//
// Example:
//   ppdriver run lis/parallel --n 1000000 --backend openmp --workers 8
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/registry.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s list | problems | run <solver> [--n N] [--seed S] [--backend B]\n"
               "       [--workers W] [--grain G] [--pivot rightmost|random] [--repeats R]\n",
               argv0);
  return 2;
}

int cmd_list() {
  std::printf("%-32s %-10s %s\n", "solver", "problem", "description");
  for (const auto& s : pp::registry::instance().solvers())
    std::printf("%-32s %-10s %s\n", s.name.c_str(), s.problem.c_str(), s.description.c_str());
  return 0;
}

int cmd_problems() {
  std::printf("%-10s %s\n", "problem", "default input");
  for (const auto& p : pp::registry::instance().problems())
    std::printf("%-10s %s\n", p.name.c_str(), p.description.c_str());
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  std::string solver = argv[2];
  size_t n = 100'000;
  int repeats = 1;
  pp::context ctx = pp::default_context();

  for (int i = 3; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--n") == 0) {
      n = static_cast<size_t>(std::strtoull(need("--n"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      ctx.seed = std::strtoull(need("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--backend") == 0) {
      const char* b = need("--backend");
      auto kind = pp::parse_backend(b);
      if (!kind) {
        std::fprintf(stderr, "%s: unknown backend '%s'\n", argv[0], b);
        return 2;
      }
      ctx.backend = *kind;
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      ctx.workers = static_cast<unsigned>(std::strtoul(need("--workers"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--grain") == 0) {
      ctx.grain = static_cast<size_t>(std::strtoull(need("--grain"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--pivot") == 0) {
      const char* p = need("--pivot");
      if (std::strcmp(p, "rightmost") == 0) {
        ctx.pivot = pp::pivot_policy::rightmost;
      } else if (std::strcmp(p, "random") == 0 || std::strcmp(p, "uniform_random") == 0) {
        ctx.pivot = pp::pivot_policy::uniform_random;
      } else {
        std::fprintf(stderr, "%s: unknown pivot policy '%s'\n", argv[0], p);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--repeats") == 0) {
      repeats = std::atoi(need("--repeats"));
      if (repeats < 1) repeats = 1;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], argv[i]);
      return 2;
    }
  }

  auto& reg = pp::registry::instance();
  if (!reg.contains(solver)) {
    std::fprintf(stderr, "%s: unknown solver '%s' (try '%s list')\n", argv[0], solver.c_str(),
                 argv[0]);
    return 1;
  }
  std::string problem;
  for (const auto& s : reg.solvers())
    if (s.name == solver) problem = s.problem;

  auto input = reg.make_input(problem, n, ctx.seed);

  double min_s = 1e100, sum_s = 0;
  pp::run_result<pp::solver_value> last;
  for (int rep = 0; rep < repeats; ++rep) {
    last = pp::registry::run(solver, input, ctx);
    min_s = std::min(min_s, last.seconds);
    sum_s += last.seconds;
  }

  std::printf("solver   = %s\n", last.solver.c_str());
  std::printf("problem  = %s (n = %zu, seed = %llu)\n", problem.c_str(), n,
              static_cast<unsigned long long>(ctx.seed));
  // last.workers is the width the run *actually* executed on (pool lease /
  // omp num_threads), not a pre-run guess from the context.
  std::printf("backend  = %s (workers = %u, grain = %zu, pivot = %s)\n",
              std::string(pp::backend_name(last.backend)).c_str(), last.workers,
              ctx.grain, pp::pivot_policy_name(ctx.pivot));
  std::printf("result   = %s\n", pp::summary_of(last.value).c_str());
  std::printf("score    = %lld\n", static_cast<long long>(pp::score_of(last.value)));
  if (repeats > 1) {
    std::printf("time     = %.6f s min, %.6f s mean over %d runs\n", min_s,
                sum_s / repeats, repeats);
  } else {
    std::printf("time     = %.6f s\n", last.seconds);
  }
  const auto& st = last.stats;
  std::printf("stats    = rounds %zu, processed %zu, max_frontier %zu, wakeups %zu, "
              "substeps %zu, relaxations %zu\n",
              st.rounds, st.processed, st.max_frontier, st.wakeup_attempts, st.substeps,
              st.relaxations);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  try {
    if (std::strcmp(argv[1], "list") == 0) return cmd_list();
    if (std::strcmp(argv[1], "problems") == 0) return cmd_problems();
    if (std::strcmp(argv[1], "run") == 0) return cmd_run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
  return usage(argv[0]);
}
