// ppdriver: registry-driven CLI for every solver in the library.
//
//   ppdriver list [--json]             # all solvers (name, problem, paradigm,
//                                      # relax knob, phase ref, description)
//   ppdriver problems                  # all problems + default input descriptors
//   ppdriver run <solver> [options]    # generate an input, run, print the envelope
//   ppdriver batch <solver> [options]  # generate K inputs, run them as one batch
//   ppdriver golden [--n N] [--seed S] # print the golden-result table rows
//                                      # (one per solver) for tests/golden_results.inc
//
// shared options:
//   --n N              input size (default 100000)
//   --seed S           base seed (default 1): input i is built from
//                      derive_seed(S, i) for batch, S for run; execution
//                      seeds follow the same rule
//   --backend B        native | openmp | sequential   (default: process default)
//   --workers W        worker count (0 = backend default)
//   --grain G          parallel_for grain (0 = auto)
//   --pivot P          rightmost | random   (Type-2 pivot policy)
//   --relax-k K        k-MultiQueue relaxation factor (relaxed solvers only)
//   --json             print the machine-readable envelope instead of text
//
// run options:
//   --repeats R        run R times through run_batch (one pool lease, same
//                      input + seed each repeat); every repeat's envelope
//                      survives into --json output, which is always the
//                      batch envelope (count == R, even for R = 1)
//   --trace PATH       enable the in-process tracer (core/trace.h) for the
//                      run and dump a Chrome trace-event JSON file to PATH
//                      (load it in Perfetto / chrome://tracing)
//
// batch options:
//   --count K          number of inputs in the batch (default 8)
//   --order O          as_given | shuffled   (execution order; results are
//                      identical either way)
//
// Examples:
//   ppdriver run lis/parallel --n 1000000 --backend openmp --workers 8
//   ppdriver batch lis/parallel --count 8 --n 20000 --json
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/json.h"
#include "core/registry.h"
#include "core/trace.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s list [--json] | problems\n"
               "       %s run <solver>   [--n N] [--seed S] [--backend B] [--workers W]\n"
               "                         [--grain G] [--pivot rightmost|random] [--relax-k K]\n"
               "                         [--repeats R] [--trace PATH] [--json]\n"
               "       %s batch <solver> [--count K] [--n N] [--seed S] [--backend B]\n"
               "                         [--workers W] [--grain G] [--pivot rightmost|random]\n"
               "                         [--relax-k K] [--order as_given|shuffled] [--json]\n"
               "       %s golden         [--n N] [--seed S]\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

// Relaxed solvers name their determinism reference inside the description
// ("phase ref: <solver>" — the same convention tools/pplint.py's
// relaxed-coverage rule enforces). Empty for phase/sequential solvers.
std::string phase_ref_of(const pp::solver_info& s) {
  static constexpr std::string_view kTag = "phase ref: ";
  size_t at = s.description.find(kTag);
  if (at == std::string::npos) return {};
  size_t begin = at + kTag.size();
  size_t end = begin;
  while (end < s.description.size() &&
         (std::isalnum(static_cast<unsigned char>(s.description[end])) ||
          s.description[end] == '/' || s.description[end] == '_'))
    ++end;
  return s.description.substr(begin, end - begin);
}

int cmd_list(bool json) {
  auto& reg = pp::registry::instance();
  if (json) {
    pp::json::writer w;
    w.begin_object().key("solvers").begin_array();
    for (const auto& s : reg.solvers()) {
      w.begin_object();
      w.member("name", s.name);
      w.member("problem", s.problem);
      w.member("paradigm", pp::paradigm_name(pp::paradigm_of(s)));
      w.member("relax_knob", pp::accepts_relax_knob(s));
      w.member("phase_ref", phase_ref_of(s));
      w.member("description", s.description);
      w.end_object();
    }
    w.end_array().end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  // paradigm: sequential | phase | relaxed (see core/registry.h); relax-k
  // marks the solvers that honor the --relax-k knob.
  std::printf("%-32s %-10s %-10s %-7s %s\n", "solver", "problem", "paradigm", "relax-k",
              "description");
  for (const auto& s : reg.solvers())
    std::printf("%-32s %-10s %-10s %-7s %s\n", s.name.c_str(), s.problem.c_str(),
                pp::paradigm_name(pp::paradigm_of(s)), pp::accepts_relax_knob(s) ? "yes" : "-",
                s.description.c_str());
  return 0;
}

int cmd_problems() {
  std::printf("%-10s %s\n", "problem", "default input");
  for (const auto& p : pp::registry::instance().problems())
    std::printf("%-10s %s\n", p.name.c_str(), p.description.c_str());
  return 0;
}

// Options shared by `run` and `batch`.
struct cli_options {
  size_t n = 100'000;
  int repeats = 1;         // run only
  std::string trace_path;  // run only: dump Chrome trace JSON here
  size_t count = 8;        // batch only
  bool json = false;
  pp::batch_options::item_order order = pp::batch_options::item_order::as_given;
  pp::context ctx = pp::default_context();
};

// Parse argv[3..] into `opt`; `batch_mode` gates the per-command flags.
// Returns 0 on success, else the exit code.
int parse_options(int argc, char** argv, bool batch_mode, cli_options& opt) {
  for (int i = 3; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--n") == 0) {
      opt.n = static_cast<size_t>(std::strtoull(need("--n"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.ctx.seed = std::strtoull(need("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--backend") == 0) {
      const char* b = need("--backend");
      auto kind = pp::parse_backend(b);
      if (!kind) {
        std::fprintf(stderr, "%s: unknown backend '%s'\n", argv[0], b);
        return 2;
      }
      opt.ctx.backend = *kind;
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      opt.ctx.workers = static_cast<unsigned>(std::strtoul(need("--workers"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--grain") == 0) {
      opt.ctx.grain = static_cast<size_t>(std::strtoull(need("--grain"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--pivot") == 0) {
      const char* p = need("--pivot");
      if (std::strcmp(p, "rightmost") == 0) {
        opt.ctx.pivot = pp::pivot_policy::rightmost;
      } else if (std::strcmp(p, "random") == 0 || std::strcmp(p, "uniform_random") == 0) {
        opt.ctx.pivot = pp::pivot_policy::uniform_random;
      } else {
        std::fprintf(stderr, "%s: unknown pivot policy '%s'\n", argv[0], p);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--relax-k") == 0) {
      long k = std::strtol(need("--relax-k"), nullptr, 10);
      if (k < 1) {
        std::fprintf(stderr, "%s: --relax-k must be >= 1\n", argv[0]);
        return 2;
      }
      opt.ctx.relax_k = static_cast<unsigned>(k);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (!batch_mode && std::strcmp(argv[i], "--repeats") == 0) {
      opt.repeats = std::atoi(need("--repeats"));
      if (opt.repeats < 1) opt.repeats = 1;
    } else if (!batch_mode && std::strcmp(argv[i], "--trace") == 0) {
      opt.trace_path = need("--trace");
      if (opt.trace_path.empty()) {
        std::fprintf(stderr, "%s: --trace needs a non-empty path\n", argv[0]);
        return 2;
      }
    } else if (batch_mode && std::strcmp(argv[i], "--count") == 0) {
      opt.count = static_cast<size_t>(std::strtoull(need("--count"), nullptr, 10));
      if (opt.count < 1) opt.count = 1;
    } else if (batch_mode && std::strcmp(argv[i], "--order") == 0) {
      const char* o = need("--order");
      if (std::strcmp(o, "as_given") == 0) {
        opt.order = pp::batch_options::item_order::as_given;
      } else if (std::strcmp(o, "shuffled") == 0) {
        opt.order = pp::batch_options::item_order::shuffled;
      } else {
        std::fprintf(stderr, "%s: unknown order '%s'\n", argv[0], o);
        return 2;
      }
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], argv[i]);
      return 2;
    }
  }
  return 0;
}

// Resolve a solver name to its problem, or exit with a hint.
std::string problem_of(const char* argv0, const std::string& solver) {
  auto& reg = pp::registry::instance();
  if (!reg.contains(solver)) {
    std::fprintf(stderr, "%s: unknown solver '%s' (try '%s list')\n", argv0, solver.c_str(),
                 argv0);
    std::exit(1);
  }
  for (const auto& s : reg.solvers())
    if (s.name == solver) return s.problem;
  return {};
}

void print_envelope_text(const pp::run_result<pp::solver_value>& r, const std::string& problem,
                         size_t n, const pp::context& ctx) {
  std::printf("solver   = %s\n", r.solver.c_str());
  std::printf("problem  = %s (n = %zu, seed = %llu)\n", problem.c_str(), n,
              static_cast<unsigned long long>(ctx.seed));
  // r.workers is the width the run *actually* executed on (pool lease /
  // omp num_threads), not a pre-run guess from the context.
  std::printf("backend  = %s (workers = %u, grain = %zu, pivot = %s)\n",
              std::string(pp::backend_name(r.backend)).c_str(), r.workers, ctx.grain,
              pp::pivot_policy_name(ctx.pivot));
  std::printf("input_fp = %s\n", r.input_fp.hex().c_str());
  std::printf("result   = %s\n", pp::summary_of(r.value).c_str());
  std::printf("score    = %lld\n", static_cast<long long>(pp::score_of(r.value)));
}

void print_stats_text(const pp::phase_stats& st) {
  std::printf("stats    = rounds %zu, processed %zu, max_frontier %zu, wakeups %zu, "
              "substeps %zu, relaxations %zu\n",
              st.rounds, st.processed, st.max_frontier, st.wakeup_attempts, st.substeps,
              st.relaxations);
  if (st.popped > 0) {
    // Relaxed-mode scheduler counters (zero for phase/sequential runs).
    std::printf("mq       = popped %zu, wasted %zu, retries %zu (relaxation cost %.4f)\n",
                st.popped, st.wasted, st.retries,
                static_cast<double>(st.wasted) / static_cast<double>(st.popped));
  }
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  std::string solver = argv[2];
  cli_options opt;
  if (int rc = parse_options(argc, argv, /*batch_mode=*/false, opt); rc != 0) return rc;

  std::string problem = problem_of(argv[0], solver);
  auto input = pp::registry::instance().make_input(problem, opt.n, opt.ctx.seed);

  // Repeats flow through run_batch with seed derivation off: one pool
  // lease for all repeats, each executing under the identical context, and
  // every repeat's envelope kept (not just min/mean scalars).
  pp::batch_options bopts;
  bopts.derive_seeds = false;
  const bool tracing = !opt.trace_path.empty();
  if (tracing) {
    pp::trace::clear();
    pp::trace::set_enabled(true);
  }
  auto batch = pp::registry::run_batch(solver, input, static_cast<size_t>(opt.repeats), opt.ctx,
                                       bopts);
  if (tracing) {
    pp::trace::set_enabled(false);
    if (!pp::trace::write_chrome_json(opt.trace_path)) {
      std::fprintf(stderr, "%s: cannot write trace file '%s'\n", argv[0], opt.trace_path.c_str());
      return 1;
    }
  }

  if (opt.json) {
    if (tracing)
      std::fprintf(stderr, "trace: %zu records -> %s\n", pp::trace::record_count(),
                   opt.trace_path.c_str());
    // Always the batch envelope (count == repeats), so consumers get one
    // stable schema whether R is 1 or 100.
    std::printf("%s\n", pp::to_json(batch).c_str());
    return 0;
  }
  const auto& last = batch.items.back();
  print_envelope_text(last, problem, opt.n, opt.ctx);
  if (opt.repeats > 1) {
    std::printf("time     = %.6f s min, %.6f s mean over %d runs\n", batch.min_seconds,
                batch.mean_seconds, opt.repeats);
  } else {
    std::printf("time     = %.6f s\n", last.seconds);
  }
  print_stats_text(last.stats);
  if (tracing)
    std::printf("trace    = %s (%zu records)\n", opt.trace_path.c_str(),
                pp::trace::record_count());
  return 0;
}

int cmd_batch(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  std::string solver = argv[2];
  cli_options opt;
  opt.n = 20'000;  // batches are many inputs; default each one smaller
  if (int rc = parse_options(argc, argv, /*batch_mode=*/true, opt); rc != 0) return rc;

  std::string problem = problem_of(argv[0], solver);
  auto& reg = pp::registry::instance();

  // K independent instances of the problem, each built from the seed its
  // item will also execute under — one rule for the whole batch.
  std::vector<pp::problem_input> inputs;
  inputs.reserve(opt.count);
  for (size_t i = 0; i < opt.count; ++i)
    inputs.push_back(reg.make_input(problem, opt.n, pp::derive_seed(opt.ctx.seed, i)));

  pp::batch_options bopts;
  bopts.order = opt.order;
  auto batch = pp::registry::run_batch(solver, inputs, opt.ctx, bopts);

  if (opt.json) {
    std::printf("%s\n", pp::to_json(batch).c_str());
    return 0;
  }
  std::printf("solver   = %s\n", batch.solver.c_str());
  std::printf("problem  = %s (count = %zu, n = %zu each, base seed = %llu, order = %s)\n",
              problem.c_str(), batch.count(), opt.n,
              static_cast<unsigned long long>(opt.ctx.seed), pp::item_order_name(opt.order));
  std::printf("backend  = %s (workers = %u, grain = %zu, pivot = %s)\n",
              std::string(pp::backend_name(batch.backend)).c_str(), batch.workers, opt.ctx.grain,
              pp::pivot_policy_name(opt.ctx.pivot));
  std::printf("time     = %.6f s total, %.6f s min, %.6f s mean, %.6f s p50, %.6f s p95, "
              "%.6f s p99, %.6f s max\n",
              batch.total_seconds, batch.min_seconds, batch.mean_seconds, batch.p50_seconds,
              batch.p95_seconds, batch.p99_seconds, batch.max_seconds);
  std::printf("rounds   = %zu total\n", batch.total_rounds);
  for (size_t i = 0; i < batch.count(); ++i) {
    std::printf("item %-4zu seed=%llu score=%lld seconds=%.6f rounds=%zu\n", i,
                static_cast<unsigned long long>(batch.items[i].seed),
                static_cast<long long>(batch.scores[i]), batch.items[i].seconds,
                batch.items[i].stats.rounds);
  }
  return 0;
}

// The committed fingerprint-stability table. For every registered solver:
// build the problem's default input (n, seed), fingerprint it, solve it
// sequentially, and print one initializer row for tests/golden_results.inc.
// tests/test_fingerprint.cpp rebuilds the same inputs and verifies both the
// fingerprint hex (canonical-bytes stability) and the score (the paper's
// determinism property: the answer depends on the input and seed only, not
// the backend or schedule). Sequential execution keeps generation cheap and
// machine-independent; any backend must reproduce the same scores.
int cmd_golden(int argc, char** argv) {
  size_t n = 256;
  uint64_t seed = 42;
  for (int i = 2; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--n") == 0) {
      n = static_cast<size_t>(std::strtoull(need("--n"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(need("--seed"), nullptr, 10);
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], argv[i]);
      return 2;
    }
  }
  auto& reg = pp::registry::instance();
  std::printf("// Golden (solver, n, seed, input fingerprint, score) rows — included by\n");
  std::printf("// tests/test_fingerprint.cpp. Any row changing means either the canonical\n");
  std::printf("// serialization changed (bump kFingerprintVersion and say why) or a solver's\n");
  std::printf("// answer drifted (a correctness regression).\n");
  std::printf("// Regenerate: ppdriver golden --n %zu --seed %llu > tests/golden_results.inc\n",
              n, static_cast<unsigned long long>(seed));
  for (const auto& s : reg.solvers()) {
    // Relaxed-paradigm solvers promise structural validity, not
    // bit-stability — tests/test_fingerprint.cpp asserts they are absent.
    if (pp::paradigm_of(s) == pp::solver_paradigm::relaxed) continue;
    auto input = reg.make_input(s.problem, n, seed);
    auto fp = pp::fingerprint_of(input);
    auto res = pp::registry::run(
        s.name, input,
        pp::context{}.with_backend(pp::backend_kind::sequential).with_seed(seed));
    std::printf("{\"%s\", %zu, %lluull, \"%s\", %lld},\n", s.name.c_str(), n,
                static_cast<unsigned long long>(seed), fp.hex().c_str(),
                static_cast<long long>(pp::score_of(res.value)));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  try {
    if (std::strcmp(argv[1], "list") == 0)
      return cmd_list(argc > 2 && std::strcmp(argv[2], "--json") == 0);
    if (std::strcmp(argv[1], "problems") == 0) return cmd_problems();
    if (std::strcmp(argv[1], "run") == 0) return cmd_run(argc, argv);
    if (std::strcmp(argv[1], "batch") == 0) return cmd_batch(argc, argv);
    if (std::strcmp(argv[1], "golden") == 0) return cmd_golden(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
  return usage(argv[0]);
}
