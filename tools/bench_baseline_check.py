#!/usr/bin/env python3
"""bench_baseline_check — compare a bench --json envelope to its committed
baseline, driven by the key lists the envelope itself declares.

Benches with a committed baseline (BENCH_<name>.json) emit, via
bench::begin_envelope (bench/bench_common.h), two arrays:

  deterministic_top   top-level members that must equal the baseline
                      exactly (config echoes, counters, checksums, pass)
  deterministic_row   members of each element of "rows" that must

Everything else — wall-clock, rates, percentiles — is environment noise:
reported in the envelope, never compared. This script is the whole CI
comparison; adding a bench to the baseline smoke is one workflow line, not
a new inline python block.

Usage:
  tools/bench_baseline_check.py GOT.json WANT.json

Exit 0 when every declared deterministic field matches (and `pass`, when
declared deterministic, is true in GOT); exit 1 with a per-field diff
otherwise.
"""

import json
import sys


def fail(msg):
    print("bench_baseline_check: MISMATCH: %s" % msg)
    return 1


def main(argv):
    if len(argv) != 3:
        print("usage: %s GOT.json WANT.json" % argv[0])
        return 2
    with open(argv[1], encoding="utf-8") as f:
        got = json.load(f)
    with open(argv[2], encoding="utf-8") as f:
        want = json.load(f)

    top = want.get("deterministic_top")
    row = want.get("deterministic_row")
    if not isinstance(top, list) or not isinstance(row, list):
        return fail("baseline %s declares no deterministic_top/deterministic_row "
                    "key lists (is it a bench::begin_envelope envelope?)" % argv[2])
    if got.get("bench") != want.get("bench"):
        return fail("bench name: got %r, want %r" % (got.get("bench"), want.get("bench")))
    # The envelope's own declaration must not drift from the baseline's:
    # a silently narrowed key list would hollow out the comparison.
    for decl in ("deterministic_top", "deterministic_row"):
        if got.get(decl) != want.get(decl):
            return fail("%s: got %r, want %r" % (decl, got.get(decl), want.get(decl)))

    rc = 0
    for k in top:
        if got.get(k) != want.get(k):
            rc = fail("top-level '%s': got %r, want %r" % (k, got.get(k), want.get(k)))
    if "pass" in top and got.get("pass") is not True:
        rc = fail("'pass' is not true in the fresh run")

    grows, wrows = got.get("rows", []), want.get("rows", [])
    if len(grows) != len(wrows):
        rc = fail("row count: got %d, want %d" % (len(grows), len(wrows)))
    else:
        for i, (g, w) in enumerate(zip(grows, wrows)):
            for k in row:
                if g.get(k) != w.get(k):
                    rc = fail("row %d '%s': got %r, want %r" % (i, k, g.get(k), w.get(k)))

    if rc == 0:
        print("bench_baseline_check: %s matches its baseline (%d top fields, "
              "%d row fields x %d rows)" % (got.get("bench"), len(top), len(row), len(wrows)))
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
