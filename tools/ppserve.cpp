// ppserve: JSON serving daemon over pp::serve::engine.
//
// Speaks newline-delimited JSON. Each request line names a solver and an
// input size; the daemon builds the input with the registry's per-problem
// factory, submits it to the async engine (admission control + dynamic
// micro-batching), and writes one response line per request, in request
// order per connection:
//
//   $ echo '{"solver":"lis/parallel","n":20000,"seed":3}' | ppserve
//   {"id": 0, "ok": true, "result": {"solver": "lis/parallel", ...}}
//
// request fields:
//   solver  (required) registry name, e.g. "lis/parallel"
//   n       input size for the problem's default factory (default 20000,
//           must be in [1, --max-n] — the cap keeps one greedy request
//           line from OOMing the daemon)
//   seed    execution + input seed; omitted = derive_seed(base, index) —
//           the run_batch per-item rule, so an anonymous request stream is
//           reproducible from the daemon's --seed alone
//   id      echoed back verbatim (default: the line index)
//
// response fields: id, ok, and either "result" (the run_result envelope
// pp::to_json emits) or "error".
//
// Modes:
//   default       serve stdin, write stdout, exit at EOF
//   --port P      additionally accept TCP connections on P (NDJSON, one
//                 engine shared by all connections); stdin EOF still ends
//                 the process, so a TCP-only deployment uses  ppserve
//                 --port P < /dev/null  under a supervisor... or just
//                 keeps stdin open.
//
// Engine knobs: --max-inflight R, --workers-per-run W, --batch-window-us U,
// --max-batch K, --queue N, --backend B, --seed S, --max-n N.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/json.h"
#include "core/registry.h"
#include "serve/engine.h"

#if defined(__unix__) || defined(__APPLE__)
#define PPSERVE_HAS_TCP 1
#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define PPSERVE_HAS_TCP 0
#endif

namespace {

struct daemon_options {
  pp::serve::engine_options eng;
  int port = -1;  // -1 = stdin/stdout only
  // Largest accepted request "n". The input factories allocate O(n) (the
  // graph ones ~8n edges); without a cap one request line could ask for
  // hundreds of GB and get the daemon OOM-killed instead of answering
  // "ok": false.
  size_t max_n = 10'000'000;
};

size_t g_max_n = 10'000'000;

// Re-serialize a parsed JSON value (the verbatim-echo path for request
// ids: numbers, strings, bools, even structured ids survive unchanged).
void render(const pp::json::value& v, pp::json::writer& w) {
  if (v.is_null()) {
    w.value_raw("null");
  } else if (v.is_bool()) {
    w.value(v.as_bool());
  } else if (v.is_string()) {
    w.value(v.as_string());
  } else if (v.is_number()) {
    if (const int64_t* i = std::get_if<int64_t>(&v.raw()))
      w.value(*i);
    else if (const uint64_t* u = std::get_if<uint64_t>(&v.raw()))
      w.value(*u);
    else
      w.value(v.as_double());
  } else if (v.is_array()) {
    w.begin_array();
    for (const auto& e : v.as_array()) render(e, w);
    w.end_array();
  } else {
    w.begin_object();
    for (const auto& [k, e] : v.as_object()) {
      w.key(k);
      render(e, w);
    }
    w.end_object();
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--max-inflight R] [--workers-per-run W]\n"
               "          [--batch-window-us U] [--max-batch K] [--queue N]\n"
               "          [--backend native|openmp|sequential] [--seed S] [--max-n N]\n"
               "reads newline-delimited JSON requests on stdin (and TCP port P),\n"
               "writes one JSON response line per request.\n",
               argv0);
  return 2;
}

// One request line -> one response line, responses in request order. The
// reader thread parses and submits; a writer thread waits on each entry's
// future in turn and prints, so pipelined lines coalesce in the engine
// while an interactive client still gets each response as soon as its
// batch lands (not only at the next input line).
struct session {
  explicit session(pp::serve::engine& eng) : eng_(eng) {}

  // Parse + submit. Any problem with the line itself becomes an
  // immediately-queued error entry; well-formed requests queue a future
  // and respond when their batch completes.
  void feed_line(const std::string& line) {
    ++index_;
    if (line.find_first_not_of(" \t\r") == std::string::npos) return;  // blank: ignore
    pp::json::value doc;
    std::string err;
    // `id` is kept as raw JSON text: the line index (a JSON number) by
    // default, or the request's own "id" member re-serialized.
    std::string id = std::to_string(index_ - 1);
    if (!pp::json::parse(line, doc, &err)) {
      enqueue_error(id, "bad request JSON: " + err);
      return;
    }
    if (const pp::json::value* v = doc.find("id")) {
      // Echoed back verbatim, whatever its type (re-serialized so the
      // response line stays valid JSON).
      pp::json::writer w;
      render(*v, w);
      id = w.str();
    }
    const pp::json::value* solver = doc.find("solver");
    if (solver == nullptr || !solver->is_string()) {
      enqueue_error(id, "request needs a string \"solver\" member");
      return;
    }
    // Wrong-typed members are errors, not silent fallbacks or truncation:
    // a client that sent {"n": "500000"} or {"n": 2000.7} must not get an
    // ok result for a different computation than it asked for.
    auto integral = [](const pp::json::value& v) {
      if (const double* d = std::get_if<double>(&v.raw()))
        return std::isfinite(*d) && *d == std::floor(*d);
      return v.is_number();  // int64/uint64 alternatives are exact
    };
    int64_t n = 20'000;
    if (const pp::json::value* v = doc.find("n")) {
      if (!v->is_number() || !integral(*v)) {
        enqueue_error(id, "request \"n\" must be an integer");
        return;
      }
      n = v->as_int64();
    }
    if (n < 1 || static_cast<uint64_t>(n) > g_max_n) {
      enqueue_error(id, "request \"n\" must be in [1, " + std::to_string(g_max_n) +
                            "] (got " + std::to_string(n) + "; raise --max-n to serve larger)");
      return;
    }

    pp::serve::request req;
    req.solver = solver->as_string();
    if (const pp::json::value* v = doc.find("seed")) {
      if (!v->is_number() || !integral(*v)) {
        enqueue_error(id, "request \"seed\" must be an integer");
        return;
      }
      req.seed = v->as_uint64();
    }

    // Build the input outside the engine (factory cost is the client's,
    // solve cost is the server's). Input seed = execution seed, the same
    // rule ppdriver batch uses.
    const pp::solver_info* si = pp::registry::instance().info(req.solver);
    if (si == nullptr) {
      enqueue_error(id, "unknown solver '" + req.solver + "'");
      return;
    }
    uint64_t seed =
        req.seed ? *req.seed : pp::derive_seed(eng_.options().ctx.seed, index_ - 1);
    req.seed = seed;
    try {
      req.input = pp::registry::instance().make_input(si->problem, static_cast<size_t>(n), seed);
    } catch (const std::exception& e) {
      enqueue_error(id, e.what());
      return;
    }
    push({id, eng_.submit(std::move(req)), {}});
  }

  // Writer side: pop entries in request order, wait, print. Runs until
  // finish() and the queue drains.
  void writer_loop(FILE* out) {
    for (;;) {
      entry e;
      {
        std::unique_lock<std::mutex> lk(m_);
        cv_.wait(lk, [&] { return done_ || !out_.empty(); });
        if (out_.empty()) return;
        e = std::move(out_.front());
        out_.pop_front();
      }
      pp::json::writer w;
      w.begin_object();
      w.key("id").value_raw(e.id);
      if (e.fut.valid()) {
        pp::serve::response r = e.fut.get();
        w.member("ok", r.ok());
        if (r.ok())
          w.key("result").value_raw(pp::to_json(r.result));
        else
          w.member("error", r.error);
      } else {
        w.member("ok", false);
        w.member("error", e.err);
      }
      w.end_object();
      std::fprintf(out, "%s\n", w.str().c_str());
      std::fflush(out);
    }
  }

  void finish() {
    {
      std::lock_guard<std::mutex> lk(m_);
      done_ = true;
    }
    cv_.notify_all();
  }

 private:
  struct entry {
    std::string id;                        // raw JSON text (number or string)
    std::future<pp::serve::response> fut;  // invalid => `err` below
    std::string err;
  };

  void push(entry e) {
    {
      std::lock_guard<std::mutex> lk(m_);
      out_.push_back(std::move(e));
    }
    cv_.notify_one();
  }

  void enqueue_error(std::string id, std::string err) {
    entry e;
    e.id = std::move(id);
    e.err = std::move(err);
    push(std::move(e));
  }

  pp::serve::engine& eng_;
  std::mutex m_;
  std::condition_variable cv_;
  std::deque<entry> out_;
  bool done_ = false;
  uint64_t index_ = 0;
};

void serve_stream(pp::serve::engine& eng, FILE* in, FILE* out) {
  session s(eng);
  std::thread writer([&] { s.writer_loop(out); });
  std::string line;
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') {
      s.feed_line(line);
      line.clear();
    } else {
      line += static_cast<char>(c);
    }
  }
  if (!line.empty()) s.feed_line(line);
  s.finish();
  writer.join();
}

#if PPSERVE_HAS_TCP
void serve_tcp(pp::serve::engine& eng, int port) {
  // A client that disconnects before reading its response must not kill
  // the daemon: writes to its closed socket should fail with EPIPE, not
  // raise SIGPIPE (default disposition: terminate the whole process).
  std::signal(SIGPIPE, SIG_IGN);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("ppserve: socket");
    return;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    std::perror("ppserve: bind/listen");
    ::close(fd);
    return;
  }
  std::fprintf(stderr, "ppserve: listening on 127.0.0.1:%d\n", port);
  for (;;) {
    int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      // Transient failures (fd exhaustion under a connection burst, a
      // connection aborted before accept, a signal) must not permanently
      // kill the TCP surface of an otherwise healthy daemon.
      if (errno == EINTR || errno == ECONNABORTED || errno == EMFILE || errno == ENFILE) {
        std::perror("ppserve: accept (transient)");
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      std::perror("ppserve: accept");
      break;
    }
    std::thread([&eng, client] {
      // Every fd owns exactly one owner on every path: a failed fdopen
      // must not strand `client` (or the dup) open, or fd exhaustion
      // becomes permanent instead of transient.
      FILE* in = ::fdopen(client, "r");
      if (in == nullptr) {
        ::close(client);
        return;
      }
      int wfd = ::dup(client);
      FILE* out = wfd >= 0 ? ::fdopen(wfd, "w") : nullptr;
      if (out == nullptr) {
        if (wfd >= 0) ::close(wfd);
        std::fclose(in);
        return;
      }
      serve_stream(eng, in, out);
      std::fclose(in);
      std::fclose(out);
    }).detach();
  }
  ::close(fd);
}
#endif

}  // namespace

int main(int argc, char** argv) {
  daemon_options opt;
  opt.eng.ctx = pp::default_context();
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      opt.port = std::atoi(need("--port"));
      if (opt.port < 1 || opt.port > 65535) {
        std::fprintf(stderr, "%s: --port must be in [1, 65535]\n", argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--max-inflight") == 0) {
      opt.eng.max_inflight_runs = static_cast<unsigned>(std::atoi(need("--max-inflight")));
    } else if (std::strcmp(argv[i], "--workers-per-run") == 0) {
      opt.eng.workers_per_run = static_cast<unsigned>(std::atoi(need("--workers-per-run")));
    } else if (std::strcmp(argv[i], "--batch-window-us") == 0) {
      opt.eng.batch_window = std::chrono::microseconds(std::atoll(need("--batch-window-us")));
    } else if (std::strcmp(argv[i], "--max-batch") == 0) {
      opt.eng.max_batch = static_cast<size_t>(std::atoll(need("--max-batch")));
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      opt.eng.queue_capacity = static_cast<size_t>(std::atoll(need("--queue")));
    } else if (std::strcmp(argv[i], "--max-n") == 0) {
      opt.max_n = static_cast<size_t>(std::strtoull(need("--max-n"), nullptr, 10));
      if (opt.max_n < 1) opt.max_n = 1;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.eng.ctx.seed = std::strtoull(need("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--backend") == 0) {
      const char* b = need("--backend");
      auto kind = pp::parse_backend(b);
      if (!kind) {
        std::fprintf(stderr, "%s: unknown backend '%s'\n", argv[0], b);
        return 2;
      }
      opt.eng.ctx.backend = *kind;
    } else {
      return usage(argv[0]);
    }
  }

  g_max_n = opt.max_n;
  pp::serve::engine eng(opt.eng);

#if PPSERVE_HAS_TCP
  std::thread tcp;
  if (opt.port >= 0) tcp = std::thread([&] { serve_tcp(eng, opt.port); });
#else
  if (opt.port >= 0) {
    std::fprintf(stderr, "%s: --port not supported on this platform\n", argv[0]);
    return 2;
  }
#endif

  serve_stream(eng, stdin, stdout);

#if PPSERVE_HAS_TCP
  if (tcp.joinable()) {
    // stdin closed: a TCP-mode daemon keeps serving until killed.
    tcp.join();
  }
#endif
  eng.stop(/*drain=*/true);
  return 0;
}
