// ppserve: JSON serving daemon over pp::serve::engine.
//
// Speaks newline-delimited JSON. Each request line names a solver and an
// input size; the daemon builds the input with the registry's per-problem
// factory, submits it to the async engine (admission control + dynamic
// micro-batching), and writes one response line per request, in request
// order per connection:
//
//   $ echo '{"solver":"lis/parallel","n":20000,"seed":3}' | ppserve
//   {"id": 0, "ok": true, "result": {"solver": "lis/parallel", ...}}
//
// request fields:
//   solver       (required unless "stats") registry name, e.g. "lis/parallel"
//   n            input size for the problem's default factory (default
//                20000, must be in [1, --max-n] — the cap keeps one greedy
//                request line from OOMing the daemon)
//   seed         execution + input seed; omitted = derive_seed(base, k) for
//                the k-th anonymous request DAEMON-wide (the engine's
//                admission counter, shared by every connection) — so an
//                anonymous stream is reproducible from --seed alone and two
//                concurrent connections can never collide on a seed
//   id           echoed back verbatim (default: the request's position
//                among this connection's non-blank lines)
//   deadline_ms  positive integer; the request expires this many ms after
//                it is parsed. Expired-while-queued requests resolve with
//                an "expired" error without taking a pool lease; a
//                deadline blown mid-run cancels the solve at the next
//                phase boundary ("cancelled" error)
//   priority     "interactive" (default) or "batch": interactive requests
//                pop first and batch requests never share their flushes
//   stats        true: respond with the engine_stats counters (submitted /
//                completed / failed / expired / cancelled / batches / ...)
//                instead of running a solver
//   metrics      true: respond with the process-wide pp::metrics registry
//                rendered in Prometheus text exposition format, carried as
//                a JSON string member "metrics" (same text GET /metrics on
//                --metrics-port serves)
//
// response fields: id, ok, and either "result" (the run_result envelope
// pp::to_json emits), "stats" (for stats requests), or "error". Successful
// solver responses also carry "cached": true when the engine answered from
// its result cache (a repeat (solver, input-fingerprint, seed) triple —
// zero pool leases), false when the solve actually executed.
//
// Stateful sessions (src/serve/session.h): a "session" member selects a
// verb instead of the one-shot solver path. All verbs answer with a
// "session" object ({name, problem, version, fingerprint, elems, hints} —
// pp::serve::to_json(session_desc); drop adds "dropped"):
//
//   {"session":"create","name":"g","problem":"sssp","n":200000,"seed":7}
//       build the problem's default instance and register it at version 0
//       ("sssp" and "lis" instances are session-able)
//   {"session":"delta","name":"g","add_edges":[[u,v,w],...],
//    "remove_edges":[[u,v],...],"source":S,"append":[x,...],
//    "update":[[i,x],...]}
//       apply one atomic delta, installing version v+1 (graph fields on
//       sssp sessions, append/update on lis sessions). In-flight solves
//       keep reading the version they pinned.
//   {"session":"solve","name":"g","solver":"sssp/incremental", ...}
//       solve the CURRENT version (optional seed / deadline_ms / priority
//       as usual). Runs with engine session affinity: solves on one
//       session never reorder, and an ok sssp solve feeds its distances
//       back as incremental labels for later sssp/incremental solves.
//   {"session":"drop","name":"g"}
//       forget the instance ("dropped": false when the name was unknown)
//
// --max-sessions N (default 64) bounds the table: creating instance N+1
// evicts the least-recently-used one.
//
// Modes:
//   default       serve stdin, write stdout, exit at EOF
//   --port P      additionally accept TCP connections on P (NDJSON, one
//                 engine shared by all connections); stdin EOF still ends
//                 the process, so a TCP-only deployment uses  ppserve
//                 --port P < /dev/null  under a supervisor... or just
//                 keeps stdin open.
//   --metrics-port P
//                 loopback HTTP scrape endpoint: GET /metrics answers 200
//                 with the Prometheus text rendering of the pp::metrics
//                 registry; any other request answers 404. One request per
//                 connection (Connection: close).
//   --trace-dir DIR
//                 enable the in-process tracer (core/trace.h) and, as each
//                 response line is written, dump a Chrome trace-event JSON
//                 snapshot to DIR/<id>.json (id sanitized to
//                 [A-Za-z0-9._-]; later requests with the same id
//                 overwrite). Each file is the tracer's ring-buffer
//                 content at response time — in a concurrent daemon it
//                 shows the server timeline around that request, not that
//                 request alone. Load in Perfetto / chrome://tracing.
//
// Engine knobs: --max-inflight R, --workers-per-run W, --batch-window-us U,
// --max-batch K, --queue N, --backend B, --seed S, --max-n N,
// --relax-k K (k-MultiQueue relaxation factor for relaxed-paradigm solvers),
// --cache-entries N (result-cache capacity, default 256), --cache-off
// (disable the result cache; in-flight dedup stays on).
#include <algorithm>
#include <array>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.h"
#include "core/json.h"
#include "core/metrics.h"
#include "core/registry.h"
#include "core/trace.h"
#include "serve/engine.h"
#include "serve/session.h"

#if defined(__unix__) || defined(__APPLE__)
#define PPSERVE_HAS_TCP 1
#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define PPSERVE_HAS_TCP 0
#endif

namespace {

struct daemon_options {
  pp::serve::engine_options eng;
  int port = -1;          // -1 = stdin/stdout only
  int metrics_port = -1;  // -1 = no HTTP scrape endpoint
  std::string trace_dir;  // empty = tracer off
  // Largest accepted request "n". The input factories allocate O(n) (the
  // graph ones ~8n edges); without a cap one request line could ask for
  // hundreds of GB and get the daemon OOM-killed instead of answering
  // "ok": false.
  size_t max_n = 10'000'000;
  // Session-table bound: creating instance N+1 evicts the LRU one.
  size_t max_sessions = 64;
};

size_t g_max_n = 10'000'000;
std::string g_trace_dir;  // set once before any session starts, read-only after

// Request ids become trace file names; ids are client-controlled raw JSON
// text, so strip the quotes of string ids and reduce to [A-Za-z0-9._-]
// (no separators, no traversal, no dotfiles).
std::string sanitize_id(std::string id) {
  if (id.size() >= 2 && id.front() == '"' && id.back() == '"')
    id = id.substr(1, id.size() - 2);
  if (id.empty()) id = "request";
  if (id.size() > 80) id.resize(80);
  for (char& c : id)
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' && c != '_' && c != '.')
      c = '_';
  if (id[0] == '.') id[0] = '_';
  return id;
}

// Re-serialize a parsed JSON value (the verbatim-echo path for request
// ids: numbers, strings, bools, even structured ids survive unchanged).
void render(const pp::json::value& v, pp::json::writer& w) {
  if (v.is_null()) {
    w.value_raw("null");
  } else if (v.is_bool()) {
    w.value(v.as_bool());
  } else if (v.is_string()) {
    w.value(v.as_string());
  } else if (v.is_number()) {
    if (const int64_t* i = std::get_if<int64_t>(&v.raw()))
      w.value(*i);
    else if (const uint64_t* u = std::get_if<uint64_t>(&v.raw()))
      w.value(*u);
    else
      w.value(v.as_double());
  } else if (v.is_array()) {
    w.begin_array();
    for (const auto& e : v.as_array()) render(e, w);
    w.end_array();
  } else {
    w.begin_object();
    for (const auto& [k, e] : v.as_object()) {
      w.key(k);
      render(e, w);
    }
    w.end_object();
  }
}

// Parse a decimal integer in [min_v, max_v]; usage error (exit 2) on junk,
// overflow, or out-of-range values. The engine knobs are size_t/unsigned —
// a negative value passed through a blind `atoll` → unsigned cast wraps to
// an astronomically large count (an effectively unbounded queue defeats
// backpressure entirely), so bad values are rejected up front instead of
// silently wrapping.
long long parse_int(const char* argv0, const char* flag, const char* text, long long min_v,
                    long long max_v) {
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < min_v || v > max_v) {
    std::fprintf(stderr, "%s: %s expects an integer in [%lld, %lld], got '%s'\n", argv0, flag,
                 min_v, max_v, text);
    std::exit(2);
  }
  return v;
}

// Full-range uint64 parse with the same junk rejection (for --seed).
uint64_t parse_u64(const char* argv0, const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  if (*text == '-') {
    std::fprintf(stderr, "%s: %s expects a non-negative integer, got '%s'\n", argv0, flag, text);
    std::exit(2);
  }
  unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s: %s expects a non-negative integer, got '%s'\n", argv0, flag, text);
    std::exit(2);
  }
  return static_cast<uint64_t>(v);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--metrics-port P] [--trace-dir DIR]\n"
               "          [--max-inflight R] [--workers-per-run W]\n"
               "          [--batch-window-us U] [--max-batch K] [--queue N]\n"
               "          [--backend native|openmp|sequential] [--seed S] [--max-n N]\n"
               "          [--relax-k K] [--cache-entries N] [--cache-off]\n"
               "          [--max-sessions N]\n"
               "reads newline-delimited JSON requests on stdin (and TCP port P),\n"
               "writes one JSON response line per request.\n",
               argv0);
  return 2;
}

// One request line -> one response line, responses in request order. The
// reader thread parses and submits; a writer thread waits on each entry's
// future in turn and prints, so pipelined lines coalesce in the engine
// while an interactive client still gets each response as soon as its
// batch lands (not only at the next input line).
struct session {
  session(pp::serve::engine& eng, pp::serve::session_table& tab) : eng_(eng), tab_(tab) {}

  // Parse + submit. Any problem with the line itself becomes an
  // immediately-queued error entry; well-formed requests queue a future
  // and respond when their batch completes.
  void feed_line(const std::string& line) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) return;  // blank: ignore
    // Count only real requests: a blank line must not consume a default-id
    // slot, or auto-assigned ids stop matching the request's position
    // among this connection's actual requests.
    uint64_t index = index_++;
    pp::json::value doc;
    std::string err;
    // `id` is kept as raw JSON text: the request index (a JSON number) by
    // default, or the request's own "id" member re-serialized.
    std::string id = std::to_string(index);
    if (!pp::json::parse(line, doc, &err)) {
      enqueue_error(id, "bad request JSON: " + err);
      return;
    }
    if (const pp::json::value* v = doc.find("id")) {
      // Echoed back verbatim, whatever its type (re-serialized so the
      // response line stays valid JSON).
      pp::json::writer w;
      render(*v, w);
      id = w.str();
    }
    if (const pp::json::value* v = doc.find("stats")) {
      if (!v->is_bool() || !v->as_bool()) {
        enqueue_error(id, "request \"stats\" must be true");
        return;
      }
      enqueue_stats(id);
      return;
    }
    if (const pp::json::value* v = doc.find("metrics")) {
      if (!v->is_bool() || !v->as_bool()) {
        enqueue_error(id, "request \"metrics\" must be true");
        return;
      }
      enqueue_metrics(id);
      return;
    }
    if (const pp::json::value* v = doc.find("session")) {
      if (!v->is_string()) {
        enqueue_error(id, "request \"session\" must be a verb string (create/delta/solve/drop)");
        return;
      }
      handle_session(std::move(id), v->as_string(), doc);
      return;
    }
    const pp::json::value* solver = doc.find("solver");
    if (solver == nullptr || !solver->is_string()) {
      enqueue_error(id, "request needs a string \"solver\" member");
      return;
    }
    // Wrong-typed members are errors, not silent fallbacks or truncation:
    // a client that sent {"n": "500000"} or {"n": 2000.7} must not get an
    // ok result for a different computation than it asked for.
    auto integral = [](const pp::json::value& v) {
      if (const double* d = std::get_if<double>(&v.raw()))
        return std::isfinite(*d) && *d == std::floor(*d);
      return v.is_number();  // int64/uint64 alternatives are exact
    };
    int64_t n = 20'000;
    if (const pp::json::value* v = doc.find("n")) {
      if (!v->is_number() || !integral(*v)) {
        enqueue_error(id, "request \"n\" must be an integer");
        return;
      }
      n = v->as_int64();
    }
    if (n < 1 || static_cast<uint64_t>(n) > g_max_n) {
      enqueue_error(id, "request \"n\" must be in [1, " + std::to_string(g_max_n) +
                            "] (got " + std::to_string(n) + "; raise --max-n to serve larger)");
      return;
    }

    pp::serve::request req;
    req.solver = solver->as_string();
    if (const pp::json::value* v = doc.find("seed")) {
      if (!v->is_number() || !integral(*v)) {
        enqueue_error(id, "request \"seed\" must be an integer");
        return;
      }
      req.seed = v->as_uint64();
    }
    if (const pp::json::value* v = doc.find("deadline_ms")) {
      // Capped at 24h: an absurdly large value would overflow the
      // ms -> clock-duration (ns) conversion below into a time_point in
      // the past — the same silent-wrap class the flag validation rejects.
      constexpr int64_t kMaxDeadlineMs = 86'400'000;
      if (!v->is_number() || !integral(*v) || v->as_int64() < 1 ||
          v->as_int64() > kMaxDeadlineMs) {
        enqueue_error(id, "request \"deadline_ms\" must be an integer in [1, " +
                              std::to_string(kMaxDeadlineMs) + "]");
        return;
      }
      req.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(v->as_int64());
    }
    if (const pp::json::value* v = doc.find("priority")) {
      auto p = v->is_string() ? pp::serve::parse_priority(v->as_string()) : std::nullopt;
      if (!p) {
        enqueue_error(id, "request \"priority\" must be \"interactive\" or \"batch\"");
        return;
      }
      req.prio = *p;
    }

    // Build the input outside the engine (factory cost is the client's,
    // solve cost is the server's). Input seed = execution seed, the same
    // rule ppdriver batch uses. Anonymous seeds come from the engine's
    // daemon-wide counter — never from this session's line index, which
    // would collide across concurrent connections.
    const pp::solver_info* si = pp::registry::instance().info(req.solver);
    if (si == nullptr) {
      enqueue_error(id, "unknown solver '" + req.solver + "'");
      return;
    }
    uint64_t seed = req.seed ? *req.seed : eng_.reserve_anonymous_seed();
    req.seed = seed;
    try {
      req.input = pp::registry::instance().make_input(si->problem, static_cast<size_t>(n), seed);
    } catch (const std::exception& e) {
      enqueue_error(id, e.what());
      return;
    }
    entry e;
    e.id = std::move(id);
    e.fut = eng_.submit(std::move(req));
    push(std::move(e));
  }

  // Session verbs (create / delta / solve / drop) against the daemon-wide
  // session_table. create/delta/drop answer immediately (the table is the
  // source of truth, no solve happens); solve pins the current version as
  // a snapshot and rides the normal engine path with session affinity.
  void handle_session(std::string id, const std::string& verb, const pp::json::value& doc) {
    const pp::json::value* nv = doc.find("name");
    if (nv == nullptr || !nv->is_string() || nv->as_string().empty()) {
      enqueue_error(id, "session requests need a non-empty string \"name\" member");
      return;
    }
    const std::string name = nv->as_string();
    auto integral = [](const pp::json::value& v) {
      if (const double* d = std::get_if<double>(&v.raw()))
        return std::isfinite(*d) && *d == std::floor(*d);
      return v.is_number();
    };
    // [lo, hi]-checked integer member; writes an error entry and returns
    // false on a wrong type or out-of-range value.
    auto want_int = [&](const pp::json::value& v, const char* what, int64_t lo, int64_t hi,
                        int64_t& out) {
      if (!v.is_number() || !integral(v) || v.as_int64() < lo || v.as_int64() > hi) {
        enqueue_error(id, std::string("session ") + what + " must be an integer in [" +
                              std::to_string(lo) + ", " + std::to_string(hi) + "]");
        return false;
      }
      out = v.as_int64();
      return true;
    };
    try {
      if (verb == "create") {
        std::string problem = "sssp";
        if (const pp::json::value* v = doc.find("problem")) {
          if (!v->is_string()) {
            enqueue_error(id, "session \"problem\" must be a string");
            return;
          }
          problem = v->as_string();
        }
        int64_t n = 20'000;
        if (const pp::json::value* v = doc.find("n")) {
          if (!want_int(*v, "\"n\"", 1, static_cast<int64_t>(std::min<uint64_t>(
                                            g_max_n, std::numeric_limits<int64_t>::max())),
                        n))
            return;
        }
        uint64_t seed = eng_.reserve_anonymous_seed();
        if (const pp::json::value* v = doc.find("seed")) {
          if (!v->is_number() || !integral(*v)) {
            enqueue_error(id, "session \"seed\" must be an integer");
            return;
          }
          seed = v->as_uint64();
        }
        pp::problem_input base =
            pp::registry::instance().make_input(problem, static_cast<size_t>(n), seed);
        enqueue_session(std::move(id), pp::serve::to_json(tab_.create(name, std::move(base))));
        return;
      }
      if (verb == "delta") {
        pp::serve::session_delta d;
        // Triples [u, v, w] / pairs [u, v] / pairs [i, value]; every slot
        // type- and range-checked here so the table only ever validates
        // semantics (endpoint bounds, kind mismatches).
        auto rows = [&](const pp::json::value& v, const char* what, size_t width,
                        std::vector<std::array<int64_t, 3>>& out) {
          if (!v.is_array()) {
            enqueue_error(id, std::string("session ") + what + " must be an array of arrays");
            return false;
          }
          for (const auto& row : v.as_array()) {
            if (!row.is_array() || row.as_array().size() != width) {
              enqueue_error(id, std::string("session ") + what + " entries must be arrays of " +
                                    std::to_string(width) + " integers");
              return false;
            }
            std::array<int64_t, 3> r{0, 0, 0};
            for (size_t j = 0; j < width; ++j) {
              const pp::json::value& cell = row.as_array()[j];
              if (!cell.is_number() || !integral(cell)) {
                enqueue_error(id, std::string("session ") + what + " entries must hold integers");
                return false;
              }
              r[j] = cell.as_int64();
            }
            out.push_back(r);
          }
          return true;
        };
        constexpr int64_t kVertMax = std::numeric_limits<pp::vertex_t>::max();
        constexpr int64_t kWeightMax = std::numeric_limits<uint32_t>::max();
        std::vector<std::array<int64_t, 3>> raw;
        if (const pp::json::value* v = doc.find("add_edges")) {
          if (!rows(*v, "\"add_edges\"", 3, raw)) return;
          for (const auto& r : raw) {
            if (r[0] < 0 || r[0] > kVertMax || r[1] < 0 || r[1] > kVertMax || r[2] < 1 ||
                r[2] > kWeightMax) {
              enqueue_error(id, "session \"add_edges\" entries must be [u, v, w] with w >= 1");
              return;
            }
            d.add_edges.push_back({static_cast<pp::vertex_t>(r[0]),
                                   static_cast<pp::vertex_t>(r[1]),
                                   static_cast<uint32_t>(r[2])});
          }
        }
        raw.clear();
        if (const pp::json::value* v = doc.find("remove_edges")) {
          if (!rows(*v, "\"remove_edges\"", 2, raw)) return;
          for (const auto& r : raw) {
            if (r[0] < 0 || r[0] > kVertMax || r[1] < 0 || r[1] > kVertMax) {
              enqueue_error(id, "session \"remove_edges\" entries must be [u, v]");
              return;
            }
            d.remove_edges.push_back(
                {static_cast<pp::vertex_t>(r[0]), static_cast<pp::vertex_t>(r[1])});
          }
        }
        if (const pp::json::value* v = doc.find("source")) {
          int64_t s = 0;
          if (!want_int(*v, "\"source\"", 0, kVertMax, s)) return;
          d.source = static_cast<pp::vertex_t>(s);
        }
        if (const pp::json::value* v = doc.find("append")) {
          if (!v->is_array()) {
            enqueue_error(id, "session \"append\" must be an array of integers");
            return;
          }
          for (const auto& cell : v->as_array()) {
            if (!cell.is_number() || !integral(cell)) {
              enqueue_error(id, "session \"append\" must be an array of integers");
              return;
            }
            d.append.push_back(cell.as_int64());
          }
        }
        raw.clear();
        if (const pp::json::value* v = doc.find("update")) {
          if (!rows(*v, "\"update\"", 2, raw)) return;
          for (const auto& r : raw) {
            if (r[0] < 0) {
              enqueue_error(id, "session \"update\" entries must be [index, value]");
              return;
            }
            d.update.push_back({static_cast<size_t>(r[0]), r[1]});
          }
        }
        enqueue_session(std::move(id), pp::serve::to_json(tab_.apply(name, d)));
        return;
      }
      if (verb == "solve") {
        const pp::json::value* solver = doc.find("solver");
        if (solver == nullptr || !solver->is_string()) {
          enqueue_error(id, "session solve needs a string \"solver\" member");
          return;
        }
        pp::serve::request req;
        req.solver = solver->as_string();
        req.session = name;
        if (const pp::json::value* v = doc.find("seed")) {
          if (!v->is_number() || !integral(*v)) {
            enqueue_error(id, "session \"seed\" must be an integer");
            return;
          }
          req.seed = v->as_uint64();
        }
        if (const pp::json::value* v = doc.find("deadline_ms")) {
          constexpr int64_t kMaxDeadlineMs = 86'400'000;
          int64_t ms = 0;
          if (!want_int(*v, "\"deadline_ms\"", 1, kMaxDeadlineMs, ms)) return;
          req.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
        }
        if (const pp::json::value* v = doc.find("priority")) {
          auto p = v->is_string() ? pp::serve::parse_priority(v->as_string()) : std::nullopt;
          if (!p) {
            enqueue_error(id, "session \"priority\" must be \"interactive\" or \"batch\"");
            return;
          }
          req.prio = *p;
        }
        if (pp::registry::instance().info(req.solver) == nullptr) {
          enqueue_error(id, "unknown solver '" + req.solver + "'");
          return;
        }
        if (!req.seed) req.seed = eng_.reserve_anonymous_seed();
        // Pin the head: the solve reads THIS version even if deltas land
        // while it is queued. The desc it answers with is the same pinned
        // version (describe() after snapshot() could already be ahead).
        pp::snapshot_input snap = tab_.snapshot(name);
        pp::serve::session_desc desc = tab_.describe(name);
        desc.version = snap.version;
        desc.fp = snap.fp;
        desc.hints = snap.prior_dist != nullptr;
        entry e;
        e.id = std::move(id);
        e.session_name = name;
        e.session_version = snap.version;
        e.session_json = pp::serve::to_json(desc);
        req.input = std::move(snap);
        e.fut = eng_.submit(std::move(req));
        push(std::move(e));
        return;
      }
      if (verb == "drop") {
        bool dropped = tab_.drop(name);
        pp::json::writer w;
        w.begin_object();
        w.member("name", name);
        w.member("dropped", dropped);
        w.end_object();
        enqueue_session(std::move(id), w.str());
        return;
      }
      enqueue_error(id, "unknown session verb '" + verb + "' (want create/delta/solve/drop)");
    } catch (const std::exception& e) {
      enqueue_error(id, e.what());
    }
  }

  // Writer side: pop entries in request order, wait, print. Runs until
  // finish() and the queue drains.
  void writer_loop(FILE* out) {
    for (;;) {
      entry e;
      {
        pp::sync::unique_lock<pp::sync::mutex> lk(m_);
        // Loop, not wait(lk, pred): the predicate reads m_-guarded state,
        // which -Wthread-safety only accepts inside the locked scope.
        while (!done_ && out_.empty()) cv_.wait(lk);
        if (out_.empty()) return;
        e = std::move(out_.front());
        out_.pop_front();
      }
      pp::json::writer w;
      w.begin_object();
      w.key("id").value_raw(e.id);
      if (e.fut.valid()) {
        pp::serve::response r = e.fut.get();
        w.member("ok", r.ok());
        if (r.ok()) {
          // Always present on solver responses so clients (and the CLI
          // test) can assert on it without membership checks: true only
          // when the engine's result cache answered without a solve.
          w.member("cached", r.cached);
          w.key("result").value_raw(pp::to_json(r.result));
          if (!e.session_name.empty()) {
            // Feed exact distances back as incremental labels for the
            // version this solve pinned (the table ignores stale feeds,
            // and a drop/eviction mid-flight is a no-op inside).
            if (const auto* sr = std::get_if<pp::sssp_result>(&r.result.value))
              tab_.note_solve(e.session_name, e.session_version, sr->dist);
          }
        } else {
          w.member("error", r.error);
        }
        if (!e.session_json.empty()) w.key("session").value_raw(e.session_json);
      } else if (!e.session_json.empty()) {
        w.member("ok", true);
        w.key("session").value_raw(e.session_json);
      } else if (!e.stats.empty()) {
        w.member("ok", true);
        w.key("stats").value_raw(e.stats);
      } else if (!e.metrics.empty()) {
        w.member("ok", true);
        // Prometheus text is not JSON — it rides as a string member.
        w.member("metrics", e.metrics);
      } else {
        w.member("ok", false);
        w.member("error", e.err);
      }
      w.end_object();
      std::fprintf(out, "%s\n", w.str().c_str());
      std::fflush(out);
      if (!g_trace_dir.empty())
        pp::trace::write_chrome_json(g_trace_dir + "/" + sanitize_id(e.id) + ".json");
    }
  }

  void finish() {
    {
      pp::sync::lock_guard<pp::sync::mutex> lk(m_);
      done_ = true;
    }
    cv_.notify_all();
  }

 private:
  struct entry {
    std::string id;  // raw JSON text (number or string)
    std::future<pp::serve::response> fut;  // invalid => a field below answers
    std::string stats;                     // raw JSON: engine_stats snapshot
    std::string metrics;                   // Prometheus text: metrics snapshot
    std::string err;
    // Session verbs: the response's "session" member (raw JSON). With a
    // valid fut this rides a solve; alone it IS the response payload.
    std::string session_json;
    std::string session_name;      // non-empty => feed distances back on ok
    uint64_t session_version = 0;  // the version the solve pinned
  };

  void push(entry e) {
    {
      pp::sync::lock_guard<pp::sync::mutex> lk(m_);
      out_.push_back(std::move(e));
    }
    cv_.notify_one();
  }

  void enqueue_error(std::string id, std::string err) {
    entry e;
    e.id = std::move(id);
    e.err = std::move(err);
    push(std::move(e));
  }

  // Point-in-time engine_stats snapshot (taken at parse time; printed in
  // request order like everything else).
  void enqueue_stats(std::string id) {
    entry e;
    e.id = std::move(id);
    e.stats = pp::serve::to_json(eng_.stats());
    push(std::move(e));
  }

  // Point-in-time Prometheus rendering of the process-wide metric registry.
  void enqueue_metrics(std::string id) {
    entry e;
    e.id = std::move(id);
    e.metrics = pp::metrics::render_prometheus();
    push(std::move(e));
  }

  // An immediately-answered session verb (create/delta/drop): the table
  // already did the work, the entry just carries the response payload.
  void enqueue_session(std::string id, std::string json) {
    entry e;
    e.id = std::move(id);
    e.session_json = std::move(json);
    push(std::move(e));
  }

  pp::serve::engine& eng_;
  pp::serve::session_table& tab_;
  pp::sync::mutex m_;
  std::condition_variable_any cv_;
  std::deque<entry> out_ PP_GUARDED_BY(m_);
  bool done_ PP_GUARDED_BY(m_) = false;
  uint64_t index_ = 0;  // reader-thread only; never shared
};

void serve_stream(pp::serve::engine& eng, pp::serve::session_table& tab, FILE* in, FILE* out) {
  session s(eng, tab);
  std::thread writer([&] { s.writer_loop(out); });
  std::string line;
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') {
      s.feed_line(line);
      line.clear();
    } else {
      line += static_cast<char>(c);
    }
  }
  if (!line.empty()) s.feed_line(line);
  s.finish();
  writer.join();
}

#if PPSERVE_HAS_TCP
// Minimal loopback HTTP/1.0 scrape endpoint: GET /metrics -> 200 with the
// Prometheus text rendering, anything else -> 404. One request per
// connection, served sequentially — a scrape is a few KB of formatting,
// and Prometheus polls on the order of seconds.
void serve_metrics_http(int port) {
  std::signal(SIGPIPE, SIG_IGN);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("ppserve: metrics socket");
    return;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    std::perror("ppserve: metrics bind/listen");
    ::close(fd);
    return;
  }
  std::fprintf(stderr, "ppserve: metrics on http://127.0.0.1:%d/metrics\n", port);
  for (;;) {
    int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      std::perror("ppserve: metrics accept");
      break;
    }
    // The request line fits in one read for any real scraper; everything
    // past it (headers) is irrelevant to routing.
    char buf[2048];
    ssize_t got = ::recv(client, buf, sizeof(buf) - 1, 0);
    std::string head(buf, got > 0 ? static_cast<size_t>(got) : 0);
    bool found = head.rfind("GET /metrics", 0) == 0;
    std::string body = found ? pp::metrics::render_prometheus() : "not found\n";
    char hdr[256];
    std::snprintf(hdr, sizeof(hdr),
                  "HTTP/1.0 %s\r\n"
                  "Content-Type: %s\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n\r\n",
                  found ? "200 OK" : "404 Not Found",
                  found ? "text/plain; version=0.0.4; charset=utf-8" : "text/plain",
                  body.size());
    (void)::send(client, hdr, std::strlen(hdr), 0);
    (void)::send(client, body.data(), body.size(), 0);
    ::close(client);
  }
  ::close(fd);
}

void serve_tcp(pp::serve::engine& eng, pp::serve::session_table& tab, int port) {
  // A client that disconnects before reading its response must not kill
  // the daemon: writes to its closed socket should fail with EPIPE, not
  // raise SIGPIPE (default disposition: terminate the whole process).
  std::signal(SIGPIPE, SIG_IGN);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("ppserve: socket");
    return;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    std::perror("ppserve: bind/listen");
    ::close(fd);
    return;
  }
  std::fprintf(stderr, "ppserve: listening on 127.0.0.1:%d\n", port);
  for (;;) {
    int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      // Transient failures (fd exhaustion under a connection burst, a
      // connection aborted before accept, a signal) must not permanently
      // kill the TCP surface of an otherwise healthy daemon.
      if (errno == EINTR || errno == ECONNABORTED || errno == EMFILE || errno == ENFILE) {
        std::perror("ppserve: accept (transient)");
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      std::perror("ppserve: accept");
      break;
    }
    std::thread([&eng, &tab, client] {
      // Every fd owns exactly one owner on every path: a failed fdopen
      // must not strand `client` (or the dup) open, or fd exhaustion
      // becomes permanent instead of transient.
      FILE* in = ::fdopen(client, "r");
      if (in == nullptr) {
        ::close(client);
        return;
      }
      int wfd = ::dup(client);
      FILE* out = wfd >= 0 ? ::fdopen(wfd, "w") : nullptr;
      if (out == nullptr) {
        if (wfd >= 0) ::close(wfd);
        std::fclose(in);
        return;
      }
      serve_stream(eng, tab, in, out);
      std::fclose(in);
      std::fclose(out);
    }).detach();
  }
  ::close(fd);
}
#endif

}  // namespace

int main(int argc, char** argv) {
  daemon_options opt;
  opt.eng.ctx = pp::default_context();
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      opt.port = static_cast<int>(parse_int(argv[0], "--port", need("--port"), 1, 65535));
    } else if (std::strcmp(argv[i], "--metrics-port") == 0) {
      opt.metrics_port = static_cast<int>(
          parse_int(argv[0], "--metrics-port", need("--metrics-port"), 1, 65535));
    } else if (std::strcmp(argv[i], "--trace-dir") == 0) {
      opt.trace_dir = need("--trace-dir");
      if (opt.trace_dir.empty()) {
        std::fprintf(stderr, "%s: --trace-dir needs a non-empty directory\n", argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--max-inflight") == 0) {
      // 0 is clamped to one executor HERE, visibly, instead of relying on
      // the engine constructor's silent fixup.
      long long v = parse_int(argv[0], "--max-inflight", need("--max-inflight"), 0,
                              std::numeric_limits<unsigned>::max());
      if (v == 0) {
        std::fprintf(stderr, "%s: --max-inflight 0 clamped to 1 (at least one executor)\n",
                     argv[0]);
        v = 1;
      }
      opt.eng.max_inflight_runs = static_cast<unsigned>(v);
    } else if (std::strcmp(argv[i], "--workers-per-run") == 0) {
      // 0 keeps the engine's "partition the machine evenly" default.
      opt.eng.workers_per_run = static_cast<unsigned>(
          parse_int(argv[0], "--workers-per-run", need("--workers-per-run"), 0,
                    std::numeric_limits<unsigned>::max()));
    } else if (std::strcmp(argv[i], "--batch-window-us") == 0) {
      // 0 = flush immediately (valid); negative windows are nonsense.
      opt.eng.batch_window = std::chrono::microseconds(parse_int(
          argv[0], "--batch-window-us", need("--batch-window-us"), 0, 60'000'000));
    } else if (std::strcmp(argv[i], "--max-batch") == 0) {
      opt.eng.max_batch = static_cast<size_t>(
          parse_int(argv[0], "--max-batch", need("--max-batch"), 1, 1'000'000));
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      opt.eng.queue_capacity = static_cast<size_t>(
          parse_int(argv[0], "--queue", need("--queue"), 1, 100'000'000));
    } else if (std::strcmp(argv[i], "--cache-entries") == 0) {
      // Minimum 1: "0 entries" is spelled --cache-off, so a negative or
      // zero count here is a mistake, not a disable request.
      opt.eng.cache_entries = static_cast<size_t>(
          parse_int(argv[0], "--cache-entries", need("--cache-entries"), 1, 100'000'000));
    } else if (std::strcmp(argv[i], "--cache-off") == 0) {
      opt.eng.cache_entries = 0;  // dedup of in-flight duplicates stays on
    } else if (std::strcmp(argv[i], "--max-sessions") == 0) {
      // Minimum 1: a session-less daemon is the default behavior already,
      // and 0 would mean "every create immediately evicts itself".
      opt.max_sessions = static_cast<size_t>(
          parse_int(argv[0], "--max-sessions", need("--max-sessions"), 1, 1'000'000));
    } else if (std::strcmp(argv[i], "--max-n") == 0) {
      opt.max_n = static_cast<size_t>(parse_int(argv[0], "--max-n", need("--max-n"), 1,
                                                std::numeric_limits<long long>::max()));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.eng.ctx.seed = parse_u64(argv[0], "--seed", need("--seed"));
    } else if (std::strcmp(argv[i], "--relax-k") == 0) {
      // k-MultiQueue relaxation factor for relaxed-paradigm solvers; phase
      // and sequential solvers ignore it. Zero shards is nonsense -> min 1.
      opt.eng.ctx.relax_k = static_cast<unsigned>(
          parse_int(argv[0], "--relax-k", need("--relax-k"), 1,
                    std::numeric_limits<unsigned>::max()));
    } else if (std::strcmp(argv[i], "--backend") == 0) {
      const char* b = need("--backend");
      auto kind = pp::parse_backend(b);
      if (!kind) {
        std::fprintf(stderr, "%s: unknown backend '%s'\n", argv[0], b);
        return 2;
      }
      opt.eng.ctx.backend = *kind;
    } else {
      return usage(argv[0]);
    }
  }

  g_max_n = opt.max_n;
  if (!opt.trace_dir.empty()) {
    g_trace_dir = opt.trace_dir;
    pp::trace::set_enabled(true);
  }
  pp::serve::engine eng(opt.eng);
  pp::serve::session_table tab(opt.max_sessions);

#if PPSERVE_HAS_TCP
  std::thread tcp;
  if (opt.port >= 0) tcp = std::thread([&] { serve_tcp(eng, tab, opt.port); });
  // Detached: the scrape endpoint reads process-wide metrics only, and the
  // daemon must still exit at stdin EOF when --port was not given.
  if (opt.metrics_port >= 0)
    std::thread([p = opt.metrics_port] { serve_metrics_http(p); }).detach();
#else
  if (opt.port >= 0 || opt.metrics_port >= 0) {
    std::fprintf(stderr, "%s: --port/--metrics-port not supported on this platform\n", argv[0]);
    return 2;
  }
#endif

  serve_stream(eng, tab, stdin, stdout);

#if PPSERVE_HAS_TCP
  if (tcp.joinable()) {
    // stdin closed: a TCP-mode daemon keeps serving until killed.
    tcp.join();
  }
#endif
  eng.stop(/*drain=*/true);
  return 0;
}
