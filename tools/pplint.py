#!/usr/bin/env python3
"""pplint — project-invariant checker for the pp tree.

Static rules that the compilers and sanitizers cannot express but the
codebase depends on for correctness and reproducibility:

  cancel-in-parallel   cancel_point() must never appear lexically inside a
                       parallel_for(...) / par_do(...) argument list: a throw
                       on a pool worker escapes its job and terminates, a
                       throw between fork and join dangles references, and
                       the implicit form reads the process-wide context slot
                       (see src/core/cancel.h).
  banned-clock-rand    src/ and tools/ must not use std::rand, srand, or
                       std::chrono::system_clock. Randomness flows through
                       pp::hash64/derive_seed (reproducible); timing uses
                       steady_clock (monotonic) only.
  defaulted-seed       No function/constructor parameter named `seed` may
                       have a default argument. A silently-defaulted seed is
                       a hidden global that breaks reproducibility audits.
  solver-coverage      Every registered solver family must also register its
                       reference implementation (`<family>/sequential`, or
                       `sssp/dijkstra` for sssp) so the cross-checking
                       harnesses (test_soak, ppfuzz) can verify every
                       solver; and those harnesses must enumerate the
                       registry dynamically (`.solvers()`), never keep a
                       hand-maintained list that can go stale.
  json-fields          Every field of engine_stats, run_result, and
                       batch_result must be emitted by the corresponding
                       to_json writer, so machine-readable envelopes never
                       silently drop a counter that was added to the struct.
  fingerprint-coverage Every problem_input variant alternative must declare
                       a canonicalizer (`void canonicalize(const X&,
                       fingerprint_stream&)`), or its fingerprint would fall
                       back to nothing and content addressing (result cache,
                       dedup, golden table, ppfuzz corpus) silently breaks
                       for that problem (see core/fingerprint.h).
  relaxed-coverage     Every `*/relaxed` solver must (a) declare its
                       phase-mode determinism reference in its registry
                       description ("phase ref: <solver>", and that solver
                       must itself be registered — it is the oracle the
                       structural checkers and benches compare against),
                       (b) run on an execution path that carries a
                       cancel_point() call (the MultiQueue driver), and
                       (c) be exercised by tests/test_relaxed.cpp. Relaxed
                       solvers are exempt from the golden table, so this
                       rule is what keeps their oracle and coverage honest.
  metrics-coverage     Every metric name literal registered in
                       src/core/metrics.cpp (the single place names may
                       live) must appear in tests/test_trace.cpp (the
                       Prometheus golden) and in README.md (the metrics
                       catalog). A counter that ships unrendered-in-docs or
                       untested is invisible twice over; this rule makes
                       adding a metric force both the golden and the
                       catalog forward in the same commit.
  session-coverage     Every `*/incremental` solver must (a) declare its
                       from-scratch exactness oracle in its registry
                       description ("from-scratch ref: <solver>", itself
                       registered — incremental results are bit-compared
                       against it, never approximate), and (b) be
                       exercised by tests/test_session.cpp. ppserve must
                       handle all four session verbs (create/delta/solve/
                       drop), and to_json(session_desc) must emit every
                       session_desc field, so a session response can never
                       silently drop part of the descriptor.

Usage:
  tools/pplint.py [--root DIR]     lint the tree (exit 1 on violations)
  tools/pplint.py --self-test      prove each rule fires on a synthetic
                                   violation and stays quiet on clean code

Runs as ctest `test_pplint` / `test_pplint_selftest` and as a CI job.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Source preprocessing: strip comments and string/char literals so rules
# never fire on prose or quoted text. Newlines inside stripped regions are
# preserved so reported line numbers stay exact.


def strip_comments_and_strings(text):
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
            out.append(quote + quote)  # keep a token so `("")` stays balanced
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def cxx_files(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _dirnames, filenames in sorted(os.walk(base)):
            for name in sorted(filenames):
                if name.endswith((".h", ".hpp", ".cpp", ".cc")):
                    yield os.path.join(dirpath, name)


class Violation:
    def __init__(self, path, line, rule, msg):
        self.path, self.line, self.rule, self.msg = path, line, rule, msg

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule, self.msg)


# --------------------------------------------------------------------------
# Rule: cancel-in-parallel


def check_cancel_in_parallel(path, text):
    """Flag cancel_point() lexically inside a parallel_for/par_do call's
    argument list (which is where the loop-body/task lambdas live)."""
    out = []
    for m in re.finditer(r"\b(?:parallel_for|par_do)\s*\(", text):
        depth = 1
        i = m.end()
        start = i
        while i < len(text) and depth > 0:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
            i += 1
        span = text[start:i]
        c = re.search(r"\bcancel_point\s*\(", span)
        if c:
            out.append(
                Violation(
                    path,
                    line_of(text, start + c.start()),
                    "cancel-in-parallel",
                    "cancel_point() inside a parallel region: a throw here "
                    "escapes a pool worker or dangles a forked job "
                    "(src/core/cancel.h contract)",
                )
            )
    return out


# --------------------------------------------------------------------------
# Rule: banned-clock-rand

BANNED_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*rand\b"), "std::rand: use pp::hash64 / pp::random_stream"),
    (re.compile(r"(?<![\w:])srand\s*\("), "srand: use seeded pp::random_stream"),
    (
        re.compile(r"\bsystem_clock\b"),
        "system_clock: wall-clock time is not monotonic; use steady_clock",
    ),
]


def check_banned_clock_rand(path, text):
    out = []
    for pat, why in BANNED_PATTERNS:
        for m in pat.finditer(text):
            out.append(Violation(path, line_of(text, m.start()), "banned-clock-rand", why))
    return out


# --------------------------------------------------------------------------
# Rule: defaulted-seed


def check_defaulted_seed(path, text):
    """Flag `seed = <default>` where the innermost enclosing bracket is '(',
    i.e. a defaulted function/constructor parameter. Member initializers
    (innermost '{') and assignments at statement scope do not match."""
    out = []
    for m in re.finditer(r"\bseed\s*=(?!=)", text):
        # Walk backwards to the nearest unmatched opener.
        depth = 0
        innermost = None
        for ch in reversed(text[: m.start()]):
            if ch in ")}]":
                depth += 1
            elif ch in "({[":
                if depth == 0:
                    innermost = ch
                    break
                depth -= 1
        if innermost == "(":
            out.append(
                Violation(
                    path,
                    line_of(text, m.start()),
                    "defaulted-seed",
                    "parameter `seed` has a default argument; seeds must be "
                    "explicit at every call site",
                )
            )
    return out


# --------------------------------------------------------------------------
# Rule: solver-coverage

# Families whose reference solver is not `<family>/sequential`.
REFERENCE_EXCEPTIONS = {"sssp": "sssp/dijkstra"}


def registered_solvers(registry_text):
    return re.findall(r'add_solver\s*\(\s*\{\s*"([^"]+)"', registry_text)


def check_solver_coverage(root, registry_path, harness_paths):
    out = []
    with open(registry_path, encoding="utf-8") as f:
        raw = f.read()
    text = strip_comments_and_strings(raw)
    # Registration names live in string literals, so extract them from the
    # raw text but only at positions the stripped text still marks as code.
    names = registered_solvers(raw)
    if not names:
        out.append(Violation(registry_path, 1, "solver-coverage", "no add_solver registrations found (parser broken?)"))
        return out
    families = {}
    for n in names:
        fam = n.split("/", 1)[0]
        families.setdefault(fam, set()).add(n)
    for fam in sorted(families):
        ref = REFERENCE_EXCEPTIONS.get(fam, fam + "/sequential")
        if ref not in names:
            line = 1
            m = re.search(r'add_solver\s*\(\s*\{\s*"%s/' % re.escape(fam), raw)
            if m:
                line = line_of(raw, m.start())
            out.append(
                Violation(
                    registry_path,
                    line,
                    "solver-coverage",
                    "family '%s' registers %d solver(s) but no reference '%s'; "
                    "test_soak and ppfuzz cannot cross-check it" % (fam, len(families[fam]), ref),
                )
            )
    for hp in harness_paths:
        with open(hp, encoding="utf-8") as f:
            htext = strip_comments_and_strings(f.read())
        if ".solvers()" not in htext.replace(" ", ""):
            out.append(
                Violation(
                    hp,
                    1,
                    "solver-coverage",
                    "harness does not enumerate registry::instance().solvers(); "
                    "a hand-kept solver list silently goes stale",
                )
            )
    return out


# --------------------------------------------------------------------------
# Rule: json-fields

# Struct fields whose JSON spelling differs from the member name. A field
# mapping to multiple keys requires all of them.
FIELD_KEY_MAP = {
    ("run_result", "value"): ["score", "summary"],
    ("run_result", "input_fp"): ["input_fingerprint"],
}
# Fields that are deliberately not serialized (none today).
FIELD_SKIP = set()


def struct_fields(header_text, struct_name):
    """Data members of `struct <name> { ... }` at depth 1 (no methods, no
    nested types). Comments must already be stripped."""
    m = re.search(r"\bstruct\s+%s\b[^{;]*\{" % re.escape(struct_name), header_text)
    if not m:
        return None
    i = m.end()
    depth = 1
    body_start = i
    while i < len(header_text) and depth > 0:
        if header_text[i] == "{":
            depth += 1
        elif header_text[i] == "}":
            depth -= 1
        i += 1
    body = header_text[body_start : i - 1]
    # Remove nested braces (method bodies, nested types, brace initializers
    # keep their `=` form below) so only depth-1 declarations remain.
    flat = []
    depth = 0
    for ch in body:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        elif depth == 0:
            flat.append(ch)
    body = "".join(flat)
    # Drop annotation attributes so PP_GUARDED_BY(m_) doesn't read as '('.
    body = re.sub(r"\bPP_[A-Z_]+\s*\([^)]*\)", "", body)
    fields = []
    for decl in body.split(";"):
        decl = decl.split("=", 1)[0].strip()
        if not decl or "(" in decl or decl.startswith(("using ", "typedef ", "enum ", "struct ", "class ", "friend ", "static ")):
            continue
        dm = re.search(r"(\w+)\s*(?:\[[^\]]*\])?\s*$", decl)
        if dm and dm.group(1) not in ("public", "private", "protected", "const", "mutable"):
            fields.append(dm.group(1))
    return fields


def check_json_fields(root, spec):
    out = []
    for struct_name, header_rel, impl_rel in spec:
        header_path = os.path.join(root, header_rel)
        impl_path = os.path.join(root, impl_rel)
        with open(header_path, encoding="utf-8") as f:
            htext = strip_comments_and_strings(f.read())
        with open(impl_path, encoding="utf-8") as f:
            impl_raw = f.read()
        fields = struct_fields(htext, struct_name)
        if fields is None:
            out.append(Violation(header_path, 1, "json-fields", "struct %s not found" % struct_name))
            continue
        if not fields:
            out.append(Violation(header_path, 1, "json-fields", "no fields parsed for %s (parser broken?)" % struct_name))
            continue
        emitted = set(re.findall(r'w\s*\.\s*(?:member|key)\s*\(\s*"([^"]+)"', impl_raw))
        for field in fields:
            if (struct_name, field) in FIELD_SKIP:
                continue
            keys = FIELD_KEY_MAP.get((struct_name, field), [field])
            for key in keys:
                if key not in emitted:
                    out.append(
                        Violation(
                            header_path,
                            1,
                            "json-fields",
                            "%s field '%s' (JSON key '%s') is not emitted by "
                            "to_json in %s" % (struct_name, field, key, impl_rel),
                        )
                    )
    return out


# --------------------------------------------------------------------------
# Rule: fingerprint-coverage


def check_fingerprint_coverage(path, text):
    """Every alternative of `using problem_input = std::variant<...>` must
    have a canonicalizer declared (`canonicalize(const X&`). An alternative
    without one has no canonical byte stream, so its fingerprint — and with
    it the serve-layer cache/dedup keys, the golden-result table, and the
    ppfuzz corpus — would silently stop addressing that problem's content."""
    out = []
    m = re.search(r"\busing\s+problem_input\s*=\s*std\s*::\s*variant\s*<([^>]*)>", text)
    if not m:
        out.append(
            Violation(path, 1, "fingerprint-coverage", "problem_input variant not found (parser broken?)")
        )
        return out
    alts = [a.strip() for a in m.group(1).split(",") if a.strip()]
    if not alts:
        out.append(
            Violation(path, line_of(text, m.start()), "fingerprint-coverage", "problem_input variant has no alternatives (parser broken?)")
        )
        return out
    for alt in alts:
        if not re.search(r"\bcanonicalize\s*\(\s*const\s+%s\s*&" % re.escape(alt), text):
            out.append(
                Violation(
                    path,
                    line_of(text, m.start()),
                    "fingerprint-coverage",
                    "problem_input alternative '%s' has no canonicalizer "
                    "(void canonicalize(const %s&, fingerprint_stream&)); its "
                    "fingerprint cannot address the input's content" % (alt, alt),
                )
            )
    return out


# --------------------------------------------------------------------------
# Rule: relaxed-coverage


def check_relaxed_coverage(registry_path, impl_paths, test_path):
    """Every registered `*/relaxed` solver must declare a registered phase
    reference in its description, the relaxed execution path must contain a
    cancel_point() call, and the solver must appear in test_relaxed.cpp."""
    out = []
    with open(registry_path, encoding="utf-8") as f:
        raw = f.read()
    # Descriptions may be split across adjacent string literals, so capture
    # the whole literal run and re-join the fragments.
    regs = re.findall(
        r'add_solver\s*\(\s*\{\s*"([^"]+)"\s*,\s*"([^"]+)"\s*,\s*((?:"[^"]*"\s*)+)', raw
    )
    regs = [(n, p, "".join(re.findall(r'"([^"]*)"', d))) for n, p, d in regs]
    names = {n for n, _p, _d in regs}
    relaxed = [(n, d) for n, _p, d in regs if n.endswith("/relaxed")]
    for name, desc in relaxed:
        line = 1
        m = re.search(r'add_solver\s*\(\s*\{\s*"%s"' % re.escape(name), raw)
        if m:
            line = line_of(raw, m.start())
        rm = re.search(r"phase ref:\s*([\w/]+)", desc)
        if not rm:
            out.append(
                Violation(
                    registry_path,
                    line,
                    "relaxed-coverage",
                    "relaxed solver '%s' does not declare its determinism "
                    "reference ('phase ref: <solver>' in the description)" % name,
                )
            )
        elif rm.group(1) not in names:
            out.append(
                Violation(
                    registry_path,
                    line,
                    "relaxed-coverage",
                    "relaxed solver '%s' declares 'phase ref: %s' but no such "
                    "solver is registered" % (name, rm.group(1)),
                )
            )
    if not relaxed:
        return out
    impl_text = ""
    for p in impl_paths:
        with open(p, encoding="utf-8") as f:
            impl_text += strip_comments_and_strings(f.read())
    if not re.search(r"\bcancel_point\s*\(", impl_text):
        out.append(
            Violation(
                impl_paths[0] if impl_paths else registry_path,
                1,
                "relaxed-coverage",
                "relaxed execution path has no cancel_point() call; relaxed "
                "runs could never unwind on cancellation",
            )
        )
    if test_path is None or not os.path.exists(test_path):
        out.append(
            Violation(
                registry_path,
                1,
                "relaxed-coverage",
                "relaxed solvers are registered but tests/test_relaxed.cpp "
                "does not exist",
            )
        )
    else:
        with open(test_path, encoding="utf-8") as f:
            test_raw = f.read()
        for name, _d in relaxed:
            if name not in test_raw:
                out.append(
                    Violation(
                        test_path,
                        1,
                        "relaxed-coverage",
                        "relaxed solver '%s' is not exercised by %s"
                        % (name, os.path.basename(test_path)),
                    )
                )
    return out


# --------------------------------------------------------------------------
# Rule: metrics-coverage


def check_metrics_coverage(metrics_path, consumer_paths):
    """Every registered metric name ("pp_..." literals in the catalog
    constructor — src/core/metrics.cpp keeps them nowhere else) must appear
    verbatim in every consumer: the test golden and the README catalog."""
    out = []
    with open(metrics_path, encoding="utf-8") as f:
        raw = f.read()
    names = sorted(set(re.findall(r'\(\s*"(pp_[a-z0-9_]+)"', raw)))
    if not names:
        out.append(
            Violation(
                metrics_path,
                1,
                "metrics-coverage",
                "no metric name literals ('(\"pp_...\"') found; the catalog "
                "registration pattern changed and the rule lost its anchor",
            )
        )
        return out
    for path in consumer_paths:
        if not os.path.exists(path):
            out.append(
                Violation(
                    metrics_path,
                    1,
                    "metrics-coverage",
                    "metric consumer %s does not exist" % os.path.basename(path),
                )
            )
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for name in names:
            if name not in text:
                out.append(
                    Violation(
                        path,
                        1,
                        "metrics-coverage",
                        "metric '%s' (registered in src/core/metrics.cpp) is "
                        "missing from %s — every metric must be in the test "
                        "golden and the README catalog" % (name, os.path.basename(path)),
                    )
                )
    return out


# --------------------------------------------------------------------------
# Rule: session-coverage

SESSION_VERBS = ("create", "delta", "solve", "drop")
# session_desc members whose JSON spelling differs from the field name.
SESSION_FIELD_KEYS = {"fp": "fingerprint"}


def check_session_coverage(registry_path, test_path, serve_path, session_h_path,
                           session_cpp_path):
    """Every registered `*/incremental` solver must declare a registered
    from-scratch reference in its description and appear in
    tests/test_session.cpp; ppserve must dispatch every session verb; and
    to_json(session_desc) must emit every descriptor field."""
    out = []
    with open(registry_path, encoding="utf-8") as f:
        raw = f.read()
    regs = re.findall(
        r'add_solver\s*\(\s*\{\s*"([^"]+)"\s*,\s*"([^"]+)"\s*,\s*((?:"[^"]*"\s*)+)', raw
    )
    regs = [(n, "".join(re.findall(r'"([^"]*)"', d))) for n, _p, d in regs]
    names = {n for n, _d in regs}
    incremental = [(n, d) for n, d in regs if n.endswith("/incremental")]
    for name, desc in incremental:
        line = 1
        m = re.search(r'add_solver\s*\(\s*\{\s*"%s"' % re.escape(name), raw)
        if m:
            line = line_of(raw, m.start())
        rm = re.search(r"from-scratch ref:\s*([\w/]+)", desc)
        if not rm:
            out.append(
                Violation(
                    registry_path,
                    line,
                    "session-coverage",
                    "incremental solver '%s' does not declare its exactness "
                    "oracle ('from-scratch ref: <solver>' in the description)" % name,
                )
            )
        elif rm.group(1) not in names:
            out.append(
                Violation(
                    registry_path,
                    line,
                    "session-coverage",
                    "incremental solver '%s' declares 'from-scratch ref: %s' "
                    "but no such solver is registered" % (name, rm.group(1)),
                )
            )
    if incremental:
        if test_path is None or not os.path.exists(test_path):
            out.append(
                Violation(
                    registry_path,
                    1,
                    "session-coverage",
                    "incremental solvers are registered but "
                    "tests/test_session.cpp does not exist",
                )
            )
        else:
            with open(test_path, encoding="utf-8") as f:
                test_raw = f.read()
            for name, _d in incremental:
                if name not in test_raw:
                    out.append(
                        Violation(
                            test_path,
                            1,
                            "session-coverage",
                            "incremental solver '%s' is not exercised by %s"
                            % (name, os.path.basename(test_path)),
                        )
                    )
    if serve_path is not None and os.path.exists(serve_path):
        with open(serve_path, encoding="utf-8") as f:
            serve_raw = f.read()
        for verb in SESSION_VERBS:
            if not re.search(r'verb\s*==\s*"%s"' % verb, serve_raw):
                out.append(
                    Violation(
                        serve_path,
                        1,
                        "session-coverage",
                        "ppserve does not dispatch the session verb '%s' "
                        "(want all of create/delta/solve/drop)" % verb,
                    )
                )
    if session_h_path is not None and os.path.exists(session_h_path):
        with open(session_h_path, encoding="utf-8") as f:
            htext = strip_comments_and_strings(f.read())
        with open(session_cpp_path, encoding="utf-8") as f:
            impl_raw = f.read()
        fields = struct_fields(htext, "session_desc")
        if not fields:
            out.append(
                Violation(
                    session_h_path,
                    1,
                    "session-coverage",
                    "struct session_desc not found or has no fields (parser broken?)",
                )
            )
        else:
            emitted = set(re.findall(r'w\s*\.\s*(?:member|key)\s*\(\s*"([^"]+)"', impl_raw))
            for field in fields:
                key = SESSION_FIELD_KEYS.get(field, field)
                if key not in emitted:
                    out.append(
                        Violation(
                            session_h_path,
                            1,
                            "session-coverage",
                            "session_desc field '%s' (JSON key '%s') is not "
                            "emitted by to_json in %s"
                            % (field, key, os.path.basename(session_cpp_path)),
                        )
                    )
    return out


# --------------------------------------------------------------------------
# Driver

JSON_SPEC = [
    ("engine_stats", "src/serve/engine.h", "src/serve/engine.cpp"),
    ("run_result", "src/core/result.h", "src/core/registry.cpp"),
    ("batch_result", "src/core/result.h", "src/core/registry.cpp"),
]


def lint_tree(root):
    violations = []
    for path in cxx_files(root, ["src", "tools", "examples", "bench"]):
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        text = strip_comments_and_strings(raw)
        violations += check_cancel_in_parallel(path, text)
        violations += check_defaulted_seed(path, text)
        if not path.startswith(os.path.join(root, "examples")) and not path.startswith(
            os.path.join(root, "bench")
        ):
            violations += check_banned_clock_rand(path, text)
    registry = os.path.join(root, "src", "core", "registry.cpp")
    harnesses = [
        os.path.join(root, "tests", "test_soak.cpp"),
        os.path.join(root, "tools", "ppfuzz.cpp"),
    ]
    if os.path.exists(registry):
        violations += check_solver_coverage(root, registry, [h for h in harnesses if os.path.exists(h)])
        relaxed_impls = [
            p
            for p in (
                os.path.join(root, "src", "algos", "relaxed.cpp"),
                os.path.join(root, "src", "parallel", "multiqueue.h"),
            )
            if os.path.exists(p)
        ]
        violations += check_relaxed_coverage(
            registry, relaxed_impls, os.path.join(root, "tests", "test_relaxed.cpp")
        )
        violations += check_session_coverage(
            registry,
            os.path.join(root, "tests", "test_session.cpp"),
            os.path.join(root, "tools", "ppserve.cpp"),
            os.path.join(root, "src", "serve", "session.h"),
            os.path.join(root, "src", "serve", "session.cpp"),
        )
    violations += check_json_fields(root, [s for s in JSON_SPEC if os.path.exists(os.path.join(root, s[1]))])
    metrics_cpp = os.path.join(root, "src", "core", "metrics.cpp")
    if os.path.exists(metrics_cpp):
        violations += check_metrics_coverage(
            metrics_cpp,
            [os.path.join(root, "tests", "test_trace.cpp"), os.path.join(root, "README.md")],
        )
    registry_h = os.path.join(root, "src", "core", "registry.h")
    if os.path.exists(registry_h):
        with open(registry_h, encoding="utf-8") as f:
            violations += check_fingerprint_coverage(registry_h, strip_comments_and_strings(f.read()))
    return violations


# --------------------------------------------------------------------------
# Self-test: each rule must fire on a synthetic violation and stay quiet on
# the clean twin. The fixtures double as documentation of what each rule
# rejects.

FIXTURE_CANCEL_BAD = """
void solve() {
  parallel_for(0, n, [&](size_t i) {
    relax(i);
    pp::cancel_point();  // throw on a pool worker -> terminate
  });
}
"""

FIXTURE_CANCEL_GOOD = """
void solve() {
  for (int round = 0; round < rounds; ++round) {
    pp::cancel_point();  // quiescent point between phases: legal
    parallel_for(0, n, [&](size_t i) { relax(i); });
  }
}
"""

FIXTURE_CLOCK_BAD = """
#include <chrono>
double now() {
  auto t = std::chrono::system_clock::now();  // non-monotonic
  int r = std::rand();
  return r;
}
"""

FIXTURE_CLOCK_GOOD = """
#include <chrono>
// std::rand and system_clock in a comment are fine.
double now() {
  auto t = std::chrono::steady_clock::now();
  return 0;
}
"""

FIXTURE_SEED_BAD = """
struct gen {
  explicit gen(uint64_t seed = 0);  // hidden global default
};
"""

FIXTURE_SEED_GOOD = """
struct gen {
  explicit gen(uint64_t seed);
  uint64_t seed = 7;  // member initializer: innermost bracket is '{'
};
void use() {
  uint64_t seed = 3;  // statement scope: no enclosing '('
  gen g(seed);
}
"""

FIXTURE_REGISTRY_BAD = """
void register_all(registry& r) {
  r.add_solver({"foo/parallel", "foo", "has no reference twin"}, fn);
  r.add_solver({"bar/sequential", "bar", "fine"}, fn);
}
"""

FIXTURE_HARNESS_BAD = """
int main() {
  const char* names[] = {"foo/parallel", "bar/sequential"};  // stale list
  for (auto n : names) run(n);
}
"""

FIXTURE_JSON_HEADER = """
struct engine_stats {
  uint64_t submitted = 0;
  uint64_t dropped = 0;  // new counter, forgotten in to_json
};
"""

FIXTURE_JSON_IMPL = """
std::string to_json(const engine_stats& s) {
  json::writer w;
  w.begin_object();
  w.member("submitted", s.submitted);
  w.end_object();
  return w.str();
}
"""


FIXTURE_RELAXED_REGISTRY_BAD = """
void register_all(registry& r) {
  r.add_solver({"foo/relaxed", "graph", "async greedy, reference unstated"}, fn);
  r.add_solver({"bar/relaxed", "graph", "async greedy (phase ref: bar/rounds)"}, fn);
  r.add_solver({"foo/sequential", "graph", "fine"}, fn);
}
"""

FIXTURE_RELAXED_REGISTRY_GOOD = """
void register_all(registry& r) {
  r.add_solver({"baz/relaxed", "graph", "async greedy (phase ref: baz/rounds)"}, fn);
  r.add_solver({"baz/rounds", "graph", "phase-parallel twin"}, fn);
}
"""

FIXTURE_RELAXED_IMPL_BAD = """
mq_counters mq_run(const context& ctx, multiqueue& q) {
  // no cancel_point anywhere: a cancelled relaxed run could never unwind
  return {};
}
"""

FIXTURE_RELAXED_IMPL_GOOD = """
mq_counters mq_run(const context& ctx, multiqueue& q) {
  cancel_point();
  return {};
}
"""

FIXTURE_RELAXED_TEST_GOOD = """
TEST(Relaxed, Valid) { run("baz/relaxed"); }
"""

FIXTURE_FP_BAD = """
struct alpha_input { int n; };
void canonicalize(const alpha_input& in, fingerprint_stream& s);
struct beta_input { int n; };  // no canonicalizer: content-address hole
using problem_input = std::variant<alpha_input, beta_input>;
"""

FIXTURE_FP_GOOD = """
struct alpha_input { int n; };
void canonicalize(const alpha_input& in, fingerprint_stream& s);
struct beta_input { int n; };
void canonicalize(const beta_input& in, fingerprint_stream& s);
using problem_input =
    std::variant<alpha_input, beta_input>;
"""


FIXTURE_SESSION_REGISTRY_BAD = """
void register_all(registry& r) {
  r.add_solver({"foo/incremental", "graph", "delta re-solve, oracle unstated"}, fn);
  r.add_solver({"bar/incremental", "graph", "delta re-solve (from-scratch ref: bar/exact)"}, fn);
  r.add_solver({"foo/sequential", "graph", "fine"}, fn);
}
"""

FIXTURE_SESSION_REGISTRY_GOOD = """
void register_all(registry& r) {
  r.add_solver({"baz/incremental", "graph", "delta re-solve (from-scratch ref: baz/sequential)"}, fn);
  r.add_solver({"baz/sequential", "graph", "the exactness oracle"}, fn);
}
"""

FIXTURE_SESSION_TEST_GOOD = """
TEST(Session, IncrementalIsExact) { run("baz/incremental"); }
"""

FIXTURE_SESSION_SERVE_BAD = """
void feed(const std::string& verb) {
  if (verb == "create") { }
  if (verb == "delta") { }
  if (verb == "solve") { }
  // "drop" forgotten: sessions could never be released over the wire
}
"""

FIXTURE_SESSION_SERVE_GOOD = """
void feed(const std::string& verb) {
  if (verb == "create") { }
  if (verb == "delta") { }
  if (verb == "solve") { }
  if (verb == "drop") { }
}
"""

FIXTURE_SESSION_DESC_H = """
struct session_desc {
  std::string name;
  uint64_t version = 0;
  fingerprint fp{};
  bool hints = false;  // forgotten by the bad to_json below
};
"""

FIXTURE_SESSION_DESC_IMPL_BAD = """
std::string to_json(const session_desc& d) {
  json::writer w;
  w.begin_object();
  w.member("name", d.name);
  w.member("version", d.version);
  w.member("fingerprint", d.fp.hex());
  w.end_object();
  return w.str();
}
"""

FIXTURE_SESSION_DESC_IMPL_GOOD = """
std::string to_json(const session_desc& d) {
  json::writer w;
  w.begin_object();
  w.member("name", d.name);
  w.member("version", d.version);
  w.member("fingerprint", d.fp.hex());
  w.member("hints", d.hints);
  w.end_object();
  return w.str();
}
"""


FIXTURE_METRICS_REG = """
catalog::catalog()
    : serve_submitted("pp_serve_submitted_total", "Requests admitted"),
      queue_depth("pp_serve_queue_depth", "Entries queued") {
  counters_.push_back(&serve_submitted);
}
"""

FIXTURE_METRICS_CONSUMER_GOOD = """
pp_serve_submitted_total — requests admitted.
pp_serve_queue_depth — entries queued right now.
"""

FIXTURE_METRICS_CONSUMER_BAD = """
pp_serve_submitted_total — requests admitted. (queue depth undocumented)
"""


def expect(cond, what, failures):
    if cond:
        print("  ok: %s" % what)
    else:
        print("  FAIL: %s" % what)
        failures.append(what)


def self_test():
    import tempfile

    failures = []
    print("pplint self-test")

    v = check_cancel_in_parallel("bad.cpp", strip_comments_and_strings(FIXTURE_CANCEL_BAD))
    expect(len(v) == 1 and v[0].rule == "cancel-in-parallel", "cancel-in-parallel fires on cancel_point in parallel_for body", failures)
    v = check_cancel_in_parallel("good.cpp", strip_comments_and_strings(FIXTURE_CANCEL_GOOD))
    expect(len(v) == 0, "cancel-in-parallel quiet on phase-boundary cancel_point", failures)

    v = check_banned_clock_rand("bad.cpp", strip_comments_and_strings(FIXTURE_CLOCK_BAD))
    expect(
        len(v) == 2
        and any(x.msg.startswith("std::rand") for x in v)
        and any(x.msg.startswith("system_clock") for x in v),
        "banned-clock-rand fires on std::rand and system_clock",
        failures,
    )
    v = check_banned_clock_rand("good.cpp", strip_comments_and_strings(FIXTURE_CLOCK_GOOD))
    expect(len(v) == 0, "banned-clock-rand quiet on steady_clock and comments", failures)

    v = check_defaulted_seed("bad.h", strip_comments_and_strings(FIXTURE_SEED_BAD))
    expect(len(v) == 1 and v[0].rule == "defaulted-seed", "defaulted-seed fires on `seed = 0` parameter", failures)
    v = check_defaulted_seed("good.h", strip_comments_and_strings(FIXTURE_SEED_GOOD))
    expect(len(v) == 0, "defaulted-seed quiet on member initializer and locals", failures)

    with tempfile.TemporaryDirectory() as td:
        reg = os.path.join(td, "registry.cpp")
        harness = os.path.join(td, "soak.cpp")
        with open(reg, "w") as f:
            f.write(FIXTURE_REGISTRY_BAD)
        with open(harness, "w") as f:
            f.write(FIXTURE_HARNESS_BAD)
        v = check_solver_coverage(td, reg, [harness])
        expect(
            len(v) == 2 and any("foo" in x.msg for x in v) and any("solvers()" in x.msg for x in v),
            "solver-coverage fires on missing reference and stale harness list",
            failures,
        )

        hdr = os.path.join(td, "engine.h")
        impl = os.path.join(td, "engine.cpp")
        with open(hdr, "w") as f:
            f.write(FIXTURE_JSON_HEADER)
        with open(impl, "w") as f:
            f.write(FIXTURE_JSON_IMPL)
        v = check_json_fields(td, [("engine_stats", "engine.h", "engine.cpp")])
        expect(
            len(v) == 1 and "dropped" in v[0].msg,
            "json-fields fires on struct field missing from to_json",
            failures,
        )

        rreg_bad = os.path.join(td, "relaxed_registry_bad.cpp")
        rreg_good = os.path.join(td, "relaxed_registry_good.cpp")
        rimpl_bad = os.path.join(td, "relaxed_impl_bad.h")
        rimpl_good = os.path.join(td, "relaxed_impl_good.h")
        rtest = os.path.join(td, "test_relaxed.cpp")
        for p, content in (
            (rreg_bad, FIXTURE_RELAXED_REGISTRY_BAD),
            (rreg_good, FIXTURE_RELAXED_REGISTRY_GOOD),
            (rimpl_bad, FIXTURE_RELAXED_IMPL_BAD),
            (rimpl_good, FIXTURE_RELAXED_IMPL_GOOD),
            (rtest, FIXTURE_RELAXED_TEST_GOOD),
        ):
            with open(p, "w") as f:
                f.write(content)
        v = check_relaxed_coverage(rreg_bad, [rimpl_bad], rtest)
        expect(
            any("does not declare its determinism reference" in x.msg for x in v)
            and any("no such solver is registered" in x.msg for x in v)
            and any("no cancel_point" in x.msg for x in v)
            and any("not exercised by" in x.msg for x in v),
            "relaxed-coverage fires on missing ref, bad ref, missing cancel_point, untested solver",
            failures,
        )
        v = check_relaxed_coverage(rreg_good, [rimpl_good], rtest)
        expect(
            len(v) == 0,
            "relaxed-coverage quiet on declared+registered ref, cancel_point, tested solver",
            failures,
        )

        sreg_bad = os.path.join(td, "session_registry_bad.cpp")
        sreg_good = os.path.join(td, "session_registry_good.cpp")
        stest = os.path.join(td, "test_session.cpp")
        sserve_bad = os.path.join(td, "ppserve_bad.cpp")
        sserve_good = os.path.join(td, "ppserve_good.cpp")
        sdesc_h = os.path.join(td, "session.h")
        sdesc_bad = os.path.join(td, "session_bad.cpp")
        sdesc_good = os.path.join(td, "session_good.cpp")
        for p, content in (
            (sreg_bad, FIXTURE_SESSION_REGISTRY_BAD),
            (sreg_good, FIXTURE_SESSION_REGISTRY_GOOD),
            (stest, FIXTURE_SESSION_TEST_GOOD),
            (sserve_bad, FIXTURE_SESSION_SERVE_BAD),
            (sserve_good, FIXTURE_SESSION_SERVE_GOOD),
            (sdesc_h, FIXTURE_SESSION_DESC_H),
            (sdesc_bad, FIXTURE_SESSION_DESC_IMPL_BAD),
            (sdesc_good, FIXTURE_SESSION_DESC_IMPL_GOOD),
        ):
            with open(p, "w") as f:
                f.write(content)
        v = check_session_coverage(sreg_bad, stest, sserve_bad, sdesc_h, sdesc_bad)
        expect(
            any("does not declare its exactness oracle" in x.msg for x in v)
            and any("no such solver is registered" in x.msg for x in v)
            and any("not exercised by" in x.msg for x in v)
            and any("session verb 'drop'" in x.msg for x in v)
            and any("field 'hints'" in x.msg for x in v),
            "session-coverage fires on missing ref, bad ref, untested solver, missing verb, dropped desc field",
            failures,
        )
        v = check_session_coverage(sreg_good, stest, sserve_good, sdesc_h, sdesc_good)
        expect(
            len(v) == 0,
            "session-coverage quiet on declared+registered ref, tested solver, full verbs and desc",
            failures,
        )

        mreg = os.path.join(td, "metrics.cpp")
        mgood = os.path.join(td, "consumer_good.md")
        mbad = os.path.join(td, "consumer_bad.md")
        for p, content in (
            (mreg, FIXTURE_METRICS_REG),
            (mgood, FIXTURE_METRICS_CONSUMER_GOOD),
            (mbad, FIXTURE_METRICS_CONSUMER_BAD),
        ):
            with open(p, "w") as f:
                f.write(content)
        v = check_metrics_coverage(mreg, [mbad])
        expect(
            len(v) == 1 and v[0].rule == "metrics-coverage" and "pp_serve_queue_depth" in v[0].msg,
            "metrics-coverage fires on a metric missing from a consumer",
            failures,
        )
        v = check_metrics_coverage(mreg, [mgood])
        expect(len(v) == 0, "metrics-coverage quiet when every name is documented", failures)
        empty = os.path.join(td, "empty_metrics.cpp")
        with open(empty, "w") as f:
            f.write("// no registrations here\n")
        v = check_metrics_coverage(empty, [mgood])
        expect(
            len(v) == 1 and "lost its anchor" in v[0].msg,
            "metrics-coverage fires when the registration anchor vanishes",
            failures,
        )

    v = check_fingerprint_coverage("bad.h", strip_comments_and_strings(FIXTURE_FP_BAD))
    expect(
        len(v) == 1 and v[0].rule == "fingerprint-coverage" and "beta_input" in v[0].msg,
        "fingerprint-coverage fires on variant alternative without canonicalizer",
        failures,
    )
    v = check_fingerprint_coverage("good.h", strip_comments_and_strings(FIXTURE_FP_GOOD))
    expect(len(v) == 0, "fingerprint-coverage quiet when every alternative is covered", failures)

    if failures:
        print("self-test FAILED (%d)" % len(failures))
        return 1
    print("self-test passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description="pp project-invariant linter")
    ap.add_argument("--root", default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))), help="repo root (default: parent of tools/)")
    ap.add_argument("--self-test", action="store_true", help="run the rule fixtures instead of linting the tree")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    violations = lint_tree(args.root)
    for v in violations:
        print(v)
    if violations:
        print("pplint: %d violation(s)" % len(violations))
        return 1
    print("pplint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
