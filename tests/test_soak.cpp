// Registry-driven soak smoke test (ROADMAP: fuzzing/soak harness): every
// registered solver x every backend x 3 seeds, cross-checking score_of
// agreement between the family's sequential reference and each variant.
// The registry + input factories make this the ~50-line loop the ROADMAP
// describes; any mismatch prints the failing (solver, backend, seed, n)
// triple so a nightly run minimizes itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "checkers.h"
#include "core/registry.h"
#include "test_backends.h"

namespace {

using pp::registry;

// Sequential reference of a solver family ("lis/parallel" -> family "lis").
// Every family names its reference "<family>/sequential" except sssp,
// whose sequential baseline is Dijkstra.
std::string reference_of(const std::string& solver_name) {
  std::string family = solver_name.substr(0, solver_name.find('/'));
  std::string ref = family + "/sequential";
  if (!registry::instance().contains(ref) && family == "sssp") ref = "sssp/dijkstra";
  return ref;
}

TEST(Soak, EverySolverEveryBackendThreeSeeds) {
  auto& reg = registry::instance();
  const uint64_t seeds[] = {101, 202, 303};
  const size_t n = 600;

  for (uint64_t seed : seeds) {
    // One input per problem per seed, shared by the whole family sweep.
    std::map<std::string, pp::problem_input> inputs;
    // Reference scores, computed once per (reference solver, seed).
    std::map<std::string, int64_t> ref_scores;
    // Full reference payloads, kept for the structural branch below.
    std::map<std::string, pp::solver_value> ref_values;

    for (const auto& s : reg.solvers()) {
      if (!inputs.count(s.problem)) inputs.emplace(s.problem, reg.make_input(s.problem, n, seed));
      const auto& input = inputs.at(s.problem);

      std::string ref = reference_of(s.name);
      ASSERT_TRUE(reg.contains(ref)) << "no sequential reference for " << s.name;
      if (!ref_scores.count(ref)) {
        auto res = registry::run(
            ref, input, pp::context{}.with_backend(pp::backend_kind::sequential).with_seed(seed));
        ref_scores.emplace(ref, pp::score_of(res.value));
        ref_values.emplace(ref, std::move(res.value));
      }

      const bool relaxed = pp::paradigm_of(s) == pp::solver_paradigm::relaxed;
      for (auto b : pp_test::backends_under_test()) {
        auto res = registry::run(s.name, input, pp::context{}.with_backend(b).with_seed(seed));
        if (relaxed) {
          // Relaxed solvers promise structural validity (exact distances
          // for SSSP), not score equality with the reference schedule.
          std::string why;
          EXPECT_TRUE(
              pp_check::structurally_valid(s.name, input, res.value, ref_values.at(ref), &why))
              << "soak mismatch: " << why << " backend=" << pp::backend_name(b)
              << " seed=" << seed << " n=" << n;
          continue;
        }
        EXPECT_EQ(pp::score_of(res.value), ref_scores.at(ref))
            << "soak mismatch: solver=" << s.name << " backend=" << pp::backend_name(b)
            << " seed=" << seed << " n=" << n << " (reference " << ref << ")";
      }
    }
  }
}

}  // namespace
