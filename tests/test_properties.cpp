// Theorem-shaped property tests: the paper's structural results checked on
// random instances (beyond the per-algorithm output equivalence suites).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <set>
#include <vector>

#include "algos/activity.h"
#include "algos/huffman.h"
#include "algos/lis.h"
#include "algos/mis.h"
#include "algos/whac.h"
#include "graph/generators.h"
#include "pabst/augmented_map.h"
#include "parallel/random.h"

namespace {

// --- Theorem 3.2 / Corollary 3.3: same-rank objects are independent -----------

TEST(PaperTheorems, SameRankLisObjectsAreMutuallyIncomparable) {
  // If rank(x) == rank(y) (same dp), then neither strictly dominates the
  // other — they can run in the same round.
  std::mt19937_64 gen(1);
  std::vector<int64_t> a(1500);
  for (auto& x : a) x = static_cast<int64_t>(gen() % 500);
  auto dp = pp::lis_sequential(a).dp;
  for (size_t i = 0; i < a.size(); i += 7) {
    for (size_t j = i + 1; j < std::min(a.size(), i + 150); ++j) {
      if (dp[i] == dp[j]) {
        ASSERT_FALSE(a[i] < a[j] && dp[j] > dp[i]);  // j cannot rely on i
        ASSERT_FALSE(a[i] < a[j]) << "equal-rank later element dominated by earlier";
      }
    }
  }
}

TEST(PaperTheorems, RankIsDepthInDependenceGraph) {
  // Theorem 3.4 for LIS: dp(x) == 1 + max dp over x's predecessors.
  std::mt19937_64 gen(2);
  std::vector<int64_t> a(800);
  for (auto& x : a) x = static_cast<int64_t>(gen() % 200);
  auto dp = pp::lis_sequential(a).dp;
  for (size_t i = 0; i < a.size(); ++i) {
    int32_t best = 0;
    for (size_t j = 0; j < i; ++j)
      if (a[j] < a[i]) best = std::max(best, dp[j]);
    ASSERT_EQ(dp[i], best + 1);
  }
}

// --- Lemma 4.1: frontier structure of activity selection -----------------------

TEST(PaperTheorems, ActivityFrontierIsExactlyNextRankLayer) {
  // Simulate Algorithm 2 by layers and check against the DP-derived rank
  // (= dp with unit weights).
  auto acts = pp::random_activities(2000, 5000, 50, 20, 1, 3);
  std::vector<pp::activity> unit(acts.begin(), acts.end());
  for (auto& a : unit) a.weight = 1;
  auto rank = pp::activity_select_seq(unit).dp;
  std::vector<bool> finished(acts.size(), false);
  int64_t layer = 0;
  size_t remaining = acts.size();
  while (remaining > 0) {
    ++layer;
    // earliest end among unfinished
    int64_t ex = std::numeric_limits<int64_t>::max();
    for (size_t i = 0; i < acts.size(); ++i)
      if (!finished[i]) ex = std::min(ex, acts[i].end);
    for (size_t i = 0; i < acts.size(); ++i) {
      if (finished[i]) continue;
      bool in_frontier = acts[i].start < ex;
      ASSERT_EQ(in_frontier, rank[i] == layer) << "activity " << i << " layer " << layer;
      if (in_frontier) {
        finished[i] = true;
        --remaining;
      }
    }
  }
}

// --- Lemma 5.1: pivot rank recurrence -------------------------------------------

TEST(PaperTheorems, PivotHasRankExactlyOneLess) {
  auto acts = pp::random_activities(3000, 20000, 200, 80, 1, 4);
  std::vector<pp::activity> unit(acts.begin(), acts.end());
  for (auto& a : unit) a.weight = 1;
  auto rank = pp::activity_select_seq(unit).dp;
  for (size_t x = 0; x < acts.size(); ++x) {
    // pivot = latest-starting activity ending before x starts
    int64_t best_start = std::numeric_limits<int64_t>::min();
    size_t pivot = acts.size();
    for (size_t j = 0; j < acts.size(); ++j)
      if (acts[j].end <= acts[x].start && acts[j].start > best_start) {
        best_start = acts[j].start;
        pivot = j;
      }
    if (pivot == acts.size()) {
      ASSERT_EQ(rank[x], 1);
    } else {
      ASSERT_EQ(rank[x], rank[pivot] + 1) << "activity " << x;
    }
  }
}

// --- Fischer-Noever: monotone chains are O(log n) whp ---------------------------

TEST(PaperTheorems, LongestMonotonePriorityPathLogarithmic) {
  for (uint64_t seed : {1, 2, 3}) {
    auto g = pp::random_graph(20000, 100000, seed);
    auto prio = pp::random_permutation(g.num_vertices(), seed + 10);
    // longest path with increasing priorities == #rounds of mis_rounds
    auto rounds = pp::mis_rounds(g, prio).stats.rounds;
    double logn = std::log2(20000.0);
    EXPECT_LE(rounds, static_cast<size_t>(4 * logn)) << "seed " << seed;
    EXPECT_GE(rounds, 3u);
  }
}

// --- Huffman optimality & Kraft equality ----------------------------------------

TEST(PaperTheorems, HuffmanCodesAreCompleteAndOptimal) {
  for (uint64_t seed : {5, 6, 7}) {
    auto freqs = pp::uniform_freqs(4000, 10000, seed);
    auto par = pp::huffman_parallel(freqs);
    auto lens = pp::huffman_code_lengths(par, freqs.size());
    EXPECT_TRUE(pp::kraft_exact(lens));
    // WPL computed from lengths agrees with the reported WPL
    uint64_t wpl = 0;
    for (size_t i = 0; i < freqs.size(); ++i) wpl += freqs[i] * lens[i];
    EXPECT_EQ(wpl, par.wpl);
    // exchange argument spot-check: rarer symbols never get shorter codes
    for (size_t i = 1; i < freqs.size(); ++i)
      ASSERT_GE(lens[i - 1], lens[i]) << "sorted freqs must have nonincreasing lengths";
  }
}

// --- Whac-A-Mole transform (Eqs. 5-6) --------------------------------------------

TEST(PaperTheorems, WhacDominanceTransformIsExact) {
  std::mt19937_64 gen(8);
  for (int trial = 0; trial < 200; ++trial) {
    pp::mole a{static_cast<int64_t>(gen() % 100), static_cast<int64_t>(gen() % 100)};
    pp::mole b{static_cast<int64_t>(gen() % 100), static_cast<int64_t>(gen() % 100)};
    bool order = a.t < b.t || (a.t == b.t && a.p != b.p);
    if (!order) continue;
    bool reachable = std::llabs(b.p - a.p) < (b.t - a.t);  // strictly inside the cone
    bool dominance = (a.t + a.p < b.t + b.p) && (a.t - a.p < b.t - b.p);
    ASSERT_EQ(reachable, dominance) << a.t << "," << a.p << " -> " << b.t << "," << b.p;
  }
}

// --- PA-BST set operations (Just Join) --------------------------------------------

using MaxEntry = pp::max_val_entry<int64_t, int64_t, std::numeric_limits<int64_t>::min()>;
using MaxMap = pp::augmented_map<MaxEntry>;

MaxMap make_map(const std::set<int64_t>& keys, int64_t val_base) {
  std::vector<MaxMap::entry_t> es;
  for (auto k : keys) es.push_back({k, val_base + k});
  return MaxMap::from_sorted(es);
}

class SetOps : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
 protected:
  void SetUp() override {
    auto [na, nb, seed] = GetParam();
    std::mt19937_64 gen(seed);
    for (size_t i = 0; i < na; ++i) ka_.insert(static_cast<int64_t>(gen() % 5000));
    for (size_t i = 0; i < nb; ++i) kb_.insert(static_cast<int64_t>(gen() % 5000));
  }
  std::set<int64_t> ka_, kb_;
};

TEST_P(SetOps, UnionMatchesStdAndPrefersLeft) {
  auto u = MaxMap::map_union(make_map(ka_, 1000000), make_map(kb_, 2000000));
  std::set<int64_t> expect = ka_;
  expect.insert(kb_.begin(), kb_.end());
  ASSERT_EQ(u.size(), expect.size());
  EXPECT_TRUE(u.check_invariants());
  for (auto k : expect) {
    const int64_t* v = u.find(k);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, (ka_.count(k) ? 1000000 : 2000000) + k);
  }
}

TEST_P(SetOps, IntersectionMatchesStd) {
  auto m = MaxMap::map_intersection(make_map(ka_, 0), make_map(kb_, 0));
  std::vector<int64_t> expect;
  std::set_intersection(ka_.begin(), ka_.end(), kb_.begin(), kb_.end(),
                        std::back_inserter(expect));
  ASSERT_EQ(m.size(), expect.size());
  EXPECT_TRUE(m.check_invariants());
  for (auto k : expect) EXPECT_TRUE(m.contains(k));
}

TEST_P(SetOps, DifferenceMatchesStd) {
  auto m = MaxMap::map_difference(make_map(ka_, 0), make_map(kb_, 0));
  std::vector<int64_t> expect;
  std::set_difference(ka_.begin(), ka_.end(), kb_.begin(), kb_.end(),
                      std::back_inserter(expect));
  ASSERT_EQ(m.size(), expect.size());
  EXPECT_TRUE(m.check_invariants());
  for (auto k : expect) EXPECT_TRUE(m.contains(k));
  for (auto k : kb_) EXPECT_FALSE(m.contains(k));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SetOps,
                         ::testing::Values(std::tuple{size_t{0}, size_t{100}, 1ul},
                                           std::tuple{size_t{100}, size_t{0}, 2ul},
                                           std::tuple{size_t{50}, size_t{50}, 3ul},
                                           std::tuple{size_t{2000}, size_t{2000}, 4ul},
                                           std::tuple{size_t{3000}, size_t{10}, 5ul},
                                           std::tuple{size_t{10}, size_t{3000}, 6ul}));

TEST(SetOps, UnionAugmentationCorrect) {
  std::set<int64_t> ka = {1, 3, 5}, kb = {2, 3, 8};
  auto u = MaxMap::map_union(make_map(ka, 100), make_map(kb, 0));
  // values: 101,2,103,105,8 -> max 105
  EXPECT_EQ(u.aug_all(), 105);
  EXPECT_EQ(u.aug_le(3), 103);
}

}  // namespace
