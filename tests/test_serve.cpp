// Tests for the async serving engine (src/serve/): micro-batched submits
// reproduce standalone registry::run results seed-for-seed, coalesced
// requests cost one pool lease per flushed batch, concurrent run_scopes
// respect max_inflight_runs, and shutdown resolves every future (drain
// and fail modes) without hangs or leaks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "parallel/scheduler.h"
#include "serve/engine.h"

namespace {

using namespace std::chrono_literals;
using pp::registry;
using pp::serve::engine;
using pp::serve::engine_options;
using pp::serve::request;
using pp::serve::response;

pp::context native2() {
  return pp::context{}.with_backend(pp::backend_kind::native).with_workers(2);
}

TEST(Serve, EverySolverMatchesStandaloneRun) {
  // Acceptance (a): a submit through the engine returns the same score as
  // a standalone registry::run with the same seed — for every solver.
  engine_options opt;
  opt.max_inflight_runs = 2;
  opt.workers_per_run = 2;
  opt.batch_window = 2ms;
  opt.max_batch = 4;
  opt.ctx = native2().with_seed(17);
  engine eng(opt);

  auto& reg = registry::instance();
  std::map<std::string, pp::problem_input> inputs;
  std::vector<std::pair<std::string, std::future<response>>> futs;
  for (const auto& s : reg.solvers()) {
    if (!inputs.count(s.problem)) inputs.emplace(s.problem, reg.make_input(s.problem, 500, 23));
    request req;
    req.solver = s.name;
    req.input = inputs.at(s.problem);
    req.seed = 23 + inputs.size();
    futs.emplace_back(s.name, eng.submit(std::move(req)));
  }
  // Resolve everything before running the standalone comparisons so no
  // engine run_scope overlaps the main thread's (their profiles differ).
  std::vector<std::pair<std::string, response>> got;
  for (auto& [name, fut] : futs) got.emplace_back(name, fut.get());
  eng.stop();

  for (auto& [name, r] : got) {
    ASSERT_TRUE(r.ok()) << name << ": " << r.error;
    const std::string& problem = reg.info(name)->problem;
    auto solo = registry::run(name, inputs.at(problem),
                              eng.execution_context().with_seed(r.result.seed));
    EXPECT_EQ(pp::score_of(r.result.value), pp::score_of(solo.value)) << name;
    EXPECT_EQ(r.result.solver, name);
    EXPECT_EQ(r.result.workers, eng.workers_per_run()) << name;
  }
}

TEST(Serve, CoalescedBatchCostsOneLease) {
  // Acceptance (b), first half: K same-solver requests inside one window
  // flush as ONE run_batch — one pool lease — and still demux to per-seed
  // exact results.
  constexpr size_t kReqs = 6;
  engine_options opt;
  opt.max_inflight_runs = 1;  // one executor: deterministic single flush
  opt.workers_per_run = 2;
  opt.batch_window = 100ms;
  opt.max_batch = kReqs;
  opt.ctx = native2().with_seed(5);
  engine eng(opt);

  auto& cache = pp::detail::pool_cache::instance();
  auto in = registry::instance().make_input("lis", 800, 7);
  uint64_t leases_before = cache.acquires();

  std::vector<std::future<response>> futs;
  for (size_t i = 0; i < kReqs; ++i) {
    request req;
    req.solver = "lis/parallel";
    req.input = in;
    req.seed = 100 + i;
    futs.push_back(eng.submit(std::move(req)));
  }
  std::vector<response> rs;
  for (auto& f : futs) rs.push_back(f.get());
  uint64_t leases = cache.acquires() - leases_before;
  auto st = eng.stats();
  eng.stop();

  EXPECT_EQ(st.batches, 1u) << "expected one coalesced flush";
  EXPECT_EQ(leases, st.batches) << "one pool lease per flushed batch";
  EXPECT_EQ(st.batched, kReqs);
  for (size_t i = 0; i < kReqs; ++i) {
    ASSERT_TRUE(rs[i].ok()) << rs[i].error;
    EXPECT_EQ(rs[i].result.seed, 100 + i) << i;
    auto solo = registry::run("lis/parallel", in, eng.execution_context().with_seed(100 + i));
    EXPECT_EQ(pp::score_of(rs[i].result.value), pp::score_of(solo.value)) << i;
  }
}

TEST(Serve, InflightRunsNeverExceedLimit) {
  // Acceptance (b), second half: with max_inflight_runs = R, concurrent
  // leased pools never exceed R. Batching off so every request is its own
  // run_scope; pool_cache::in_use() is sampled while the engine churns.
  constexpr unsigned kR = 2;
  engine_options opt;
  opt.max_inflight_runs = kR;
  opt.workers_per_run = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.ctx = native2().with_seed(3);
  engine eng(opt);

  // Input built before the lease baseline: the parallel input factory
  // itself leases a pool (it runs outside any scheduler binding).
  auto in = registry::instance().make_input("lis", 2'000, 9);
  auto& cache = pp::detail::pool_cache::instance();
  ASSERT_EQ(cache.in_use(), 0u) << "leaked lease from another test";
  uint64_t leases_before = cache.acquires();
  constexpr size_t kReqs = 12;
  std::vector<std::future<response>> futs;
  for (size_t i = 0; i < kReqs; ++i) {
    request req;
    req.solver = "lis/parallel";
    req.input = in;
    req.seed = i;
    futs.push_back(eng.submit(std::move(req)));
  }
  size_t max_in_use = 0;
  while (true) {
    max_in_use = std::max(max_in_use, cache.in_use());
    bool all_done = true;
    for (auto& f : futs)
      if (f.wait_for(0ms) != std::future_status::ready) all_done = false;
    if (all_done) break;
    std::this_thread::yield();
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  auto st = eng.stats();
  eng.stop();

  EXPECT_LE(max_in_use, kR) << "concurrent leased pools exceeded max_inflight_runs";
  EXPECT_LE(st.peak_inflight, kR);
  EXPECT_EQ(st.batches, kReqs) << "batching off: every request is its own flush";
  EXPECT_EQ(cache.acquires() - leases_before, st.batches);
}

TEST(Serve, AnonymousRequestsDeriveSeedsFromBase) {
  // Requests without a seed execute under derive_seed(base, admission
  // index) — the run_batch per-item rule, reproducible from the base.
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 1;
  opt.ctx = native2().with_workers(1).with_seed(77);
  engine eng(opt);

  auto in = registry::instance().make_input("lis", 400, 1);
  auto f0 = eng.submit({"lis/parallel", in, std::nullopt});
  auto f1 = eng.submit({"lis/parallel", in, std::nullopt});
  response r0 = f0.get(), r1 = f1.get();
  eng.stop();
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r0.result.seed, pp::derive_seed(77, 0));
  EXPECT_EQ(r1.result.seed, pp::derive_seed(77, 1));
}

TEST(Serve, InvalidRequestsFailFastWithoutPoisoningBatches) {
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 2;
  opt.batch_window = 50ms;
  opt.max_batch = 4;
  opt.ctx = native2();
  engine eng(opt);

  auto lis_in = registry::instance().make_input("lis", 300, 1);
  auto huff_in = registry::instance().make_input("huffman", 300, 1);

  auto bad_name = eng.submit({"lis/no_such_variant", lis_in, 1});
  auto bad_input = eng.submit({"lis/parallel", huff_in, 1});
  auto good = eng.submit({"lis/parallel", lis_in, 1});

  response rn = bad_name.get();
  response ri = bad_input.get();
  response rg = good.get();
  eng.stop();

  EXPECT_FALSE(rn.ok());
  EXPECT_NE(rn.error.find("unknown solver"), std::string::npos) << rn.error;
  EXPECT_FALSE(ri.ok());
  EXPECT_NE(ri.error.find("expects a 'lis' input"), std::string::npos) << ri.error;
  ASSERT_TRUE(rg.ok()) << rg.error;
}

TEST(Serve, CallbackFormDelivers) {
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 1;
  opt.ctx = native2().with_workers(1);
  engine eng(opt);

  std::promise<response> done;
  auto fut = done.get_future();
  eng.submit({"lis/parallel", registry::instance().make_input("lis", 300, 4), 4},
             [&](response r) { done.set_value(std::move(r)); });
  response r = fut.get();
  eng.stop();
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.result.seed, 4u);
  EXPECT_GT(pp::score_of(r.result.value), 0);
}

TEST(Serve, StopDrainResolvesEverythingOk) {
  // Acceptance (c): stopping with drain executes the whole queue; every
  // future resolves ok, no hang.
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 2;
  opt.ctx = native2();
  engine eng(opt);

  auto in = registry::instance().make_input("lis", 1'500, 2);
  std::vector<std::future<response>> futs;
  for (size_t i = 0; i < 8; ++i) futs.push_back(eng.submit({"lis/parallel", in, i}));
  eng.stop(/*drain=*/true);
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(0ms), std::future_status::ready) << "stop() returned before resolving";
    EXPECT_TRUE(f.get().ok());
  }
  auto st = eng.stats();
  EXPECT_EQ(st.completed, 8u);
  EXPECT_EQ(st.queue_depth, 0u);
}

TEST(Serve, StopWithoutDrainFailsPendingFutures) {
  // Acceptance (c): stopping without drain resolves queued-but-unstarted
  // requests with an error instead of executing them — still no hang, no
  // unresolved future.
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 1;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.ctx = native2().with_workers(1);
  engine eng(opt);

  auto in = registry::instance().make_input("lis", 4'000, 2);
  std::vector<std::future<response>> futs;
  for (size_t i = 0; i < 16; ++i) futs.push_back(eng.submit({"lis/parallel", in, i}));
  eng.stop(/*drain=*/false);

  size_t ok = 0, failed = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(0ms), std::future_status::ready) << "stop() returned before resolving";
    response r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      ++failed;
      EXPECT_NE(r.error.find("engine stopped"), std::string::npos) << r.error;
    }
  }
  EXPECT_EQ(ok + failed, 16u);
  EXPECT_GT(failed, 0u) << "expected at least one queued request to be failed by stop";

  // Submitting after stop fails immediately.
  auto late = eng.submit({"lis/parallel", in, 1});
  ASSERT_EQ(late.wait_for(0ms), std::future_status::ready);
  EXPECT_FALSE(late.get().ok());
}

TEST(Serve, BoundedQueueBackpressureCompletesEverything) {
  // A tiny queue forces submit() to block; all requests still complete.
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 1;
  opt.queue_capacity = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.ctx = native2().with_workers(1);
  engine eng(opt);

  auto in = registry::instance().make_input("lis", 1'000, 3);
  std::vector<std::future<response>> futs;
  for (size_t i = 0; i < 10; ++i) futs.push_back(eng.submit({"lis/parallel", in, i}));
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  eng.stop();
  EXPECT_EQ(eng.stats().completed, 10u);
}

// ---- QoS: deadlines, priority classes, cancellation -------------------------

TEST(Serve, ExpiredBeforePopTakesNoLease) {
  // A request whose deadline passes while queued resolves with an error
  // at pop time, without a pool lease (pool_cache::acquires unchanged).
  engine_options opt;
  opt.max_inflight_runs = 1;  // one executor we can keep busy
  opt.workers_per_run = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.ctx = native2().with_seed(3);
  engine eng(opt);

  // Inputs built before the lease baseline (the factory leases a pool).
  auto big = registry::instance().make_input("lis", 8'000, 9);
  auto small = registry::instance().make_input("lis", 300, 9);
  auto& cache = pp::detail::pool_cache::instance();
  uint64_t leases_before = cache.acquires();

  // Occupy the executor, then queue a request that expires long before
  // the executor frees up.
  auto blocker = eng.submit({"lis/parallel", big, 1});
  std::this_thread::sleep_for(20ms);  // let the executor pop the blocker
  request doomed;
  doomed.solver = "lis/parallel";
  doomed.input = small;
  doomed.seed = 2;
  doomed.deadline = std::chrono::steady_clock::now() + 1ms;
  auto fut = eng.submit(std::move(doomed));

  response r = fut.get();
  EXPECT_TRUE(blocker.get().ok());
  auto st = eng.stats();
  eng.stop();

  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("expired"), std::string::npos) << r.error;
  EXPECT_EQ(st.expired, 1u);
  EXPECT_EQ(st.cancelled, 0u);
  EXPECT_EQ(st.batches, 1u) << "only the blocker may flush";
  EXPECT_EQ(cache.acquires() - leases_before, st.batches)
      << "the expired request must not cost a pool lease";
}

TEST(Serve, ExpiredBatchEntryResolvedDespiteInteractiveTraffic) {
  // Every pop sweeps BOTH class deques for expired entries: an expired
  // batch-class request must resolve even when interactive traffic keeps
  // the interactive deque non-empty (it must not hang its future or pin
  // queue capacity forever).
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.ctx = native2().with_seed(3);
  engine eng(opt);

  auto big = registry::instance().make_input("lis", 8'000, 9);
  auto small = registry::instance().make_input("lis", 200, 9);
  auto blocker = eng.submit({"lis/parallel", big, 1});
  std::this_thread::sleep_for(20ms);  // executor busy with the blocker

  request doomed;
  doomed.solver = "lis/parallel";
  doomed.input = small;
  doomed.seed = 2;
  doomed.prio = pp::serve::priority::batch;
  doomed.deadline = std::chrono::steady_clock::now() + 1ms;
  auto dead_fut = eng.submit(std::move(doomed));
  std::this_thread::sleep_for(10ms);  // deadline blown while queued
  // Interactive requests queued behind the blocker: the next pops choose
  // the interactive class, and must still drop the expired batch entry.
  request probe;
  probe.solver = "lis/parallel";
  probe.input = small;
  probe.seed = 3;
  probe.prio = pp::serve::priority::interactive;
  auto probe_fut = eng.submit(std::move(probe));

  EXPECT_TRUE(probe_fut.get().ok());
  ASSERT_EQ(dead_fut.wait_for(1s), std::future_status::ready)
      << "expired batch request stranded while interactive traffic flowed";
  response r = dead_fut.get();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("expired"), std::string::npos) << r.error;
  EXPECT_TRUE(blocker.get().ok());
  auto st = eng.stats();
  eng.stop();
  EXPECT_EQ(st.expired, 1u);
}

TEST(Serve, AlreadyExpiredDeadlineRejectedAtSubmit) {
  engine eng({.max_inflight_runs = 1, .workers_per_run = 1, .ctx = native2().with_workers(1)});
  request req;
  req.solver = "lis/parallel";
  req.input = registry::instance().make_input("lis", 300, 1);
  req.deadline = std::chrono::steady_clock::now() - 1ms;
  auto fut = eng.submit(std::move(req));
  ASSERT_EQ(fut.wait_for(1s), std::future_status::ready);
  response r = fut.get();
  auto st = eng.stats();
  eng.stop();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("expired"), std::string::npos) << r.error;
  EXPECT_EQ(st.expired, 1u);
  EXPECT_EQ(st.submitted, 0u) << "never entered the queue";
}

TEST(Serve, InteractiveClassPopsBeforeBatchClass) {
  // With the lone executor busy, queue batch-class requests first, then
  // interactive ones: every interactive request must complete before any
  // batch request (higher class pops first), and classes stay FIFO.
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.queue_capacity = 64;
  opt.ctx = native2().with_seed(7);
  engine eng(opt);

  auto big = registry::instance().make_input("lis", 8'000, 9);
  auto small = registry::instance().make_input("lis", 200, 9);
  auto blocker = eng.submit({"lis/parallel", big, 1});
  std::this_thread::sleep_for(20ms);  // executor now busy with the blocker

  std::mutex order_m;
  std::vector<std::string> order;
  auto tag = [&](std::string label) {
    return [&, label = std::move(label)](response r) {
      EXPECT_TRUE(r.ok()) << label << ": " << r.error;
      std::lock_guard<std::mutex> lk(order_m);
      order.push_back(label);
    };
  };
  for (int i = 0; i < 3; ++i) {
    request req;
    req.solver = "lis/parallel";
    req.input = small;
    req.seed = 10 + i;
    req.prio = pp::serve::priority::batch;
    eng.submit(std::move(req), tag("b" + std::to_string(i)));
  }
  for (int i = 0; i < 3; ++i) {
    request req;
    req.solver = "lis/parallel";
    req.input = small;
    req.seed = 20 + i;
    req.prio = pp::serve::priority::interactive;
    eng.submit(std::move(req), tag("i" + std::to_string(i)));
  }
  EXPECT_TRUE(blocker.get().ok());
  eng.stop(/*drain=*/true);

  ASSERT_EQ(order.size(), 6u);
  std::vector<std::string> want = {"i0", "i1", "i2", "b0", "b1", "b2"};
  EXPECT_EQ(order, want) << "interactive first, FIFO within each class";
}

TEST(Serve, CoalescingNeverCrossesClasses) {
  // Same solver, same window — but a batch-class request must not ride an
  // interactive flush's lease: expect separate flushes per class.
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 2;
  opt.batch_window = 100ms;
  opt.max_batch = 8;
  opt.queue_capacity = 64;
  opt.ctx = native2().with_seed(5);
  engine eng(opt);

  auto big = registry::instance().make_input("lis", 8'000, 9);
  auto small = registry::instance().make_input("lis", 300, 9);
  auto blocker = eng.submit({"lis/parallel", big, 1});
  // Outwait the blocker's own batch window (100ms): its flush must be
  // closed and running before the probe requests arrive, or they would
  // legitimately coalesce into it (same solver, same class).
  std::this_thread::sleep_for(150ms);

  std::vector<std::future<response>> futs;
  for (int i = 0; i < 2; ++i) {
    request req;
    req.solver = "lis/parallel";
    req.input = small;
    req.seed = 10 + i;
    req.prio = pp::serve::priority::interactive;
    futs.push_back(eng.submit(std::move(req)));
  }
  for (int i = 0; i < 2; ++i) {
    request req;
    req.solver = "lis/parallel";
    req.input = small;
    req.seed = 20 + i;
    req.prio = pp::serve::priority::batch;
    futs.push_back(eng.submit(std::move(req)));
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  auto st = eng.stats();
  eng.stop();

  EXPECT_EQ(st.batches, 3u) << "blocker + one interactive flush + one batch flush";
  EXPECT_EQ(st.batched, 4u) << "both coalesced flushes had 2 requests each";
}

TEST(Serve, MidRunDeadlineCancelsFasterThanFullSolve) {
  // Acceptance: a deadline that expires mid-run resolves its request with
  // `cancelled` in (much) less than the solver's full solve time.
  auto in = registry::instance().make_input("lis", 8'000, 11);
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.ctx = native2().with_seed(5);
  engine eng(opt);

  // Reference full solve under the engine's execution profile.
  auto full = registry::run("lis/parallel", in, eng.execution_context().with_seed(1));
  ASSERT_GT(full.seconds, 0.05) << "input too small to observe a mid-run cancel";

  request req;
  req.solver = "lis/parallel";
  req.input = in;
  req.seed = 1;
  req.deadline = std::chrono::steady_clock::now() + 20ms;
  auto t0 = std::chrono::steady_clock::now();
  auto fut = eng.submit(std::move(req));
  response r = fut.get();
  double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  auto st = eng.stats();
  eng.stop();

  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("cancelled"), std::string::npos) << r.error;
  EXPECT_EQ(r.result.status, pp::run_status::cancelled);
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.expired, 0u);
  EXPECT_LT(elapsed, 0.5 * full.seconds)
      << "cancelled request took " << elapsed << "s vs full solve " << full.seconds << "s";
}

TEST(Serve, BlownDeadlineFailsOnlyExpiredBatchmates) {
  // Two requests coalesce into one flush; the first carries a deadline
  // that blows mid-run. It must come back `cancelled` while its unexpired
  // batchmate completes with the exact standalone result.
  auto in = registry::instance().make_input("lis", 8'000, 13);
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 2;
  opt.batch_window = 200ms;  // hold the flush until both requests arrive
  opt.max_batch = 2;
  opt.ctx = native2().with_seed(5);
  engine eng(opt);

  request doomed;
  doomed.solver = "lis/parallel";
  doomed.input = in;
  doomed.seed = 1;
  doomed.deadline = std::chrono::steady_clock::now() + 30ms;
  auto f0 = eng.submit(std::move(doomed));
  auto f1 = eng.submit({"lis/parallel", in, 2});  // no deadline

  response r0 = f0.get();
  response r1 = f1.get();
  auto st = eng.stats();
  eng.stop();

  EXPECT_EQ(st.batches, 1u) << "both requests must share one flush";
  EXPECT_FALSE(r0.ok());
  EXPECT_NE(r0.error.find("cancelled"), std::string::npos) << r0.error;
  ASSERT_TRUE(r1.ok()) << r1.error;
  auto solo = registry::run("lis/parallel", in, eng.execution_context().with_seed(2));
  EXPECT_EQ(pp::score_of(r1.result.value), pp::score_of(solo.value));
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.completed, 1u);
}

TEST(Serve, PriorityClassesOffIsPlainFifo) {
  // The bench baseline: with priority_classes off, an interactive request
  // queued after batch requests waits its FIFO turn.
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.priority_classes = false;
  opt.ctx = native2().with_seed(7);
  engine eng(opt);

  auto big = registry::instance().make_input("lis", 8'000, 9);
  auto small = registry::instance().make_input("lis", 200, 9);
  auto blocker = eng.submit({"lis/parallel", big, 1});
  std::this_thread::sleep_for(20ms);

  std::mutex order_m;
  std::vector<std::string> order;
  auto tag = [&](std::string label) {
    return [&, label = std::move(label)](response r) {
      EXPECT_TRUE(r.ok()) << label << ": " << r.error;
      std::lock_guard<std::mutex> lk(order_m);
      order.push_back(label);
    };
  };
  request b;
  b.solver = "lis/parallel";
  b.input = small;
  b.seed = 10;
  b.prio = pp::serve::priority::batch;
  eng.submit(std::move(b), tag("b"));
  request i;
  i.solver = "lis/parallel";
  i.input = small;
  i.seed = 11;
  i.prio = pp::serve::priority::interactive;
  eng.submit(std::move(i), tag("i"));
  EXPECT_TRUE(blocker.get().ok());
  eng.stop(/*drain=*/true);

  std::vector<std::string> want = {"b", "i"};
  EXPECT_EQ(order, want) << "classes off: strict FIFO";
}

TEST(Serve, AnonymousSeedsUniqueAcrossThreads) {
  // The regression behind ppserve's cross-connection collision: anonymous
  // seeds come from one engine-wide counter, so concurrent sessions can
  // never hand out the same derived seed.
  engine eng({.max_inflight_runs = 1, .workers_per_run = 1, .ctx = native2().with_workers(1)});
  constexpr size_t kThreads = 4, kPer = 64;
  std::vector<std::vector<uint64_t>> got(kThreads);
  std::vector<std::thread> ts;
  for (size_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (size_t i = 0; i < kPer; ++i) got[t].push_back(eng.reserve_anonymous_seed());
    });
  }
  for (auto& t : ts) t.join();
  eng.stop();
  std::set<uint64_t> uniq;
  for (auto& v : got)
    for (uint64_t s : v) uniq.insert(s);
  EXPECT_EQ(uniq.size(), kThreads * kPer) << "anonymous seeds collided across sessions";
  // And they are exactly the derive_seed(base, 0..N-1) set — reproducible
  // from the base seed alone.
  std::set<uint64_t> want;
  for (size_t k = 0; k < kThreads * kPer; ++k)
    want.insert(pp::derive_seed(eng.options().ctx.seed, k));
  EXPECT_EQ(uniq, want);
}

// ---- Result cache & in-flight dedup -----------------------------------------

TEST(Serve, CacheHitTakesNoLeaseAndIsBitIdentical) {
  // A repeat (solver, input-fingerprint, seed) submission is answered from
  // the LRU result cache: zero pool leases, `cached` set, and an envelope
  // byte-identical to the executed one.
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.ctx = native2().with_seed(5);
  engine eng(opt);

  auto in = registry::instance().make_input("lis", 500, 9);
  auto& cache = pp::detail::pool_cache::instance();
  uint64_t leases_before = cache.acquires();

  response r1 = eng.submit({"lis/parallel", in, 42}).get();
  response r2 = eng.submit({"lis/parallel", in, 42}).get();
  uint64_t leases = cache.acquires() - leases_before;
  auto st = eng.stats();
  eng.stop();

  ASSERT_TRUE(r1.ok()) << r1.error;
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_FALSE(r1.cached);
  EXPECT_TRUE(r2.cached);
  EXPECT_EQ(pp::to_json(r1.result), pp::to_json(r2.result))
      << "cached envelope must be byte-identical to the executed one";
  EXPECT_EQ(leases, 1u) << "the cache hit must not cost a pool lease";
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.deduped, 0u);
  EXPECT_EQ(st.submitted, 1u) << "a cache hit never enters the queue";
  EXPECT_EQ(st.completed, 2u) << "completed counts delivered responses";

  // The stats envelope exposes the new counters (pplint's json-fields rule
  // keys on the same emission).
  std::string js = pp::serve::to_json(st);
  for (const char* key : {"\"cache_hits\"", "\"cache_misses\"", "\"deduped\""})
    EXPECT_NE(js.find(key), std::string::npos) << key;
}

TEST(Serve, CacheOffExecutesEveryRepeat) {
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.cache_entries = 0;  // dedup stays on; the cache is gone
  opt.ctx = native2().with_seed(5);
  engine eng(opt);

  auto in = registry::instance().make_input("lis", 500, 9);
  response r1 = eng.submit({"lis/parallel", in, 42}).get();
  response r2 = eng.submit({"lis/parallel", in, 42}).get();
  auto st = eng.stats();
  eng.stop();

  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r1.cached);
  EXPECT_FALSE(r2.cached);
  EXPECT_EQ(pp::score_of(r1.result.value), pp::score_of(r2.result.value));
  EXPECT_EQ(st.batches, 2u) << "cache off: both repeats execute";
  EXPECT_EQ(st.cache_hits, 0u);
  EXPECT_EQ(st.cache_misses, 0u) << "misses are not counted when the cache is off";
}

TEST(Serve, ConcurrentIdenticalSubmissionsExecuteOnce) {
  // Acceptance: N identical concurrent submissions collapse onto ONE
  // execution with one pool lease; every waiter gets the identical
  // envelope, and a later repeat is served from the cache leaselessly.
  engine_options opt;
  opt.max_inflight_runs = 1;  // keep the executor busy with a blocker
  opt.workers_per_run = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.ctx = native2().with_seed(5);
  engine eng(opt);

  auto big = registry::instance().make_input("lis", 12'000, 9);
  auto small = registry::instance().make_input("lis", 500, 9);
  auto& cache = pp::detail::pool_cache::instance();
  uint64_t leases_before = cache.acquires();

  auto blocker = eng.submit({"lis/parallel", big, 1});
  std::this_thread::sleep_for(20ms);  // executor now busy with the blocker

  constexpr size_t kN = 4;
  std::vector<std::future<response>> futs;
  for (size_t i = 0; i < kN; ++i) futs.push_back(eng.submit({"lis/parallel", small, 42}));
  std::vector<response> rs;
  for (auto& f : futs) rs.push_back(f.get());
  EXPECT_TRUE(blocker.get().ok());
  uint64_t leases = cache.acquires() - leases_before;
  auto st = eng.stats();

  EXPECT_EQ(st.deduped, kN - 1) << "duplicates must attach, not re-queue";
  EXPECT_EQ(st.submitted, 2u) << "blocker + one leader entered the queue";
  EXPECT_EQ(st.batches, 2u) << "blocker flush + ONE shared execution";
  EXPECT_EQ(leases, st.batches) << "deduped waiters must not cost pool leases";
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(rs[i].ok()) << rs[i].error;
    EXPECT_FALSE(rs[i].cached) << "deduped waiters are fanned out, not cache hits";
    EXPECT_EQ(pp::to_json(rs[i].result), pp::to_json(rs[0].result)) << i;
  }
  // Repeat traffic after completion: answered from the cache, still no
  // extra lease.
  response again = eng.submit({"lis/parallel", small, 42}).get();
  eng.stop();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.cached);
  EXPECT_EQ(pp::to_json(again.result), pp::to_json(rs[0].result));
  EXPECT_EQ(cache.acquires() - leases_before, leases) << "cache hit cost a lease";

  // (The standalone comparison leases its own pool, so it runs after the
  // final lease accounting.)
  auto solo = registry::run("lis/parallel", small, eng.execution_context().with_seed(42));
  EXPECT_EQ(pp::score_of(rs[0].result.value), pp::score_of(solo.value));
}

TEST(Serve, CachedAndDedupedMatchStandaloneForEverySolver) {
  // For every registered solver: a deduped pair fans out one execution and
  // a later repeat is a cache hit — and both envelopes match a standalone
  // registry::run with the same seed, solver by solver.
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.queue_capacity = 256;
  opt.ctx = native2().with_seed(17);
  engine eng(opt);

  auto& reg = registry::instance();
  std::map<std::string, pp::problem_input> inputs;
  std::vector<std::string> names;
  for (const auto& s : reg.solvers()) {
    names.push_back(s.name);
    if (!inputs.count(s.problem)) inputs.emplace(s.problem, reg.make_input(s.problem, 300, 23));
  }

  // Blocker first so every identical pair is queued concurrently and the
  // second of each pair attaches to the first (in-flight dedup).
  auto big = registry::instance().make_input("lis", 12'000, 9);
  auto blocker = eng.submit({"lis/parallel", big, 1});
  std::this_thread::sleep_for(20ms);

  std::vector<std::pair<std::future<response>, std::future<response>>> pairs;
  for (size_t i = 0; i < names.size(); ++i) {
    const auto& in = inputs.at(reg.info(names[i])->problem);
    uint64_t seed = 1000 + i;
    pairs.emplace_back(eng.submit({names[i], in, seed}), eng.submit({names[i], in, seed}));
  }
  std::vector<std::pair<response, response>> got;
  for (auto& [a, b] : pairs) got.emplace_back(a.get(), b.get());
  EXPECT_TRUE(blocker.get().ok());
  auto st = eng.stats();
  EXPECT_EQ(st.deduped, names.size()) << "every pair's second submission must attach";

  // Cached repeats (resolve before the standalone runs below so no engine
  // run_scope overlaps the main thread's).
  std::vector<response> cached;
  for (size_t i = 0; i < names.size(); ++i) {
    const auto& in = inputs.at(reg.info(names[i])->problem);
    cached.push_back(eng.submit({names[i], in, 1000 + i}).get());
  }
  eng.stop();

  for (size_t i = 0; i < names.size(); ++i) {
    auto& [ra, rb] = got[i];
    ASSERT_TRUE(ra.ok()) << names[i] << ": " << ra.error;
    ASSERT_TRUE(rb.ok()) << names[i] << ": " << rb.error;
    EXPECT_EQ(pp::to_json(ra.result), pp::to_json(rb.result))
        << names[i] << ": fanned-out waiters must get the identical envelope";
    ASSERT_TRUE(cached[i].ok()) << names[i] << ": " << cached[i].error;
    EXPECT_TRUE(cached[i].cached) << names[i];
    EXPECT_EQ(pp::to_json(cached[i].result), pp::to_json(ra.result)) << names[i];

    const auto& in = inputs.at(reg.info(names[i])->problem);
    auto solo = registry::run(names[i], in, eng.execution_context().with_seed(1000 + i));
    EXPECT_EQ(pp::score_of(ra.result.value), pp::score_of(solo.value)) << names[i];
    EXPECT_EQ(pp::summary_of(ra.result.value), pp::summary_of(solo.value)) << names[i];
    EXPECT_EQ(ra.result.input_fp, solo.input_fp) << names[i];
  }
}

TEST(Serve, WaiterDeadlineNeverPoisonsSharedExecution) {
  // One waiter's deadline must never cancel (or fail) the execution the
  // other waiters share — in either direction.
  auto small = registry::instance().make_input("lis", 300, 9);
  auto big = registry::instance().make_input("lis", 12'000, 9);

  // (a) Follower with a deadline attaches to a deadline-less leader: the
  // follower expires while queued, the leader's execution is untouched.
  {
    engine_options opt;
    opt.max_inflight_runs = 1;
    opt.workers_per_run = 2;
    opt.batch_window = std::chrono::microseconds{0};
    opt.max_batch = 1;
    opt.ctx = native2().with_seed(5);
    engine eng(opt);
    auto blocker = eng.submit({"lis/parallel", big, 1});
    std::this_thread::sleep_for(20ms);

    auto leader = eng.submit({"lis/parallel", small, 60});
    request dup;
    dup.solver = "lis/parallel";
    dup.input = small;
    dup.seed = 60;
    dup.deadline = std::chrono::steady_clock::now() + 1ms;
    auto follower = eng.submit(std::move(dup));
    std::this_thread::sleep_for(10ms);  // follower's deadline blows while queued

    response rf = follower.get();
    response rl = leader.get();
    EXPECT_TRUE(blocker.get().ok());
    auto st = eng.stats();
    eng.stop();

    EXPECT_FALSE(rf.ok());
    EXPECT_NE(rf.error.find("expired"), std::string::npos) << rf.error;
    ASSERT_TRUE(rl.ok()) << rl.error;
    auto solo = registry::run("lis/parallel", small, eng.execution_context().with_seed(60));
    EXPECT_EQ(pp::score_of(rl.result.value), pp::score_of(solo.value));
    EXPECT_EQ(st.expired, 1u);
    EXPECT_EQ(st.cancelled, 0u) << "the shared execution must not be cancelled";
  }

  // (b) The LEADER's deadline blows while queued: its promise expires, but
  // the deadline-less follower inherits the execution and completes.
  {
    engine_options opt;
    opt.max_inflight_runs = 1;
    opt.workers_per_run = 2;
    opt.batch_window = std::chrono::microseconds{0};
    opt.max_batch = 1;
    opt.ctx = native2().with_seed(5);
    engine eng(opt);
    auto blocker = eng.submit({"lis/parallel", big, 1});
    std::this_thread::sleep_for(20ms);

    request doomed;
    doomed.solver = "lis/parallel";
    doomed.input = small;
    doomed.seed = 61;
    doomed.deadline = std::chrono::steady_clock::now() + 5ms;
    auto leader = eng.submit(std::move(doomed));
    auto follower = eng.submit({"lis/parallel", small, 61});
    std::this_thread::sleep_for(15ms);  // leader's deadline blows while queued

    response rl = leader.get();
    response rf = follower.get();
    EXPECT_TRUE(blocker.get().ok());
    auto st = eng.stats();
    eng.stop();

    EXPECT_FALSE(rl.ok());
    EXPECT_NE(rl.error.find("expired"), std::string::npos) << rl.error;
    ASSERT_TRUE(rf.ok()) << "the surviving waiter must inherit the execution: " << rf.error;
    auto solo = registry::run("lis/parallel", small, eng.execution_context().with_seed(61));
    EXPECT_EQ(pp::score_of(rf.result.value), pp::score_of(solo.value));
    EXPECT_EQ(st.expired, 1u);
    EXPECT_EQ(st.cancelled, 0u);
  }
}

TEST(Serve, CancelledSoleExecutionIsNotCached) {
  // A cancelled result must never be served to later traffic: resubmitting
  // the same (solver, fingerprint, seed) after a mid-run cancellation
  // executes fresh and succeeds.
  auto in = registry::instance().make_input("lis", 8'000, 11);
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.ctx = native2().with_seed(5);
  engine eng(opt);

  auto full = registry::run("lis/parallel", in, eng.execution_context().with_seed(1));
  ASSERT_GT(full.seconds, 0.05) << "input too small to observe a mid-run cancel";

  request req;
  req.solver = "lis/parallel";
  req.input = in;
  req.seed = 1;
  req.deadline = std::chrono::steady_clock::now() + 20ms;
  response r1 = eng.submit(std::move(req)).get();
  EXPECT_FALSE(r1.ok());
  EXPECT_NE(r1.error.find("cancelled"), std::string::npos) << r1.error;

  response r2 = eng.submit({"lis/parallel", in, 1}).get();
  auto st = eng.stats();
  eng.stop();

  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_FALSE(r2.cached) << "a cancelled execution must not seed the cache";
  EXPECT_EQ(st.cache_hits, 0u);
  EXPECT_EQ(st.batches, 2u) << "the resubmission must execute fresh";
  EXPECT_EQ(pp::score_of(r2.result.value), pp::score_of(full.value));
}

TEST(Serve, RunningCancellableExecutionRefusesJoiners) {
  // A duplicate arriving while a CANCELLABLE twin is mid-run must not
  // attach (the shared token could poison it); it queues its own execution
  // instead — correct, just uncollapsed.
  auto in = registry::instance().make_input("lis", 8'000, 13);
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 2;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.ctx = native2().with_seed(5);
  engine eng(opt);

  auto full = registry::run("lis/parallel", in, eng.execution_context().with_seed(7));
  ASSERT_GT(full.seconds, 0.05) << "input too small for the join to land mid-run";

  request first;
  first.solver = "lis/parallel";
  first.input = in;
  first.seed = 7;
  first.deadline = std::chrono::steady_clock::now() + 10s;  // cancellable, never fires
  auto f1 = eng.submit(std::move(first));
  std::this_thread::sleep_for(20ms);  // first is now running under its token
  auto f2 = eng.submit({"lis/parallel", in, 7});  // no deadline

  response r1 = f1.get();
  response r2 = f2.get();
  auto st = eng.stats();
  eng.stop();

  ASSERT_TRUE(r1.ok()) << r1.error;
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(st.deduped, 0u) << "must not join a cancellable mid-run execution";
  EXPECT_EQ(st.batches, 2u);
  EXPECT_EQ(pp::score_of(r1.result.value), pp::score_of(r2.result.value));
  EXPECT_EQ(pp::score_of(r1.result.value), pp::score_of(full.value));
}

TEST(Serve, LruEvictionHonorsCacheBound) {
  engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 1;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.cache_entries = 2;
  opt.ctx = native2().with_workers(1).with_seed(5);
  engine eng(opt);

  std::vector<pp::problem_input> ins;
  for (uint64_t s = 1; s <= 3; ++s) ins.push_back(registry::instance().make_input("lis", 200, s));

  // Fill: A, B, C -> LRU order [C, B], A evicted.
  for (size_t i = 0; i < 3; ++i) EXPECT_TRUE(eng.submit({"lis/parallel", ins[i], 9}).get().ok());
  // A must re-execute (evicted) -> [A, C]; then C is still a hit.
  response ra = eng.submit({"lis/parallel", ins[0], 9}).get();
  response rc = eng.submit({"lis/parallel", ins[2], 9}).get();
  auto st = eng.stats();
  eng.stop();

  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_FALSE(ra.cached) << "oldest entry must have been evicted at the bound";
  EXPECT_TRUE(rc.cached);
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.cache_misses, 4u);
  EXPECT_EQ(st.batches, 4u);
}

TEST(Serve, NoScopeRaceConflicts) {
  // Concurrent executors share one execution profile, so the context
  // scope-race detector must stay quiet under parallel serving load.
  uint64_t conflicts_before = pp::detail::scope_conflicts();
  engine_options opt;
  opt.max_inflight_runs = 3;
  opt.workers_per_run = 1;
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.ctx = native2().with_workers(1).with_seed(11);
  engine eng(opt);

  auto in = registry::instance().make_input("lis", 1'000, 5);
  std::vector<std::future<response>> futs;
  for (size_t i = 0; i < 24; ++i) futs.push_back(eng.submit({"lis/parallel", in, i}));
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());
  eng.stop();
  EXPECT_EQ(pp::detail::scope_conflicts(), conflicts_before);
}

}  // namespace
