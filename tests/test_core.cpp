// Direct unit tests for src/core: Fenwick prefix-max trees (plain and
// atomic/concurrent), the Type-1 runner, and phase statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/fenwick.h"
#include "core/phase_runner.h"
#include "core/stats.h"
#include "parallel/random.h"

namespace {

TEST(FenwickMax, MatchesBruteForce) {
  constexpr size_t n = 2000;
  pp::fenwick_max<int64_t> fw(n, -1);
  std::vector<int64_t> ref(n, -1);
  std::mt19937_64 gen(1);
  for (int ops = 0; ops < 20000; ++ops) {
    size_t p = gen() % n;
    int64_t v = static_cast<int64_t>(gen() % 100000);
    fw.raise(p, v);
    ref[p] = std::max(ref[p], v);
    if (ops % 10 == 0) {
      size_t k = gen() % (n + 1);
      int64_t expect = -1;
      for (size_t i = 0; i < k; ++i) expect = std::max(expect, ref[i]);
      ASSERT_EQ(fw.prefix_max(k), expect) << "k=" << k;
    }
  }
}

TEST(FenwickMax, RaiseNeverLowers) {
  pp::fenwick_max<int64_t> fw(100, 0);
  fw.raise(50, 10);
  fw.raise(50, 5);  // lower value: no effect
  EXPECT_EQ(fw.prefix_max(51), 10);
  EXPECT_EQ(fw.prefix_max(50), 0);  // position 50 excluded from [0,50)
}

TEST(FenwickMax, EmptyAndBounds) {
  pp::fenwick_max<int64_t> fw(0, -7);
  EXPECT_EQ(fw.prefix_max(0), -7);
  pp::fenwick_max<int64_t> fw1(1, 0);
  fw1.raise(0, 42);
  EXPECT_EQ(fw1.prefix_max(1), 42);
}

TEST(AtomicFenwickMax, ConcurrentRaisesConverge) {
  constexpr size_t n = 10000;
  pp::atomic_fenwick_max<int64_t> fw(n, 0);
  // all raises in parallel, then verify against brute force
  std::vector<int64_t> vals(n);
  for (size_t i = 0; i < n; ++i) vals[i] = static_cast<int64_t>(pp::hash64(i) % 1000000);
  pp::parallel_for(0, n, [&](size_t i) { fw.raise(i, vals[i]); }, 16);
  int64_t run = 0;
  for (size_t k = 0; k <= n; k += 97) {
    int64_t expect = 0;
    for (size_t i = 0; i < k; ++i) expect = std::max(expect, vals[i]);
    ASSERT_EQ(fw.prefix_max(k), expect);
    (void)run;
  }
}

TEST(AtomicFenwickMax, RepeatedConcurrentRaisesSamePosition) {
  pp::atomic_fenwick_max<int64_t> fw(64, 0);
  pp::parallel_for(0, 10000, [&](size_t i) { fw.raise(i % 64, static_cast<int64_t>(i)); }, 8);
  EXPECT_EQ(fw.prefix_max(64), 9999);
}

TEST(PhaseRunner, RunsUntilEmptyAndCollectsStats) {
  int round = 0;
  auto stats = pp::run_type1(
      [&]() {
        ++round;
        return std::vector<int>(round <= 4 ? 10 - 2 * round : 0, 7);
      },
      [&](const std::vector<int>& frontier) {
        for (int x : frontier) EXPECT_EQ(x, 7);
      });
  EXPECT_EQ(stats.rounds, 4u);
  EXPECT_EQ(stats.processed, 8u + 6 + 4 + 2);
  EXPECT_EQ(stats.max_frontier, 8u);
}

TEST(PhaseRunner, EmptyFirstFrontierMeansZeroRounds) {
  auto stats = pp::run_type1([]() { return std::vector<int>{}; },
                             [](const std::vector<int>&) { FAIL(); });
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.processed, 0u);
}

TEST(PhaseStats, AvgWakeups) {
  pp::phase_stats s;
  EXPECT_EQ(s.avg_wakeups(), 0.0);
  s.record_frontier(10);
  s.wakeup_attempts = 25;
  EXPECT_DOUBLE_EQ(s.avg_wakeups(), 2.5);
}

}  // namespace
