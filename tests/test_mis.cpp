// Tests for greedy MIS: sequential, round-based, and TAS-tree asynchronous
// versions must produce the *same* set (greedy MIS is deterministic in the
// priority order).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algos/mis.h"
#include "graph/generators.h"
#include "parallel/random.h"

namespace {

class MisGraphs : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {
 protected:
  pp::graph make() const {
    auto [kind, seed] = GetParam();
    switch (kind) {
      case 0: return pp::random_graph(2000, 8000, seed);
      case 1: return pp::rmat_graph(1 << 11, 1 << 13, seed);
      case 2: return pp::grid_graph(40, 50);
      case 3: return pp::random_graph(500, 40000, seed);  // dense
      default: return pp::graph::from_edges(100, {});     // empty graph
    }
  }
};

TEST_P(MisGraphs, AllVariantsComputeTheSameGreedyMis) {
  auto g = make();
  auto [kind, seed] = GetParam();
  (void)kind;
  auto prio = pp::random_permutation(g.num_vertices(), seed + 100);
  auto seq = pp::mis_sequential(g, prio);
  auto rounds = pp::mis_rounds(g, prio);
  auto tas = pp::mis_tas(g, prio);
  EXPECT_TRUE(pp::is_maximal_independent_set(g, seq.in_mis));
  EXPECT_EQ(rounds.in_mis, seq.in_mis);
  EXPECT_EQ(tas.in_mis, seq.in_mis);
  EXPECT_EQ(tas.mis_size, seq.mis_size);
}

TEST_P(MisGraphs, RoundCountIsLogarithmicWhp) {
  auto g = make();
  auto [kind, seed] = GetParam();
  (void)kind;
  if (g.num_vertices() < 2) return;
  auto prio = pp::random_permutation(g.num_vertices(), seed + 200);
  auto rounds = pp::mis_rounds(g, prio);
  // Fischer-Noever: longest monotone path O(log n) whp; allow slack.
  double logn = std::log2(static_cast<double>(g.num_vertices()));
  EXPECT_LE(rounds.stats.rounds, static_cast<size_t>(6 * logn + 10));
}

TEST_P(MisGraphs, TasWakeDepthWithinSpanBound) {
  auto g = make();
  auto [kind, seed] = GetParam();
  (void)kind;
  if (g.num_vertices() < 2) return;
  auto prio = pp::random_permutation(g.num_vertices(), seed + 300);
  auto tas = pp::mis_tas(g, prio);
  double logn = std::log2(static_cast<double>(g.num_vertices()) + 2);
  // wake-chain depth tracks the longest monotone path, O(log n) whp
  EXPECT_LE(tas.stats.substeps, static_cast<size_t>(12 * logn + 20));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MisGraphs,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(1ul, 2ul, 3ul)));

TEST(Mis, EmptyGraphSelectsEverything) {
  auto g = pp::graph::from_edges(50, {});
  auto prio = pp::random_permutation(50, 1);
  auto tas = pp::mis_tas(g, prio);
  EXPECT_EQ(tas.mis_size, 50u);
}

TEST(Mis, CompleteGraphSelectsOne) {
  std::vector<pp::edge> es;
  for (uint32_t i = 0; i < 30; ++i)
    for (uint32_t j = i + 1; j < 30; ++j) es.push_back({i, j});
  auto g = pp::graph::from_edges(30, es);
  auto prio = pp::random_permutation(30, 2);
  auto seq = pp::mis_sequential(g, prio);
  auto tas = pp::mis_tas(g, prio);
  EXPECT_EQ(seq.mis_size, 1u);
  EXPECT_EQ(tas.in_mis, seq.in_mis);
  // the selected vertex is the priority-0 one
  for (uint32_t v = 0; v < 30; ++v)
    if (tas.in_mis[v]) EXPECT_EQ(prio[v], 0u);
}

TEST(Mis, PathGraphAdversarialPriorities) {
  // Priorities increasing along a path: worst-case sequential chain; the
  // TAS version must still terminate and agree.
  constexpr uint32_t n = 2000;
  std::vector<pp::edge> es;
  for (uint32_t i = 0; i + 1 < n; ++i) es.push_back({i, i + 1});
  auto g = pp::graph::from_edges(n, es);
  std::vector<uint32_t> prio(n);
  for (uint32_t i = 0; i < n; ++i) prio[i] = i;  // monotone chain of length n
  auto seq = pp::mis_sequential(g, prio);
  auto tas = pp::mis_tas(g, prio);
  EXPECT_EQ(tas.in_mis, seq.in_mis);
  EXPECT_EQ(seq.mis_size, n / 2);  // vertices 0,2,4,...
}

TEST(Mis, DifferentPrioritiesDifferentSets) {
  auto g = pp::random_graph(500, 3000, 5);
  auto p1 = pp::random_permutation(500, 1);
  auto p2 = pp::random_permutation(500, 2);
  auto m1 = pp::mis_tas(g, p1);
  auto m2 = pp::mis_tas(g, p2);
  EXPECT_TRUE(pp::is_maximal_independent_set(g, m1.in_mis));
  EXPECT_TRUE(pp::is_maximal_independent_set(g, m2.in_mis));
  EXPECT_NE(m1.in_mis, m2.in_mis);  // overwhelmingly likely
}

}  // namespace
