// Tests for LIS: parallel Algorithm 3 (both pivot policies) against the
// sequential DP and an O(n^2) brute force; wake-up bounds; reconstruction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "algos/lis.h"

namespace {

std::vector<int32_t> brute_dp(std::span<const int64_t> a) {
  std::vector<int32_t> dp(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    int32_t b = 0;
    for (size_t j = 0; j < i; ++j)
      if (a[j] < a[i]) b = std::max(b, dp[j]);
    dp[i] = 1 + b;
  }
  return dp;
}

class LisRandom : public ::testing::TestWithParam<std::tuple<size_t, int64_t, uint64_t>> {};

TEST_P(LisRandom, SequentialMatchesBrute) {
  auto [n, range, seed] = GetParam();
  std::mt19937_64 gen(seed);
  std::vector<int64_t> a(n);
  for (auto& x : a) x = static_cast<int64_t>(gen() % range);
  auto expect = brute_dp(a);
  auto seq = pp::lis_sequential(a);
  EXPECT_EQ(seq.dp, expect);
}

TEST_P(LisRandom, ParallelMatchesSequentialBothPolicies) {
  auto [n, range, seed] = GetParam();
  std::mt19937_64 gen(seed);
  std::vector<int64_t> a(n);
  for (auto& x : a) x = static_cast<int64_t>(gen() % range);
  auto seq = pp::lis_sequential(a);
  for (auto policy : {pp::pivot_policy::uniform_random, pp::pivot_policy::rightmost}) {
    auto par = pp::lis_parallel(a, policy, seed + 17);
    EXPECT_EQ(par.dp, seq.dp);
    EXPECT_EQ(par.length, seq.length);
    EXPECT_EQ(par.stats.processed, n);
  }
}

TEST_P(LisRandom, RoundsEqualLisLength) {
  auto [n, range, seed] = GetParam();
  if (n == 0) return;
  std::mt19937_64 gen(seed);
  std::vector<int64_t> a(n);
  for (auto& x : a) x = static_cast<int64_t>(gen() % range);
  auto par = pp::lis_parallel(a, pp::pivot_policy::uniform_random, 5);
  // Algorithm 3 processes rank-r objects in round r: rounds == LIS length.
  EXPECT_EQ(par.stats.rounds, static_cast<size_t>(par.length));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LisRandom,
    ::testing::Values(std::tuple{size_t{0}, int64_t{10}, uint64_t{1}},
                      std::tuple{size_t{1}, int64_t{10}, uint64_t{2}},
                      std::tuple{size_t{2}, int64_t{10}, uint64_t{3}},
                      std::tuple{size_t{30}, int64_t{8}, uint64_t{4}},     // many duplicates
                      std::tuple{size_t{100}, int64_t{1000}, uint64_t{5}},
                      std::tuple{size_t{500}, int64_t{20}, uint64_t{6}},   // heavy duplicates
                      std::tuple{size_t{1000}, int64_t{1000000}, uint64_t{7}},
                      std::tuple{size_t{2000}, int64_t{50}, uint64_t{8}}));

TEST(Lis, EdgeCases) {
  // strictly increasing: LIS = n, rounds = n
  std::vector<int64_t> inc = {1, 2, 3, 4, 5, 6, 7, 8};
  auto p = pp::lis_parallel(inc, pp::pivot_policy::rightmost, 1);
  EXPECT_EQ(p.length, 8);
  EXPECT_EQ(p.stats.rounds, 8u);
  // strictly decreasing: LIS = 1, one round
  std::vector<int64_t> dec = {8, 7, 6, 5, 4, 3, 2, 1};
  p = pp::lis_parallel(dec, pp::pivot_policy::rightmost, 1);
  EXPECT_EQ(p.length, 1);
  EXPECT_EQ(p.stats.rounds, 1u);
  // all equal: strictly increasing LIS = 1
  std::vector<int64_t> eq(100, 42);
  p = pp::lis_parallel(eq, pp::pivot_policy::rightmost, 1);
  EXPECT_EQ(p.length, 1);
  EXPECT_EQ(pp::lis_sequential(eq).length, 1);
}

TEST(Lis, WakeupsAreLogarithmicWhp) {
  // Lemma 5.5: O(log n) wake-ups per object whp. Check the average is
  // comfortably below a small multiple of log2(n) on an adversarial-ish
  // input (uniform random has deep dominated sets).
  constexpr size_t n = 30000;
  std::mt19937_64 gen(9);
  std::vector<int64_t> a(n);
  for (auto& x : a) x = static_cast<int64_t>(gen());
  for (auto policy : {pp::pivot_policy::uniform_random, pp::pivot_policy::rightmost}) {
    auto p = pp::lis_parallel(a, policy, 3);
    EXPECT_LT(p.stats.avg_wakeups(), 2.0 * std::log2(static_cast<double>(n))) << "policy";
  }
}

TEST(Lis, ReconstructionIsValidOptimalSubsequence) {
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    std::mt19937_64 gen(seed);
    std::vector<int64_t> a(500);
    for (auto& x : a) x = static_cast<int64_t>(gen() % 300);
    auto par = pp::lis_parallel(a, pp::pivot_policy::rightmost, 1);
    auto idx = pp::lis_reconstruct(a, par.dp);
    ASSERT_EQ(static_cast<int64_t>(idx.size()), par.length);
    for (size_t k = 1; k < idx.size(); ++k) {
      ASSERT_LT(idx[k - 1], idx[k]);
      ASSERT_LT(a[idx[k - 1]], a[idx[k]]);
    }
  }
}

TEST(Lis, WeightedMatchesSequentialWeighted) {
  for (uint64_t seed : {11, 12, 13}) {
    std::mt19937_64 gen(seed);
    std::vector<int64_t> a(400);
    std::vector<int32_t> w(400);
    for (auto& x : a) x = static_cast<int64_t>(gen() % 100);
    for (auto& x : w) x = 1 + static_cast<int32_t>(gen() % 9);
    auto seq = pp::lis_sequential_weighted(a, w);
    auto par = pp::lis_parallel_weighted(a, w, pp::pivot_policy::rightmost, seed);
    EXPECT_EQ(par.dp, seq.dp);
    EXPECT_EQ(par.length, seq.length);
    // brute check of the weighted recurrence
    std::vector<int64_t> bd(a.size());
    int64_t best = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      int64_t b = 0;
      for (size_t j = 0; j < i; ++j)
        if (a[j] < a[i]) b = std::max(b, bd[j]);
      bd[i] = w[i] + b;
      best = std::max(best, bd[i]);
    }
    EXPECT_EQ(seq.length, best);
  }
}

TEST(Lis, DeterministicPerSeed) {
  std::vector<int64_t> a = pp::lis_line_pattern(5000, 10, 2000, 3);
  auto p1 = pp::lis_parallel(a, pp::pivot_policy::uniform_random, 42);
  auto p2 = pp::lis_parallel(a, pp::pivot_policy::uniform_random, 42);
  EXPECT_EQ(p1.dp, p2.dp);
  EXPECT_EQ(p1.stats.wakeup_attempts, p2.stats.wakeup_attempts);
  EXPECT_EQ(p1.stats.rounds, p2.stats.rounds);
}

TEST(Lis, SegmentPatternHasExpectedRank) {
  for (size_t k : {3ul, 10ul, 30ul}) {
    auto a = pp::lis_segment_pattern(20000, k, 7);
    auto seq = pp::lis_sequential(a);
    // the pattern is built so LIS size ~ k (one element per segment)
    EXPECT_GE(seq.length, static_cast<int64_t>(k));
    EXPECT_LE(seq.length, static_cast<int64_t>(2 * k + 2));
  }
}

TEST(Lis, LinePatternRankGrowsWithSlope) {
  auto flat = pp::lis_line_pattern(20000, 1, 100000, 5);
  auto steep = pp::lis_line_pattern(20000, 50, 100000, 5);
  auto r_flat = pp::lis_sequential(flat).length;
  auto r_steep = pp::lis_sequential(steep).length;
  EXPECT_GT(r_steep, r_flat);
}

}  // namespace
