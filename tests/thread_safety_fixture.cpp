// Compile-only fixture proving the -Wthread-safety mode is actually armed.
//
// Two ctest entries (clang builds only) compile this file with
// `-Wthread-safety -Werror=thread-safety -fsyntax-only`:
//
//   test_thread_safety_wired  — no defines: the locked increment below must
//                               compile clean, proving the annotated
//                               pp::sync types themselves are warning-free.
//   test_thread_safety_fires  — -DPP_TS_VIOLATION: the unlocked increment
//                               must FAIL to compile (WILL_FAIL TRUE),
//                               proving the analyzer rejects a guarded
//                               access without its mutex. A toolchain or
//                               flag regression that silently disables the
//                               analysis turns this test red.
//
// The fixture also exercises the real scheduler header, so an annotation
// regression in deque_slot/pool_cache surfaces here even before the full
// -DPP_THREAD_SAFETY=ON build runs.

#include "core/annotations.h"
#include "parallel/scheduler.h"

namespace {

struct guarded_counter {
  pp::sync::mutex m;
  int hits PP_GUARDED_BY(m) = 0;

  void bump_locked() {
    pp::sync::lock_guard<pp::sync::mutex> lk(m);
    ++hits;  // legal: m held for the scope
  }

#ifdef PP_TS_VIOLATION
  void bump_unlocked() {
    ++hits;  // -Wthread-safety error: writing `hits` requires holding `m`
  }
#endif
};

// Reference the real annotated types so the scheduler header is analyzed.
void touch_scheduler_types(pp::detail::work_stealing_pool& p, pp::detail::job* j) {
  p.push(j);
}

}  // namespace

// Silence -Wunused-function: the fixture is compiled with -fsyntax-only and
// never linked, but the functions must still be analyzed.
void pp_thread_safety_fixture_anchor() {
  guarded_counter c;
  c.bump_locked();
#ifdef PP_TS_VIOLATION
  c.bump_unlocked();
#endif
  touch_scheduler_types(*pp::detail::this_thread_pool(), nullptr);
}
