// Tests for SSSP: Bellman-Ford / Delta-stepping / phase-parallel vs
// Dijkstra on all generator families and Delta choices.
#include <gtest/gtest.h>

#include <vector>

#include "algos/sssp.h"
#include "graph/generators.h"

namespace {

enum class GraphKind { random_g, rmat_g, grid_g };

class SsspGraphs : public ::testing::TestWithParam<std::tuple<GraphKind, uint32_t, uint64_t>> {
 protected:
  pp::wgraph make() const {
    auto [kind, wmin, seed] = GetParam();
    pp::graph g;
    switch (kind) {
      case GraphKind::random_g: g = pp::random_graph(2000, 10000, seed); break;
      case GraphKind::rmat_g: g = pp::rmat_graph(1 << 11, 1 << 13, seed); break;
      case GraphKind::grid_g: g = pp::grid_graph(40, 50); break;
    }
    return pp::add_weights(g, wmin, wmin * 16, seed + 1);
  }
};

TEST_P(SsspGraphs, AllAlgorithmsMatchDijkstra) {
  auto wg = make();
  auto dj = pp::sssp_dijkstra(wg, 0);
  auto bf = pp::sssp_bellman_ford(wg, 0);
  EXPECT_EQ(bf.dist, dj.dist);
  for (uint32_t delta : {1u, 7u, 100u, 1000000u}) {
    auto ds = pp::sssp_delta_stepping(wg, 0, delta);
    EXPECT_EQ(ds.dist, dj.dist) << "delta=" << delta;
  }
  auto phase = pp::sssp_phase_parallel(wg, 0);
  EXPECT_EQ(phase.dist, dj.dist);
}

TEST_P(SsspGraphs, UnreachableVerticesStayInfinite) {
  auto [kind, wmin, seed] = GetParam();
  (void)kind;
  // two disconnected cliques
  std::vector<pp::edge> es;
  for (uint32_t i = 0; i < 5; ++i)
    for (uint32_t j = i + 1; j < 5; ++j) {
      es.push_back({i, j});
      es.push_back({i + 5, j + 5});
    }
  auto g = pp::graph::from_edges(10, es);
  auto wg = pp::add_weights(g, wmin, wmin * 2, seed);
  auto dj = pp::sssp_dijkstra(wg, 0);
  auto ds = pp::sssp_phase_parallel(wg, 0);
  for (uint32_t v = 5; v < 10; ++v) {
    EXPECT_EQ(dj.dist[v], pp::kInfDist);
    EXPECT_EQ(ds.dist[v], pp::kInfDist);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SsspGraphs,
    ::testing::Values(std::tuple{GraphKind::random_g, 1u, 1ul},
                      std::tuple{GraphKind::random_g, 128u, 2ul},
                      std::tuple{GraphKind::rmat_g, 1u, 3ul},
                      std::tuple{GraphKind::rmat_g, 1u << 10, 4ul},
                      std::tuple{GraphKind::grid_g, 1u, 5ul},
                      std::tuple{GraphKind::grid_g, 1u << 8, 6ul}));

TEST(Sssp, SingleVertexAndEmpty) {
  auto g = pp::graph::from_edges(1, {});
  auto wg = pp::add_weights(g, 1, 2, 1);
  auto dj = pp::sssp_dijkstra(wg, 0);
  EXPECT_EQ(dj.dist[0], 0);
  auto ds = pp::sssp_phase_parallel(wg, 0);
  EXPECT_EQ(ds.dist[0], 0);
}

TEST(Sssp, PathGraphExactDistances) {
  // 0-1-2-...-9 with weight 3: dist[v] = 3v.
  std::vector<pp::wgraph::wedge> es;
  for (uint32_t i = 0; i < 9; ++i) {
    es.push_back({i, i + 1, 3});
    es.push_back({i + 1, i, 3});
  }
  auto wg = pp::wgraph::from_edges(10, es);
  for (auto r : {pp::sssp_dijkstra(wg, 0), pp::sssp_bellman_ford(wg, 0),
                 pp::sssp_delta_stepping(wg, 0, 3), pp::sssp_phase_parallel(wg, 0)}) {
    for (uint32_t v = 0; v < 10; ++v) EXPECT_EQ(r.dist[v], 3 * v);
  }
}

TEST(Sssp, SmallDeltaMeansMoreBucketSteps) {
  auto g = pp::random_graph(3000, 15000, 7);
  auto wg = pp::add_weights(g, 64, 1024, 8);
  auto fine = pp::sssp_delta_stepping(wg, 0, 64);
  auto coarse = pp::sssp_delta_stepping(wg, 0, 4096);
  EXPECT_GT(fine.stats.rounds, coarse.stats.rounds);
  EXPECT_EQ(fine.dist, coarse.dist);
}

TEST(Sssp, DeltaEqualWstarDoesNoRepeatedSettling) {
  // With Delta = w*, each bucket needs exactly one light substep per new
  // frontier (no vertex is settled twice): relaxations stay close to m.
  auto g = pp::random_graph(2000, 10000, 9);
  auto wg = pp::add_weights(g, 1000, 1100, 10);  // narrow weight range
  auto ds = pp::sssp_delta_stepping(wg, 0, 1000);
  // every directed edge relaxed a bounded number of times
  EXPECT_LE(ds.stats.relaxations, 3 * wg.num_edges());
}

}  // namespace
