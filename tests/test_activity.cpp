// Tests for weighted activity selection: all four implementations must
// agree with each other and with an O(n^2) brute force; rounds must track
// the input rank.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "algos/activity.h"
#include "algos/activity_unweighted.h"

namespace {

using pp::activity;

// O(n^2) reference of Eq. (1): dp[i] = w_i + max(0, max_{j<i, e_j<=s_i} dp[j]).
std::vector<int64_t> brute_dp(std::span<const activity> acts) {
  std::vector<int64_t> dp(acts.size());
  for (size_t i = 0; i < acts.size(); ++i) {
    int64_t b = 0;
    for (size_t j = 0; j < i; ++j)
      if (acts[j].end <= acts[i].start) b = std::max(b, dp[j]);
    dp[i] = acts[i].weight + b;
  }
  return dp;
}

std::vector<activity> small_random(size_t n, int64_t t_range, int64_t max_len, uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::vector<activity> acts(n);
  for (auto& a : acts) {
    a.start = static_cast<int64_t>(gen() % t_range);
    a.end = a.start + 1 + static_cast<int64_t>(gen() % max_len);
    a.weight = 1 + static_cast<int64_t>(gen() % 100);
  }
  pp::sort_activities(acts);
  return acts;
}

class ActivityRandom : public ::testing::TestWithParam<std::tuple<size_t, int64_t, uint64_t>> {};

TEST_P(ActivityRandom, AllImplementationsMatchBrute) {
  auto [n, t_range, seed] = GetParam();
  auto acts = small_random(n, t_range, std::max<int64_t>(t_range / 4, 2), seed);
  auto expect = brute_dp(acts);
  int64_t best = 0;
  for (auto v : expect) best = std::max(best, v);

  auto seq = pp::activity_select_seq(acts);
  auto t1 = pp::activity_select_type1(acts);
  auto t1f = pp::activity_select_type1_flat(acts);
  auto t2 = pp::activity_select_type2(acts);

  EXPECT_EQ(seq.dp, expect);
  EXPECT_EQ(t1.dp, expect);
  EXPECT_EQ(t1f.dp, expect);
  EXPECT_EQ(t2.dp, expect);
  EXPECT_EQ(seq.best, best);
  EXPECT_EQ(t1.best, best);
  EXPECT_EQ(t1f.best, best);
  EXPECT_EQ(t2.best, best);
}

TEST_P(ActivityRandom, ParallelVariantsAgreeOnRounds) {
  auto [n, t_range, seed] = GetParam();
  auto acts = small_random(n, t_range, std::max<int64_t>(t_range / 4, 2), seed);
  auto t1 = pp::activity_select_type1(acts);
  auto t1f = pp::activity_select_type1_flat(acts);
  auto t2 = pp::activity_select_type2(acts);
  // All three process frontier r = the rank-r activities: same round count.
  EXPECT_EQ(t1.stats.rounds, t1f.stats.rounds);
  EXPECT_EQ(t1.stats.rounds, t2.stats.rounds);
  EXPECT_EQ(t1.stats.processed, acts.size());
  EXPECT_EQ(t2.stats.processed, acts.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ActivityRandom,
                         ::testing::Values(std::tuple{size_t{0}, int64_t{10}, uint64_t{1}},
                                           std::tuple{size_t{1}, int64_t{10}, uint64_t{2}},
                                           std::tuple{size_t{2}, int64_t{10}, uint64_t{3}},
                                           std::tuple{size_t{50}, int64_t{20}, uint64_t{4}},
                                           std::tuple{size_t{200}, int64_t{1000}, uint64_t{5}},
                                           std::tuple{size_t{500}, int64_t{50}, uint64_t{6}},
                                           std::tuple{size_t{1000}, int64_t{10000}, uint64_t{7}},
                                           std::tuple{size_t{1000}, int64_t{30}, uint64_t{8}}));

TEST(Activity, DisjointChainHasRankN) {
  // n back-to-back activities: rank = n, dp strictly increasing.
  std::vector<activity> acts;
  for (int i = 0; i < 64; ++i) acts.push_back({2 * i, 2 * i + 1, 1});
  pp::sort_activities(acts);
  auto t1 = pp::activity_select_type1(acts);
  EXPECT_EQ(t1.stats.rounds, 64u);
  EXPECT_EQ(t1.best, 64);
  auto t2 = pp::activity_select_type2(acts);
  EXPECT_EQ(t2.stats.rounds, 64u);
}

TEST(Activity, AllOverlappingIsOneRound) {
  // n copies of the same interval: every activity has rank 1.
  std::vector<activity> acts(100, activity{0, 10, 5});
  pp::sort_activities(acts);
  auto t1 = pp::activity_select_type1(acts);
  EXPECT_EQ(t1.stats.rounds, 1u);
  EXPECT_EQ(t1.best, 5);
  auto t2 = pp::activity_select_type2(acts);
  EXPECT_EQ(t2.stats.rounds, 1u);
  EXPECT_EQ(t2.best, 5);
}

TEST(Activity, TouchingEndpointsAreCompatible) {
  // [0,5] and [5,9]: e_1 <= s_2, so they chain.
  std::vector<activity> acts = {{0, 5, 3}, {5, 9, 4}};
  auto seq = pp::activity_select_seq(acts);
  EXPECT_EQ(seq.best, 7);
  auto t1 = pp::activity_select_type1(acts);
  EXPECT_EQ(t1.best, 7);
  EXPECT_EQ(t1.stats.rounds, 2u);
}

TEST(Activity, GeneratorSortedPositiveDurations) {
  auto acts = pp::random_activities(10000, 100000, 50.0, 20.0, 1000, 9);
  ASSERT_EQ(acts.size(), 10000u);
  for (size_t i = 0; i < acts.size(); ++i) {
    ASSERT_LT(acts[i].start, acts[i].end);
    ASSERT_GE(acts[i].weight, 1);
    ASSERT_LE(acts[i].weight, 1000);
    if (i > 0) ASSERT_LE(acts[i - 1].end, acts[i].end);
  }
}

TEST(Activity, GeneratorRankScalesWithLength) {
  // Longer mean durations => fewer compatible chains => smaller rank.
  auto short_acts = pp::random_activities(20000, 1000000, 10.0, 3.0, 10, 11);
  auto long_acts = pp::random_activities(20000, 1000000, 10000.0, 300.0, 10, 11);
  auto r_short = pp::activity_select_type1_flat(short_acts).stats.rounds;
  auto r_long = pp::activity_select_type1_flat(long_acts).stats.rounds;
  EXPECT_GT(r_short, r_long);
}

// --- unweighted ------------------------------------------------------------------

class UnweightedActivity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnweightedActivity, ParallelDepthEqualsGreedyCount) {
  auto acts = small_random(300, 200, 30, GetParam());
  auto greedy = pp::activity_unweighted_greedy_seq(acts);
  auto par = pp::activity_unweighted_parallel(acts);
  auto euler = pp::activity_unweighted_euler(acts);
  EXPECT_EQ(par.best, greedy.best);
  EXPECT_EQ(euler.best, greedy.best);
  EXPECT_EQ(euler.rank, par.rank);
  // ranks must match the weighted DP with unit weights
  std::vector<activity> unit(acts.begin(), acts.end());
  for (auto& a : unit) a.weight = 1;
  auto dp = pp::activity_select_seq(unit);
  for (size_t i = 0; i < acts.size(); ++i)
    EXPECT_EQ(static_cast<int64_t>(par.rank[i]), dp.dp[i]) << i;
}

TEST_P(UnweightedActivity, LogarithmicJumpRounds) {
  auto acts = small_random(1000, 50, 10, GetParam());
  auto par = pp::activity_unweighted_parallel(acts);
  // pointer jumping halves path lengths every round
  EXPECT_LE(par.stats.rounds, 12u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnweightedActivity, ::testing::Values(21, 22, 23, 24, 25));

TEST(UnweightedActivity, EmptyAndSingle) {
  std::vector<activity> none;
  EXPECT_EQ(pp::activity_unweighted_parallel(none).best, 0);
  std::vector<activity> one = {{0, 5, 1}};
  EXPECT_EQ(pp::activity_unweighted_parallel(one).best, 1);
  EXPECT_EQ(pp::activity_unweighted_greedy_seq(one).best, 1);
}

}  // namespace
