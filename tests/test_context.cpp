// Tests for the execution-context API (core/context.h + the context
// overloads of par_do/parallel_for in parallel/api.h): scoping semantics,
// the deprecated backend shims, and the OpenMP nested-parallel_for fix.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/context.h"
#include "parallel/api.h"
#include "test_backends.h"

namespace {

using pp::backend_kind;
using pp::context;

TEST(Context, Defaults) {
  context c;
  EXPECT_EQ(c.backend, backend_kind::native);
  EXPECT_EQ(c.workers, 0u);
  EXPECT_EQ(c.seed, 1u);
  EXPECT_EQ(c.grain, 0u);
  EXPECT_EQ(c.pivot, pp::pivot_policy::rightmost);
}

TEST(Context, WithBuilders) {
  context c;
  context d = c.with_backend(backend_kind::openmp)
                  .with_workers(3)
                  .with_seed(42)
                  .with_grain(128)
                  .with_pivot(pp::pivot_policy::uniform_random);
  EXPECT_EQ(d.backend, backend_kind::openmp);
  EXPECT_EQ(d.workers, 3u);
  EXPECT_EQ(d.seed, 42u);
  EXPECT_EQ(d.grain, 128u);
  EXPECT_EQ(d.pivot, pp::pivot_policy::uniform_random);
  // the source context is untouched
  EXPECT_EQ(c.backend, backend_kind::native);
  EXPECT_EQ(c.seed, 1u);
}

TEST(Context, ScopedContextActivatesAndRestores) {
  // With no scope active, current_context snapshots the process defaults.
  pp::default_context().seed = 999;
  EXPECT_EQ(pp::current_context().seed, 999u);
  {
    pp::scoped_context outer(context{}.with_seed(7));
    EXPECT_EQ(pp::current_context().seed, 7u);
    {
      pp::scoped_context inner(pp::current_context().with_backend(backend_kind::sequential));
      EXPECT_EQ(pp::current_context().seed, 7u);
      EXPECT_EQ(pp::current_context().backend, backend_kind::sequential);
    }
    EXPECT_EQ(pp::current_context().seed, 7u);
    EXPECT_EQ(pp::current_context().backend, backend_kind::native);
  }
  EXPECT_EQ(pp::current_context().seed, 999u);
  pp::default_context().seed = 1;
  EXPECT_EQ(pp::current_context().seed, 1u);
}

TEST(Context, DeprecatedShimsReflectDefaultContext) {
  EXPECT_EQ(pp::get_backend(), pp::default_context().backend);
  pp::set_backend(backend_kind::sequential);
  EXPECT_EQ(pp::get_backend(), backend_kind::sequential);
  EXPECT_EQ(pp::default_context().backend, backend_kind::sequential);
  pp::set_backend(backend_kind::native);
  EXPECT_EQ(pp::get_backend(), backend_kind::native);

  {
    pp::scoped_backend sb(backend_kind::openmp);
    EXPECT_EQ(pp::get_backend(), backend_kind::openmp);
    EXPECT_EQ(pp::current_context().backend, backend_kind::openmp);
    // the default is untouched; only the current scope changed
    EXPECT_EQ(pp::default_context().backend, backend_kind::native);
  }
  EXPECT_EQ(pp::get_backend(), backend_kind::native);
}

class ContextBackends : public ::testing::TestWithParam<backend_kind> {};

TEST_P(ContextBackends, ParallelForExplicitContext) {
  context ctx = context{}.with_backend(GetParam());
  constexpr size_t n = 50'000;
  std::vector<int64_t> out(n, 0);
  pp::parallel_for(ctx, 0, n, [&](size_t i) { out[i] = static_cast<int64_t>(3 * i + 1); });
  for (size_t i = 0; i < n; i += 997) EXPECT_EQ(out[i], static_cast<int64_t>(3 * i + 1));
  EXPECT_EQ(out[n - 1], static_cast<int64_t>(3 * (n - 1) + 1));
}

TEST_P(ContextBackends, ParDoExplicitContext) {
  context ctx = context{}.with_backend(GetParam());
  int a = 0, b = 0;
  pp::par_do(ctx, [&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST_P(ContextBackends, NestedParallelForIsCorrect) {
  // Nested parallelism: outer rows x inner cols. Under OpenMP the inner
  // loops used to silently serialize; now they run as tasks. All backends
  // must produce the identical matrix.
  context ctx = context{}.with_backend(GetParam());
  constexpr size_t rows = 64, cols = 2'000;
  std::vector<uint32_t> m(rows * cols, 0);
  std::atomic<size_t> writes{0};
  pp::parallel_for(ctx, 0, rows, [&](size_t r) {
    pp::parallel_for(0, cols, [&](size_t c) {
      m[r * cols + c] = static_cast<uint32_t>(r * 31 + c * 7);
      writes.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(writes.load(), rows * cols);
  for (size_t r = 0; r < rows; r += 13)
    for (size_t c = 0; c < cols; c += 499)
      EXPECT_EQ(m[r * cols + c], static_cast<uint32_t>(r * 31 + c * 7));
}

TEST_P(ContextBackends, ScopedContextThreadsBackendIntoImplicitCalls) {
  context ctx = context{}.with_backend(GetParam());
  pp::scoped_context scope(ctx);
  EXPECT_EQ(pp::get_backend(), GetParam());
  constexpr size_t n = 10'000;
  std::vector<int> out(n, 0);
  pp::parallel_for(0, n, [&](size_t i) { out[i] = static_cast<int>(i % 17); });
  for (size_t i = 0; i < n; i += 37) EXPECT_EQ(out[i], static_cast<int>(i % 17));
}

TEST_P(ContextBackends, GrainOverrideStillCorrect) {
  context ctx = context{}.with_backend(GetParam()).with_grain(1'000'000);  // one chunk
  constexpr size_t n = 20'000;
  std::vector<int> out(n, 0);
  pp::parallel_for(ctx, 0, n, [&](size_t i) { out[i] = 1; });
  size_t sum = 0;
  for (auto v : out) sum += static_cast<size_t>(v);
  EXPECT_EQ(sum, n);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ContextBackends,
                         ::testing::ValuesIn(pp_test::backends_under_test()),
                         [](const auto& info) {
                           return std::string(pp::backend_name(info.param));
                         });

TEST(Context, NumWorkers) {
  EXPECT_EQ(pp::num_workers(context{}.with_backend(backend_kind::sequential)), 1u);
  EXPECT_EQ(pp::num_workers(context{}.with_backend(backend_kind::openmp).with_workers(3)), 3u);
  EXPECT_GE(pp::num_workers(context{}.with_backend(backend_kind::native)), 1u);
  // context::workers is honored exactly on the native backend — each width
  // gets its own pool from the cache, so no singleton clamps the request.
  unsigned hw = pp::num_workers(context{}.with_backend(backend_kind::native));
  EXPECT_EQ(pp::num_workers(context{}.with_backend(backend_kind::native).with_workers(1)), 1u);
  EXPECT_EQ(
      pp::num_workers(context{}.with_backend(backend_kind::native).with_workers(hw + 3)),
      hw + 3);
}

TEST(Context, EqualityComparesEveryKnob) {
  context a;
  EXPECT_EQ(a, context{});
  EXPECT_FALSE(a == a.with_workers(2));
  EXPECT_FALSE(a == a.with_seed(7));
  EXPECT_FALSE(a == a.with_backend(backend_kind::openmp));
  EXPECT_FALSE(a == a.with_grain(64));
  EXPECT_FALSE(a == a.with_pivot(pp::pivot_policy::uniform_random));
}

TEST(Context, ScopeRaceDetectorFlagsConflictingTopLevelScopes) {
  // Two live top-level scoped_contexts with different configs is exactly
  // the cross-contamination race the detector exists for. This test only
  // checks the counter (the assert fires in debug builds); NDEBUG test
  // runs still observe the flagged conflict.
  uint64_t before = pp::detail::scope_conflicts();
  pp::detail::scopes().assert_on_conflict.store(false);  // deliberate race below
  std::atomic<int> phase{0};
  std::thread other([&] {
    pp::scoped_context scope(context{}.with_seed(111));
    phase.store(1);
    while (phase.load() < 2) std::this_thread::yield();
  });
  while (phase.load() < 1) std::this_thread::yield();
  { pp::scoped_context racer(context{}.with_seed(222)); }
  phase.store(2);
  other.join();
  pp::detail::scopes().assert_on_conflict.store(true);
  EXPECT_GT(pp::detail::scope_conflicts(), before);

  // Nested scopes on one thread are NOT top-level races: no new conflict.
  uint64_t nested_before = pp::detail::scope_conflicts();
  {
    pp::scoped_context outer(context{}.with_seed(1));
    pp::scoped_context inner(context{}.with_seed(2));
  }
  EXPECT_EQ(pp::detail::scope_conflicts(), nested_before);
}

TEST(Context, ParseBackend) {
  EXPECT_EQ(pp::parse_backend("native"), backend_kind::native);
  EXPECT_EQ(pp::parse_backend("openmp"), backend_kind::openmp);
  EXPECT_EQ(pp::parse_backend("omp"), backend_kind::openmp);
  EXPECT_EQ(pp::parse_backend("sequential"), backend_kind::sequential);
  EXPECT_EQ(pp::parse_backend("seq"), backend_kind::sequential);
  EXPECT_FALSE(pp::parse_backend("tbb").has_value());
}

}  // namespace
