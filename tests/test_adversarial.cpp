// Adversarial-input stress tests: structured worst cases that random
// sweeps are unlikely to hit — extreme ranks, tie storms, degenerate
// shapes — for every algorithm family.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algos/activity.h"
#include "algos/huffman.h"
#include "algos/knapsack.h"
#include "algos/lis.h"
#include "algos/mis.h"
#include "algos/sssp.h"
#include "algos/whac.h"
#include "graph/generators.h"
#include "parallel/random.h"
#include "parallel/sort.h"

namespace {

// --- LIS adversarial shapes ------------------------------------------------------

TEST(AdversarialLis, SawtoothBlocks) {
  // k ascending runs of length m each, runs interleaved so every element
  // of run r dominates all of run r-1: rank = m per... construct
  // blocks of m values where block b spans (b*m, b*m+m]; LIS = k*m? Use
  // a shape with known answer: values v(i) = (i % m) * k + (i / m):
  // increasing within each "column" chain, LIS = n / m columns... check
  // against the sequential DP, both policies.
  constexpr size_t k = 32, m = 64, n = k * m;
  std::vector<int64_t> a(n);
  for (size_t i = 0; i < n; ++i) a[i] = static_cast<int64_t>((i % m) * k + i / m);
  auto seq = pp::lis_sequential(a);
  for (auto p : {pp::pivot_policy::uniform_random, pp::pivot_policy::rightmost}) {
    auto par = pp::lis_parallel(a, p, 7);
    ASSERT_EQ(par.dp, seq.dp);
  }
}

TEST(AdversarialLis, OrganPipe) {
  // ramp up then down: LIS = up-ramp length
  std::vector<int64_t> a;
  for (int i = 0; i < 500; ++i) a.push_back(i);
  for (int i = 0; i < 500; ++i) a.push_back(499 - i + 1000000);  // shifted down-ramp above ramp
  auto seq = pp::lis_sequential(a);
  auto par = pp::lis_parallel(a, pp::pivot_policy::rightmost, 1);
  EXPECT_EQ(par.length, seq.length);
  EXPECT_EQ(par.length, 501);  // 0..499 then one of the down-ramp
}

TEST(AdversarialLis, TwoValueStorm) {
  // only two distinct values: LIS = 2 (or 1); massive tie pressure on the
  // y-rank tie-breaking
  std::vector<int64_t> a(20000);
  for (size_t i = 0; i < a.size(); ++i) a[i] = (pp::hash64(i) & 1) ? 5 : 9;
  auto seq = pp::lis_sequential(a);
  auto par = pp::lis_parallel(a, pp::pivot_policy::uniform_random, 3);
  EXPECT_EQ(par.dp, seq.dp);
  EXPECT_LE(par.length, 2);
  EXPECT_EQ(par.stats.rounds, static_cast<size_t>(par.length));
}

TEST(AdversarialLis, FullChainMaxRank) {
  // strictly increasing input: rank n, one object per round — the span
  // worst case the paper discusses (\"our worst-case span is ~O(n)\")
  auto a = pp::iota<int64_t>(3000);
  auto par = pp::lis_parallel(a, pp::pivot_policy::rightmost, 1);
  EXPECT_EQ(par.length, 3000);
  EXPECT_EQ(par.stats.rounds, 3000u);
  // round 1 checks all n objects (the virtual-point wake-up); afterwards
  // each object is woken exactly once by its predecessor: 2n - 1 total
  EXPECT_EQ(par.stats.wakeup_attempts, 2u * 3000 - 1);
}

// --- activity selection adversarial shapes ------------------------------------------

TEST(AdversarialActivity, NestedLaminarFamily) {
  // intervals strictly nested: [i, 2n-i); nothing is compatible, rank 1
  constexpr int64_t n = 500;
  std::vector<pp::activity> acts;
  for (int64_t i = 0; i < n; ++i) acts.push_back({i, 2 * n - i, i + 1});
  pp::sort_activities(acts);
  auto t1 = pp::activity_select_type1(acts);
  auto t2 = pp::activity_select_type2(acts);
  EXPECT_EQ(t1.stats.rounds, 1u);
  EXPECT_EQ(t2.stats.rounds, 1u);
  EXPECT_EQ(t1.best, n);  // the innermost has the largest weight
  EXPECT_EQ(t2.best, n);
}

TEST(AdversarialActivity, StaircaseOfTouchingIntervals) {
  // [0,1),[1,2),... all compatible in one chain: rank n
  constexpr int64_t n = 400;
  std::vector<pp::activity> acts;
  for (int64_t i = 0; i < n; ++i) acts.push_back({i, i + 1, 2});
  auto seq = pp::activity_select_seq(acts);
  auto t2 = pp::activity_select_type2(acts);
  EXPECT_EQ(t2.dp, seq.dp);
  EXPECT_EQ(t2.best, 2 * n);
  EXPECT_EQ(t2.stats.rounds, static_cast<size_t>(n));
}

TEST(AdversarialActivity, ManyIdenticalEndsOneStart) {
  // heavy end-time ties exercising the composite (end, idx) keys
  std::vector<pp::activity> acts;
  for (int i = 0; i < 1000; ++i) acts.push_back({5, 100, 1 + (i % 7)});
  pp::sort_activities(acts);
  auto t1 = pp::activity_select_type1(acts);
  auto flat = pp::activity_select_type1_flat(acts);
  EXPECT_EQ(t1.dp, flat.dp);
  EXPECT_EQ(t1.best, 7);
  EXPECT_EQ(t1.stats.rounds, 1u);
}

// --- Huffman adversarial ---------------------------------------------------------

TEST(AdversarialHuffman, PowersOfTwoTieStorm) {
  // frequencies all equal powers of two: maximal tie ambiguity, WPL must
  // still match the heap reference exactly
  std::vector<uint64_t> freqs(1 << 10, 8);
  auto seq = pp::huffman_seq(freqs);
  auto par = pp::huffman_parallel(freqs);
  EXPECT_EQ(par.wpl, seq.wpl);
  EXPECT_EQ(par.height, 10u);
  auto lens = pp::huffman_code_lengths(par, freqs.size());
  EXPECT_TRUE(pp::kraft_exact(lens));
}

TEST(AdversarialHuffman, OneGiantManyTiny) {
  std::vector<uint64_t> freqs(1000, 1);
  freqs.push_back(1u << 30);
  std::sort(freqs.begin(), freqs.end());
  auto seq = pp::huffman_seq(freqs);
  auto par = pp::huffman_parallel(freqs);
  EXPECT_EQ(par.wpl, seq.wpl);
  // the giant symbol sits directly under the root
  auto lens = pp::huffman_code_lengths(par, freqs.size());
  EXPECT_EQ(lens.back(), 1u);
  EXPECT_TRUE(pp::kraft_exact(lens));
}

// --- knapsack adversarial ----------------------------------------------------------

TEST(AdversarialKnapsack, AllSameWeight) {
  // rank = W / w exactly; dp is a step function of the best item value
  std::vector<pp::knapsack_item> items = {{10, 3}, {10, 9}, {10, 5}};
  auto seq = pp::knapsack_seq(105, items);
  auto par = pp::knapsack_parallel(105, items);
  EXPECT_EQ(par.dp, seq.dp);
  EXPECT_EQ(par.best, 90);  // 10 copies of value 9
  EXPECT_EQ(par.stats.rounds, 105u / 10 + 1);
}

TEST(AdversarialKnapsack, CoprimeWeights) {
  // chicken-mcnugget regime: dp dense after the Frobenius number
  std::vector<pp::knapsack_item> items = {{7, 7}, {11, 11}};
  auto seq = pp::knapsack_seq(200, items);
  auto par = pp::knapsack_parallel(200, items);
  EXPECT_EQ(par.dp, seq.dp);
  EXPECT_EQ(par.dp[6], 0);    // below the lightest item
  EXPECT_EQ(par.dp[13], 11);  // one 11 beats one 7
  EXPECT_EQ(par.dp[59], 58);  // best fit: 2*7 + 4*11 = 58 <= 59
  EXPECT_EQ(par.dp[60], 60);  // exact: 7*7 + 11
}

// --- SSSP adversarial ----------------------------------------------------------------

TEST(AdversarialSssp, LongPathWorstRank) {
  // path graph with min weights: rank = path length; all algorithms agree
  constexpr uint32_t n = 3000;
  std::vector<pp::wgraph::wedge> es;
  for (uint32_t i = 0; i + 1 < n; ++i) {
    es.push_back({i, i + 1, 1});
    es.push_back({i + 1, i, 1});
  }
  auto wg = pp::wgraph::from_edges(n, es);
  auto dj = pp::sssp_dijkstra(wg, 0);
  auto pp_sssp = pp::sssp_phase_parallel(wg, 0);
  auto cr = pp::sssp_crauser(wg, 0);
  EXPECT_EQ(pp_sssp.dist, dj.dist);
  EXPECT_EQ(cr.dist, dj.dist);
  // one bucket per distance value 0..n-1: no parallelism on a path
  EXPECT_EQ(pp_sssp.stats.rounds, static_cast<size_t>(n));
}

TEST(AdversarialSssp, TwoTierWeights) {
  // cheap local edges + expensive long-range shortcuts: buckets must
  // interleave light and heavy relaxations correctly
  std::vector<pp::wgraph::wedge> es;
  constexpr uint32_t n = 1000;
  for (uint32_t i = 0; i + 1 < n; ++i) {
    es.push_back({i, i + 1, 2});
    es.push_back({i + 1, i, 2});
  }
  for (uint32_t i = 0; i < n; i += 100) {
    es.push_back({0, i, 50});
    es.push_back({i, 0, 50});
  }
  auto wg = pp::wgraph::from_edges(n, es);
  auto dj = pp::sssp_dijkstra(wg, 0);
  for (uint32_t delta : {2u, 50u, 1000u}) {
    auto ds = pp::sssp_delta_stepping(wg, 0, delta);
    ASSERT_EQ(ds.dist, dj.dist) << "delta " << delta;
  }
}

// --- Whac adversarial -----------------------------------------------------------------

TEST(AdversarialWhac, AllMolesOnDiagonal) {
  // moles exactly on the reachability cone boundary: nothing chains
  std::vector<pp::mole> moles;
  for (int i = 0; i < 300; ++i) moles.push_back({i, i});
  auto seq = pp::whac_sequential(moles);
  auto par = pp::whac_parallel(moles, pp::pivot_policy::rightmost, 1);
  EXPECT_EQ(par.dp, seq.dp);
  EXPECT_EQ(par.best, 1);
}

TEST(AdversarialWhac, DuplicateMoles) {
  // identical (t, p) pairs: mutually unreachable, heavy tie pressure
  std::vector<pp::mole> moles(500, pp::mole{7, 3});
  moles.push_back({100, 3});
  auto seq = pp::whac_sequential(moles);
  auto par = pp::whac_parallel(moles, pp::pivot_policy::uniform_random, 5);
  EXPECT_EQ(par.dp, seq.dp);
  EXPECT_EQ(par.best, 2);
}

// --- MIS adversarial --------------------------------------------------------------------

TEST(AdversarialMis, StarWithCenterLast) {
  // center has the worst priority: every leaf joins the MIS, center waits
  // for all of them — a TAS tree with max fan-in
  constexpr uint32_t n = 5000;
  std::vector<pp::edge> es;
  for (uint32_t i = 1; i < n; ++i) es.push_back({0, i});
  auto g = pp::graph::from_edges(n, es);
  std::vector<uint32_t> prio(n);
  prio[0] = n - 1;
  for (uint32_t i = 1; i < n; ++i) prio[i] = i - 1;
  auto seq = pp::mis_sequential(g, prio);
  auto tas = pp::mis_tas(g, prio);
  EXPECT_EQ(tas.in_mis, seq.in_mis);
  EXPECT_EQ(tas.mis_size, n - 1u);
  EXPECT_FALSE(tas.in_mis[0]);
}

TEST(AdversarialMis, CliqueChain) {
  // chain of K5s sharing one vertex: removal cascades through cliques
  std::vector<pp::edge> es;
  constexpr uint32_t cliques = 100, k = 5;
  for (uint32_t c = 0; c < cliques; ++c) {
    uint32_t base = c * (k - 1);
    for (uint32_t i = 0; i < k; ++i)
      for (uint32_t j = i + 1; j < k; ++j) es.push_back({base + i, base + j});
  }
  uint32_t n = cliques * (k - 1) + 1;
  auto g = pp::graph::from_edges(n, es);
  auto prio = pp::random_permutation(n, 11);
  auto seq = pp::mis_sequential(g, prio);
  auto rounds = pp::mis_rounds(g, prio);
  auto tas = pp::mis_tas(g, prio);
  EXPECT_EQ(rounds.in_mis, seq.in_mis);
  EXPECT_EQ(tas.in_mis, seq.in_mis);
  EXPECT_TRUE(pp::is_maximal_independent_set(g, tas.in_mis));
}

// --- merge primitive ------------------------------------------------------------------

TEST(MergeSorted, StableAndCorrect) {
  std::vector<int> a = {1, 3, 3, 5}, b = {2, 3, 4};
  auto m = pp::merge_sorted(std::span<const int>(a), std::span<const int>(b));
  EXPECT_EQ(m, (std::vector<int>{1, 2, 3, 3, 3, 4, 5}));
  // large merge vs std::merge
  auto xs = pp::tabulate<int64_t>(100000, [](size_t i) { return static_cast<int64_t>(2 * i); });
  auto ys = pp::tabulate<int64_t>(80000, [](size_t i) { return static_cast<int64_t>(3 * i); });
  auto got = pp::merge_sorted(std::span<const int64_t>(xs), std::span<const int64_t>(ys));
  std::vector<int64_t> expect;
  std::merge(xs.begin(), xs.end(), ys.begin(), ys.end(), std::back_inserter(expect));
  EXPECT_EQ(got, expect);
}

}  // namespace
