// Shared helper: which backends the backend-parametrized tests sweep.
//
// PP_TEST_SKIP_OPENMP=1 drops the OpenMP backend. The CI ThreadSanitizer
// job sets it because libgomp is not TSan-instrumented: its task barriers
// are invisible to TSan, so every cross-task handoff in the OpenMP paths
// is reported as a false race. The native work-stealing scheduler — the
// code the TSan job exists to guard — synchronizes with std::mutex and
// std::atomic and is fully TSan-visible.
#pragma once

#include <cstdlib>
#include <vector>

#include "parallel/backend.h"

namespace pp_test {

inline std::vector<pp::backend_kind> backends_under_test() {
  std::vector<pp::backend_kind> b{pp::backend_kind::sequential, pp::backend_kind::openmp,
                                  pp::backend_kind::native};
  if (std::getenv("PP_TEST_SKIP_OPENMP") != nullptr) b.erase(b.begin() + 1);
  return b;
}

}  // namespace pp_test
