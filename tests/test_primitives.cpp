// Tests for reduce / scan / pack / tabulate / min_index / write_min.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "parallel/primitives.h"

namespace {

using pp::backend_kind;

class PrimTest : public ::testing::TestWithParam<std::tuple<backend_kind, size_t>> {
 protected:
  void SetUp() override { pp::set_backend(std::get<0>(GetParam())); }
  void TearDown() override { pp::set_backend(backend_kind::native); }
  size_t n() const { return std::get<1>(GetParam()); }

  std::vector<int64_t> random_values(uint64_t seed) const {
    std::mt19937_64 gen(seed);
    std::uniform_int_distribution<int64_t> dist(-1000, 1000);
    std::vector<int64_t> xs(n());
    for (auto& x : xs) x = dist(gen);
    return xs;
  }
};

TEST_P(PrimTest, ReduceAddMatchesStd) {
  auto xs = random_values(1);
  int64_t expect = std::accumulate(xs.begin(), xs.end(), int64_t{0});
  EXPECT_EQ(pp::reduce_add(std::span<const int64_t>(xs)), expect);
}

TEST_P(PrimTest, ReduceMaxMatchesStd) {
  auto xs = random_values(2);
  if (xs.empty()) return;
  int64_t expect = *std::max_element(xs.begin(), xs.end());
  int64_t got = pp::reduce(std::span<const int64_t>(xs), std::numeric_limits<int64_t>::min(),
                           [](int64_t a, int64_t b) { return std::max(a, b); });
  EXPECT_EQ(got, expect);
}

TEST_P(PrimTest, ScanExclusiveMatchesSerial) {
  auto xs = random_values(3);
  auto expect = xs;
  int64_t acc = 0;
  for (auto& x : expect) {
    int64_t next = acc + x;
    x = acc;
    acc = next;
  }
  auto got = xs;
  int64_t total = pp::scan_exclusive_add(std::span<int64_t>(got));
  EXPECT_EQ(total, acc);
  EXPECT_EQ(got, expect);
}

TEST_P(PrimTest, ScanInclusiveMatchesSerial) {
  auto xs = random_values(4);
  auto expect = xs;
  std::partial_sum(expect.begin(), expect.end(), expect.begin());
  auto got = xs;
  int64_t total =
      pp::scan_inclusive(std::span<int64_t>(got), int64_t{0}, std::plus<int64_t>{});
  if (!xs.empty()) EXPECT_EQ(total, expect.back());
  EXPECT_EQ(got, expect);
}

TEST_P(PrimTest, PackKeepsOrderAndContent) {
  auto xs = random_values(5);
  auto got = pp::pack(std::span<const int64_t>(xs), [&](size_t i) { return xs[i] % 3 == 0; });
  std::vector<int64_t> expect;
  for (auto x : xs)
    if (x % 3 == 0) expect.push_back(x);
  EXPECT_EQ(got, expect);
}

TEST_P(PrimTest, PackIndex) {
  auto xs = random_values(6);
  auto got = pp::pack_index(xs.size(), [&](size_t i) { return xs[i] > 0; });
  std::vector<size_t> expect;
  for (size_t i = 0; i < xs.size(); ++i)
    if (xs[i] > 0) expect.push_back(i);
  EXPECT_EQ(got, expect);
}

TEST_P(PrimTest, FilterMatchesPack) {
  auto xs = random_values(7);
  auto a = pp::filter(std::span<const int64_t>(xs), [](int64_t x) { return x < 0; });
  std::vector<int64_t> expect;
  for (auto x : xs)
    if (x < 0) expect.push_back(x);
  EXPECT_EQ(a, expect);
}

TEST_P(PrimTest, TabulateAndIota) {
  auto t = pp::tabulate<size_t>(n(), [](size_t i) { return i * 2; });
  auto io = pp::iota<int64_t>(n());
  for (size_t i = 0; i < n(); ++i) {
    ASSERT_EQ(t[i], i * 2);
    ASSERT_EQ(io[i], static_cast<int64_t>(i));
  }
}

TEST_P(PrimTest, MinIndexFirstOnTies) {
  if (n() == 0) return;
  auto xs = random_values(8);
  size_t got = pp::min_index(std::span<const int64_t>(xs));
  size_t expect = static_cast<size_t>(std::min_element(xs.begin(), xs.end()) - xs.begin());
  EXPECT_EQ(got, expect);
  EXPECT_EQ(xs[pp::max_index(std::span<const int64_t>(xs))],
            *std::max_element(xs.begin(), xs.end()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrimTest,
    ::testing::Combine(::testing::Values(backend_kind::native, backend_kind::openmp,
                                         backend_kind::sequential),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{2}, size_t{100},
                                         size_t{4097}, size_t{100000})),
    [](const auto& info) {
      return std::string(pp::backend_name(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(WriteMin, ConcurrentWritersConverge) {
  std::atomic<int64_t> target{1 << 30};
  pp::parallel_for(0, 100000, [&](size_t i) {
    pp::write_min(&target, static_cast<int64_t>(i * 2654435761u % 1000003));
  });
  // minimum of i*2654435761 mod 1000003 over i in [0,1e5): verify by scan
  int64_t expect = 1 << 30;
  for (size_t i = 0; i < 100000; ++i)
    expect = std::min<int64_t>(expect, static_cast<int64_t>(i * 2654435761u % 1000003));
  EXPECT_EQ(target.load(), expect);
}

TEST(WriteMax, ConcurrentWritersConverge) {
  std::atomic<int64_t> target{-1};
  pp::parallel_for(0, 50000, [&](size_t i) {
    pp::write_max(&target, static_cast<int64_t>(i % 4999));
  });
  EXPECT_EQ(target.load(), 4998);
}

}  // namespace
