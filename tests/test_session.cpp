// Tests for the versioned session store (src/serve/session.h): snapshot
// isolation while deltas land, XOR-incremental fingerprints that address
// content (not history), LRU eviction, engine cache/dedup behavior across
// versions, and exactness of sssp/incremental against the from-scratch
// reference. The reader/writer tests are the TSan half of the store's
// contract: readers pinning version v never block the writer installing
// v+1 (ci runs this binary under -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "checkers.h"
#include "core/registry.h"
#include "serve/engine.h"
#include "serve/session.h"

namespace {

using pp::problem_input;
using pp::registry;
using pp::snapshot_input;
using pp::sssp_input;
using pp::vertex_t;
using pp::wgraph;
using pp::serve::session_delta;
using pp::serve::session_desc;
using pp::serve::session_error;
using pp::serve::session_table;

// A tiny graph with known edges: a directed path 0->1->...->(n-1) of
// weight-10 edges, so tests can add/remove/reweight edges they fully
// control and predict every distance by hand.
problem_input path_graph(vertex_t n) {
  std::vector<wgraph::wedge> edges;
  for (vertex_t u = 0; u + 1 < n; ++u) edges.push_back({u, u + 1, 10});
  sssp_input in;
  in.g = wgraph::from_edges(n, std::move(edges));
  in.source = 0;
  return in;
}

const sssp_input& base_of(const snapshot_input& s) {
  return std::get<sssp_input>(*s.base);
}

std::vector<int64_t> dijkstra_dist(const problem_input& in) {
  auto r = registry::run("sssp/dijkstra", in);
  return std::get<pp::sssp_result>(r.value).dist;
}

TEST(Session, CreateDescribeDrop) {
  session_table tab(0);
  session_desc d = tab.create("p", path_graph(8));
  EXPECT_EQ(d.name, "p");
  EXPECT_EQ(d.problem, "sssp");
  EXPECT_EQ(d.version, 0u);
  EXPECT_EQ(d.elems, 7u);  // 7 path edges
  EXPECT_FALSE(d.hints);
  EXPECT_EQ(tab.describe("p").fp, d.fp);
  EXPECT_EQ(tab.size(), 1u);

  EXPECT_THROW(tab.create("p", path_graph(8)), session_error);  // duplicate
  EXPECT_THROW(tab.describe("nope"), session_error);
  EXPECT_TRUE(tab.drop("p"));
  EXPECT_FALSE(tab.drop("p"));
  EXPECT_EQ(tab.size(), 0u);
}

TEST(Session, FingerprintAddressesContentNotHistory) {
  // Reaching the same edge set by different delta histories must yield the
  // same fingerprint — that is what lets the engine cache hit across
  // sessions and across versions.
  session_table tab(0);
  session_desc a0 = tab.create("a", path_graph(16));
  session_desc b0 = tab.create("b", path_graph(16));
  EXPECT_EQ(a0.fp, b0.fp);

  // a: two single-edge deltas; b: one combined delta (other order).
  session_delta d1, d2, both;
  d1.add_edges = {{2, 9, 3}};
  d2.add_edges = {{5, 11, 4}};
  both.add_edges = {{5, 11, 4}, {2, 9, 3}};
  tab.apply("a", d1);
  session_desc a2 = tab.apply("a", d2);
  session_desc b1 = tab.apply("b", both);
  EXPECT_EQ(a2.fp, b1.fp);
  EXPECT_EQ(a2.version, 2u);
  EXPECT_EQ(b1.version, 1u);

  // Add-then-remove restores the ORIGINAL fingerprint exactly (XOR in,
  // XOR out), and a reweight round-trip does too.
  session_delta rm;
  rm.remove_edges = {{2, 9}, {5, 11}};
  EXPECT_EQ(tab.apply("a", rm).fp, a0.fp);

  session_delta rew, back;
  rew.add_edges = {{0, 1, 99}};  // reweight an existing path edge
  back.add_edges = {{0, 1, 10}};
  session_desc rew_d = tab.apply("b", rew);
  EXPECT_NE(rew_d.fp, b1.fp);
  session_delta rm2;
  rm2.remove_edges = {{2, 9}, {5, 11}};
  tab.apply("b", back);
  EXPECT_EQ(tab.apply("b", rm2).fp, b0.fp);
}

TEST(Session, SequenceSessionsMatchDirectCreation) {
  // Appending to a short sequence fingerprint-equals creating the long one.
  session_table tab(0);
  pp::sequence_input small;
  small.a = {3, 1, 4, 1, 5};
  pp::sequence_input big;
  big.a = {3, 1, 4, 1, 5, 9, 2, 6};
  tab.create("grown", small);
  session_delta app;
  app.append = {9, 2, 6};
  session_desc g1 = tab.apply("grown", app);
  session_desc d0 = tab.create("direct", big);
  EXPECT_EQ(g1.fp, d0.fp);
  EXPECT_EQ(g1.elems, 8u);

  // update round-trips the fingerprint too.
  session_delta up, undo;
  up.update = {{1, 77}};
  undo.update = {{1, 1}};
  session_desc u1 = tab.apply("grown", up);
  EXPECT_NE(u1.fp, d0.fp);
  EXPECT_EQ(tab.apply("grown", undo).fp, d0.fp);

  // Weighted LIS instances are not sessionable (deltas would need a weight
  // channel the protocol does not carry).
  pp::sequence_input weighted;
  weighted.a = {1, 2};
  weighted.weights = {3, 4};
  EXPECT_THROW(tab.create("w", weighted), session_error);
}

TEST(Session, DeltaValidation) {
  session_table tab(0);
  tab.create("p", path_graph(8));
  session_delta bad;
  bad.add_edges = {{7, 8, 1}};  // endpoint 8 out of range
  EXPECT_THROW(tab.apply("p", bad), session_error);
  session_delta bad2;
  bad2.source = 8;
  EXPECT_THROW(tab.apply("p", bad2), session_error);
  session_delta seq_on_graph;
  seq_on_graph.append = {1};
  EXPECT_THROW(tab.apply("p", seq_on_graph), session_error);
  EXPECT_THROW(tab.apply("nope", session_delta{}), session_error);

  pp::sequence_input s;
  s.a = {1, 2, 3};
  tab.create("s", s);
  session_delta oob;
  oob.update = {{3, 9}};  // index 3 out of range
  EXPECT_THROW(tab.apply("s", oob), session_error);
  session_delta graph_on_seq;
  graph_on_seq.add_edges = {{0, 1, 1}};
  EXPECT_THROW(tab.apply("s", graph_on_seq), session_error);

  // Failed deltas install nothing.
  EXPECT_EQ(tab.describe("p").version, 0u);
  EXPECT_EQ(tab.describe("s").version, 0u);
}

TEST(Session, SnapshotIsolationAcrossDeltas) {
  // A pinned snapshot is immutable: deltas installed after the pin change
  // neither its materialized graph nor its solve result.
  session_table tab(0);
  tab.create("p", path_graph(6));
  snapshot_input v0 = tab.snapshot("p");
  std::vector<int64_t> before = dijkstra_dist(v0);
  EXPECT_EQ(before[5], 50);  // five weight-10 hops

  session_delta shortcut;
  shortcut.add_edges = {{0, 5, 7}};
  tab.apply("p", shortcut);

  snapshot_input v1 = tab.snapshot("p");
  EXPECT_EQ(base_of(v0).g.num_edges(), 5u);  // unchanged by the delta
  EXPECT_EQ(base_of(v1).g.num_edges(), 6u);
  EXPECT_TRUE(pp_check::sssp_distances_equal(dijkstra_dist(v0), before));
  EXPECT_EQ(dijkstra_dist(v1)[5], 7);

  // Dropping the session does not invalidate outstanding pins.
  tab.drop("p");
  EXPECT_TRUE(pp_check::sssp_distances_equal(dijkstra_dist(v0), before));
}

TEST(Session, IncrementalSolveIsExact) {
  // sssp/incremental on a snapshot carrying (prior distances, inserted
  // edges) must be BIT-IDENTICAL to the from-scratch reference — the
  // acceptance criterion the serving_sessions bench also enforces.
  session_table tab(0);
  tab.create("g", registry::instance().make_input("sssp", 4000, 11));
  snapshot_input v0 = tab.snapshot("g");
  EXPECT_EQ(v0.prior_dist, nullptr);  // no solve yet

  std::vector<int64_t> d0 = dijkstra_dist(v0);
  tab.note_solve("g", 0, d0);
  EXPECT_TRUE(tab.describe("g").hints);

  // Insertions (and weight decreases) keep the labels usable.
  session_delta ins;
  for (vertex_t i = 0; i < 16; ++i)
    ins.add_edges.push_back({i * 7 % 4000, (i * 131 + 9) % 4000, 1 + i % 3});
  tab.apply("g", ins);
  snapshot_input v1 = tab.snapshot("g");
  ASSERT_NE(v1.prior_dist, nullptr);
  ASSERT_NE(v1.inserted_edges, nullptr);
  EXPECT_FALSE(v1.inserted_edges->empty());

  auto inc = registry::run("sssp/incremental", v1);
  auto ref = registry::run("sssp/dijkstra", v1);
  const auto& inc_d = std::get<pp::sssp_result>(inc.value).dist;
  const auto& ref_d = std::get<pp::sssp_result>(ref.value).dist;
  EXPECT_TRUE(pp_check::sssp_distances_equal(inc_d, ref_d));

  // Structural checker agrees (the same one test_relaxed trusts).
  std::string why;
  EXPECT_TRUE(pp_check::structurally_valid("sssp/incremental", problem_input{v1}, inc.value,
                                           ref.value, &why))
      << why;

  // Removals invalidate the labels: the next snapshot is hint-free and
  // sssp/incremental falls back to from-scratch — still exact.
  tab.note_solve("g", v1.version, ref_d);
  session_delta rm;
  rm.remove_edges = {{ins.add_edges[0].u, ins.add_edges[0].v}};
  tab.apply("g", rm);
  EXPECT_FALSE(tab.describe("g").hints);
  snapshot_input v2 = tab.snapshot("g");
  EXPECT_EQ(v2.prior_dist, nullptr);
  auto inc2 = registry::run("sssp/incremental", v2);
  auto ref2 = registry::run("sssp/dijkstra", v2);
  EXPECT_TRUE(pp_check::sssp_distances_equal(std::get<pp::sssp_result>(inc2.value).dist,
                                             std::get<pp::sssp_result>(ref2.value).dist));
}

TEST(Session, StaleSolveNeverClobbersNewerLabels) {
  session_table tab(0);
  tab.create("g", path_graph(8));
  std::vector<int64_t> d0 = dijkstra_dist(tab.snapshot("g"));
  session_delta shortcut;
  shortcut.add_edges = {{0, 7, 1}};
  tab.apply("g", shortcut);
  std::vector<int64_t> d1 = dijkstra_dist(tab.snapshot("g"));
  tab.note_solve("g", 1, d1);
  EXPECT_TRUE(tab.describe("g").hints);

  // A straggler solve of version 0 lands late: it must not replace the
  // version-1 labels (its distances are stale upper bounds at best).
  tab.note_solve("g", 0, d0);
  snapshot_input s = tab.snapshot("g");
  ASSERT_NE(s.prior_dist, nullptr);
  EXPECT_TRUE(pp_check::sssp_distances_equal(*s.prior_dist, d1));

  // Feeding a dropped/unknown session is a silent no-op, not an error —
  // eviction racing a solve completion is an expected shape.
  tab.drop("g");
  tab.note_solve("g", 1, d1);
}

TEST(Session, LruEvictionBoundsTheTable) {
  session_table tab(2);
  tab.create("a", path_graph(4));
  tab.create("b", path_graph(4));
  EXPECT_EQ(tab.size(), 2u);
  EXPECT_EQ(tab.evictions(), 0u);

  // Touch "a" (snapshot counts as use), then create "c": "b" is the LRU
  // entry and must be the one evicted.
  snapshot_input pin = tab.snapshot("a");
  tab.create("c", path_graph(5));
  EXPECT_EQ(tab.size(), 2u);
  EXPECT_EQ(tab.evictions(), 1u);
  EXPECT_NO_THROW(tab.describe("a"));
  EXPECT_NO_THROW(tab.describe("c"));
  EXPECT_THROW(tab.describe("b"), session_error);

  // The pinned snapshot outlives even its own session's eviction.
  tab.create("d", path_graph(6));
  tab.create("e", path_graph(7));
  EXPECT_THROW(tab.describe("a"), session_error);
  EXPECT_EQ(dijkstra_dist(pin)[3], 30);
}

TEST(Session, ReadersNeverBlockTheWriter) {
  // The store's locking contract: readers pin version v (and HOLD those
  // pins) while the writer installs v+1..v+K. If snapshot() readers could
  // block apply(), this test would deadlock; under TSan it additionally
  // proves the head handoff is race-free.
  session_table tab(0);
  tab.create("g", registry::instance().make_input("sssp", 2000, 3));

  constexpr int kDeltas = 40;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> max_seen{0};
  std::vector<std::thread> readers;
  std::vector<std::vector<snapshot_input>> held(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        snapshot_input s = tab.snapshot("g");
        // Versions a single reader observes are monotone.
        EXPECT_GE(s.version, last);
        last = s.version;
        // Keep every ~8th pin alive for the whole test: live readers of
        // OLD versions while the writer keeps installing new ones.
        if (held[t].size() < 16 && s.version % 8 == static_cast<uint64_t>(t) % 8)
          held[t].push_back(std::move(s));
        uint64_t prev = max_seen.load(std::memory_order_relaxed);
        while (last > prev &&
               !max_seen.compare_exchange_weak(prev, last, std::memory_order_relaxed)) {
        }
      }
    });
  }

  session_delta d;
  for (int i = 0; i < kDeltas; ++i) {
    d.add_edges = {{static_cast<vertex_t>(i % 2000),
                    static_cast<vertex_t>((i * 37 + 5) % 2000), 2}};
    session_desc desc = tab.apply("g", d);
    EXPECT_EQ(desc.version, static_cast<uint64_t>(i + 1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  EXPECT_EQ(tab.describe("g").version, static_cast<uint64_t>(kDeltas));
  EXPECT_LE(max_seen.load(), static_cast<uint64_t>(kDeltas));
  // The held pins still materialize their own (old) versions.
  for (auto& hs : held)
    for (auto& s : hs) EXPECT_EQ(base_of(s).g.num_vertices(), 2000u);
}

TEST(Session, ConcurrentSolveAndDeltaAgree) {
  // Solves racing deltas read consistent snapshots: whatever version a
  // solve pinned, its result equals a quiet re-solve of that same pin.
  session_table tab(0);
  tab.create("g", path_graph(64));
  std::vector<std::pair<snapshot_input, std::vector<int64_t>>> solved;
  std::mutex solved_m;
  std::thread solver([&] {
    for (int i = 0; i < 12; ++i) {
      snapshot_input s = tab.snapshot("g");
      std::vector<int64_t> d = dijkstra_dist(s);
      std::lock_guard<std::mutex> lk(solved_m);
      solved.emplace_back(std::move(s), std::move(d));
    }
  });
  for (int i = 0; i < 24; ++i) {
    session_delta d;
    d.add_edges = {{static_cast<vertex_t>(i % 63), static_cast<vertex_t>(63 - i % 63), 3}};
    tab.apply("g", d);
  }
  solver.join();
  for (auto& [snap, dist] : solved)
    EXPECT_TRUE(pp_check::sssp_distances_equal(dijkstra_dist(snap), dist));
}

TEST(Session, EngineCacheHitsAcrossVersionsByContent) {
  // The engine's result cache keys on (solver, input fp, seed). Session
  // versions with the SAME content (an empty delta) must hit; a content
  // change must miss. In-flight dedup gets the same addressing for free.
  pp::serve::engine_options opt;
  opt.max_inflight_runs = 1;
  opt.workers_per_run = 1;
  opt.batch_window = std::chrono::microseconds(0);
  opt.ctx = pp::context{}.with_backend(pp::backend_kind::native).with_workers(1).with_seed(5);
  pp::serve::engine eng(opt);
  session_table tab(0);
  tab.create("g", registry::instance().make_input("sssp", 1000, 7));

  auto solve = [&](const char* solver) {
    pp::serve::request req;
    req.solver = solver;
    req.input = tab.snapshot("g");
    req.seed = 42;
    req.session = "g";
    return eng.submit(std::move(req)).get();
  };

  pp::serve::response r0 = solve("sssp/dijkstra");
  ASSERT_TRUE(r0.ok()) << r0.error;
  EXPECT_FALSE(r0.cached);

  pp::serve::response r1 = solve("sssp/dijkstra");  // same version
  ASSERT_TRUE(r1.ok()) << r1.error;
  EXPECT_TRUE(r1.cached);

  tab.apply("g", session_delta{});  // v1, identical content
  EXPECT_EQ(tab.describe("g").version, 1u);
  pp::serve::response r2 = solve("sssp/dijkstra");
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_TRUE(r2.cached) << "empty delta changed the fingerprint";
  EXPECT_EQ(pp::score_of(r2.result.value), pp::score_of(r0.result.value));

  session_delta d;
  d.add_edges = {{1, 2, 1}};
  tab.apply("g", d);  // v2, new content
  pp::serve::response r3 = solve("sssp/dijkstra");
  ASSERT_TRUE(r3.ok()) << r3.error;
  EXPECT_FALSE(r3.cached) << "content change must not be answered from cache";
  eng.stop();
}

TEST(Session, EngineSessionAffinityCompletesInOrderTraffic) {
  // Interleaved session solves and deltas through the engine: every solve
  // completes ok and scores match a quiet re-solve of the version each one
  // pinned (affinity keeps per-session admission order; correctness here
  // is that nothing deadlocks, drops, or mixes inputs).
  pp::serve::engine_options opt;
  opt.max_inflight_runs = 2;
  opt.workers_per_run = 1;
  opt.batch_window = std::chrono::microseconds(50);
  opt.ctx = pp::context{}.with_backend(pp::backend_kind::native).with_workers(1).with_seed(9);
  pp::serve::engine eng(opt);
  session_table tab(0);
  tab.create("s", path_graph(128));

  std::vector<std::pair<snapshot_input, std::future<pp::serve::response>>> futs;
  for (int i = 0; i < 10; ++i) {
    snapshot_input snap = tab.snapshot("s");
    pp::serve::request req;
    req.solver = "sssp/dijkstra";
    req.input = snap;
    req.seed = 100 + i;
    req.session = "s";
    futs.emplace_back(std::move(snap), eng.submit(std::move(req)));
    session_delta d;
    d.add_edges = {{0, static_cast<vertex_t>(i + 2), static_cast<uint32_t>(i + 1)}};
    tab.apply("s", d);
  }
  for (auto& [snap, fut] : futs) {
    pp::serve::response r = fut.get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(pp_check::sssp_distances_equal(
        std::get<pp::sssp_result>(r.result.value).dist, dijkstra_dist(snap)));
  }
  eng.stop();
}

}  // namespace
