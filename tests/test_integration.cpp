// Cross-module integration tests:
//   * every parallel algorithm must return bit-identical results across
//     the three backends (native work-stealing, OpenMP, sequential) — the
//     determinism guarantee of DESIGN.md §4.5;
//   * the dominance engine is exercised directly with degenerate qx/yrank
//     shapes that no single front-end produces.
#include <gtest/gtest.h>

#include <vector>

#include "algos/activity.h"
#include "algos/coloring.h"
#include "algos/huffman.h"
#include "algos/knapsack.h"
#include "algos/lis.h"
#include "algos/list_ranking.h"
#include "algos/matching.h"
#include "algos/mis.h"
#include "algos/random_shuffle.h"
#include "algos/sssp.h"
#include "algos/whac.h"
#include "core/dominance_dp.h"
#include "graph/generators.h"
#include "parallel/random.h"

namespace {

using pp::backend_kind;
const backend_kind kBackends[] = {backend_kind::native, backend_kind::openmp,
                                  backend_kind::sequential};

template <typename F>
auto run_on(backend_kind b, F f) {
  pp::scoped_backend sb(b);
  return f();
}

TEST(BackendDeterminism, Lis) {
  auto a = pp::lis_line_pattern(30000, 7, 100000, 3);
  auto ref = run_on(kBackends[0], [&] { return pp::lis_parallel(a, pp::pivot_policy::uniform_random, 5); });
  for (auto b : kBackends) {
    auto r = run_on(b, [&] { return pp::lis_parallel(a, pp::pivot_policy::uniform_random, 5); });
    EXPECT_EQ(r.dp, ref.dp) << pp::backend_name(b);
    EXPECT_EQ(r.stats.rounds, ref.stats.rounds) << pp::backend_name(b);
    EXPECT_EQ(r.stats.wakeup_attempts, ref.stats.wakeup_attempts) << pp::backend_name(b);
  }
}

TEST(BackendDeterminism, Activity) {
  auto acts = pp::random_activities(50000, 1'000'000, 500, 100, 50, 7);
  auto ref = run_on(kBackends[0], [&] { return pp::activity_select_type1(acts); });
  for (auto b : kBackends) {
    auto t1 = run_on(b, [&] { return pp::activity_select_type1(acts); });
    auto t2 = run_on(b, [&] { return pp::activity_select_type2(acts); });
    EXPECT_EQ(t1.dp, ref.dp) << pp::backend_name(b);
    EXPECT_EQ(t2.dp, ref.dp) << pp::backend_name(b);
  }
}

TEST(BackendDeterminism, Sssp) {
  auto g = pp::rmat_graph(1 << 12, 1 << 15, 1);
  auto wg = pp::add_weights(g, 100, 10000, 2);
  auto ref = run_on(kBackends[0], [&] { return pp::sssp_phase_parallel(wg, 0); });
  for (auto b : kBackends) {
    auto r = run_on(b, [&] { return pp::sssp_phase_parallel(wg, 0); });
    EXPECT_EQ(r.dist, ref.dist) << pp::backend_name(b);
    auto c = run_on(b, [&] { return pp::sssp_crauser(wg, 0); });
    EXPECT_EQ(c.dist, ref.dist) << pp::backend_name(b);
  }
}

TEST(BackendDeterminism, GraphGreedy) {
  auto g = pp::random_graph(20000, 80000, 3);
  auto prio = pp::random_permutation(g.num_vertices(), 4);
  auto eprio = pp::random_permutation(g.num_edges(), 5);
  auto mis_ref = run_on(kBackends[0], [&] { return pp::mis_tas(g, prio); });
  for (auto b : kBackends) {
    EXPECT_EQ(run_on(b, [&] { return pp::mis_tas(g, prio); }).in_mis, mis_ref.in_mis);
    EXPECT_EQ(run_on(b, [&] { return pp::coloring_tas(g, prio); }).color,
              pp::coloring_sequential(g, prio).color);
    EXPECT_EQ(run_on(b, [&] { return pp::matching_rounds(g, eprio); }).partner,
              pp::matching_sequential(g, eprio).partner);
  }
}

TEST(BackendDeterminism, HuffmanKnapsackShuffleListWhac) {
  auto freqs = pp::uniform_freqs(100000, 1000, 1);
  auto items = pp::random_items(20, 10, 60, 100, 2);
  auto targets = pp::knuth_targets(50000, 3);
  auto next = pp::random_list(50000, 4);
  auto moles = pp::random_moles(20000, 100000, 1000, 5);
  auto h_ref = run_on(kBackends[0], [&] { return pp::huffman_parallel(freqs); });
  auto k_ref = run_on(kBackends[0], [&] { return pp::knapsack_parallel(5000, items); });
  auto s_ref = run_on(kBackends[0], [&] { return pp::knuth_shuffle_parallel(50000, targets); });
  auto l_ref = run_on(kBackends[0], [&] { return pp::list_ranking_parallel(next, 9); });
  auto w_ref = run_on(kBackends[0], [&] { return pp::whac_parallel(moles, pp::pivot_policy::rightmost, 1); });
  for (auto b : kBackends) {
    EXPECT_EQ(run_on(b, [&] { return pp::huffman_parallel(freqs); }).wpl, h_ref.wpl);
    EXPECT_EQ(run_on(b, [&] { return pp::knapsack_parallel(5000, items); }).dp, k_ref.dp);
    EXPECT_EQ(run_on(b, [&] { return pp::knuth_shuffle_parallel(50000, targets); }).perm,
              s_ref.perm);
    EXPECT_EQ(run_on(b, [&] { return pp::list_ranking_parallel(next, 9); }).rank, l_ref.rank);
    EXPECT_EQ(run_on(b, [&] { return pp::whac_parallel(moles, pp::pivot_policy::rightmost, 1); }).dp, w_ref.dp);
  }
}

// --- dominance engine, degenerate shapes ---------------------------------------

TEST(DominanceEngine, QxZeroMeansEverythingIsRankOne) {
  // empty dominated sets: every object finishes in round 1 with dp 1
  size_t n = 1000;
  auto yr = pp::random_permutation(n, 1);
  std::vector<uint32_t> qx(n, 0);
  auto res = pp::dominance_dp(yr, qx, {}, pp::pivot_policy::uniform_random, 2);
  EXPECT_EQ(res.stats.rounds, 1u);
  for (auto d : res.dp) EXPECT_EQ(d, 1);
}

TEST(DominanceEngine, FullPrefixEqualsLis) {
  size_t n = 5000;
  std::vector<int64_t> a(n);
  for (size_t i = 0; i < n; ++i) a[i] = static_cast<int64_t>(pp::hash64(i) % 100);
  auto yr = pp::compute_y_ranks(std::span<const int64_t>(a));
  auto qx = pp::tabulate<uint32_t>(n, [](size_t i) { return static_cast<uint32_t>(i); });
  auto eng = pp::dominance_dp(yr, qx, {}, pp::pivot_policy::rightmost, 3);
  auto lis = pp::lis_sequential(a);
  EXPECT_EQ(eng.dp, lis.dp);
}

TEST(DominanceEngine, ChainYRanksGiveFullDepth) {
  // yrank == index and full prefixes: a total chain, dp[i] = i + 1
  size_t n = 300;
  auto yr = pp::tabulate<uint32_t>(n, [](size_t i) { return static_cast<uint32_t>(i); });
  auto qx = yr;
  auto res = pp::dominance_dp(yr, qx, {}, pp::pivot_policy::uniform_random, 4);
  EXPECT_EQ(res.stats.rounds, n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(res.dp[i], static_cast<int32_t>(i + 1));
}

TEST(DominanceEngine, WeightsRespected) {
  size_t n = 100;
  auto yr = pp::tabulate<uint32_t>(n, [](size_t i) { return static_cast<uint32_t>(i); });
  auto qx = yr;
  auto w = pp::tabulate<int32_t>(n, [](size_t) { return 5; });
  auto res = pp::dominance_dp(yr, qx, w, pp::pivot_policy::rightmost, 5);
  EXPECT_EQ(res.best, static_cast<int64_t>(5 * n));
}

TEST(DominanceEngine, PartialPrefixesRespectTies) {
  // two tie-groups: {0,1} then {2,3}; group members must not see each other
  std::vector<uint32_t> yr = {0, 1, 2, 3};
  std::vector<uint32_t> qx = {0, 0, 2, 2};
  auto res = pp::dominance_dp(yr, qx, {}, pp::pivot_policy::uniform_random, 6);
  EXPECT_EQ(res.dp, (std::vector<int32_t>{1, 1, 2, 2}));
  EXPECT_EQ(res.stats.rounds, 2u);
}

}  // namespace
