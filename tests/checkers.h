// Structural validity checkers for the relaxed execution paradigm.
//
// Relaxed (k-MultiQueue) solvers promise structural correctness — a valid
// MIS, a maximal matching, a proper coloring, exact SSSP distances — not
// bit-stability, so test_relaxed, test_soak, and ppfuzz validate them with
// these checkers instead of comparing scores against the sequential
// reference. The graph predicates wrap the library validators (which the
// phase solvers' own tests already trust); SSSP is held to exact equality
// with the reference distances because relaxed Dijkstra is exact by
// construction.
#pragma once

#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <variant>

#include "core/registry.h"

namespace pp_check {

inline bool is_independent_and_maximal(const pp::graph& g, std::span<const uint8_t> in_mis) {
  return pp::is_maximal_independent_set(g, in_mis);
}

inline bool is_maximal_matching(const pp::graph& g, std::span<const uint32_t> partner) {
  return pp::is_maximal_matching(g, partner);
}

inline bool is_proper_coloring(const pp::graph& g, std::span<const uint32_t> color) {
  return pp::is_valid_coloring(g, color);
}

inline bool sssp_distances_equal(std::span<const int64_t> got, std::span<const int64_t> want) {
  if (got.size() != want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i)
    if (got[i] != want[i]) return false;
  return true;
}

// One-stop structural validation of a solver payload against its input
// (and, for SSSP, the reference run's distances). `why` receives a
// human-readable reason on failure. Works for any solver of the four
// relaxed families; other payload types fail with "no structural checker".
// Session snapshots validate against their materialized base instance.
inline bool structurally_valid(const std::string& solver, const pp::problem_input& input_raw,
                               const pp::solver_value& got, const pp::solver_value& reference,
                               std::string* why) {
  const pp::problem_input& input =
      std::holds_alternative<pp::snapshot_input>(input_raw)
          ? *std::get<pp::snapshot_input>(input_raw).base
          : input_raw;
  std::ostringstream err;
  bool ok = false;
  if (const auto* r = std::get_if<pp::mis_result>(&got)) {
    const auto* in = std::get_if<pp::graph_input>(&input);
    if (!in) {
      err << solver << ": mis payload without a graph input";
    } else if (!is_independent_and_maximal(in->g, r->in_mis)) {
      err << solver << ": not a maximal independent set";
    } else {
      size_t count = 0;
      for (auto b : r->in_mis) count += b;
      ok = count == r->mis_size;
      if (!ok) err << solver << ": mis_size " << r->mis_size << " != selected count " << count;
    }
  } else if (const auto* r = std::get_if<pp::matching_result>(&got)) {
    const auto* in = std::get_if<pp::graph_input>(&input);
    if (!in) {
      err << solver << ": matching payload without a graph input";
    } else {
      ok = pp_check::is_maximal_matching(in->g, r->partner);
      if (!ok) err << solver << ": not a maximal matching";
    }
  } else if (const auto* r = std::get_if<pp::coloring_result>(&got)) {
    const auto* in = std::get_if<pp::graph_input>(&input);
    if (!in) {
      err << solver << ": coloring payload without a graph input";
    } else {
      ok = is_proper_coloring(in->g, r->color);
      if (!ok) err << solver << ": not a proper coloring";
    }
  } else if (const auto* r = std::get_if<pp::sssp_result>(&got)) {
    const auto* ref = std::get_if<pp::sssp_result>(&reference);
    if (!ref) {
      err << solver << ": sssp payload but the reference run produced none";
    } else {
      ok = sssp_distances_equal(r->dist, ref->dist);
      if (!ok) err << solver << ": distances differ from the reference (relaxed SSSP is exact)";
    }
  } else {
    err << solver << ": no structural checker for this payload type";
  }
  if (!ok && why != nullptr) *why = err.str();
  return ok;
}

}  // namespace pp_check
