// Tests for CSR graphs and the synthetic generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <set>

#include "graph/generators.h"

namespace {

void check_csr_wellformed(const pp::graph& g) {
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      ASSERT_LT(nbrs[i], g.num_vertices());
      ASSERT_NE(nbrs[i], v) << "self loop at " << v;
      if (i > 0) ASSERT_LT(nbrs[i - 1], nbrs[i]) << "unsorted/duplicate adjacency at " << v;
      seen.insert({v, nbrs[i]});
    }
  }
  // symmetry
  for (auto& [u, v] : seen) ASSERT_TRUE(seen.count({v, u})) << u << "->" << v;
}

TEST(Graph, FromEdgesDedupesAndSymmetrizes) {
  std::vector<pp::edge> es = {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}};
  auto g = pp::graph::from_edges(3, es);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);  // {0,1}, {1,2}; self loop {2,2} dropped
  check_csr_wellformed(g);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, EmptyAndIsolatedVertices) {
  auto g = pp::graph::from_edges(5, {});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (uint32_t v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Generators, RandomGraphWellformed) {
  auto g = pp::random_graph(1000, 5000, 42);
  EXPECT_EQ(g.num_vertices(), 1000u);
  EXPECT_GT(g.num_edges(), 4000u);  // few duplicates at this density
  EXPECT_LE(g.num_edges(), 5000u);
  check_csr_wellformed(g);
}

TEST(Generators, RandomGraphDeterministic) {
  auto a = pp::random_graph(500, 2000, 7);
  auto b = pp::random_graph(500, 2000, 7);
  ASSERT_EQ(a.num_directed_edges(), b.num_directed_edges());
  for (uint32_t v = 0; v < 500; ++v) {
    auto na = a.neighbors(v), nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

TEST(Generators, RmatSkewedDegrees) {
  auto g = pp::rmat_graph(1 << 12, 1 << 15, 13);
  check_csr_wellformed(g);
  // Power-law-ish: max degree far above average degree.
  double avg = 2.0 * g.num_edges() / g.num_vertices();
  EXPECT_GT(g.max_degree(), 8 * avg);
}

TEST(Generators, GridGraphStructure) {
  auto g = pp::grid_graph(10, 15);
  EXPECT_EQ(g.num_vertices(), 150u);
  EXPECT_EQ(g.num_edges(), 10u * 14 + 15u * 9);
  check_csr_wellformed(g);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.degree(0), 2u);  // corner
  // BFS diameter of a grid is rows+cols-2 from corner to corner.
  std::vector<int> dist(g.num_vertices(), -1);
  std::queue<uint32_t> q;
  q.push(0);
  dist[0] = 0;
  while (!q.empty()) {
    auto v = q.front();
    q.pop();
    for (auto u : g.neighbors(v))
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
  }
  EXPECT_EQ(dist[149], 10 + 15 - 2);
}

TEST(Generators, AddWeightsSymmetricAndInRange) {
  auto g = pp::random_graph(300, 1500, 3);
  auto wg = pp::add_weights(g, 10, 99, 11);
  EXPECT_EQ(wg.num_vertices(), g.num_vertices());
  EXPECT_EQ(wg.num_edges(), g.num_directed_edges());
  EXPECT_GE(wg.min_weight(), 10u);
  EXPECT_LE(wg.max_weight(), 99u);
  // both directions carry the same weight
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> w;
  for (uint32_t v = 0; v < wg.num_vertices(); ++v) {
    auto nb = wg.out_neighbors(v);
    auto wt = wg.out_weights(v);
    for (size_t i = 0; i < nb.size(); ++i) w[{v, nb[i]}] = wt[i];
  }
  for (auto& [e, wt] : w) ASSERT_EQ(w.at({e.second, e.first}), wt);
}

}  // namespace
