// Tests for TAS trees: completion detection must fire exactly once per
// tree, no matter the marking order or concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <vector>

#include "parallel/random.h"
#include "tastree/tas_tree.h"

namespace {

TEST(TasTree, SingleLeafCompletesImmediately) {
  std::vector<uint32_t> counts = {1};
  pp::tas_forest f(counts);
  EXPECT_FALSE(f.empty_tree(0));
  EXPECT_TRUE(f.mark(0, 0));
}

TEST(TasTree, EmptyTreeReported) {
  std::vector<uint32_t> counts = {0, 3, 0};
  pp::tas_forest f(counts);
  EXPECT_TRUE(f.empty_tree(0));
  EXPECT_FALSE(f.empty_tree(1));
  EXPECT_TRUE(f.empty_tree(2));
}

TEST(TasTree, LastMarkWinsSequential) {
  for (uint32_t m : {2u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 100u, 1000u}) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      std::vector<uint32_t> counts = {m};
      pp::tas_forest f(counts);
      auto order = pp::random_permutation(m, seed);
      int completions = 0;
      for (uint32_t i = 0; i < m; ++i) {
        bool complete = f.mark(0, order[i]);
        if (complete) {
          completions++;
          EXPECT_EQ(i, m - 1) << "completed early: m=" << m << " seed=" << seed;
        }
      }
      EXPECT_EQ(completions, 1) << "m=" << m << " seed=" << seed;
    }
  }
}

TEST(TasTree, LeafFlagsVisible) {
  std::vector<uint32_t> counts = {4};
  pp::tas_forest f(counts);
  EXPECT_FALSE(f.leaf_marked(0, 2));
  f.mark(0, 2);
  EXPECT_TRUE(f.leaf_marked(0, 2));
  EXPECT_FALSE(f.leaf_marked(0, 0));
}

TEST(TasTree, ConcurrentMarksExactlyOneCompletion) {
  // Stress: all leaves marked in parallel; exactly one caller sees true.
  for (uint32_t m : {2u, 16u, 1000u, 100000u}) {
    std::vector<uint32_t> counts = {m};
    pp::tas_forest f(counts);
    std::atomic<int> completions{0};
    pp::parallel_for(0, m, [&](size_t leaf) {
      if (f.mark(0, static_cast<uint32_t>(leaf))) completions.fetch_add(1);
    });
    EXPECT_EQ(completions.load(), 1) << "m=" << m;
  }
}

TEST(TasTree, ManyTreesConcurrently) {
  constexpr size_t trees = 500;
  std::mt19937_64 gen(3);
  std::vector<uint32_t> counts(trees);
  size_t total = 0;
  for (auto& c : counts) {
    c = 1 + static_cast<uint32_t>(gen() % 64);
    total += c;
  }
  pp::tas_forest f(counts);
  // Interleave marks of all trees in one flat parallel loop.
  std::vector<std::pair<uint32_t, uint32_t>> marks;
  marks.reserve(total);
  for (uint32_t t = 0; t < trees; ++t)
    for (uint32_t l = 0; l < counts[t]; ++l) marks.push_back({t, l});
  std::shuffle(marks.begin(), marks.end(), gen);
  std::vector<std::atomic<int>> completions(trees);
  for (auto& c : completions) c.store(0);
  pp::parallel_for(0, marks.size(), [&](size_t i) {
    if (f.mark(marks[i].first, marks[i].second)) completions[marks[i].first].fetch_add(1);
  }, 16);
  for (size_t t = 0; t < trees; ++t) EXPECT_EQ(completions[t].load(), 1) << "tree " << t;
}

TEST(TasTree, PartialMarksDoNotComplete) {
  std::vector<uint32_t> counts = {10};
  pp::tas_forest f(counts);
  for (uint32_t l = 0; l < 9; ++l) EXPECT_FALSE(f.mark(0, l)) << l;
  EXPECT_TRUE(f.mark(0, 9));
}

}  // namespace
