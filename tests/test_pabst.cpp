// Tests for the PA-BST (augmented_map): balance, ordering, augmented range
// queries, batch operations — all validated against brute-force references.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <random>
#include <vector>

#include "pabst/augmented_map.h"

namespace {

using MaxEntry = pp::max_val_entry<int64_t, int64_t, std::numeric_limits<int64_t>::min()>;
using MinEntry = pp::min_val_entry<int64_t, int64_t, std::numeric_limits<int64_t>::max()>;
using SumEntry = pp::sum_val_entry<int64_t, int64_t>;
using MaxMap = pp::augmented_map<MaxEntry>;

std::vector<MaxMap::entry_t> sorted_entries(size_t n, uint64_t seed) {
  // distinct keys 0..2n step 2, random values
  std::mt19937_64 gen(seed);
  std::vector<MaxMap::entry_t> es(n);
  for (size_t i = 0; i < n; ++i)
    es[i] = {static_cast<int64_t>(2 * i), static_cast<int64_t>(gen() % 10000)};
  return es;
}

class PabstSize : public ::testing::TestWithParam<size_t> {};

TEST_P(PabstSize, BuildInvariantsAndFlattenRoundTrip) {
  auto es = sorted_entries(GetParam(), 1);
  auto m = MaxMap::from_sorted(es);
  EXPECT_EQ(m.size(), es.size());
  EXPECT_TRUE(m.check_invariants());
  auto flat = m.flatten();
  ASSERT_EQ(flat.size(), es.size());
  for (size_t i = 0; i < es.size(); ++i) {
    EXPECT_EQ(flat[i].key, es[i].key);
    EXPECT_EQ(flat[i].val, es[i].val);
  }
}

TEST_P(PabstSize, HeightIsLogarithmic) {
  size_t n = GetParam();
  auto m = MaxMap::from_sorted(sorted_entries(n, 2));
  if (n == 0) {
    EXPECT_EQ(m.height(), 0);
    return;
  }
  double bound = 1.45 * std::log2(static_cast<double>(n) + 2) + 2;
  EXPECT_LE(m.height(), static_cast<int>(bound));
}

TEST_P(PabstSize, AugAllIsMax) {
  auto es = sorted_entries(GetParam(), 3);
  auto m = MaxMap::from_sorted(es);
  int64_t expect = std::numeric_limits<int64_t>::min();
  for (auto& e : es) expect = std::max(expect, e.val);
  EXPECT_EQ(m.aug_all(), expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PabstSize,
                         ::testing::Values(size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{10},
                                           size_t{100}, size_t{1000}, size_t{50000}));

TEST(Pabst, InsertFindRemoveAgainstStdMap) {
  MaxMap m;
  std::map<int64_t, int64_t> ref;
  std::mt19937_64 gen(7);
  for (int op = 0; op < 20000; ++op) {
    int64_t k = static_cast<int64_t>(gen() % 2000);
    int choice = static_cast<int>(gen() % 3);
    if (choice == 0) {
      int64_t v = static_cast<int64_t>(gen() % 100000);
      m.insert(k, v);
      ref[k] = v;
    } else if (choice == 1) {
      EXPECT_EQ(m.remove(k), ref.erase(k) > 0);
    } else {
      const int64_t* got = m.find(k);
      auto it = ref.find(k);
      if (it == ref.end()) {
        EXPECT_EQ(got, nullptr);
      } else {
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  EXPECT_TRUE(m.check_invariants());
  EXPECT_EQ(m.size(), ref.size());
  auto flat = m.flatten();
  size_t i = 0;
  for (auto& [k, v] : ref) {
    ASSERT_EQ(flat[i].key, k);
    ASSERT_EQ(flat[i].val, v);
    ++i;
  }
}

TEST(Pabst, SelectAndRank) {
  auto es = sorted_entries(5000, 73);  // keys 0,2,...,9998
  auto m = MaxMap::from_sorted(es);
  for (size_t k : {0ul, 1ul, 2499ul, 4999ul}) {
    auto e = m.select(k);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->key, es[k].key);
    EXPECT_EQ(e->val, es[k].val);
  }
  EXPECT_FALSE(m.select(5000).has_value());
  // rank_of: #keys < k
  EXPECT_EQ(m.rank_of(-1), 0u);
  EXPECT_EQ(m.rank_of(0), 0u);
  EXPECT_EQ(m.rank_of(1), 1u);
  EXPECT_EQ(m.rank_of(9998), 4999u);
  EXPECT_EQ(m.rank_of(999999), 5000u);
  // select/rank are inverse on present keys
  for (size_t k = 0; k < 5000; k += 137) EXPECT_EQ(m.rank_of(m.select(k)->key), k);
}

TEST(Pabst, FirstLast) {
  MaxMap m;
  EXPECT_FALSE(m.first().has_value());
  EXPECT_FALSE(m.last().has_value());
  m.insert(5, 50);
  m.insert(1, 10);
  m.insert(9, 90);
  EXPECT_EQ(m.first()->key, 1);
  EXPECT_EQ(m.last()->key, 9);
}

// --- augmented range queries against brute force -----------------------------

class PabstAug : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    n_ = GetParam();
    es_ = sorted_entries(n_, 11);
    map_ = MaxMap::from_sorted(es_);
  }
  int64_t brute_max(int64_t lo, int64_t hi) const {  // inclusive both
    int64_t acc = std::numeric_limits<int64_t>::min();
    for (auto& e : es_)
      if (e.key >= lo && e.key <= hi) acc = std::max(acc, e.val);
    return acc;
  }
  size_t n_;
  std::vector<MaxMap::entry_t> es_;
  MaxMap map_;
};

TEST_P(PabstAug, AugLeLtGeMatchBrute) {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  std::mt19937_64 gen(13);
  for (int q = 0; q < 200; ++q) {
    int64_t k = static_cast<int64_t>(gen() % (2 * std::max<size_t>(n_, 1) + 3)) - 1;
    EXPECT_EQ(map_.aug_le(k), brute_max(kMin, k)) << "k=" << k;
    EXPECT_EQ(map_.aug_lt(k), brute_max(kMin, k - 1)) << "k=" << k;
    EXPECT_EQ(map_.aug_ge(k), brute_max(k, kMax)) << "k=" << k;
  }
}

TEST_P(PabstAug, AugRangeMatchesBrute) {
  std::mt19937_64 gen(17);
  int64_t span = static_cast<int64_t>(2 * std::max<size_t>(n_, 1) + 3);
  for (int q = 0; q < 200; ++q) {
    int64_t lo = static_cast<int64_t>(gen() % span) - 1;
    int64_t hi = static_cast<int64_t>(gen() % span) - 1;
    EXPECT_EQ(map_.aug_range(lo, hi), brute_max(lo, hi)) << lo << ".." << hi;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PabstAug,
                         ::testing::Values(size_t{0}, size_t{1}, size_t{7}, size_t{64},
                                           size_t{1000}, size_t{20000}));

TEST(PabstAugSum, SumRangeMatchesBrute) {
  using SumMap = pp::augmented_map<SumEntry>;
  std::vector<SumMap::entry_t> es(5000);
  std::mt19937_64 gen(23);
  for (size_t i = 0; i < es.size(); ++i)
    es[i] = {static_cast<int64_t>(3 * i + 1), static_cast<int64_t>(gen() % 100)};
  auto m = SumMap::from_sorted(es);
  for (int q = 0; q < 300; ++q) {
    int64_t lo = static_cast<int64_t>(gen() % 16000);
    int64_t hi = lo + static_cast<int64_t>(gen() % 3000);
    int64_t expect = 0;
    for (auto& e : es)
      if (e.key >= lo && e.key <= hi) expect += e.val;
    EXPECT_EQ(m.aug_range(lo, hi), expect);
  }
}

TEST(PabstAugMin, MinLeMatchesBrute) {
  using MinMap = pp::augmented_map<MinEntry>;
  std::vector<MinMap::entry_t> es(3000);
  std::mt19937_64 gen(29);
  for (size_t i = 0; i < es.size(); ++i)
    es[i] = {static_cast<int64_t>(i), static_cast<int64_t>(gen() % 100000)};
  auto m = MinMap::from_sorted(es);
  for (int q = 0; q < 300; ++q) {
    int64_t k = static_cast<int64_t>(gen() % 3100);
    int64_t expect = std::numeric_limits<int64_t>::max();
    for (auto& e : es)
      if (e.key <= k) expect = std::min(expect, e.val);
    EXPECT_EQ(m.aug_le(k), expect);
  }
}

// --- split / concat -----------------------------------------------------------

TEST(Pabst, SplitOffLeInclusiveAndExclusive) {
  for (bool inclusive : {true, false}) {
    auto es = sorted_entries(1000, 31);
    auto m = MaxMap::from_sorted(es);
    int64_t pivot = es[400].key;
    auto left = m.split_off_le(pivot, inclusive);
    EXPECT_TRUE(left.check_invariants());
    EXPECT_TRUE(m.check_invariants());
    size_t expect_left = 400 + (inclusive ? 1 : 0);
    EXPECT_EQ(left.size(), expect_left);
    EXPECT_EQ(m.size(), es.size() - expect_left);
    auto lf = left.flatten();
    for (auto& e : lf) EXPECT_TRUE(inclusive ? e.key <= pivot : e.key < pivot);
    auto rf = m.flatten();
    for (auto& e : rf) EXPECT_TRUE(inclusive ? e.key > pivot : e.key >= pivot);
  }
}

TEST(Pabst, SplitAtAbsentKey) {
  auto es = sorted_entries(100, 37);  // keys even
  auto m = MaxMap::from_sorted(es);
  auto left = m.split_off_le(41, true);  // odd key, absent
  EXPECT_EQ(left.size(), 21u);           // keys 0..40
  EXPECT_EQ(m.size(), 79u);
}

TEST(Pabst, ConcatRejoins) {
  auto es = sorted_entries(2000, 41);
  auto m = MaxMap::from_sorted(es);
  auto left = m.split_off_le(es[700].key, true);
  left.concat(std::move(m));
  EXPECT_EQ(left.size(), es.size());
  EXPECT_TRUE(left.check_invariants());
  auto flat = left.flatten();
  for (size_t i = 0; i < es.size(); ++i) ASSERT_EQ(flat[i].key, es[i].key);
}

// --- batch ops ------------------------------------------------------------------

TEST(PabstBatch, MultiInsertIntoEmptyAndExisting) {
  auto es = sorted_entries(10000, 43);
  // insert odd-position entries first, then even ones
  std::vector<MaxMap::entry_t> odd, even;
  for (size_t i = 0; i < es.size(); ++i) (i % 2 ? odd : even).push_back(es[i]);
  MaxMap m;
  m.multi_insert(odd);
  EXPECT_EQ(m.size(), odd.size());
  m.multi_insert(even);
  EXPECT_EQ(m.size(), es.size());
  EXPECT_TRUE(m.check_invariants());
  auto flat = m.flatten();
  for (size_t i = 0; i < es.size(); ++i) ASSERT_EQ(flat[i].val, es[i].val);
}

TEST(PabstBatch, MultiInsertOverwritesExistingKeys) {
  auto es = sorted_entries(1000, 47);
  auto m = MaxMap::from_sorted(es);
  std::vector<MaxMap::entry_t> updates;
  for (size_t i = 0; i < es.size(); i += 3) updates.push_back({es[i].key, es[i].val + 1000000});
  m.multi_insert(updates);
  EXPECT_EQ(m.size(), es.size());
  for (size_t i = 0; i < es.size(); ++i) {
    const int64_t* v = m.find(es[i].key);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i % 3 == 0 ? es[i].val + 1000000 : es[i].val);
  }
}

TEST(PabstBatch, MultiDelete) {
  auto es = sorted_entries(10000, 53);
  auto m = MaxMap::from_sorted(es);
  std::vector<int64_t> del;
  for (size_t i = 0; i < es.size(); i += 2) del.push_back(es[i].key);
  del.push_back(999999);  // absent key: no-op
  std::sort(del.begin(), del.end());
  m.multi_delete(del);
  EXPECT_EQ(m.size(), es.size() / 2);
  EXPECT_TRUE(m.check_invariants());
  for (size_t i = 0; i < es.size(); ++i)
    EXPECT_EQ(m.contains(es[i].key), i % 2 == 1) << i;
}

TEST(PabstBatch, MultiUpdateChangesValuesAndAug) {
  auto es = sorted_entries(5000, 59);
  auto m = MaxMap::from_sorted(es);
  std::vector<MaxMap::entry_t> ups;
  for (size_t i = 0; i < es.size(); i += 5) ups.push_back({es[i].key, -es[i].val});
  m.multi_update(ups);
  EXPECT_TRUE(m.check_invariants());
  // Recompute brute-force max to confirm augmentation was refreshed.
  int64_t expect = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < es.size(); ++i)
    expect = std::max(expect, i % 5 == 0 ? -es[i].val : es[i].val);
  EXPECT_EQ(m.aug_all(), expect);
}

TEST(PabstBatch, MultiUpdateIgnoresMissingKeys) {
  auto es = sorted_entries(100, 61);
  auto m = MaxMap::from_sorted(es);
  std::vector<MaxMap::entry_t> ups = {{-5, 1}, {1, 1}, {999999, 1}};  // all absent (keys even)
  m.multi_update(ups);
  EXPECT_EQ(m.size(), es.size());
  auto flat = m.flatten();
  for (size_t i = 0; i < es.size(); ++i) ASSERT_EQ(flat[i].val, es[i].val);
}

TEST(PabstBatch, MultiFind) {
  auto es = sorted_entries(8000, 67);
  auto m = MaxMap::from_sorted(es);
  std::vector<int64_t> keys;
  for (size_t i = 0; i < es.size(); i += 4) keys.push_back(es[i].key);
  keys.push_back(es.back().key + 2);  // absent
  std::sort(keys.begin(), keys.end());
  auto res = m.multi_find(keys);
  ASSERT_EQ(res.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] > es.back().key) {
      EXPECT_FALSE(res[i].has_value());
    } else {
      ASSERT_TRUE(res[i].has_value()) << keys[i];
      EXPECT_EQ(*res[i], es[static_cast<size_t>(keys[i] / 2)].val);
    }
  }
}

TEST(PabstBatch, MultiExtractRanges) {
  auto es = sorted_entries(10000, 71);  // keys 0,2,...,19998
  auto m = MaxMap::from_sorted(es);
  using R = MaxMap::key_range;
  std::vector<R> ranges = {{0, 10}, {100, 99}, {200, 200}, {5000, 5100}, {30000, 40000}};
  auto got = m.multi_extract_ranges(ranges);
  ASSERT_EQ(got.size(), ranges.size());
  EXPECT_EQ(got[0].size(), 6u);   // 0,2,4,6,8,10
  EXPECT_EQ(got[1].size(), 0u);   // empty range (lo > hi)
  EXPECT_EQ(got[2].size(), 1u);   // exactly key 200
  EXPECT_EQ(got[3].size(), 51u);  // 5000..5100 step 2
  EXPECT_EQ(got[4].size(), 0u);   // beyond all keys
  EXPECT_TRUE(m.check_invariants());
  EXPECT_EQ(m.size(), es.size() - 6 - 1 - 51);
  EXPECT_FALSE(m.contains(0));
  EXPECT_FALSE(m.contains(200));
  EXPECT_TRUE(m.contains(12));
  EXPECT_TRUE(m.contains(198));
  EXPECT_TRUE(m.contains(202));
  // extracted groups are in key order
  for (auto& g : got)
    for (size_t i = 1; i < g.size(); ++i) ASSERT_LT(g[i - 1].key, g[i].key);
}

TEST(PabstBatch, LargeBatchesRunParallel) {
  // Exceeds kTreeGrain so the par_do paths execute.
  constexpr size_t n = 200000;
  std::vector<MaxMap::entry_t> es(n);
  for (size_t i = 0; i < n; ++i) es[i] = {static_cast<int64_t>(i), static_cast<int64_t>(i % 97)};
  MaxMap m;
  m.multi_insert(es);
  EXPECT_EQ(m.size(), n);
  EXPECT_TRUE(m.check_invariants());
  EXPECT_EQ(m.aug_all(), 96);
  std::vector<int64_t> keys(n / 2);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<int64_t>(2 * i);
  m.multi_delete(keys);
  EXPECT_EQ(m.size(), n - keys.size());
  EXPECT_TRUE(m.check_invariants());
}

}  // namespace
