// Tests for Huffman construction: the parallel frontier-merge algorithm
// must be exactly optimal (equal WPL to the sequential greedy), with
// bounded round counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <random>
#include <vector>

#include "algos/huffman.h"

namespace {

// Textbook heap-based reference WPL.
uint64_t heap_wpl(std::span<const uint64_t> freqs) {
  if (freqs.size() <= 1) return 0;
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<uint64_t>> pq(freqs.begin(),
                                                                                  freqs.end());
  uint64_t total = 0;
  while (pq.size() > 1) {
    uint64_t a = pq.top();
    pq.pop();
    uint64_t b = pq.top();
    pq.pop();
    total += a + b;  // sum of internal node weights == WPL
    pq.push(a + b);
  }
  return total;
}

void check_tree_shape(const pp::huffman_result& res, size_t n) {
  if (n <= 1) return;
  size_t total = 2 * n - 1;
  ASSERT_EQ(res.parent.size(), total);
  EXPECT_EQ(res.parent[total - 1], pp::kNoParent);  // root
  std::vector<int> children(total, 0);
  for (size_t i = 0; i < total - 1; ++i) {
    ASSERT_LT(res.parent[i], total);
    ASSERT_GT(res.parent[i], i);  // parents created after children
    children[res.parent[i]]++;
  }
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(children[i], 0) << "leaf " << i;
  for (size_t i = n; i < total; ++i) EXPECT_EQ(children[i], 2) << "internal " << i;
}

class HuffmanRandom : public ::testing::TestWithParam<std::tuple<size_t, uint64_t, uint64_t>> {};

TEST_P(HuffmanRandom, SeqAndParallelAreOptimal) {
  auto [n, max_f, seed] = GetParam();
  auto freqs = pp::uniform_freqs(n, max_f, seed);
  uint64_t expect = heap_wpl(freqs);
  auto seq = pp::huffman_seq(freqs);
  auto par = pp::huffman_parallel(freqs);
  EXPECT_EQ(seq.wpl, expect);
  EXPECT_EQ(par.wpl, expect);
  check_tree_shape(seq, n);
  check_tree_shape(par, n);
}

TEST_P(HuffmanRandom, RoundsAtMostHeightPlusSlack) {
  auto [n, max_f, seed] = GetParam();
  if (n < 2) return;
  auto freqs = pp::uniform_freqs(n, max_f, seed);
  auto par = pp::huffman_parallel(freqs);
  // Theorem 4.7: the algorithm finishes in O(H) rounds; the odd-frontier
  // postponement costs at most one extra round per level.
  EXPECT_LE(par.stats.rounds, 2u * (par.height + 1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, HuffmanRandom,
                         ::testing::Values(std::tuple{size_t{0}, 10ul, 1ul},
                                           std::tuple{size_t{1}, 10ul, 2ul},
                                           std::tuple{size_t{2}, 10ul, 3ul},
                                           std::tuple{size_t{3}, 10ul, 4ul},
                                           std::tuple{size_t{100}, 1000ul, 5ul},
                                           std::tuple{size_t{1000}, 1000ul, 6ul},
                                           std::tuple{size_t{1000}, 5ul, 7ul},  // heavy ties
                                           std::tuple{size_t{50000}, 1u << 20, 8ul}));

TEST(Huffman, AllEqualFrequencies) {
  std::vector<uint64_t> freqs(256, 7);
  auto seq = pp::huffman_seq(freqs);
  auto par = pp::huffman_parallel(freqs);
  EXPECT_EQ(seq.wpl, par.wpl);
  EXPECT_EQ(par.height, 8u);  // perfectly balanced over 2^8 leaves
  EXPECT_EQ(seq.wpl, 256u * 7 * 8);
}

TEST(Huffman, ExponentialGivesDeepTree) {
  // Fibonacci-like frequencies make a path-shaped tree (height ~ n).
  std::vector<uint64_t> freqs;
  uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    uint64_t c = a + b;
    a = b;
    b = c;
  }
  std::sort(freqs.begin(), freqs.end());
  auto par = pp::huffman_parallel(freqs);
  auto seq = pp::huffman_seq(freqs);
  EXPECT_EQ(par.wpl, seq.wpl);
  EXPECT_GE(par.height, 38u);
  EXPECT_GE(par.stats.rounds, 38u);  // rank ~ height: little parallelism
}

TEST(Huffman, GeneratorsSortedAndPositive) {
  for (auto freqs : {pp::uniform_freqs(1000, 500, 1), pp::exponential_freqs(1000, 0.01, 1u << 30, 2),
                     pp::zipf_freqs(1000, 1.2, 1u << 20, 3)}) {
    ASSERT_EQ(freqs.size(), 1000u);
    for (size_t i = 0; i < freqs.size(); ++i) {
      ASSERT_GE(freqs[i], 1u);
      if (i > 0) ASSERT_LE(freqs[i - 1], freqs[i]);
    }
  }
}

TEST(Huffman, UniformRoundsStaySmall) {
  // Sec. 6.2: rounds stay in the tens because height ~ log(total freq).
  auto freqs = pp::uniform_freqs(100000, 1000, 4);
  auto par = pp::huffman_parallel(freqs);
  EXPECT_LE(par.stats.rounds, 64u);
  EXPECT_GE(par.stats.rounds, 10u);
}

}  // namespace
