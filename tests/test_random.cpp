// Tests for deterministic random streams and random permutations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "parallel/random.h"

namespace {

TEST(RandomStream, DeterministicPerSeed) {
  pp::random_stream a(123), b(123), c(124);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.ith(i), b.ith(i));
  }
  size_t diffs = 0;
  for (uint64_t i = 0; i < 100; ++i) diffs += (a.ith(i) != c.ith(i));
  EXPECT_GT(diffs, 90u);
}

TEST(RandomStream, BoundedInRange) {
  pp::random_stream rs(7);
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_LT(rs.ith_bounded(i, 17), 17u);
    int64_t v = rs.ith_range(i, -5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rs.ith_double(i);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomStream, BoundedRoughlyUniform) {
  pp::random_stream rs(11);
  constexpr uint64_t buckets = 10, samples = 100000;
  std::vector<size_t> hist(buckets, 0);
  for (uint64_t i = 0; i < samples; ++i) hist[rs.ith_bounded(i, buckets)]++;
  for (auto h : hist) {
    EXPECT_NEAR(static_cast<double>(h), samples / static_cast<double>(buckets),
                5 * std::sqrt(static_cast<double>(samples)));
  }
}

TEST(RandomStream, ForkedStreamsIndependent) {
  pp::random_stream rs(5);
  auto c1 = rs.fork(1), c2 = rs.fork(2);
  size_t same = 0;
  for (uint64_t i = 0; i < 1000; ++i) same += (c1.ith(i) == c2.ith(i));
  EXPECT_LT(same, 5u);
}

TEST(RandomPermutation, IsPermutationAndDeterministic) {
  for (size_t n : {0ul, 1ul, 2ul, 1000ul, 50000ul}) {
    auto p = pp::random_permutation(n, 42);
    auto q = pp::random_permutation(n, 42);
    EXPECT_EQ(p, q);
    std::vector<bool> seen(n, false);
    ASSERT_EQ(p.size(), n);
    for (auto i : p) {
      ASSERT_LT(i, n);
      ASSERT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
}

TEST(RandomPermutation, DifferentSeedsDiffer) {
  auto p = pp::random_permutation(1000, 1);
  auto q = pp::random_permutation(1000, 2);
  EXPECT_NE(p, q);
}

TEST(RandomPermutation, NotIdentity) {
  auto p = pp::random_permutation(1000, 7);
  size_t fixed = 0;
  for (size_t i = 0; i < p.size(); ++i) fixed += (p[i] == i);
  EXPECT_LT(fixed, 20u);  // expected ~1 fixed point
}

}  // namespace
