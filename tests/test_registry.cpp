// Tests for the solver registry (core/registry.h): every algorithm in
// src/algos/ is reachable through pp::registry::run, inputs come from the
// per-problem factories, the run_result envelope is filled in, and all
// solvers of one problem agree on the answer.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/registry.h"

namespace {

using pp::registry;

const std::vector<std::string> kExpectedSolvers = {
    "activity/sequential",
    "activity/type1",
    "activity/type1_flat",
    "activity/type2",
    "activity_unweighted/euler",
    "activity_unweighted/parallel",
    "activity_unweighted/sequential",
    "coloring/sequential",
    "coloring/tas",
    "huffman/parallel",
    "huffman/sequential",
    "knapsack/parallel",
    "knapsack/sequential",
    "lis/parallel",
    "lis/sequential",
    "list_ranking/parallel",
    "list_ranking/sequential",
    "matching/rounds",
    "matching/sequential",
    "mis/rounds",
    "mis/sequential",
    "mis/tas",
    "shuffle/parallel",
    "shuffle/sequential",
    "sssp/bellman_ford",
    "sssp/crauser",
    "sssp/delta_stepping",
    "sssp/dijkstra",
    "sssp/phase_parallel",
    "whac/parallel",
    "whac/sequential",
};

TEST(Registry, AllBuiltinSolversRegistered) {
  std::set<std::string> names;
  for (const auto& s : registry::instance().solvers()) {
    names.insert(s.name);
    EXPECT_FALSE(s.problem.empty()) << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
  }
  for (const auto& want : kExpectedSolvers)
    EXPECT_TRUE(names.count(want)) << "missing solver: " << want;
}

TEST(Registry, ProblemsRegistered) {
  std::set<std::string> names;
  for (const auto& p : registry::instance().problems()) names.insert(p.name);
  for (const char* want :
       {"lis", "activity", "graph", "sssp", "huffman", "knapsack", "list", "shuffle", "whac"})
    EXPECT_TRUE(names.count(want)) << "missing problem: " << want;
}

TEST(Registry, UnknownSolverThrows) {
  auto in = registry::instance().make_input("lis", 100, 1);
  EXPECT_THROW(registry::run("lis/no_such_variant", in), std::out_of_range);
  EXPECT_THROW(registry::instance().make_input("no_such_problem", 100, 1), std::out_of_range);
}

TEST(Registry, WrongInputAlternativeThrows) {
  auto in = registry::instance().make_input("huffman", 100, 1);
  EXPECT_THROW(registry::run("lis/parallel", in), std::invalid_argument);
  EXPECT_THROW(registry::run("mis/tas", in), std::invalid_argument);
}

TEST(Registry, EnvelopeIsFilled) {
  auto in = registry::instance().make_input("lis", 2'000, 5);
  pp::context ctx = pp::context{}.with_backend(pp::backend_kind::openmp).with_seed(5);
  auto res = registry::run("lis/parallel", in, ctx);
  EXPECT_EQ(res.solver, "lis/parallel");
  EXPECT_EQ(res.backend, pp::backend_kind::openmp);
  EXPECT_EQ(res.seed, 5u);
  EXPECT_GE(res.seconds, 0.0);
  EXPECT_GT(res.stats.rounds, 0u);
  // the envelope stats mirror the payload stats
  EXPECT_EQ(res.stats.rounds, pp::stats_of(res.value).rounds);
  const auto& lis = std::get<pp::lis_result>(res.value);
  EXPECT_GT(lis.length, 0);
  EXPECT_EQ(pp::score_of(res.value), lis.length);
  EXPECT_FALSE(pp::summary_of(res.value).empty());
}

TEST(Registry, EnvelopeReportsActualWorkerCount) {
  // Acceptance criterion of ISSUE 2: a run asking for W workers reports
  // width W on both parallel backends (the native pool really has W
  // deques; the OpenMP region really passes W to num_threads).
  auto in = registry::instance().make_input("lis", 1'000, 7);
  for (auto b : {pp::backend_kind::native, pp::backend_kind::openmp}) {
    for (unsigned w : {1u, 2u, 3u}) {
      auto res = registry::run("lis/parallel", in,
                               pp::context{}.with_backend(b).with_seed(7).with_workers(w));
      EXPECT_EQ(res.workers, w) << pp::backend_name(b) << " workers=" << w;
    }
  }
  auto seq = registry::run(
      "lis/parallel", in,
      pp::context{}.with_backend(pp::backend_kind::sequential).with_seed(7).with_workers(4));
  EXPECT_EQ(seq.workers, 1u);  // sequential is always width 1
}

TEST(Registry, ParallelLisMatchesSequentialPayload) {
  auto in = registry::instance().make_input("lis", 3'000, 11);
  auto seq = registry::run("lis/sequential", in);
  auto par = registry::run("lis/parallel", in);
  const auto& s = std::get<pp::lis_result>(seq.value);
  const auto& p = std::get<pp::lis_result>(par.value);
  EXPECT_EQ(s.dp, p.dp);
  EXPECT_EQ(s.length, p.length);
}

// Every solver of one problem computes the same canonical score on the
// same input — the cross-implementation contract the paper's Sec. 5/6
// claims, enforced through the registry.
TEST(Registry, AllSolversOfAProblemAgree) {
  const std::map<std::string, size_t> problem_sizes = {
      {"lis", 2'000},   {"activity", 2'000}, {"graph", 1'500},   {"sssp", 1'500},
      {"huffman", 2'000}, {"knapsack", 2'000}, {"list", 2'000},    {"shuffle", 2'000},
      {"whac", 1'500},
  };
  const std::vector<std::vector<std::string>> groups = {
      {"lis/sequential", "lis/parallel"},
      {"activity/sequential", "activity/type1", "activity/type1_flat", "activity/type2"},
      {"activity_unweighted/sequential", "activity_unweighted/parallel",
       "activity_unweighted/euler"},
      {"mis/sequential", "mis/rounds", "mis/tas"},
      {"coloring/sequential", "coloring/tas"},
      {"matching/sequential", "matching/rounds"},
      {"sssp/dijkstra", "sssp/bellman_ford", "sssp/delta_stepping", "sssp/phase_parallel",
       "sssp/crauser"},
      {"huffman/sequential", "huffman/parallel"},
      {"knapsack/sequential", "knapsack/parallel"},
      {"list_ranking/sequential", "list_ranking/parallel"},
      {"shuffle/sequential", "shuffle/parallel"},
      {"whac/sequential", "whac/parallel"},
  };

  auto& reg = registry::instance();
  std::map<std::string, pp::problem_input> inputs;
  for (const auto& [problem, n] : problem_sizes)
    inputs.emplace(problem, reg.make_input(problem, n, 3));

  std::map<std::string, std::string> problem_of;
  for (const auto& s : reg.solvers()) problem_of[s.name] = s.problem;

  for (const auto& group : groups) {
    ASSERT_FALSE(group.empty());
    const auto& input = inputs.at(problem_of.at(group[0]));
    int64_t reference = 0;
    for (size_t i = 0; i < group.size(); ++i) {
      auto res = registry::run(group[i], input);
      int64_t score = pp::score_of(res.value);
      if (i == 0) {
        reference = score;
      } else {
        EXPECT_EQ(score, reference) << group[i] << " disagrees with " << group[0];
      }
    }
  }
}

TEST(RegistryBatch, EnvelopeAndAggregates) {
  auto& reg = registry::instance();
  std::vector<pp::problem_input> inputs;
  for (uint64_t s : {1u, 2u, 3u}) inputs.push_back(reg.make_input("lis", 1'500, s));
  pp::context ctx = pp::context{}.with_backend(pp::backend_kind::native).with_seed(9);

  auto batch = registry::run_batch("lis/parallel", inputs, ctx);
  ASSERT_EQ(batch.count(), 3u);
  ASSERT_EQ(batch.scores.size(), 3u);
  EXPECT_EQ(batch.solver, "lis/parallel");
  EXPECT_EQ(batch.backend, pp::backend_kind::native);
  EXPECT_EQ(batch.seed, 9u);
  EXPECT_GE(batch.workers, 1u);

  double total = 0;
  size_t rounds = 0;
  for (size_t i = 0; i < 3; ++i) {
    const auto& item = batch.items[i];
    // item i executed under the derived seed — the public batching contract
    EXPECT_EQ(item.seed, pp::derive_seed(9, i)) << i;
    EXPECT_EQ(item.solver, "lis/parallel");
    EXPECT_EQ(item.workers, batch.workers);
    EXPECT_EQ(batch.scores[i], pp::score_of(item.value));
    EXPECT_GT(item.stats.rounds, 0u);
    total += item.seconds;
    rounds += item.stats.rounds;
  }
  EXPECT_DOUBLE_EQ(batch.total_seconds, total);
  EXPECT_EQ(batch.total_rounds, rounds);
  EXPECT_LE(batch.min_seconds, batch.mean_seconds);
  EXPECT_LE(batch.mean_seconds, batch.total_seconds);
  EXPECT_GE(batch.p95_seconds, batch.min_seconds);
  EXPECT_NEAR(batch.mean_seconds, total / 3.0, 1e-12);
}

TEST(RegistryBatch, PercentileAggregatesOrdered) {
  // ISSUE 4 satellite: p50/p99 ride alongside min/mean/p95/max, and the
  // nearest-rank definition guarantees the ordering invariants
  // min <= p50 <= p95 <= p99 <= max and min <= mean <= max.
  auto& reg = registry::instance();
  std::vector<pp::problem_input> inputs;
  for (uint64_t s = 0; s < 12; ++s) inputs.push_back(reg.make_input("lis", 800 + 150 * s, s));
  auto batch = registry::run_batch("lis/parallel", inputs,
                                   pp::context{}.with_backend(pp::backend_kind::native));
  ASSERT_EQ(batch.count(), 12u);
  EXPECT_GT(batch.min_seconds, 0.0);
  EXPECT_LE(batch.min_seconds, batch.p50_seconds);
  EXPECT_LE(batch.p50_seconds, batch.p95_seconds);
  EXPECT_LE(batch.p95_seconds, batch.p99_seconds);
  EXPECT_LE(batch.p99_seconds, batch.max_seconds);
  EXPECT_LE(batch.min_seconds, batch.mean_seconds);
  EXPECT_LE(batch.mean_seconds, batch.max_seconds);
  EXPECT_LE(batch.max_seconds, batch.total_seconds);

  // Every percentile is an actual observed item time (nearest-rank).
  auto observed = [&](double x) {
    for (const auto& it : batch.items)
      if (it.seconds == x) return true;
    return false;
  };
  EXPECT_TRUE(observed(batch.p50_seconds));
  EXPECT_TRUE(observed(batch.p95_seconds));
  EXPECT_TRUE(observed(batch.p99_seconds));
  EXPECT_TRUE(observed(batch.max_seconds));

  // recompute_aggregates is idempotent over unchanged items.
  double p50 = batch.p50_seconds, p99 = batch.p99_seconds;
  batch.recompute_aggregates();
  EXPECT_DOUBLE_EQ(batch.p50_seconds, p50);
  EXPECT_DOUBLE_EQ(batch.p99_seconds, p99);

  // A single-item batch collapses every aggregate onto that item.
  auto one = registry::run_batch("lis/parallel", inputs[0], 1);
  EXPECT_DOUBLE_EQ(one.p50_seconds, one.items[0].seconds);
  EXPECT_DOUBLE_EQ(one.p99_seconds, one.items[0].seconds);
  EXPECT_DOUBLE_EQ(one.max_seconds, one.items[0].seconds);
}

TEST(RegistryBatch, ExplicitSeedsOverrideDerivation) {
  // batch_options::seeds (the micro-batching shape): item i executes
  // under exactly seeds[i], reproducible with standalone runs.
  auto& reg = registry::instance();
  std::vector<pp::problem_input> inputs;
  for (uint64_t s : {41u, 42u, 43u}) inputs.push_back(reg.make_input("lis", 900, s));
  pp::context ctx = pp::context{}.with_backend(pp::backend_kind::native).with_seed(1);

  pp::batch_options opts;
  opts.seeds = {901, 902, 903};
  auto batch = registry::run_batch("lis/parallel", inputs, ctx, opts);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(batch.items[i].seed, opts.seeds[i]) << i;
    auto solo = registry::run("lis/parallel", inputs[i], ctx.with_seed(opts.seeds[i]));
    EXPECT_EQ(batch.scores[i], pp::score_of(solo.value)) << i;
  }

  // Size mismatch is rejected before any work happens.
  opts.seeds = {1, 2};
  EXPECT_THROW(registry::run_batch("lis/parallel", inputs, ctx, opts), std::invalid_argument);
}

TEST(RegistryBatch, MatchesLoopOfRuns) {
  // The amortized path must be invisible to results: batch item i ==
  // registry::run under the derived seed, score for score.
  auto& reg = registry::instance();
  std::vector<pp::problem_input> inputs;
  for (uint64_t s : {5u, 6u, 7u, 8u}) inputs.push_back(reg.make_input("sssp", 1'000, s));
  pp::context ctx = pp::context{}.with_backend(pp::backend_kind::native).with_seed(13);

  auto batch = registry::run_batch("sssp/phase_parallel", inputs, ctx);
  for (size_t i = 0; i < inputs.size(); ++i) {
    auto solo = registry::run("sssp/phase_parallel", inputs[i],
                              ctx.with_seed(pp::derive_seed(13, i)));
    EXPECT_EQ(batch.scores[i], pp::score_of(solo.value)) << i;
    EXPECT_EQ(batch.items[i].stats.rounds, solo.stats.rounds) << i;
  }
}

TEST(RegistryBatch, ShuffledOrderSameResultsPerIndex) {
  auto& reg = registry::instance();
  std::vector<pp::problem_input> inputs;
  for (uint64_t s : {11u, 12u, 13u, 14u, 15u}) inputs.push_back(reg.make_input("lis", 1'000, s));
  pp::context ctx = pp::context{}.with_backend(pp::backend_kind::native).with_seed(21);

  auto given = registry::run_batch("lis/parallel", inputs, ctx);
  pp::batch_options shuffled;
  shuffled.order = pp::batch_options::item_order::shuffled;
  auto shuf = registry::run_batch("lis/parallel", inputs, ctx, shuffled);
  EXPECT_EQ(given.scores, shuf.scores);
  for (size_t i = 0; i < inputs.size(); ++i)
    EXPECT_EQ(given.items[i].seed, shuf.items[i].seed) << i;
}

TEST(RegistryBatch, RepeatOverloadSharesOneInput) {
  auto in = registry::instance().make_input("lis", 1'200, 31);
  pp::context ctx = pp::context{}.with_backend(pp::backend_kind::native).with_seed(31);
  pp::batch_options opts;
  opts.derive_seeds = false;  // the --repeats shape: identical context every time
  auto batch = registry::run_batch("lis/parallel", in, 4, ctx, opts);
  ASSERT_EQ(batch.count(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(batch.items[i].seed, 31u) << i;
    EXPECT_EQ(batch.scores[i], batch.scores[0]) << i;
    EXPECT_EQ(batch.items[i].stats.rounds, batch.items[0].stats.rounds) << i;
  }
}

TEST(RegistryBatch, EmptyBatchIsValid) {
  auto batch = registry::run_batch("lis/parallel", std::span<const pp::problem_input>{});
  EXPECT_EQ(batch.count(), 0u);
  EXPECT_EQ(batch.total_seconds, 0.0);
  EXPECT_EQ(batch.total_rounds, 0u);
}

TEST(RegistryBatch, ErrorsMatchRunErrors) {
  auto in = registry::instance().make_input("huffman", 200, 1);
  std::vector<pp::problem_input> inputs{in};
  EXPECT_THROW(registry::run_batch("lis/no_such_variant", inputs), std::out_of_range);
  EXPECT_THROW(registry::run_batch("lis/parallel", inputs), std::invalid_argument);
}

TEST(RegistryJson, RunEnvelopeSerializes) {
  auto in = registry::instance().make_input("lis", 800, 3);
  auto res = registry::run("lis/parallel", in,
                           pp::context{}.with_backend(pp::backend_kind::native).with_seed(3));
  std::string j = pp::to_json(res);
  EXPECT_NE(j.find("\"solver\": \"lis/parallel\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"backend\": \"native\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"seed\": 3"), std::string::npos) << j;
  EXPECT_NE(j.find("\"score\": "), std::string::npos) << j;
  EXPECT_NE(j.find("\"stats\": {"), std::string::npos) << j;
  EXPECT_NE(j.find("\"rounds\": "), std::string::npos) << j;
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(RegistryJson, BatchEnvelopeSerializes) {
  auto& reg = registry::instance();
  std::vector<pp::problem_input> inputs;
  for (uint64_t s : {1u, 2u, 3u}) inputs.push_back(reg.make_input("lis", 600, s));
  auto batch = registry::run_batch("lis/parallel", inputs);
  std::string j = pp::to_json(batch);
  EXPECT_NE(j.find("\"count\": 3"), std::string::npos) << j;
  EXPECT_NE(j.find("\"items\": ["), std::string::npos) << j;
  EXPECT_NE(j.find("\"scores\": ["), std::string::npos) << j;
  EXPECT_NE(j.find("\"total_seconds\": "), std::string::npos) << j;
  EXPECT_NE(j.find("\"p50_seconds\": "), std::string::npos) << j;
  EXPECT_NE(j.find("\"p95_seconds\": "), std::string::npos) << j;
  EXPECT_NE(j.find("\"p99_seconds\": "), std::string::npos) << j;
  EXPECT_NE(j.find("\"max_seconds\": "), std::string::npos) << j;
  // one per-item envelope per input
  size_t count = 0;
  for (size_t pos = 0; (pos = j.find("\"solver\": \"lis/parallel\"", pos)) != std::string::npos;
       ++pos)
    ++count;
  EXPECT_EQ(count, 4u);  // the batch header + 3 items
}

TEST(Registry, EveryRegisteredSolverRunsOnItsDefaultInput) {
  auto& reg = registry::instance();
  std::map<std::string, pp::problem_input> inputs;
  for (const auto& s : reg.solvers()) {
    if (!inputs.count(s.problem)) inputs.emplace(s.problem, reg.make_input(s.problem, 500, 9));
    auto res = registry::run(s.name, inputs.at(s.problem));
    EXPECT_EQ(res.solver, s.name);
    EXPECT_GE(res.seconds, 0.0) << s.name;
  }
}

}  // namespace
