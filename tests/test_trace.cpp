// The observability layer (core/trace.h + core/metrics.{h,cpp}): span
// nesting/ordering, ring-buffer wraparound, the disabled-tracer
// zero-allocation guarantee, Chrome trace-event JSON validity (checked
// with the in-repo RFC 8259 reader), counter/gauge/histogram semantics,
// and the Prometheus text-format golden the pplint metrics-coverage rule
// cross-checks against the README catalog. This binary also runs under
// the TSan and ASan CI jobs, which is what makes the tracer's per-thread
// buffer discipline machine-checked.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/json.h"
#include "core/metrics.h"
#include "core/registry.h"
#include "core/trace.h"

namespace {

using pp::trace::record;

// Records with a given name from a full snapshot.
std::vector<record> records_named(const char* name) {
  std::vector<record> out;
  for (const record& r : pp::trace::snapshot())
    if (std::string(r.name) == name) out.push_back(r);
  return out;
}

// RAII: every test leaves the tracer disabled and empty.
struct tracer_guard {
  tracer_guard() {
    pp::trace::set_enabled(false);
    pp::trace::clear();
  }
  ~tracer_guard() {
    pp::trace::set_enabled(false);
    pp::trace::clear();
  }
};

TEST(Trace, SpanNestingAndOrdering) {
  tracer_guard g;
  pp::trace::set_enabled(true);
  {
    pp::trace_span outer("t/outer", "a", 1);
    {
      pp::trace_span inner("t/inner");
    }
  }
  auto outer = records_named("t/outer");
  auto inner = records_named("t/inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  // The inner span's interval nests inside the outer's, and both carry
  // monotone timestamps.
  EXPECT_LE(outer[0].t_start_ns, inner[0].t_start_ns);
  EXPECT_LE(inner[0].t_end_ns, outer[0].t_end_ns);
  EXPECT_LE(inner[0].t_start_ns, inner[0].t_end_ns);
  // Same thread, and args survive.
  EXPECT_EQ(outer[0].tid, inner[0].tid);
  ASSERT_NE(outer[0].k1, nullptr);
  EXPECT_EQ(std::string(outer[0].k1), "a");
  EXPECT_EQ(outer[0].v1, 1u);
}

TEST(Trace, EndIsIdempotentAndArgsCanBeSetLate) {
  tracer_guard g;
  pp::trace::set_enabled(true);
  {
    pp::trace_span s("t/late");
    s.args("popped", 7, "wasted", 2);
    s.end();
    s.end();  // second end must not emit a duplicate
  }
  auto recs = records_named("t/late");
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].v1, 7u);
  ASSERT_NE(recs[0].k2, nullptr);
  EXPECT_EQ(std::string(recs[0].k2), "wasted");
  EXPECT_EQ(recs[0].v2, 2u);
}

TEST(Trace, RingBufferWraparound) {
  tracer_guard g;
  pp::trace::set_enabled(true);
  constexpr size_t kExtra = 100;
  uint64_t overwrites_before = pp::metrics::catalog::get().trace_ring_overwrites.value();
  // A fresh thread = a fresh ring: emit capacity + kExtra instants and
  // check the newest capacity survive (oldest kExtra overwritten).
  std::thread t([] {
    for (size_t i = 0; i < pp::trace::kRingCapacity + kExtra; ++i)
      pp::trace::instant("t/wrap", "i", i);
  });
  t.join();
  auto recs = records_named("t/wrap");
  ASSERT_EQ(recs.size(), pp::trace::kRingCapacity);
  uint64_t min_i = UINT64_MAX, max_i = 0;
  for (const record& r : recs) {
    min_i = std::min(min_i, r.v1);
    max_i = std::max(max_i, r.v1);
  }
  EXPECT_EQ(min_i, kExtra);  // 0..kExtra-1 were overwritten
  EXPECT_EQ(max_i, pp::trace::kRingCapacity + kExtra - 1);
  // Every overwritten record bumps pp_trace_ring_overwrites_total — the
  // lossiness signal an operator reads before trusting a ring dump.
  EXPECT_EQ(pp::metrics::catalog::get().trace_ring_overwrites.value() - overwrites_before,
            static_cast<uint64_t>(kExtra));
}

TEST(Trace, DisabledTracerAllocatesNothing) {
  tracer_guard g;  // leaves the tracer disabled
  uint64_t before = pp::trace::buffers_created();
  std::thread t([] {
    for (int i = 0; i < 1000; ++i) {
      pp::trace_span s("t/disabled", "i", static_cast<uint64_t>(i));
      pp::trace::instant("t/disabled_instant");
    }
  });
  t.join();
  // No thread buffer was created and no record stored: the disabled path
  // is one relaxed load + branch.
  EXPECT_EQ(pp::trace::buffers_created(), before);
  EXPECT_EQ(pp::trace::record_count(), 0u);
}

TEST(Trace, SpanDecidesAtConstruction) {
  tracer_guard g;
  {
    pp::trace_span s("t/flip");  // constructed disabled
    pp::trace::set_enabled(true);
  }  // destructor runs enabled — but the span must stay silent
  EXPECT_TRUE(records_named("t/flip").empty());
}

TEST(Trace, ConcurrentEmissionIsSafe) {
  tracer_guard g;
  pp::trace::set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        pp::trace::instant("t/mt", "thread", static_cast<uint64_t>(t));
    });
  }
  for (auto& t : ts) t.join();
  // Each thread has its own ring (capacity > kPerThread), so nothing is
  // dropped and tids partition the records.
  auto recs = records_named("t/mt");
  EXPECT_EQ(recs.size(), static_cast<size_t>(kThreads) * kPerThread);
}

TEST(Trace, ChromeJsonIsValidAndCarriesSpans) {
  tracer_guard g;
  pp::trace::set_enabled(true);
  {
    pp::trace_span s("t/json", "x", 42, "y", 7);
  }
  pp::trace::instant("t/json_instant");
  std::string text = pp::trace::chrome_json();
  pp::trace::set_enabled(false);

  pp::json::value v;
  std::string err;
  ASSERT_TRUE(pp::json::parse(text, v, &err)) << err;
  ASSERT_TRUE(v.is_object());
  const pp::json::value* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->as_array().size(), 2u);
  bool saw_span = false;
  for (const auto& e : events->as_array()) {
    ASSERT_TRUE(e.is_object());
    const auto* name = e.find("name");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("dur"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (name->as_string() == "t/json") {
      saw_span = true;
      const auto* args = e.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("x"), nullptr);
      EXPECT_EQ(args->find("x")->as_uint64(), 42u);
      ASSERT_NE(args->find("y"), nullptr);
      EXPECT_EQ(args->find("y")->as_uint64(), 7u);
    }
  }
  EXPECT_TRUE(saw_span);
}

// The wired emission points: a phase run emits run + lease + per-round
// events; a relaxed run emits run + mq worker-loop spans with
// popped/wasted args. This is the same span set the acceptance criterion
// checks in `ppdriver run sssp/relaxed --trace`.
TEST(Trace, SolverRunsEmitWiredSpans) {
  auto& reg = pp::registry::instance();
  auto input = reg.make_input("sssp", 400, 11);
  pp::context ctx =
      pp::context{}.with_backend(pp::backend_kind::native).with_workers(2).with_seed(11);

  tracer_guard g;
  pp::trace::set_enabled(true);
  auto phase = pp::registry::run("sssp/phase_parallel", input, ctx);
  auto relaxed = pp::registry::run("sssp/relaxed", input, ctx.with_relax_k(4));
  pp::trace::set_enabled(false);
  ASSERT_EQ(phase.status, pp::run_status::ok);
  ASSERT_EQ(relaxed.status, pp::run_status::ok);

  EXPECT_GE(records_named("run").size(), 2u);
  EXPECT_GE(records_named("pool/lease_acquire").size(), 1u);
  auto rounds = records_named("phase/round");
  ASSERT_FALSE(rounds.empty());
  // Round events carry (round index, frontier size) args.
  ASSERT_NE(rounds[0].k1, nullptr);
  EXPECT_EQ(std::string(rounds[0].k1), "round");
  ASSERT_NE(rounds[0].k2, nullptr);
  EXPECT_EQ(std::string(rounds[0].k2), "frontier");
  auto workers = records_named("mq/worker");
  ASSERT_FALSE(workers.empty());
  uint64_t popped = 0;
  for (const record& r : workers) {
    ASSERT_NE(r.k1, nullptr);
    EXPECT_EQ(std::string(r.k1), "popped");
    popped += r.v1;
  }
  // The spans' popped args reconcile with the envelope's counter.
  EXPECT_EQ(popped, relaxed.stats.popped);
}

// ---- metrics ----------------------------------------------------------------

TEST(Metrics, CounterAndGaugeSemantics) {
  pp::metrics::reset_for_tests();
  auto& m = pp::metrics::catalog::get();
  EXPECT_EQ(m.serve_submitted.value(), 0u);
  m.serve_submitted.inc();
  m.serve_submitted.inc(4);
  EXPECT_EQ(m.serve_submitted.value(), 5u);
  EXPECT_EQ(std::string(m.serve_submitted.name()), "pp_serve_submitted_total");

  m.serve_queue_depth.set(17);
  EXPECT_EQ(m.serve_queue_depth.value(), 17);
  m.serve_queue_depth.add(3);
  m.serve_queue_depth.sub(20);
  EXPECT_EQ(m.serve_queue_depth.value(), 0);
  pp::metrics::reset_for_tests();
}

TEST(Metrics, HistogramLogBuckets) {
  using pp::metrics::histogram;
  // le bounds are 2^0..2^30 then +Inf: v lands in the smallest bucket
  // whose bound covers it.
  EXPECT_EQ(histogram::bucket_index(0), 0);
  EXPECT_EQ(histogram::bucket_index(1), 0);
  EXPECT_EQ(histogram::bucket_index(2), 1);
  EXPECT_EQ(histogram::bucket_index(3), 2);
  EXPECT_EQ(histogram::bucket_index(4), 2);
  EXPECT_EQ(histogram::bucket_index(5), 3);
  EXPECT_EQ(histogram::bucket_index(1u << 30), 30);
  EXPECT_EQ(histogram::bucket_index((1u << 30) + 1), histogram::kFiniteBuckets);
  EXPECT_EQ(histogram::bucket_index(UINT64_MAX), histogram::kFiniteBuckets);

  pp::metrics::reset_for_tests();
  auto& h = pp::metrics::catalog::get().serve_batch_size;
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 1000000ull}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1000006u);
  EXPECT_EQ(h.bucket(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket(1), 1u);  // 2
  EXPECT_EQ(h.bucket(2), 1u);  // 3
  EXPECT_EQ(h.bucket(20), 1u);  // 1000000 <= 2^20
  pp::metrics::reset_for_tests();
}

// Prometheus render golden. Every registered metric name must appear
// here by its full literal spelling — tools/pplint.py's metrics-coverage
// rule greps this file (and README.md) for each name registered in
// src/core/metrics.cpp.
TEST(Metrics, PrometheusRenderGolden) {
  pp::metrics::reset_for_tests();
  auto& m = pp::metrics::catalog::get();
  m.serve_submitted.inc(3);
  m.serve_queue_depth.set(2);
  m.serve_batch_size.observe(4);
  std::string out = pp::metrics::render_prometheus();

  const char* kAllNames[] = {
      "pp_serve_submitted_total",
      "pp_serve_completed_total",
      "pp_serve_failed_total",
      "pp_serve_expired_total",
      "pp_serve_cancelled_total",
      "pp_serve_cache_hits_total",
      "pp_serve_cache_misses_total",
      "pp_serve_deduped_total",
      "pp_serve_queue_depth",
      "pp_serve_inflight_runs",
      "pp_serve_batch_size",
      "pp_serve_latency_interactive_usec",
      "pp_serve_latency_batch_usec",
      "pp_trace_ring_overwrites_total",
      "pp_pool_leases_total",
      "pp_mq_popped_total",
      "pp_mq_wasted_total",
      "pp_mq_retries_total",
  };
  for (const char* name : kAllNames) {
    EXPECT_NE(out.find(std::string("# HELP ") + name + " "), std::string::npos) << name;
    EXPECT_NE(out.find(std::string("# TYPE ") + name + " "), std::string::npos) << name;
  }

  // Exact sample lines (text exposition format).
  EXPECT_NE(out.find("# TYPE pp_serve_submitted_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("\npp_serve_submitted_total 3\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE pp_serve_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("\npp_serve_queue_depth 2\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE pp_serve_batch_size histogram\n"), std::string::npos);
  // 4 lands in le=4; cumulative from there on, through +Inf == count.
  EXPECT_NE(out.find("pp_serve_batch_size_bucket{le=\"2\"} 0\n"), std::string::npos);
  EXPECT_NE(out.find("pp_serve_batch_size_bucket{le=\"4\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("pp_serve_batch_size_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("pp_serve_batch_size_sum 4\n"), std::string::npos);
  EXPECT_NE(out.find("pp_serve_batch_size_count 1\n"), std::string::npos);
  pp::metrics::reset_for_tests();
}

}  // namespace
