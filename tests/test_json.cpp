// Tests for the dependency-free JSON writer + reader (core/json.h):
// string-escaping edge cases (quotes, backslashes, control characters,
// UTF-8 passthrough), non-finite doubles, reader edge cases (\uXXXX
// escapes incl. surrogate pairs, int64 exactness, malformed documents),
// and writer -> reader round trips, including a full run_result envelope.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/json.h"
#include "core/registry.h"

namespace {

using pp::json::parse;
using pp::json::value;
using pp::json::writer;

TEST(JsonWriter, EscapesQuotesBackslashesAndControlChars) {
  writer w;
  w.begin_object();
  w.member("k", "a\"b\\c\x01 \n\t\r\b\f");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"k\": \"a\\\"b\\\\c\\u0001 \\n\\t\\r\\b\\f\"}");
}

TEST(JsonWriter, Utf8PassesThroughUnescaped) {
  writer w;
  w.value(std::string_view("héllo – 世界"));
  EXPECT_EQ(w.str(), "\"héllo – 世界\"");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  writer w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null, null, null, 1.5]");
}

TEST(JsonWriter, RawValueSplices) {
  writer inner;
  inner.begin_object();
  inner.member("x", int64_t{1});
  inner.end_object();
  writer outer;
  outer.begin_object();
  outer.key("nested").value_raw(inner.str());
  outer.member("y", int64_t{2});
  outer.end_object();
  EXPECT_EQ(outer.str(), "{\"nested\": {\"x\": 1}, \"y\": 2}");
}

TEST(JsonReader, ParsesScalars) {
  value v;
  ASSERT_TRUE(parse("null", v));
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(parse("true", v));
  EXPECT_TRUE(v.as_bool());
  ASSERT_TRUE(parse("false", v));
  EXPECT_FALSE(v.as_bool());
  ASSERT_TRUE(parse("-42", v));
  EXPECT_TRUE(v.is_number());
  EXPECT_EQ(v.as_int64(), -42);
  ASSERT_TRUE(parse("2.5e3", v));
  EXPECT_DOUBLE_EQ(v.as_double(), 2500.0);
  ASSERT_TRUE(parse("\"hi\"", v));
  EXPECT_EQ(v.as_string(), "hi");
}

TEST(JsonReader, Int64Exactness) {
  // Seeds are 64-bit; integral tokens must not round-trip through double.
  value v;
  ASSERT_TRUE(parse("9007199254740993", v));  // 2^53 + 1, not double-representable
  EXPECT_EQ(v.as_int64(), 9007199254740993ll);
  ASSERT_TRUE(parse("-9223372036854775807", v));
  EXPECT_EQ(v.as_int64(), -9223372036854775807ll);
  // The top half of the seed space, [2^63, 2^64), stays exact too — a
  // derive_seed output is uniform over all 64 bits.
  ASSERT_TRUE(parse("18446744073709551615", v));
  EXPECT_EQ(v.as_uint64(), 18446744073709551615ull);
  ASSERT_TRUE(parse("9223372036854775809", v));  // 2^63 + 1
  EXPECT_EQ(v.as_uint64(), 9223372036854775809ull);
  EXPECT_EQ(v.as_int64(), std::numeric_limits<int64_t>::max());  // clamped, not UB
  // Beyond uint64 the token degrades to double (clamped on conversion).
  ASSERT_TRUE(parse("99999999999999999999", v));
  EXPECT_TRUE(v.is_number());
}

TEST(JsonReader, ObjectsAndArrays) {
  value v;
  ASSERT_TRUE(parse(R"({"a": [1, 2, {"b": "c"}], "d": {}, "e": []})", v));
  ASSERT_TRUE(v.is_object());
  const value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[1].as_int64(), 2);
  EXPECT_EQ(a->as_array()[2].find("b")->as_string(), "c");
  EXPECT_TRUE(v.find("d")->is_object());
  EXPECT_TRUE(v.find("e")->is_array());
  EXPECT_EQ(v.find("nope"), nullptr);
}

TEST(JsonReader, DecodesEscapes) {
  value v;
  ASSERT_TRUE(parse(R"("a\"b\\c\/d\n\tA")", v));
  EXPECT_EQ(v.as_string(), "a\"b\\c/d\n\tA");
  // \u escapes decoding to 2-byte (é), 3-byte (世), and — through a
  // surrogate pair — 4-byte (😀 U+1F600) UTF-8.
  ASSERT_TRUE(parse(R"("\u00e9 \u4e16 \ud83d\ude00")", v));
  EXPECT_EQ(v.as_string(), "\xc3\xa9 \xe4\xb8\x96 \xf0\x9f\x98\x80");
}

TEST(JsonReader, Utf8PassthroughSurvives) {
  value v;
  std::string doc = "\"héllo 世界\"";
  ASSERT_TRUE(parse(doc, v));
  EXPECT_EQ(v.as_string(), "héllo 世界");
}

TEST(JsonReader, EnforcesNumberGrammar) {
  // RFC 8259 forbids leading zeros, bare dots, and empty exponents even
  // though strtod would happily consume them.
  value v;
  EXPECT_FALSE(parse("01", v));
  EXPECT_FALSE(parse("-01", v));
  EXPECT_FALSE(parse("1.", v));
  EXPECT_FALSE(parse(".5", v));
  EXPECT_FALSE(parse("-.5", v));
  EXPECT_FALSE(parse("1e", v));
  EXPECT_FALSE(parse("1e+", v));
  EXPECT_TRUE(parse("0", v));
  EXPECT_TRUE(parse("-0", v));
  EXPECT_TRUE(parse("0.5", v));
  EXPECT_TRUE(parse("10", v));
  EXPECT_TRUE(parse("1e-3", v));
}

TEST(JsonReader, Int64ConversionClampsOutOfRangeDoubles) {
  // as_int64 on a huge double must clamp, not hit UB — a daemon request
  // can legally carry {"n": 1e300}.
  value v;
  ASSERT_TRUE(parse("1e300", v));
  EXPECT_EQ(v.as_int64(), 9223372036854774784ll);  // largest double < 2^63
  ASSERT_TRUE(parse("-1e300", v));
  EXPECT_EQ(v.as_int64(), std::numeric_limits<int64_t>::min());
}

TEST(JsonReader, Uint64ConversionClampsAndFloorsNegatives) {
  // The unsigned twin of the clamp above: negative and NaN inputs floor to
  // 0, huge doubles clamp below 2^64 — static_cast alone would be UB on
  // both ends, and ppserve feeds request fields straight through here.
  value v;
  ASSERT_TRUE(parse("-7", v));
  EXPECT_EQ(v.as_uint64(), 0u);
  ASSERT_TRUE(parse("-1e300", v));
  EXPECT_EQ(v.as_uint64(), 0u);
  ASSERT_TRUE(parse("1e300", v));
  EXPECT_EQ(v.as_uint64(), 18446744073709549568ull);  // largest double < 2^64
  ASSERT_TRUE(parse("18446744073709551615", v));
  EXPECT_EQ(v.as_uint64(), std::numeric_limits<uint64_t>::max());
}

TEST(JsonReader, RejectsPathologicalNesting) {
  // The recursive-descent parser caps nesting depth; without the cap a
  // hostile daemon request line like "[[[[..." overflows the stack (an
  // ASan-visible crash, not a parse error).
  value v;
  std::string err;
  std::string deep(100000, '[');
  EXPECT_FALSE(parse(deep, v, &err));
  EXPECT_NE(err.find("deep"), std::string::npos) << err;
  // 64 levels is within contract either way; just below the cap parses.
  std::string ok = std::string(32, '[') + "1" + std::string(32, ']');
  EXPECT_TRUE(parse(ok, v));
}

TEST(JsonReader, RejectsTruncatedUnicodeEscapes) {
  // \u escapes cut off by end-of-input must fail cleanly, never read past
  // the buffer.
  value v;
  EXPECT_FALSE(parse("\"\\u12", v));
  EXPECT_FALSE(parse("\"\\u", v));
  EXPECT_FALSE(parse("\"\\ud83d\\ude0", v));  // truncated low surrogate
  EXPECT_FALSE(parse("\"\\ud83dX\"", v));     // high surrogate, no \u follows
  EXPECT_FALSE(parse("\"\\", v));             // escape at end of input
}

TEST(JsonReader, RejectsMalformedInput) {
  value v;
  std::string err;
  EXPECT_FALSE(parse("", v, &err));
  EXPECT_FALSE(parse("{", v, &err));
  EXPECT_FALSE(parse("[1,", v, &err));
  EXPECT_FALSE(parse("{\"a\" 1}", v, &err));
  EXPECT_FALSE(parse("\"unterminated", v, &err));
  EXPECT_FALSE(parse("nul", v, &err));
  EXPECT_FALSE(parse("1 2", v, &err)) << "trailing tokens must be rejected";
  EXPECT_FALSE(parse("\"bad \\q escape\"", v, &err));
  EXPECT_FALSE(parse("\"lone \\ud800 surrogate\"", v, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse("\"raw \x01 control\"", v, &err));
}

TEST(JsonRoundTrip, WriterOutputParses) {
  writer w;
  w.begin_object();
  w.member("s", "quote\" slash\\ tab\t é");
  w.member("i", int64_t{-7});
  w.member("u", uint64_t{18446744073709551615ull});  // 2^64-1: emitted unsigned
  w.member("d", 0.125);
  w.member("b", true);
  w.key("arr").begin_array().value(int64_t{1}).value("two").end_array();
  w.key("nan").value(std::nan(""));
  w.end_object();

  value v;
  std::string err;
  ASSERT_TRUE(parse(w.str(), v, &err)) << err << " in " << w.str();
  EXPECT_EQ(v.find("s")->as_string(), "quote\" slash\\ tab\t é");
  EXPECT_EQ(v.find("i")->as_int64(), -7);
  // 2^64-1 overflows int64 but stays exact through the uint64 alternative.
  EXPECT_TRUE(v.find("u")->is_number());
  EXPECT_EQ(v.find("u")->as_uint64(), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(v.find("d")->as_double(), 0.125);
  EXPECT_TRUE(v.find("b")->as_bool());
  EXPECT_EQ(v.find("arr")->as_array().size(), 2u);
  EXPECT_TRUE(v.find("nan")->is_null());
}

TEST(JsonRoundTrip, RunResultEnvelopeParses) {
  // The ppserve daemon splices pp::to_json output into response lines via
  // value_raw; the reader must accept the whole envelope.
  auto in = pp::registry::instance().make_input("lis", 500, 3);
  auto res = pp::registry::run("lis/parallel", in,
                               pp::context{}.with_backend(pp::backend_kind::native).with_seed(3));
  value v;
  std::string err;
  ASSERT_TRUE(parse(pp::to_json(res), v, &err)) << err;
  EXPECT_EQ(v.find("solver")->as_string(), "lis/parallel");
  EXPECT_EQ(v.find("seed")->as_int64(), 3);
  EXPECT_GT(v.find("score")->as_int64(), 0);
  ASSERT_NE(v.find("stats"), nullptr);
  EXPECT_GT(v.find("stats")->find("rounds")->as_int64(), 0);
}

}  // namespace
