// Tests for the 2D range tree: dominance queries and point/batch updates
// validated against brute force, for both pivot policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "rangetree/policies.h"
#include "rangetree/range_tree2d.h"

namespace {

// Brute-force model: per point, finished flag + dp value.
struct Model {
  std::vector<uint32_t> yrank;
  std::vector<bool> finished;
  std::vector<int32_t> dp;

  // over {j : j < qx, yrank[j] < qy}
  struct Result {
    uint32_t unfinished = 0;
    int32_t dp = pp::kDomNegInf;
    std::set<uint32_t> unfinished_ids;
    uint32_t rightmost_unfinished = pp::kDomNoCand;
  };
  Result query(uint32_t qx, uint32_t qy) const {
    Result r;
    for (uint32_t j = 0; j < std::min<size_t>(qx, yrank.size()); ++j) {
      if (yrank[j] >= qy) continue;
      if (finished[j]) {
        r.dp = std::max(r.dp, dp[j]);
      } else {
        r.unfinished++;
        r.unfinished_ids.insert(j);
        if (r.rightmost_unfinished == pp::kDomNoCand || j > r.rightmost_unfinished)
          r.rightmost_unfinished = j;
      }
    }
    return r;
  }
};

Model random_model(size_t n, uint64_t seed, double finished_frac) {
  std::mt19937_64 gen(seed);
  std::vector<int64_t> vals(n);
  for (auto& v : vals) v = static_cast<int64_t>(gen() % (n + 3));  // duplicates likely
  Model m;
  m.yrank = pp::compute_y_ranks(std::span<const int64_t>(vals));
  m.finished.resize(n);
  m.dp.resize(n);
  for (size_t i = 0; i < n; ++i) {
    m.finished[i] = (gen() % 1000) < finished_frac * 1000;
    m.dp[i] = m.finished[i] ? static_cast<int32_t>(gen() % 100) : 0;
  }
  return m;
}

template <typename Agg>
pp::range_tree2d<Agg> tree_of(const Model& m, uint64_t seed = 1) {
  return pp::range_tree2d<Agg>(
      std::span<const uint32_t>(m.yrank),
      [&](uint32_t id) {
        return m.finished[id] ? Agg::finished_leaf(id, m.dp[id]) : Agg::unfinished_leaf(id);
      },
      seed);
}

TEST(YRanks, PermutationAndStrictDominance) {
  std::vector<int64_t> vals = {5, 3, 5, 1, 3, 9, 5};
  auto r = pp::compute_y_ranks(std::span<const int64_t>(vals));
  std::vector<bool> seen(vals.size(), false);
  for (auto x : r) {
    ASSERT_LT(x, vals.size());
    ASSERT_FALSE(seen[x]);
    seen[x] = true;
  }
  // For every ordered pair j < i: yrank[j] < yrank[i] iff vals[j] < vals[i].
  for (size_t i = 0; i < vals.size(); ++i)
    for (size_t j = 0; j < i; ++j)
      EXPECT_EQ(r[j] < r[i], vals[j] < vals[i]) << j << "," << i;
}

class RangeTreeSize : public ::testing::TestWithParam<size_t> {};

TEST_P(RangeTreeSize, RightmostQueriesMatchBrute) {
  size_t n = GetParam();
  auto model = random_model(n, 100 + n, 0.5);
  auto t = tree_of<pp::dom_agg_rightmost>(model);
  std::mt19937_64 gen(7);
  for (int q = 0; q < 300; ++q) {
    uint32_t qx = static_cast<uint32_t>(gen() % (n + 2));
    uint32_t qy = static_cast<uint32_t>(gen() % (n + 2));
    auto got = t.query_prefix(qx, qy, gen());
    auto expect = model.query(qx, qy);
    if (expect.unfinished > 0) {
      ASSERT_TRUE(pp::dom_agg_rightmost::has_unfinished(got)) << qx << "," << qy;
      EXPECT_EQ(got.cand, expect.rightmost_unfinished);
    } else {
      ASSERT_FALSE(pp::dom_agg_rightmost::has_unfinished(got));
      EXPECT_EQ(got.dp, expect.dp);
    }
  }
}

TEST_P(RangeTreeSize, RandomPolicyQueriesMatchBrute) {
  size_t n = GetParam();
  auto model = random_model(n, 200 + n, 0.5);
  auto t = tree_of<pp::dom_agg_random>(model);
  std::mt19937_64 gen(11);
  for (int q = 0; q < 300; ++q) {
    uint32_t qx = static_cast<uint32_t>(gen() % (n + 2));
    uint32_t qy = static_cast<uint32_t>(gen() % (n + 2));
    auto got = t.query_prefix(qx, qy, gen());
    auto expect = model.query(qx, qy);
    ASSERT_EQ(got.unfinished, expect.unfinished) << qx << "," << qy;
    EXPECT_EQ(got.dp, expect.dp);
    if (expect.unfinished > 0) {
      // candidate must be one of the unfinished points in the region
      EXPECT_TRUE(expect.unfinished_ids.count(got.cand)) << got.cand;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RangeTreeSize,
                         ::testing::Values(size_t{0}, size_t{1}, size_t{5}, size_t{8}, size_t{9},
                                           size_t{64}, size_t{100}, size_t{1000}, size_t{5000}));

TEST(RangeTree, UpdatesReflectInQueries) {
  constexpr size_t n = 500;
  auto model = random_model(n, 42, 0.0);  // everything unfinished
  auto t = tree_of<pp::dom_agg_random>(model);
  std::mt19937_64 gen(13);
  // Finish points one at a time in random order; check queries as we go.
  auto order = pp::random_permutation(n, 99);
  for (size_t step = 0; step < n; ++step) {
    uint32_t id = order[step];
    model.finished[id] = true;
    model.dp[id] = static_cast<int32_t>(step % 50);
    t.update(id, pp::dom_agg_random::finished_leaf(id, model.dp[id]), gen());
    if (step % 25 != 0) continue;
    for (int q = 0; q < 30; ++q) {
      uint32_t qx = static_cast<uint32_t>(gen() % (n + 1));
      uint32_t qy = static_cast<uint32_t>(gen() % (n + 1));
      auto got = t.query_prefix(qx, qy, gen());
      auto expect = model.query(qx, qy);
      ASSERT_EQ(got.unfinished, expect.unfinished);
      ASSERT_EQ(got.dp, expect.dp);
    }
  }
}

TEST(RangeTree, BatchUpdateEquivalentToPointUpdates) {
  constexpr size_t n = 3000;
  auto model = random_model(n, 77, 0.0);
  auto t_batch = tree_of<pp::dom_agg_rightmost>(model);
  auto t_point = tree_of<pp::dom_agg_rightmost>(model);
  std::mt19937_64 gen(17);
  auto order = pp::random_permutation(n, 5);
  size_t done = 0;
  while (done < n) {
    size_t b = std::min<size_t>(1 + gen() % 200, n - done);
    std::vector<uint32_t> ids(order.begin() + done, order.begin() + done + b);
    std::vector<pp::dom_agg_rightmost::value_type> vals(b);
    for (size_t i = 0; i < b; ++i) {
      model.finished[ids[i]] = true;
      model.dp[ids[i]] = static_cast<int32_t>((done + i) % 100);
      vals[i] = pp::dom_agg_rightmost::finished_leaf(ids[i], model.dp[ids[i]]);
      t_point.update(ids[i], vals[i]);
    }
    t_batch.batch_update(ids, vals, gen());
    done += b;
    for (int q = 0; q < 20; ++q) {
      uint32_t qx = static_cast<uint32_t>(gen() % (n + 1));
      uint32_t qy = static_cast<uint32_t>(gen() % (n + 1));
      auto a = t_batch.query_prefix(qx, qy);
      auto b2 = t_point.query_prefix(qx, qy);
      auto expect = model.query(qx, qy);
      ASSERT_EQ(a.dp, b2.dp);
      ASSERT_EQ(a.cand, b2.cand);
      if (expect.unfinished > 0) {
        ASSERT_EQ(a.cand, expect.rightmost_unfinished);
      } else {
        ASSERT_EQ(a.dp, expect.dp);
      }
    }
  }
}

TEST(RangeTree, RandomCandidateRoughlyUniform) {
  // Random candidates are fixed per tree *state* (they are chosen when
  // aggregates are computed, as in Algorithm 3); uniformity is over the
  // internal coin flips. Rebuild with different seeds and also re-touch a
  // leaf (update path) to sample the candidate distribution.
  constexpr size_t n = 64, k = 16;
  std::vector<uint32_t> yr(n);
  for (size_t i = 0; i < n; ++i) yr[i] = static_cast<uint32_t>(i);  // identity ranks
  std::map<uint32_t, size_t> hist;
  constexpr size_t trials = 4000;
  for (size_t trial = 0; trial < trials; ++trial) {
    pp::range_tree2d<pp::dom_agg_random> t(
        std::span<const uint32_t>(yr),
        [&](uint32_t id) {
          // first k points unfinished, rest finished
          return id < k ? pp::dom_agg_random::unfinished_leaf(id)
                        : pp::dom_agg_random::finished_leaf(id, 1);
        },
        /*seed=*/trial);
    auto got = t.query_prefix(n, n, /*rnd=*/trial * 31);
    ASSERT_EQ(got.unfinished, k);
    ASSERT_LT(got.cand, k);
    hist[got.cand]++;
  }
  for (uint32_t id = 0; id < k; ++id) {
    double freq = static_cast<double>(hist[id]) / trials;
    EXPECT_NEAR(freq, 1.0 / k, 0.025) << "candidate " << id;
  }
}

TEST(RangeTree, RectQueriesMatchBrute) {
  for (size_t n : {0ul, 1ul, 9ul, 200ul, 3000ul}) {
    auto model = random_model(n, 500 + n, 0.6);
    auto t = tree_of<pp::dom_agg_random>(model);
    std::mt19937_64 gen(31 + n);
    for (int q = 0; q < 200; ++q) {
      uint32_t x1 = static_cast<uint32_t>(gen() % (n + 2));
      uint32_t x2 = static_cast<uint32_t>(gen() % (n + 2));
      uint32_t y1 = static_cast<uint32_t>(gen() % (n + 2));
      uint32_t y2 = static_cast<uint32_t>(gen() % (n + 2));
      auto got = t.query_rect(x1, x2, y1, y2, gen());
      // brute force over the same rectangle
      uint32_t unfinished = 0;
      int32_t dp = pp::kDomNegInf;
      for (uint32_t j = std::min<size_t>(x1, n); j < std::min<size_t>(x2, n); ++j) {
        if (model.yrank[j] < y1 || model.yrank[j] >= y2) continue;
        if (model.finished[j]) dp = std::max(dp, model.dp[j]);
        else unfinished++;
      }
      ASSERT_EQ(got.unfinished, unfinished) << n << ": " << x1 << "," << x2 << "," << y1 << "," << y2;
      ASSERT_EQ(got.dp, dp);
    }
  }
}

TEST(RangeTree, RectDegenerateRanges) {
  auto model = random_model(64, 9, 0.5);
  auto t = tree_of<pp::dom_agg_rightmost>(model);
  // empty in x, empty in y, inverted
  EXPECT_EQ(t.query_rect(10, 10, 0, 64).dp, pp::kDomNegInf);
  EXPECT_EQ(t.query_rect(0, 64, 5, 5).dp, pp::kDomNegInf);
  EXPECT_EQ(t.query_rect(30, 10, 0, 64).dp, pp::kDomNegInf);
  // full rectangle == prefix query with maximal bounds
  auto full = t.query_rect(0, 64, 0, 64);
  auto pref = t.query_prefix(64, 64);
  EXPECT_EQ(full.dp, pref.dp);
  EXPECT_EQ(full.cand, pref.cand);
}

TEST(RangeTree, EmptyQueriesReturnIdentity) {
  auto model = random_model(100, 3, 0.5);
  auto t = tree_of<pp::dom_agg_rightmost>(model);
  auto v0 = t.query_prefix(0, 50);
  EXPECT_EQ(v0.dp, pp::kDomNegInf);
  EXPECT_EQ(v0.cand, pp::kDomNoCand);
  auto v1 = t.query_prefix(50, 0);
  EXPECT_EQ(v1.dp, pp::kDomNegInf);
}

TEST(RangeTree, LeafValueAccessor) {
  auto model = random_model(50, 4, 0.0);
  auto t = tree_of<pp::dom_agg_random>(model);
  EXPECT_EQ(t.leaf_value(7).unfinished, 1u);
  t.update(7, pp::dom_agg_random::finished_leaf(7, 33));
  EXPECT_EQ(t.leaf_value(7).unfinished, 0u);
  EXPECT_EQ(t.leaf_value(7).dp, 33);
  EXPECT_EQ(t.y_rank(7), model.yrank[7]);
}

}  // namespace
