#!/usr/bin/env python3
"""Regression tests for the ppserve daemon binary.

Usage: ppserve_cli_test.py /path/to/ppserve

Covers the PR-5 bugfixes end to end, against the real binary:
  1. Negative engine flags are rejected with a usage error (exit 2)
     instead of wrapping through atoll -> size_t into astronomically
     large values; --max-inflight 0 is clamped to 1 explicitly.
  2. Blank request lines do not consume a default-id slot: auto-assigned
     response ids equal the request's position among real request lines.
  3. Cross-connection anonymous-seed uniqueness: request 0 of two
     concurrent TCP connections must NOT derive the same seed (the old
     per-session line index did exactly that); the seed set is exactly
     derive_seed(base, 0..k-1), reproducible from --seed alone.
  4. deadline_ms / priority / stats request fields round-trip.

And the PR-7 result cache end to end:
  5. A repeat (solver, n, seed) request is answered from the result cache
     ("cached": true, identical result envelope); --cache-off disables
     that; --cache-entries validates like every other count flag (0 is
     spelled --cache-off, so 0 and negatives exit 2).

And the PR-9 observability surface:
  6. {"metrics":true} answers with the Prometheus text rendering of the
     pp::metrics registry (as a JSON string member), whose counters moved
     with the traffic this test just sent; --metrics-port serves the same
     text over raw HTTP GET /metrics (200, text/plain) and 404s any other
     path; bad --metrics-port values exit 2 like every other flag.

And the PR-10 stateful sessions:
  7. create/delta/solve/drop round-trip: each verb answers a "session"
     descriptor (name/problem/version/fingerprint/elems/hints); a delta
     changes the fingerprint, an edge removal drops the hint flag, a
     repeat solve of one version hits the result cache, and every
     malformed verb/row answers an error envelope instead of killing the
     stream; --max-sessions validates like every count flag and bounds
     the table with LRU eviction.
"""
import json
import random
import socket
import subprocess
import sys
import time

PPSERVE = sys.argv[1]
MASK = (1 << 64) - 1


def derive_seed(seed, i):
    """SplitMix64 step over (seed, i) — must match pp::derive_seed."""
    x = (seed + (i + 1) * 0x9E3779B97F4A7C15) & MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK
    return x ^ (x >> 31)


def run(args, stdin=""):
    p = subprocess.run([PPSERVE] + args, input=stdin.encode(), capture_output=True, timeout=120)
    return p.returncode, p.stdout.decode(), p.stderr.decode()


def check(cond, msg):
    if not cond:
        print("FAIL:", msg)
        sys.exit(1)
    print("ok:", msg)


# ---- 1. flag validation ------------------------------------------------------
for flags in (["--queue", "-1"], ["--max-batch", "-3"], ["--batch-window-us", "-5"],
              ["--max-inflight", "-2"], ["--workers-per-run", "-1"], ["--max-n", "0"],
              ["--queue", "banana"], ["--cache-entries", "-1"], ["--cache-entries", "0"],
              ["--cache-entries", "banana"]):
    rc, out, err = run(flags)
    check(rc == 2, f"{' '.join(flags)} rejected with exit 2 (got {rc}, stderr: {err.strip()!r})")

rc, out, err = run(["--max-inflight", "0"], stdin="")
check(rc == 0 and "clamped to 1" in err, f"--max-inflight 0 clamped explicitly ({err.strip()!r})")

# ---- 2. blank lines don't consume default-id slots ---------------------------
stdin = '{"solver":"lis/parallel","n":500}\n\n   \n{"solver":"lis/parallel","n":500}\n\n{"bad json\n'
rc, out, err = run([], stdin=stdin)
check(rc == 0, f"blank-line stream exits 0 (got {rc})")
lines = [json.loads(l) for l in out.splitlines()]
check(len(lines) == 3, f"3 responses for 3 real request lines (got {len(lines)})")
check([l["id"] for l in lines] == [0, 1, 2],
      f"auto ids are consecutive positions among real requests (got {[l['id'] for l in lines]})")
check(lines[0]["ok"] and lines[1]["ok"] and not lines[2]["ok"], "2 results + 1 parse error")

# ---- 3. cross-connection anonymous-seed uniqueness ---------------------------
BASE_SEED = 41


def try_tcp_session(port):
    """Start ppserve on `port`; return (proc, [sock, sock]) or (proc, None)."""
    proc = subprocess.Popen(
        [PPSERVE, "--port", str(port), "--seed", str(BASE_SEED), "--workers-per-run", "1"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
    socks = []
    for _ in range(80):  # up to ~4 s for the listener to come up
        try:
            s = socket.create_connection(("127.0.0.1", port), timeout=1)
            socks.append(s)
            break
        except OSError:
            if proc.poll() is not None:
                return proc, None
            time.sleep(0.05)
    if not socks:
        return proc, None
    socks.append(socket.create_connection(("127.0.0.1", port), timeout=5))
    return proc, socks


proc, socks = None, None
for attempt in range(5):
    port = random.randint(20000, 50000)
    proc, socks = try_tcp_session(port)
    if socks:
        break
    proc.kill()
    proc.wait()
check(socks is not None, "TCP listener came up and accepted two connections")

try:
    # One anonymous request per connection, both in flight concurrently.
    for s in socks:
        s.sendall(b'{"solver":"lis/parallel","n":500}\n')
    seeds = []
    for s in socks:
        f = s.makefile("r")
        d = json.loads(f.readline())
        check(d["ok"], f"anonymous TCP request succeeded ({d})")
        seeds.append(d["result"]["seed"])
        s.shutdown(socket.SHUT_WR)
    check(seeds[0] != seeds[1],
          f"request 0 of two concurrent connections derived DIFFERENT seeds ({seeds})")
    want = {derive_seed(BASE_SEED, 0), derive_seed(BASE_SEED, 1)}
    check(set(seeds) == want,
          f"seeds are exactly derive_seed(base, 0..1) — reproducible from --seed ({seeds})")
finally:
    for s in socks or []:
        s.close()
    proc.stdin.close()  # stdin EOF ends the daemon
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()

# ---- 4. QoS request fields ---------------------------------------------------
stdin = (
    '{"solver":"lis/parallel","n":500,"seed":3,"deadline_ms":60000,"priority":"interactive"}\n'
    '{"solver":"lis/parallel","n":500,"seed":4,"priority":"batch"}\n'
    '{"solver":"lis/parallel","n":500,"priority":"urgent"}\n'
    '{"solver":"lis/parallel","n":500,"deadline_ms":-5}\n'
    '{"stats":true}\n')
rc, out, err = run(["--seed", str(BASE_SEED)], stdin=stdin)
check(rc == 0, f"QoS stream exits 0 (got {rc})")
lines = [json.loads(l) for l in out.splitlines()]
check(len(lines) == 5, f"5 responses (got {len(lines)})")
check(lines[0]["ok"] and lines[0]["result"]["status"] == "ok", "deadline'd request succeeded")
check(lines[1]["ok"], "batch-priority request succeeded")
check(not lines[2]["ok"] and "priority" in lines[2]["error"], "bad priority rejected")
check(not lines[3]["ok"] and "deadline_ms" in lines[3]["error"], "bad deadline_ms rejected")
stats = lines[4]
check(stats["ok"] and all(k in stats["stats"] for k in
                          ("submitted", "completed", "failed", "expired", "cancelled",
                           "batches")),
      f"stats request reports QoS counters ({stats})")
# The snapshot is taken at parse time, after both well-formed requests were
# admitted (the reader feeds lines in order) but possibly before they ran.
check(stats["stats"]["submitted"] == 2, f"two admitted before the stats snapshot ({stats})")

# ---- 5. result cache ---------------------------------------------------------
# Interactive exchange (write one line, read its response) so the first
# request has COMPLETED before the repeat is submitted — a pipelined repeat
# would collapse via in-flight dedup instead of hitting the cache.


def interactive_session(extra_flags, exchanges):
    proc = subprocess.Popen([PPSERVE] + extra_flags, stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
    out = []
    try:
        for req in exchanges:
            proc.stdin.write((json.dumps(req) + "\n").encode())
            proc.stdin.flush()
            out.append(json.loads(proc.stdout.readline()))
    finally:
        proc.stdin.close()
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
    return out

REQ = {"solver": "lis/parallel", "n": 500, "seed": 9}
r1, r2, st = interactive_session(
    ["--seed", str(BASE_SEED)], [REQ, REQ, {"stats": True}])
check(r1["ok"] and r1["cached"] is False, f"first request executed ({r1.get('cached')})")
check(r2["ok"] and r2["cached"] is True, f"repeat request answered from cache ({r2.get('cached')})")
check(r1["result"] == r2["result"], "cached result envelope identical to the executed one")
check(all(k in st["stats"] for k in ("cache_hits", "cache_misses", "deduped")),
      f"stats expose the cache counters ({st})")
check(st["stats"]["cache_hits"] == 1 and st["stats"]["cache_misses"] == 1,
      f"one miss then one hit ({st})")

r1, r2, st = interactive_session(
    ["--seed", str(BASE_SEED), "--cache-off"], [REQ, REQ, {"stats": True}])
check(r1["ok"] and r1["cached"] is False and r2["ok"] and r2["cached"] is False,
      "--cache-off: repeat executed again")
check(st["stats"]["cache_hits"] == 0 and st["stats"]["cache_misses"] == 0,
      f"--cache-off: no cache counters tick ({st})")

# ---- 6. observability: {"metrics":true} and --metrics-port -------------------


def prom_value(text, name):
    """Value of an unlabelled sample line 'name N' in Prometheus text."""
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == 2 and parts[0] == name:
            return float(parts[1])
    return None

r1, r2, m = interactive_session(
    ["--seed", str(BASE_SEED)], [REQ, REQ, {"metrics": True}])
check(r1["ok"] and r2["ok"] and m["ok"], "metrics exchange succeeded")
check(isinstance(m.get("metrics"), str) and "# TYPE" in m["metrics"],
      "metrics response carries Prometheus text as a JSON string")
prom = m["metrics"]
for name in ("pp_serve_submitted_total", "pp_serve_queue_depth", "pp_serve_cache_hits_total",
             "pp_serve_batch_size", "pp_pool_leases_total"):
    check(name in prom, f"metric family {name} present in the rendering")
# Both responses were read before the metrics line was sent, so the
# process-wide counters must reflect that traffic: one executed solve
# (miss), one cache hit, both delivered.
check(prom_value(prom, "pp_serve_submitted_total") == 1,
      "submitted counter moved with the executed request")
check(prom_value(prom, "pp_serve_cache_hits_total") == 1
      and prom_value(prom, "pp_serve_completed_total") == 2,
      "cache-hit and completed counters moved with the traffic")
check(prom_value(prom, "pp_serve_batch_size_count") >= 1,
      "batch-size histogram observed the flush")

rc, out, err = run(["--metrics-port", "0"])
check(rc == 2, f"--metrics-port 0 rejected with exit 2 (got {rc})")
rc, out, err = run(["--metrics-port", "banana"])
check(rc == 2, f"--metrics-port banana rejected with exit 2 (got {rc})")


def http_get(port, path):
    """One-shot HTTP/1.0 GET; returns the raw response text."""
    with socket.create_connection(("127.0.0.1", port), timeout=5) as s:
        s.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        chunks = []
        while True:
            b = s.recv(4096)
            if not b:
                break
            chunks.append(b)
    return b"".join(chunks).decode()


proc, raw = None, None
for attempt in range(5):
    port = random.randint(20000, 50000)
    proc = subprocess.Popen(
        [PPSERVE, "--metrics-port", str(port), "--workers-per-run", "1"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
    for _ in range(80):
        try:
            raw = http_get(port, "/metrics")
            break
        except OSError:
            if proc.poll() is not None:
                break
            time.sleep(0.05)
    if raw is not None:
        break
    proc.kill()
    proc.wait()
try:
    check(raw is not None, "metrics HTTP listener came up")
    check(raw.startswith("HTTP/1.0 200") and "text/plain" in raw,
          f"GET /metrics answers 200 text/plain ({raw.splitlines()[:1]})")
    check("pp_serve_submitted_total" in raw and "# TYPE" in raw,
          "HTTP body is the Prometheus rendering")
    check(http_get(port, "/other").startswith("HTTP/1.0 404"), "GET /other answers 404")
finally:
    if proc is not None:
        proc.stdin.close()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()

# ---- 7. stateful sessions ----------------------------------------------------
# create / delta / solve / drop over one stdin connection. Interactive
# exchange again: reading each response before sending the next request
# guarantees the daemon's note_solve (label feedback) has run, so the
# hint flags below are deterministic.
for flags in (["--max-sessions", "0"], ["--max-sessions", "-2"],
              ["--max-sessions", "banana"]):
    rc, out, err = run(flags)
    check(rc == 2, f"{' '.join(flags)} rejected with exit 2 (got {rc})")

SOLVE = {"session": "solve", "name": "g", "solver": "sssp/incremental", "seed": 11}
resp = interactive_session(["--seed", str(BASE_SEED)], [
    {"session": "create", "name": "g", "problem": "sssp", "n": 2000, "seed": 5},
    SOLVE,                                                          # v0, executes
    {"session": "delta", "name": "g", "add_edges": [[1, 2, 1], [3, 4, 2]]},
    SOLVE,                                                          # v1, executes
    SOLVE,                                                          # v1 repeat, cached
    {"session": "delta", "name": "g", "remove_edges": [[1, 2]]},    # invalidates hints
    {"session": "drop", "name": "g"},
    SOLVE,                                                          # unknown session now
    {"session": "delta", "name": "g", "add_edges": [[1, 2]]},       # wrong row width
    {"session": "frobnicate", "name": "g"},
    {"session": "drop", "name": "never-created"},
])
cr, s0, d1, s1, s2, d2, dr, e_gone, e_width, e_verb, dr2 = resp
check(cr["ok"] and cr["session"]["version"] == 0 and cr["session"]["problem"] == "sssp"
      and cr["session"]["hints"] is False and cr["session"]["elems"] > 0,
      f"create answers the version-0 descriptor ({cr})")
fp0 = cr["session"]["fingerprint"]
check(isinstance(fp0, str) and len(fp0) > 0, f"create reports a fingerprint ({fp0!r})")
check(s0["ok"] and s0["cached"] is False and s0["result"]["status"] == "ok"
      and s0["session"]["version"] == 0 and s0["session"]["fingerprint"] == fp0,
      f"solve pins and reports the version it solved ({s0.get('session')})")
check(d1["ok"] and d1["session"]["version"] == 1 and d1["session"]["fingerprint"] != fp0
      and d1["session"]["hints"] is True,
      f"delta installs v1 with a new fingerprint and live hints ({d1.get('session')})")
check(s1["ok"] and s1["cached"] is False and s1["session"]["version"] == 1
      and s1["session"]["hints"] is True, f"v1 solve executes with hints ({s1.get('session')})")
check(s2["ok"] and s2["cached"] is True and s2["result"] == s1["result"],
      f"repeat solve of the same version hits the result cache ({s2.get('cached')})")
check(d2["ok"] and d2["session"]["version"] == 2 and d2["session"]["hints"] is False,
      f"edge removal invalidates incremental hints ({d2.get('session')})")
check(dr["ok"] and dr["session"] == {"name": "g", "dropped": True}, f"drop acks ({dr})")
check(not e_gone["ok"] and "g" in e_gone["error"], f"solve after drop errors ({e_gone})")
check(not e_width["ok"] and "3" in e_width["error"],
      f"malformed add_edges row rejected ({e_width})")
check(not e_verb["ok"] and "create/delta/solve/drop" in e_verb["error"],
      f"unknown session verb lists the vocabulary ({e_verb})")
check(dr2["ok"] and dr2["session"]["dropped"] is False,
      f"dropping an unknown session acks dropped:false ({dr2})")

# LRU eviction: a 1-slot table forgets the older session when a second is
# created; the newer one keeps working.
a, b, sa, sb = interactive_session(
    ["--seed", str(BASE_SEED), "--max-sessions", "1"], [
        {"session": "create", "name": "a", "n": 500, "seed": 1},
        {"session": "create", "name": "b", "n": 500, "seed": 2},
        {"session": "solve", "name": "a", "solver": "sssp/dijkstra", "seed": 3},
        {"session": "solve", "name": "b", "solver": "sssp/dijkstra", "seed": 3},
    ])
check(a["ok"] and b["ok"], "both creates accepted under --max-sessions 1")
check(not sa["ok"] and "a" in sa["error"], f"LRU evicted session 'a' ({sa})")
check(sb["ok"] and sb["result"]["status"] == "ok", f"session 'b' survived eviction ({sb})")

print("ALL PASS")
