// Tests for cooperative cancellation (core/cancel.h): token semantics,
// phase-granular unwinding through every instrumented round loop,
// run_status::cancelled envelopes from the registry, per-item tokens in
// run_batch, and the guarantee that token-free runs are bit-for-bit
// unchanged (the determinism suite's contract).
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel.h"
#include "core/registry.h"

namespace {

using namespace std::chrono_literals;
using pp::cancel_token;
using pp::registry;
using pp::run_status;

pp::context native2() {
  return pp::context{}.with_backend(pp::backend_kind::native).with_workers(2);
}

TEST(Cancel, TokenBasics) {
  cancel_token null_tok;
  EXPECT_FALSE(null_tok.valid());
  EXPECT_FALSE(null_tok.cancelled());
  null_tok.cancel();  // no-op, not a crash
  EXPECT_FALSE(null_tok.cancelled());
  EXPECT_FALSE(null_tok.deadline().has_value());

  cancel_token manual = cancel_token::manual();
  EXPECT_TRUE(manual.valid());
  EXPECT_FALSE(manual.cancelled());
  cancel_token copy = manual;  // shared state: cancelling one cancels both
  manual.cancel();
  EXPECT_TRUE(manual.cancelled());
  EXPECT_TRUE(copy.cancelled());
  EXPECT_THROW(copy.check(), pp::cancelled_error);

  cancel_token dl = cancel_token::after(5ms);
  EXPECT_TRUE(dl.valid());
  EXPECT_TRUE(dl.deadline().has_value());
  std::this_thread::sleep_for(20ms);
  EXPECT_TRUE(dl.cancelled());  // deadline passed (and latched)
  EXPECT_TRUE(dl.cancelled());

  cancel_token far = cancel_token::after(1h);
  EXPECT_FALSE(far.cancelled());
  EXPECT_NO_THROW(far.check());
}

TEST(Cancel, ContextEqualityIgnoresToken) {
  // The scope-race detector compares configs; two runs differing only in
  // their cancel tokens are NOT conflicting configs (concurrent serving
  // batches carry per-request deadline tokens).
  pp::context a = native2().with_seed(9);
  pp::context b = a.with_cancel(cancel_token::manual());
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == a.with_seed(10));
}

TEST(Cancel, PreCancelledTokenUnwindsEveryInstrumentedSolver) {
  // A token that has already fired stops each phase loop at its first
  // cancel_point: the run returns a cancelled envelope after round 0.
  const std::vector<std::pair<std::string, std::string>> solvers = {
      {"lis/parallel", "lis"},
      {"whac/parallel", "whac"},
      {"activity/type1", "activity"},
      {"activity/type1_flat", "activity"},
      {"activity/type2", "activity"},
      {"activity_unweighted/parallel", "activity"},
      {"mis/rounds", "graph"},
      {"matching/rounds", "graph"},
      {"sssp/bellman_ford", "sssp"},
      {"sssp/delta_stepping", "sssp"},
      {"sssp/phase_parallel", "sssp"},
      {"sssp/crauser", "sssp"},
      {"huffman/parallel", "huffman"},
      {"knapsack/parallel", "knapsack"},
      {"list_ranking/parallel", "list"},
      {"shuffle/parallel", "shuffle"},
  };
  auto& reg = registry::instance();
  for (const auto& [name, problem] : solvers) {
    ASSERT_NE(reg.info(name), nullptr) << name;
    auto in = reg.make_input(problem, 2'000, 7);
    cancel_token tok = cancel_token::manual();
    tok.cancel();
    auto res = registry::run(name, in, native2().with_seed(3).with_cancel(tok));
    EXPECT_EQ(res.status, run_status::cancelled) << name;
    EXPECT_TRUE(res.cancelled()) << name;
  }
}

TEST(Cancel, DeadlineCancelsMidRunFasterThanFullSolve) {
  auto in = registry::instance().make_input("lis", 8'000, 11);
  pp::context ctx = native2().with_seed(5);

  // Reference: the full solve, no token.
  auto full = registry::run("lis/parallel", in, ctx);
  ASSERT_EQ(full.status, run_status::ok);
  ASSERT_GT(full.seconds, 0.05) << "input too small to observe a mid-run cancel";

  auto t0 = std::chrono::steady_clock::now();
  auto res = registry::run("lis/parallel", in, ctx.with_cancel(cancel_token::after(20ms)));
  double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(res.status, run_status::cancelled);
  // The run unwound at a phase boundary instead of burning the full solve.
  EXPECT_LT(elapsed, 0.5 * full.seconds)
      << "cancelled run took " << elapsed << "s vs full solve " << full.seconds << "s";
  EXPECT_LT(res.seconds, 0.5 * full.seconds);
}

TEST(Cancel, ManualCancelFromAnotherThread) {
  auto in = registry::instance().make_input("lis", 8'000, 13);
  pp::context ctx = native2().with_seed(5);
  auto full = registry::run("lis/parallel", in, ctx);
  ASSERT_GT(full.seconds, 0.05);

  cancel_token tok = cancel_token::manual();
  std::thread killer([&] {
    std::this_thread::sleep_for(20ms);
    tok.cancel();
  });
  auto res = registry::run("lis/parallel", in, ctx.with_cancel(tok));
  killer.join();
  EXPECT_EQ(res.status, run_status::cancelled);
  EXPECT_LT(res.seconds, 0.5 * full.seconds);
}

TEST(Cancel, TokenFreeRunsBitForBitUnchanged) {
  // The determinism contract: adding a token that never fires (or none)
  // changes nothing about what a run computes.
  auto& reg = registry::instance();
  for (const char* name : {"lis/parallel", "sssp/phase_parallel", "huffman/parallel"}) {
    auto in = reg.make_input(reg.info(name)->problem, 3'000, 17);
    pp::context ctx = native2().with_seed(23);
    auto plain = registry::run(name, in, ctx);
    auto tokened = registry::run(name, in, ctx.with_cancel(cancel_token::after(1h)));
    ASSERT_EQ(plain.status, run_status::ok) << name;
    ASSERT_EQ(tokened.status, run_status::ok) << name;
    EXPECT_EQ(pp::score_of(plain.value), pp::score_of(tokened.value)) << name;
    EXPECT_EQ(plain.stats.rounds, tokened.stats.rounds) << name;
    EXPECT_EQ(plain.stats.processed, tokened.stats.processed) << name;
  }
}

TEST(Cancel, BatchSkipsPreCancelledItemsRunsTheRest) {
  auto& reg = registry::instance();
  auto in = reg.make_input("lis", 1'000, 3);
  pp::context ctx = native2().with_seed(41);

  pp::batch_options opts;
  opts.seeds = {100, 101, 102};
  cancel_token dead = cancel_token::manual();
  dead.cancel();
  opts.tokens = {cancel_token{}, dead, cancel_token::after(1h)};

  std::vector<pp::problem_input> inputs = {in, in, in};
  auto br = registry::run_batch("lis/parallel", std::span<const pp::problem_input>(inputs),
                                ctx, opts);
  ASSERT_EQ(br.count(), 3u);
  EXPECT_EQ(br.items[0].status, run_status::ok);
  EXPECT_EQ(br.items[1].status, run_status::cancelled);
  EXPECT_EQ(br.items[1].seconds, 0.0) << "skipped item must not have run";
  EXPECT_EQ(br.items[2].status, run_status::ok);
  // Survivors match standalone runs under their seeds exactly.
  for (size_t i : {size_t{0}, size_t{2}}) {
    auto solo = registry::run("lis/parallel", in, ctx.with_seed(100 + i));
    EXPECT_EQ(br.scores[i], pp::score_of(solo.value)) << i;
  }
  EXPECT_EQ(br.scores[1], 0);
  // Timing aggregates cover completed items only: the skipped item's 0.0
  // seconds must not deflate min/mean/percentiles.
  EXPECT_GT(br.min_seconds, 0.0);
  EXPECT_DOUBLE_EQ(br.total_seconds, br.items[0].seconds + br.items[2].seconds);

  // Token-count mismatch is rejected like a seed-count mismatch.
  pp::batch_options bad;
  bad.tokens = {cancel_token{}};
  EXPECT_THROW(registry::run_batch("lis/parallel", std::span<const pp::problem_input>(inputs),
                                   ctx, bad),
               std::invalid_argument);
}

TEST(Cancel, CancelledEnvelopeSerializesStatus) {
  auto in = registry::instance().make_input("lis", 2'000, 3);
  cancel_token tok = cancel_token::manual();
  tok.cancel();
  auto res = registry::run("lis/parallel", in, native2().with_cancel(tok));
  std::string js = pp::to_json(res);
  EXPECT_NE(js.find("\"status\": \"cancelled\""), std::string::npos) << js;
  auto ok = registry::run("lis/parallel", in, native2());
  EXPECT_NE(pp::to_json(ok).find("\"status\": \"ok\""), std::string::npos);
}

}  // namespace
