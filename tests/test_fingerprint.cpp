// Tests for canonical input fingerprints (core/fingerprint.h + the
// per-problem canonicalizers in core/registry.cpp).
//
// The contract under test is the stability contract: identical logical
// inputs — regardless of construction path — produce identical canonical
// bytes and identical fingerprints, and distinct logical inputs (different
// content, or the same words under a different variant alternative) do
// not. The committed golden table (golden_results.inc, regenerated with
// `ppdriver golden`) then locks the concrete digest values and sequential
// scores across commits and platforms: a row changing means either the
// canonical serialization changed (bump kFingerprintVersion) or a solver's
// answer drifted.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/fingerprint.h"
#include "core/registry.h"
#include "graph/csr.h"

namespace {

using pp::fingerprint;
using pp::fingerprint_of;
using pp::problem_input;
using pp::registry;

pp::context seq_ctx(uint64_t seed) {
  return pp::context{}.with_backend(pp::backend_kind::sequential).with_seed(seed);
}

TEST(Fingerprint, HexIs32LowercaseChars) {
  auto fp = fingerprint_of(problem_input{pp::sequence_input{{1, 2, 3}, {}}});
  std::string hex = fp.hex();
  ASSERT_EQ(hex.size(), 32u);
  for (char c : hex) EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)) &&
                                 !std::isupper(static_cast<unsigned char>(c)))
      << hex;
}

TEST(Fingerprint, CopiesAndFactoryRebuildsAgree) {
  // The factory path is deterministic in (problem, n, seed): rebuilding
  // the same input must re-produce the same fingerprint, and a copy is
  // trivially the same logical input.
  for (const auto& p : registry::instance().problems()) {
    auto a = registry::instance().make_input(p.name, 300, 7);
    auto b = registry::instance().make_input(p.name, 300, 7);
    problem_input c = a;
    EXPECT_EQ(fingerprint_of(a), fingerprint_of(b)) << p.name;
    EXPECT_EQ(fingerprint_of(a), fingerprint_of(c)) << p.name;
    // ... and a different seed or size is a different logical input.
    EXPECT_NE(fingerprint_of(a), fingerprint_of(registry::instance().make_input(p.name, 300, 8)))
        << p.name;
    EXPECT_NE(fingerprint_of(a), fingerprint_of(registry::instance().make_input(p.name, 301, 7)))
        << p.name;
  }
}

TEST(Fingerprint, UnitWeightsCanonicalizeToEmptyForSequenceInput) {
  // Both LIS implementations compute `weights.empty() ? 1 : weights[i]`,
  // so an explicit all-ones vector IS the unit-weight input: same
  // fingerprint, and — the ground truth behind the normalization — the
  // same answer from the solver.
  pp::sequence_input implicit{{5, 1, 4, 2, 3, 9, 8}, {}};
  pp::sequence_input explicit_ones = implicit;
  explicit_ones.weights.assign(implicit.a.size(), 1);
  problem_input a{implicit}, b{explicit_ones};
  EXPECT_EQ(fingerprint_of(a), fingerprint_of(b));
  auto ra = registry::run("lis/parallel", a, seq_ctx(3));
  auto rb = registry::run("lis/parallel", b, seq_ctx(3));
  EXPECT_EQ(pp::score_of(ra.value), pp::score_of(rb.value));
  EXPECT_EQ(pp::summary_of(ra.value), pp::summary_of(rb.value));

  // Non-unit weights stay distinct from the unit spelling.
  pp::sequence_input weighted = implicit;
  weighted.weights.assign(implicit.a.size(), 2);
  EXPECT_NE(fingerprint_of(a), fingerprint_of(problem_input{weighted}));
}

TEST(Fingerprint, ListInputWeightsAreNotNormalized) {
  // For list ranking, empty weights select the unweighted solvers and
  // explicit weights the weighted ones — different payload types, so an
  // all-ones vector is a logically different input and must NOT collapse
  // onto the empty spelling.
  pp::list_input unweighted{{1, 2, 0}, {}};
  pp::list_input ones = unweighted;
  ones.weights.assign(unweighted.next.size(), 1);
  EXPECT_NE(fingerprint_of(problem_input{unweighted}), fingerprint_of(problem_input{ones}));
}

TEST(Fingerprint, GraphFingerprintIndependentOfEdgeListOrder) {
  // CSR construction sorts + dedups adjacency, so any permutation (or
  // duplication) of the edge list builds the same logical graph — and the
  // canonical bytes walk the CSR, not the edge list.
  std::vector<pp::edge> edges{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}};
  std::vector<pp::edge> shuffled{{1, 3}, {0, 3}, {2, 3}, {0, 1}, {1, 2}, {0, 1}};
  pp::graph_input a{pp::graph::from_edges(4, edges), {0, 1, 2, 3}, {0, 1, 2, 3, 4}};
  pp::graph_input b{pp::graph::from_edges(4, shuffled), {0, 1, 2, 3}, {0, 1, 2, 3, 4}};
  EXPECT_EQ(fingerprint_of(problem_input{a}), fingerprint_of(problem_input{b}));

  // The priorities are part of the logical input (they pick the canonical
  // sequential order the paper's algorithms must agree with).
  pp::graph_input c = a;
  c.vertex_priority = {3, 2, 1, 0};
  EXPECT_NE(fingerprint_of(problem_input{a}), fingerprint_of(problem_input{c}));
}

TEST(Fingerprint, AlternativesAreDomainSeparated) {
  // Same canonical words under different variant alternatives must digest
  // differently (the stream starts with the variant tag): an empty input
  // of every problem is still nine distinct logical inputs.
  std::set<std::string> hexes;
  std::vector<problem_input> empties{
      pp::sequence_input{}, pp::activity_input{}, pp::graph_input{},  pp::sssp_input{},
      pp::huffman_input{},  pp::knapsack_input{}, pp::list_input{},   pp::shuffle_input{},
      pp::whac_input{}};
  for (const auto& in : empties) hexes.insert(fingerprint_of(in).hex());
  EXPECT_EQ(hexes.size(), empties.size());
}

TEST(Fingerprint, RunEnvelopeCarriesInputFingerprint) {
  auto input = registry::instance().make_input("lis", 500, 11);
  auto res = registry::run("lis/sequential", input, seq_ctx(11));
  EXPECT_EQ(res.input_fp, fingerprint_of(input));
  EXPECT_NE(res.input_fp, fingerprint{});  // all-zero = "no registry input"
  // The JSON envelope exposes it (the key pplint's json-fields rule and
  // the ppserve/ppdriver consumers share).
  EXPECT_NE(pp::to_json(res).find("\"input_fingerprint\": \"" + res.input_fp.hex() + "\""),
            std::string::npos);
}

TEST(Fingerprint, BatchItemsCarryInputFingerprints) {
  std::vector<problem_input> inputs;
  for (uint64_t s = 0; s < 3; ++s)
    inputs.push_back(registry::instance().make_input("lis", 200, s));
  auto batch = registry::run_batch("lis/sequential", inputs, seq_ctx(1));
  ASSERT_EQ(batch.items.size(), 3u);
  for (size_t i = 0; i < inputs.size(); ++i)
    EXPECT_EQ(batch.items[i].input_fp, fingerprint_of(inputs[i])) << i;
}

struct golden_row {
  const char* solver;
  size_t n;
  uint64_t seed;
  const char* fp_hex;
  long long score;
};

const golden_row kGolden[] = {
#include "golden_results.inc"
};

TEST(Fingerprint, GoldenTableCoversEverySolver) {
  std::set<std::string> tabled;
  for (const auto& row : kGolden) tabled.insert(row.solver);
  for (const auto& s : registry::instance().solvers()) {
    // Relaxed-paradigm solvers promise structural validity, not
    // bit-stability — they are exempt from the golden table by contract
    // (ppdriver golden skips them too), and tests/test_relaxed.cpp is
    // their coverage.
    if (pp::paradigm_of(s) == pp::solver_paradigm::relaxed) {
      EXPECT_FALSE(tabled.count(s.name))
          << s.name << " is relaxed-paradigm and must NOT be golden-tabled";
      continue;
    }
    EXPECT_TRUE(tabled.count(s.name)) << s.name << " missing from golden_results.inc — "
                                      << "regenerate with: ppdriver golden";
  }
}

TEST(Fingerprint, GoldenFingerprintsAndScoresAreStable) {
  for (const auto& row : kGolden) {
    const pp::solver_info* si = registry::instance().info(row.solver);
    ASSERT_NE(si, nullptr) << row.solver;
    auto input = registry::instance().make_input(si->problem, row.n, row.seed);
    EXPECT_EQ(fingerprint_of(input).hex(), row.fp_hex) << row.solver;
    auto res = registry::run(row.solver, input, seq_ctx(row.seed));
    EXPECT_EQ(res.status, pp::run_status::ok) << row.solver;
    EXPECT_EQ(static_cast<long long>(pp::score_of(res.value)), row.score) << row.solver;
  }
}

}  // namespace
