// Tests for the work-stealing scheduler and the par_do/parallel_for API,
// across all three backends, plus the per-context pool cache: leases pin a
// run to a pool of exactly ctx.workers deques, workers=1 runs are strictly
// sequential, and concurrent runs never share a pool.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "parallel/api.h"
#include "test_backends.h"

namespace {

using pp::backend_kind;

class BackendTest : public ::testing::TestWithParam<backend_kind> {
 protected:
  void SetUp() override { pp::set_backend(GetParam()); }
  void TearDown() override { pp::set_backend(backend_kind::native); }
};

TEST_P(BackendTest, ParDoRunsBothSides) {
  std::atomic<int> left{0}, right{0};
  pp::par_do([&] { left = 1; }, [&] { right = 2; });
  EXPECT_EQ(left.load(), 1);
  EXPECT_EQ(right.load(), 2);
}

TEST_P(BackendTest, ParDoNested) {
  std::atomic<long> sum{0};
  pp::par_do(
      [&] {
        pp::par_do([&] { sum += 1; }, [&] { sum += 2; });
      },
      [&] {
        pp::par_do([&] { sum += 4; }, [&] { sum += 8; });
      });
  EXPECT_EQ(sum.load(), 15);
}

TEST_P(BackendTest, ParDoDeepRecursionFib) {
  // Binary-forked fib: thousands of forks, exercises stealing + helping.
  std::function<long(int)> fib = [&](int n) -> long {
    if (n < 2) return n;
    long a = 0, b = 0;
    pp::par_do([&] { a = fib(n - 1); }, [&] { b = fib(n - 2); });
    return a + b;
  };
  EXPECT_EQ(fib(20), 6765);
}

TEST_P(BackendTest, ParallelForCoversRangeExactlyOnce) {
  constexpr size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pp::parallel_for(0, n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_P(BackendTest, ParallelForEmptyAndSingle) {
  std::atomic<int> count{0};
  pp::parallel_for(5, 5, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  pp::parallel_for(7, 8, [&](size_t i) {
    EXPECT_EQ(i, 7u);
    count++;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST_P(BackendTest, ParallelForTinyGrain) {
  constexpr size_t n = 4096;
  std::vector<int> out(n, 0);
  pp::parallel_for(0, n, [&](size_t i) { out[i] = static_cast<int>(i); }, 1);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], static_cast<int>(i));
}

TEST_P(BackendTest, NestedParallelForInsideParDo) {
  constexpr size_t n = 10000;
  std::vector<int> a(n, 0), b(n, 0);
  pp::par_do([&] { pp::parallel_for(0, n, [&](size_t i) { a[i] = 1; }); },
             [&] { pp::parallel_for(0, n, [&](size_t i) { b[i] = 2; }); });
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0L), static_cast<long>(n));
  EXPECT_EQ(std::accumulate(b.begin(), b.end(), 0L), 2L * static_cast<long>(n));
}

TEST_P(BackendTest, ManySequentialParallelRegions) {
  // Regression guard against leaks/deadlocks in repeated entry.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> c{0};
    pp::parallel_for(0, 100, [&](size_t) { c++; });
    ASSERT_EQ(c.load(), 100);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::ValuesIn(pp_test::backends_under_test()),
                         [](const auto& info) {
                           return std::string(pp::backend_name(info.param));
                         });

TEST(Scheduler, NumWorkersPositive) {
  EXPECT_GE(pp::num_workers(), 1u);
}

TEST(Scheduler, LeaseHolderIsWorkerZero) {
  // Outside any run the thread belongs to no pool; under a scheduler
  // binding it owns slot 0 of the leased pool.
  EXPECT_EQ(pp::detail::this_thread_pool(), nullptr);
  {
    pp::scoped_scheduler sched(pp::context{}.with_backend(pp::backend_kind::native));
    auto* pool = pp::detail::this_thread_pool();
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->worker_id(), 0);
    EXPECT_EQ(pool->num_workers(), sched.workers());
  }
  EXPECT_EQ(pp::detail::this_thread_pool(), nullptr);
}

TEST(Scheduler, ContextWorkersSizesThePool) {
  // A run asking for W workers executes on a pool of exactly W deques —
  // context::workers is the pool size, not an advisory clamp.
  for (unsigned w : {1u, 2u, 3u}) {
    pp::context ctx = pp::context{}.with_backend(pp::backend_kind::native).with_workers(w);
    pp::scoped_scheduler sched(ctx);
    EXPECT_EQ(sched.workers(), w);
    EXPECT_EQ(pp::detail::this_thread_pool()->num_workers(), w);
    EXPECT_EQ(pp::num_workers(ctx), w);
  }
}

TEST(Scheduler, WorkersOneRunsStrictlySequentially) {
  // Regression (ISSUE 2 satellite 1): a native workers=1 run must be
  // observably single-threaded — no thread other than the caller touches
  // the probe, even though wider pools exist in the cache from other tests.
  pp::context ctx = pp::context{}.with_backend(pp::backend_kind::native).with_workers(1);
  const auto caller = std::this_thread::get_id();
  std::mutex m;
  std::set<std::thread::id> seen;
  pp::parallel_for(ctx, 0, 50'000, [&](size_t) {
    std::lock_guard<std::mutex> lk(m);
    seen.insert(std::this_thread::get_id());
  }, /*grain=*/1);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);

  // Same through par_do: both sides on the calling thread.
  std::set<std::thread::id> ids;
  pp::par_do(ctx, [&] { ids.insert(std::this_thread::get_id()); },
             [&] { ids.insert(std::this_thread::get_id()); });
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), caller);
}

TEST(Scheduler, WiderContextUsesMultipleThreads) {
  // Sanity counterpart: with >= 2 workers and tiny grain, some iteration
  // should land off the calling thread (steals are stochastic, so retry).
  pp::context ctx = pp::context{}.with_backend(pp::backend_kind::native).with_workers(2);
  bool off_thread = false;
  for (int attempt = 0; attempt < 20 && !off_thread; ++attempt) {
    const auto caller = std::this_thread::get_id();
    std::mutex m;
    std::set<std::thread::id> seen;
    pp::parallel_for(ctx, 0, 100'000, [&](size_t) {
      std::lock_guard<std::mutex> lk(m);
      seen.insert(std::this_thread::get_id());
    }, /*grain=*/16);
    EXPECT_TRUE(seen.count(caller));
    off_thread = seen.size() > 1;
  }
  EXPECT_TRUE(off_thread) << "2-worker runs never left the calling thread";
}

TEST(Scheduler, PoolCacheReusesByWidth) {
  auto& cache = pp::detail::pool_cache::instance();
  pp::context ctx = pp::context{}.with_backend(pp::backend_kind::native).with_workers(3);
  { pp::scoped_scheduler s(ctx); }
  size_t created = cache.pools_created();
  // Re-running the same width must reuse the idle pool, not build another.
  { pp::scoped_scheduler s(ctx); }
  { pp::scoped_scheduler s(ctx); }
  EXPECT_EQ(cache.pools_created(), created);
}

TEST(Scheduler, ConcurrentRunsGetDistinctPools) {
  // Two top-level runs — even of the same width — never share a pool, so a
  // run's deques are never visible to another run's thieves.
  pp::detail::work_stealing_pool* a = nullptr;
  pp::detail::work_stealing_pool* b = nullptr;
  std::atomic<int> ready{0};
  auto grab = [&](pp::detail::work_stealing_pool** out, unsigned w) {
    pp::scoped_scheduler sched(
        pp::context{}.with_backend(pp::backend_kind::native).with_workers(w));
    *out = pp::detail::this_thread_pool();
    ready.fetch_add(1);
    while (ready.load() < 2) std::this_thread::yield();  // overlap lifetimes
  };
  std::thread t1(grab, &a, 2u);
  std::thread t2(grab, &b, 2u);
  t1.join();
  t2.join();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(a->num_workers(), 2u);
  EXPECT_EQ(b->num_workers(), 2u);
}

TEST(Scheduler, NestedRunReusesPinnedPool) {
  // From fork to join a run stays on its leased pool: a nested scheduler
  // binding (a run inside a run) must not re-lease.
  pp::context outer = pp::context{}.with_backend(pp::backend_kind::native).with_workers(2);
  pp::scoped_scheduler s1(outer);
  auto* pinned = pp::detail::this_thread_pool();
  pp::context inner = outer.with_workers(4);  // asks wider; stays pinned
  pp::scoped_scheduler s2(inner);
  EXPECT_EQ(pp::detail::this_thread_pool(), pinned);
  EXPECT_EQ(s2.workers(), 2u);
  EXPECT_EQ(pp::num_workers(inner), 2u);  // honest: reports the pinned width
}

TEST(Scheduler, BatchHoldsOneLeaseLoopPaysPerRun) {
  // The point of the batched pipeline: K items through run_batch cost ONE
  // pool lease; the same K items as a loop of registry::run cost K.
  auto& reg = pp::registry::instance();
  auto& cache = pp::detail::pool_cache::instance();
  constexpr size_t kItems = 8;
  std::vector<pp::problem_input> inputs;
  for (size_t i = 0; i < kItems; ++i) inputs.push_back(reg.make_input("lis", 500, 40 + i));
  pp::context ctx = pp::context{}.with_backend(pp::backend_kind::native).with_workers(2);

  uint64_t before = cache.acquires();
  auto batch = pp::registry::run_batch("lis/parallel", inputs, ctx);
  EXPECT_EQ(cache.acquires() - before, 1u);
  EXPECT_EQ(batch.count(), kItems);

  before = cache.acquires();
  for (size_t i = 0; i < kItems; ++i)
    pp::registry::run("lis/parallel", inputs[i], ctx.with_seed(pp::derive_seed(ctx.seed, i)));
  EXPECT_EQ(cache.acquires() - before, kItems);
}

TEST(Scheduler, BatchNestsInsideEnclosingRun) {
  // run_batch from inside an already-scheduled run (a server request
  // handler that batches sub-tasks): the batch scope must reuse the pinned
  // pool — no second lease — and must not register as a racing top-level
  // scope with a conflicting config.
  auto& reg = pp::registry::instance();
  auto& cache = pp::detail::pool_cache::instance();
  std::vector<pp::problem_input> inputs;
  for (size_t i = 0; i < 3; ++i) inputs.push_back(reg.make_input("lis", 500, 60 + i));

  pp::context outer = pp::context{}.with_backend(pp::backend_kind::native).with_workers(2);
  pp::run_scope enclosing(outer);
  uint64_t before = cache.acquires();
  uint64_t conflicts_before = pp::detail::scope_conflicts();
  // The nested batch even asks for a different width; it stays pinned.
  auto batch = pp::registry::run_batch("lis/parallel", inputs, outer.with_workers(4));
  EXPECT_EQ(cache.acquires() - before, 0u);
  EXPECT_EQ(batch.workers, 2u);  // honest: the pinned width, not the request
  EXPECT_EQ(pp::detail::scope_conflicts(), conflicts_before);
  EXPECT_EQ(batch.count(), 3u);
}

TEST(Scheduler, PoolCacheEvictsIdleBeyondCap) {
  // ISSUE 4 satellite: a long-lived serving process that has seen many
  // distinct widths must not hold worker threads forever. Idle pools
  // beyond the LRU cap are destroyed (threads joined), least recently
  // used first; size() reports what is actually alive.
  auto& cache = pp::detail::pool_cache::instance();
  size_t old_cap = cache.idle_cap();
  cache.set_idle_cap(2);

  // Touch three distinct (unusual) widths sequentially; each release
  // pushes onto the LRU, so width 5 — the oldest — is evicted.
  for (unsigned w : {5u, 6u, 7u}) {
    pp::scoped_scheduler s(pp::context{}.with_backend(pp::backend_kind::native).with_workers(w));
  }
  EXPECT_LE(cache.pools_idle(), 2u);
  EXPECT_EQ(cache.size(), cache.pools_idle());  // nothing leased right now
  EXPECT_EQ(cache.in_use(), 0u);

  // The survivors (6, 7) are reused; the evicted width (5) is rebuilt.
  size_t created = cache.pools_created();
  { pp::scoped_scheduler s(pp::context{}.with_backend(pp::backend_kind::native).with_workers(7)); }
  { pp::scoped_scheduler s(pp::context{}.with_backend(pp::backend_kind::native).with_workers(6)); }
  EXPECT_EQ(cache.pools_created(), created);
  { pp::scoped_scheduler s(pp::context{}.with_backend(pp::backend_kind::native).with_workers(5)); }
  EXPECT_EQ(cache.pools_created(), created + 1);

  // Shrinking the cap evicts immediately.
  cache.set_idle_cap(0);
  EXPECT_EQ(cache.pools_idle(), 0u);
  EXPECT_EQ(cache.size(), 0u);
  cache.set_idle_cap(old_cap);
}

TEST(Scheduler, PoolCacheSizeCountsLeasedPools) {
  auto& cache = pp::detail::pool_cache::instance();
  size_t old_cap = cache.idle_cap();
  size_t idle_before = cache.pools_idle();
  {
    pp::scoped_scheduler s(pp::context{}.with_backend(pp::backend_kind::native).with_workers(2));
    EXPECT_EQ(cache.in_use(), 1u);
    EXPECT_EQ(cache.size(), cache.pools_idle() + 1);
    // A leased pool is never on the idle LRU, so it can never be evicted.
    cache.set_idle_cap(0);
    EXPECT_EQ(cache.in_use(), 1u);
    cache.set_idle_cap(old_cap);
  }
  EXPECT_EQ(cache.in_use(), 0u);
  EXPECT_GE(cache.pools_idle(), idle_before > 0 ? 1u : 0u);
}

TEST(Scheduler, UnbalancedForkJoin) {
  // Left side finishes immediately; right side is heavy. The parent must
  // wait for the stolen child correctly.
  pp::set_backend(backend_kind::native);
  std::atomic<long> sum{0};
  pp::par_do([&] { sum += 1; },
             [&] {
               for (int i = 0; i < 1000; ++i) sum += 1;
             });
  EXPECT_EQ(sum.load(), 1001);
}

}  // namespace
