// Tests for the work-stealing scheduler and the par_do/parallel_for API,
// across all three backends.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/api.h"

namespace {

using pp::backend_kind;

class BackendTest : public ::testing::TestWithParam<backend_kind> {
 protected:
  void SetUp() override { pp::set_backend(GetParam()); }
  void TearDown() override { pp::set_backend(backend_kind::native); }
};

TEST_P(BackendTest, ParDoRunsBothSides) {
  std::atomic<int> left{0}, right{0};
  pp::par_do([&] { left = 1; }, [&] { right = 2; });
  EXPECT_EQ(left.load(), 1);
  EXPECT_EQ(right.load(), 2);
}

TEST_P(BackendTest, ParDoNested) {
  std::atomic<long> sum{0};
  pp::par_do(
      [&] {
        pp::par_do([&] { sum += 1; }, [&] { sum += 2; });
      },
      [&] {
        pp::par_do([&] { sum += 4; }, [&] { sum += 8; });
      });
  EXPECT_EQ(sum.load(), 15);
}

TEST_P(BackendTest, ParDoDeepRecursionFib) {
  // Binary-forked fib: thousands of forks, exercises stealing + helping.
  std::function<long(int)> fib = [&](int n) -> long {
    if (n < 2) return n;
    long a = 0, b = 0;
    pp::par_do([&] { a = fib(n - 1); }, [&] { b = fib(n - 2); });
    return a + b;
  };
  EXPECT_EQ(fib(20), 6765);
}

TEST_P(BackendTest, ParallelForCoversRangeExactlyOnce) {
  constexpr size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pp::parallel_for(0, n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_P(BackendTest, ParallelForEmptyAndSingle) {
  std::atomic<int> count{0};
  pp::parallel_for(5, 5, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  pp::parallel_for(7, 8, [&](size_t i) {
    EXPECT_EQ(i, 7u);
    count++;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST_P(BackendTest, ParallelForTinyGrain) {
  constexpr size_t n = 4096;
  std::vector<int> out(n, 0);
  pp::parallel_for(0, n, [&](size_t i) { out[i] = static_cast<int>(i); }, 1);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], static_cast<int>(i));
}

TEST_P(BackendTest, NestedParallelForInsideParDo) {
  constexpr size_t n = 10000;
  std::vector<int> a(n, 0), b(n, 0);
  pp::par_do([&] { pp::parallel_for(0, n, [&](size_t i) { a[i] = 1; }); },
             [&] { pp::parallel_for(0, n, [&](size_t i) { b[i] = 2; }); });
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0L), static_cast<long>(n));
  EXPECT_EQ(std::accumulate(b.begin(), b.end(), 0L), 2L * static_cast<long>(n));
}

TEST_P(BackendTest, ManySequentialParallelRegions) {
  // Regression guard against leaks/deadlocks in repeated entry.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> c{0};
    pp::parallel_for(0, 100, [&](size_t) { c++; });
    ASSERT_EQ(c.load(), 100);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::Values(backend_kind::native, backend_kind::openmp,
                                           backend_kind::sequential),
                         [](const auto& info) {
                           return std::string(pp::backend_name(info.param));
                         });

TEST(Scheduler, NumWorkersPositive) {
  EXPECT_GE(pp::num_workers(), 1u);
}

TEST(Scheduler, WorkerIdOfMainIsZero) {
  EXPECT_EQ(pp::detail::work_stealing_pool::instance().worker_id(), 0);
}

TEST(Scheduler, UnbalancedForkJoin) {
  // Left side finishes immediately; right side is heavy. The parent must
  // wait for the stolen child correctly.
  pp::set_backend(backend_kind::native);
  std::atomic<long> sum{0};
  pp::par_do([&] { sum += 1; },
             [&] {
               for (int i = 0; i < 1000; ++i) sum += 1;
             });
  EXPECT_EQ(sum.load(), 1001);
}

}  // namespace
