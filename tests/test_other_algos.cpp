// Tests for the Sec. 5.3 "other algorithms": parallel Knuth shuffle,
// list ranking by contraction, and the Crauser-criterion SSSP.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include "algos/list_ranking.h"
#include "algos/random_shuffle.h"
#include "algos/sssp.h"
#include "graph/generators.h"
#include "parallel/random.h"

namespace {

// --- Knuth shuffle ----------------------------------------------------------

class ShuffleSweep : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(ShuffleSweep, ParallelEqualsSequentialShuffle) {
  auto [n, seed] = GetParam();
  auto targets = pp::knuth_targets(n, seed);
  auto seq = pp::knuth_shuffle_seq(n, targets);
  auto par = pp::knuth_shuffle_parallel(n, targets);
  EXPECT_EQ(par.perm, seq.perm);
}

TEST_P(ShuffleSweep, OutputIsAPermutation) {
  auto [n, seed] = GetParam();
  auto targets = pp::knuth_targets(n, seed);
  auto par = pp::knuth_shuffle_parallel(n, targets);
  std::vector<bool> seen(n, false);
  ASSERT_EQ(par.perm.size(), n);
  for (auto v : par.perm) {
    ASSERT_LT(v, n);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST_P(ShuffleSweep, RoundsLogarithmicWhp) {
  auto [n, seed] = GetParam();
  if (n < 16) return;
  auto targets = pp::knuth_targets(n, seed);
  auto par = pp::knuth_shuffle_parallel(n, targets);
  double logn = std::log2(static_cast<double>(n));
  // dependence forest depth is O(log n) whp [SGBFG15]
  EXPECT_LE(par.stats.rounds, static_cast<size_t>(8 * logn + 8));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShuffleSweep,
                         ::testing::Combine(::testing::Values(size_t{0}, size_t{1}, size_t{2},
                                                              size_t{100}, size_t{10000},
                                                              size_t{100000}),
                                            ::testing::Values(1ul, 2ul, 3ul)));

TEST(Shuffle, TargetsInRange) {
  auto t = pp::knuth_targets(1000, 5);
  for (size_t i = 1; i < t.size(); ++i) ASSERT_LE(t[i], i);
}

TEST(Shuffle, UniformityOverSmallPermutations) {
  // All 6 permutations of 3 elements should appear with similar frequency
  // across seeds.
  std::map<std::vector<uint32_t>, int> hist;
  constexpr int trials = 6000;
  for (int s = 0; s < trials; ++s) {
    auto t = pp::knuth_targets(3, 1000 + s);
    hist[pp::knuth_shuffle_parallel(3, t).perm]++;
  }
  ASSERT_EQ(hist.size(), 6u);
  for (auto& [perm, cnt] : hist) EXPECT_NEAR(cnt, trials / 6, trials / 6 * 0.35);
}

// --- list ranking -------------------------------------------------------------

class ListRankSweep : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(ListRankSweep, ParallelEqualsSequential) {
  auto [n, seed] = GetParam();
  auto next = pp::random_list(n, seed);
  auto seq = pp::list_ranking_seq(next);
  auto par = pp::list_ranking_parallel(next, seed + 9);
  EXPECT_EQ(par.rank, seq.rank);
}

TEST_P(ListRankSweep, ContractionRoundsLogarithmic) {
  auto [n, seed] = GetParam();
  if (n < 16) return;
  auto next = pp::random_list(n, seed);
  auto par = pp::list_ranking_parallel(next, seed);
  double logn = std::log2(static_cast<double>(n));
  EXPECT_LE(par.stats.rounds, static_cast<size_t>(6 * logn + 8));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ListRankSweep,
                         ::testing::Combine(::testing::Values(size_t{1}, size_t{2}, size_t{3},
                                                              size_t{64}, size_t{10000},
                                                              size_t{200000}),
                                            ::testing::Values(1ul, 2ul, 3ul)));

TEST(ListRankWeighted, MatchesSequentialWithNegativeWeights) {
  for (uint64_t seed : {1, 2, 3}) {
    constexpr size_t n = 30000;
    auto next = pp::random_list(n, seed);
    auto w = pp::tabulate<int64_t>(n, [&](size_t i) {
      return static_cast<int64_t>(pp::hash64(seed * n + i) % 21) - 10;  // in [-10, 10]
    });
    auto seq = pp::list_ranking_weighted_seq(next, w);
    auto par = pp::list_ranking_weighted_parallel(next, w, seed + 5);
    EXPECT_EQ(par.rank, seq.rank);
  }
}

TEST(ForestDepths, MatchesBfsOnRandomForests) {
  std::mt19937_64 gen(7);
  for (int trial = 0; trial < 10; ++trial) {
    size_t n = 1 + gen() % 3000;
    // random forest: parent of v is a smaller id (or none)
    std::vector<uint32_t> parent(n);
    for (size_t v = 0; v < n; ++v) {
      bool root = v == 0 || gen() % 10 == 0;
      parent[v] = root ? pp::kListEnd : static_cast<uint32_t>(gen() % v);
    }
    auto got = pp::forest_depths_euler(parent, trial);
    // reference depths
    std::vector<int64_t> expect(n);
    for (size_t v = 0; v < n; ++v)
      expect[v] = parent[v] == pp::kListEnd ? 1 : expect[parent[v]] + 1;
    ASSERT_EQ(got.rank, expect) << "trial " << trial << " n=" << n;
  }
}

TEST(ForestDepths, SingleChainAndStar) {
  // chain: parent[v] = v - 1
  std::vector<uint32_t> chain(100);
  for (size_t v = 0; v < 100; ++v) chain[v] = v == 0 ? pp::kListEnd : static_cast<uint32_t>(v - 1);
  auto d = pp::forest_depths_euler(chain, 1);
  for (size_t v = 0; v < 100; ++v) ASSERT_EQ(d.rank[v], static_cast<int64_t>(v + 1));
  // star: all children of node 0
  std::vector<uint32_t> star(500, 0);
  star[0] = pp::kListEnd;
  d = pp::forest_depths_euler(star, 1);
  EXPECT_EQ(d.rank[0], 1);
  for (size_t v = 1; v < 500; ++v) ASSERT_EQ(d.rank[v], 2);
}

TEST(ListRank, IdentityChain) {
  // next[i] = i+1: rank[i] == i.
  constexpr size_t n = 1000;
  std::vector<uint32_t> next(n);
  for (size_t i = 0; i < n; ++i) next[i] = i + 1 < n ? static_cast<uint32_t>(i + 1) : pp::kListEnd;
  auto par = pp::list_ranking_parallel(next, 3);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(par.rank[i], i);
}

// --- Crauser-criterion SSSP -----------------------------------------------------

class CrauserSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrauserSweep, MatchesDijkstraOnAllFamilies) {
  uint64_t seed = GetParam();
  for (auto g : {pp::random_graph(1500, 8000, seed), pp::rmat_graph(1 << 10, 1 << 12, seed),
                 pp::grid_graph(25, 30)}) {
    auto wg = pp::add_weights(g, 5, 500, seed + 1);
    auto dj = pp::sssp_dijkstra(wg, 0);
    auto out_only = pp::sssp_crauser(wg, 0, /*use_in_criterion=*/false);
    auto in_out = pp::sssp_crauser(wg, 0, /*use_in_criterion=*/true);
    ASSERT_EQ(out_only.dist, dj.dist);
    ASSERT_EQ(in_out.dist, dj.dist);
    // adding the IN criterion can only settle more per round
    EXPECT_LE(in_out.stats.rounds, out_only.stats.rounds);
  }
}

TEST_P(CrauserSweep, FewerRoundsThanDijkstraSettles) {
  uint64_t seed = GetParam();
  auto g = pp::random_graph(4000, 30000, seed);
  auto wg = pp::add_weights(g, 5, 50, seed + 1);
  auto cr = pp::sssp_crauser(wg, 0);
  // multi-vertex rounds: far fewer rounds than vertices
  EXPECT_LT(cr.stats.rounds, static_cast<size_t>(wg.num_vertices()) / 2);
  EXPECT_GT(cr.stats.max_frontier, 1u);
}

TEST_P(CrauserSweep, WorkEfficientRelaxations) {
  uint64_t seed = GetParam();
  auto g = pp::random_graph(3000, 20000, seed);
  auto wg = pp::add_weights(g, 5, 500, seed + 2);
  auto cr = pp::sssp_crauser(wg, 0);
  // every settled vertex relaxes its out-edges exactly once
  EXPECT_LE(cr.stats.relaxations, wg.num_edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrauserSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
