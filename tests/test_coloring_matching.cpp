// Tests for Jones-Plassmann coloring and greedy maximal matching: parallel
// versions must equal the sequential greedy exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algos/coloring.h"
#include "algos/matching.h"
#include "graph/generators.h"
#include "parallel/random.h"

namespace {

class GraphSweep : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {
 protected:
  pp::graph make() const {
    auto [kind, seed] = GetParam();
    switch (kind) {
      case 0: return pp::random_graph(1500, 6000, seed);
      case 1: return pp::rmat_graph(1 << 10, 1 << 12, seed);
      case 2: return pp::grid_graph(30, 40);
      case 3: return pp::random_graph(300, 20000, seed);  // dense
      default: return pp::graph::from_edges(64, {});
    }
  }
};

TEST_P(GraphSweep, ColoringTasEqualsSequentialGreedy) {
  auto g = make();
  auto [kind, seed] = GetParam();
  (void)kind;
  auto prio = pp::random_permutation(g.num_vertices(), seed + 7);
  auto seq = pp::coloring_sequential(g, prio);
  auto tas = pp::coloring_tas(g, prio);
  EXPECT_TRUE(pp::is_valid_coloring(g, seq.color));
  EXPECT_EQ(tas.color, seq.color);
  EXPECT_EQ(tas.num_colors, seq.num_colors);
  if (g.num_vertices() > 0) EXPECT_LE(seq.num_colors, g.max_degree() + 1);
}

TEST_P(GraphSweep, MatchingRoundsEqualsSequentialGreedy) {
  auto g = make();
  auto [kind, seed] = GetParam();
  (void)kind;
  auto eprio = pp::random_permutation(g.num_edges(), seed + 13);
  auto seq = pp::matching_sequential(g, eprio);
  auto par = pp::matching_rounds(g, eprio);
  EXPECT_TRUE(pp::is_maximal_matching(g, seq.partner));
  EXPECT_EQ(par.partner, seq.partner);
  EXPECT_EQ(par.matching_size, seq.matching_size);
}

TEST_P(GraphSweep, MatchingRoundCountLogarithmic) {
  auto g = make();
  auto [kind, seed] = GetParam();
  (void)kind;
  if (g.num_edges() < 2) return;
  auto eprio = pp::random_permutation(g.num_edges(), seed + 23);
  auto par = pp::matching_rounds(g, eprio);
  double logm = std::log2(static_cast<double>(g.num_edges()) + 2);
  EXPECT_LE(par.stats.rounds, static_cast<size_t>(6 * logm + 10));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GraphSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(1ul, 2ul, 3ul)));

TEST(Coloring, PathGraphTwoColorsWithMonotonePriorities) {
  constexpr uint32_t n = 100;
  std::vector<pp::edge> es;
  for (uint32_t i = 0; i + 1 < n; ++i) es.push_back({i, i + 1});
  auto g = pp::graph::from_edges(n, es);
  std::vector<uint32_t> prio(n);
  for (uint32_t i = 0; i < n; ++i) prio[i] = i;
  auto seq = pp::coloring_sequential(g, prio);
  auto tas = pp::coloring_tas(g, prio);
  EXPECT_EQ(tas.color, seq.color);
  EXPECT_EQ(seq.num_colors, 2u);  // greedy alternates along the chain
}

TEST(Coloring, CompleteGraphNeedsNColors) {
  std::vector<pp::edge> es;
  for (uint32_t i = 0; i < 20; ++i)
    for (uint32_t j = i + 1; j < 20; ++j) es.push_back({i, j});
  auto g = pp::graph::from_edges(20, es);
  auto prio = pp::random_permutation(20, 3);
  auto tas = pp::coloring_tas(g, prio);
  EXPECT_EQ(tas.num_colors, 20u);
  EXPECT_TRUE(pp::is_valid_coloring(g, tas.color));
}

TEST(Matching, PathGraphAlternates) {
  constexpr uint32_t n = 10;
  std::vector<pp::edge> es;
  for (uint32_t i = 0; i + 1 < n; ++i) es.push_back({i, i + 1});
  auto g = pp::graph::from_edges(n, es);
  // priority = edge index: greedy takes edges 0-1, 2-3, 4-5, 6-7, 8-9
  std::vector<uint32_t> eprio(g.num_edges());
  for (uint32_t e = 0; e < eprio.size(); ++e) eprio[e] = e;
  auto seq = pp::matching_sequential(g, eprio);
  auto par = pp::matching_rounds(g, eprio);
  EXPECT_EQ(seq.matching_size, 5u);
  EXPECT_EQ(par.partner, seq.partner);
}

TEST(Matching, StarGraphMatchesOneEdge) {
  std::vector<pp::edge> es;
  for (uint32_t i = 1; i <= 20; ++i) es.push_back({0, i});
  auto g = pp::graph::from_edges(21, es);
  auto eprio = pp::random_permutation(g.num_edges(), 9);
  auto par = pp::matching_rounds(g, eprio);
  EXPECT_EQ(par.matching_size, 1u);
  EXPECT_TRUE(pp::is_maximal_matching(g, par.partner));
}

}  // namespace
