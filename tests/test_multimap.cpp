// Tests for the pivot multi-map used by the Type-2 wake-up strategy.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "pabst/multimap.h"

namespace {

using MM = pp::pivot_multimap<uint32_t, uint32_t>;

TEST(Multimap, InsertAndFindBucket) {
  MM mm;
  mm.multi_insert({{3, 30}, {1, 10}, {3, 31}, {2, 20}, {3, 32}});
  EXPECT_EQ(mm.size(), 5u);
  EXPECT_EQ(mm.find_bucket(3), (std::vector<uint32_t>{30, 31, 32}));
  EXPECT_EQ(mm.find_bucket(1), (std::vector<uint32_t>{10}));
  EXPECT_EQ(mm.find_bucket(99), (std::vector<uint32_t>{}));
}

TEST(Multimap, ExtractBucketsRemoves) {
  MM mm;
  mm.multi_insert({{3, 30}, {1, 10}, {3, 31}, {2, 20}, {3, 32}, {5, 50}});
  std::vector<uint32_t> keys = {1, 3};
  auto got = mm.extract_buckets(keys);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<uint32_t>{10, 30, 31, 32}));
  EXPECT_EQ(mm.size(), 2u);
  EXPECT_EQ(mm.find_bucket(3), (std::vector<uint32_t>{}));
  EXPECT_EQ(mm.find_bucket(2), (std::vector<uint32_t>{20}));
  EXPECT_EQ(mm.find_bucket(5), (std::vector<uint32_t>{50}));
}

TEST(Multimap, ExtractAbsentKeysIsNoop) {
  MM mm;
  mm.multi_insert({{7, 1}, {9, 2}});
  std::vector<uint32_t> keys = {0, 8, 100};
  EXPECT_TRUE(mm.extract_buckets(keys).empty());
  EXPECT_EQ(mm.size(), 2u);
}

TEST(Multimap, RandomizedAgainstStdMultimap) {
  std::mt19937_64 gen(5);
  MM mm;
  std::multimap<uint32_t, uint32_t> ref;
  uint32_t next_val = 0;
  for (int round = 0; round < 30; ++round) {
    // insert a random batch
    size_t batch = 1 + gen() % 500;
    std::vector<MM::pair_t> pairs;
    for (size_t i = 0; i < batch; ++i) {
      uint32_t k = static_cast<uint32_t>(gen() % 50);
      pairs.push_back({k, next_val});
      ref.emplace(k, next_val);
      ++next_val;
    }
    mm.multi_insert(std::move(pairs));
    ASSERT_EQ(mm.size(), ref.size());
    // extract a few random buckets
    std::set<uint32_t> keyset;
    for (int j = 0; j < 5; ++j) keyset.insert(static_cast<uint32_t>(gen() % 50));
    std::vector<uint32_t> keys(keyset.begin(), keyset.end());
    auto got = mm.extract_buckets(keys);
    std::vector<uint32_t> expect;
    for (auto k : keys) {
      auto [lo, hi] = ref.equal_range(k);
      for (auto it = lo; it != hi; ++it) expect.push_back(it->second);
      ref.erase(k);
    }
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect) << "round " << round;
    ASSERT_EQ(mm.size(), ref.size());
    ASSERT_TRUE(mm.check_invariants());
  }
}

TEST(Multimap, LargeParallelBatch) {
  constexpr size_t n = 100000;
  MM mm;
  std::vector<MM::pair_t> pairs(n);
  for (size_t i = 0; i < n; ++i)
    pairs[i] = {static_cast<uint32_t>(i % 1000), static_cast<uint32_t>(i)};
  mm.multi_insert(std::move(pairs));
  EXPECT_EQ(mm.size(), n);
  // Each bucket has n/1000 values.
  std::vector<uint32_t> keys = {0, 500, 999};
  auto got = mm.extract_buckets(keys);
  EXPECT_EQ(got.size(), 3 * (n / 1000));
  EXPECT_EQ(mm.size(), n - got.size());
}

}  // namespace
