// The relaxed k-MultiQueue execution paradigm (parallel/multiqueue.h +
// src/algos/relaxed.cpp): structural validity across backends, worker
// counts, and relaxation factors; scheduler counters through the
// run_result envelope; paradigm classification; and the cancellation
// unwind. This binary also runs under the clang TSan CI job, which is what
// makes the MultiQueue's lock/atomic discipline machine-checked.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "checkers.h"
#include "core/registry.h"
#include "graph/generators.h"
#include "parallel/multiqueue.h"
#include "test_backends.h"

namespace {

using pp::registry;

pp::context native2() {
  return pp::context{}.with_backend(pp::backend_kind::native).with_workers(2);
}

// The four relaxed solvers and the reference each is validated against
// (the family's sequential solver — exactly what test_soak uses).
const std::vector<std::pair<std::string, std::string>> kRelaxed = {
    {"mis/relaxed", "mis/sequential"},
    {"coloring/relaxed", "coloring/sequential"},
    {"matching/relaxed", "matching/sequential"},
    {"sssp/relaxed", "sssp/dijkstra"},
};

TEST(Relaxed, StructurallyValidAcrossBackendsAndK) {
  auto& reg = registry::instance();
  const uint64_t seeds[] = {11, 42};
  const unsigned ks[] = {1, 4, 16, 64};
  const size_t n = 700;

  for (uint64_t seed : seeds) {
    for (const auto& [name, ref_name] : kRelaxed) {
      const auto* info = reg.info(name);
      ASSERT_NE(info, nullptr) << name;
      auto input = reg.make_input(info->problem, n, seed);
      auto ref = registry::run(
          ref_name, input,
          pp::context{}.with_backend(pp::backend_kind::sequential).with_seed(seed));
      for (auto b : pp_test::backends_under_test()) {
        for (unsigned k : ks) {
          auto res = registry::run(name, input,
                                   pp::context{}.with_backend(b).with_seed(seed).with_relax_k(k));
          ASSERT_EQ(res.status, pp::run_status::ok) << name;
          std::string why;
          EXPECT_TRUE(pp_check::structurally_valid(name, input, res.value, ref.value, &why))
              << why << " (backend=" << pp::backend_name(b) << " seed=" << seed << " k=" << k
              << ")";
        }
      }
    }
  }
}

TEST(Relaxed, SchedulerCountersReachTheEnvelope) {
  auto& reg = registry::instance();
  const size_t n = 900;
  auto input = reg.make_input("graph", n, 5);
  auto res = registry::run("mis/relaxed", input, native2().with_seed(7));
  ASSERT_EQ(res.status, pp::run_status::ok);
  // Every vertex is decided by some claim, so claims >= n; retries and
  // wasted pops are extra.
  EXPECT_GE(res.stats.popped, n);
  EXPECT_EQ(res.stats.processed, n);
  EXPECT_GE(res.stats.popped, res.stats.wasted);
  // The counters ride the JSON envelope (the ppdriver/serving surface).
  std::string json = pp::to_json(res);
  EXPECT_NE(json.find("\"popped\""), std::string::npos);
  EXPECT_NE(json.find("\"wasted\""), std::string::npos);
  EXPECT_NE(json.find("\"retries\""), std::string::npos);
}

TEST(Relaxed, RelaxKIsAConfigKnob) {
  pp::context a = native2().with_seed(3);
  EXPECT_TRUE(a == a.with_relax_k(a.relax_k));
  EXPECT_FALSE(a == a.with_relax_k(a.relax_k + 1));  // different config, not a benign twin
  EXPECT_EQ(pp::multiqueue::shard_count(1), 2u);     // k=1: the contended baseline
  EXPECT_EQ(pp::multiqueue::shard_count(4), 8u);     // 2k shards otherwise
  EXPECT_EQ(pp::multiqueue::shard_count(64), 128u);
}

TEST(Relaxed, ParadigmClassification) {
  auto& reg = registry::instance();
  auto paradigm = [&](const char* name) {
    const auto* info = reg.info(name);
    EXPECT_NE(info, nullptr) << name;
    return pp::paradigm_of(*info);
  };
  EXPECT_EQ(paradigm("mis/relaxed"), pp::solver_paradigm::relaxed);
  EXPECT_EQ(paradigm("sssp/relaxed"), pp::solver_paradigm::relaxed);
  EXPECT_EQ(paradigm("mis/rounds"), pp::solver_paradigm::phase);
  EXPECT_EQ(paradigm("mis/sequential"), pp::solver_paradigm::sequential);
  EXPECT_EQ(paradigm("sssp/dijkstra"), pp::solver_paradigm::sequential);
  EXPECT_EQ(paradigm("sssp/phase_parallel"), pp::solver_paradigm::phase);
  EXPECT_TRUE(pp::accepts_relax_knob(*reg.info("matching/relaxed")));
  EXPECT_FALSE(pp::accepts_relax_knob(*reg.info("matching/rounds")));
  // Every registered */relaxed solver is classified relaxed (and nothing
  // else is), so the golden-table exemption and the list column stay honest.
  for (const auto& s : reg.solvers()) {
    bool name_says_relaxed = s.name.size() > 8 && s.name.rfind("/relaxed") == s.name.size() - 8;
    EXPECT_EQ(pp::paradigm_of(s) == pp::solver_paradigm::relaxed, name_says_relaxed) << s.name;
  }
}

TEST(Relaxed, PreCancelledTokenUnwindsEveryRelaxedSolver) {
  auto& reg = registry::instance();
  for (const auto& [name, ref_name] : kRelaxed) {
    (void)ref_name;
    const auto* info = reg.info(name);
    ASSERT_NE(info, nullptr) << name;
    auto in = reg.make_input(info->problem, 2'000, 7);
    pp::cancel_token tok = pp::cancel_token::manual();
    tok.cancel();
    auto res = registry::run(name, in, native2().with_seed(3).with_cancel(tok));
    EXPECT_EQ(res.status, pp::run_status::cancelled) << name;
    EXPECT_TRUE(res.cancelled()) << name;
  }
}

TEST(Relaxed, MidRunCancelAbortsTheWorkerLoops) {
  // A token cancelled between claims must abort the loops cooperatively:
  // the run returns cancelled, never hangs, and never throws off a pool
  // worker. Use a deadline token that fires mid-drain.
  auto& reg = registry::instance();
  auto in = reg.make_input("sssp", 30'000, 13);
  pp::cancel_token tok = pp::cancel_token::manual();
  tok.cancel();  // pre-fire: deterministic under any machine speed
  auto res = registry::run("sssp/relaxed", in, native2().with_seed(5).with_cancel(tok));
  EXPECT_EQ(res.status, pp::run_status::cancelled);
}

TEST(Relaxed, MultiQueueDrainsToZeroInFlight) {
  // Direct scheduler test: N items, each claim re-inserts until its
  // counter hits zero — the in-flight counter must see every insert and
  // the run must drain exactly once per decrement chain.
  pp::context ctx = native2().with_seed(21).with_relax_k(4);
  pp::run_scope scope(ctx);
  constexpr uint32_t kItems = 2'000;
  pp::multiqueue q(ctx.relax_k);
  {
    pp::random_stream rs(ctx.seed);
    uint64_t draw = 0;
    for (uint32_t i = 0; i < kItems; ++i) q.push(i, i, rs, draw);
  }
  std::vector<std::atomic<uint32_t>> hits(kItems);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  auto c = pp::mq_run(ctx, q, [&](pp::mq_worker& w, uint64_t prio, uint32_t item) {
    if (hits[item].fetch_add(1, std::memory_order_relaxed) == 0 && item % 3 == 0)
      w.retry(prio, item);  // first claim of every third item goes around again
  });
  EXPECT_EQ(q.in_flight(), 0);
  uint64_t total_hits = 0;
  for (auto& h : hits) {
    EXPECT_GE(h.load(), 1u);
    total_hits += h.load();
  }
  EXPECT_EQ(c.popped, total_hits);
  const uint64_t reinserted = (kItems + 2) / 3;  // items 0, 3, 6, ...
  EXPECT_EQ(c.popped, static_cast<uint64_t>(kItems) + reinserted);
  // retries counts the re-inserts plus any empty-pop spins near the tail.
  EXPECT_GE(c.retries, reinserted);
}

TEST(Relaxed, SsspExactOnHighDiameterGrid) {
  // The input class the relaxed mode exists for: a weighted 2D mesh whose
  // phase solver pays one barrier per w*-window. Distances must still be
  // exactly Dijkstra's.
  pp::sssp_input in;
  in.g = pp::add_weights(pp::grid_graph(48, 48), 1, 8, 99);
  in.source = 0;
  pp::problem_input input = in;
  auto ref = registry::run(
      "sssp/dijkstra", input,
      pp::context{}.with_backend(pp::backend_kind::sequential).with_seed(1));
  for (auto b : pp_test::backends_under_test()) {
    auto res =
        registry::run("sssp/relaxed", input, pp::context{}.with_backend(b).with_seed(1));
    std::string why;
    EXPECT_TRUE(pp_check::structurally_valid("sssp/relaxed", input, res.value, ref.value, &why))
        << why << " (backend=" << pp::backend_name(b) << ")";
  }
}

}  // namespace
