// Tests for the Whac-A-Mole dominance DP (Appendix B).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "algos/whac.h"

namespace {

class WhacRandom : public ::testing::TestWithParam<std::tuple<size_t, int64_t, int64_t, uint64_t>> {};

TEST_P(WhacRandom, SequentialMatchesBrute) {
  auto [n, t_range, p_range, seed] = GetParam();
  auto moles = pp::random_moles(n, t_range, p_range, seed);
  auto brute = pp::whac_bruteforce(moles);
  auto seq = pp::whac_sequential(moles);
  EXPECT_EQ(seq.dp, brute.dp);
  EXPECT_EQ(seq.best, brute.best);
}

TEST_P(WhacRandom, ParallelMatchesSequential) {
  auto [n, t_range, p_range, seed] = GetParam();
  auto moles = pp::random_moles(n, t_range, p_range, seed);
  auto seq = pp::whac_sequential(moles);
  for (auto policy : {pp::pivot_policy::uniform_random, pp::pivot_policy::rightmost}) {
    auto par = pp::whac_parallel(moles, policy, seed + 3);
    EXPECT_EQ(par.dp, seq.dp);
    EXPECT_EQ(par.best, seq.best);
  }
}

TEST_P(WhacRandom, RoundsEqualBest) {
  auto [n, t_range, p_range, seed] = GetParam();
  if (n == 0) return;
  auto moles = pp::random_moles(n, t_range, p_range, seed);
  auto par = pp::whac_parallel(moles, pp::pivot_policy::rightmost, 1);
  EXPECT_EQ(par.stats.rounds, static_cast<size_t>(par.best));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WhacRandom,
    ::testing::Values(std::tuple{size_t{0}, int64_t{10}, int64_t{10}, 1ul},
                      std::tuple{size_t{1}, int64_t{10}, int64_t{10}, 2ul},
                      std::tuple{size_t{50}, int64_t{100}, int64_t{100}, 3ul},
                      std::tuple{size_t{200}, int64_t{1000}, int64_t{10}, 4ul},  // narrow board
                      std::tuple{size_t{500}, int64_t{50}, int64_t{500}, 5ul},   // tie-heavy times
                      std::tuple{size_t{800}, int64_t{4000}, int64_t{4000}, 6ul}));

TEST(Whac, HandExample) {
  // Moles: (t=0,p=0), (t=2,p=1), (t=3,p=5). 0 -> 1 reachable (|1-0|<=2).
  // 1 -> 2 not reachable (|5-1|=4 > 1); 0 -> 2 reachable (5 <= 3? no, |5-0|=5 > 3).
  // Strict-dominance check: best chain = {0,1} = 2.
  std::vector<pp::mole> moles = {{0, 0}, {2, 1}, {3, 5}};
  auto seq = pp::whac_sequential(moles);
  EXPECT_EQ(seq.best, 2);
  auto par = pp::whac_parallel(moles, pp::pivot_policy::rightmost, 1);
  EXPECT_EQ(par.best, 2);
}

TEST(Whac, StationaryHammerChain) {
  // All moles at the same position, increasing times: all hittable.
  std::vector<pp::mole> moles;
  for (int i = 0; i < 20; ++i) moles.push_back({2 * i, 7});
  auto par = pp::whac_parallel(moles, pp::pivot_policy::rightmost, 1);
  EXPECT_EQ(par.best, 20);
}

TEST(Whac, SimultaneousMolesOnlyOneHit) {
  // Same time, different positions: pairwise incompatible.
  std::vector<pp::mole> moles = {{5, 0}, {5, 10}, {5, 20}, {5, 30}};
  auto seq = pp::whac_sequential(moles);
  EXPECT_EQ(seq.best, 1);
  auto par = pp::whac_parallel(moles, pp::pivot_policy::rightmost, 1);
  EXPECT_EQ(par.best, 1);
}

TEST(Whac, ExactBoundaryIsExcluded) {
  // |p2-p1| == t2-t1 exactly: the paper's transform uses strict <, so the
  // pair is incompatible.
  std::vector<pp::mole> moles = {{0, 0}, {4, 4}};
  EXPECT_EQ(pp::whac_sequential(moles).best, 1);
  EXPECT_EQ(pp::whac_parallel(moles, pp::pivot_policy::rightmost, 1).best, 1);
  // one step inside the cone: compatible
  std::vector<pp::mole> ok = {{0, 0}, {4, 3}};
  EXPECT_EQ(pp::whac_sequential(ok).best, 2);
  EXPECT_EQ(pp::whac_parallel(ok, pp::pivot_policy::rightmost, 1).best, 2);
}

}  // namespace
