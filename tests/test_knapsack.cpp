// Tests for unlimited knapsack: parallel windows vs sequential DP.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "algos/knapsack.h"

namespace {

class KnapsackRandom
    : public ::testing::TestWithParam<std::tuple<size_t, int64_t, int64_t, uint64_t>> {};

TEST_P(KnapsackRandom, ParallelMatchesSequential) {
  auto [n, W, w_min, seed] = GetParam();
  auto items = pp::random_items(n, w_min, std::max<int64_t>(w_min * 4, w_min + 1), 1000, seed);
  auto seq = pp::knapsack_seq(W, items);
  auto par = pp::knapsack_parallel(W, items);
  EXPECT_EQ(par.dp, seq.dp);
  EXPECT_EQ(par.best, seq.best);
}

TEST_P(KnapsackRandom, RoundsEqualRelaxedRank) {
  auto [n, W, w_min, seed] = GetParam();
  auto items = pp::random_items(n, w_min, std::max<int64_t>(w_min * 4, w_min + 1), 1000, seed);
  auto par = pp::knapsack_parallel(W, items);
  int64_t wstar = items[0].weight;
  for (auto& it : items) wstar = std::min(wstar, it.weight);
  // rank(W) = W / w* windows (Theorem 4.3), +1 for the dp[0] window
  EXPECT_EQ(par.stats.rounds, static_cast<size_t>(W / wstar) + 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KnapsackRandom,
                         ::testing::Values(std::tuple{size_t{1}, int64_t{50}, int64_t{3}, 1ul},
                                           std::tuple{size_t{5}, int64_t{100}, int64_t{2}, 2ul},
                                           std::tuple{size_t{10}, int64_t{500}, int64_t{7}, 3ul},
                                           std::tuple{size_t{20}, int64_t{2000}, int64_t{25}, 4ul},
                                           std::tuple{size_t{50}, int64_t{1000}, int64_t{1}, 5ul}));

TEST(Knapsack, HandValues) {
  // items: weight 3 value 5, weight 5 value 9 — W=11: 9+5+5? no:
  // 3+3+3=9w -> 15v; 5+5=10w -> 18v; 5+3+3=11w -> 19v.
  std::vector<pp::knapsack_item> items = {{3, 5}, {5, 9}};
  auto seq = pp::knapsack_seq(11, items);
  EXPECT_EQ(seq.best, 19);
  auto par = pp::knapsack_parallel(11, items);
  EXPECT_EQ(par.best, 19);
}

TEST(Knapsack, ZeroCapacityAndNoItems) {
  std::vector<pp::knapsack_item> items = {{2, 3}};
  EXPECT_EQ(pp::knapsack_parallel(0, items).best, 0);
  std::vector<pp::knapsack_item> none;
  EXPECT_EQ(pp::knapsack_parallel(100, none).best, 0);
  EXPECT_EQ(pp::knapsack_seq(100, none).best, 0);
}

TEST(Knapsack, ItemHeavierThanCapacity) {
  std::vector<pp::knapsack_item> items = {{50, 100}, {3, 1}};
  auto par = pp::knapsack_parallel(10, items);
  EXPECT_EQ(par.best, 3);  // three of the small item
}

}  // namespace
