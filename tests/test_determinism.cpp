// Cross-backend determinism, driven through the registry: the same seed
// and the same input must produce identical results AND identical round
// counts (phase_stats.rounds) on the sequential, OpenMP, and native
// backends. This is the reproducibility contract of the library's
// stateless (seed, index)-hashed randomness: no random choice may depend
// on scheduling.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "test_backends.h"

namespace {

using pp::backend_kind;
using pp::registry;

// sequential, openmp, native — minus openmp under PP_TEST_SKIP_OPENMP
// (the CI TSan job; see test_backends.h).
const std::vector<backend_kind> kBackends = pp_test::backends_under_test();

pp::context ctx_for(backend_kind b, uint64_t seed) {
  return pp::context{}.with_backend(b).with_seed(seed);
}

TEST(Determinism, LisParallelAcrossBackends) {
  auto in = registry::instance().make_input("lis", 4'000, 17);
  auto ref = registry::run("lis/parallel", in, ctx_for(backend_kind::sequential, 17));
  const auto& ref_lis = std::get<pp::lis_result>(ref.value);
  for (auto b : kBackends) {
    auto res = registry::run("lis/parallel", in, ctx_for(b, 17));
    const auto& lis = std::get<pp::lis_result>(res.value);
    EXPECT_EQ(lis.dp, ref_lis.dp) << pp::backend_name(b);
    EXPECT_EQ(lis.length, ref_lis.length) << pp::backend_name(b);
    EXPECT_EQ(res.stats.rounds, ref.stats.rounds) << pp::backend_name(b);
  }
}

TEST(Determinism, MisAcrossBackends) {
  auto in = registry::instance().make_input("graph", 2'000, 23);
  auto ref = registry::run("mis/rounds", in, ctx_for(backend_kind::sequential, 23));
  const auto& ref_mis = std::get<pp::mis_result>(ref.value);
  for (auto b : kBackends) {
    auto res = registry::run("mis/rounds", in, ctx_for(b, 23));
    const auto& mis = std::get<pp::mis_result>(res.value);
    EXPECT_EQ(mis.in_mis, ref_mis.in_mis) << pp::backend_name(b);
    EXPECT_EQ(mis.mis_size, ref_mis.mis_size) << pp::backend_name(b);
    EXPECT_EQ(res.stats.rounds, ref.stats.rounds) << pp::backend_name(b);

    // The asynchronous TAS variant must select the identical set on every
    // backend too (its wake statistics are scheduling-dependent, the set
    // is not).
    auto tas = registry::run("mis/tas", in, ctx_for(b, 23));
    EXPECT_EQ(std::get<pp::mis_result>(tas.value).in_mis, ref_mis.in_mis)
        << "tas/" << pp::backend_name(b);
  }
}

TEST(Determinism, SsspAcrossBackends) {
  auto in = registry::instance().make_input("sssp", 2'000, 29);
  auto ref = registry::run("sssp/phase_parallel", in, ctx_for(backend_kind::sequential, 29));
  const auto& ref_sssp = std::get<pp::sssp_result>(ref.value);
  for (auto b : kBackends) {
    auto res = registry::run("sssp/phase_parallel", in, ctx_for(b, 29));
    const auto& sssp = std::get<pp::sssp_result>(res.value);
    EXPECT_EQ(sssp.dist, ref_sssp.dist) << pp::backend_name(b);
    EXPECT_EQ(res.stats.rounds, ref.stats.rounds) << pp::backend_name(b);
  }
}

TEST(Determinism, ResultsIndependentOfWorkerCount) {
  // ISSUE 2 satellite: on one backend, sweeping workers in {1, 2, hw} must
  // not change results OR round counts — width is a performance variable,
  // never a semantic one. (Per-width pools make this real on the native
  // backend: a workers=W run executes on exactly W deques.)
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  const unsigned widths[] = {1u, 2u, hw};

  struct case_t {
    const char* problem;
    const char* solver;
    size_t n;
    uint64_t seed;
  };
  const case_t cases[] = {
      {"lis", "lis/parallel", 4'000, 17},
      {"graph", "mis/rounds", 2'000, 23},
      {"sssp", "sssp/phase_parallel", 2'000, 29},
  };

  std::vector<backend_kind> parallel_backends;
  for (auto b : kBackends)
    if (b != backend_kind::sequential) parallel_backends.push_back(b);

  for (auto b : parallel_backends) {
    for (const auto& c : cases) {
      auto in = registry::instance().make_input(c.problem, c.n, c.seed);
      auto ref = registry::run(c.solver, in, ctx_for(b, c.seed).with_workers(1));
      EXPECT_EQ(ref.workers, 1u) << c.solver << "/" << pp::backend_name(b);
      for (unsigned w : widths) {
        auto res = registry::run(c.solver, in, ctx_for(b, c.seed).with_workers(w));
        EXPECT_EQ(res.workers, w) << c.solver << "/" << pp::backend_name(b);
        EXPECT_EQ(pp::score_of(res.value), pp::score_of(ref.value))
            << c.solver << "/" << pp::backend_name(b) << " workers=" << w;
        EXPECT_EQ(res.stats.rounds, ref.stats.rounds)
            << c.solver << "/" << pp::backend_name(b) << " workers=" << w;
      }
    }
  }

  // Full-payload check on the richest case: identical dp arrays, not just
  // identical scalar scores.
  auto in = registry::instance().make_input("lis", 4'000, 17);
  auto ref = registry::run("lis/parallel", in, ctx_for(backend_kind::native, 17).with_workers(1));
  for (unsigned w : widths) {
    auto res = registry::run("lis/parallel", in, ctx_for(backend_kind::native, 17).with_workers(w));
    EXPECT_EQ(std::get<pp::lis_result>(res.value).dp, std::get<pp::lis_result>(ref.value).dp)
        << "workers=" << w;
  }
}

TEST(Determinism, BatchMatchesSequentialLoopForEverySolver) {
  // ISSUE 3 acceptance: for EVERY registered solver, run_batch under a
  // parallel backend at workers in {1, 2, hw} produces score-for-score the
  // results of a plain loop of registry::run on the sequential backend
  // with the same derived per-item seeds. Batching amortizes dispatch; it
  // must never change answers.
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  const unsigned widths[] = {1u, 2u, hw};
  const uint64_t base_seed = 77;
  const size_t n = 400;
  const size_t k = 3;  // items per batch

  std::vector<backend_kind> parallel_backends;
  for (auto b : kBackends)
    if (b != backend_kind::sequential) parallel_backends.push_back(b);

  auto& reg = registry::instance();
  for (const auto& s : reg.solvers()) {
    std::vector<pp::problem_input> inputs;
    for (size_t i = 0; i < k; ++i)
      inputs.push_back(reg.make_input(s.problem, n, 1000 + i));

    // Sequential-loop reference, one run per item under the derived seed.
    std::vector<int64_t> ref_scores;
    for (size_t i = 0; i < k; ++i) {
      auto res = registry::run(
          s.name, inputs[i],
          ctx_for(backend_kind::sequential, pp::derive_seed(base_seed, i)));
      ref_scores.push_back(pp::score_of(res.value));
    }

    for (auto b : parallel_backends) {
      for (unsigned w : widths) {
        auto batch =
            registry::run_batch(s.name, inputs, ctx_for(b, base_seed).with_workers(w));
        EXPECT_EQ(batch.workers, w) << s.name << "/" << pp::backend_name(b);
        EXPECT_EQ(batch.scores, ref_scores)
            << s.name << "/" << pp::backend_name(b) << " workers=" << w;
      }
    }
  }
}

TEST(Determinism, BatchSeedDerivationIsTheDocumentedRule) {
  // Re-running item i standalone under derive_seed(base, i) reproduces the
  // batch item exactly — full payload, not just the score.
  auto& reg = registry::instance();
  std::vector<pp::problem_input> inputs;
  for (uint64_t s : {51u, 52u, 53u}) inputs.push_back(reg.make_input("lis", 2'000, s));
  auto batch =
      registry::run_batch("lis/parallel", inputs, ctx_for(backend_kind::native, 19));
  for (size_t i = 0; i < inputs.size(); ++i) {
    auto solo = registry::run("lis/parallel", inputs[i],
                              ctx_for(backend_kind::native, pp::derive_seed(19, i)));
    EXPECT_EQ(std::get<pp::lis_result>(batch.items[i].value).dp,
              std::get<pp::lis_result>(solo.value).dp)
        << i;
  }
}

TEST(Determinism, SameContextTwiceIsIdentical) {
  auto in = registry::instance().make_input("lis", 3'000, 41);
  for (auto b : kBackends) {
    auto a = registry::run("lis/parallel", in, ctx_for(b, 41));
    auto c = registry::run("lis/parallel", in, ctx_for(b, 41));
    EXPECT_EQ(std::get<pp::lis_result>(a.value).dp, std::get<pp::lis_result>(c.value).dp);
    EXPECT_EQ(a.stats.rounds, c.stats.rounds);
    EXPECT_EQ(a.stats.wakeup_attempts, c.stats.wakeup_attempts);
  }
}

TEST(Determinism, SeedChangesPivotChoicesNotAnswers) {
  auto in = registry::instance().make_input("lis", 3'000, 41);
  auto a = registry::run("lis/parallel", in,
                         ctx_for(backend_kind::native, 41)
                             .with_pivot(pp::pivot_policy::uniform_random));
  auto b = registry::run("lis/parallel", in,
                         ctx_for(backend_kind::native, 1234)
                             .with_pivot(pp::pivot_policy::uniform_random));
  // Different seeds may wake objects along different pivot chains, but the
  // DP answer is seed-independent.
  EXPECT_EQ(std::get<pp::lis_result>(a.value).dp, std::get<pp::lis_result>(b.value).dp);
}

}  // namespace
