// Tests for parallel merge sort, parallel merge stability, counting sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "parallel/sort.h"

namespace {

using pp::backend_kind;

class SortTest : public ::testing::TestWithParam<std::tuple<backend_kind, size_t>> {
 protected:
  void SetUp() override { pp::set_backend(std::get<0>(GetParam())); }
  void TearDown() override { pp::set_backend(backend_kind::native); }
  size_t n() const { return std::get<1>(GetParam()); }
};

TEST_P(SortTest, SortsRandomInput) {
  std::mt19937_64 gen(42 + n());
  std::vector<int64_t> xs(n());
  for (auto& x : xs) x = static_cast<int64_t>(gen() % 1000);
  auto expect = xs;
  std::stable_sort(expect.begin(), expect.end());
  pp::sort_inplace(std::span<int64_t>(xs));
  EXPECT_EQ(xs, expect);
}

TEST_P(SortTest, SortsAdversarialPatterns) {
  // descending
  std::vector<int64_t> xs(n());
  for (size_t i = 0; i < n(); ++i) xs[i] = static_cast<int64_t>(n() - i);
  pp::sort_inplace(std::span<int64_t>(xs));
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
  // all equal
  std::fill(xs.begin(), xs.end(), 7);
  pp::sort_inplace(std::span<int64_t>(xs));
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
  // organ pipe
  for (size_t i = 0; i < n(); ++i) xs[i] = static_cast<int64_t>(std::min(i, n() - i));
  pp::sort_inplace(std::span<int64_t>(xs));
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
}

TEST_P(SortTest, StabilityPreserved) {
  // Sort (key, original_index) pairs by key only; indices must stay ordered
  // within equal keys.
  struct Rec {
    int key;
    uint32_t idx;
  };
  std::mt19937_64 gen(7);
  std::vector<Rec> xs(n());
  for (size_t i = 0; i < n(); ++i)
    xs[i] = {static_cast<int>(gen() % 10), static_cast<uint32_t>(i)};
  pp::sort_inplace(std::span<Rec>(xs), [](const Rec& a, const Rec& b) { return a.key < b.key; });
  for (size_t i = 1; i < xs.size(); ++i) {
    ASSERT_LE(xs[i - 1].key, xs[i].key);
    if (xs[i - 1].key == xs[i].key) ASSERT_LT(xs[i - 1].idx, xs[i].idx);
  }
}

TEST_P(SortTest, SortIndicesMatchesDirectSort) {
  std::mt19937_64 gen(99);
  std::vector<int64_t> keys(n());
  for (auto& k : keys) k = static_cast<int64_t>(gen() % 100000);
  auto idx = pp::sort_indices(n(), [&](uint32_t a, uint32_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });
  ASSERT_EQ(idx.size(), n());
  for (size_t i = 1; i < idx.size(); ++i) ASSERT_LE(keys[idx[i - 1]], keys[idx[i]]);
  // idx must be a permutation
  std::vector<bool> seen(n(), false);
  for (auto i : idx) {
    ASSERT_LT(i, n());
    ASSERT_FALSE(seen[i]);
    seen[i] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortTest,
    ::testing::Combine(::testing::Values(backend_kind::native, backend_kind::openmp,
                                         backend_kind::sequential),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{10}, size_t{8192},
                                         size_t{100000})),
    [](const auto& info) {
      return std::string(pp::backend_name(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CountingSort, GroupsStable) {
  constexpr size_t n = 100000, buckets = 64;
  std::mt19937_64 gen(3);
  std::vector<uint64_t> xs(n);
  for (size_t i = 0; i < n; ++i) xs[i] = (gen() % buckets) * n + i;  // key*n+i: unique, ordered
  std::vector<uint64_t> out(n);
  auto offs = pp::counting_sort_by_key(std::span<const uint64_t>(xs), std::span<uint64_t>(out),
                                       buckets, [&](uint64_t x) { return x / n; });
  ASSERT_EQ(offs.size(), buckets + 1);
  EXPECT_EQ(offs.front(), 0u);
  EXPECT_EQ(offs.back(), n);
  for (size_t k = 0; k < buckets; ++k) {
    for (size_t i = offs[k]; i < offs[k + 1]; ++i) {
      ASSERT_EQ(out[i] / n, k);
      if (i > offs[k]) ASSERT_LT(out[i - 1], out[i]);  // stability → ascending i
    }
  }
}

TEST(CountingSort, SingleBucketAndEmpty) {
  std::vector<int> xs = {5, 3, 1};
  std::vector<int> out(3);
  auto offs = pp::counting_sort_by_key(std::span<const int>(xs), std::span<int>(out), 1,
                                       [](int) { return 0; });
  EXPECT_EQ(out, xs);  // stable, single bucket = identity
  EXPECT_EQ(offs, (std::vector<size_t>{0, 3}));

  std::vector<int> empty, eout;
  auto offs2 = pp::counting_sort_by_key(std::span<const int>(empty), std::span<int>(eout), 4,
                                        [](int) { return 0; });
  EXPECT_EQ(offs2.back(), 0u);
}

}  // namespace
