#include "serve/session.h"

#include <algorithm>
#include <utility>

#include "core/json.h"
#include "parallel/random.h"

namespace pp::serve {

// ---- Persistent treap over the directed edge set ----------------------------
//
// Key = (u << 32) | v, value = weight, heap priority = hash64(key): a fixed
// key set always shapes the same tree, so version fingerprints and
// materialization order are deterministic. All update paths copy the
// O(log m) spine and share every other node with the parent version —
// that sharing is what lets a writer build version v+1 while solves hold
// version v.
namespace detail {
struct pnode {
  std::shared_ptr<const pnode> l, r;
  uint64_t key = 0;
  uint32_t val = 0;
  uint64_t prio = 0;
};
}  // namespace detail

namespace {

using detail::pnode;
using pptr = std::shared_ptr<const pnode>;

uint64_t edge_key(vertex_t u, vertex_t v) {
  return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
}

pptr make_node(uint64_t key, uint32_t val, pptr l, pptr r) {
  auto n = std::make_shared<pnode>();
  n->key = key;
  n->val = val;
  n->prio = hash64(key);
  n->l = std::move(l);
  n->r = std::move(r);
  return n;
}

// Path-copy of `t` with new children (key/val/prio preserved).
pptr clone_with(const pptr& t, pptr l, pptr r) {
  auto n = std::make_shared<pnode>(*t);
  n->l = std::move(l);
  n->r = std::move(r);
  return n;
}

// l gets keys < key, m the key's node (or null), r keys > key.
void split3(const pptr& t, uint64_t key, pptr& l, pptr& m, pptr& r) {
  if (!t) {
    l = m = r = nullptr;
    return;
  }
  if (key < t->key) {
    pptr rl;
    split3(t->l, key, l, m, rl);
    r = clone_with(t, std::move(rl), t->r);
  } else if (key > t->key) {
    pptr lr;
    split3(t->r, key, lr, m, r);
    l = clone_with(t, t->l, std::move(lr));
  } else {
    l = t->l;
    m = t;
    r = t->r;
  }
}

// Every key in a precedes every key in b.
pptr merge(const pptr& a, const pptr& b) {
  if (!a) return b;
  if (!b) return a;
  if (a->prio >= b->prio) return clone_with(a, a->l, merge(a->r, b));
  return clone_with(b, merge(a, b->l), b->r);
}

const pnode* find(const pptr& t, uint64_t key) {
  const pnode* cur = t.get();
  while (cur) {
    if (key < cur->key) cur = cur->l.get();
    else if (key > cur->key) cur = cur->r.get();
    else return cur;
  }
  return nullptr;
}

pptr insert_edge(const pptr& t, uint64_t key, uint32_t val) {
  pptr l, m, r;
  split3(t, key, l, m, r);
  return merge(merge(std::move(l), make_node(key, val, nullptr, nullptr)), std::move(r));
}

pptr erase_edge(const pptr& t, uint64_t key) {
  pptr l, m, r;
  split3(t, key, l, m, r);
  return merge(std::move(l), std::move(r));
}

// O(m) build from strictly increasing keys: classic right-spine cartesian
// tree (nodes are mutated only during construction, before publication).
pptr build_sorted(const std::vector<wgraph::wedge>& edges) {
  std::vector<std::shared_ptr<pnode>> spine;
  for (const auto& e : edges) {
    auto n = std::make_shared<pnode>();
    n->key = edge_key(e.u, e.v);
    n->val = e.w;
    n->prio = hash64(n->key);
    std::shared_ptr<pnode> last;
    while (!spine.empty() && spine.back()->prio < n->prio) {
      last = spine.back();
      spine.pop_back();
    }
    n->l = last;
    if (!spine.empty()) spine.back()->r = n;
    spine.push_back(std::move(n));
  }
  return spine.empty() ? nullptr : spine.front();
}

// ---- Incremental fingerprint pieces -----------------------------------------
//
// A version's fp is header ^ XOR(elem hashes). Each piece is a full
// length-strengthened digest of a tagged stream, so a delta updates the fp
// by XORing a handful of digests — the parent-fp ⊕ delta-fp law the engine
// cache relies on — while collisions stay as unlikely as for the flat
// canonical stream.

fingerprint fp_xor(fingerprint a, fingerprint b) { return {a.hi ^ b.hi, a.lo ^ b.lo}; }

fingerprint hash_edge(uint64_t key, uint32_t w) {
  fingerprint_stream s;
  s.tag(0xed6e);  // session graph element
  s.u64(key);
  s.u32(w);
  return s.digest();
}

fingerprint hash_elem(size_t i, int64_t v) {
  fingerprint_stream s;
  s.tag(0x5e9e);  // session sequence element
  s.size(i);
  s.i64(v);
  return s.digest();
}

fingerprint graph_header(vertex_t n, vertex_t source, uint32_t delta) {
  fingerprint_stream s;
  s.tag(0x6a5e);  // session graph header
  s.u32(n);
  s.u32(source);
  s.u32(delta);
  return s.digest();
}

fingerprint seq_header(size_t n) {
  fingerprint_stream s;
  s.tag(0x5e0e);  // session sequence header
  s.size(n);
  return s.digest();
}

// Sorted-by-(u,v) directed edges out of a CSR. from_edges does not dedup,
// so duplicate (u, v) pairs resolve min-weight-wins here — deterministic
// under any input edge order, and distance-preserving for SSSP (relaxation
// only ever uses the cheapest parallel edge).
std::vector<wgraph::wedge> extract_sorted_edges(const wgraph& g) {
  std::vector<wgraph::wedge> out;
  out.reserve(g.num_edges());
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = g.out_neighbors(u);
    auto wts = g.out_weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (!out.empty() && out.back().u == u && out.back().v == nbrs[i]) {
        out.back().w = std::min(out.back().w, wts[i]);
      } else {
        out.push_back({u, nbrs[i], wts[i]});
      }
    }
  }
  return out;
}

fingerprint edges_acc(const std::vector<wgraph::wedge>& edges) {
  fingerprint acc{};
  for (const auto& e : edges) acc = fp_xor(acc, hash_edge(edge_key(e.u, e.v), e.w));
  return acc;
}

}  // namespace

std::string to_json(const session_desc& d) {
  json::writer w;
  w.begin_object();
  w.member("name", d.name);
  w.member("problem", d.problem);
  w.member("version", d.version);
  w.member("fingerprint", d.fp.hex());
  w.member("elems", static_cast<uint64_t>(d.elems));
  w.member("hints", d.hints);
  w.end_object();
  return w.str();
}

// ---- session_table ----------------------------------------------------------

session_table::session_table(size_t max_sessions) : max_sessions_(max_sessions) {}

session_table::~session_table() = default;

session_desc session_table::describe_entry(const entry& e) {
  session_desc d;
  d.name = e.name;
  d.problem = e.problem;
  sync::lock_guard<sync::mutex> lk(e.head_m);
  d.version = e.head->version;
  d.fp = e.head->fp;
  d.elems = e.head->elems;
  d.hints = e.labels != nullptr;
  return d;
}

std::shared_ptr<session_table::entry> session_table::find_and_touch(const std::string& name) {
  sync::lock_guard<sync::mutex> lk(m_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) throw session_error("unknown session: " + name);
  it->second->last_touch = ++touch_seq_;
  return it->second;
}

std::shared_ptr<session_table::entry> session_table::find_const(const std::string& name) const {
  sync::lock_guard<sync::mutex> lk(m_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) throw session_error("unknown session: " + name);
  return it->second;
}

session_desc session_table::create(const std::string& name, problem_input base) {
  auto e = std::make_shared<entry>();
  e->name = name;
  auto v = std::make_shared<version_state>();
  v->version = 0;

  if (auto* s = std::get_if<sssp_input>(&base)) {
    e->problem = "sssp";
    std::vector<wgraph::wedge> edges = extract_sorted_edges(s->g);
    v->is_graph = true;
    v->n = s->g.num_vertices();
    v->source = s->source;
    v->delta_param = s->delta;
    if (v->source >= v->n && v->n > 0) throw session_error("source out of range");
    v->elems = edges.size();
    v->elem_acc = edges_acc(edges);
    v->fp = fp_xor(graph_header(v->n, v->source, v->delta_param), v->elem_acc);
    v->edges = build_sorted(edges);
    sssp_input in;
    in.g = wgraph::from_sorted_edges(v->n, edges);
    in.source = v->source;
    in.delta = v->delta_param;
    v->input = std::make_shared<const problem_input>(std::move(in));
  } else if (auto* q = std::get_if<sequence_input>(&base)) {
    e->problem = "lis";
    if (!q->weights.empty())
      throw session_error("sequence sessions support unit weights only");
    v->is_graph = false;
    v->elems = q->a.size();
    fingerprint acc{};
    for (size_t i = 0; i < q->a.size(); ++i) acc = fp_xor(acc, hash_elem(i, q->a[i]));
    v->elem_acc = acc;
    v->fp = fp_xor(seq_header(v->elems), acc);
    v->input = std::make_shared<const problem_input>(std::move(base));
  } else {
    throw session_error("unsupported session kind (want sssp_input or sequence_input)");
  }

  {
    sync::lock_guard<sync::mutex> hlk(e->head_m);
    e->head = std::move(v);
  }

  sync::lock_guard<sync::mutex> lk(m_);
  if (sessions_.count(name)) throw session_error("session exists: " + name);
  e->last_touch = ++touch_seq_;
  sessions_.emplace(name, e);
  while (max_sessions_ > 0 && sessions_.size() > max_sessions_) {
    // Evict the least-recently-used instance. In-flight solves keep their
    // pinned snapshots alive; only the table's reference goes away.
    auto victim = sessions_.end();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it)
      if (victim == sessions_.end() || it->second->last_touch < victim->second->last_touch)
        victim = it;
    sessions_.erase(victim);
    ++evictions_;
  }
  return describe_entry(*e);
}

session_desc session_table::apply(const std::string& name, const session_delta& d) {
  auto e = find_and_touch(name);

  // Single writer per session: the whole version build happens under
  // writer_m without touching head_m, so readers pinning the current head
  // are never behind this work.
  sync::lock_guard<sync::mutex> wlk(e->writer_m);

  std::shared_ptr<const version_state> prev;
  {
    sync::lock_guard<sync::mutex> hlk(e->head_m);
    prev = e->head;
  }

  auto v = std::make_shared<version_state>();
  v->version = prev->version + 1;
  v->is_graph = prev->is_graph;
  bool invalidate = false;                       // labels stop being upper bounds
  std::vector<wgraph::wedge> fresh_inserts;      // seeds for sssp/incremental

  if (prev->is_graph) {
    if (!d.append.empty() || !d.update.empty())
      throw session_error("sequence delta on a graph session");
    v->n = prev->n;
    v->delta_param = prev->delta_param;
    v->source = prev->source;
    if (d.source) {
      if (*d.source >= v->n) throw session_error("source out of range");
      if (*d.source != v->source) invalidate = true;
      v->source = *d.source;
    }

    // Resolve the delta to one final state per touched key (in-delta order:
    // adds first, then removes; later ops on one key win).
    std::map<uint64_t, std::optional<uint32_t>> ops;
    for (const auto& ae : d.add_edges) {
      if (ae.u >= v->n || ae.v >= v->n) throw session_error("edge endpoint out of range");
      if (ae.w == 0) throw session_error("edge weights must be positive");
      ops[edge_key(ae.u, ae.v)] = ae.w;
    }
    for (const auto& re : d.remove_edges) {
      if (re.u >= v->n || re.v >= v->n) throw session_error("edge endpoint out of range");
      ops[edge_key(re.u, re.v)] = std::nullopt;
    }

    // Treap + fingerprint updates: O(k log m) path copies, shared spine.
    pptr t = prev->edges;
    fingerprint acc = prev->elem_acc;
    size_t count = prev->elems;
    for (auto& [key, nw] : ops) {
      const pnode* old = find(t, key);
      if (old) {
        if (nw && *nw == old->val) continue;  // no-op add
        acc = fp_xor(acc, hash_edge(key, old->val));
        if (nw) {
          acc = fp_xor(acc, hash_edge(key, *nw));
          t = insert_edge(t, key, *nw);
          if (*nw > old->val) {
            invalidate = true;  // weight increase: old labels may undershoot
          } else {
            fresh_inserts.push_back({static_cast<vertex_t>(key >> 32),
                                     static_cast<vertex_t>(key), *nw});
          }
        } else {
          t = erase_edge(t, key);
          --count;
          invalidate = true;  // removal: old labels may use the dead edge
        }
      } else {
        if (!nw) continue;  // no-op remove
        acc = fp_xor(acc, hash_edge(key, *nw));
        t = insert_edge(t, key, *nw);
        ++count;
        fresh_inserts.push_back(
            {static_cast<vertex_t>(key >> 32), static_cast<vertex_t>(key), *nw});
      }
    }

    // Materialize: ONE merge pass, parent CSR x resolved ops, emitted
    // straight into the child's CSR arrays. The parent's per-vertex runs
    // are sorted and deduplicated by construction, so interleaving the
    // key-ordered ops preserves the invariant — no intermediate edge
    // list, no scatter pass, no re-sort. Paid once per delta.
    const wgraph& pg = std::get<sssp_input>(*prev->input).g;
    std::vector<size_t> offsets(static_cast<size_t>(v->n) + 1, 0);
    std::vector<vertex_t> adj;
    std::vector<uint32_t> wts;
    adj.reserve(count);
    wts.reserve(count);
    auto oit = ops.begin();
    for (vertex_t u = 0; u < v->n; ++u) {
      offsets[u] = adj.size();
      auto nbrs = pg.out_neighbors(u);
      auto ws = pg.out_weights(u);
      const uint64_t u_last = edge_key(u, ~vertex_t{0});  // largest key at u
      size_t i = 0;
      while (true) {
        uint64_t pk = i < nbrs.size() ? edge_key(u, nbrs[i]) : ~uint64_t{0};
        if (oit != ops.end() && oit->first <= u_last && oit->first <= pk) {
          if (oit->second) {  // insert or reweight; removals emit nothing
            adj.push_back(static_cast<vertex_t>(oit->first));
            wts.push_back(*oit->second);
          }
          if (oit->first == pk) ++i;  // the op replaced this parent edge
          ++oit;
        } else if (i < nbrs.size()) {
          adj.push_back(nbrs[i]);
          wts.push_back(ws[i]);
          ++i;
        } else {
          break;
        }
      }
    }
    offsets[v->n] = adj.size();

    v->elems = adj.size();
    v->elem_acc = acc;
    v->fp = fp_xor(graph_header(v->n, v->source, v->delta_param), acc);
    v->edges = std::move(t);
    sssp_input in;
    in.g = wgraph::from_csr(v->n, std::move(offsets), std::move(adj), std::move(wts));
    in.source = v->source;
    in.delta = v->delta_param;
    v->input = std::make_shared<const problem_input>(std::move(in));
  } else {
    if (!d.add_edges.empty() || !d.remove_edges.empty() || d.source)
      throw session_error("graph delta on a sequence session");
    const auto& prev_seq = std::get<sequence_input>(*prev->input);
    sequence_input next;
    next.a = prev_seq.a;  // copy-on-write per version
    fingerprint acc = prev->elem_acc;
    for (const auto& up : d.update) {
      if (up.index >= next.a.size()) throw session_error("update index out of range");
      if (next.a[up.index] == up.value) continue;
      acc = fp_xor(acc, hash_elem(up.index, next.a[up.index]));
      acc = fp_xor(acc, hash_elem(up.index, up.value));
      next.a[up.index] = up.value;
    }
    for (int64_t x : d.append) {
      acc = fp_xor(acc, hash_elem(next.a.size(), x));
      next.a.push_back(x);
    }
    v->elems = next.a.size();
    v->elem_acc = acc;
    v->fp = fp_xor(seq_header(v->elems), acc);
    v->input = std::make_shared<const problem_input>(problem_input(std::move(next)));
  }

  // Install v+1 and maintain the incremental-label state. Short section:
  // readers copying the old head concurrently are unaffected.
  {
    sync::lock_guard<sync::mutex> hlk(e->head_m);
    e->head = std::move(v);
    if (invalidate) {
      e->labels = nullptr;
      e->inserted_since = nullptr;
    } else if (e->labels && !fresh_inserts.empty()) {
      auto grown = e->inserted_since
                       ? std::make_shared<std::vector<wgraph::wedge>>(*e->inserted_since)
                       : std::make_shared<std::vector<wgraph::wedge>>();
      grown->insert(grown->end(), fresh_inserts.begin(), fresh_inserts.end());
      e->inserted_since = std::move(grown);
    }
  }
  return describe_entry(*e);
}

snapshot_input session_table::snapshot(const std::string& name) {
  auto e = find_and_touch(name);
  snapshot_input s;
  sync::lock_guard<sync::mutex> lk(e->head_m);
  s.base = e->head->input;
  s.version = e->head->version;
  s.fp = e->head->fp;
  if (e->head->is_graph && e->labels) {
    s.prior_dist = e->labels;
    s.inserted_edges = e->inserted_since;  // null when labels are current
  }
  return s;
}

session_desc session_table::describe(const std::string& name) const {
  return describe_entry(*find_const(name));
}

bool session_table::drop(const std::string& name) {
  sync::lock_guard<sync::mutex> lk(m_);
  return sessions_.erase(name) > 0;
}

void session_table::note_solve(const std::string& name, uint64_t version,
                               const std::vector<int64_t>& dist) {
  std::shared_ptr<entry> e;
  try {
    e = find_const(name);
  } catch (const session_error&) {
    return;  // dropped/evicted while the solve ran — nothing to improve
  }
  sync::lock_guard<sync::mutex> lk(e->head_m);
  if (!e->head->is_graph) return;
  if (dist.size() != e->head->n) return;
  if (e->labels && version <= e->labels_version) return;  // stale solve
  if (version == e->head->version) {
    // Labels are exact for the head: restart the insertion accumulator.
    e->labels = std::make_shared<const std::vector<int64_t>>(dist);
    e->labels_version = version;
    e->inserted_since = nullptr;
  } else if (e->labels && e->labels_version <= version) {
    // Labels for an older pinned version. Accept only when the existing
    // accumulator already covers labels_version -> head: it is then a
    // superset of version -> head, and superset seeds are harmless
    // (re-relaxing an edge already in g is a no-op). No invalidating delta
    // intervened, else labels would be null or newer.
    e->labels = std::make_shared<const std::vector<int64_t>>(dist);
    e->labels_version = version;
  }
}

size_t session_table::size() const {
  sync::lock_guard<sync::mutex> lk(m_);
  return sessions_.size();
}

uint64_t session_table::evictions() const {
  sync::lock_guard<sync::mutex> lk(m_);
  return evictions_;
}

std::vector<session_desc> session_table::list() const {
  std::vector<std::shared_ptr<entry>> es;
  {
    sync::lock_guard<sync::mutex> lk(m_);
    es.reserve(sessions_.size());
    for (const auto& [name, e] : sessions_) es.push_back(e);
  }
  std::vector<session_desc> out;
  out.reserve(es.size());
  for (const auto& e : es) out.push_back(describe_entry(*e));
  return out;
}

}  // namespace pp::serve
