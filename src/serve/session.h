// pp::serve sessions — a versioned instance store for stateful serving.
//
// Every request through the engine used to carry its whole problem_input by
// value and re-solve from scratch. The workloads the paper's solvers model
// mutate ONE instance and re-query: edges arrive in a road graph, points
// append to a price series. A session gives that shape a first-class home:
//
//   pp::serve::session_table tab(/*max_sessions=*/64);
//   tab.create("road", registry::instance().make_input("sssp", n, seed));
//   tab.apply("road", delta);               // writer installs version v+1
//   snapshot_input s = tab.snapshot("road");  // immutable view of version v+1
//   eng.submit({.solver="sssp/incremental", .input=s, .session="road"});
//
// Versioning model (the PAM shape, cf. src/pabst/augmented_map.h's header
// note — that tree rebuilds in place, so the session store keeps its own
// persistent structure):
//
//  * Every version is an immutable `version_state` held by shared_ptr —
//    the reader refcount. snapshot() pins the current head; a solve in
//    flight keeps reading version v while the writer installs v+1, and the
//    last reader dropping its pin frees the version.
//  * The edge set lives in a path-copying persistent treap (deterministic
//    hash priorities): applying a delta copies O(log m) nodes and shares
//    the rest with the parent version, so membership/dedup is O(log m) per
//    edge op and versions share structure. The solver-facing CSR is
//    materialized per version by ONE linear merge pass: the parent's CSR
//    (already sorted by (u, v), deduplicated) interleaved with the
//    resolved delta, emitted straight into the child's offsets/adj/wts
//    arrays (wgraph::from_csr) — no intermediate edge list, no re-sort,
//    paid once per delta, never per solve.
//  * One writer per session (`writer_m`): deltas serialize against each
//    other, but hold only the session's writer lock while they build the
//    new version. Readers take `head_m` just long enough to copy shared
//    pointers, so concurrent solves on version v never block the writer
//    installing v+1 (asserted under TSan by tests/test_session.cpp).
//
// Fingerprints are maintained incrementally: a version's fp is the XOR of
// a header hash (kind, n, source, delta) with one content hash per element
// (edge or sequence position). Applying a delta XORs out the old element
// hashes and XORs in the new — per-version fp = parent fp ⊕ delta fp — so
// the engine's result cache and in-flight dedup address each version in
// O(delta) instead of rehashing the instance (registry.cpp canonicalizes a
// snapshot to exactly these two words). The fp is a pure function of
// content: two sessions (or two delta histories) reaching the same
// instance share cache entries.
//
// Supported instance kinds: "sssp" (add/remove/reweight directed edges,
// move the source) and "lis" (append/update sequence elements). The store
// also tracks incremental-solve hints for sssp: after note_solve() feeds a
// version's exact distances back, later snapshots carry them plus every
// edge inserted since, and sssp/incremental re-settles only the affected
// subgraph. Removals, weight increases, and source moves invalidate the
// labels (they stop being upper bounds); insertions and decreases keep
// them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/annotations.h"
#include "core/fingerprint.h"
#include "core/registry.h"
#include "graph/csr.h"

namespace pp::serve {

// Session verbs fail by throwing this (unknown session, duplicate create,
// malformed delta); ppserve turns it into an error envelope per line.
struct session_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// One batch of mutations, applied atomically as one new version. Graph
// fields drive "sssp" sessions, sequence fields drive "lis" sessions;
// mixing kinds is a session_error.
struct session_delta {
  // Insert (u,v,w), or change the weight if the edge exists. Inserting an
  // edge that already holds the same weight is a no-op.
  std::vector<wgraph::wedge> add_edges;
  // Remove (u,v); removing an absent edge is a no-op.
  std::vector<edge> remove_edges;
  // Move the SSSP source vertex.
  std::optional<vertex_t> source;
  // Append values to the sequence (unit weights).
  std::vector<int64_t> append;
  struct elem_update {
    size_t index;
    int64_t value;
  };
  // Overwrite existing positions; an out-of-range index is a session_error.
  std::vector<elem_update> update;

  bool empty() const {
    return add_edges.empty() && remove_edges.empty() && !source && append.empty() &&
           update.empty();
  }
};

// What a session verb reports back (the wire-level response payload).
struct session_desc {
  std::string name;
  std::string problem;  // "sssp" or "lis"
  uint64_t version = 0;
  fingerprint fp{};    // this version's content address
  size_t elems = 0;    // directed edges / sequence length
  bool hints = false;  // incremental labels available for the NEXT solve
};

// Machine-readable descriptor (core/json.h writer): the "session" member
// every ppserve session verb's response line carries.
std::string to_json(const session_desc& d);

namespace detail {
struct pnode;  // persistent treap node (session.cpp)
}

class session_table {
 public:
  // max_sessions = 0 means unbounded; otherwise creating session N+1
  // evicts the least-recently-used instance (in-flight solves keep their
  // pinned snapshots alive; only the table's reference is dropped).
  explicit session_table(size_t max_sessions);
  ~session_table();

  session_table(const session_table&) = delete;
  session_table& operator=(const session_table&) = delete;

  // Create a named instance at version 0 from an explicit base input
  // (sssp_input or unit-weight sequence_input). Throws session_error on a
  // duplicate name or an unsupported kind.
  session_desc create(const std::string& name, problem_input base);

  // Apply one delta, installing version v+1. Concurrent apply() calls on
  // one session serialize; readers of version v are never blocked.
  session_desc apply(const std::string& name, const session_delta& d);

  // Pin the current head as an immutable snapshot_input (O(1): shared
  // pointers only). Carries incremental hints when a prior solve's labels
  // are still valid.
  snapshot_input snapshot(const std::string& name);

  // Current metadata without pinning.
  session_desc describe(const std::string& name) const;

  // Remove the instance; false if the name is unknown. Pinned snapshots
  // survive until their solves finish.
  bool drop(const std::string& name);

  // Feed a solve's exact distances back as incremental labels for
  // `version` (sssp sessions only; ignored when stale — an older solve
  // must never clobber newer labels).
  void note_solve(const std::string& name, uint64_t version,
                  const std::vector<int64_t>& dist);

  size_t size() const;
  uint64_t evictions() const;
  std::vector<session_desc> list() const;

 private:
  // One immutable version. Built by exactly one writer, then only read.
  struct version_state {
    uint64_t version = 0;
    fingerprint elem_acc{};  // XOR of per-element content hashes
    fingerprint fp{};        // header hash ⊕ elem_acc (the content address)
    std::shared_ptr<const problem_input> input;  // materialized base
    // Graph kind only: persistent edge map (path-copied across versions).
    // The next delta's merge reads the parent edges straight out of
    // input's CSR (sorted, deduplicated by construction).
    std::shared_ptr<const detail::pnode> edges;
    size_t elems = 0;
    vertex_t n = 0;
    vertex_t source = 0;
    uint32_t delta_param = 0;
    bool is_graph = false;
  };

  struct entry {
    std::string name;
    std::string problem;

    // Serializes writers (apply) on this session. Never taken by readers.
    sync::mutex writer_m;

    // Guards the head pointer and the incremental-label state; every
    // critical section under it is a handful of shared_ptr copies, so
    // readers cannot stall a writer (and vice versa) for longer than that.
    mutable sync::mutex head_m;
    std::shared_ptr<const version_state> head PP_GUARDED_BY(head_m);
    // Exact distances from a completed solve, valid for labels_version.
    std::shared_ptr<const std::vector<int64_t>> labels PP_GUARDED_BY(head_m);
    uint64_t labels_version PP_GUARDED_BY(head_m) = 0;
    // Every edge inserted (or decreased) since labels_version — the
    // relaxation seeds sssp/incremental starts from. A superset is safe
    // (seeding with any edge already in g is a no-op relaxation), which is
    // what keeps the mid-flight-delta race benign; see note_solve().
    std::shared_ptr<const std::vector<wgraph::wedge>> inserted_since
        PP_GUARDED_BY(head_m);

    uint64_t last_touch = 0;  // guarded by session_table::m_
  };

  std::shared_ptr<entry> find_and_touch(const std::string& name);
  std::shared_ptr<entry> find_const(const std::string& name) const;
  static session_desc describe_entry(const entry& e);

  const size_t max_sessions_;

  mutable sync::mutex m_;
  std::map<std::string, std::shared_ptr<entry>> sessions_ PP_GUARDED_BY(m_);
  uint64_t touch_seq_ PP_GUARDED_BY(m_) = 0;
  uint64_t evictions_ PP_GUARDED_BY(m_) = 0;
};

}  // namespace pp::serve
