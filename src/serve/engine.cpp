#include "serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <span>
#include <utility>

#include "core/json.h"
#include "core/metrics.h"
#include "core/trace.h"

namespace pp::serve {

namespace detail {
// Invoke a user response callback with exception isolation: a throwing
// callback must neither escape an executor std::thread (std::terminate)
// nor propagate out of submit() on the admission-rejection path, and must
// not trip the batch error path into re-delivering batchmates' promises.
inline void guarded_invoke(const std::function<void(response)>& cb, response&& r) {
  try {
    cb(std::move(r));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pp::serve: response callback threw: %s\n", e.what());
  } catch (...) {
    std::fprintf(stderr, "pp::serve: response callback threw\n");
  }
}
}  // namespace detail

namespace {

// Resolve the 0 = "partition the machine evenly" default.
unsigned resolve_workers_per_run(unsigned requested, unsigned max_inflight) {
  if (requested >= 1) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  unsigned share = hw / (max_inflight == 0 ? 1 : max_inflight);
  return share == 0 ? 1 : share;
}

std::future<response> ready_error(std::string err, std::atomic<uint64_t>& failed,
                                  const std::function<void(response)>& cb) {
  response r;
  r.error = std::move(err);
  failed.fetch_add(1, std::memory_order_relaxed);
  if (cb) {
    detail::guarded_invoke(cb, std::move(r));
    return {};
  }
  std::promise<response> prom;
  auto fut = prom.get_future();
  prom.set_value(std::move(r));
  return fut;
}

}  // namespace

engine::engine(engine_options opt) : opts_(std::move(opt)) {
  if (opts_.max_inflight_runs == 0) opts_.max_inflight_runs = 1;
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
  exec_ctx_ = opts_.ctx.with_workers(
      resolve_workers_per_run(opts_.workers_per_run, opts_.max_inflight_runs));
  executors_.reserve(opts_.max_inflight_runs);
  for (unsigned i = 0; i < opts_.max_inflight_runs; ++i)
    executors_.emplace_back([this] { executor_loop(); });
}

engine::~engine() { stop(/*drain=*/true); }

std::future<response> engine::submit(request req) {
  return enqueue(std::move(req), nullptr);
}

void engine::submit(request req, std::function<void(response)> cb) {
  enqueue(std::move(req), std::move(cb));
}

std::future<response> engine::enqueue(request&& req, std::function<void(response)> cb) {
  // Validate at admission, not execution: a coalesced batch is one
  // registry::run_batch call, and one malformed request must not fail its
  // batchmates.
  const solver_info* si = registry::instance().info(req.solver);
  if (si == nullptr) {
    metrics::catalog::get().serve_failed.inc();
    return ready_error("unknown solver '" + req.solver + "'", failed_, cb);
  }
  if (si->problem != problem_name_of(req.input)) {
    metrics::catalog::get().serve_failed.inc();
    return ready_error("solver '" + req.solver + "' expects a '" + si->problem +
                           "' input, got '" + std::string(problem_name_of(req.input)) + "'",
                       failed_, cb);
  }
  // A deadline already in the past never enters the queue: reject it here
  // (an `expired` response) instead of letting it occupy bounded capacity
  // just to be dropped at pop time.
  if (req.deadline && *req.deadline <= std::chrono::steady_clock::now()) {
    metrics::catalog::get().serve_expired.inc();
    return ready_error("expired: deadline passed before admission", expired_, cb);
  }

  pending p;
  p.solver = std::move(req.solver);
  p.input = std::move(req.input);
  p.submit_time = std::chrono::steady_clock::now();
  p.deadline = req.deadline;
  p.prio = req.prio;
  p.session = std::move(req.session);
  p.cb = std::move(cb);
  // Fingerprint outside the lock: the canonicalization pass is O(input)
  // and must not serialize against executors sweeping the queues.
  p.fp = fingerprint_of(p.input);
  std::future<response> fut;
  if (!p.cb) fut = p.prom.get_future();

  response hit;
  bool from_cache = false;
  {
    sync::unique_lock<sync::mutex> lk(m_);
    {
      // Backpressure wait: how long admission blocked on a full queue.
      trace_span qw("serve/queue_wait");
      // Spelled as a loop, not wait(lk, pred): the predicate reads
      // m_-guarded state, and a lambda is analyzed by -Wthread-safety as a
      // separate function that cannot see the lock is held at the call site.
      while (!stopping_ && queued_locked() >= opts_.queue_capacity) not_full_.wait(lk);
    }
    if (stopping_) {
      lk.unlock();
      response r;
      r.error = "engine stopped";
      failed_.fetch_add(1, std::memory_order_relaxed);
      metrics::catalog::get().serve_failed.inc();
      deliver(p, std::move(r));
      return fut;
    }
    p.seed = req.seed ? *req.seed : reserve_anonymous_seed();
    if (cache_lookup_locked(key_of(p), hit)) {
      from_cache = true;  // delivered below, outside the lock
    } else {
      if (opts_.cache_entries > 0) {
        cache_misses_.fetch_add(1, std::memory_order_relaxed);
        metrics::catalog::get().serve_cache_misses.inc();
      }
      if (attach_dup_locked(p)) {
        // Collapsed onto an identical execution: no queue entry, no
        // notify (nothing new became runnable).
        deduped_.fetch_add(1, std::memory_order_relaxed);
        metrics::catalog::get().serve_deduped.inc();
        return fut;
      }
      if (!p.session.empty()) {
        // Take a position in the session's admission order. Dedup waiters
        // above never reach here: they ride their leader's position, and
        // content addressing makes their envelope order-independent.
        session_state& ss = sessions_[p.session];
        p.session_seq = ss.next_seq++;
        ss.queued.push_back(p.session_seq);
      }
      queues_[queue_index(p.prio)].push_back(std::move(p));
      submitted_.fetch_add(1, std::memory_order_relaxed);
      metrics::catalog::get().serve_submitted.inc();
      metrics::catalog::get().serve_queue_depth.set(
          static_cast<int64_t>(queued_locked()));
    }
  }
  if (from_cache) {
    trace::instant("serve/cache_hit");
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    metrics::catalog::get().serve_cache_hits.inc();
    completed_.fetch_add(1, std::memory_order_relaxed);
    metrics::catalog::get().serve_completed.inc();
    deliver(p, std::move(hit));
    return fut;
  }
  // notify_all, not notify_one: a single notify can be swallowed by an
  // executor coalescing a *different* solver inside its batch window (it
  // gathers nothing and re-waits), leaving an idle executor asleep and
  // this request stuck until that window expires.
  not_empty_.notify_all();
  return fut;
}

bool engine::cache_lookup_locked(const result_key& k, response& out) {
  if (opts_.cache_entries == 0) return false;
  auto it = cache_.find(k);
  if (it == cache_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  out = it->second->resp;
  out.cached = true;
  return true;
}

void engine::cache_insert_locked(const result_key& k, const response& r) {
  if (opts_.cache_entries == 0) return;
  auto it = cache_.find(k);
  if (it != cache_.end()) {
    // Determinism: the stored envelope already IS this result. Touch it.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= opts_.cache_entries) {
    cache_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(cache_entry{k, r});
  cache_.emplace(k, lru_.begin());
}

bool engine::attach_dup_locked(pending& w) {
  // Queued leaders first. O(queue) scan — the same bound every pop-time
  // sweep already pays, and capped by queue_capacity.
  for (size_t ci = 0; ci < 2; ++ci) {
    std::deque<pending>& q = queues_[ci];
    for (auto it = q.begin(); it != q.end(); ++it) {
      pending& e = *it;
      if (e.solver != w.solver || e.fp != w.fp || e.seed != w.seed) continue;
      size_t want = queue_index(w.prio);
      if (want > ci) {
        // Priority classes respected: an interactive duplicate of a
        // batch-class leader promotes the whole group — it pops (and
        // coalesces) at the interactive class from now on, instead of the
        // interactive waiter queuing behind batch traffic.
        e.prio = w.prio;
        e.followers.push_back(std::move(w));
        queues_[want].push_back(std::move(e));
        q.erase(it);
      } else {
        e.followers.push_back(std::move(w));
      }
      return true;
    }
  }
  // Then executions in their window or mid-run — but never a cancellable
  // flush: its token fires at ITS waiters' latest deadline, and a joiner
  // outliving that would be poisoned by the shared cancellation. Such a
  // duplicate queues its own execution instead (correct, just uncollapsed).
  auto it = running_.find(result_key{w.solver, w.fp, w.seed});
  if (it != running_.end() && !(it->second->started && it->second->cancellable)) {
    it->second->waiters.push_back(std::move(w));
    return true;
  }
  return false;
}

void engine::register_running_locked(pending& p) {
  auto [it, inserted] = running_.try_emplace(key_of(p), nullptr);
  if (!inserted) return;  // a cancellable twin is already running; stay invisible
  it->second = std::make_shared<fanout>();
  p.fan = it->second;
}

void engine::seal_for_flush_locked(pending& p) {
  if (p.fan) {
    for (auto& w : p.fan->waiters) p.followers.push_back(std::move(w));
    p.fan->waiters.clear();
  }
  // A token cancels the solve for EVERY waiter at once, so the flush is
  // cancellable only when all waiters consent (each has a deadline); it
  // then fires at the latest one — the moment nobody can still want the
  // result. Mixed groups run uncancellable: one waiter's deadline never
  // poisons the others' shared execution.
  bool all = p.deadline.has_value();
  auto latest = p.deadline.value_or(std::chrono::steady_clock::time_point::min());
  for (const auto& f : p.followers) {
    if (!f.deadline) {
      all = false;
      break;
    }
    latest = std::max(latest, *f.deadline);
  }
  p.use_token = all;
  if (all) p.token_deadline = latest;
  if (p.fan) {
    p.fan->started = true;
    p.fan->cancellable = all;
  }
}

void engine::finish_running_locked(pending& p, const response* ok, std::vector<pending>& out) {
  if (p.fan) {
    auto it = running_.find(key_of(p));
    // Identity check: a later execution of the same key may have
    // registered its own slot; never erase someone else's.
    if (it != running_.end() && it->second == p.fan) running_.erase(it);
    for (auto& w : p.fan->waiters) out.push_back(std::move(w));
    p.fan->waiters.clear();
    p.fan.reset();
  }
  for (auto& f : p.followers) out.push_back(std::move(f));
  p.followers.clear();
  if (ok) cache_insert_locked(key_of(p), *ok);
}

bool engine::sweep_entry_locked(pending& p, std::vector<pending>& dead,
                                std::chrono::steady_clock::time_point now) {
  for (auto it = p.followers.begin(); it != p.followers.end();) {
    if (is_expired(*it, now)) {
      dead.push_back(std::move(*it));
      it = p.followers.erase(it);
    } else {
      ++it;
    }
  }
  if (!is_expired(p, now)) return false;
  if (p.followers.empty()) return true;
  // The leader expired but other waiters still want this execution: hand
  // the role (input, fingerprint, seed, remaining followers — all shared
  // by key equality) to the first survivor and expire only the old
  // leader's promise.
  pending corpse;
  corpse.solver = p.solver;
  corpse.deadline = p.deadline;
  corpse.prom = std::move(p.prom);
  corpse.cb = std::move(p.cb);
  dead.push_back(std::move(corpse));
  pending& heir = p.followers.front();
  p.prom = std::move(heir.prom);
  p.cb = std::move(heir.cb);
  p.deadline = heir.deadline;
  p.followers.erase(p.followers.begin());
  return false;
}

bool engine::session_eligible_locked(const pending& p, uint64_t tag) const {
  if (p.session.empty()) return true;
  auto it = sessions_.find(p.session);
  if (it == sessions_.end()) return true;  // order book dropped (stop): run freely
  const session_state& ss = it->second;
  if (ss.queued.empty() || ss.queued.front() != p.session_seq) return false;
  return ss.live == 0 || ss.owner == tag;
}

void engine::session_claim_locked(const pending& p, uint64_t tag) {
  if (p.session.empty()) return;
  auto it = sessions_.find(p.session);
  if (it == sessions_.end()) return;
  session_state& ss = it->second;
  ss.queued.pop_front();
  ++ss.live;
  ss.owner = tag;
}

void engine::session_release_queued_locked(const pending& p) {
  if (p.session.empty()) return;
  auto it = sessions_.find(p.session);
  if (it == sessions_.end()) return;
  session_state& ss = it->second;
  // Out-of-order erase: an expired entry dies from the middle of the
  // admission order, unblocking its successors.
  auto q = std::find(ss.queued.begin(), ss.queued.end(), p.session_seq);
  if (q != ss.queued.end()) ss.queued.erase(q);
  if (ss.queued.empty() && ss.live == 0) sessions_.erase(it);
}

void engine::session_release_flushed_locked(const pending& p) {
  if (p.session.empty()) return;
  auto it = sessions_.find(p.session);
  if (it == sessions_.end()) return;
  session_state& ss = it->second;
  if (ss.live > 0) --ss.live;
  if (ss.live == 0) {
    ss.owner = 0;
    if (ss.queued.empty()) sessions_.erase(it);
  }
}

bool engine::pop_head_locked(std::vector<pending>& dead, pending& head, uint64_t tag) {
  auto now = std::chrono::steady_clock::now();
  // Every pop sweeps expired entries out of BOTH deques — not just the
  // one the head comes from. Under sustained interactive traffic the
  // batch deque might otherwise never be examined, leaving an expired
  // batch request unresolved (a hung future) while it pins bounded queue
  // capacity for work that can never run. O(queue) per pop, same bound
  // the gather sweep already pays. The sweep is per-waiter: an entry with
  // surviving dedup followers outlives its own leader's deadline.
  for (auto& q : queues_) {
    for (auto it = q.begin(); it != q.end();) {
      if (sweep_entry_locked(*it, dead, now)) {
        // Every waiter's deadline blew while queued: drop without a pool
        // lease (and free its session position — successors unblock).
        session_release_queued_locked(*it);
        dead.push_back(std::move(*it));
        it = q.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Higher class first. With priority_classes off everything lives in
  // queues_[0], so the order collapses to plain FIFO. Session-blocked
  // entries (an earlier entry of their session is queued ahead or mid
  // flush) are skipped in place — they keep their FIFO slot, later
  // traffic flows around them.
  for (size_t ci = 2; ci-- > 0;) {
    std::deque<pending>& q = queues_[ci];
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (!session_eligible_locked(*it, tag)) continue;
      head = std::move(*it);
      q.erase(it);
      session_claim_locked(head, tag);
      return true;
    }
  }
  return false;
}

bool engine::gather_locked(std::deque<pending>& q, const std::string& solver, priority cls,
                           uint64_t tag, std::vector<pending>& batch, std::vector<pending>& dead) {
  bool removed = false;
  auto now = std::chrono::steady_clock::now();
  for (auto it = q.begin(); it != q.end() && batch.size() < opts_.max_batch;) {
    if (sweep_entry_locked(*it, dead, now)) {
      session_release_queued_locked(*it);
      dead.push_back(std::move(*it));
      it = q.erase(it);
      removed = true;
    } else if (it->solver == solver && (!opts_.priority_classes || it->prio == cls) &&
               session_eligible_locked(*it, tag)) {
      // Consecutive entries of one session coalesce into THIS flush in
      // admission order (claiming seq k makes k+1 the session head, and
      // the deque scan reaches k+1 after k); run_batch executes items
      // as given, so in-flush order is preserved too.
      session_claim_locked(*it, tag);
      batch.push_back(std::move(*it));
      register_running_locked(batch.back());
      it = q.erase(it);
      removed = true;
    } else {
      ++it;
    }
  }
  return removed;
}

void engine::executor_loop() {
  for (;;) {
    std::vector<pending> batch;
    std::vector<pending> dead;  // expired while queued; resolved below, leaseless
    {
      sync::unique_lock<sync::mutex> lk(m_);
      // Loop, not wait(lk, pred): see enqueue() — guarded reads must stay
      // inside the scope the analysis knows holds m_.
      while (!stopping_ && queued_locked() == 0) not_empty_.wait(lk);
      if (queued_locked() == 0) return;  // stopping_ && drained
      pending head;
      // This iteration's flush identity: session entries claimed under one
      // tag (the popped head and its gathered session-mates) share one
      // flush; a different tag must wait for their release.
      const uint64_t tag = ++flush_tag_;
      if (pop_head_locked(dead, head, tag)) {
        batch.push_back(std::move(head));
        register_running_locked(batch.back());
        // By value: growing `batch` reallocates and would invalidate a
        // reference into batch.front().
        const std::string solver = batch.front().solver;
        const priority cls = batch.front().prio;

        // Sweep everything for this solver (and, with QoS on, this class —
        // a batch request must never ride an interactive flush's lease)
        // already waiting, then keep the window open for late arrivals
        // until the batch fills, the window closes, or the engine is
        // stopping (stop cuts windows short so drain is prompt). Each
        // sweep rescans the class deque under m_ — O(queue) per window
        // wakeup, which the operator bounds via queue_capacity. Expired
        // entries encountered on the way are dropped leaselessly like at
        // pop time.
        std::deque<pending>& q = queues_[queue_index(cls)];
        {
          trace_span g("serve/gather");
          if (gather_locked(q, solver, cls, tag, batch, dead)) not_full_.notify_all();
          // Expiry path annotation: how many queued waiters this sweep
          // dropped for blown deadlines (leaseless "expired" responses).
          g.args("expired", dead.size());
        }
        if (opts_.batch_window.count() > 0) {
          // Coalesce: the batch-window wait for same-solver late arrivals.
          trace_span co("serve/coalesce");
          auto window_end = std::chrono::steady_clock::now() + opts_.batch_window;
          while (batch.size() < opts_.max_batch && !stopping_) {
            if (not_empty_.wait_until(lk, window_end) == std::cv_status::timeout) {
              if (gather_locked(q, solver, cls, tag, batch, dead)) not_full_.notify_all();
              break;
            }
            if (gather_locked(q, solver, cls, tag, batch, dead)) not_full_.notify_all();
          }
          co.args("batch", batch.size(), "expired", dead.size());
        }
        // The flush is decided: freeze each entry's cancellability and
        // absorb window-time joiners. Post-seal joiners keep accumulating
        // in the fanout (uncancellable flushes only) and are delivered at
        // completion.
        for (auto& p : batch) seal_for_flush_locked(p);
      } else if (queued_locked() > 0) {
        // Nothing runnable but the queue is non-empty: everything left is
        // session-blocked behind an in-flight flush. Sleep until a release
        // notification (or a short timeout as a missed-wakeup backstop)
        // instead of spinning on the pop.
        not_empty_.wait_for(lk, std::chrono::milliseconds(1));
      }
      metrics::catalog::get().serve_queue_depth.set(
          static_cast<int64_t>(queued_locked()));
    }
    not_full_.notify_all();
    for (auto& p : dead) deliver_expired(p);
    if (batch.empty()) {
      // Everything we popped had expired; go back to waiting (or exit if
      // the engine is stopping and the queues drained meanwhile).
      sync::lock_guard<sync::mutex> lk(m_);
      if (stopping_ && queued_locked() == 0) return;
      continue;
    }
    // A same-solver request arriving while we execute is picked up by
    // another executor (or by us on the next loop) — the queue is never
    // blocked on a running batch.
    execute(std::move(batch));
  }
}

void engine::execute(std::vector<pending> batch) {
  unsigned now = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  metrics::catalog::get().serve_inflight.add(1);
  metrics::catalog::get().serve_batch_size.observe(batch.size());
  unsigned peak = peak_inflight_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_inflight_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }

  std::vector<problem_input> inputs;
  inputs.reserve(batch.size());
  batch_options opts;
  opts.seeds.reserve(batch.size());
  bool any_token = false;
  for (auto& p : batch) {
    inputs.push_back(std::move(p.input));
    opts.seeds.push_back(p.seed);
    if (p.use_token) any_token = true;
  }
  // Each cancellable item carries its own token, so a blown deadline
  // cancels exactly that item at its next phase boundary (or skips it
  // before it starts) while batchmates with live or absent deadlines
  // complete normally — one expired request never fails its flush. The
  // cancellability decision itself was sealed under m_ (an item with any
  // deadline-less waiter runs to completion; see seal_for_flush_locked).
  if (any_token) {
    opts.tokens.reserve(batch.size());
    for (auto& p : batch)
      opts.tokens.push_back(p.use_token ? cancel_token::at(p.token_deadline) : cancel_token{});
  }

  auto t0 = std::chrono::steady_clock::now();
  size_t delivered = 0;  // entries already resolved; never re-delivered on error
  try {
    trace_span flush("serve/flush", "batch", batch.size());
    auto br = registry::run_batch(batch.front().solver,
                                  std::span<const problem_input>(inputs), exec_ctx_, opts);
    // Cancellation path annotation: items whose deadline token fired
    // mid-run (the solve unwound at a phase boundary, batchmates intact).
    size_t cancelled_items = 0;
    for (const auto& item : br.items)
      if (item.cancelled()) ++cancelled_items;
    flush.args("batch", batch.size(), "cancelled", cancelled_items);
    flush.end();
    exec_nanos_.fetch_add(
        static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count()),
        std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (batch.size() > 1) batched_.fetch_add(batch.size(), std::memory_order_relaxed);
    for (; delivered < batch.size(); ++delivered) {
      pending& p = batch[delivered];
      response r;
      r.result = std::move(br.items[delivered]);
      const bool ok_item = !r.result.cancelled();
      if (!ok_item) r.error = "cancelled: deadline exceeded mid-run";
      // Unregister the dedup slot, collect every waiter, and cache a
      // successful envelope — atomically w.r.t. new submissions, so a
      // duplicate arriving now either finds the cache entry or queues a
      // fresh execution; it can never join a completed fanout.
      std::vector<pending> waiters;
      {
        sync::lock_guard<sync::mutex> lk(m_);
        finish_running_locked(p, ok_item ? &r : nullptr, waiters);
        session_release_flushed_locked(p);
      }
      // Fan the envelope out: one execution, every waiter answered. A
      // waiter whose deadline lapsed mid-run still gets the result — the
      // work is already paid for; deadlines shed queued work, not
      // finished envelopes.
      for (auto& w : waiters) {
        response copy = r;
        if (ok_item) {
          completed_.fetch_add(1, std::memory_order_relaxed);
          metrics::catalog::get().serve_completed.inc();
        } else {
          cancelled_.fetch_add(1, std::memory_order_relaxed);
          metrics::catalog::get().serve_cancelled.inc();
        }
        deliver(w, std::move(copy));
      }
      if (ok_item) {
        completed_.fetch_add(1, std::memory_order_relaxed);
        metrics::catalog::get().serve_completed.inc();
      } else {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        metrics::catalog::get().serve_cancelled.inc();
      }
      deliver(p, std::move(r));
    }
  } catch (const std::exception& e) {
    // Admission-time validation makes this unreachable for well-formed
    // requests; a solver throwing mid-batch fails the whole flush — but
    // only the entries not already resolved above.
    fail_from(batch, delivered, e.what());
  } catch (...) {
    // A non-std exception escaping the executor std::thread would
    // std::terminate the whole process; fail the flush instead.
    fail_from(batch, delivered, "solver threw a non-std exception");
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  metrics::catalog::get().serve_inflight.sub(1);
  // Session releases above may have unblocked a skipped entry; wake
  // executors parked on the session-blocked wait.
  not_empty_.notify_all();
}

void engine::fail_from(std::vector<pending>& batch, size_t first, const char* what) {
  for (size_t i = first; i < batch.size(); ++i) {
    // A genuinely failed flush is a shared fact: every deduped waiter
    // gets the same error its leader does (and nothing is cached).
    std::vector<pending> waiters;
    {
      sync::lock_guard<sync::mutex> lk(m_);
      finish_running_locked(batch[i], nullptr, waiters);
      session_release_flushed_locked(batch[i]);
    }
    failed_.fetch_add(1 + waiters.size(), std::memory_order_relaxed);
    metrics::catalog::get().serve_failed.inc(1 + waiters.size());
    for (auto& w : waiters) {
      response r;
      r.error = what;
      deliver(w, std::move(r));
    }
    response r;
    r.error = what;
    deliver(batch[i], std::move(r));
  }
}

void engine::deliver(pending& p, response&& r) {
  // Per-class submit-to-delivery latency (cache hits and errors count
  // too — the client waited exactly this long either way). Entries that
  // never passed admission have a zero submit_time and are skipped.
  if (p.submit_time.time_since_epoch().count() != 0) {
    auto usec = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - p.submit_time)
                    .count();
    metrics::catalog& m = metrics::catalog::get();
    (p.prio == priority::interactive ? m.serve_latency_interactive : m.serve_latency_batch)
        .observe(static_cast<uint64_t>(usec < 0 ? 0 : usec));
  }
  if (p.cb) {
    detail::guarded_invoke(p.cb, std::move(r));
  } else {
    p.prom.set_value(std::move(r));
  }
}

void engine::deliver_expired(pending& p) {
  // Expiry path annotation: how long the request sat queued before its
  // deadline blew (it never took a pool lease).
  trace::instant("serve/expired", "queued_usec",
                 static_cast<uint64_t>(std::max<int64_t>(
                     0, std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - p.submit_time)
                            .count())));
  expired_.fetch_add(1, std::memory_order_relaxed);
  metrics::catalog::get().serve_expired.inc();
  response r;
  r.error = "expired: deadline passed while queued";
  deliver(p, std::move(r));
}

void engine::stop(bool drain) {
  std::deque<pending> orphans;
  {
    sync::lock_guard<sync::mutex> lk(m_);
    stopping_ = true;
    if (!drain) {
      for (auto& q : queues_) {
        for (auto& p : q) orphans.push_back(std::move(p));
        q.clear();
      }
      // The orphans' session positions die with them. In-flight flushes
      // release against the (now absent) books as no-ops.
      sessions_.clear();
    }
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& p : orphans) {
    // Dedup waiters orphan along with their leader.
    for (auto& f : p.followers) {
      response r;
      r.error = "engine stopped";
      failed_.fetch_add(1, std::memory_order_relaxed);
      metrics::catalog::get().serve_failed.inc();
      deliver(f, std::move(r));
    }
    response r;
    r.error = "engine stopped";
    failed_.fetch_add(1, std::memory_order_relaxed);
    metrics::catalog::get().serve_failed.inc();
    deliver(p, std::move(r));
  }
  std::call_once(join_once_, [&] {
    for (auto& t : executors_) t.join();
  });
}

engine_stats engine::stats() const {
  engine_stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched = batched_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.deduped = deduped_.load(std::memory_order_relaxed);
  s.peak_inflight = peak_inflight_.load(std::memory_order_relaxed);
  s.exec_seconds = static_cast<double>(exec_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  sync::lock_guard<sync::mutex> lk(m_);
  s.queue_depth = queued_locked();
  return s;
}

std::string to_json(const engine_stats& s) {
  json::writer w;
  w.begin_object();
  w.member("submitted", s.submitted);
  w.member("completed", s.completed);
  w.member("failed", s.failed);
  w.member("expired", s.expired);
  w.member("cancelled", s.cancelled);
  w.member("batches", s.batches);
  w.member("batched", s.batched);
  w.member("cache_hits", s.cache_hits);
  w.member("cache_misses", s.cache_misses);
  w.member("deduped", s.deduped);
  w.member("peak_inflight", static_cast<uint64_t>(s.peak_inflight));
  w.member("queue_depth", static_cast<uint64_t>(s.queue_depth));
  w.member("exec_seconds", s.exec_seconds);
  w.end_object();
  return w.str();
}

}  // namespace pp::serve
