#include "serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <span>
#include <utility>

namespace pp::serve {

namespace detail {
// Invoke a user response callback with exception isolation: a throwing
// callback must neither escape an executor std::thread (std::terminate)
// nor propagate out of submit() on the admission-rejection path, and must
// not trip the batch error path into re-delivering batchmates' promises.
inline void guarded_invoke(const std::function<void(response)>& cb, response&& r) {
  try {
    cb(std::move(r));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pp::serve: response callback threw: %s\n", e.what());
  } catch (...) {
    std::fprintf(stderr, "pp::serve: response callback threw\n");
  }
}
}  // namespace detail

namespace {

// Resolve the 0 = "partition the machine evenly" default.
unsigned resolve_workers_per_run(unsigned requested, unsigned max_inflight) {
  if (requested >= 1) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  unsigned share = hw / (max_inflight == 0 ? 1 : max_inflight);
  return share == 0 ? 1 : share;
}

std::future<response> ready_error(std::string err, std::atomic<uint64_t>& failed,
                                  const std::function<void(response)>& cb) {
  response r;
  r.error = std::move(err);
  failed.fetch_add(1, std::memory_order_relaxed);
  if (cb) {
    detail::guarded_invoke(cb, std::move(r));
    return {};
  }
  std::promise<response> prom;
  auto fut = prom.get_future();
  prom.set_value(std::move(r));
  return fut;
}

}  // namespace

engine::engine(engine_options opt) : opts_(std::move(opt)) {
  if (opts_.max_inflight_runs == 0) opts_.max_inflight_runs = 1;
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
  exec_ctx_ = opts_.ctx.with_workers(
      resolve_workers_per_run(opts_.workers_per_run, opts_.max_inflight_runs));
  executors_.reserve(opts_.max_inflight_runs);
  for (unsigned i = 0; i < opts_.max_inflight_runs; ++i)
    executors_.emplace_back([this] { executor_loop(); });
}

engine::~engine() { stop(/*drain=*/true); }

std::future<response> engine::submit(request req) {
  return enqueue(std::move(req), nullptr);
}

void engine::submit(request req, std::function<void(response)> cb) {
  enqueue(std::move(req), std::move(cb));
}

std::future<response> engine::enqueue(request&& req, std::function<void(response)> cb) {
  // Validate at admission, not execution: a coalesced batch is one
  // registry::run_batch call, and one malformed request must not fail its
  // batchmates.
  const solver_info* si = registry::instance().info(req.solver);
  if (si == nullptr)
    return ready_error("unknown solver '" + req.solver + "'", failed_, cb);
  if (si->problem != problem_name_of(req.input)) {
    return ready_error("solver '" + req.solver + "' expects a '" + si->problem +
                           "' input, got '" + std::string(problem_name_of(req.input)) + "'",
                       failed_, cb);
  }

  pending p;
  p.solver = std::move(req.solver);
  p.input = std::move(req.input);
  p.cb = std::move(cb);
  std::future<response> fut;
  if (!p.cb) fut = p.prom.get_future();

  {
    std::unique_lock<std::mutex> lk(m_);
    not_full_.wait(lk, [&] { return stopping_ || queue_.size() < opts_.queue_capacity; });
    if (stopping_) {
      lk.unlock();
      response r;
      r.error = "engine stopped";
      failed_.fetch_add(1, std::memory_order_relaxed);
      deliver(p, std::move(r));
      return fut;
    }
    p.seed = req.seed ? *req.seed : derive_seed(opts_.ctx.seed, seq_);
    ++seq_;
    queue_.push_back(std::move(p));
    submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  // notify_all, not notify_one: a single notify can be swallowed by an
  // executor coalescing a *different* solver inside its batch window (it
  // gathers nothing and re-waits), leaving an idle executor asleep and
  // this request stuck until that window expires.
  not_empty_.notify_all();
  return fut;
}

void engine::executor_loop() {
  for (;;) {
    std::vector<pending> batch;
    {
      std::unique_lock<std::mutex> lk(m_);
      not_empty_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained

      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // By value: growing `batch` reallocates and would invalidate a
      // reference into batch.front().
      const std::string solver = batch.front().solver;

      // Sweep everything for this solver already waiting, then keep the
      // window open for late arrivals until the batch fills, the window
      // closes, or the engine is stopping (stop cuts windows short so
      // drain is prompt). Each sweep rescans the queue under m_ — O(queue)
      // per window wakeup, which the operator bounds via queue_capacity;
      // a resumable scan cursor would be invalidated by the other
      // executors' own erases and is not worth the bookkeeping here.
      auto gather = [&] {
        bool removed = false;
        for (auto it = queue_.begin(); it != queue_.end() && batch.size() < opts_.max_batch;) {
          if (it->solver == solver) {
            batch.push_back(std::move(*it));
            it = queue_.erase(it);
            removed = true;
          } else {
            ++it;
          }
        }
        // Wake backpressured submitters NOW, not after the window closes:
        // with a small queue, a window-waiting executor that just drained
        // it is waiting for exactly the requests those submitters hold.
        if (removed) not_full_.notify_all();
      };
      gather();
      if (opts_.batch_window.count() > 0) {
        auto deadline = std::chrono::steady_clock::now() + opts_.batch_window;
        while (batch.size() < opts_.max_batch && !stopping_) {
          if (not_empty_.wait_until(lk, deadline) == std::cv_status::timeout) {
            gather();
            break;
          }
          gather();
        }
      }
    }
    not_full_.notify_all();
    // A same-solver request arriving while we execute is picked up by
    // another executor (or by us on the next loop) — the queue is never
    // blocked on a running batch.
    execute(std::move(batch));
  }
}

void engine::execute(std::vector<pending> batch) {
  unsigned now = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  unsigned peak = peak_inflight_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_inflight_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }

  std::vector<problem_input> inputs;
  inputs.reserve(batch.size());
  batch_options opts;
  opts.seeds.reserve(batch.size());
  for (auto& p : batch) {
    inputs.push_back(std::move(p.input));
    opts.seeds.push_back(p.seed);
  }

  auto t0 = std::chrono::steady_clock::now();
  size_t delivered = 0;  // entries already resolved; never re-delivered on error
  try {
    auto br = registry::run_batch(batch.front().solver,
                                  std::span<const problem_input>(inputs), exec_ctx_, opts);
    exec_nanos_.fetch_add(
        static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count()),
        std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (batch.size() > 1) batched_.fetch_add(batch.size(), std::memory_order_relaxed);
    completed_.fetch_add(batch.size(), std::memory_order_relaxed);
    for (; delivered < batch.size(); ++delivered) {
      response r;
      r.result = std::move(br.items[delivered]);
      deliver(batch[delivered], std::move(r));
    }
  } catch (const std::exception& e) {
    // Admission-time validation makes this unreachable for well-formed
    // requests; a solver throwing mid-batch fails the whole flush — but
    // only the entries not already resolved above.
    fail_from(batch, delivered, e.what());
  } catch (...) {
    // A non-std exception escaping the executor std::thread would
    // std::terminate the whole process; fail the flush instead.
    fail_from(batch, delivered, "solver threw a non-std exception");
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
}

void engine::fail_from(std::vector<pending>& batch, size_t first, const char* what) {
  failed_.fetch_add(batch.size() - first, std::memory_order_relaxed);
  for (size_t i = first; i < batch.size(); ++i) {
    response r;
    r.error = what;
    deliver(batch[i], std::move(r));
  }
}

void engine::deliver(pending& p, response&& r) {
  if (p.cb) {
    detail::guarded_invoke(p.cb, std::move(r));
  } else {
    p.prom.set_value(std::move(r));
  }
}

void engine::stop(bool drain) {
  std::deque<pending> orphans;
  {
    std::lock_guard<std::mutex> lk(m_);
    stopping_ = true;
    if (!drain) orphans.swap(queue_);
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& p : orphans) {
    response r;
    r.error = "engine stopped";
    failed_.fetch_add(1, std::memory_order_relaxed);
    deliver(p, std::move(r));
  }
  std::call_once(join_once_, [&] {
    for (auto& t : executors_) t.join();
  });
}

engine_stats engine::stats() const {
  engine_stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched = batched_.load(std::memory_order_relaxed);
  s.peak_inflight = peak_inflight_.load(std::memory_order_relaxed);
  s.exec_seconds = static_cast<double>(exec_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  std::lock_guard<std::mutex> lk(m_);
  s.queue_depth = queue_.size();
  return s;
}

}  // namespace pp::serve
