// pp::serve — asynchronous serving engine over the solver registry.
//
// The registry gave every phase-parallel algorithm one synchronous dispatch
// surface (run / run_batch); this subsystem multiplexes many concurrent
// *clients* onto it, which is the ROADMAP serving shape: requests arrive
// faster than one blocking caller could issue them, and throughput is
// governed by how they are admitted to workers, not just by per-run
// parallelism.
//
//   pp::serve::engine eng({.max_inflight_runs = 2, .workers_per_run = 4});
//   auto fut = eng.submit({.solver = "lis/parallel", .input = in, .seed = 7});
//   pp::serve::response r = fut.get();   // r.result is a run_result envelope
//
// Two mechanisms:
//
//  * Admission control. Clients enqueue into a bounded MPMC queue (submit
//    blocks when it is full — backpressure, not unbounded buffering). A
//    fixed set of `max_inflight_runs` executor threads drains it, so at
//    most that many run_scopes — and therefore at most that many exclusive
//    pool_cache leases of `workers_per_run` workers each — are ever live.
//    Concurrent runs *partition* the machine (R pools of W workers)
//    instead of oversubscribing it.
//
//  * Dynamic micro-batching. An executor that pops a request waits up to
//    `batch_window` for more requests naming the same solver (up to
//    `max_batch`), then executes them as ONE registry::run_batch — one
//    pool lease, one scheduler binding — and demultiplexes the per-item
//    envelopes back to the individual futures. Each request executes under
//    its own seed (batch_options::seeds), so a coalesced submit returns
//    bit-for-bit what a standalone registry::run under that seed returns.
//
//  * Content addressing (dedup + result cache). Every run is deterministic
//    given (solver, input, seed), so the engine fingerprints each input at
//    admission (core/fingerprint.h) and treats (solver, fingerprint, seed)
//    as the address of its result. An identical submission collapses onto
//    the existing queued/running execution as a *waiter* — one pool lease,
//    the envelope fanned out to everyone — and a bounded LRU of recent
//    envelopes answers repeat traffic at submit time with zero queue slots
//    and zero leases (`response::cached`). See engine_options::cache_entries
//    and the cache_hits/cache_misses/deduped counters.
//
//  * QoS. Requests carry a priority class and an optional deadline.
//    Interactive requests pop before batch requests (FIFO within a
//    class), coalescing never crosses classes, a request whose deadline
//    passes while queued is dropped at pop time without taking a pool
//    lease (`expired`), and an in-flight request carries a
//    pp::cancel_token so a blown deadline unwinds its solve at the next
//    phase boundary (`cancelled`) while unexpired batchmates complete.
//
//  * Session affinity. Requests carrying a session key (stateful clients:
//    src/serve/session.h) execute in admission order per session — a
//    later solve on a session never starts before an earlier one
//    finishes, so version-ordered feedback (note_solve) and callbacks
//    observe the session's timeline. Entries of ONE session may still
//    coalesce into a single flush (run_batch preserves item order), but
//    never into two concurrent flushes; cross-session and sessionless
//    traffic coalesces exactly as before. A session-blocked entry is
//    skipped at pop time rather than blocking the head of the queue.
//
// Every batch executes under the engine's single execution profile
// (options::ctx + workers_per_run): concurrent top-level scopes then agree
// on every knob except the per-item seeds, which solvers consume through
// their explicit context argument — never through the process-wide current
// context — so concurrent executors cannot cross-contaminate each other
// (and the context scope-race detector stays quiet). Requests therefore
// carry solver + input + seed only; backend/width policy belongs to the
// server operator, as in any serving system.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/annotations.h"
#include "core/context.h"
#include "core/fingerprint.h"
#include "core/registry.h"
#include "core/result.h"

namespace pp::serve {

// QoS class of a request. Higher classes pop first (same-class requests
// stay FIFO), and micro-batching coalesces only within a class, so a
// batch request can never ride an interactive flush's pool lease.
enum class priority : uint8_t {
  batch = 0,        // throughput traffic; yields to interactive
  interactive = 1,  // latency-sensitive; jumps the admission queue
};

inline const char* priority_name(priority p) {
  return p == priority::interactive ? "interactive" : "batch";
}

inline std::optional<priority> parse_priority(std::string_view s) {
  if (s == "interactive") return priority::interactive;
  if (s == "batch") return priority::batch;
  return std::nullopt;
}

// One unit of client work: a registered solver plus the input it consumes.
// `seed` empty = the engine derives one from its base seed and a
// daemon-wide anonymous counter via pp::derive_seed — the same per-item
// rule run_batch uses, so a stream of anonymous requests is reproducible
// from the engine's base seed alone (and two concurrent clients can never
// collide on a derived seed).
//
// `deadline` empty = run to completion. Set, it is enforced at two points:
// a request still queued past its deadline is dropped at pop time (an
// `expired` response, zero pool leases), and an in-flight request carries
// a pp::cancel_token that cancels its solve at the next phase boundary
// (a `cancelled` response) — batchmates with live deadlines are unaffected.
struct request {
  std::string solver;
  problem_input input;
  std::optional<uint64_t> seed;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  priority prio = priority::interactive;
  // Session affinity key; empty = unordered. Requests sharing a key
  // execute in admission order (see the header note). Dedup and cache
  // still apply: an identical submission may be answered out of band —
  // content addressing makes its envelope order-independent.
  std::string session;
};

struct response {
  run_result<solver_value> result{};  // filled when ok()
  std::string error;                  // empty = success
  // True when the envelope was answered from the result cache: a copy of
  // a previous execution's envelope (including its seconds/stats — they
  // describe the run that produced the bytes), zero pool leases. Deduped
  // waiters are NOT marked: their envelope comes from a live execution.
  bool cached = false;
  bool ok() const { return error.empty(); }
};

struct engine_options {
  // Executor threads == maximum concurrent run_scopes (pool leases).
  unsigned max_inflight_runs = 2;
  // Workers per run_scope; 0 = partition the machine evenly:
  // max(1, hardware / max_inflight_runs).
  unsigned workers_per_run = 0;
  // Bounded admission queue; submit blocks (backpressure) when full.
  size_t queue_capacity = 1024;
  // How long an executor holding a fresh request waits for more requests
  // of the same solver before flushing. 0 = flush immediately (batching
  // effectively off when combined with max_batch = 1).
  std::chrono::microseconds batch_window{200};
  // Largest coalesced batch; 1 disables coalescing.
  size_t max_batch = 16;
  // QoS classes on: interactive requests pop before batch requests and
  // classes never share a flush. Off: one FIFO queue, classes ignored —
  // the A/B baseline bench/serving_qos measures against.
  bool priority_classes = true;
  // Bounded LRU of recent (solver, input fingerprint, seed) → response
  // envelopes. A repeat submission is answered at admission with a copy
  // of the stored envelope (response::cached), zero queue slots and zero
  // pool leases; determinism makes staleness a non-question (the cached
  // envelope IS what a re-run would produce). Entries hold full payloads,
  // so the memory bound is entries × payload size — size for the
  // deployment's input scale. 0 = cache off (in-flight dedup stays on;
  // it needs no storage).
  size_t cache_entries = 256;
  // Execution profile every batch runs under: backend, grain, pivot, and
  // the base seed anonymous requests derive from. ctx.workers is ignored
  // in favor of workers_per_run.
  context ctx = default_context();
};

struct engine_stats {
  uint64_t submitted = 0;     // requests admitted to the queue as entries
                              // (cache hits and deduped waiters resolve
                              // without consuming a queue slot)
  uint64_t completed = 0;     // responses delivered with ok(), including
                              // cache hits and fanned-out waiters — may
                              // exceed submitted under repeat traffic
  uint64_t failed = 0;        // responses delivered with an error (not QoS)
  uint64_t expired = 0;       // deadline passed while queued: dropped at pop
                              // (or rejected at submit), zero pool leases
  uint64_t cancelled = 0;     // deadline fired after the flush started: the
                              // solve unwound at a phase boundary (or the
                              // item was skipped inside its leased batch)
  uint64_t batches = 0;       // run_batch flushes (== pool leases taken)
  uint64_t batched = 0;       // requests that shared a flush with >= 1 other
  uint64_t cache_hits = 0;    // answered from the LRU at submit: zero queue
                              // slots, zero pool leases (response::cached)
  uint64_t cache_misses = 0;  // cache enabled but held no entry for the key
  uint64_t deduped = 0;       // collapsed onto an identical queued/running
                              // execution as a waiter (zero extra leases)
  unsigned peak_inflight = 0; // high-water mark of concurrent run_scopes
  size_t queue_depth = 0;     // requests waiting right now
  // Summed wall-clock of the run_batch flushes themselves (batch window
  // waits excluded). exec_seconds minus the per-item solve seconds is the
  // engine's total dispatch overhead — lease cycles, scope setup, demux —
  // and stays meaningful under concurrent executors, where comparing
  // against end-to-end wall clock would not (concurrency makes summed
  // solve time exceed wall time).
  double exec_seconds = 0.0;
};

// Machine-readable stats (core/json.h writer): every counter above as one
// flat object. The ppserve daemon serves this for {"stats": true} request
// lines; benches snapshot it for perf tracking.
std::string to_json(const engine_stats& s);

class engine {
 public:
  explicit engine(engine_options opt = {});
  ~engine();  // stop(/*drain=*/true)

  engine(const engine&) = delete;
  engine& operator=(const engine&) = delete;

  // Enqueue and return the eventual response. Invalid requests (unknown
  // solver, wrong problem_input alternative) and submits after stop()
  // resolve immediately with an error — they never enter the queue.
  // Blocks while the queue is full.
  std::future<response> submit(request req);

  // Callback form: `cb` runs on the executor thread that finished the
  // request's batch (keep it cheap; it delays the executor's next pop).
  void submit(request req, std::function<void(response)> cb);

  // Stop accepting work. drain=true executes everything still queued
  // (windows are cut short); drain=false fails queued-but-unstarted
  // requests with "engine stopped". Either way every future issued by
  // submit() is resolved when stop() returns. Idempotent.
  void stop(bool drain = true);

  engine_stats stats() const;
  const engine_options& options() const { return opts_; }
  // Reserve the next anonymous execution seed: derive_seed(base, k) for
  // the k-th anonymous request engine-wide. Callers that must build a
  // request's input from its execution seed (ppserve does: input seed ==
  // execution seed) draw from here so concurrent sessions never collide —
  // deriving from any per-connection index would hand request 0 of two
  // parallel connections the same seed.
  uint64_t reserve_anonymous_seed() {
    return derive_seed(opts_.ctx.seed, anon_seq_.fetch_add(1, std::memory_order_relaxed));
  }
  // The resolved per-run width (options.workers_per_run, or the even
  // machine partition when that was 0).
  unsigned workers_per_run() const { return exec_ctx_.workers; }
  // The profile batches execute under (seed = the engine base seed; item
  // seeds override it per request).
  const context& execution_context() const { return exec_ctx_; }

 private:
  struct pending;

  // Mid-run attach slot for in-flight dedup: while a (solver, fingerprint,
  // seed) execution sits in its batch window or runs, running_ maps its
  // key here so late identical submissions can still join. Every field is
  // protected by m_ (the attribute syntax cannot name engine::m_ from a
  // nested struct, so the guard is by construction: all access sites hold
  // it).
  struct fanout {
    bool started = false;      // flush launched; `cancellable` is final
    bool cancellable = false;  // flush carries a cancel token: no more joins
    std::vector<pending> waiters;
  };

  struct pending {
    std::string solver;
    problem_input input;
    fingerprint fp;  // canonical input fingerprint (computed at admission)
    // Admission timestamp, for the per-class latency histograms
    // (pp_serve_latency_*_usec in core/metrics.h).
    std::chrono::steady_clock::time_point submit_time{};
    uint64_t seed = 0;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    priority prio = priority::interactive;
    std::promise<response> prom;
    std::function<void(response)> cb;  // when set, used instead of prom
    // Deduped waiters riding this entry's execution (leaders only; a
    // waiter's own list is empty). Mutated under m_; the executing thread
    // owns it after seal_for_flush_locked.
    std::vector<pending> followers;
    // This entry's running_ slot, while registered (executing entries only).
    std::shared_ptr<fanout> fan;
    // Flush decision (seal_for_flush_locked): carry a cancel token iff
    // every waiter has a deadline; it fires at the latest one.
    bool use_token = false;
    std::chrono::steady_clock::time_point token_deadline{};
    // Session affinity: the key and this entry's position in the
    // session's admission order (sessions_[session].queued holds the
    // live positions, FIFO).
    std::string session;
    uint64_t session_seq = 0;
  };

  // Content address of a response — the cache and dedup key.
  struct result_key {
    std::string solver;
    fingerprint fp;
    uint64_t seed = 0;
    friend auto operator<=>(const result_key&, const result_key&) = default;
  };
  static result_key key_of(const pending& p) { return {p.solver, p.fp, p.seed}; }

  std::future<response> enqueue(request&& req, std::function<void(response)> cb);
  void executor_loop();
  void execute(std::vector<pending> batch);
  // Fail batch entries [first, end) with `what` (the not-yet-delivered
  // tail when a flush throws).
  void fail_from(std::vector<pending>& batch, size_t first, const char* what);
  static void deliver(pending& p, response&& r);
  // Resolve `p` with an "expired" error (deadline passed before any pool
  // lease was taken) and count it.
  void deliver_expired(pending& p);

  // ---- cache + dedup helpers; the m_ requirement is machine-checked ---------
  // LRU lookup; on hit copies the stored envelope into `out` with
  // cached=true and touches the entry.
  bool cache_lookup_locked(const result_key& k, response& out) PP_REQUIRES(m_);
  // Insert a successful envelope, evicting the least-recently-used entry
  // past the bound. Cancelled/errored responses are never inserted.
  void cache_insert_locked(const result_key& k, const response& r) PP_REQUIRES(m_);
  // Collapse an identical (solver, fingerprint, seed) submission onto an
  // existing queued or joinable running execution; true = `w` was consumed.
  bool attach_dup_locked(pending& w) PP_REQUIRES(m_);
  // Make a just-popped entry joinable while it waits out the batch window
  // and runs: running_[key] → a fresh fanout (skipped if the key is
  // already running — the second execution simply collects no joiners).
  void register_running_locked(pending& p) PP_REQUIRES(m_);
  // Freeze an entry's flush decision: absorb window-time joiners into
  // `followers`, decide cancellability (all waiters deadline'd → token at
  // the latest deadline), and mark the fanout started.
  void seal_for_flush_locked(pending& p) PP_REQUIRES(m_);
  // Completion bookkeeping for one flushed entry: unregister its running_
  // slot, move every remaining waiter into `out` for delivery, and cache
  // the envelope (successful results only — a cancelled sole execution
  // must not poison future hits).
  void finish_running_locked(pending& p, const response* ok, std::vector<pending>& out)
      PP_REQUIRES(m_);
  // Per-waiter deadline sweep of one queued entry: expired followers move
  // into `dead`, an expired leader hands the execution role to its first
  // surviving follower (work other waiters still want is never dropped).
  // True = every waiter expired; the caller erases the entry after moving
  // it into `dead`.
  bool sweep_entry_locked(pending& p, std::vector<pending>& dead,
                          std::chrono::steady_clock::time_point now) PP_REQUIRES(m_);

  // ---- session affinity helpers; the m_ requirement is machine-checked ------
  // Per-session ordering state. `queued` holds the admission positions of
  // the session's queued entries (front = next allowed to run); `live` /
  // `owner` track entries claimed into a not-yet-finished flush and which
  // flush holds them. Erased when both drain, so idle sessions cost zero.
  struct session_state {
    uint64_t next_seq = 0;
    std::deque<uint64_t> queued;
    size_t live = 0;
    uint64_t owner = 0;  // flush tag; meaningful while live > 0
  };
  // May `p` start under flush `tag`? True when p is sessionless, or is the
  // session's FIFO head with no other flush in flight (entries already
  // claimed by THIS tag don't block their session-mates — that is what
  // lets one flush carry several consecutive entries of a session).
  bool session_eligible_locked(const pending& p, uint64_t tag) const PP_REQUIRES(m_);
  // Claim an eligible entry into flush `tag` (pops its queued position).
  void session_claim_locked(const pending& p, uint64_t tag) PP_REQUIRES(m_);
  // Un-queue an entry that dies without running (expired / orphaned).
  void session_release_queued_locked(const pending& p) PP_REQUIRES(m_);
  // Release a flushed entry; when the session's flush fully drains, its
  // next queued entry becomes eligible (callers notify not_empty_).
  void session_release_flushed_locked(const pending& p) PP_REQUIRES(m_);

  // ---- queue helpers; the m_ requirement is machine-checked -----------------
  // Which deque a pending lands in: its class when priority_classes, the
  // single FIFO otherwise.
  size_t queue_index(priority p) const {
    return opts_.priority_classes ? static_cast<size_t>(p) : 0;
  }
  size_t queued_locked() const PP_REQUIRES(m_) {
    return queues_[0].size() + queues_[1].size();
  }
  static bool is_expired(const pending& p, std::chrono::steady_clock::time_point now) {
    return p.deadline && *p.deadline <= now;
  }
  // Pop the next runnable head — highest class first, FIFO within a class
  // — moving every already-expired entry encountered into `dead` and
  // skipping (not disturbing) session-blocked entries. Returns false when
  // nothing runnable is queued.
  bool pop_head_locked(std::vector<pending>& dead, pending& head, uint64_t tag)
      PP_REQUIRES(m_);
  // Sweep-and-coalesce into `batch` every queued entry of `q` matching
  // the flush head (same solver; same class when QoS is on; session
  // eligible under `tag`), up to max_batch, registering each as joinable.
  // True = entries left the queue, so the caller wakes backpressured
  // submitters NOW — with a small queue, a window-waiting executor that
  // just drained it is waiting for exactly the requests those submitters
  // hold.
  bool gather_locked(std::deque<pending>& q, const std::string& solver, priority cls,
                     uint64_t tag, std::vector<pending>& batch, std::vector<pending>& dead)
      PP_REQUIRES(m_);

  engine_options opts_;
  context exec_ctx_;  // opts_.ctx with workers = resolved workers_per_run

  mutable sync::mutex m_;
  std::condition_variable_any not_empty_;  // executors wait here
  std::condition_variable_any not_full_;   // blocked submitters wait here
  // [0] = batch class, [1] = interactive; everything in [0] when
  // priority_classes is off. Capacity bounds the sum of *entries*; deduped
  // waiters ride their leader's slot and are not counted.
  std::deque<pending> queues_[2] PP_GUARDED_BY(m_);
  bool stopping_ PP_GUARDED_BY(m_) = false;
  // Result cache: LRU list (front = most recent) + key index into it.
  struct cache_entry {
    result_key key;
    response resp;
  };
  std::list<cache_entry> lru_ PP_GUARDED_BY(m_);
  std::map<result_key, std::list<cache_entry>::iterator> cache_ PP_GUARDED_BY(m_);
  // In-flight dedup: keys currently in a batch window or executing.
  std::map<result_key, std::shared_ptr<fanout>> running_ PP_GUARDED_BY(m_);
  // Session affinity order books (erased when a session fully drains).
  std::map<std::string, session_state> sessions_ PP_GUARDED_BY(m_);
  // Flush identity: each executor iteration that pops a head draws a tag;
  // session entries claimed under one tag share one flush.
  uint64_t flush_tag_ PP_GUARDED_BY(m_) = 0;

  std::vector<std::thread> executors_;
  std::once_flag join_once_;

  std::atomic<uint64_t> anon_seq_{0};  // anonymous-seed counter (engine-wide)
  std::atomic<unsigned> inflight_{0};
  std::atomic<unsigned> peak_inflight_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> deduped_{0};
  std::atomic<uint64_t> exec_nanos_{0};
};

}  // namespace pp::serve
