// Synthetic graph generators.
//
// The paper evaluates SSSP on Twitter/Friendster (proprietary-scale
// downloads) and mentions road graphs from OpenStreetMap. Those inputs are
// not available offline, so the benchmarks substitute synthetic graphs
// exercising the same regimes (see DESIGN.md §3):
//   * rmat_graph       — low-diameter, skewed-degree "social network" proxy;
//   * random_graph     — Erdős–Rényi, low diameter, uniform degrees;
//   * grid_graph       — 2D mesh, high diameter, small frontiers ("road").
#pragma once

#include <cstdint>

#include "graph/csr.h"

namespace pp {

// Erdős–Rényi-style: m undirected edges sampled uniformly (duplicates and
// self-loops dropped, so the result has at most m edges).
graph random_graph(vertex_t n, size_t m, uint64_t seed);

// RMAT (Chakrabarti et al.) power-law generator with standard parameters
// a=0.57 b=0.19 c=0.19: skewed degrees, small diameter.
graph rmat_graph(vertex_t n, size_t m, uint64_t seed);

// rows x cols 4-neighbor mesh.
graph grid_graph(vertex_t rows, vertex_t cols);

// Directed weighted view of an undirected graph: each direction gets the
// same weight, uniform in [w_min, w_max].
wgraph add_weights(const graph& g, uint32_t w_min, uint32_t w_max, uint64_t seed);

}  // namespace pp
