// Graph substrate: CSR adjacency for unweighted (undirected) and weighted
// (directed) graphs, and a builder from edge lists.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "parallel/api.h"
#include "parallel/primitives.h"
#include "parallel/sort.h"

namespace pp {

using vertex_t = uint32_t;

struct edge {
  vertex_t u;
  vertex_t v;
  friend bool operator<(const edge& a, const edge& b) {
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  }
  friend bool operator==(const edge& a, const edge& b) { return a.u == b.u && a.v == b.v; }
};

// Undirected simple graph in CSR form. Each undirected edge {u,v} appears
// as both (u,v) and (v,u) in the adjacency; neighbor lists are sorted.
class graph {
 public:
  graph() = default;

  // Build from an undirected edge list; self-loops and duplicates are
  // removed, and both directions are materialized.
  static graph from_edges(vertex_t n, std::vector<edge> edges) {
    // symmetrize
    size_t m = edges.size();
    std::vector<edge> dir(2 * m);
    parallel_for(0, m, [&](size_t i) {
      dir[2 * i] = edges[i];
      dir[2 * i + 1] = {edges[i].v, edges[i].u};
    });
    // sort, drop self-loops + duplicates
    sort_inplace(std::span<edge>(dir));
    auto keep = pack(std::span<const edge>(dir), [&](size_t i) {
      if (dir[i].u == dir[i].v) return false;
      return i == 0 || !(dir[i] == dir[i - 1]);
    });
    graph g;
    g.n_ = n;
    g.offsets_.assign(n + 1, 0);
    g.adj_.resize(keep.size());
    parallel_for(0, keep.size(), [&](size_t i) { g.adj_[i] = keep[i].v; });
    // offsets: count per source
    std::vector<size_t> deg(n, 0);
    for (auto& e : keep) deg[e.u]++;  // serial: cheap vs the sort above
    for (vertex_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
    return g;
  }

  vertex_t num_vertices() const { return n_; }
  size_t num_directed_edges() const { return adj_.size(); }
  size_t num_edges() const { return adj_.size() / 2; }

  std::span<const vertex_t> neighbors(vertex_t v) const {
    return std::span<const vertex_t>(adj_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]);
  }
  size_t degree(vertex_t v) const { return offsets_[v + 1] - offsets_[v]; }
  vertex_t max_degree() const {
    vertex_t d = 0;
    for (vertex_t v = 0; v < n_; ++v) d = std::max<vertex_t>(d, static_cast<vertex_t>(degree(v)));
    return d;
  }

 private:
  vertex_t n_ = 0;
  std::vector<size_t> offsets_;
  std::vector<vertex_t> adj_;
};

// Weighted directed graph in CSR form (used by SSSP). Positive integer
// weights.
class wgraph {
 public:
  struct wedge {
    vertex_t u;
    vertex_t v;
    uint32_t w;
  };

  wgraph() = default;

  static wgraph from_edges(vertex_t n, std::vector<wedge> edges) {
    sort_inplace(std::span<wedge>(edges), [](const wedge& a, const wedge& b) {
      if (a.u != b.u) return a.u < b.u;
      return a.v < b.v;
    });
    wgraph g;
    g.n_ = n;
    g.offsets_.assign(n + 1, 0);
    g.adj_.resize(edges.size());
    g.wts_.resize(edges.size());
    parallel_for(0, edges.size(), [&](size_t i) {
      g.adj_[i] = edges[i].v;
      g.wts_[i] = edges[i].w;
    });
    std::vector<size_t> deg(n, 0);
    for (auto& e : edges) deg[e.u]++;
    for (vertex_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
    return g;
  }

  // Build from an edge list already sorted by (u, v) with no duplicates —
  // the invariant the session store's persistent edge map maintains
  // (src/serve/session.cpp). Skips from_edges' O(m log m) re-sort: one
  // O(m) scatter, so materializing a delta'd version costs a linear merge
  // plus this.
  static wgraph from_sorted_edges(vertex_t n, std::span<const wedge> edges) {
    wgraph g;
    g.n_ = n;
    g.offsets_.assign(n + 1, 0);
    g.adj_.resize(edges.size());
    g.wts_.resize(edges.size());
    parallel_for(0, edges.size(), [&](size_t i) {
      g.adj_[i] = edges[i].v;
      g.wts_[i] = edges[i].w;
    });
    std::vector<size_t> deg(n, 0);
    for (const auto& e : edges) deg[e.u]++;
    for (vertex_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
    return g;
  }

  // Adopt prebuilt CSR arrays: offsets.size() == n + 1, monotone, with
  // adj/wts of size offsets[n] holding per-vertex neighbor runs sorted by
  // target and deduplicated. The zero-copy landing pad for the session
  // store's single-pass delta merge (src/serve/session.cpp), which emits
  // the child version's arrays directly instead of round-tripping through
  // an edge list.
  static wgraph from_csr(vertex_t n, std::vector<size_t> offsets, std::vector<vertex_t> adj,
                         std::vector<uint32_t> wts) {
    wgraph g;
    g.n_ = n;
    g.offsets_ = std::move(offsets);
    g.adj_ = std::move(adj);
    g.wts_ = std::move(wts);
    return g;
  }

  vertex_t num_vertices() const { return n_; }
  size_t num_edges() const { return adj_.size(); }

  std::span<const vertex_t> out_neighbors(vertex_t v) const {
    return std::span<const vertex_t>(adj_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]);
  }
  std::span<const uint32_t> out_weights(vertex_t v) const {
    return std::span<const uint32_t>(wts_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]);
  }
  size_t out_degree(vertex_t v) const { return offsets_[v + 1] - offsets_[v]; }

  uint32_t min_weight() const {
    uint32_t w = ~0u;
    for (auto x : wts_) w = std::min(w, x);
    return w;
  }
  uint32_t max_weight() const {
    uint32_t w = 0;
    for (auto x : wts_) w = std::max(w, x);
    return w;
  }

 private:
  vertex_t n_ = 0;
  std::vector<size_t> offsets_;
  std::vector<vertex_t> adj_;
  std::vector<uint32_t> wts_;
};

}  // namespace pp
