#include "graph/generators.h"

#include "parallel/random.h"

namespace pp {

graph random_graph(vertex_t n, size_t m, uint64_t seed) {
  random_stream rs(seed);
  auto edges = tabulate<edge>(m, [&](size_t i) {
    return edge{static_cast<vertex_t>(rs.ith_bounded(2 * i, n)),
                static_cast<vertex_t>(rs.ith_bounded(2 * i + 1, n))};
  });
  return graph::from_edges(n, std::move(edges));
}

graph rmat_graph(vertex_t n, size_t m, uint64_t seed) {
  // Round n up to a power of two for the quadrant recursion, then reject
  // endpoints >= n (regenerated deterministically via salted retries).
  uint32_t levels = 0;
  while ((1u << levels) < n) ++levels;
  constexpr double a = 0.57, b = 0.19, c = 0.19;  // d = 0.05
  random_stream rs(seed);
  auto gen_edge = [&](uint64_t key) {
    vertex_t u = 0, v = 0;
    for (uint32_t l = 0; l < levels; ++l) {
      double r = random_stream(key).ith_double(l);
      u <<= 1;
      v <<= 1;
      if (r < a) {
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    return edge{u, v};
  };
  auto edges = tabulate<edge>(m, [&](size_t i) {
    for (uint64_t attempt = 0;; ++attempt) {
      edge e = gen_edge(rs.ith(i * 64 + attempt));
      if (e.u < n && e.v < n) return e;
    }
  });
  return graph::from_edges(n, std::move(edges));
}

graph grid_graph(vertex_t rows, vertex_t cols) {
  size_t m = static_cast<size_t>(rows) * (cols - 1) + static_cast<size_t>(cols) * (rows - 1);
  std::vector<edge> edges(m);
  auto id = [&](vertex_t r, vertex_t c) { return r * cols + c; };
  size_t horiz = static_cast<size_t>(rows) * (cols - 1);
  parallel_for(0, horiz, [&](size_t i) {
    vertex_t r = static_cast<vertex_t>(i / (cols - 1));
    vertex_t c = static_cast<vertex_t>(i % (cols - 1));
    edges[i] = {id(r, c), id(r, c + 1)};
  });
  parallel_for(0, static_cast<size_t>(cols) * (rows - 1), [&](size_t i) {
    vertex_t c = static_cast<vertex_t>(i / (rows - 1));
    vertex_t r = static_cast<vertex_t>(i % (rows - 1));
    edges[horiz + i] = {id(r, c), id(r + 1, c)};
  });
  return graph::from_edges(static_cast<vertex_t>(rows) * cols, std::move(edges));
}

wgraph add_weights(const graph& g, uint32_t w_min, uint32_t w_max, uint64_t seed) {
  random_stream rs(seed);
  vertex_t n = g.num_vertices();
  std::vector<wgraph::wedge> edges(g.num_directed_edges());
  // Weight keyed on the canonical (min,max) endpoint pair so both
  // directions of an undirected edge agree.
  std::vector<size_t> offs(n + 1, 0);
  for (vertex_t v = 0; v < n; ++v) offs[v + 1] = offs[v] + g.degree(v);
  parallel_for(0, n, [&](size_t v) {
    auto nbrs = g.neighbors(static_cast<vertex_t>(v));
    for (size_t j = 0; j < nbrs.size(); ++j) {
      vertex_t u = static_cast<vertex_t>(v), w = nbrs[j];
      uint64_t key = std::min(u, w) * (static_cast<uint64_t>(1) << 32) | std::max(u, w);
      uint32_t wt = static_cast<uint32_t>(
          rs.ith_range(hash64(key), static_cast<int64_t>(w_min), static_cast<int64_t>(w_max)));
      edges[offs[v] + j] = {u, w, wt};
    }
  });
  return wgraph::from_edges(n, std::move(edges));
}

}  // namespace pp
