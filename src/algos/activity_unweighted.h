// Unweighted activity selection (Sec. 5.1, Theorem 5.3).
//
// With unit weights the DP collapses to dp[i] = dp[pivot(i)] + 1 where
// pivot(i) is the latest-starting compatible predecessor (Lemma 5.1), so
// the dependence graph is a forest and the answer is its depth. The paper
// computes depths by tree contraction in O(n) work / O(log n) span whp; we
// use pointer jumping (doubling) instead — O(n log r) work, O(log n log r)
// span for answer r — a documented deviation (DESIGN.md §4.2) with the
// same output.
//
// The answer (max rank) equals the size of the classic earliest-end greedy
// solution, which we also implement as the sequential baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algos/activity.h"
#include "core/context.h"
#include "core/stats.h"

namespace pp {

struct unweighted_activity_result {
  std::vector<int32_t> rank;  // rank (= dp value) per activity
  int64_t best = 0;           // max #compatible activities
  phase_stats stats;
};

// Classic earliest-end greedy; returns the selected count (and marks ranks
// of selected activities only as 1,2,3,... along the greedy chain; other
// entries are 0).
unweighted_activity_result activity_unweighted_greedy_seq(std::span<const activity> acts);

// Pivot-forest + pointer-jumping parallel algorithm (simple variant:
// O(n log r) work).
unweighted_activity_result activity_unweighted_parallel(std::span<const activity> acts);

// Pivot-forest + Euler-tour depth computation via weighted list ranking —
// the contraction-based O(n)-work route of Theorem 5.3. Same output.
unweighted_activity_result activity_unweighted_euler(std::span<const activity> acts);

// Context forms. The parallel variants draw their contraction seed from
// ctx.seed.
unweighted_activity_result activity_unweighted_greedy_seq(std::span<const activity> acts,
                                                          const context& ctx);
unweighted_activity_result activity_unweighted_parallel(std::span<const activity> acts,
                                                        const context& ctx);
unweighted_activity_result activity_unweighted_euler(std::span<const activity> acts,
                                                     const context& ctx);

}  // namespace pp
