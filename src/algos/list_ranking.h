// Parallel list ranking via phase-parallel list contraction (Sec. 5.3
// "Other Algorithms": random permutation, list ranking and tree
// contraction have constant-size P(x), so the TAS-tree wake-up specializes
// to a constant-size readiness check).
//
// The sequential iterative algorithm splices nodes out of a linked list in
// random priority order, accumulating edge weights; replaying the splices
// backwards yields every node's rank (distance from the head). A node may
// be spliced as soon as both its current neighbors have higher priority —
// the same local-minimum rule as greedy MIS restricted to a path — and
// with random priorities the dependence depth is O(log n) whp.
//
// contraction rounds run the splices phase-parallel; the expansion replays
// them round by round in reverse. Output: rank[v] = #nodes before v.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/context.h"
#include "core/stats.h"

namespace pp {

struct list_ranking_result {
  std::vector<uint64_t> rank;  // position of each node in list order
  phase_stats stats;           // rounds = contraction rounds
};

// next[v] = successor of v, or kListEnd; exactly one head (no incoming
// edge). The list must be a single chain covering all n nodes.
inline constexpr uint32_t kListEnd = 0xFFFFFFFFu;

// O(n) sequential traversal (baseline).
list_ranking_result list_ranking_seq(std::span<const uint32_t> next);
list_ranking_result list_ranking_seq(std::span<const uint32_t> next, const context& ctx);

// Phase-parallel contraction/expansion; same output. The context form
// draws the contraction priorities from ctx.seed; the positional form
// requires the seed explicitly (no hidden default).
list_ranking_result list_ranking_parallel(std::span<const uint32_t> next, uint64_t seed);
list_ranking_result list_ranking_parallel(std::span<const uint32_t> next, const context& ctx);

struct weighted_ranking_result {
  std::vector<int64_t> rank;  // sum of weights of nodes strictly before v
  phase_stats stats;
};

// Weighted generalization: rank[v] = sum of w[u] over nodes u strictly
// before v in list order (weights may be negative — used for Euler-tour
// depth computation). Same contraction algorithm.
weighted_ranking_result list_ranking_weighted_seq(std::span<const uint32_t> next,
                                                  std::span<const int64_t> w);
weighted_ranking_result list_ranking_weighted_seq(std::span<const uint32_t> next,
                                                  std::span<const int64_t> w,
                                                  const context& ctx);
weighted_ranking_result list_ranking_weighted_parallel(std::span<const uint32_t> next,
                                                       std::span<const int64_t> w,
                                                       uint64_t seed);
weighted_ranking_result list_ranking_weighted_parallel(std::span<const uint32_t> next,
                                                       std::span<const int64_t> w,
                                                       const context& ctx);

// Depth of every node of a forest (roots have depth 1), via an Euler tour
// ranked with +1/-1 weights — the standard tree-contraction route the
// paper invokes for Theorem 5.3. parent[v] = kListEnd for roots. O(n)
// work, polylog span whp.
weighted_ranking_result forest_depths_euler(std::span<const uint32_t> parent, uint64_t seed);
weighted_ranking_result forest_depths_euler(std::span<const uint32_t> parent,
                                            const context& ctx);

// A random chain over n nodes (for tests/benches): returns next[].
std::vector<uint32_t> random_list(size_t n, uint64_t seed);

}  // namespace pp
