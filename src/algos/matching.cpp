#include "algos/matching.h"

#include <algorithm>
#include <atomic>

#include "core/cancel.h"
#include "parallel/api.h"
#include "parallel/primitives.h"
#include "parallel/sort.h"

namespace pp {

std::vector<edge> canonical_edges(const graph& g) {
  std::vector<edge> out;
  out.reserve(g.num_edges());
  for (vertex_t v = 0; v < g.num_vertices(); ++v)
    for (auto u : g.neighbors(v))
      if (v < u) out.push_back({v, u});
  return out;
}

matching_result matching_sequential(const graph& g, std::span<const uint32_t> edge_priority) {
  auto edges = canonical_edges(g);
  matching_result res;
  res.partner.assign(g.num_vertices(), kUnmatched);
  auto order = sort_indices(edges.size(), [&](uint32_t a, uint32_t b) {
    return edge_priority[a] < edge_priority[b];
  });
  for (auto e : order) {
    auto [u, v] = edges[e];
    if (res.partner[u] == kUnmatched && res.partner[v] == kUnmatched) {
      res.partner[u] = v;
      res.partner[v] = u;
      res.matching_size++;
    }
  }
  return res;
}

matching_result matching_rounds(const graph& g, std::span<const uint32_t> edge_priority) {
  auto edges = canonical_edges(g);
  size_t m = edges.size();
  matching_result res;
  res.partner.assign(g.num_vertices(), kUnmatched);

  // Per-vertex incidence lists sorted by edge priority.
  vertex_t n = g.num_vertices();
  std::vector<size_t> voff(n + 1, 0);
  for (auto& e : edges) {
    voff[e.u + 1]++;
    voff[e.v + 1]++;
  }
  for (vertex_t v = 0; v < n; ++v) voff[v + 1] += voff[v];
  std::vector<uint32_t> incident(2 * m);
  {
    std::vector<size_t> cursor(voff.begin(), voff.end() - 1);
    for (uint32_t e = 0; e < m; ++e) {
      incident[cursor[edges[e].u]++] = e;
      incident[cursor[edges[e].v]++] = e;
    }
  }
  parallel_for(0, n, [&](size_t v) {
    std::sort(incident.begin() + voff[v], incident.begin() + voff[v + 1],
              [&](uint32_t a, uint32_t b) { return edge_priority[a] < edge_priority[b]; });
  });

  // head[v] = index into incident[] of the first undecided edge at v.
  std::vector<size_t> head(n);
  parallel_for(0, n, [&](size_t v) { head[v] = voff[v]; });
  // 0 undecided, 1 matched, 2 dropped
  std::vector<std::atomic<uint8_t>> estate(m);
  parallel_for(0, m, [&](size_t e) { estate[e].store(0, std::memory_order_relaxed); });

  auto advance_head = [&](vertex_t v) {
    while (head[v] < voff[v + 1] &&
           estate[incident[head[v]]].load(std::memory_order_relaxed) != 0)
      head[v]++;
  };

  // Candidates for "locally first at both endpoints": start with all
  // vertices' heads; after each round only endpoints whose head moved can
  // produce new ready edges.
  auto live_vertices = tabulate<vertex_t>(n, [](size_t v) { return static_cast<vertex_t>(v); });
  size_t undecided = m;
  while (undecided > 0) {
    cancel_point();  // between matching rounds: quiescent, cancellable
    // collect ready edges: first undecided at both endpoints
    std::vector<uint32_t> ready;
    for (auto v : live_vertices) {
      advance_head(v);
      if (head[v] >= voff[v + 1]) continue;
      uint32_t e = incident[head[v]];
      auto [a, b] = edges[e];
      vertex_t other = a == v ? b : a;
      advance_head(other);
      if (head[other] < voff[other + 1] && incident[head[other]] == e && v < other)
        ready.push_back(e);
    }
    if (ready.empty()) break;  // all remaining edges are decided
    res.stats.record_frontier(ready.size());
    // Decide ready edges: both endpoints are free (all earlier incident
    // edges are decided and did not match them — else this edge would have
    // been dropped), so they match.
    parallel_for(0, ready.size(), [&](size_t i) {
      uint32_t e = ready[i];
      estate[e].store(1, std::memory_order_relaxed);
      res.partner[edges[e].u] = edges[e].v;
      res.partner[edges[e].v] = edges[e].u;
    });
    res.matching_size += ready.size();
    undecided -= ready.size();
    // Drop undecided edges incident to newly matched vertices.
    std::atomic<size_t> dropped{0};
    parallel_for(0, ready.size(), [&](size_t i) {
      uint32_t e = ready[i];
      for (vertex_t v : {edges[e].u, edges[e].v}) {
        for (size_t j = voff[v]; j < voff[v + 1]; ++j) {
          uint32_t f = incident[j];
          uint8_t expect = 0;
          if (estate[f].compare_exchange_strong(expect, 2, std::memory_order_relaxed))
            dropped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    undecided -= dropped.load();
  }
  return res;
}

bool is_maximal_matching(const graph& g, std::span<const uint32_t> partner) {
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    if (partner[v] != kUnmatched) {
      if (partner[v] >= g.num_vertices()) return false;
      if (partner[partner[v]] != v) return false;
      auto nbrs = g.neighbors(v);
      if (std::find(nbrs.begin(), nbrs.end(), partner[v]) == nbrs.end()) return false;
    }
  }
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    if (partner[v] != kUnmatched) continue;
    for (auto u : g.neighbors(v))
      if (partner[u] == kUnmatched) return false;  // both free: not maximal
  }
  return true;
}

matching_result matching_sequential(const graph& g, std::span<const uint32_t> edge_priority,
                                    const context& ctx) {
  run_scope scope(ctx);
  return matching_sequential(g, edge_priority);
}

matching_result matching_rounds(const graph& g, std::span<const uint32_t> edge_priority,
                                const context& ctx) {
  run_scope scope(ctx);
  return matching_rounds(g, edge_priority);
}

}  // namespace pp
