// Unlimited (unbounded) knapsack (Sec. 4.2).
//
// dp[j] = max(0, max_{w_i <= j} dp[j - w_i] + v_i)  for j = 0..W  (Eq. 2).
// The rank of state j is floor(j / w*), w* the minimum item weight: states
// within one w*-window cannot depend on each other, so the phase-parallel
// frontier of round r is the whole window [r*w*, (r+1)*w*) processed in
// parallel (Theorem 4.3: O(nW) work, O((W/w*) log n) span).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/context.h"
#include "core/stats.h"

namespace pp {

struct knapsack_item {
  int64_t weight;  // >= 1
  int64_t value;   // >= 0
};

struct knapsack_result {
  std::vector<int64_t> dp;  // dp[0..W]
  int64_t best = 0;         // dp[W]
  phase_stats stats;
};

// Classic sequential O(nW) DP.
knapsack_result knapsack_seq(int64_t W, std::span<const knapsack_item> items);
knapsack_result knapsack_seq(int64_t W, std::span<const knapsack_item> items,
                             const context& ctx);

// Phase-parallel windows of width w* (Theorem 4.3).
knapsack_result knapsack_parallel(int64_t W, std::span<const knapsack_item> items);
knapsack_result knapsack_parallel(int64_t W, std::span<const knapsack_item> items,
                                  const context& ctx);

// Random items with weights in [w_min, w_max], values in [1, v_max].
std::vector<knapsack_item> random_items(size_t n, int64_t w_min, int64_t w_max, int64_t v_max,
                                        uint64_t seed);

}  // namespace pp
