#include "algos/whac.h"

#include <algorithm>

#include "core/fenwick.h"
#include "parallel/random.h"
#include "parallel/sort.h"
#include "rangetree/range_tree2d.h"

namespace pp {

namespace {

struct uv_point {
  int64_t u;    // t + p
  int64_t v;    // t - p
  uint32_t id;  // original index
};

std::vector<uv_point> to_uv_sorted(std::span<const mole> moles) {
  auto pts = tabulate<uv_point>(moles.size(), [&](size_t i) {
    return uv_point{moles[i].t + moles[i].p, moles[i].t - moles[i].p, static_cast<uint32_t>(i)};
  });
  sort_inplace(std::span<uv_point>(pts), [](const uv_point& a, const uv_point& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.id < b.id;
  });
  return pts;
}

// qx[i] = number of points with u strictly smaller than point i's u, so
// ties in u never dominate each other.
std::vector<uint32_t> strict_u_bounds(const std::vector<uv_point>& pts) {
  size_t n = pts.size();
  std::vector<uint32_t> qx(n);
  parallel_for(0, n, [&](size_t i) {
    size_t lo = i;
    // walk back over the tie group; groups are contiguous after sorting
    while (lo > 0 && pts[lo - 1].u == pts[i].u) --lo;
    qx[i] = static_cast<uint32_t>(lo);
  });
  return qx;
}

}  // namespace

whac_result whac_sequential(std::span<const mole> moles) {
  size_t n = moles.size();
  whac_result res;
  res.dp.assign(n, 0);
  if (n == 0) return res;
  auto pts = to_uv_sorted(moles);
  auto vvals = tabulate<int64_t>(n, [&](size_t i) { return pts[i].v; });
  auto vr = compute_y_ranks(std::span<const int64_t>(vvals));
  fenwick_max<int64_t> fw(n, 0);
  int64_t best = 0;
  // Process u-tie groups together: first query everyone in the group, then
  // insert the group's dp values (ties must not see each other).
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && pts[j].u == pts[i].u) ++j;
    for (size_t k = i; k < j; ++k) {
      int64_t dp = 1 + std::max<int64_t>(fw.prefix_max(vr[k]), 0);
      res.dp[pts[k].id] = static_cast<int32_t>(dp);
      best = std::max(best, dp);
    }
    for (size_t k = i; k < j; ++k) fw.raise(vr[k], res.dp[pts[k].id]);
    i = j;
  }
  res.best = best;
  return res;
}

whac_result whac_bruteforce(std::span<const mole> moles) {
  size_t n = moles.size();
  whac_result res;
  res.dp.assign(n, 0);
  // O(n^2): dp in any topological order of the strict dominance; iterate to
  // fixpoint over u-sorted order (single pass suffices since u is sorted).
  auto pts = to_uv_sorted(moles);
  int64_t best = 0;
  for (size_t i = 0; i < n; ++i) {
    int32_t b = 0;
    for (size_t j = 0; j < i; ++j) {
      if (pts[j].u < pts[i].u && pts[j].v < pts[i].v)
        b = std::max(b, res.dp[pts[j].id]);
    }
    res.dp[pts[i].id] = 1 + b;
    best = std::max<int64_t>(best, 1 + b);
  }
  res.best = best;
  return res;
}

whac_result whac_parallel(std::span<const mole> moles, pivot_policy policy, uint64_t seed) {
  size_t n = moles.size();
  whac_result res;
  res.dp.assign(n, 0);
  if (n == 0) return res;
  auto pts = to_uv_sorted(moles);
  auto vvals = tabulate<int64_t>(n, [&](size_t i) { return pts[i].v; });
  auto vr = compute_y_ranks(std::span<const int64_t>(vvals));
  auto qx = strict_u_bounds(pts);
  auto dom = dominance_dp(vr, qx, {}, policy, seed);
  parallel_for(0, n, [&](size_t i) { res.dp[pts[i].id] = dom.dp[i]; });
  res.best = dom.best;
  res.stats = dom.stats;
  return res;
}

std::vector<mole> random_moles(size_t n, int64_t t_range, int64_t p_range, uint64_t seed) {
  random_stream rs(seed);
  return tabulate<mole>(n, [&](size_t i) {
    return mole{rs.ith_range(2 * i, 0, std::max<int64_t>(t_range, 1) - 1),
                rs.ith_range(2 * i + 1, 0, std::max<int64_t>(p_range, 1) - 1)};
  });
}

whac_result whac_sequential(std::span<const mole> moles, const context& ctx) {
  run_scope scope(ctx);
  return whac_sequential(moles);
}

whac_result whac_parallel(std::span<const mole> moles, const context& ctx) {
  run_scope scope(ctx);
  return whac_parallel(moles, ctx.pivot, ctx.seed);
}

}  // namespace pp
