#include "algos/relaxed.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "core/cancel.h"
#include "parallel/api.h"
#include "parallel/multiqueue.h"
#include "parallel/primitives.h"

namespace pp {

namespace {

void fold_counters(phase_stats& st, const mq_counters& c) {
  st.popped = c.popped;
  st.wasted = c.wasted;
  st.retries = c.retries;
}

}  // namespace

// ---- MIS --------------------------------------------------------------------
//
// Every vertex sits in the queue (re-inserting itself while blocked), and
// decides itself the moment all earlier-priority neighbors are decided:
// selected iff none of them was selected. Two adjacent vertices can never
// both be "ready" (one blocks the other), so the decision reads only final
// write-once states and the result is exactly the greedy MIS.
mis_result mis_relaxed(const graph& g, std::span<const uint32_t> priority) {
  const context ctx = current_context();
  const vertex_t n = g.num_vertices();
  mis_result res;
  res.in_mis.assign(n, 0);

  // 0 undecided, 1 selected, 2 removed; written once, on decision.
  std::vector<std::atomic<uint8_t>> status(n);
  parallel_for(ctx, 0, n, [&](size_t v) { status[v].store(0, std::memory_order_relaxed); });

  multiqueue q(ctx.relax_k);
  {
    const random_stream seed_rs(ctx.seed);
    uint64_t draw = 0;
    for (vertex_t v = 0; v < n; ++v) q.push(priority[v], v, seed_rs, draw);
  }

  mq_counters c = mq_run(ctx, q, [&](mq_worker& w, uint64_t prio, uint32_t v) {
    if (status[v].load(std::memory_order_acquire) != 0) {
      w.wasted();
      return;
    }
    const uint32_t pv = priority[v];
    bool selected_nbr = false;
    for (auto u : g.neighbors(v)) {
      if (priority[u] >= pv) continue;
      uint8_t s = status[u].load(std::memory_order_acquire);
      if (s == 0) {
        w.retry(prio, v);  // blocked: back into the queue
        return;
      }
      selected_nbr |= s == 1;
    }
    status[v].store(selected_nbr ? 2 : 1, std::memory_order_release);
  });

  parallel_for(ctx, 0, n, [&](size_t v) {
    res.in_mis[v] = status[v].load(std::memory_order_relaxed) == 1;
  });
  for (vertex_t v = 0; v < n; ++v) res.mis_size += res.in_mis[v];
  res.stats.processed = n;
  fold_counters(res.stats, c);
  return res;
}

// ---- Coloring ---------------------------------------------------------------
coloring_result coloring_relaxed(const graph& g, std::span<const uint32_t> priority) {
  const context ctx = current_context();
  const vertex_t n = g.num_vertices();
  constexpr uint32_t kUncolored = 0xFFFFFFFFu;

  // A vertex's color doubles as its decided flag (write-once).
  std::vector<std::atomic<uint32_t>> color(n);
  parallel_for(ctx, 0, n,
               [&](size_t v) { color[v].store(kUncolored, std::memory_order_relaxed); });

  multiqueue q(ctx.relax_k);
  {
    const random_stream seed_rs(ctx.seed);
    uint64_t draw = 0;
    for (vertex_t v = 0; v < n; ++v) q.push(priority[v], v, seed_rs, draw);
  }

  mq_counters c = mq_run(ctx, q, [&](mq_worker& w, uint64_t prio, uint32_t v) {
    if (color[v].load(std::memory_order_acquire) != kUncolored) {
      w.wasted();
      return;
    }
    const uint32_t pv = priority[v];
    // mex over earlier-priority neighbors: with b of them, the answer is
    // <= b, so a b+1 bitmap suffices (same bound mex_color uses).
    auto nbrs = g.neighbors(v);
    std::vector<uint8_t> used(nbrs.size() + 1, 0);
    for (auto u : nbrs) {
      if (priority[u] >= pv) continue;
      uint32_t cu = color[u].load(std::memory_order_acquire);
      if (cu == kUncolored) {
        w.retry(prio, v);
        return;
      }
      if (cu < used.size()) used[cu] = 1;
    }
    uint32_t cv = 0;
    while (used[cv]) ++cv;
    color[v].store(cv, std::memory_order_release);
  });

  coloring_result res;
  res.color.assign(n, kUncolored);
  parallel_for(ctx, 0, n,
               [&](size_t v) { res.color[v] = color[v].load(std::memory_order_relaxed); });
  for (auto cv : res.color) res.num_colors = std::max(res.num_colors, cv + 1);
  res.stats.processed = n;
  fold_counters(res.stats, c);
  return res;
}

// ---- Matching ---------------------------------------------------------------
//
// Queue elements are canonical edge indices, priority = edge rank. An edge
// is ready once every earlier-priority edge sharing an endpoint is decided
// (so the endpoints' matched state is final): matched iff both endpoints
// are still free. No drop propagation — an edge whose endpoint was taken
// drops *itself* when it becomes ready, which keeps every estate/partner
// write single-writer and the result exactly the greedy matching.
matching_result matching_relaxed(const graph& g, std::span<const uint32_t> edge_priority) {
  const context ctx = current_context();
  const vertex_t n = g.num_vertices();
  const auto edges = canonical_edges(g);
  const size_t m = edges.size();

  // Per-vertex incidence lists sorted by edge priority (as matching_rounds).
  std::vector<size_t> voff(n + 1, 0);
  for (const auto& e : edges) {
    voff[e.u + 1]++;
    voff[e.v + 1]++;
  }
  for (vertex_t v = 0; v < n; ++v) voff[v + 1] += voff[v];
  std::vector<uint32_t> incident(2 * m);
  {
    std::vector<size_t> cursor(voff.begin(), voff.end() - 1);
    for (uint32_t e = 0; e < m; ++e) {
      incident[cursor[edges[e].u]++] = e;
      incident[cursor[edges[e].v]++] = e;
    }
  }
  parallel_for(ctx, 0, n, [&](size_t v) {
    std::sort(incident.begin() + voff[v], incident.begin() + voff[v + 1],
              [&](uint32_t a, uint32_t b) { return edge_priority[a] < edge_priority[b]; });
  });

  // 0 undecided, 1 matched, 2 dropped; written once by the edge's own claim.
  std::vector<std::atomic<uint8_t>> estate(m);
  parallel_for(ctx, 0, m, [&](size_t e) { estate[e].store(0, std::memory_order_relaxed); });
  std::vector<std::atomic<uint32_t>> partner(n);
  parallel_for(ctx, 0, n,
               [&](size_t v) { partner[v].store(kUnmatched, std::memory_order_relaxed); });
  // Monotone skip hint: everything in incident[voff[v], hint[v]) is
  // decided. Advancing is a benign CAS-max — the truth is re-derived from
  // estate on every scan, the hint only bounds rescans.
  std::vector<std::atomic<size_t>> hint(n);
  parallel_for(ctx, 0, n, [&](size_t v) { hint[v].store(voff[v], std::memory_order_relaxed); });

  // Index of v's first undecided incident edge (voff[v+1] if none).
  auto first_undecided = [&](vertex_t v) -> size_t {
    size_t h = hint[v].load(std::memory_order_relaxed);
    while (h < voff[v + 1] && estate[incident[h]].load(std::memory_order_acquire) != 0) ++h;
    write_max(&hint[v], h);
    return h;
  };

  multiqueue q(ctx.relax_k);
  {
    const random_stream seed_rs(ctx.seed);
    uint64_t draw = 0;
    for (uint32_t e = 0; e < m; ++e) q.push(edge_priority[e], e, seed_rs, draw);
  }

  mq_counters c = mq_run(ctx, q, [&](mq_worker& w, uint64_t prio, uint32_t e) {
    if (estate[e].load(std::memory_order_acquire) != 0) {
      w.wasted();
      return;
    }
    const auto [u, v] = edges[e];
    size_t hu = first_undecided(u);
    if (hu >= voff[u + 1] || incident[hu] != e) {
      w.retry(prio, e);  // an earlier edge at u is still undecided
      return;
    }
    size_t hv = first_undecided(v);
    if (hv >= voff[v + 1] || incident[hv] != e) {
      w.retry(prio, e);
      return;
    }
    // Every earlier incident edge at u and v is decided, so the endpoints'
    // matched state is final (only earlier edges could have taken them).
    bool u_free = partner[u].load(std::memory_order_acquire) == kUnmatched;
    bool v_free = partner[v].load(std::memory_order_acquire) == kUnmatched;
    if (u_free && v_free) {
      partner[u].store(v, std::memory_order_relaxed);
      partner[v].store(u, std::memory_order_relaxed);
      estate[e].store(1, std::memory_order_release);  // publishes the partner writes
    } else {
      estate[e].store(2, std::memory_order_release);
    }
  });

  matching_result res;
  res.partner.assign(n, kUnmatched);
  parallel_for(ctx, 0, n,
               [&](size_t v) { res.partner[v] = partner[v].load(std::memory_order_relaxed); });
  for (vertex_t v = 0; v < n; ++v)
    if (res.partner[v] != kUnmatched && res.partner[v] > v) res.matching_size++;
  res.stats.processed = m;
  fold_counters(res.stats, c);
  return res;
}

// ---- SSSP -------------------------------------------------------------------
//
// Relaxed asynchronous Dijkstra: pop an approximately-closest (d, v); if d
// is stale the pop is wasted, otherwise relax v's out-edges with write_min
// and re-insert every neighbor that improved. Settling out of order never
// breaks exactness — an early-settled vertex is re-inserted when a shorter
// path arrives — it only costs wasted pops, which is the relaxation-cost
// curve the ablation measures.
sssp_result sssp_relaxed(const wgraph& g, vertex_t source) {
  const context ctx = current_context();
  const vertex_t n = g.num_vertices();
  std::vector<std::atomic<int64_t>> dist(n);
  parallel_for(ctx, 0, n,
               [&](size_t v) { dist[v].store(kInfDist, std::memory_order_relaxed); });
  std::atomic<size_t> relaxations{0};

  multiqueue q(ctx.relax_k);
  if (n > 0) {
    dist[source].store(0, std::memory_order_relaxed);
    const random_stream seed_rs(ctx.seed);
    uint64_t draw = 0;
    q.push(0, source, seed_rs, draw);
  }

  mq_counters c = mq_run(ctx, q, [&](mq_worker& w, uint64_t prio, uint32_t v) {
    const int64_t d = static_cast<int64_t>(prio);
    if (d > dist[v].load(std::memory_order_acquire)) {
      w.wasted();  // a shorter path already settled v
      return;
    }
    auto nbrs = g.out_neighbors(v);
    auto wts = g.out_weights(v);
    size_t improved = 0;
    for (size_t j = 0; j < nbrs.size(); ++j) {
      int64_t nd = d + wts[j];
      if (write_min(&dist[nbrs[j]], nd)) {
        w.push(static_cast<uint64_t>(nd), nbrs[j]);
        ++improved;
      }
    }
    relaxations.fetch_add(improved, std::memory_order_relaxed);
  });

  sssp_result res;
  res.dist.assign(n, kInfDist);
  parallel_for(ctx, 0, n,
               [&](size_t v) { res.dist[v] = dist[v].load(std::memory_order_relaxed); });
  res.stats.processed = n;
  res.stats.relaxations = relaxations.load(std::memory_order_relaxed);
  fold_counters(res.stats, c);
  return res;
}

// ---- Context forms ----------------------------------------------------------
mis_result mis_relaxed(const graph& g, std::span<const uint32_t> priority, const context& ctx) {
  run_scope scope(ctx);
  return mis_relaxed(g, priority);
}

coloring_result coloring_relaxed(const graph& g, std::span<const uint32_t> priority,
                                 const context& ctx) {
  run_scope scope(ctx);
  return coloring_relaxed(g, priority);
}

matching_result matching_relaxed(const graph& g, std::span<const uint32_t> edge_priority,
                                 const context& ctx) {
  run_scope scope(ctx);
  return matching_relaxed(g, edge_priority);
}

sssp_result sssp_relaxed(const wgraph& g, vertex_t source, const context& ctx) {
  run_scope scope(ctx);
  return sssp_relaxed(g, source);
}

}  // namespace pp
