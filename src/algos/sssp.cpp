#include "algos/sssp.h"

#include <algorithm>
#include <atomic>
#include <queue>

#include "core/cancel.h"
#include "core/trace.h"
#include "parallel/api.h"
#include "parallel/primitives.h"

namespace pp {

sssp_result sssp_dijkstra(const wgraph& g, vertex_t source) {
  sssp_result res;
  res.dist.assign(g.num_vertices(), kInfDist);
  using qe = std::pair<int64_t, vertex_t>;
  std::priority_queue<qe, std::vector<qe>, std::greater<qe>> pq;
  res.dist[source] = 0;
  pq.push({0, source});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d != res.dist[v]) continue;  // stale entry
    res.stats.processed++;
    auto nbrs = g.out_neighbors(v);
    auto wts = g.out_weights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      res.stats.relaxations++;
      int64_t nd = d + wts[i];
      if (nd < res.dist[nbrs[i]]) {
        res.dist[nbrs[i]] = nd;
        pq.push({nd, nbrs[i]});
      }
    }
  }
  return res;
}

namespace {

// Relax all out-edges of `frontier` satisfying `edge_ok(w)`. Returns the
// deduplicated list of vertices whose distance improved. `claimed` must be
// all-zero on entry and is restored to all-zero on exit.
std::vector<vertex_t> relax_edges(const wgraph& g, std::span<std::atomic<int64_t>> dist,
                                  std::span<const vertex_t> frontier,
                                  std::vector<std::atomic<uint8_t>>& claimed, bool light_only,
                                  uint32_t delta, phase_stats& stats) {
  size_t f = frontier.size();
  std::vector<size_t> offs(f + 1, 0);
  parallel_for(0, f, [&](size_t i) { offs[i + 1] = g.out_degree(frontier[i]); });
  size_t total = scan_inclusive(std::span<size_t>(offs.data() + 1, f), size_t{0},
                                std::plus<size_t>{});
  constexpr vertex_t kInvalid = 0xFFFFFFFFu;
  std::vector<vertex_t> out(total, kInvalid);
  parallel_for(0, f, [&](size_t i) {
    vertex_t v = frontier[i];
    int64_t dv = dist[v].load(std::memory_order_relaxed);
    auto nbrs = g.out_neighbors(v);
    auto wts = g.out_weights(v);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      if (light_only ? wts[j] > delta : wts[j] <= delta) continue;
      int64_t nd = dv + wts[j];
      if (write_min(&dist[nbrs[j]], nd)) {
        // claim u once per relax phase
        if (claimed[nbrs[j]].exchange(1, std::memory_order_acq_rel) == 0)
          out[offs[i] + j] = nbrs[j];
      }
    }
  });
  stats.relaxations += total;
  auto changed = pack(std::span<const vertex_t>(out),
                      [&](size_t i) { return out[i] != kInvalid; });
  parallel_for(0, changed.size(), [&](size_t i) {
    claimed[changed[i]].store(0, std::memory_order_relaxed);
  });
  return changed;
}

sssp_result delta_stepping_impl(const wgraph& g, vertex_t source, uint32_t delta,
                                bool single_bucket) {
  sssp_result res;
  vertex_t n = g.num_vertices();
  res.dist.assign(n, kInfDist);
  if (n == 0) return res;
  auto dist = std::vector<std::atomic<int64_t>>(n);
  parallel_for(0, n, [&](size_t v) { dist[v].store(kInfDist, std::memory_order_relaxed); });
  dist[source].store(0, std::memory_order_relaxed);
  auto claimed = std::vector<std::atomic<uint8_t>>(n);
  parallel_for(0, n, [&](size_t v) { claimed[v].store(0, std::memory_order_relaxed); });

  auto bucket_of = [&](int64_t d) { return static_cast<size_t>(d / delta); };
  std::vector<std::vector<vertex_t>> buckets(1);
  auto push_bucket = [&](vertex_t v, int64_t d) {
    size_t b = single_bucket ? 0 : bucket_of(d);
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
  };
  push_bucket(source, 0);

  std::vector<uint8_t> settled_in_step(n, 0);
  for (size_t cur = 0; cur < buckets.size(); ++cur) {
    if (buckets[cur].empty()) continue;
    bool counted_round = false;  // count only buckets that settle something
    std::vector<vertex_t> settled;  // vertices finalized in this bucket
    // Inner Bellman-Ford substeps on light edges until the bucket drains.
    std::vector<vertex_t> frontier = std::move(buckets[cur]);
    buckets[cur].clear();
    while (!frontier.empty()) {
      cancel_point();  // between relax substeps: quiescent, cancellable
      // keep only non-stale entries belonging to this bucket, dedup across
      // substeps of this bucket via settled_in_step
      auto active = pack(std::span<const vertex_t>(frontier), [&](size_t i) {
        vertex_t v = frontier[i];
        int64_t d = dist[v].load(std::memory_order_relaxed);
        if (d >= kInfDist) return false;
        if (!single_bucket && bucket_of(d) != cur) return false;
        return settled_in_step[v] == 0;
      });
      // mark (serial-safe: pack already deduplicated ids)
      for (auto v : active) settled_in_step[v] = 1;
      if (active.empty()) break;
      if (!counted_round) {
        res.stats.rounds++;
        counted_round = true;
      }
      // Delta-stepping counts rounds directly (it never goes through
      // phase_stats::record_frontier), so emit the round event here too.
      trace::instant("phase/round", "round", res.stats.rounds, "frontier", active.size());
      res.stats.substeps++;
      res.stats.processed += active.size();
      for (auto v : active) settled.push_back(v);
      auto changed = relax_edges(g, std::span<std::atomic<int64_t>>(dist.data(), n),
                                 active, claimed, /*light_only=*/!single_bucket, delta,
                                 res.stats);
      frontier.clear();
      for (auto u : changed) {
        int64_t d = dist[u].load(std::memory_order_relaxed);
        if (single_bucket || bucket_of(d) == cur) {
          // may need re-relaxation within this bucket (or round, for BF)
          if (single_bucket || settled_in_step[u] == 0) frontier.push_back(u);
          else {
            // already settled this step at a larger distance: re-relax
            settled_in_step[u] = 0;
            frontier.push_back(u);
          }
        } else {
          push_bucket(u, d);
        }
      }
      if (single_bucket) {
        // plain Bellman-Ford: every substep is a fresh frontier
        for (auto v : active) settled_in_step[v] = 0;
      }
    }
    // Heavy-edge phase: relax heavy edges of everything settled here once.
    for (auto v : settled) settled_in_step[v] = 0;
    if (!single_bucket && !settled.empty()) {
      auto changed = relax_edges(g, std::span<std::atomic<int64_t>>(dist.data(), n),
                                 settled, claimed, /*light_only=*/false, delta, res.stats);
      for (auto u : changed) push_bucket(u, dist[u].load(std::memory_order_relaxed));
    }
  }

  parallel_for(0, n, [&](size_t v) { res.dist[v] = dist[v].load(std::memory_order_relaxed); });
  return res;
}

}  // namespace

sssp_result sssp_bellman_ford(const wgraph& g, vertex_t source) {
  // Delta = infinity and a single bucket: the inner loop degenerates to
  // frontier-based Bellman-Ford.
  return delta_stepping_impl(g, source, 0, /*single_bucket=*/true);
}

sssp_result sssp_delta_stepping(const wgraph& g, vertex_t source, uint32_t delta) {
  return delta_stepping_impl(g, source, std::max(delta, 1u), /*single_bucket=*/false);
}

sssp_result sssp_phase_parallel(const wgraph& g, vertex_t source) {
  uint32_t wstar = g.num_edges() == 0 ? 1 : g.min_weight();
  return sssp_delta_stepping(g, source, std::max<uint32_t>(wstar, 1));
}

sssp_result sssp_crauser(const wgraph& g, vertex_t source, bool use_in_criterion) {
  sssp_result res;
  vertex_t n = g.num_vertices();
  res.dist.assign(n, kInfDist);
  if (n == 0) return res;
  auto dist = std::vector<std::atomic<int64_t>>(n);
  parallel_for(0, n, [&](size_t v) { dist[v].store(kInfDist, std::memory_order_relaxed); });
  dist[source].store(0, std::memory_order_relaxed);
  auto claimed = std::vector<std::atomic<uint8_t>>(n);
  parallel_for(0, n, [&](size_t v) { claimed[v].store(0, std::memory_order_relaxed); });

  // min outgoing weight per vertex, and min incoming weight (equal to
  // outgoing for the symmetric graphs we build, but computed separately so
  // directed inputs stay correct)
  std::vector<int64_t> min_out(n, kInfDist);
  parallel_for(0, n, [&](size_t v) {
    for (auto w : g.out_weights(static_cast<vertex_t>(v)))
      min_out[v] = std::min<int64_t>(min_out[v], w);
  });
  std::vector<std::atomic<int64_t>> min_in(n);
  parallel_for(0, n, [&](size_t v) { min_in[v].store(kInfDist, std::memory_order_relaxed); });
  parallel_for(0, n, [&](size_t v) {
    auto nbrs = g.out_neighbors(static_cast<vertex_t>(v));
    auto wts = g.out_weights(static_cast<vertex_t>(v));
    for (size_t i = 0; i < nbrs.size(); ++i)
      write_min(&min_in[nbrs[i]], static_cast<int64_t>(wts[i]));
  });

  std::vector<vertex_t> queued = {source};  // tentative, not yet settled
  while (!queued.empty()) {
    cancel_point();  // between settle rounds: quiescent, cancellable
    // OUT-criterion threshold over the queued set
    int64_t threshold = reduce_map(
        size_t{0}, queued.size(), kInfDist,
        [&](size_t i) {
          vertex_t v = queued[i];
          return dist[v].load(std::memory_order_relaxed) + min_out[v];
        },
        [](int64_t a, int64_t b) { return std::min(a, b); });
    // IN-criterion: dist(v) - min_in(v) <= L, L = min tentative distance
    // (any improving path enters v via an edge of weight >= min_in(v) from
    // a vertex of distance >= L).
    int64_t min_dist = reduce_map(
        size_t{0}, queued.size(), kInfDist,
        [&](size_t i) { return dist[queued[i]].load(std::memory_order_relaxed); },
        [](int64_t a, int64_t b) { return std::min(a, b); });
    auto ready = [&](size_t i) {
      vertex_t v = queued[i];
      int64_t d = dist[v].load(std::memory_order_relaxed);
      if (d <= threshold) return true;
      return use_in_criterion && d - min_in[v].load(std::memory_order_relaxed) <= min_dist;
    };
    auto settle = pack(std::span<const vertex_t>(queued), ready);
    auto rest = pack(std::span<const vertex_t>(queued), [&](size_t i) { return !ready(i); });
    res.stats.record_frontier(settle.size());
    auto changed = relax_edges(g, std::span<std::atomic<int64_t>>(dist.data(), n), settle,
                               claimed, /*light_only=*/false, 0, res.stats);
    // new queue = unsettled remainder + newly improved vertices that are
    // not already queued (changed is deduped per call; guard against
    // duplicates with `rest` via a membership flag)
    std::vector<uint8_t> inq(n, 0);
    for (auto v : rest) inq[v] = 1;
    for (auto v : changed)
      if (!inq[v]) {
        rest.push_back(v);
        inq[v] = 1;
      }
    queued = std::move(rest);
  }
  parallel_for(0, n, [&](size_t v) { res.dist[v] = dist[v].load(std::memory_order_relaxed); });
  return res;
}

sssp_result sssp_incremental(const wgraph& g, vertex_t source, std::span<const int64_t> prior,
                             std::span<const wgraph::wedge> inserted) {
  sssp_result res;
  res.dist.assign(g.num_vertices(), kInfDist);
  std::copy(prior.begin(), prior.begin() + std::min<size_t>(prior.size(), res.dist.size()),
            res.dist.begin());
  res.dist[source] = 0;
  using qe = std::pair<int64_t, vertex_t>;
  std::priority_queue<qe, std::vector<qe>, std::greater<qe>> pq;
  // Only endpoints an inserted edge actually improves enter the queue; an
  // insertion that doesn't beat the prior label changes no distance.
  for (const auto& e : inserted) {
    res.stats.relaxations++;
    if (res.dist[e.u] >= kInfDist) continue;
    int64_t nd = res.dist[e.u] + e.w;
    if (nd < res.dist[e.v]) {
      res.dist[e.v] = nd;
      pq.push({nd, e.v});
    }
  }
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d != res.dist[v]) continue;  // stale entry
    res.stats.processed++;
    auto nbrs = g.out_neighbors(v);
    auto wts = g.out_weights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      res.stats.relaxations++;
      int64_t nd = d + wts[i];
      if (nd < res.dist[nbrs[i]]) {
        res.dist[nbrs[i]] = nd;
        pq.push({nd, nbrs[i]});
      }
    }
  }
  return res;
}

sssp_result sssp_dijkstra(const wgraph& g, vertex_t source, const context& ctx) {
  run_scope scope(ctx);
  return sssp_dijkstra(g, source);
}

sssp_result sssp_incremental(const wgraph& g, vertex_t source, std::span<const int64_t> prior,
                             std::span<const wgraph::wedge> inserted, const context& ctx) {
  run_scope scope(ctx);
  return sssp_incremental(g, source, prior, inserted);
}

sssp_result sssp_bellman_ford(const wgraph& g, vertex_t source, const context& ctx) {
  run_scope scope(ctx);
  return sssp_bellman_ford(g, source);
}

sssp_result sssp_delta_stepping(const wgraph& g, vertex_t source, uint32_t delta,
                                const context& ctx) {
  run_scope scope(ctx);
  return sssp_delta_stepping(g, source, delta);
}

sssp_result sssp_phase_parallel(const wgraph& g, vertex_t source, const context& ctx) {
  run_scope scope(ctx);
  return sssp_phase_parallel(g, source);
}

sssp_result sssp_crauser(const wgraph& g, vertex_t source, bool use_in_criterion,
                         const context& ctx) {
  run_scope scope(ctx);
  return sssp_crauser(g, source, use_in_criterion);
}

}  // namespace pp
