// Asynchronous solver variants on the relaxed k-MultiQueue scheduler
// (parallel/multiqueue.h) — the second execution paradigm next to the
// paper-faithful phase-synchronous solvers.
//
// Each variant runs the *same greedy* its phase sibling runs, but workers
// claim elements from a relaxed priority queue instead of synchronizing on
// round barriers:
//   mis_relaxed      — priority = vertex rank; a claimed vertex decides
//                      itself once every earlier-priority neighbor is
//                      decided, otherwise it re-inserts itself (a counted
//                      retry).
//   coloring_relaxed — same wake discipline; a ready vertex takes the mex
//                      color of its earlier-priority neighbors.
//   matching_relaxed — priority = edge rank over canonical_edges(g); a
//                      claimed edge decides itself once every earlier
//                      incident edge at both endpoints is decided (matched
//                      iff both endpoints are still free).
//   sssp_relaxed     — relaxed asynchronous Dijkstra: priority = tentative
//                      distance; a claimed vertex re-inserts every
//                      neighbor it improves, stale claims are cheap wasted
//                      pops. Distances are exact.
//
// Determinism contract: phase solvers stay the bit-stable reference (the
// golden table covers them, not these); relaxed outputs are validated
// *structurally* — valid MIS / maximal matching / proper coloring / exact
// SSSP distances (tests/checkers.h). The current implementations decide
// every element from the final states of its earlier-priority dependencies
// only, so they happen to reproduce the greedy reference exactly — but
// only the structural guarantee is contractual.
//
// The relaxation factor is context::relax_k; the scheduler counters land
// in phase_stats::{popped, wasted, retries}.
#pragma once

#include <cstdint>
#include <span>

#include "algos/coloring.h"
#include "algos/matching.h"
#include "algos/mis.h"
#include "algos/sssp.h"
#include "core/context.h"
#include "graph/csr.h"

namespace pp {

mis_result mis_relaxed(const graph& g, std::span<const uint32_t> priority);
coloring_result coloring_relaxed(const graph& g, std::span<const uint32_t> priority);
matching_result matching_relaxed(const graph& g, std::span<const uint32_t> edge_priority);
sssp_result sssp_relaxed(const wgraph& g, vertex_t source);

// Context forms.
mis_result mis_relaxed(const graph& g, std::span<const uint32_t> priority, const context& ctx);
coloring_result coloring_relaxed(const graph& g, std::span<const uint32_t> priority,
                                 const context& ctx);
matching_result matching_relaxed(const graph& g, std::span<const uint32_t> edge_priority,
                                 const context& ctx);
sssp_result sssp_relaxed(const wgraph& g, vertex_t source, const context& ctx);

}  // namespace pp
