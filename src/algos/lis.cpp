#include "algos/lis.h"

#include <algorithm>

#include "core/fenwick.h"
#include "parallel/random.h"
#include "rangetree/range_tree2d.h"

namespace pp {

namespace {

lis_result lis_seq_impl(std::span<const int64_t> a, std::span<const int32_t> w) {
  size_t n = a.size();
  lis_result res;
  res.dp.assign(n, 0);
  if (n == 0) return res;
  auto yr = compute_y_ranks(a);
  // dp[i] = w_i + max(0, max_{j<i, a_j<a_i} dp[j]); prefix-max Fenwick over
  // value ranks, processed in sequence order.
  fenwick_max<int64_t> fw(n, 0);
  int64_t best = 0;
  for (size_t i = 0; i < n; ++i) {
    int64_t base = fw.prefix_max(yr[i]);
    int64_t dp = (w.empty() ? 1 : w[i]) + std::max<int64_t>(base, 0);
    res.dp[i] = static_cast<int32_t>(dp);
    fw.raise(yr[i], dp);
    best = std::max(best, dp);
  }
  res.length = best;
  return res;
}

}  // namespace

lis_result lis_sequential(std::span<const int64_t> a) { return lis_seq_impl(a, {}); }

lis_result lis_sequential(std::span<const int64_t> a, const context& ctx) {
  run_scope scope(ctx);
  return lis_seq_impl(a, {});
}

lis_result lis_sequential_weighted(std::span<const int64_t> a, std::span<const int32_t> w) {
  return lis_seq_impl(a, w);
}

lis_result lis_sequential_weighted(std::span<const int64_t> a, std::span<const int32_t> w,
                                   const context& ctx) {
  run_scope scope(ctx);
  return lis_seq_impl(a, w);
}

lis_result lis_parallel(std::span<const int64_t> a, pivot_policy policy, uint64_t seed) {
  return lis_parallel_weighted(a, {}, policy, seed);
}

lis_result lis_parallel(std::span<const int64_t> a, const context& ctx) {
  return lis_parallel_weighted(a, {}, ctx);
}

lis_result lis_parallel_weighted(std::span<const int64_t> a, std::span<const int32_t> w,
                                 pivot_policy policy, uint64_t seed) {
  size_t n = a.size();
  auto yr = compute_y_ranks(a);
  auto qx = tabulate<uint32_t>(n, [](size_t i) { return static_cast<uint32_t>(i); });
  auto dom = dominance_dp(yr, qx, w, policy, seed);
  lis_result res;
  res.dp = std::move(dom.dp);
  res.length = dom.best;
  res.stats = dom.stats;
  return res;
}

lis_result lis_parallel_weighted(std::span<const int64_t> a, std::span<const int32_t> w,
                                 const context& ctx) {
  run_scope scope(ctx);
  return lis_parallel_weighted(a, w, ctx.pivot, ctx.seed);
}

std::vector<uint32_t> lis_reconstruct(std::span<const int64_t> a, std::span<const int32_t> dp) {
  if (a.empty()) return {};
  uint32_t cur = 0;
  for (uint32_t i = 1; i < a.size(); ++i)
    if (dp[i] > dp[cur]) cur = i;
  std::vector<uint32_t> out;
  out.reserve(dp[cur]);
  out.push_back(cur);
  int32_t need = dp[cur] - 1;
  int64_t bound = a[cur];
  for (uint32_t i = cur; i-- > 0 && need > 0;) {
    if (dp[i] == need && a[i] < bound) {
      out.push_back(i);
      bound = a[i];
      --need;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<int64_t> lis_segment_pattern(size_t n, size_t segments, uint64_t seed) {
  if (segments == 0) segments = 1;
  random_stream rs(seed);
  size_t seg_len = (n + segments - 1) / segments;
  // Run s spans values around s * step, each run decreasing; noise keeps
  // the pattern "rough" as in the paper (Fig. 10 a-b).
  int64_t step = static_cast<int64_t>(4 * seg_len);
  return tabulate<int64_t>(n, [&](size_t i) {
    size_t s = i / seg_len;
    size_t pos = i % seg_len;
    int64_t base = static_cast<int64_t>(s) * step;
    int64_t desc = static_cast<int64_t>(seg_len - pos) * 2;
    int64_t noise = rs.ith_range(i, 0, 1);
    return base + desc + noise;
  });
}

std::vector<int64_t> lis_line_pattern(size_t n, int64_t slope, int64_t noise, uint64_t seed) {
  random_stream rs(seed);
  return tabulate<int64_t>(n, [&](size_t i) {
    return slope * static_cast<int64_t>(i) + rs.ith_range(i, 0, std::max<int64_t>(noise, 1) - 1);
  });
}

}  // namespace pp
