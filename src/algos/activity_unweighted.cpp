#include "algos/activity_unweighted.h"

#include <algorithm>
#include <cassert>

#include "algos/list_ranking.h"
#include "core/cancel.h"
#include "parallel/api.h"
#include "parallel/primitives.h"

namespace pp {

namespace {

// parent[i] = pivot of activity i (Lemma 5.1), kRoot sentinel for rank-1.
std::vector<uint32_t> pivot_forest(std::span<const activity> acts) {
  size_t n = acts.size();
  constexpr uint32_t kRoot = 0xFFFFFFFFu;
  auto ends = tabulate<int64_t>(n, [&](size_t i) { return acts[i].end; });
  std::vector<uint32_t> pam(n + 1, kRoot);  // prefix argmax of start
  for (size_t k = 0; k < n; ++k) {
    pam[k + 1] = pam[k];
    if (pam[k] == kRoot || acts[k].start > acts[pam[k]].start)
      pam[k + 1] = static_cast<uint32_t>(k);
  }
  std::vector<uint32_t> parent(n);
  parallel_for(0, n, [&](size_t i) {
    size_t k = static_cast<size_t>(
        std::upper_bound(ends.begin(), ends.end(), acts[i].start) - ends.begin());
    parent[i] = k == 0 ? kRoot : pam[k];
  });
  return parent;
}

}  // namespace

unweighted_activity_result activity_unweighted_greedy_seq(std::span<const activity> acts) {
  // Activities are end-sorted: repeatedly take the next one starting at or
  // after the last taken end.
  unweighted_activity_result res;
  res.rank.assign(acts.size(), 0);
  int64_t last_end = std::numeric_limits<int64_t>::min();
  int32_t taken = 0;
  for (size_t i = 0; i < acts.size(); ++i) {
    if (acts[i].start >= last_end) {
      last_end = acts[i].end;
      res.rank[i] = ++taken;
    }
  }
  res.best = taken;
  return res;
}

namespace {

unweighted_activity_result euler_impl(std::span<const activity> acts, uint64_t seed) {
  size_t n = acts.size();
  unweighted_activity_result res;
  res.rank.assign(n, 0);
  if (n == 0) return res;
  auto parent = pivot_forest(acts);  // kRoot == kListEnd == 0xFFFFFFFF
  auto depths = forest_depths_euler(parent, seed);
  int64_t best = 0;
  parallel_for(0, n, [&](size_t i) { res.rank[i] = static_cast<int32_t>(depths.rank[i]); });
  for (auto r : res.rank) best = std::max<int64_t>(best, r);
  res.best = best;
  res.stats = depths.stats;
  res.stats.processed = n;
  return res;
}

}  // namespace

unweighted_activity_result activity_unweighted_euler(std::span<const activity> acts) {
  return euler_impl(acts, 1);
}

unweighted_activity_result activity_unweighted_parallel(std::span<const activity> acts) {
  size_t n = acts.size();
  unweighted_activity_result res;
  res.rank.assign(n, 0);
  if (n == 0) return res;
  constexpr uint32_t kRoot = 0xFFFFFFFFu;
  auto parent = pivot_forest(acts);

  // Depth by pointer jumping: rank accumulates path lengths to the root.
  std::vector<uint32_t> jump(parent);
  auto rank = tabulate<int32_t>(n, [](size_t) { return 1; });
  std::vector<uint32_t> jump2(n);
  std::vector<int32_t> rank2(n);
  bool any = true;
  while (any) {
    cancel_point();  // between jumping rounds: quiescent, cancellable
    res.stats.rounds++;
    std::atomic<bool> more{false};
    parallel_for(0, n, [&](size_t i) {
      if (jump[i] == kRoot) {
        jump2[i] = kRoot;
        rank2[i] = rank[i];
      } else {
        rank2[i] = rank[i] + rank[jump[i]];
        jump2[i] = jump[jump[i]];
        if (jump2[i] != kRoot) more.store(true, std::memory_order_relaxed);
      }
    });
    std::swap(jump, jump2);
    std::swap(rank, rank2);
    any = more.load();
  }
  res.rank = std::move(rank);
  int64_t best = 0;
  for (auto r : res.rank) best = std::max<int64_t>(best, r);
  res.best = best;
  res.stats.processed = n;
  return res;
}

unweighted_activity_result activity_unweighted_greedy_seq(std::span<const activity> acts,
                                                          const context& ctx) {
  run_scope scope(ctx);
  return activity_unweighted_greedy_seq(acts);
}

unweighted_activity_result activity_unweighted_parallel(std::span<const activity> acts,
                                                        const context& ctx) {
  run_scope scope(ctx);
  return activity_unweighted_parallel(acts);
}

unweighted_activity_result activity_unweighted_euler(std::span<const activity> acts,
                                                     const context& ctx) {
  run_scope scope(ctx);
  return euler_impl(acts, ctx.seed);
}

}  // namespace pp
