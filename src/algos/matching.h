// Greedy maximal matching (Sec. 5.3 "Graph Coloring and Matching").
//
// Sequential: process edges by random priority; take an edge when both
// endpoints are free. Parallel: the round-synchronized variant the paper
// describes (an edge's readiness involves both endpoints, so rounds are
// synchronized): each round decides every edge that is the highest-
// priority undecided edge at *both* endpoints, then drops edges incident
// to newly matched vertices. With random edge priorities the number of
// rounds is O(log n) whp (Fischer-Noever), and both variants return the
// identical matching.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/context.h"
#include "core/stats.h"
#include "graph/csr.h"

namespace pp {

struct matching_result {
  // For each vertex, the matched partner or kUnmatched.
  std::vector<uint32_t> partner;
  size_t matching_size = 0;
  phase_stats stats;
};

inline constexpr uint32_t kUnmatched = 0xFFFFFFFFu;

// `edge_priority[e]` is a permutation of 0..m-1 over the unique undirected
// edges of g in the canonical (u < v, sorted) order; smaller = earlier.
matching_result matching_sequential(const graph& g, std::span<const uint32_t> edge_priority);
matching_result matching_rounds(const graph& g, std::span<const uint32_t> edge_priority);

// Context forms.
matching_result matching_sequential(const graph& g, std::span<const uint32_t> edge_priority,
                                    const context& ctx);
matching_result matching_rounds(const graph& g, std::span<const uint32_t> edge_priority,
                                const context& ctx);

// List of unique undirected edges (u < v) in the canonical order used for
// edge priorities.
std::vector<edge> canonical_edges(const graph& g);

// Matched pairs agree, no vertex matched twice, and no edge joins two
// unmatched vertices (maximality).
bool is_maximal_matching(const graph& g, std::span<const uint32_t> partner);

}  // namespace pp
