// Longest increasing subsequence (Sec. 5.2, Algorithm 3).
//
//   lis_sequential  — the classic O(n log n) DP the paper benchmarks
//                     against ("classic seq"): Fenwick prefix-max over
//                     value ranks.
//   lis_parallel    — the phase-parallel algorithm: rank(x) = LIS length
//                     ending at x; wake-up pivots + augmented 2D range
//                     tree. O(n log^3 n) work, O(k log^2 n) span whp for
//                     LIS length k. Both pivot policies of the paper.
//   lis_reconstruct — extract one optimal increasing subsequence from the
//                     dp values (linear scan certificate).
//
// Weighted variant: lis_parallel_weighted maximizes total weight of an
// increasing subsequence (the generalization noted in Sec. 5.2).
//
// Input generators for the paper's experiment patterns (Fig. 10): the
// `segment` pattern (k decreasing runs with noise; LIS ~ k) and the `line`
// pattern (a_i = t*i + noise).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/context.h"
#include "core/dominance_dp.h"
#include "core/stats.h"

namespace pp {

struct lis_result {
  std::vector<int32_t> dp;  // LIS length ending at each element
  int64_t length = 0;       // LIS length of the sequence (max weight if weighted)
  phase_stats stats;
};

// Classic sequential O(n log n) DP.
lis_result lis_sequential(std::span<const int64_t> a);
lis_result lis_sequential(std::span<const int64_t> a, const context& ctx);

// Sequential weighted LIS: maximize the sum of weights over increasing
// subsequences. O(n log n).
lis_result lis_sequential_weighted(std::span<const int64_t> a, std::span<const int32_t> w);
lis_result lis_sequential_weighted(std::span<const int64_t> a, std::span<const int32_t> w,
                                   const context& ctx);

// Phase-parallel LIS (Algorithm 3). The context form takes pivot policy
// and seed from ctx; the positional form requires both explicitly (no
// hidden default seed) and runs under the current context.
lis_result lis_parallel(std::span<const int64_t> a, pivot_policy policy, uint64_t seed);
lis_result lis_parallel(std::span<const int64_t> a, const context& ctx);

// Phase-parallel weighted LIS (weights must be positive).
lis_result lis_parallel_weighted(std::span<const int64_t> a, std::span<const int32_t> w,
                                 pivot_policy policy, uint64_t seed);
lis_result lis_parallel_weighted(std::span<const int64_t> a, std::span<const int32_t> w,
                                 const context& ctx);

// Indices of one optimal increasing subsequence, given the dp array of the
// *unweighted* problem. O(n).
std::vector<uint32_t> lis_reconstruct(std::span<const int64_t> a, std::span<const int32_t> dp);

// --- Fig. 10 input generators -------------------------------------------------

// `segments` decreasing runs whose base values increase run over run;
// LIS size is ~`segments`.
std::vector<int64_t> lis_segment_pattern(size_t n, size_t segments, uint64_t seed);

// a_i = slope * i + uniform noise in [0, noise); LIS length grows with
// slope/noise ratio.
std::vector<int64_t> lis_line_pattern(size_t n, int64_t slope, int64_t noise, uint64_t seed);

}  // namespace pp
