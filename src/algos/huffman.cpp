#include "algos/huffman.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/cancel.h"
#include "parallel/api.h"
#include "parallel/primitives.h"
#include "parallel/random.h"
#include "parallel/sort.h"

namespace pp {

namespace {

struct live_node {
  uint64_t freq;
  uint32_t id;
};

// depth/wpl/height from the parent array (children created before parents,
// so a reverse sweep sees each parent's depth first).
void finalize(huffman_result& res, std::span<const uint64_t> freqs) {
  size_t n = freqs.size();
  if (n == 0) return;
  if (n == 1) {
    res.wpl = 0;
    res.height = 0;
    return;
  }
  size_t total = 2 * n - 1;
  std::vector<uint32_t> depth(total, 0);
  for (size_t i = total - 1; i-- > 0;) depth[i] = depth[res.parent[i]] + 1;
  uint64_t wpl = 0;
  uint32_t h = 0;
  for (size_t i = 0; i < n; ++i) {
    wpl += freqs[i] * depth[i];
    h = std::max(h, depth[i]);
  }
  res.wpl = wpl;
  res.height = h;
}

void check_sorted(std::span<const uint64_t> freqs) {
  for (size_t i = 0; i < freqs.size(); ++i) {
    assert(freqs[i] >= 1);
    if (i > 0) assert(freqs[i - 1] <= freqs[i]);
  }
}

}  // namespace

huffman_result huffman_seq(std::span<const uint64_t> freqs) {
  check_sorted(freqs);
  size_t n = freqs.size();
  huffman_result res;
  if (n <= 1) return res;
  res.parent.assign(2 * n - 1, kNoParent);
  // Two queues: leaves (sorted input) and internal nodes (created in
  // nondecreasing frequency order); always merge the two smallest heads.
  std::vector<live_node> internal;
  internal.reserve(n - 1);
  size_t li = 0, ii = 0;
  uint32_t next_id = static_cast<uint32_t>(n);
  auto pop_min = [&]() -> live_node {
    bool take_leaf;
    if (li >= n) take_leaf = false;
    else if (ii >= internal.size()) take_leaf = true;
    else take_leaf = freqs[li] <= internal[ii].freq;
    if (take_leaf) return live_node{freqs[li], static_cast<uint32_t>(li++)};
    return internal[ii++];
  };
  for (size_t round = 0; round + 1 < n; ++round) {
    live_node a = pop_min();
    live_node b = pop_min();
    res.parent[a.id] = next_id;
    res.parent[b.id] = next_id;
    internal.push_back(live_node{a.freq + b.freq, next_id});
    ++next_id;
  }
  finalize(res, freqs);
  return res;
}

huffman_result huffman_parallel(std::span<const uint64_t> freqs) {
  check_sorted(freqs);
  size_t n = freqs.size();
  huffman_result res;
  if (n <= 1) return res;
  res.parent.assign(2 * n - 1, kNoParent);

  auto cur = tabulate<live_node>(n, [&](size_t i) {
    return live_node{freqs[i], static_cast<uint32_t>(i)};
  });
  uint32_t next_id = static_cast<uint32_t>(n);

  while (cur.size() > 1) {
    cancel_point();  // between merge rounds: quiescent, cancellable
    // f_m = sum of the two smallest frequencies; everything below f_m is
    // ready (no later object can be smaller), Lemma-style argument of
    // Sec. 4.3.
    uint64_t fm = cur[0].freq + cur[1].freq;
    size_t t = static_cast<size_t>(
        std::lower_bound(cur.begin(), cur.end(), fm,
                         [](const live_node& x, uint64_t f) { return x.freq < f; }) -
        cur.begin());
    if (t % 2 == 1) --t;      // leave an odd tail element for the next round
    if (t < 2) t = 2;         // always merge at least the two minima
    size_t k = t / 2;
    res.stats.record_frontier(t);

    std::vector<live_node> merged(k);
    parallel_for(0, k, [&](size_t p) {
      const live_node& a = cur[2 * p];
      const live_node& b = cur[2 * p + 1];
      uint32_t id = next_id + static_cast<uint32_t>(p);
      res.parent[a.id] = id;
      res.parent[b.id] = id;
      merged[p] = live_node{a.freq + b.freq, id};
    });
    next_id += static_cast<uint32_t>(k);

    // merged sums are nondecreasing (pairs of a sorted sequence); combine
    // with the untouched tail by parallel merge.
    std::vector<live_node> next(merged.size() + (cur.size() - t));
    auto less = [](const live_node& a, const live_node& b) { return a.freq < b.freq; };
    detail::parallel_merge(std::span<const live_node>(merged),
                           std::span<const live_node>(cur.data() + t, cur.size() - t),
                           std::span<live_node>(next), less);
    cur = std::move(next);
  }
  finalize(res, freqs);
  return res;
}

std::vector<uint32_t> huffman_code_lengths(const huffman_result& res, size_t n) {
  if (n == 0) return {};
  if (n == 1) return {0};
  size_t total = 2 * n - 1;
  std::vector<uint32_t> depth(total, 0);
  for (size_t i = total - 1; i-- > 0;) depth[i] = depth[res.parent[i]] + 1;
  depth.resize(n);
  return depth;
}

bool kraft_exact(std::span<const uint32_t> lengths) {
  // sum of 2^-len == 1, computed in fixed point at 2^-64 resolution
  // (code lengths beyond 64 cannot occur with 64-bit total frequency).
  __uint128_t sum = 0;
  for (auto len : lengths) {
    if (len > 64) return false;
    sum += static_cast<__uint128_t>(1) << (64 - len);
  }
  return sum == (static_cast<__uint128_t>(1) << 64);
}

std::vector<uint64_t> uniform_freqs(size_t n, uint64_t max_f, uint64_t seed) {
  random_stream rs(seed);
  auto f = tabulate<uint64_t>(n, [&](size_t i) { return 1 + rs.ith_bounded(i, max_f); });
  sort_inplace(std::span<uint64_t>(f));
  return f;
}

std::vector<uint64_t> exponential_freqs(size_t n, double lambda, uint64_t max_f, uint64_t seed) {
  random_stream rs(seed);
  auto f = tabulate<uint64_t>(n, [&](size_t i) {
    double u = std::max(rs.ith_double(i), 1e-15);
    double v = -std::log(u) / lambda;
    uint64_t x = static_cast<uint64_t>(v) + 1;
    return std::min<uint64_t>(std::max<uint64_t>(x, 1), max_f);
  });
  sort_inplace(std::span<uint64_t>(f));
  return f;
}

std::vector<uint64_t> zipf_freqs(size_t n, double s, uint64_t max_f, uint64_t seed) {
  random_stream rs(seed);
  auto f = tabulate<uint64_t>(n, [&](size_t i) {
    // frequency of the i-th most common item ~ max_f / (i+1)^s, jittered
    double base = static_cast<double>(max_f) / std::pow(static_cast<double>(i + 1), s);
    uint64_t x = static_cast<uint64_t>(base);
    uint64_t jitter = rs.ith_bounded(i, x / 8 + 1);
    return std::max<uint64_t>(1, x + jitter);
  });
  sort_inplace(std::span<uint64_t>(f));
  return f;
}

huffman_result huffman_seq(std::span<const uint64_t> freqs, const context& ctx) {
  run_scope scope(ctx);
  return huffman_seq(freqs);
}

huffman_result huffman_parallel(std::span<const uint64_t> freqs, const context& ctx) {
  run_scope scope(ctx);
  return huffman_parallel(freqs);
}

}  // namespace pp
