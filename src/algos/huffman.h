// Huffman tree construction (Sec. 4.3).
//
// Sequential: the classic two-queue O(n) merge over pre-sorted
// frequencies. Parallel: the paper's relaxed-rank algorithm — per round,
// f_m = sum of the two smallest live frequencies; every live object with
// frequency < f_m is ready (nothing smaller can appear later), so pair
// them up in sorted order, emit |T|/2 internal nodes (their sums are again
// sorted), and parallel-merge with the remaining objects. O(n log n) work,
// O(H log n) span for tree height H; the number of rounds is at most H
// (Theorem 4.7, via the relaxed rank of Definition 4.6).
//
// Both produce an optimal prefix tree: equal weighted path lengths
// (individual tree shapes may differ on frequency ties).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/context.h"
#include "core/stats.h"

namespace pp {

struct huffman_result {
  // 2n-1 nodes: 0..n-1 leaves (input order), n..2n-2 internal in creation
  // order; root = 2n-2. parent[root] = kNoParent. For n <= 1 there are no
  // internal nodes.
  std::vector<uint32_t> parent;
  uint64_t wpl = 0;     // weighted path length: sum freq[i] * depth(leaf i)
  uint32_t height = 0;  // max leaf depth
  phase_stats stats;
};

inline constexpr uint32_t kNoParent = 0xFFFFFFFFu;

// Precondition for both: freqs sorted ascending, all >= 1.
huffman_result huffman_seq(std::span<const uint64_t> freqs);
huffman_result huffman_parallel(std::span<const uint64_t> freqs);

// Context forms.
huffman_result huffman_seq(std::span<const uint64_t> freqs, const context& ctx);
huffman_result huffman_parallel(std::span<const uint64_t> freqs, const context& ctx);

// Code length (= leaf depth) of each input symbol, in input order. For
// n == 1 the single symbol gets code length 0.
std::vector<uint32_t> huffman_code_lengths(const huffman_result& res, size_t n);

// Kraft-McMillan check: sum over symbols of 2^-len == 1 for a full binary
// code tree (n >= 2). Used by tests and by decoders to validate a code.
bool kraft_exact(std::span<const uint32_t> lengths);

// Sorted frequency generators for the experiment distributions of Sec. 6.2
// (uniform in [1, max_f], exponential-ish, Zipf), all >= 1.
std::vector<uint64_t> uniform_freqs(size_t n, uint64_t max_f, uint64_t seed);
std::vector<uint64_t> exponential_freqs(size_t n, double lambda, uint64_t max_f, uint64_t seed);
std::vector<uint64_t> zipf_freqs(size_t n, double s, uint64_t max_f, uint64_t seed);

}  // namespace pp
