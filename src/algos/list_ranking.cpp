#include "algos/list_ranking.h"

#include <cassert>

#include "core/cancel.h"
#include "parallel/api.h"
#include "parallel/primitives.h"
#include "parallel/random.h"

namespace pp {

list_ranking_result list_ranking_seq(std::span<const uint32_t> next) {
  size_t n = next.size();
  list_ranking_result res;
  res.rank.assign(n, 0);
  if (n == 0) return res;
  // head = the node nobody points to
  std::vector<uint8_t> has_pred(n, 0);
  for (auto nx : next)
    if (nx != kListEnd) has_pred[nx] = 1;
  uint32_t head = kListEnd;
  for (uint32_t v = 0; v < n; ++v)
    if (!has_pred[v]) head = v;
  uint64_t r = 0;
  for (uint32_t v = head; v != kListEnd; v = next[v]) res.rank[v] = r++;
  return res;
}

list_ranking_result list_ranking_parallel(std::span<const uint32_t> next_in, uint64_t seed) {
  // unit weights: the weighted rank counts the nodes strictly before v
  auto w = tabulate<int64_t>(next_in.size(), [](size_t) { return int64_t{1}; });
  auto wres = list_ranking_weighted_parallel(next_in, w, seed);
  list_ranking_result res;
  res.rank.assign(next_in.size(), 0);
  parallel_for(0, next_in.size(),
               [&](size_t v) { res.rank[v] = static_cast<uint64_t>(wres.rank[v]); });
  res.stats = wres.stats;
  return res;
}

weighted_ranking_result list_ranking_weighted_seq(std::span<const uint32_t> next,
                                                  std::span<const int64_t> w) {
  size_t n = next.size();
  weighted_ranking_result res;
  res.rank.assign(n, 0);
  if (n == 0) return res;
  std::vector<uint8_t> has_pred(n, 0);
  for (auto nx : next)
    if (nx != kListEnd) has_pred[nx] = 1;
  uint32_t head = kListEnd;
  for (uint32_t v = 0; v < n; ++v)
    if (!has_pred[v]) head = v;
  int64_t acc = 0;
  for (uint32_t v = head; v != kListEnd; v = next[v]) {
    res.rank[v] = acc;
    acc += w[v];
  }
  return res;
}

weighted_ranking_result list_ranking_weighted_parallel(std::span<const uint32_t> next_in,
                                                       std::span<const int64_t> w,
                                                       uint64_t seed) {
  size_t n = next_in.size();
  weighted_ranking_result res;
  res.rank.assign(n, 0);
  if (n == 0) return res;

  auto prio = random_permutation(n, seed);
  std::vector<uint32_t> next(next_in.begin(), next_in.end());
  std::vector<uint32_t> prev(n, kListEnd);
  parallel_for(0, n, [&](size_t v) {
    if (next[v] != kListEnd) prev[next[v]] = static_cast<uint32_t>(v);
  });
  // win[v] = rank(v) - rank(prev(v)) = accumulated weight between them;
  // for the current head, win = rank (weight accumulated from splices of
  // everything that used to precede it).
  std::vector<int64_t> win(n);
  parallel_for(0, n, [&](size_t v) { win[v] = prev[v] == kListEnd ? 0 : w[prev[v]]; });

  struct splice {
    uint32_t v;
    uint32_t prv;   // predecessor at splice time (kListEnd if head)
    int64_t w_in;   // accumulated weight between prv and v at splice time
  };
  // splices grouped by round, for the reverse replay
  std::vector<std::vector<splice>> rounds;

  auto live = tabulate<uint32_t>(n, [](size_t v) { return static_cast<uint32_t>(v); });
  std::vector<uint8_t> spliced(n, 0);
  // keep the last node alive as the anchor (its rank seeds the expansion)
  while (live.size() > 1) {
    cancel_point();  // between contraction rounds: quiescent, cancellable
    // local priority minima among live nodes: lower priority than both
    // current neighbors (P(x) has size <= 2, the constant-size case)
    auto ready = pack(std::span<const uint32_t>(live), [&](size_t k) {
      uint32_t v = live[k];
      uint32_t p = prev[v], nx = next[v];
      if (p != kListEnd && prio[p] < prio[v]) return false;
      if (nx != kListEnd && prio[nx] < prio[v]) return false;
      // keep one anchor: the head of a fully contracted list
      return !(p == kListEnd && nx == kListEnd);
    });
    if (ready.empty()) break;
    res.stats.record_frontier(ready.size());
    std::vector<splice> batch(ready.size());
    parallel_for(0, ready.size(), [&](size_t k) {
      uint32_t v = ready[k];
      batch[k] = {v, prev[v], win[v]};
    });
    // splice all ready nodes (no two adjacent: both would need the lower
    // priority of the pair)
    parallel_for(0, ready.size(), [&](size_t k) {
      uint32_t v = ready[k];
      uint32_t p = prev[v], nx = next[v];
      if (p != kListEnd) next[p] = nx;
      if (nx != kListEnd) {
        prev[nx] = p;
        win[nx] += win[v];
      }
      spliced[v] = 1;
    });
    live = pack(std::span<const uint32_t>(live),
                [&](size_t k) { return spliced[live[k]] == 0; });
    rounds.push_back(std::move(batch));
  }

  // Expansion. Invariant: for the current head h, win[h] == rank(h); for
  // any other live v, win[v] == rank(v) - rank(prev(v)). The anchor is the
  // final head, so its rank is its win; spliced nodes replay in reverse
  // round order (their prv is always revived in a later round or is the
  // anchor, so rank[prv] is final when read).
  assert(live.size() == 1);
  res.rank[live[0]] = win[live[0]];
  for (size_t r = rounds.size(); r-- > 0;) {
    auto& batch = rounds[r];
    parallel_for(0, batch.size(), [&](size_t k) {
      const splice& s = batch[k];
      if (s.prv == kListEnd) res.rank[s.v] = s.w_in;  // was head at splice time
      else res.rank[s.v] = res.rank[s.prv] + s.w_in;
    });
  }
  return res;
}

weighted_ranking_result forest_depths_euler(std::span<const uint32_t> parent, uint64_t seed) {
  size_t n = parent.size();
  weighted_ranking_result res;
  res.rank.assign(n, 0);
  if (n == 0) return res;

  // children grouped by parent, in node-id order (stable), plus the roots.
  std::vector<size_t> child_off(n + 1, 0);
  std::vector<uint32_t> children(0);
  std::vector<uint32_t> roots;
  {
    std::vector<size_t> cnt(n, 0);
    for (size_t v = 0; v < n; ++v) {
      if (parent[v] == kListEnd) roots.push_back(static_cast<uint32_t>(v));
      else cnt[parent[v]]++;
    }
    for (size_t p = 0; p < n; ++p) child_off[p + 1] = child_off[p] + cnt[p];
    children.assign(child_off[n], 0);
    std::vector<size_t> cursor(child_off.begin(), child_off.end() - 1);
    for (size_t v = 0; v < n; ++v)
      if (parent[v] != kListEnd) children[cursor[parent[v]]++] = static_cast<uint32_t>(v);
  }

  // Euler tour as a linked list over 2n entries: enter(v) = 2v carries
  // weight +1, exit(v) = 2v+1 carries -1. The weighted rank at enter(v) is
  // the number of open ancestors = depth(v) - 1.
  auto enter = [](uint32_t v) { return 2 * v; };
  auto exit_ = [](uint32_t v) { return 2 * v + 1; };
  std::vector<uint32_t> tour_next(2 * n, kListEnd);
  parallel_for(0, n, [&](size_t v) {
    auto kids = std::span<const uint32_t>(children.data() + child_off[v],
                                          child_off[v + 1] - child_off[v]);
    uint32_t u = static_cast<uint32_t>(v);
    tour_next[enter(u)] = kids.empty() ? exit_(u) : enter(kids.front());
    // each child's exit points to the next sibling's enter, last to our exit
    for (size_t k = 0; k < kids.size(); ++k)
      tour_next[exit_(kids[k])] = k + 1 < kids.size() ? enter(kids[k + 1]) : exit_(u);
  });
  for (size_t r = 0; r + 1 < roots.size(); ++r)
    tour_next[exit_(roots[r])] = enter(roots[r + 1]);

  auto weights = tabulate<int64_t>(2 * n, [](size_t i) { return i % 2 == 0 ? 1 : -1; });
  auto ranked = list_ranking_weighted_parallel(tour_next, weights, seed);
  parallel_for(0, n, [&](size_t v) { res.rank[v] = ranked.rank[enter(static_cast<uint32_t>(v))] + 1; });
  res.stats = ranked.stats;
  return res;
}

std::vector<uint32_t> random_list(size_t n, uint64_t seed) {
  auto order = random_permutation(n, seed);  // order[i] = node at position i
  std::vector<uint32_t> next(n, kListEnd);
  parallel_for(0, n, [&](size_t i) {
    if (i + 1 < n) next[order[i]] = order[i + 1];
  });
  return next;
}

list_ranking_result list_ranking_seq(std::span<const uint32_t> next, const context& ctx) {
  run_scope scope(ctx);
  return list_ranking_seq(next);
}

list_ranking_result list_ranking_parallel(std::span<const uint32_t> next, const context& ctx) {
  run_scope scope(ctx);
  return list_ranking_parallel(next, ctx.seed);
}

weighted_ranking_result list_ranking_weighted_seq(std::span<const uint32_t> next,
                                                  std::span<const int64_t> w,
                                                  const context& ctx) {
  run_scope scope(ctx);
  return list_ranking_weighted_seq(next, w);
}

weighted_ranking_result list_ranking_weighted_parallel(std::span<const uint32_t> next,
                                                       std::span<const int64_t> w,
                                                       const context& ctx) {
  run_scope scope(ctx);
  return list_ranking_weighted_parallel(next, w, ctx.seed);
}

weighted_ranking_result forest_depths_euler(std::span<const uint32_t> parent,
                                            const context& ctx) {
  run_scope scope(ctx);
  return forest_depths_euler(parent, ctx.seed);
}

}  // namespace pp
