#include "algos/knapsack.h"

#include <algorithm>
#include <cassert>

#include "core/cancel.h"
#include "parallel/api.h"
#include "parallel/primitives.h"
#include "parallel/random.h"

namespace pp {

knapsack_result knapsack_seq(int64_t W, std::span<const knapsack_item> items) {
  knapsack_result res;
  res.dp.assign(static_cast<size_t>(W) + 1, 0);
  for (int64_t j = 1; j <= W; ++j) {
    int64_t best = 0;
    for (const auto& it : items)
      if (it.weight <= j) best = std::max(best, res.dp[j - it.weight] + it.value);
    res.dp[j] = best;
  }
  res.best = res.dp[W];
  return res;
}

knapsack_result knapsack_parallel(int64_t W, std::span<const knapsack_item> items) {
  knapsack_result res;
  res.dp.assign(static_cast<size_t>(W) + 1, 0);
  if (items.empty()) return res;
  int64_t wstar = items[0].weight;
  for (const auto& it : items) {
    assert(it.weight >= 1);
    wstar = std::min(wstar, it.weight);
  }
  // Round r settles the whole window [r*w*, (r+1)*w*): every dependence
  // dp[j - w_i] has j - w_i <= j - w* < r*w*, i.e. lies in earlier rounds.
  for (int64_t lo = 0; lo <= W; lo += wstar) {
    cancel_point();  // between window rounds: quiescent, cancellable
    int64_t hi = std::min<int64_t>(W + 1, lo + wstar);
    res.stats.record_frontier(static_cast<size_t>(hi - lo));
    parallel_for(static_cast<size_t>(lo), static_cast<size_t>(hi), [&](size_t j) {
      int64_t best = 0;
      for (const auto& it : items)
        if (it.weight <= static_cast<int64_t>(j))
          best = std::max(best, res.dp[j - it.weight] + it.value);
      res.dp[j] = best;
    });
  }
  res.best = res.dp[W];
  return res;
}

std::vector<knapsack_item> random_items(size_t n, int64_t w_min, int64_t w_max, int64_t v_max,
                                        uint64_t seed) {
  random_stream rs(seed);
  return tabulate<knapsack_item>(n, [&](size_t i) {
    return knapsack_item{rs.ith_range(2 * i, w_min, w_max), rs.ith_range(2 * i + 1, 1, v_max)};
  });
}

knapsack_result knapsack_seq(int64_t W, std::span<const knapsack_item> items,
                             const context& ctx) {
  run_scope scope(ctx);
  return knapsack_seq(W, items);
}

knapsack_result knapsack_parallel(int64_t W, std::span<const knapsack_item> items,
                                  const context& ctx) {
  run_scope scope(ctx);
  return knapsack_parallel(W, items);
}

}  // namespace pp
