// Parallel random permutation = parallelized sequential Knuth shuffle
// (Sec. 5.3 "Other Algorithms"; Shun et al. [64] within the phase-parallel
// framework).
//
// The sequential algorithm performs swap(A[i], A[H[i]]) for i = 1..n-1
// with H[i] uniform in [0, i]. Iteration j relies on iteration i < j iff
// they touch a common cell (H[i] == H[j] or i == H[j]); the dependence
// forest has depth O(log n) whp. The parallel algorithm runs rounds of
// deterministic reservations [BFGS12]: every unfinished iteration reserves
// its two cells with write-min of its index; an iteration that owns both
// cells commits its swap. The output is *identical* to the sequential
// shuffle with the same H (determinism), and the number of rounds is the
// dependence-forest depth.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/context.h"
#include "core/stats.h"

namespace pp {

struct shuffle_result {
  std::vector<uint32_t> perm;  // the shuffled sequence (starts as identity)
  phase_stats stats;
};

// Swap targets H[i] in [0, i] for i in [1, n); H[0] is ignored.
std::vector<uint32_t> knuth_targets(size_t n, uint64_t seed);

// Sequential Fisher-Yates/Knuth shuffle with explicit targets.
shuffle_result knuth_shuffle_seq(size_t n, std::span<const uint32_t> targets);
shuffle_result knuth_shuffle_seq(size_t n, std::span<const uint32_t> targets,
                                 const context& ctx);

// Phase-parallel shuffle: same output as knuth_shuffle_seq for the same
// targets, O(depth) rounds (depth = O(log n) whp).
shuffle_result knuth_shuffle_parallel(size_t n, std::span<const uint32_t> targets);
shuffle_result knuth_shuffle_parallel(size_t n, std::span<const uint32_t> targets,
                                      const context& ctx);

}  // namespace pp
