#include "algos/random_shuffle.h"

#include <atomic>

#include "core/cancel.h"
#include "parallel/api.h"
#include "parallel/primitives.h"
#include "parallel/random.h"

namespace pp {

std::vector<uint32_t> knuth_targets(size_t n, uint64_t seed) {
  random_stream rs(seed);
  return tabulate<uint32_t>(n, [&](size_t i) {
    return i == 0 ? 0u : static_cast<uint32_t>(rs.ith_bounded(i, i + 1));
  });
}

shuffle_result knuth_shuffle_seq(size_t n, std::span<const uint32_t> targets) {
  shuffle_result res;
  res.perm = tabulate<uint32_t>(n, [](size_t i) { return static_cast<uint32_t>(i); });
  for (size_t i = 1; i < n; ++i) std::swap(res.perm[i], res.perm[targets[i]]);
  res.stats.rounds = n > 1 ? n - 1 : 0;
  res.stats.processed = res.stats.rounds;
  return res;
}

shuffle_result knuth_shuffle_parallel(size_t n, std::span<const uint32_t> targets) {
  shuffle_result res;
  res.perm = tabulate<uint32_t>(n, [](size_t i) { return static_cast<uint32_t>(i); });
  if (n <= 1) return res;
  constexpr uint32_t kFree = 0xFFFFFFFFu;

  // reservation[c] = smallest unfinished iteration index that wants cell c
  auto reserve = std::vector<std::atomic<uint32_t>>(n);
  parallel_for(0, n, [&](size_t c) { reserve[c].store(kFree, std::memory_order_relaxed); });

  auto remaining = tabulate<uint32_t>(n - 1, [](size_t k) { return static_cast<uint32_t>(k + 1); });
  while (!remaining.empty()) {
    cancel_point();  // between reservation rounds: quiescent, cancellable
    res.stats.rounds++;
    // Phase 1: every unfinished iteration reserves its two cells.
    parallel_for(0, remaining.size(), [&](size_t k) {
      uint32_t i = remaining[k];
      write_min(&reserve[i], i);
      write_min(&reserve[targets[i]], i);
    });
    // Phase 2: iterations owning both cells commit their swap. An
    // iteration's cells are i and targets[i] <= i; owning both means no
    // smaller unfinished iteration conflicts, i.e. it is ready in the
    // dependence order.
    std::vector<uint8_t> done(remaining.size());
    parallel_for(0, remaining.size(), [&](size_t k) {
      uint32_t i = remaining[k];
      bool mine = reserve[i].load(std::memory_order_relaxed) == i &&
                  reserve[targets[i]].load(std::memory_order_relaxed) == i;
      done[k] = mine ? 1 : 0;
      if (mine) std::swap(res.perm[i], res.perm[targets[i]]);
    });
    // Phase 3: clear reservations of the cells we touched and drop
    // committed iterations.
    parallel_for(0, remaining.size(), [&](size_t k) {
      uint32_t i = remaining[k];
      reserve[i].store(kFree, std::memory_order_relaxed);
      reserve[targets[i]].store(kFree, std::memory_order_relaxed);
    });
    size_t committed = 0;
    for (auto d : done) committed += d;
    res.stats.processed += committed;
    res.stats.max_frontier = std::max(res.stats.max_frontier, committed);
    remaining = pack(std::span<const uint32_t>(remaining), [&](size_t k) { return done[k] == 0; });
  }
  return res;
}

shuffle_result knuth_shuffle_seq(size_t n, std::span<const uint32_t> targets,
                                 const context& ctx) {
  run_scope scope(ctx);
  return knuth_shuffle_seq(n, targets);
}

shuffle_result knuth_shuffle_parallel(size_t n, std::span<const uint32_t> targets,
                                      const context& ctx) {
  run_scope scope(ctx);
  return knuth_shuffle_parallel(n, targets);
}

}  // namespace pp
