// Whac-A-Mole (Appendix B of the paper).
//
// Moles pop up at (time t_i, position p_i) for a unit instant; the hammer
// moves at unit speed; maximize the number of moles hit. DP over moles in
// time order: mole j can precede mole i iff |p_j - p_i| <= t_i - t_j,
// which the paper rewrites (Eqs. 5-6) as the 2D strict dominance
//   t_j + p_j < t_i + p_i   and   t_j - p_j < t_i - p_i,
// so the problem is the LIS dominance DP in rotated coordinates and runs
// on the same Type-2 engine (core/dominance_dp.h).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/context.h"
#include "core/dominance_dp.h"
#include "core/stats.h"

namespace pp {

struct mole {
  int64_t t;  // pop-up time
  int64_t p;  // position on the (1D) number line
};

struct whac_result {
  std::vector<int32_t> dp;  // moles hit by the best plan ending at mole i (input order)
  int64_t best = 0;
  phase_stats stats;
};

// O(n log n) sequential DP (Fenwick over v-ranks in u order).
whac_result whac_sequential(std::span<const mole> moles);
whac_result whac_sequential(std::span<const mole> moles, const context& ctx);

// O(n^2) reference, for testing.
whac_result whac_bruteforce(std::span<const mole> moles);

// Phase-parallel via the dominance engine. The context form takes pivot
// policy and seed from ctx; the positional form requires both explicitly
// (no hidden default seed).
whac_result whac_parallel(std::span<const mole> moles, pivot_policy policy, uint64_t seed);
whac_result whac_parallel(std::span<const mole> moles, const context& ctx);

// Random instance: moles with times in [0, t_range) and positions in
// [0, p_range). Smaller p_range relative to t_range => deeper DP chains.
std::vector<mole> random_moles(size_t n, int64_t t_range, int64_t p_range, uint64_t seed);

}  // namespace pp
