#include "algos/mis.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "core/cancel.h"
#include "parallel/api.h"
#include "parallel/primitives.h"
#include "parallel/sort.h"
#include "tastree/tas_tree.h"

namespace pp {

mis_result mis_sequential(const graph& g, std::span<const uint32_t> priority) {
  vertex_t n = g.num_vertices();
  mis_result res;
  res.in_mis.assign(n, 0);
  auto order = sort_indices(n, [&](uint32_t a, uint32_t b) { return priority[a] < priority[b]; });
  std::vector<uint8_t> removed(n, 0);
  for (auto v : order) {
    if (removed[v]) continue;
    res.in_mis[v] = 1;
    res.mis_size++;
    for (auto u : g.neighbors(v)) removed[u] = 1;
  }
  return res;
}

mis_result mis_rounds(const graph& g, std::span<const uint32_t> priority) {
  vertex_t n = g.num_vertices();
  mis_result res;
  res.in_mis.assign(n, 0);
  // 0 = undecided, 1 = selected, 2 = removed
  std::vector<std::atomic<uint8_t>> status(n);
  parallel_for(0, n, [&](size_t v) { status[v].store(0, std::memory_order_relaxed); });
  auto undecided = tabulate<vertex_t>(n, [](size_t i) { return static_cast<vertex_t>(i); });
  while (!undecided.empty()) {
    cancel_point();  // between selection rounds: quiescent, cancellable
    res.stats.record_frontier(undecided.size());
    // Select every undecided vertex whose priority beats all undecided
    // neighbors (= the ready set of the dependence graph).
    auto ready = pack(std::span<const vertex_t>(undecided), [&](size_t i) {
      vertex_t v = undecided[i];
      for (auto u : g.neighbors(v))
        if (status[u].load(std::memory_order_relaxed) == 0 && priority[u] < priority[v])
          return false;
      return true;
    });
    parallel_for(0, ready.size(), [&](size_t i) {
      status[ready[i]].store(1, std::memory_order_relaxed);
    });
    parallel_for(0, ready.size(), [&](size_t i) {
      for (auto u : g.neighbors(ready[i])) {
        uint8_t expect = 0;
        status[u].compare_exchange_strong(expect, 2, std::memory_order_relaxed);
      }
    });
    undecided = pack(std::span<const vertex_t>(undecided), [&](size_t i) {
      return status[undecided[i]].load(std::memory_order_relaxed) == 0;
    });
  }
  parallel_for(0, n, [&](size_t v) {
    res.in_mis[v] = status[v].load(std::memory_order_relaxed) == 1;
  });
  for (vertex_t v = 0; v < n; ++v) res.mis_size += res.in_mis[v];
  return res;
}

namespace {

// Shared state of the asynchronous Algorithm 4.
struct tas_mis_state {
  const graph& g;
  std::span<const uint32_t> priority;
  // adjacency re-sorted by priority, so blocking neighbors are a prefix
  std::vector<vertex_t> sorted_adj;
  std::vector<size_t> adj_off;
  std::vector<uint32_t> num_blocking;
  std::vector<std::atomic<uint8_t>> status;  // 0 undecided, 1 selected, 2 removed
  tas_forest forest;
  std::atomic<size_t> max_depth{0};  // recursion depth proxy for the span claim

  tas_mis_state(const graph& gr, std::span<const uint32_t> prio,
                std::vector<vertex_t> sadj, std::vector<size_t> off,
                std::vector<uint32_t> nblock, const context& ctx)
      : g(gr),
        priority(prio),
        sorted_adj(std::move(sadj)),
        adj_off(std::move(off)),
        num_blocking(nblock.begin(), nblock.end()),
        status(gr.num_vertices()),
        forest(std::span<const uint32_t>(num_blocking), ctx) {
    parallel_for(ctx, 0, gr.num_vertices(), [&](size_t v) {
      status[v].store(0, std::memory_order_relaxed);
    });
  }

  std::span<const vertex_t> sorted_neighbors(vertex_t v) const {
    return std::span<const vertex_t>(sorted_adj.data() + adj_off[v],
                                     adj_off[v + 1] - adj_off[v]);
  }

  // Leaf index of neighbor u inside v's TAS tree = u's rank in v's
  // priority-sorted adjacency (binary search).
  uint32_t leaf_of(vertex_t v, vertex_t u) const {
    auto nbrs = sorted_neighbors(v);
    uint32_t pu = priority[u];
    size_t lo = 0, hi = nbrs.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (priority[nbrs[mid]] < pu) lo = mid + 1;
      else hi = mid;
    }
    return static_cast<uint32_t>(lo);
  }

  void wake_up(vertex_t v, size_t depth);
  void remove_vertex(vertex_t u, size_t depth);
};

void tas_mis_state::remove_vertex(vertex_t u, size_t depth) {
  // Notify every TAS tree containing u (= later-priority neighbors).
  auto nbrs = sorted_neighbors(u);
  uint32_t pu = priority[u];
  parallel_for(0, nbrs.size(), [&](size_t j) {
    vertex_t w = nbrs[j];
    if (priority[w] < pu) return;  // w is earlier: u is not in w's tree
    if (status[w].load(std::memory_order_acquire) == 2) return;  // already removed (Line 13)
    if (forest.mark(w, leaf_of(w, u))) wake_up(w, depth + 1);
  }, /*grain=*/64);
}

void tas_mis_state::wake_up(vertex_t v, size_t depth) {
  // v's blocking neighbors are all unavailable and v was never removed,
  // so v joins the MIS (see header: a later neighbor cannot be selected
  // before v is decided).
  uint8_t expect = 0;
  bool won = status[v].compare_exchange_strong(expect, 1, std::memory_order_acq_rel);
  assert(won && "a ready vertex must still be undecided");
  (void)won;
  write_max(&max_depth, depth);
  auto nbrs = sorted_neighbors(v);
  parallel_for(0, nbrs.size(), [&](size_t j) {
    vertex_t u = nbrs[j];
    uint8_t e = 0;
    if (status[u].compare_exchange_strong(e, 2, std::memory_order_acq_rel)) {
      remove_vertex(u, depth + 1);  // first remover propagates
    }
  }, /*grain=*/64);
}

}  // namespace

mis_result mis_tas(const graph& g, std::span<const uint32_t> priority) {
  vertex_t n = g.num_vertices();
  // adjacency sorted by priority, blocking counts
  std::vector<size_t> off(n + 1, 0);
  for (vertex_t v = 0; v < n; ++v) off[v + 1] = off[v] + g.degree(v);
  std::vector<vertex_t> sadj(off[n]);
  std::vector<uint32_t> nblock(n);
  parallel_for(0, n, [&](size_t v) {
    auto nbrs = g.neighbors(static_cast<vertex_t>(v));
    std::copy(nbrs.begin(), nbrs.end(), sadj.begin() + off[v]);
    std::sort(sadj.begin() + off[v], sadj.begin() + off[v + 1],
              [&](vertex_t a, vertex_t b) { return priority[a] < priority[b]; });
    uint32_t pv = priority[v];
    uint32_t b = 0;
    while (b < nbrs.size() && priority[sadj[off[v] + b]] < pv) ++b;
    nblock[v] = b;
  });

  tas_mis_state st(g, priority, std::move(sadj), std::move(off), std::move(nblock),
                   current_context());

  // Kick off every vertex with no blocking neighbors (Lines 5-6).
  parallel_for(0, n, [&](size_t v) {
    if (st.forest.empty_tree(static_cast<vertex_t>(v)))
      st.wake_up(static_cast<vertex_t>(v), 1);
  }, /*grain=*/256);

  mis_result res;
  res.in_mis.assign(n, 0);
  parallel_for(0, n, [&](size_t v) {
    res.in_mis[v] = st.status[v].load(std::memory_order_relaxed) == 1;
  });
  for (vertex_t v = 0; v < n; ++v) res.mis_size += res.in_mis[v];
  res.stats.substeps = st.max_depth.load();  // wake-chain depth proxy
  return res;
}

bool is_maximal_independent_set(const graph& g, std::span<const uint8_t> in_mis) {
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    bool has_selected_neighbor = false;
    for (auto u : g.neighbors(v)) {
      if (in_mis[u] && in_mis[v]) return false;  // not independent
      has_selected_neighbor |= in_mis[u] != 0;
    }
    if (!in_mis[v] && !has_selected_neighbor) return false;  // not maximal
  }
  return true;
}

mis_result mis_sequential(const graph& g, std::span<const uint32_t> priority,
                          const context& ctx) {
  run_scope scope(ctx);
  return mis_sequential(g, priority);
}

mis_result mis_rounds(const graph& g, std::span<const uint32_t> priority, const context& ctx) {
  run_scope scope(ctx);
  return mis_rounds(g, priority);
}

mis_result mis_tas(const graph& g, std::span<const uint32_t> priority, const context& ctx) {
  run_scope scope(ctx);
  return mis_tas(g, priority);
}

}  // namespace pp
