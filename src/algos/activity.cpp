#include "algos/activity.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/cancel.h"
#include "core/fenwick.h"
#include "core/phase_runner.h"
#include "pabst/augmented_map.h"
#include "pabst/multimap.h"
#include "parallel/random.h"
#include "parallel/sort.h"

namespace pp {

namespace {

constexpr int64_t kNegInf64 = std::numeric_limits<int64_t>::min() / 4;

// first end-order position whose end exceeds s (activities end-sorted):
// the dp query range is exactly [0, that position).
size_t compat_prefix(std::span<const int64_t> ends, int64_t s) {
  return static_cast<size_t>(std::upper_bound(ends.begin(), ends.end(), s) - ends.begin());
}

std::vector<int64_t> ends_of(std::span<const activity> acts) {
  return tabulate<int64_t>(acts.size(), [&](size_t i) { return acts[i].end; });
}

void check_sorted(std::span<const activity> acts) {
  for (size_t i = 0; i < acts.size(); ++i) {
    assert(acts[i].start < acts[i].end && "activities need positive durations");
    if (i > 0) assert(acts[i - 1].end <= acts[i].end && "activities must be end-sorted");
  }
}

}  // namespace

void sort_activities(std::vector<activity>& acts) {
  sort_inplace(std::span<activity>(acts), [](const activity& a, const activity& b) {
    if (a.end != b.end) return a.end < b.end;
    return a.start < b.start;
  });
}

activity_result activity_select_seq(std::span<const activity> acts) {
  check_sorted(acts);
  size_t n = acts.size();
  activity_result res;
  res.dp.assign(n, 0);
  auto ends = ends_of(acts);
  fenwick_max<int64_t> fw(n, 0);
  int64_t best = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t k = compat_prefix(ends, acts[i].start);  // k <= i by positive durations
    int64_t dp = acts[i].weight + std::max<int64_t>(fw.prefix_max(k), 0);
    res.dp[i] = dp;
    fw.raise(i, dp);
    best = std::max(best, dp);
  }
  res.best = best;
  return res;
}

// --- Type 1, PA-BST version (Algorithm 2) --------------------------------------

activity_result activity_select_type1(std::span<const activity> acts) {
  check_sorted(acts);
  size_t n = acts.size();
  activity_result res;
  res.dp.assign(n, 0);
  if (n == 0) return res;

  using tkey = std::pair<int64_t, uint32_t>;
  // T_time: (start, idx) -> end, augmented with the minimum end time.
  using time_entry = min_val_entry<tkey, int64_t, std::numeric_limits<int64_t>::max()>;
  using time_map = augmented_map<time_entry>;
  // T_DP: (end, idx) -> dp, augmented with the maximum dp value.
  using dp_entry = max_val_entry<tkey, int64_t, kNegInf64>;
  using dp_map = augmented_map<dp_entry>;

  auto time_entries = tabulate<time_map::entry_t>(n, [&](size_t i) {
    return time_map::entry_t{{acts[i].start, static_cast<uint32_t>(i)}, acts[i].end};
  });
  sort_inplace(std::span<time_map::entry_t>(time_entries),
               [](const auto& a, const auto& b) { return a.key < b.key; });
  auto ttime = time_map::from_sorted(time_entries);

  auto dp_entries = tabulate<dp_map::entry_t>(n, [&](size_t i) {
    return dp_map::entry_t{{acts[i].end, static_cast<uint32_t>(i)}, kNegInf64};
  });
  sort_inplace(std::span<dp_map::entry_t>(dp_entries),
               [](const auto& a, const auto& b) { return a.key < b.key; });
  auto tdp = dp_map::from_sorted(dp_entries);

  res.stats = run_type1(
      // extract: all unfinished activities starting strictly before the
      // earliest unfinished end time (Lemma 4.1 => exactly the next rank).
      [&]() -> std::vector<time_map::entry_t> {
        if (ttime.empty()) return {};
        int64_t e_x = ttime.aug_all();
        auto frontier = ttime.split_off_le({e_x, 0}, /*inclusive=*/false);
        return frontier.flatten();
      },
      [&](const std::vector<time_map::entry_t>& frontier) {
        size_t m = frontier.size();
        // compute dp values against finished activities only (Line 6)
        std::vector<dp_map::entry_t> ups(m);
        parallel_for(0, m, [&](size_t k) {
          uint32_t idx = frontier[k].key.second;
          int64_t s = frontier[k].key.first;
          int64_t q = tdp.aug_le({s, std::numeric_limits<uint32_t>::max()});
          res.dp[idx] = acts[idx].weight + std::max<int64_t>(q, 0);
          ups[k] = dp_map::entry_t{{acts[idx].end, idx}, res.dp[idx]};
        });
        // publish them (Line 7)
        sort_inplace(std::span<dp_map::entry_t>(ups),
                     [](const auto& a, const auto& b) { return a.key < b.key; });
        tdp.multi_update(ups);
      });

  int64_t best = 0;
  for (auto v : res.dp) best = std::max(best, v);
  res.best = best;
  return res;
}

// --- Type 1, flat-array ablation -------------------------------------------------

activity_result activity_select_type1_flat(std::span<const activity> acts) {
  check_sorted(acts);
  size_t n = acts.size();
  activity_result res;
  res.dp.assign(n, 0);
  if (n == 0) return res;

  auto ends = ends_of(acts);
  // ids in start order + suffix minima of end over that order
  auto sidx = sort_indices(n, [&](uint32_t a, uint32_t b) {
    if (acts[a].start != acts[b].start) return acts[a].start < acts[b].start;
    return a < b;
  });
  std::vector<int64_t> starts(n), sufmin(n + 1, std::numeric_limits<int64_t>::max());
  parallel_for(0, n, [&](size_t j) { starts[j] = acts[sidx[j]].start; });
  for (size_t j = n; j-- > 0;) sufmin[j] = std::min(sufmin[j + 1], acts[sidx[j]].end);

  atomic_fenwick_max<int64_t> fw(n, 0);
  size_t p = 0;
  while (p < n) {
    cancel_point();  // between frontier rounds: quiescent, cancellable
    int64_t e_x = sufmin[p];
    size_t q = static_cast<size_t>(std::lower_bound(starts.begin() + p, starts.end(), e_x) -
                                   starts.begin());
    // [p, q) = unfinished with start < e_x; nonempty (the argmin itself)
    parallel_for(p, q, [&](size_t j) {
      uint32_t id = sidx[j];
      size_t k = compat_prefix(ends, acts[id].start);
      res.dp[id] = acts[id].weight + std::max<int64_t>(fw.prefix_max(k), 0);
    });
    parallel_for(p, q, [&](size_t j) {
      uint32_t id = sidx[j];
      fw.raise(id, res.dp[id]);
    });
    res.stats.record_frontier(q - p);
    p = q;
  }

  int64_t best = 0;
  for (auto v : res.dp) best = std::max(best, v);
  res.best = best;
  return res;
}

// --- Type 2 (exact pivots, Lemma 5.1) --------------------------------------------

activity_result activity_select_type2(std::span<const activity> acts) {
  check_sorted(acts);
  size_t n = acts.size();
  activity_result res;
  res.dp.assign(n, 0);
  if (n == 0) return res;
  constexpr uint32_t kNoPivot = 0xFFFFFFFFu;

  auto ends = ends_of(acts);
  // prefix argmax of start over the end order: pam[k] = argmax start among
  // the first k activities (used to find the latest-starting compatible
  // predecessor = the pivot).
  std::vector<uint32_t> pam(n + 1, kNoPivot);
  for (size_t k = 0; k < n; ++k) {
    pam[k + 1] = pam[k];
    if (pam[k] == kNoPivot || acts[k].start > acts[pam[k]].start)
      pam[k + 1] = static_cast<uint32_t>(k);
  }

  std::vector<uint32_t> pivot(n);
  std::vector<size_t> kpre(n);
  parallel_for(0, n, [&](size_t i) {
    kpre[i] = compat_prefix(ends, acts[i].start);
    pivot[i] = kpre[i] == 0 ? kNoPivot : pam[kpre[i]];
  });

  // T_pivot multi-map of (pivot, activity) pairs (Sec. 5.1).
  pivot_multimap<uint32_t, uint32_t> tpivot;
  {
    std::vector<pivot_multimap<uint32_t, uint32_t>::pair_t> pairs;
    auto with_pivot = pack_index(n, [&](size_t i) { return pivot[i] != kNoPivot; });
    pairs.resize(with_pivot.size());
    parallel_for(0, with_pivot.size(), [&](size_t k) {
      pairs[k] = {pivot[with_pivot[k]], static_cast<uint32_t>(with_pivot[k])};
    });
    tpivot.multi_insert(std::move(pairs));
  }

  atomic_fenwick_max<int64_t> fw(n, 0);
  auto frontier32 = tabulate<uint32_t>(n, [](size_t i) { return static_cast<uint32_t>(i); });
  frontier32 = pack(std::span<const uint32_t>(frontier32),
                    [&](size_t i) { return pivot[i] == kNoPivot; });
  while (!frontier32.empty()) {
    cancel_point();  // between wake-up rounds: quiescent, cancellable
    res.stats.record_frontier(frontier32.size());
    res.stats.wakeup_attempts += frontier32.size();
    parallel_for(0, frontier32.size(), [&](size_t k) {
      uint32_t id = frontier32[k];
      res.dp[id] = acts[id].weight + std::max<int64_t>(fw.prefix_max(kpre[id]), 0);
    });
    parallel_for(0, frontier32.size(), [&](size_t k) {
      uint32_t id = frontier32[k];
      fw.raise(id, res.dp[id]);
    });
    sort_inplace(std::span<uint32_t>(frontier32));
    frontier32 = tpivot.extract_buckets(frontier32);
  }

  int64_t best = 0;
  for (auto v : res.dp) best = std::max(best, v);
  res.best = best;
  return res;
}

// --- generator --------------------------------------------------------------------

std::vector<activity> random_activities(size_t n, int64_t t_range, double mean_len,
                                        double sd_len, int64_t max_weight, uint64_t seed) {
  random_stream rs(seed);
  auto acts = tabulate<activity>(n, [&](size_t i) {
    int64_t start = rs.ith_range(4 * i, 0, std::max<int64_t>(t_range, 2) - 1);
    // Box-Muller from two hashed uniforms, truncated below at 1.
    double u1 = std::max(rs.ith_double(4 * i + 1), 1e-12);
    double u2 = rs.ith_double(4 * i + 2);
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    int64_t len = std::max<int64_t>(1, static_cast<int64_t>(std::llround(mean_len + sd_len * z)));
    int64_t w = rs.ith_range(4 * i + 3, 1, std::max<int64_t>(max_weight, 1));
    return activity{start, start + len, w};
  });
  sort_activities(acts);
  return acts;
}

activity_result activity_select_seq(std::span<const activity> acts, const context& ctx) {
  run_scope scope(ctx);
  return activity_select_seq(acts);
}

activity_result activity_select_type1(std::span<const activity> acts, const context& ctx) {
  run_scope scope(ctx);
  return activity_select_type1(acts);
}

activity_result activity_select_type1_flat(std::span<const activity> acts, const context& ctx) {
  run_scope scope(ctx);
  return activity_select_type1_flat(acts);
}

activity_result activity_select_type2(std::span<const activity> acts, const context& ctx) {
  run_scope scope(ctx);
  return activity_select_type2(acts);
}

}  // namespace pp
