// Weighted activity selection (Sec. 4.1 Algorithm 2, and Sec. 5.1).
//
// Given activities (start, end, weight) the DP over activities sorted by
// end time is  dp[i] = w_i + max(0, max{dp[j] : e_j <= s_i})  (Eq. 1); the
// answer is max_i dp[i]. The rank of activity i is the maximum number of
// pairwise-compatible activities ending with i.
//
// Four implementations sharing that contract:
//   activity_select_seq        — classic sequential O(n log n) DP
//                                (Fenwick prefix-max over the end order);
//   activity_select_type1      — Algorithm 2: two PA-BSTs; frontier = all
//                                unfinished activities starting before the
//                                earliest unfinished end (range query);
//   activity_select_type1_flat — same frontier rule on flat sorted arrays
//                                + suffix-min + atomic Fenwick (the
//                                "arrays beat trees" ablation; cf. the
//                                paper's footnote 5 remark for SSSP);
//   activity_select_type2      — Sec. 5.1: each activity pivots on the
//                                latest-starting compatible predecessor
//                                (Lemma 5.1: rank(x) = rank(pivot)+1), so
//                                wake-ups advance exactly one rank per
//                                round.
//
// All variants take O(n log n) work and O(rank(S) log n) span and return
// identical dp arrays. Precondition: activities sorted by (end, start)
// with positive durations (start < end); see sort_activities().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/context.h"
#include "core/stats.h"

namespace pp {

struct activity {
  int64_t start;
  int64_t end;
  int64_t weight;
};

struct activity_result {
  std::vector<int64_t> dp;  // best total weight of a compatible set ending with i
  int64_t best = 0;
  phase_stats stats;
};

// Sort into the canonical sequential order (end, then start, stable).
void sort_activities(std::vector<activity>& acts);

activity_result activity_select_seq(std::span<const activity> acts);
activity_result activity_select_type1(std::span<const activity> acts);
activity_result activity_select_type1_flat(std::span<const activity> acts);
activity_result activity_select_type2(std::span<const activity> acts);

// Context forms: run the same solvers under an explicit execution context.
activity_result activity_select_seq(std::span<const activity> acts, const context& ctx);
activity_result activity_select_type1(std::span<const activity> acts, const context& ctx);
activity_result activity_select_type1_flat(std::span<const activity> acts, const context& ctx);
activity_result activity_select_type2(std::span<const activity> acts, const context& ctx);

// Random instance following Sec. 6.1: uniform start times in [0, t_range),
// truncated-normal durations (mean_len, sd_len, min 1), uniform weights in
// [1, max_weight]. Result is sorted by sort_activities. Larger mean_len /
// t_range ratios give larger ranks.
std::vector<activity> random_activities(size_t n, int64_t t_range, double mean_len,
                                        double sd_len, int64_t max_weight, uint64_t seed);

}  // namespace pp
