// Greedy maximal independent set (Sec. 5.3, Algorithm 4).
//
// All three implementations compute the *same* MIS — the greedy MIS under
// the given priority order — which is what makes them testable against
// each other:
//   mis_sequential — process vertices by priority; select if no selected
//                    neighbor. O(n + m).
//   mis_rounds     — round-based baseline in the style of deterministic
//                    reservations [BFGS12]: each round selects every
//                    undecided vertex that is a local priority minimum
//                    among undecided neighbors. O(rounds * m) work.
//   mis_tas        — Algorithm 4: fully asynchronous wake-ups through TAS
//                    trees over each vertex's blocking (higher-priority)
//                    neighbors. O(m) work, O(log n log d_max) span whp
//                    with random priorities.
//
// Priorities are a permutation of 0..n-1; *smaller value = processed
// earlier*. Use pp::random_permutation for the random order the theory
// assumes (longest monotone path O(log n) whp, Fischer-Noever).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/context.h"
#include "core/stats.h"
#include "graph/csr.h"

namespace pp {

struct mis_result {
  std::vector<uint8_t> in_mis;  // 1 if selected
  size_t mis_size = 0;
  phase_stats stats;  // rounds (mis_rounds), max wake depth proxy in substeps (mis_tas)
};

mis_result mis_sequential(const graph& g, std::span<const uint32_t> priority);
mis_result mis_rounds(const graph& g, std::span<const uint32_t> priority);
mis_result mis_tas(const graph& g, std::span<const uint32_t> priority);

// Context forms.
mis_result mis_sequential(const graph& g, std::span<const uint32_t> priority,
                          const context& ctx);
mis_result mis_rounds(const graph& g, std::span<const uint32_t> priority, const context& ctx);
mis_result mis_tas(const graph& g, std::span<const uint32_t> priority, const context& ctx);

// Validation helper: independent + maximal.
bool is_maximal_independent_set(const graph& g, std::span<const uint8_t> in_mis);

}  // namespace pp
