#include "algos/coloring.h"

#include <algorithm>
#include <atomic>

#include "parallel/api.h"
#include "parallel/primitives.h"
#include "parallel/sort.h"
#include "tastree/tas_tree.h"

namespace pp {

namespace {

constexpr uint32_t kUncolored = 0xFFFFFFFFu;

// Smallest color not used by the blocking (earlier) neighbors of v.
uint32_t mex_color(std::span<const vertex_t> blocking, std::span<const uint32_t> color) {
  // Blocking lists are small on average; a bitmap of size deg+1 suffices
  // (mex of k values is <= k).
  std::vector<uint8_t> used(blocking.size() + 1, 0);
  for (auto u : blocking) {
    uint32_t c = color[u];
    if (c < used.size()) used[c] = 1;
  }
  uint32_t c = 0;
  while (used[c]) ++c;
  return c;
}

}  // namespace

coloring_result coloring_sequential(const graph& g, std::span<const uint32_t> priority) {
  vertex_t n = g.num_vertices();
  coloring_result res;
  res.color.assign(n, kUncolored);
  auto order = sort_indices(n, [&](uint32_t a, uint32_t b) { return priority[a] < priority[b]; });
  std::vector<vertex_t> colored_nbrs;
  for (auto v : order) {
    colored_nbrs.clear();
    for (auto u : g.neighbors(v))
      if (res.color[u] != kUncolored) colored_nbrs.push_back(u);
    res.color[v] = mex_color(colored_nbrs, res.color);
  }
  for (auto c : res.color) res.num_colors = std::max(res.num_colors, c + 1);
  return res;
}

namespace {

struct tas_coloring_state {
  const graph& g;
  std::span<const uint32_t> priority;
  std::vector<vertex_t> sorted_adj;  // per vertex, sorted by priority
  std::vector<size_t> adj_off;
  std::vector<uint32_t> num_blocking;
  std::vector<uint32_t>& color;
  tas_forest forest;

  std::span<const vertex_t> blocking(vertex_t v) const {
    return std::span<const vertex_t>(sorted_adj.data() + adj_off[v], num_blocking[v]);
  }
  std::span<const vertex_t> later(vertex_t v) const {
    return std::span<const vertex_t>(sorted_adj.data() + adj_off[v] + num_blocking[v],
                                     (adj_off[v + 1] - adj_off[v]) - num_blocking[v]);
  }

  uint32_t leaf_of(vertex_t v, vertex_t u) const {
    auto b = blocking(v);
    uint32_t pu = priority[u];
    size_t lo = 0, hi = b.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (priority[b[mid]] < pu) lo = mid + 1;
      else hi = mid;
    }
    return static_cast<uint32_t>(lo);
  }

  void wake_up(vertex_t v) {
    // All blocking neighbors carry final colors: color greedily.
    color[v] = mex_color(blocking(v), color);
    auto ls = later(v);
    parallel_for(0, ls.size(), [&](size_t j) {
      vertex_t w = ls[j];
      if (forest.mark(w, leaf_of(w, v))) wake_up(w);
    }, /*grain=*/64);
  }
};

}  // namespace

coloring_result coloring_tas(const graph& g, std::span<const uint32_t> priority) {
  vertex_t n = g.num_vertices();
  coloring_result res;
  res.color.assign(n, kUncolored);

  std::vector<size_t> off(n + 1, 0);
  for (vertex_t v = 0; v < n; ++v) off[v + 1] = off[v] + g.degree(v);
  std::vector<vertex_t> sadj(off[n]);
  std::vector<uint32_t> nblock(n);
  parallel_for(0, n, [&](size_t v) {
    auto nbrs = g.neighbors(static_cast<vertex_t>(v));
    std::copy(nbrs.begin(), nbrs.end(), sadj.begin() + off[v]);
    std::sort(sadj.begin() + off[v], sadj.begin() + off[v + 1],
              [&](vertex_t a, vertex_t b) { return priority[a] < priority[b]; });
    uint32_t pv = priority[v];
    uint32_t b = 0;
    while (b < nbrs.size() && priority[sadj[off[v] + b]] < pv) ++b;
    nblock[v] = b;
  });

  tas_forest forest{std::span<const uint32_t>(nblock), current_context()};  // before nblock is moved
  tas_coloring_state st{g,          priority,        std::move(sadj), std::move(off),
                        std::move(nblock), res.color, std::move(forest)};

  parallel_for(0, n, [&](size_t v) {
    if (st.forest.empty_tree(static_cast<vertex_t>(v))) st.wake_up(static_cast<vertex_t>(v));
  }, /*grain=*/256);

  for (auto c : res.color) res.num_colors = std::max(res.num_colors, c + 1);
  return res;
}

bool is_valid_coloring(const graph& g, std::span<const uint32_t> color) {
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    if (color[v] == kUncolored) return false;
    for (auto u : g.neighbors(v))
      if (color[u] == color[v]) return false;
  }
  return true;
}

coloring_result coloring_sequential(const graph& g, std::span<const uint32_t> priority,
                                    const context& ctx) {
  run_scope scope(ctx);
  return coloring_sequential(g, priority);
}

coloring_result coloring_tas(const graph& g, std::span<const uint32_t> priority,
                             const context& ctx) {
  run_scope scope(ctx);
  return coloring_tas(g, priority);
}

}  // namespace pp
