// Greedy graph coloring, Jones–Plassmann order (Sec. 5.3 "Graph Coloring
// and Matching").
//
// Sequential greedy: process vertices by priority; give each the smallest
// color unused by already-colored neighbors. The parallel version wakes a
// vertex through a TAS tree the moment its last higher-priority neighbor
// is colored — the same wake-up structure as Algorithm 4, giving O(n + m)
// work and O(span of the priority DAG * log d_max) span; with random
// priorities the DAG depth is O(log n) whp.
//
// Both produce the identical coloring (the greedy coloring is a
// deterministic function of the priority order).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/context.h"
#include "core/stats.h"
#include "graph/csr.h"

namespace pp {

struct coloring_result {
  std::vector<uint32_t> color;  // 0-based colors
  uint32_t num_colors = 0;
  phase_stats stats;
};

coloring_result coloring_sequential(const graph& g, std::span<const uint32_t> priority);
coloring_result coloring_tas(const graph& g, std::span<const uint32_t> priority);

// Context forms.
coloring_result coloring_sequential(const graph& g, std::span<const uint32_t> priority,
                                    const context& ctx);
coloring_result coloring_tas(const graph& g, std::span<const uint32_t> priority,
                             const context& ctx);

// No two adjacent vertices share a color.
bool is_valid_coloring(const graph& g, std::span<const uint32_t> color);

}  // namespace pp
