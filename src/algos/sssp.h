// Single-source shortest paths (Sec. 4.3 + Sec. 6.3).
//
// The phase-parallel relaxed rank of a vertex is ceil(d(v)/w*), w* the
// minimum edge weight: distances within one w*-window cannot rely on each
// other, so each window can be settled in parallel. That is exactly
// Delta-stepping with Delta = w* (the paper's observation, tested in their
// Fig. 6 with the implementation of Dong et al.).
//
//   sssp_dijkstra       — sequential binary-heap Dijkstra (work-efficient
//                         baseline);
//   sssp_bellman_ford   — frontier-based parallel Bellman-Ford (max
//                         parallelism, extra work);
//   sssp_delta_stepping — Meyer-Sanders buckets with light/heavy edge
//                         split and CAS write-min relaxations;
//   sssp_phase_parallel — Delta-stepping with Delta = w* (Theorem 4.5).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/context.h"
#include "core/stats.h"
#include "graph/csr.h"

namespace pp {

inline constexpr int64_t kInfDist = std::numeric_limits<int64_t>::max() / 4;

struct sssp_result {
  std::vector<int64_t> dist;  // kInfDist where unreachable
  phase_stats stats;          // rounds = buckets/steps, substeps = inner iterations
};

sssp_result sssp_dijkstra(const wgraph& g, vertex_t source);
sssp_result sssp_bellman_ford(const wgraph& g, vertex_t source);
sssp_result sssp_delta_stepping(const wgraph& g, vertex_t source, uint32_t delta);
sssp_result sssp_phase_parallel(const wgraph& g, vertex_t source);

// Context forms.
sssp_result sssp_dijkstra(const wgraph& g, vertex_t source, const context& ctx);
sssp_result sssp_bellman_ford(const wgraph& g, vertex_t source, const context& ctx);
sssp_result sssp_delta_stepping(const wgraph& g, vertex_t source, uint32_t delta,
                                const context& ctx);
sssp_result sssp_phase_parallel(const wgraph& g, vertex_t source, const context& ctx);
sssp_result sssp_crauser(const wgraph& g, vertex_t source, bool use_in_criterion,
                         const context& ctx);

// Incremental re-solve after edge insertions (the session delta shape,
// src/serve/session.h): `prior` holds exact distances in g minus the
// `inserted` edges. Old paths survive insertion, so every prior label is a
// valid upper bound in g, and any vertex whose distance improved lies
// downstream of an inserted edge — seeding a Dijkstra queue with just the
// endpoints the insertions improve re-settles exactly the affected
// subgraph. Output is bit-identical to a from-scratch solve. `prior` must
// NOT be reused across removals or weight increases (labels stop being
// upper bounds); the session store enforces that invalidation rule.
sssp_result sssp_incremental(const wgraph& g, vertex_t source, std::span<const int64_t> prior,
                             std::span<const wgraph::wedge> inserted);
sssp_result sssp_incremental(const wgraph& g, vertex_t source, std::span<const int64_t> prior,
                             std::span<const wgraph::wedge> inserted, const context& ctx);

// The alternative relaxed rank the paper points to (Sec. 4.3, [Crauser et
// al. 98]): in each round settle every queued vertex v with
//   dist(v) <= min_u (dist(u) + min_out_weight(u))        (OUT-criterion)
// or, when `use_in_criterion`,
//   dist(v) - min_in_weight(v) <= min_u dist(u)           (IN-criterion)
// as well. Settled vertices can never be improved, so each is relaxed
// once — work-efficient like Dijkstra, with multi-vertex rounds.
sssp_result sssp_crauser(const wgraph& g, vertex_t source, bool use_in_criterion = true);

}  // namespace pp
