// Pivot multi-map (Theorem 2.2 / the T_pivot structure of Algorithms 2–3).
//
// Stores (key, value) pairs where many values may share a key; backed by a
// PA-BST over the composite (key, value) ordering, so a key's bucket is a
// contiguous key-range of the underlying map. Supports batch insertion of
// pairs and batch *extraction* of whole buckets — exactly the access
// pattern of the wake-up strategy: when the objects in the current frontier
// finish, all pairs pivoted on them are retrieved (and never needed again).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <variant>
#include <vector>

#include "pabst/augmented_map.h"
#include "parallel/sort.h"

namespace pp {

template <typename K, typename V>
class pivot_multimap {
 public:
  struct pair_t {
    K key;
    V val;
    friend bool operator<(const pair_t& a, const pair_t& b) {
      if (a.key != b.key) return a.key < b.key;
      return a.val < b.val;
    }
    friend bool operator==(const pair_t& a, const pair_t& b) {
      return a.key == b.key && a.val == b.val;
    }
  };

  pivot_multimap() = default;

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  // Insert a batch of pairs (need not be sorted; (key,val) pairs must be
  // unique among themselves and against the current contents).
  void multi_insert(std::vector<pair_t> pairs) {
    if (pairs.empty()) return;
    sort_inplace(std::span<pair_t>(pairs));
    auto entries = tabulate<typename inner_map::entry_t>(
        pairs.size(), [&](size_t i) { return typename inner_map::entry_t{pairs[i], {}}; });
    map_.multi_insert(std::span<const typename inner_map::entry_t>(entries));
  }

  void insert(const K& k, const V& v) { map_.insert(pair_t{k, v}, {}); }

  // Remove and return all values bucketed under the given keys
  // (concatenated in (key, value) order). Keys must be sorted and unique.
  std::vector<V> extract_buckets(std::span<const K> sorted_keys) {
    if (sorted_keys.empty()) return {};
    using range_t = typename inner_map::key_range;
    auto ranges = tabulate<range_t>(sorted_keys.size(), [&](size_t i) {
      return range_t{pair_t{sorted_keys[i], min_v()}, pair_t{sorted_keys[i], max_v()}};
    });
    auto groups = map_.multi_extract_ranges(std::span<const range_t>(ranges));
    // Concatenate group values.
    std::vector<size_t> offsets(groups.size() + 1, 0);
    for (size_t i = 0; i < groups.size(); ++i) offsets[i + 1] = offsets[i] + groups[i].size();
    std::vector<V> out(offsets.back());
    parallel_for(0, groups.size(), [&](size_t g) {
      for (size_t j = 0; j < groups[g].size(); ++j)
        out[offsets[g] + j] = groups[g][j].key.val;
    });
    return out;
  }

  // All values for one key, without removal (mainly for tests).
  std::vector<V> find_bucket(const K& k) const {
    std::vector<V> out;
    map_.for_each([&](const pair_t& p, const auto&) {
      if (p.key == k) out.push_back(p.val);
    });
    return out;
  }

  bool check_invariants() const { return map_.check_invariants(); }

 private:
  static V min_v() { return std::numeric_limits<V>::lowest(); }
  static V max_v() { return std::numeric_limits<V>::max(); }

  using inner_map = augmented_map<map_entry<pair_t, std::monostate>>;
  inner_map map_;
};

}  // namespace pp
