// PA-BST: parallel augmented balanced binary search tree (Sec. 2 and
// Appendix A of the paper; design follows Blelloch-Ferizovic-Sun "Just
// Join for Parallel Ordered Sets" and PAM).
//
// The tree is an AVL whose primitive operation is join(L, k, R); split,
// insert, delete, union and the batch (multi_*) operations are expressed in
// terms of join and therefore inherit balance maintenance from it. Each
// node carries an augmented value: the monoid sum of aug_base(key, value)
// over its subtree, enabling O(log n) range-sum queries (Theorem 2.1, 1D).
//
// Cost bounds (n = tree size, m = batch size):
//   find / insert / remove / split / join      O(log n)
//   aug_le / aug_lt / aug_range                O(log n)
//   build (from sorted)                        O(n) work, O(log n) span
//   flatten                                    O(n) work, O(log n) span
//   multi_insert / multi_delete / multi_update O(m log n) work, O(log m log n) span
//   multi_find                                 O(m log n) work, read-only
//
// The Entry policy supplies the key order and the augmentation monoid:
//
//   struct Entry {
//     using key_t = ...; using val_t = ...; using aug_t = ...;
//     static bool comp(const key_t&, const key_t&);       // strict order
//     static aug_t aug_empty();                           // monoid identity
//     static aug_t aug_base(const key_t&, const val_t&);  // leaf value
//     static aug_t aug_combine(const aug_t&, const aug_t&);  // associative
//   };
//
// Trees own their nodes (no persistence / sharing): operations mutate and
// rebuild in place, matching how the algorithms in this library use them.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "parallel/api.h"

namespace pp {

// Batch sizes below this run serially inside tree operations.
inline constexpr size_t kTreeGrain = 512;

template <typename Entry>
class augmented_map {
 public:
  using key_t = typename Entry::key_t;
  using val_t = typename Entry::val_t;
  using aug_t = typename Entry::aug_t;
  struct entry_t {
    key_t key;
    val_t val;
  };

  augmented_map() = default;
  ~augmented_map() { destroy(root_); }
  augmented_map(const augmented_map&) = delete;
  augmented_map& operator=(const augmented_map&) = delete;
  augmented_map(augmented_map&& o) noexcept : root_(o.root_) { o.root_ = nullptr; }
  augmented_map& operator=(augmented_map&& o) noexcept {
    if (this != &o) {
      destroy(root_);
      root_ = o.root_;
      o.root_ = nullptr;
    }
    return *this;
  }

  size_t size() const { return node_size(root_); }
  bool empty() const { return root_ == nullptr; }
  int height() const { return node_height(root_); }

  // Monoid sum over the whole tree.
  aug_t aug_all() const { return root_ ? root_->aug : Entry::aug_empty(); }

  // -------------------------------------------------------------------------
  // Construction
  // -------------------------------------------------------------------------

  // Build from entries sorted by key, keys strictly increasing.
  static augmented_map from_sorted(std::span<const entry_t> es) {
    augmented_map m;
    m.root_ = build_rec(es);
    return m;
  }

  // -------------------------------------------------------------------------
  // Point operations
  // -------------------------------------------------------------------------

  const val_t* find(const key_t& k) const {
    node* t = root_;
    while (t) {
      if (Entry::comp(k, t->key)) t = t->left;
      else if (Entry::comp(t->key, k)) t = t->right;
      else return &t->val;
    }
    return nullptr;
  }

  bool contains(const key_t& k) const { return find(k) != nullptr; }

  // Insert or overwrite.
  void insert(const key_t& k, const val_t& v) {
    auto [l, m, r] = split(root_, k);
    if (m == nullptr) m = new_node(k, v);
    else m->val = v;
    root_ = join(l, m, r);
  }

  // Returns true if the key was present.
  bool remove(const key_t& k) {
    auto [l, m, r] = split(root_, k);
    root_ = join2(l, r);
    if (m) {
      free_node(m);
      return true;
    }
    return false;
  }

  std::optional<entry_t> first() const {
    node* t = root_;
    if (!t) return std::nullopt;
    while (t->left) t = t->left;
    return entry_t{t->key, t->val};
  }

  std::optional<entry_t> last() const {
    node* t = root_;
    if (!t) return std::nullopt;
    while (t->right) t = t->right;
    return entry_t{t->key, t->val};
  }

  // k-th smallest entry (0-based). O(log n).
  std::optional<entry_t> select(size_t k) const {
    node* t = root_;
    while (t) {
      size_t ls = node_size(t->left);
      if (k < ls) t = t->left;
      else if (k == ls) return entry_t{t->key, t->val};
      else {
        k -= ls + 1;
        t = t->right;
      }
    }
    return std::nullopt;
  }

  // Number of entries with key < k. O(log n).
  size_t rank_of(const key_t& k) const {
    node* t = root_;
    size_t r = 0;
    while (t) {
      if (Entry::comp(t->key, k)) {
        r += node_size(t->left) + 1;
        t = t->right;
      } else {
        t = t->left;
      }
    }
    return r;
  }

  // -------------------------------------------------------------------------
  // Split / join (tree surgery)
  // -------------------------------------------------------------------------

  // Detach and return the sub-map of keys <= k (or < k if !inclusive);
  // *this keeps the rest.
  augmented_map split_off_le(const key_t& k, bool inclusive = true) {
    auto [l, m, r] = split(root_, k);
    augmented_map out;
    if (m) {
      if (inclusive) l = join(l, m, nullptr);
      else r = join(nullptr, m, r);
    }
    out.root_ = l;
    root_ = r;
    return out;
  }

  // Append `right` (all keys must be greater than ours); consumes it.
  void concat(augmented_map&& right) {
    root_ = join2(root_, right.root_);
    right.root_ = nullptr;
  }

  // Set operations in the join framework (BFS16): O(m log(n/m + 1)) work,
  // polylog span, consuming both inputs.
  //
  // Union keeps the left value on duplicate keys.
  static augmented_map map_union(augmented_map&& a, augmented_map&& b) {
    augmented_map out;
    out.root_ = union_rec(a.root_, b.root_);
    a.root_ = b.root_ = nullptr;
    return out;
  }

  // Keys present in both; keeps a's values.
  static augmented_map map_intersection(augmented_map&& a, augmented_map&& b) {
    augmented_map out;
    out.root_ = intersect_rec(a.root_, b.root_);
    a.root_ = b.root_ = nullptr;
    return out;
  }

  // Keys of a not present in b.
  static augmented_map map_difference(augmented_map&& a, augmented_map&& b) {
    augmented_map out;
    out.root_ = difference_rec(a.root_, b.root_);
    a.root_ = b.root_ = nullptr;
    return out;
  }

  // -------------------------------------------------------------------------
  // Range-sum queries (Theorem 2.1, k = 1)
  // -------------------------------------------------------------------------

  // Monoid sum of entries with key <= k.
  aug_t aug_le(const key_t& k) const { return aug_le_rec(root_, k, /*inclusive=*/true); }
  // Monoid sum of entries with key < k.
  aug_t aug_lt(const key_t& k) const { return aug_le_rec(root_, k, /*inclusive=*/false); }
  // Monoid sum of entries with key >= k.
  aug_t aug_ge(const key_t& k) const { return aug_ge_rec(root_, k, /*inclusive=*/true); }
  // Monoid sum of entries with lo <= key <= hi.
  aug_t aug_range(const key_t& lo, const key_t& hi) const {
    if (Entry::comp(hi, lo)) return Entry::aug_empty();
    return aug_range_rec(root_, lo, hi);
  }

  // -------------------------------------------------------------------------
  // Batch operations (Theorem 2.2)
  // -------------------------------------------------------------------------

  // Entries sorted by strictly increasing key; inserts new keys, overwrites
  // existing ones.
  void multi_insert(std::span<const entry_t> es) { root_ = multi_insert_rec(root_, es); }

  // Keys sorted strictly increasing; removes those present.
  void multi_delete(std::span<const key_t> ks) { root_ = multi_delete_rec(root_, ks); }

  // Entries sorted by strictly increasing key; updates values of existing
  // keys only (missing keys are ignored).
  void multi_update(std::span<const entry_t> es) { multi_update_rec(root_, es); }

  // Keys sorted strictly increasing; out[i] = value for ks[i] if present.
  std::vector<std::optional<val_t>> multi_find(std::span<const key_t> ks) const {
    std::vector<std::optional<val_t>> out(ks.size());
    multi_find_rec(root_, ks, std::span<std::optional<val_t>>(out));
    return out;
  }

  // Closed key range used by multi_extract_ranges.
  struct key_range {
    key_t lo;
    key_t hi;
  };

  // Remove all entries whose key falls in one of the given ranges and
  // return them, grouped per range (in key order within each group). Ranges
  // must be sorted and pairwise disjoint (lo <= hi, hi_i < lo_{i+1}).
  // O((m + f) log n) work for m ranges / f found entries; O(log m log n +
  // log f) span.
  std::vector<std::vector<entry_t>> multi_extract_ranges(std::span<const key_range> ranges) {
    std::vector<std::vector<entry_t>> out(ranges.size());
    root_ = multi_extract_rec(root_, ranges, std::span<std::vector<entry_t>>(out));
    return out;
  }

  // -------------------------------------------------------------------------
  // Flatten / iterate
  // -------------------------------------------------------------------------

  std::vector<entry_t> flatten() const {
    std::vector<entry_t> out(size());
    flatten_rec(root_, std::span<entry_t>(out));
    return out;
  }

  // Serial in-order visit: f(key, val).
  template <typename F>
  void for_each(F f) const {
    for_each_rec(root_, f);
  }

  // Validation hook for tests: checks BST order, AVL balance, sizes and
  // augmented values. O(n).
  bool check_invariants() const {
    bool ok = true;
    check_rec(root_, nullptr, nullptr, ok);
    return ok;
  }

 private:
  struct node {
    node* left;
    node* right;
    key_t key;
    val_t val;
    aug_t aug;
    uint32_t size;
    int8_t height;
  };

  node* root_ = nullptr;

  // --- node helpers ---------------------------------------------------------

  static int node_height(const node* t) { return t ? t->height : 0; }
  static size_t node_size(const node* t) { return t ? t->size : 0; }

  static node* new_node(const key_t& k, const val_t& v) {
    return new node{nullptr, nullptr, k, v, Entry::aug_base(k, v), 1, 1};
  }

  static void free_node(node* t) { delete t; }

  static void destroy(node* t) {
    if (!t) return;
    if (t->size <= kTreeGrain) {
      destroy(t->left);
      destroy(t->right);
    } else {
      par_do([&] { destroy(t->left); }, [&] { destroy(t->right); });
    }
    delete t;
  }

  // Recompute height/size/aug from children.
  static void update(node* t) {
    t->height = static_cast<int8_t>(1 + std::max(node_height(t->left), node_height(t->right)));
    t->size = static_cast<uint32_t>(1 + node_size(t->left) + node_size(t->right));
    aug_t a = Entry::aug_base(t->key, t->val);
    if (t->left) a = Entry::aug_combine(t->left->aug, a);
    if (t->right) a = Entry::aug_combine(a, t->right->aug);
    t->aug = a;
  }

  static node* rotate_left(node* t) {
    node* r = t->right;
    t->right = r->left;
    r->left = t;
    update(t);
    update(r);
    return r;
  }

  static node* rotate_right(node* t) {
    node* l = t->left;
    t->left = l->right;
    l->right = t;
    update(t);
    update(l);
    return l;
  }

  // --- join (the primitive; AVL variant of BFS16) ----------------------------

  static node* make(node* l, node* m, node* r) {
    m->left = l;
    m->right = r;
    update(m);
    return m;
  }

  static node* join_right(node* l, node* m, node* r) {
    // pre: height(l) > height(r) + 1
    if (node_height(l->right) <= node_height(r) + 1) {
      node* t = make(l->right, m, r);
      l->right = t;
      update(l);
      if (node_height(t) > node_height(l->left) + 1) {
        l->right = rotate_right(t);
        update(l);
        return rotate_left(l);
      }
      return l;
    }
    node* t = join_right(l->right, m, r);
    l->right = t;
    update(l);
    if (node_height(t) > node_height(l->left) + 1) return rotate_left(l);
    return l;
  }

  static node* join_left(node* l, node* m, node* r) {
    // pre: height(r) > height(l) + 1
    if (node_height(r->left) <= node_height(l) + 1) {
      node* t = make(l, m, r->left);
      r->left = t;
      update(r);
      if (node_height(t) > node_height(r->right) + 1) {
        r->left = rotate_left(t);
        update(r);
        return rotate_right(r);
      }
      return r;
    }
    node* t = join_left(l, m, r->left);
    r->left = t;
    update(r);
    if (node_height(t) > node_height(r->right) + 1) return rotate_right(r);
    return r;
  }

  // Join trees l (smaller keys) and r (larger keys) with middle node m.
  static node* join(node* l, node* m, node* r) {
    if (m == nullptr) return join2(l, r);
    if (node_height(l) > node_height(r) + 1) return join_right(l, m, r);
    if (node_height(r) > node_height(l) + 1) return join_left(l, m, r);
    return make(l, m, r);
  }

  // Join without a middle node.
  static node* join2(node* l, node* r) {
    if (!l) return r;
    if (!r) return l;
    node* m = detach_min(r);
    return join(l, m, r);
  }

  // Remove and return the minimum node of t (t passed by ref).
  static node* detach_min(node*& t) {
    // Iteratively splitting out the min via split would be O(log n) too;
    // simple recursive unlink + rebalance-by-join keeps the code small.
    if (t->left == nullptr) {
      node* m = t;
      t = t->right;
      m->right = nullptr;
      update(m);
      return m;
    }
    node* l = t->left;
    node* r = t->right;
    node* mid = t;
    node* m = detach_min(l);
    t = join(l, mid, r);
    return m;
  }

  // --- split -----------------------------------------------------------------

  // Returns (keys < k, node with key k or nullptr, keys > k); consumes t.
  static std::tuple<node*, node*, node*> split(node* t, const key_t& k) {
    if (!t) return {nullptr, nullptr, nullptr};
    if (Entry::comp(k, t->key)) {
      auto [l, m, r] = split(t->left, k);
      return {l, m, join(r, t, t->right)};
    }
    if (Entry::comp(t->key, k)) {
      auto [l, m, r] = split(t->right, k);
      return {join(t->left, t, l), m, r};
    }
    node* l = t->left;
    node* r = t->right;
    t->left = t->right = nullptr;
    update(t);
    return {l, t, r};
  }

  // --- build / flatten --------------------------------------------------------

  static node* build_rec(std::span<const entry_t> es) {
    if (es.empty()) return nullptr;
    size_t mid = es.size() / 2;
    node* m = new_node(es[mid].key, es[mid].val);
    if (es.size() <= kTreeGrain) {
      m->left = build_rec(es.subspan(0, mid));
      m->right = build_rec(es.subspan(mid + 1));
    } else {
      par_do([&] { m->left = build_rec(es.subspan(0, mid)); },
             [&] { m->right = build_rec(es.subspan(mid + 1)); });
    }
    update(m);
    return m;
  }

  static void flatten_rec(const node* t, std::span<entry_t> out) {
    if (!t) return;
    size_t ls = node_size(t->left);
    out[ls] = entry_t{t->key, t->val};
    if (t->size <= kTreeGrain) {
      flatten_rec(t->left, out.subspan(0, ls));
      flatten_rec(t->right, out.subspan(ls + 1));
    } else {
      par_do([&] { flatten_rec(t->left, out.subspan(0, ls)); },
             [&] { flatten_rec(t->right, out.subspan(ls + 1)); });
    }
  }

  template <typename F>
  static void for_each_rec(const node* t, F& f) {
    if (!t) return;
    for_each_rec(t->left, f);
    f(t->key, t->val);
    for_each_rec(t->right, f);
  }

  // --- range-aug queries -------------------------------------------------------

  static aug_t subtree_aug(const node* t) { return t ? t->aug : Entry::aug_empty(); }

  static aug_t aug_le_rec(const node* t, const key_t& k, bool inclusive) {
    aug_t acc = Entry::aug_empty();
    while (t) {
      bool key_gt_k = Entry::comp(k, t->key);
      bool key_eq_k = !key_gt_k && !Entry::comp(t->key, k);
      if (key_gt_k || (key_eq_k && !inclusive)) {
        t = t->left;
      } else {
        acc = Entry::aug_combine(acc, subtree_aug(t->left));
        acc = Entry::aug_combine(acc, Entry::aug_base(t->key, t->val));
        t = t->right;
      }
    }
    return acc;
  }

  static aug_t aug_ge_rec(const node* t, const key_t& k, bool inclusive) {
    aug_t acc = Entry::aug_empty();
    while (t) {
      bool key_lt_k = Entry::comp(t->key, k);
      bool key_eq_k = !key_lt_k && !Entry::comp(k, t->key);
      if (key_lt_k || (key_eq_k && !inclusive)) {
        t = t->right;
      } else {
        acc = Entry::aug_combine(Entry::aug_base(t->key, t->val), acc);
        acc = Entry::aug_combine(subtree_aug(t->right), acc);
        t = t->left;
      }
    }
    return acc;
  }

  static aug_t aug_range_rec(const node* t, const key_t& lo, const key_t& hi) {
    while (t) {
      if (Entry::comp(t->key, lo)) {
        t = t->right;
        continue;
      }
      if (Entry::comp(hi, t->key)) {
        t = t->left;
        continue;
      }
      // lo <= key <= hi: left side contributes keys >= lo, right side <= hi.
      aug_t acc = aug_ge_rec(t->left, lo, true);
      acc = Entry::aug_combine(acc, Entry::aug_base(t->key, t->val));
      acc = Entry::aug_combine(acc, aug_le_rec(t->right, hi, true));
      return acc;
    }
    return Entry::aug_empty();
  }

  // --- batch operations ---------------------------------------------------------

  static node* multi_insert_rec(node* t, std::span<const entry_t> es) {
    if (es.empty()) return t;
    if (t == nullptr) return build_rec(es);
    size_t mid = es.size() / 2;
    auto [l, m, r] = split(t, es[mid].key);
    if (m == nullptr) m = new_node(es[mid].key, es[mid].val);
    else m->val = es[mid].val;
    node *nl = nullptr, *nr = nullptr;
    if (es.size() <= kTreeGrain) {
      nl = multi_insert_rec(l, es.subspan(0, mid));
      nr = multi_insert_rec(r, es.subspan(mid + 1));
    } else {
      par_do([&, lp = l] { nl = multi_insert_rec(lp, es.subspan(0, mid)); },
             [&, rp = r] { nr = multi_insert_rec(rp, es.subspan(mid + 1)); });
    }
    // m's aug may be stale (val overwritten); join() calls update on the path.
    return join(nl, m, nr);
  }

  static node* multi_delete_rec(node* t, std::span<const key_t> ks) {
    if (ks.empty() || t == nullptr) return t;
    size_t mid = ks.size() / 2;
    auto [l, m, r] = split(t, ks[mid]);
    if (m) free_node(m);
    node *nl = nullptr, *nr = nullptr;
    if (ks.size() <= kTreeGrain) {
      nl = multi_delete_rec(l, ks.subspan(0, mid));
      nr = multi_delete_rec(r, ks.subspan(mid + 1));
    } else {
      par_do([&, lp = l] { nl = multi_delete_rec(lp, ks.subspan(0, mid)); },
             [&, rp = r] { nr = multi_delete_rec(rp, ks.subspan(mid + 1)); });
    }
    return join2(nl, nr);
  }

  // Update values in place without restructuring: partition the batch by
  // the root key and recurse; augmented values are recomputed bottom-up on
  // the visited spine only.
  static bool multi_update_rec(node* t, std::span<const entry_t> es) {
    if (t == nullptr || es.empty()) return false;
    // lower_bound: first entry with key >= t->key
    auto lb = std::lower_bound(es.begin(), es.end(), t->key, [](const entry_t& e, const key_t& k) {
      return Entry::comp(e.key, k);
    });
    size_t li = static_cast<size_t>(lb - es.begin());
    bool here = false;
    size_t ri = li;
    if (li < es.size() && !Entry::comp(t->key, es[li].key)) {  // es[li].key == t->key
      t->val = es[li].val;
      here = true;
      ri = li + 1;
    }
    bool lch = false, rch = false;
    if (es.size() <= kTreeGrain) {
      lch = multi_update_rec(t->left, es.subspan(0, li));
      rch = multi_update_rec(t->right, es.subspan(ri));
    } else {
      par_do([&] { lch = multi_update_rec(t->left, es.subspan(0, li)); },
             [&] { rch = multi_update_rec(t->right, es.subspan(ri)); });
    }
    if (here || lch || rch) {
      update(t);
      return true;
    }
    return false;
  }

  static void multi_find_rec(const node* t, std::span<const key_t> ks,
                             std::span<std::optional<val_t>> out) {
    if (ks.empty()) return;
    if (t == nullptr) return;  // leave out[] as nullopt
    auto lb = std::lower_bound(ks.begin(), ks.end(), t->key, [](const key_t& a, const key_t& b) {
      return Entry::comp(a, b);
    });
    size_t li = static_cast<size_t>(lb - ks.begin());
    size_t ri = li;
    if (li < ks.size() && !Entry::comp(t->key, ks[li])) {
      out[li] = t->val;
      ri = li + 1;
    }
    if (ks.size() <= kTreeGrain) {
      multi_find_rec(t->left, ks.subspan(0, li), out.subspan(0, li));
      multi_find_rec(t->right, ks.subspan(ri), out.subspan(ri));
    } else {
      par_do([&] { multi_find_rec(t->left, ks.subspan(0, li), out.subspan(0, li)); },
             [&] { multi_find_rec(t->right, ks.subspan(ri), out.subspan(ri)); });
    }
  }

  static node* multi_extract_rec(node* t, std::span<const key_range> ranges,
                                 std::span<std::vector<entry_t>> outs) {
    if (ranges.empty() || t == nullptr) return t;
    size_t mid = ranges.size() / 2;
    if (Entry::comp(ranges[mid].hi, ranges[mid].lo)) {
      // Empty range (lo > hi): extract nothing, but still recurse on both
      // sides of the split point so neighbouring ranges are handled.
      auto [a0, m0, d0] = split(t, ranges[mid].lo);
      if (m0) d0 = join(nullptr, m0, d0);  // keep the exact-match node
      node *na0 = nullptr, *nd0 = nullptr;
      par_do([&, ap = a0] { na0 = multi_extract_rec(ap, ranges.subspan(0, mid), outs.subspan(0, mid)); },
             [&, dp = d0] { nd0 = multi_extract_rec(dp, ranges.subspan(mid + 1), outs.subspan(mid + 1)); });
      return join2(na0, nd0);
    }
    auto [a, mlo, b] = split(t, ranges[mid].lo);
    auto [c, mhi, d] = split(b, ranges[mid].hi);
    // Collect extracted entries in key order: lo-match, (lo,hi) interior, hi-match.
    auto& out = outs[mid];
    out.reserve((mlo ? 1 : 0) + node_size(c) + (mhi ? 1 : 0));
    if (mlo) {
      out.push_back(entry_t{mlo->key, mlo->val});
      free_node(mlo);
    }
    if (c) {
      size_t base = out.size();
      out.resize(base + node_size(c));
      flatten_rec(c, std::span<entry_t>(out).subspan(base));
      destroy(c);
    }
    if (mhi) {
      out.push_back(entry_t{mhi->key, mhi->val});
      free_node(mhi);
    }
    node *na = nullptr, *nd = nullptr;
    if (ranges.size() <= 8) {
      na = multi_extract_rec(a, ranges.subspan(0, mid), outs.subspan(0, mid));
      nd = multi_extract_rec(d, ranges.subspan(mid + 1), outs.subspan(mid + 1));
    } else {
      par_do([&, ap = a] { na = multi_extract_rec(ap, ranges.subspan(0, mid), outs.subspan(0, mid)); },
             [&, dp = d] { nd = multi_extract_rec(dp, ranges.subspan(mid + 1), outs.subspan(mid + 1)); });
    }
    return join2(na, nd);
  }

  // --- set operations (BFS16 union/intersect/difference) --------------------------

  static node* union_rec(node* a, node* b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    auto [bl, bm, br] = split(b, a->key);
    if (bm) free_node(bm);  // prefer a's value
    node* l = a->left;
    node* r = a->right;
    node *nl = nullptr, *nr = nullptr;
    if (node_size(a) + node_size(bl) + node_size(br) <= kTreeGrain) {
      nl = union_rec(l, bl);
      nr = union_rec(r, br);
    } else {
      par_do([&] { nl = union_rec(l, bl); }, [&] { nr = union_rec(r, br); });
    }
    return join(nl, a, nr);
  }

  static node* intersect_rec(node* a, node* b) {
    if (a == nullptr) {
      destroy(b);
      return nullptr;
    }
    if (b == nullptr) {
      destroy(a);
      return nullptr;
    }
    auto [bl, bm, br] = split(b, a->key);
    node* l = a->left;
    node* r = a->right;
    bool keep = bm != nullptr;
    if (bm) free_node(bm);
    node *nl = nullptr, *nr = nullptr;
    size_t work = node_size(a) + node_size(bl) + node_size(br);
    if (work <= kTreeGrain) {
      nl = intersect_rec(l, bl);
      nr = intersect_rec(r, br);
    } else {
      par_do([&] { nl = intersect_rec(l, bl); }, [&] { nr = intersect_rec(r, br); });
    }
    if (keep) {
      a->left = a->right = nullptr;
      return join(nl, a, nr);
    }
    free_node(a);
    return join2(nl, nr);
  }

  static node* difference_rec(node* a, node* b) {
    if (a == nullptr) {
      destroy(b);
      return nullptr;
    }
    if (b == nullptr) return a;
    auto [bl, bm, br] = split(b, a->key);
    bool drop = bm != nullptr;
    if (bm) free_node(bm);
    node* l = a->left;
    node* r = a->right;
    node *nl = nullptr, *nr = nullptr;
    size_t work = node_size(a) + node_size(bl) + node_size(br);
    if (work <= kTreeGrain) {
      nl = difference_rec(l, bl);
      nr = difference_rec(r, br);
    } else {
      par_do([&] { nl = difference_rec(l, bl); }, [&] { nr = difference_rec(r, br); });
    }
    if (drop) {
      free_node(a);
      return join2(nl, nr);
    }
    a->left = a->right = nullptr;
    return join(nl, a, nr);
  }

  // --- invariants ---------------------------------------------------------------

  static void check_rec(const node* t, const key_t* lo, const key_t* hi, bool& ok) {
    if (!t || !ok) return;
    if (lo && !Entry::comp(*lo, t->key)) ok = false;
    if (hi && !Entry::comp(t->key, *hi)) ok = false;
    if (std::abs(node_height(t->left) - node_height(t->right)) > 1) ok = false;
    if (t->height != 1 + std::max(node_height(t->left), node_height(t->right))) ok = false;
    if (t->size != 1 + node_size(t->left) + node_size(t->right)) ok = false;
    check_rec(t->left, lo, &t->key, ok);
    check_rec(t->right, &t->key, hi, ok);
  }
};

// -----------------------------------------------------------------------------
// Ready-made augmentation policies.
// -----------------------------------------------------------------------------

// No augmentation (plain ordered map).
template <typename K, typename V, typename Less = std::less<K>>
struct map_entry {
  using key_t = K;
  using val_t = V;
  struct aug_t {};
  static bool comp(const K& a, const K& b) { return Less{}(a, b); }
  static aug_t aug_empty() { return {}; }
  static aug_t aug_base(const K&, const V&) { return {}; }
  static aug_t aug_combine(const aug_t&, const aug_t&) { return {}; }
};

// Augment on the maximum value.
template <typename K, typename V, V kIdentity, typename Less = std::less<K>>
struct max_val_entry {
  using key_t = K;
  using val_t = V;
  using aug_t = V;
  static bool comp(const K& a, const K& b) { return Less{}(a, b); }
  static aug_t aug_empty() { return kIdentity; }
  static aug_t aug_base(const K&, const V& v) { return v; }
  static aug_t aug_combine(const aug_t& a, const aug_t& b) { return a < b ? b : a; }
};

// Augment on the minimum value.
template <typename K, typename V, V kIdentity, typename Less = std::less<K>>
struct min_val_entry {
  using key_t = K;
  using val_t = V;
  using aug_t = V;
  static bool comp(const K& a, const K& b) { return Less{}(a, b); }
  static aug_t aug_empty() { return kIdentity; }
  static aug_t aug_base(const K&, const V& v) { return v; }
  static aug_t aug_combine(const aug_t& a, const aug_t& b) { return b < a ? b : a; }
};

// Augment on the sum of values.
template <typename K, typename V, typename Less = std::less<K>>
struct sum_val_entry {
  using key_t = K;
  using val_t = V;
  using aug_t = V;
  static bool comp(const K& a, const K& b) { return Less{}(a, b); }
  static aug_t aug_empty() { return V{}; }
  static aug_t aug_base(const K&, const V& v) { return v; }
  static aug_t aug_combine(const aug_t& a, const aug_t& b) { return a + b; }
};

}  // namespace pp
