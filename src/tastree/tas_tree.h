// TAS trees (Sec. 5.3, Fig. 4): per-object complete binary trees of
// test_and_set flags that detect, fully asynchronously, the moment the
// *last* predecessor of an object finishes.
//
// Semantics per the paper: marking a leaf propagates one flag up the tree.
// A successful TAS on a parent means the sibling subtree is not fully
// finished yet — stop. A failed TAS means the sibling already completed —
// continue upward. A failed TAS at the root means every leaf is marked:
// exactly one marker per tree observes this, and that caller wakes the
// object up. Total work over a tree with m leaves is O(m) (each internal
// node sees at most two TAS attempts); each mark costs O(log m) span.
//
// All trees of an algorithm instance are packed into one arena
// (`tas_forest`), with the standard implicit-heap layout per tree: for a
// tree with m leaves, slots 1..m-1 are internal nodes and slots m..2m-1 are
// leaves; parent(i) = i/2; slot 1 is the root.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/api.h"
#include "parallel/primitives.h"

namespace pp {

class tas_forest {
 public:
  // leaf_counts[v] = number of predecessors of object v. The context form
  // builds the arena under `ctx` (the TAS flags themselves are
  // deterministic — no RNG — but construction forks under the run's
  // backend/width like every other substrate); the argument-less form
  // snapshots the current context.
  tas_forest(std::span<const uint32_t> leaf_counts, const context& ctx) {
    size_t n = leaf_counts.size();
    offsets_.assign(n + 1, 0);
    parallel_for(ctx, 0, n, [&](size_t v) {
      offsets_[v + 1] = leaf_counts[v] == 0 ? 0 : 2 * static_cast<size_t>(leaf_counts[v]);
    });
    scan_inclusive(std::span<size_t>(offsets_.data() + 1, n), size_t{0}, std::plus<size_t>{});
    leaves_.assign(n, 0);
    parallel_for(ctx, 0, n, [&](size_t v) { leaves_[v] = leaf_counts[v]; });
    flags_ = std::vector<std::atomic<uint8_t>>(offsets_.back());
    parallel_for(ctx, 0, flags_.size(), [&](size_t i) {
      flags_[i].store(0, std::memory_order_relaxed);
    });
  }
  explicit tas_forest(std::span<const uint32_t> leaf_counts)
      : tas_forest(leaf_counts, current_context()) {}

  size_t num_trees() const { return leaves_.size(); }
  uint32_t num_leaves(uint32_t v) const { return leaves_[v]; }
  bool empty_tree(uint32_t v) const { return leaves_[v] == 0; }

  // Mark leaf `leaf` (0-based) of tree `v`. Returns true iff this mark
  // completed the tree — i.e. the caller is the unique observer of "all
  // leaves of v are marked" and must wake v up.
  bool mark(uint32_t v, uint32_t leaf) {
    uint32_t m = leaves_[v];
    std::atomic<uint8_t>* t = flags_.data() + offsets_[v];
    uint32_t i = m + leaf;
    t[i].store(1, std::memory_order_release);  // leaf flag, for introspection
    if (m == 1) return true;                   // single predecessor: done now
    // climb: TAS each ancestor; success => sibling subtree pending => stop
    for (i >>= 1;; i >>= 1) {
      if (t[i].exchange(1, std::memory_order_acq_rel) == 0) return false;  // TAS success
      if (i == 1) return true;  // failed TAS at the root: all leaves marked
    }
  }

  // Test hooks.
  bool leaf_marked(uint32_t v, uint32_t leaf) const {
    return flags_[offsets_[v] + leaves_[v] + leaf].load(std::memory_order_acquire) != 0;
  }
  bool root_flag(uint32_t v) const {
    if (leaves_[v] < 2) return false;
    return flags_[offsets_[v] + 1].load(std::memory_order_acquire) != 0;
  }

 private:
  std::vector<size_t> offsets_;            // per-tree slot ranges (2*m slots each)
  std::vector<uint32_t> leaves_;           // per-tree leaf counts
  std::vector<std::atomic<uint8_t>> flags_;  // the forest arena
};

}  // namespace pp
