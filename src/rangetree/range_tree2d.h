// Augmented 2D range tree over a static point set, represented with nested
// arrays (Sec. 2 + Appendix A; Sec. 6.4 notes the authors' implementation
// also uses nested arrays for locality).
//
// Points are identified by id 0..n-1; the id is the x-coordinate (the
// points must be given in x order, which is natural for the dominance DP
// problems here: the id is the sequence index). The y-coordinate is given
// as a *rank*: a permutation of 0..n-1 (see compute_y_ranks).
//
// The outer structure is an implicit segment tree over the (power-of-two
// padded) id range. Each outer node stores its points sorted by y rank
// ("nested array") plus an implicit inner segment tree of monoid
// aggregates over that order. This supports
//
//   query_prefix(qx, qy)  — monoid sum over {i : i < qx, yrank(i) < qy},
//                           O(log^2 n);
//   update(id, value)     — replace the leaf aggregate of one point,
//                           O(log^2 n);
//   batch_update(...)     — the same for a batch, deduplicating shared
//                           inner paths, O(b log^2 n) work, polylog span.
//
// The aggregate policy supplies the monoid. Combines receive a pseudo-
// random word so that policies like Algorithm 3's uniformly-random pivot
// candidate (probability proportional to unfinished counts, Lines 14-19 of
// the paper) can be expressed; deterministic policies ignore it.
//
//   struct Agg {
//     using value_type = ...;
//     static value_type identity();
//     static value_type combine(value_type a, value_type b, uint64_t rnd);
//   };
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/api.h"
#include "parallel/primitives.h"
#include "parallel/random.h"
#include "parallel/sort.h"

namespace pp {

// y ranks for a value sequence: rank of each value with ties broken by
// *descending* index. With this tie order, "yrank(j) < yrank(i) and j < i"
// is equivalent to "value(j) strictly less than value(i) and j < i", which
// is exactly the strict dominance the LIS recurrence needs even when the
// input contains duplicates.
template <typename T>
std::vector<uint32_t> compute_y_ranks(std::span<const T> values) {
  size_t n = values.size();
  auto order = sort_indices(n, [&](uint32_t a, uint32_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a > b;  // descending index on equal values
  });
  std::vector<uint32_t> rank(n);
  parallel_for(0, n, [&](size_t r) { rank[order[r]] = static_cast<uint32_t>(r); });
  return rank;
}

template <typename Agg>
class range_tree2d {
 public:
  using value_type = typename Agg::value_type;

  static constexpr uint32_t kTerminalSize = 8;  // scan directly below this

  // `y_ranks` must be a permutation of 0..n-1. `init(id)` provides the
  // initial leaf aggregate of each point. `seed` drives the randomized
  // combines; callers must pass it explicitly (thread ctx.seed down) so a
  // run's context seed governs every random choice in the tree.
  template <typename Init>
  range_tree2d(std::span<const uint32_t> y_ranks, Init init, uint64_t seed)
      : n_(static_cast<uint32_t>(y_ranks.size())), rng_(seed) {
    n_pad_ = std::max<uint32_t>(kTerminalSize, std::bit_ceil(std::max<uint32_t>(n_, 1)));
    log_pad_ = static_cast<uint32_t>(std::countr_zero(n_pad_));
    levels_ = log_pad_ - std::countr_zero(kTerminalSize);  // node sizes n_pad .. 2*kTerminalSize

    yrank_.assign(n_pad_, 0);
    leaf_vals_.assign(n_pad_, Agg::identity());
    parallel_for(0, n_pad_, [&](size_t i) {
      // Padding points sort after all real points and keep identity values.
      yrank_[i] = i < n_ ? y_ranks[i] : 0xFFFFFFFFu;
      if (i < n_) leaf_vals_[i] = init(static_cast<uint32_t>(i));
    });

    ysorted_.resize(levels_);
    pos_.resize(levels_);
    seg_.resize(levels_);

    if (levels_ == 0) return;

    // Level 0: all points sorted by y rank. Deeper levels are produced by
    // stable routing of each node's order into its two children (the ids
    // keep their relative y order), O(n) per level.
    std::vector<uint32_t> ids_by_y(n_pad_);  // per level: ids in node-major, y-sorted order
    {
      auto order = sort_indices(n_pad_, [&](uint32_t a, uint32_t b) {
        if (yrank_[a] != yrank_[b]) return yrank_[a] < yrank_[b];
        return a < b;  // pads tie on 0xFFFFFFFF
      });
      ids_by_y = std::move(order);
    }
    std::vector<uint32_t> next(n_pad_);
    for (uint32_t lv = 0; lv < levels_; ++lv) {
      uint32_t m = n_pad_ >> lv;
      ysorted_[lv].assign(n_pad_, 0);
      pos_[lv].assign(n_pad_, 0);
      parallel_for(0, n_pad_, [&](size_t s) {
        uint32_t id = ids_by_y[s];
        ysorted_[lv][s] = yrank_[id];
        pos_[lv][id] = static_cast<uint32_t>(s) - (id & ~(m - 1));
      });
      build_level_segtree(lv);
      if (lv + 1 < levels_) {
        // Stable partition each node's slice into the two child slices.
        uint32_t half = m >> 1;
        uint32_t nodes = n_pad_ / m;
        parallel_for(0, nodes, [&](size_t nd) {
          uint32_t lo = static_cast<uint32_t>(nd) * m;
          uint32_t lw = lo, rw = lo + half;
          for (uint32_t s = lo; s < lo + m; ++s) {
            uint32_t id = ids_by_y[s];
            if ((id & half) == 0) next[lw++] = id;
            else next[rw++] = id;
          }
        });
        std::swap(ids_by_y, next);
      }
    }
  }

  uint32_t size() const { return n_; }

  // Monoid sum over {j : j < qx, yrank(j) < qy}. `rnd` seeds the randomized
  // combines of this query.
  value_type query_prefix(uint32_t qx, uint32_t qy, uint64_t rnd = 0) const {
    value_type res = Agg::identity();
    if (qx == 0) return res;
    query_rec(0, 0, std::min(qx, n_), qy, rnd, res);
    return res;
  }

  // Monoid sum over the general rectangle {j : x_lo <= j < x_hi,
  // y_lo <= yrank(j) < y_hi} (Theorem 2.1, k = 2). O(log^2 n).
  value_type query_rect(uint32_t x_lo, uint32_t x_hi, uint32_t y_lo, uint32_t y_hi,
                        uint64_t rnd = 0) const {
    value_type res = Agg::identity();
    x_hi = std::min(x_hi, n_);
    if (x_lo >= x_hi || y_lo >= y_hi) return res;
    rect_rec(0, 0, x_lo, x_hi, y_lo, y_hi, rnd, res);
    return res;
  }

  // Replace the leaf aggregate of one point. O(log^2 n).
  void update(uint32_t id, value_type v, uint64_t rnd = 0) {
    leaf_vals_[id] = v;
    for (uint32_t lv = 0; lv < levels_; ++lv) {
      uint32_t m = n_pad_ >> lv;
      uint32_t base = 2 * (id & ~(m - 1));
      auto* st = seg_[lv].data() + base;
      uint32_t i = m + pos_[lv][id];
      st[i] = v;
      for (i >>= 1; i >= 1; i >>= 1)
        st[i] = Agg::combine(st[2 * i], st[2 * i + 1], hash64(rnd ^ (base + i)));
    }
  }

  // Batch leaf replacement; ids must be distinct. Equivalent to calling
  // update() for each element, but inner paths shared between points are
  // recomputed once, in parallel.
  void batch_update(std::span<const uint32_t> ids, std::span<const value_type> vals,
                    uint64_t rnd = 0) {
    size_t b = ids.size();
    if (b == 0) return;
    if (b <= 4) {  // not worth the sort machinery
      for (size_t i = 0; i < b; ++i) update(ids[i], vals[i], rnd);
      return;
    }
    parallel_for(0, b, [&](size_t i) { leaf_vals_[ids[i]] = vals[i]; });
    for (uint32_t lv = 0; lv < levels_; ++lv) {
      uint32_t m = n_pad_ >> lv;
      uint32_t two_m = 2 * m;
      auto* st = seg_[lv].data();
      // Absolute leaf slots, sorted; climbing preserves sortedness.
      auto slots = tabulate<std::pair<uint32_t, uint32_t>>(b, [&](size_t i) {
        uint32_t id = ids[i];
        uint32_t abs = 2 * (id & ~(m - 1)) + m + pos_[lv][id];
        return std::pair<uint32_t, uint32_t>{abs, static_cast<uint32_t>(i)};
      });
      sort_inplace(std::span<std::pair<uint32_t, uint32_t>>(slots));
      parallel_for(0, b, [&](size_t i) { st[slots[i].first] = vals[slots[i].second]; });
      // Climb: parent of abs is base + (rel >> 1); rel = abs mod 2m.
      std::vector<uint32_t> cur(b);
      parallel_for(0, b, [&](size_t i) { cur[i] = slots[i].first; });
      while (!cur.empty() && (cur[0] & (two_m - 1)) > 1) {
        std::vector<uint32_t> parents(cur.size());
        parallel_for(0, cur.size(), [&](size_t i) {
          uint32_t abs = cur[i];
          parents[i] = (abs & ~(two_m - 1)) + ((abs & (two_m - 1)) >> 1);
        });
        // adjacent dedup (sorted order is preserved by the monotone map)
        auto uniq = pack(std::span<const uint32_t>(parents), [&](size_t i) {
          return i == 0 || parents[i] != parents[i - 1];
        });
        parallel_for(0, uniq.size(), [&](size_t i) {
          uint32_t abs = uniq[i];
          uint32_t base = abs & ~(two_m - 1);
          uint32_t rel = abs & (two_m - 1);
          st[abs] = Agg::combine(st[base + 2 * rel], st[base + 2 * rel + 1],
                                 hash64(rnd ^ abs ^ (uint64_t{lv} << 32)));
        });
        cur = std::move(uniq);
      }
    }
  }

  // Current leaf aggregate of a point.
  const value_type& leaf_value(uint32_t id) const { return leaf_vals_[id]; }

  uint32_t y_rank(uint32_t id) const { return yrank_[id]; }

  // Test hook: O(n log n) full recomputation check of every inner segtree
  // node (ignores the random word, so only meaningful for policies whose
  // combine is rnd-insensitive on the checked fields).
  template <typename Eq>
  bool check_aggregates(Eq eq) const {
    for (uint32_t lv = 0; lv < levels_; ++lv) {
      uint32_t m = n_pad_ >> lv;
      for (uint32_t lo = 0; lo < n_pad_; lo += m) {
        const auto* st = seg_[lv].data() + 2 * lo;
        for (uint32_t i = m - 1; i >= 1; --i) {
          value_type expect = Agg::combine(st[2 * i], st[2 * i + 1], 0);
          if (!eq(st[i], expect)) return false;
        }
      }
    }
    return true;
  }

 private:
  void build_level_segtree(uint32_t lv) {
    uint32_t m = n_pad_ >> lv;
    seg_[lv].assign(2 * n_pad_, Agg::identity());
    uint32_t nodes = n_pad_ / m;
    // Leaves: the lv-level y-sorted order maps slot s -> id via pos_ inverse;
    // easier: fill from each id's known slot.
    parallel_for(0, n_pad_, [&](size_t id) {
      uint32_t lo = static_cast<uint32_t>(id) & ~(m - 1);
      seg_[lv][2 * lo + m + pos_[lv][id]] = leaf_vals_[id];
    });
    parallel_for(0, nodes, [&](size_t nd) {
      uint32_t base = 2 * (static_cast<uint32_t>(nd) * m);
      auto* st = seg_[lv].data() + base;
      for (uint32_t i = m - 1; i >= 1; --i)
        st[i] = Agg::combine(st[2 * i], st[2 * i + 1], hash64(rng_ ^ (base + i)));
    });
  }

  // Monoid sum of the first `cnt_y` smallest-y points of the node at
  // (level, lo), where cnt_y = #points with yrank < qy.
  void node_prefix(uint32_t lv, uint32_t lo, uint32_t qy, uint64_t rnd, value_type& res) const {
    uint32_t m = n_pad_ >> lv;
    const uint32_t* ys = ysorted_[lv].data() + lo;
    uint32_t cnt = static_cast<uint32_t>(std::lower_bound(ys, ys + m, qy) - ys);
    if (cnt == 0) return;
    const auto* st = seg_[lv].data() + 2 * lo;
    uint32_t l = m, r = m + cnt;
    uint64_t salt = rnd ^ (uint64_t{lo} << 20) ^ lv;
    uint32_t step = 0;
    while (l < r) {
      if (l & 1) res = Agg::combine(res, st[l++], hash64(salt + ++step));
      if (r & 1) res = Agg::combine(res, st[--r], hash64(salt + ++step));
      l >>= 1;
      r >>= 1;
    }
  }

  // Monoid sum of the node's points with yrank in [y_lo, y_hi).
  void node_band(uint32_t lv, uint32_t lo, uint32_t y_lo, uint32_t y_hi, uint64_t rnd,
                 value_type& res) const {
    uint32_t m = n_pad_ >> lv;
    const uint32_t* ys = ysorted_[lv].data() + lo;
    uint32_t l0 = static_cast<uint32_t>(std::lower_bound(ys, ys + m, y_lo) - ys);
    uint32_t r0 = static_cast<uint32_t>(std::lower_bound(ys, ys + m, y_hi) - ys);
    if (l0 >= r0) return;
    const auto* st = seg_[lv].data() + 2 * lo;
    uint32_t l = m + l0, r = m + r0;
    uint64_t salt = rnd ^ (uint64_t{lo} << 21) ^ lv;
    uint32_t step = 0;
    while (l < r) {
      if (l & 1) res = Agg::combine(res, st[l++], hash64(salt + ++step));
      if (r & 1) res = Agg::combine(res, st[--r], hash64(salt + ++step));
      l >>= 1;
      r >>= 1;
    }
  }

  void rect_rec(uint32_t lv, uint32_t lo, uint32_t x_lo, uint32_t x_hi, uint32_t y_lo,
                uint32_t y_hi, uint64_t rnd, value_type& res) const {
    uint32_t m = n_pad_ >> lv;
    if (x_hi <= lo || x_lo >= lo + m) return;
    if (lv == levels_) {  // terminal scan
      uint32_t a = std::max(lo, x_lo), b = std::min(lo + m, x_hi);
      for (uint32_t id = a; id < b; ++id)
        if (yrank_[id] >= y_lo && yrank_[id] < y_hi)
          res = Agg::combine(res, leaf_vals_[id], hash64(rnd ^ (0x9D5Fu + id)));
      return;
    }
    if (x_lo <= lo && x_hi >= lo + m) {  // fully covered in x
      node_band(lv, lo, y_lo, y_hi, rnd, res);
      return;
    }
    rect_rec(lv + 1, lo, x_lo, x_hi, y_lo, y_hi, rnd, res);
    rect_rec(lv + 1, lo + m / 2, x_lo, x_hi, y_lo, y_hi, rnd, res);
  }

  void query_rec(uint32_t lv, uint32_t lo, uint32_t qx, uint32_t qy, uint64_t rnd,
                 value_type& res) const {
    if (qx <= lo) return;
    uint32_t m = n_pad_ >> lv;
    if (lv == levels_) {  // terminal: scan at most kTerminalSize points
      uint32_t hi = std::min(lo + m, qx);
      for (uint32_t id = lo; id < hi; ++id)
        if (yrank_[id] < qy)
          res = Agg::combine(res, leaf_vals_[id], hash64(rnd ^ (0xABCDu + id)));
      return;
    }
    if (qx >= lo + m) {
      node_prefix(lv, lo, qy, rnd, res);
      return;
    }
    query_rec(lv + 1, lo, qx, qy, rnd, res);
    query_rec(lv + 1, lo + m / 2, qx, qy, rnd, res);
  }

  uint32_t n_;
  uint32_t n_pad_;
  uint32_t log_pad_;
  uint32_t levels_;
  uint64_t rng_;
  std::vector<uint32_t> yrank_;
  std::vector<value_type> leaf_vals_;
  std::vector<std::vector<uint32_t>> ysorted_;  // [level][slot]
  std::vector<std::vector<uint32_t>> pos_;      // [level][id] -> slot within node
  std::vector<std::vector<value_type>> seg_;    // [level][2 * n_pad]
};

}  // namespace pp
