// Aggregate policies for the dominance-DP range tree (Algorithm 3).
//
// Each point is either *unfinished* (its DP value conceptually +inf, per
// the paper) or *finished* with a concrete DP value. The range tree
// maintains, per subtree, the triple of the paper's Algorithm 3:
//   n_inf — number of unfinished points,
//   dp*   — max DP value among finished points,
//   x*    — a pivot candidate: an unfinished point if any exist (chosen by
//           the policy), otherwise the finished argmax-dp point (used for
//           LIS reconstruction).
//
// Two pivot-candidate policies, as in the paper:
//   dom_agg_random    — uniformly random unfinished point (Algorithm 3's
//                       Line 17: choose side with probability n1 : n2);
//   dom_agg_rightmost — the largest-id unfinished point (the heuristic the
//                       paper's experiments use, Sec. 6.4).
#pragma once

#include <cstdint>
#include <limits>

namespace pp {

inline constexpr int32_t kDomNegInf = std::numeric_limits<int32_t>::min();
inline constexpr uint32_t kDomNoCand = 0xFFFFFFFFu;

struct dom_agg_random {
  struct value_type {
    uint32_t unfinished;  // # unfinished points in the region
    int32_t dp;           // max finished dp (kDomNegInf when none)
    uint32_t cand;        // pivot candidate (see header comment)
  };

  static value_type identity() { return {0, kDomNegInf, kDomNoCand}; }
  static value_type unfinished_leaf(uint32_t id) { return {1, kDomNegInf, id}; }
  static value_type finished_leaf(uint32_t id, int32_t dp) { return {0, dp, id}; }

  static bool has_unfinished(const value_type& v) { return v.unfinished != 0; }
  static int32_t dp_of(const value_type& v) { return v.dp; }
  static uint32_t cand_of(const value_type& v) { return v.cand; }

  static value_type combine(const value_type& a, const value_type& b, uint64_t rnd) {
    value_type r;
    r.unfinished = a.unfinished + b.unfinished;
    r.dp = a.dp < b.dp ? b.dp : a.dp;
    if (r.unfinished != 0) {
      // Uniformly random unfinished point: pick a's candidate with
      // probability |a.unfinished| / |total| (Line 17 of Algorithm 3).
      uint64_t pick = rnd % r.unfinished;
      r.cand = pick < a.unfinished ? a.cand : b.cand;
      if (a.unfinished == 0) r.cand = b.cand;
      if (b.unfinished == 0) r.cand = a.cand;
    } else if (a.dp == kDomNegInf && b.dp == kDomNegInf) {
      r.cand = kDomNoCand;
    } else {
      r.cand = a.dp >= b.dp ? a.cand : b.cand;
    }
    return r;
  }
};

struct dom_agg_rightmost {
  // dp == INT32_MAX encodes "some point in the region is unfinished", as in
  // the paper's formulation where unfinished points carry dp = +inf. The
  // candidate is then the *rightmost* (largest-id) unfinished point —
  // the heuristic of Sec. 6.4 ("points to the right are more likely to be
  // processed in later rounds").
  struct value_type {
    int32_t dp;
    uint32_t cand;
  };
  static constexpr int32_t kUnfinished = std::numeric_limits<int32_t>::max();

  static value_type identity() { return {kDomNegInf, kDomNoCand}; }
  static value_type unfinished_leaf(uint32_t id) { return {kUnfinished, id}; }
  static value_type finished_leaf(uint32_t id, int32_t dp) { return {dp, id}; }

  static bool has_unfinished(const value_type& v) { return v.dp == kUnfinished; }
  static int32_t dp_of(const value_type& v) { return v.dp; }
  static uint32_t cand_of(const value_type& v) { return v.cand; }

  static value_type combine(const value_type& a, const value_type& b, uint64_t /*rnd*/) {
    bool ua = a.dp == kUnfinished, ub = b.dp == kUnfinished;
    if (ua && ub) return {kUnfinished, a.cand > b.cand ? a.cand : b.cand};
    if (ua) return a;
    if (ub) return b;
    if (a.dp == kDomNegInf && b.dp == kDomNegInf) return {kDomNegInf, kDomNoCand};
    return a.dp >= b.dp ? a : b;
  }
};

}  // namespace pp
