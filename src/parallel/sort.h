// Parallel sorting: stable merge sort with a parallel merge (O(n log n)
// work, O(log^2 n) span for the merge tree — polylog span overall), plus a
// stable parallel counting sort for small integer key spaces (used to build
// pivot tables and CSR graphs).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/api.h"
#include "parallel/primitives.h"

namespace pp {

namespace detail {

constexpr size_t kSortBase = 1 << 13;  // below this, std::stable_sort / std::merge

// Merge sorted a and b into out (stable: ties prefer a). Parallel via
// dual binary search splitting.
template <typename T, typename Less>
void parallel_merge(std::span<const T> a, std::span<const T> b, std::span<T> out, Less less) {
  while (true) {
    if (a.size() + b.size() <= kSortBase) {
      std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), less);
      return;
    }
    if (a.size() < b.size()) {
      // keep `a` the larger side; swap roles but preserve stability:
      // elements of b equal to an element of a must come after it, i.e.
      // when splitting on a b-pivot, equal a-elements go left.
      size_t mb = b.size() / 2;
      // a-elements strictly less OR equal to b[mb] go left of b[mb]:
      size_t ma = static_cast<size_t>(
          std::upper_bound(a.begin(), a.end(), b[mb], less) - a.begin());
      par_do([=] { parallel_merge(a.subspan(0, ma), b.subspan(0, mb), out.subspan(0, ma + mb), less); },
             [=] {
               out[ma + mb] = b[mb];
               parallel_merge(a.subspan(ma), b.subspan(mb + 1),
                              out.subspan(ma + mb + 1), less);
             });
      return;
    }
    size_t ma = a.size() / 2;
    // b-elements strictly less than a[ma] go left (stability: equals go right).
    size_t mb = static_cast<size_t>(
        std::lower_bound(b.begin(), b.end(), a[ma], less) - b.begin());
    par_do([=] { parallel_merge(a.subspan(0, ma), b.subspan(0, mb), out.subspan(0, ma + mb), less); },
           [=] {
             out[ma + mb] = a[ma];
             parallel_merge(a.subspan(ma + 1), b.subspan(mb),
                            out.subspan(ma + mb + 1), less);
           });
    return;
  }
}

// Sort `in`; result lands in `in` if `result_in_in`, else in `buf`.
template <typename T, typename Less>
void merge_sort_rec(std::span<T> in, std::span<T> buf, Less less, bool result_in_in) {
  if (in.size() <= kSortBase) {
    std::stable_sort(in.begin(), in.end(), less);
    if (!result_in_in) std::copy(in.begin(), in.end(), buf.begin());
    return;
  }
  size_t mid = in.size() / 2;
  par_do([&] { merge_sort_rec(in.subspan(0, mid), buf.subspan(0, mid), less, !result_in_in); },
         [&] { merge_sort_rec(in.subspan(mid), buf.subspan(mid), less, !result_in_in); });
  auto src = result_in_in ? buf : in;
  auto dst = result_in_in ? in : buf;
  parallel_merge(std::span<const T>(src.subspan(0, mid)), std::span<const T>(src.subspan(mid)),
                 dst, less);
}

}  // namespace detail

// Merge two sorted sequences into a new one (stable: ties prefer `a`).
// O(n) work, O(log^2 n) span.
template <typename T, typename Less = std::less<T>>
std::vector<T> merge_sorted(std::span<const T> a, std::span<const T> b, Less less = Less{}) {
  std::vector<T> out(a.size() + b.size());
  detail::parallel_merge(a, b, std::span<T>(out), less);
  return out;
}

// Stable parallel sort in place.
template <typename T, typename Less = std::less<T>>
void sort_inplace(std::span<T> xs, Less less = Less{}) {
  if (xs.size() <= detail::kSortBase) {
    std::stable_sort(xs.begin(), xs.end(), less);
    return;
  }
  std::vector<T> buf(xs.size());
  detail::merge_sort_rec(xs, std::span<T>(buf), less, /*result_in_in=*/true);
}

template <typename T, typename Less = std::less<T>>
std::vector<T> sorted(std::span<const T> xs, Less less = Less{}) {
  std::vector<T> out(xs.begin(), xs.end());
  sort_inplace(std::span<T>(out), less);
  return out;
}

// Indices 0..n-1 sorted by the given comparison on positions (a "rank sort").
template <typename Less>
std::vector<uint32_t> sort_indices(size_t n, Less less_on_index) {
  auto idx = tabulate<uint32_t>(n, [](size_t i) { return static_cast<uint32_t>(i); });
  sort_inplace(std::span<uint32_t>(idx), less_on_index);
  return idx;
}

// ---------------------------------------------------------------------------
// Stable parallel counting sort for keys in [0, num_buckets).
// Returns bucket offsets (size num_buckets + 1); reorders xs into out.
// O(n + num_buckets) work per pass, O(polylog) span for machine-sized block
// counts. Used for grouping pivot pairs and building CSR adjacency.
// ---------------------------------------------------------------------------
template <typename T, typename KeyFn>
std::vector<size_t> counting_sort_by_key(std::span<const T> xs, std::span<T> out,
                                         size_t num_buckets, KeyFn key) {
  size_t n = xs.size();
  size_t nblocks = std::max<size_t>(1, std::min<size_t>(static_cast<size_t>(num_workers()) * 4,
                                                        n / std::max<size_t>(1, num_buckets) + 1));
  size_t bsize = (n + nblocks - 1) / nblocks;
  if (bsize == 0) bsize = 1;
  nblocks = n == 0 ? 0 : (n + bsize - 1) / bsize;

  // counts[b * num_buckets + k] = #elements with key k in block b
  std::vector<size_t> counts(nblocks * num_buckets, 0);
  parallel_for(0, nblocks, [&](size_t b) {
    size_t lo = b * bsize, hi = std::min(n, lo + bsize);
    size_t* my = counts.data() + b * num_buckets;
    for (size_t i = lo; i < hi; ++i) my[key(xs[i])]++;
  });

  // Column-major prefix: for key k, blocks in order → stable placement.
  std::vector<size_t> offsets(num_buckets + 1, 0);
  {
    size_t acc = 0;
    for (size_t k = 0; k < num_buckets; ++k) {
      offsets[k] = acc;
      for (size_t b = 0; b < nblocks; ++b) {
        size_t c = counts[b * num_buckets + k];
        counts[b * num_buckets + k] = acc;
        acc += c;
      }
    }
    offsets[num_buckets] = acc;
  }

  parallel_for(0, nblocks, [&](size_t b) {
    size_t lo = b * bsize, hi = std::min(n, lo + bsize);
    size_t* my = counts.data() + b * num_buckets;
    for (size_t i = lo; i < hi; ++i) out[my[key(xs[i])]++] = xs[i];
  });
  return offsets;
}

}  // namespace pp
