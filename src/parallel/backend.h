// Parallel backend kinds.
//
// The paper's computational model is the binary-forking model (Sec. 2): a
// thread may fork two children and is suspended until both finish. The
// native backend implements this directly with a work-stealing scheduler
// (scheduler.h). The OpenMP backend maps forks onto OpenMP tasks, and the
// sequential backend runs everything serially (useful for debugging and as
// the 1-thread baseline when measuring self-speedup).
//
// Which backend a computation uses is carried by pp::context
// (core/context.h); this header only defines the enumeration and its
// string names so it can be included anywhere without pulling in the
// context machinery.
//
// Worker-count semantics per backend (see pp::num_workers in
// parallel/api.h): `context::workers` is the width the run executes on.
// 0 means "backend default" — PP_THREADS, else the hardware concurrency,
// for the native backend (resolve_native_workers in parallel/scheduler.h);
// omp_get_max_threads() for OpenMP. The sequential backend is always 1.
// On the native backend each width gets its own work-stealing pool from a
// process-wide pool cache, so the request is honored exactly rather than
// clamped to a first-use singleton.
#pragma once

#include <optional>
#include <string_view>

namespace pp {

enum class backend_kind {
  native,      // built-in work-stealing scheduler (default)
  openmp,      // OpenMP tasks / parallel-for
  sequential,  // serial execution of every fork
};

inline std::string_view backend_name(backend_kind b) {
  switch (b) {
    case backend_kind::native: return "native";
    case backend_kind::openmp: return "openmp";
    case backend_kind::sequential: return "sequential";
  }
  return "unknown";
}

// Parse a backend name ("native", "openmp", "sequential"; "seq" accepted
// as shorthand). Used by the CLI driver and env-var plumbing.
inline std::optional<backend_kind> parse_backend(std::string_view s) {
  if (s == "native") return backend_kind::native;
  if (s == "openmp" || s == "omp") return backend_kind::openmp;
  if (s == "sequential" || s == "seq") return backend_kind::sequential;
  return std::nullopt;
}

}  // namespace pp
