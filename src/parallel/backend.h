// Runtime-selectable parallel backend.
//
// The paper's computational model is the binary-forking model (Sec. 2): a
// thread may fork two children and is suspended until both finish. The
// native backend implements this directly with a work-stealing scheduler
// (scheduler.h). The OpenMP backend maps forks onto OpenMP tasks, and the
// sequential backend runs everything serially (useful for debugging and as
// the 1-thread baseline when measuring self-speedup).
#pragma once

#include <atomic>
#include <string_view>

namespace pp {

enum class backend_kind {
  native,      // built-in work-stealing scheduler (default)
  openmp,      // OpenMP tasks / parallel-for
  sequential,  // serial execution of every fork
};

namespace detail {
inline std::atomic<backend_kind>& backend_flag() {
  static std::atomic<backend_kind> flag{backend_kind::native};
  return flag;
}
}  // namespace detail

inline backend_kind get_backend() {
  return detail::backend_flag().load(std::memory_order_relaxed);
}

inline void set_backend(backend_kind b) {
  detail::backend_flag().store(b, std::memory_order_relaxed);
}

inline std::string_view backend_name(backend_kind b) {
  switch (b) {
    case backend_kind::native: return "native";
    case backend_kind::openmp: return "openmp";
    case backend_kind::sequential: return "sequential";
  }
  return "unknown";
}

// RAII guard for temporarily switching backend (used by tests/benches).
class scoped_backend {
 public:
  explicit scoped_backend(backend_kind b) : saved_(get_backend()) { set_backend(b); }
  ~scoped_backend() { set_backend(saved_); }
  scoped_backend(const scoped_backend&) = delete;
  scoped_backend& operator=(const scoped_backend&) = delete;

 private:
  backend_kind saved_;
};

}  // namespace pp
