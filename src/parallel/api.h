// Public fork-join API: pp::par_do and pp::parallel_for.
//
// These are the only two control primitives the rest of the library uses;
// everything else (reduce, scan, sort, the phase-parallel runners) is built
// on top of them, mirroring the binary-forking model of the paper (Sec. 2).
//
// Both come in two forms: an explicit-context overload
// (`parallel_for(ctx, lo, hi, f)`) and a convenience form that runs under
// pp::current_context(). Solvers install their context argument with
// scoped_context at entry, so either form observes the right backend,
// worker count, and grain.
#pragma once

#include <omp.h>

#include <cstddef>
#include <utility>

#include "core/context.h"
#include "core/trace.h"
#include "parallel/backend.h"
#include "parallel/scheduler.h"

namespace pp {

// The number of workers a run under `ctx` actually executes on. For the
// native backend: the width of the pool the calling thread is already
// pinned to (a run keeps its pool from fork to join), else the width a
// fresh lease would have — ctx.workers, or the PP_THREADS/hardware default
// when 0. The OpenMP `num_threads` clauses and the auto_grain heuristic
// read this same value, so every backend agrees on what "W workers" means.
inline unsigned num_workers(const context& ctx) {
  switch (ctx.backend) {
    case backend_kind::sequential:
      return 1;
    case backend_kind::openmp:
      // Inside a parallel region the run executes on the enclosing team,
      // whatever the context asks for (the nested par_do/parallel_for
      // paths spawn tasks into it) — report that, mirroring the native
      // pinned-pool rule below.
      if (omp_in_parallel()) return static_cast<unsigned>(omp_get_num_threads());
      return ctx.workers != 0 ? ctx.workers
                              : static_cast<unsigned>(omp_get_max_threads());
    case backend_kind::native:
    default: {
      if (const detail::work_stealing_pool* pool = detail::this_thread_pool())
        return pool->num_workers();
      return detail::resolve_native_workers(ctx.workers);
    }
  }
}

inline unsigned num_workers() { return num_workers(current_context()); }

namespace detail {
// Nesting depth of scoped_scheduler on this thread; only the outermost
// binding pays one-time setup (the OpenMP team warm-up).
inline thread_local int tl_sched_depth = 0;
}  // namespace detail

// RAII scheduler binding for one top-level run. On the native backend it
// leases a work-stealing pool of exactly num_workers(ctx) workers and pins
// the calling thread to it; nested constructions (a run inside a run)
// reuse the already-pinned pool. On OpenMP it resolves the width and, at
// the outermost binding only, warms the team (libgomp spawns threads
// lazily at the first parallel region, which would otherwise land inside
// run_timed's clock — unlike the native lease, whose spawn cost is paid
// here). `workers()` is the honest count stamped into run_result.
class scoped_scheduler {
 public:
  explicit scoped_scheduler(const context& ctx)
      : outermost_(detail::tl_sched_depth++ == 0) {
    switch (ctx.backend) {
      case backend_kind::sequential:
        workers_ = 1;
        break;
      case backend_kind::openmp: {
        workers_ = num_workers(ctx);
        if (outermost_ && !omp_in_parallel()) {
          int nt = static_cast<int>(workers_);
#pragma omp parallel num_threads(nt)
          {
          }
        }
        break;
      }
      case backend_kind::native:
      default:
        if (const detail::work_stealing_pool* pool = detail::this_thread_pool()) {
          workers_ = pool->num_workers();
        } else {
          lease_ = detail::pool_lease(detail::resolve_native_workers(ctx.workers));
          workers_ = lease_.width();
        }
        break;
    }
  }
  ~scoped_scheduler() { --detail::tl_sched_depth; }

  scoped_scheduler(const scoped_scheduler&) = delete;
  scoped_scheduler& operator=(const scoped_scheduler&) = delete;

  unsigned workers() const { return workers_; }

 private:
  bool outermost_;
  detail::pool_lease lease_;
  unsigned workers_ = 1;
};

// What every ctx-form solver entry installs: activates `c` for the
// implicit parallel_for/par_do forms (scoped_context), binds the run's
// scheduler (scoped_scheduler) so the whole solve executes on one leased
// pool instead of paying a lease cycle per top-level parallel region, AND
// installs the context's cancel token for this thread (scoped_cancel) so
// the phase loops' cancel_point() polls the right run's token — and only
// it. Construction order matters: the scope registers with the race
// detector before the lease pins the thread.
class run_scope {
 public:
  explicit run_scope(const context& c)
      : span_("run", "workers", c.workers, "seed", c.seed),
        scope_(c),
        sched_(c),
        cancel_(c.cancel) {}
  unsigned workers() const { return sched_.workers(); }

 private:
  // First member: the whole-run trace span covers scheduler binding
  // (lease acquire) through teardown (lease release).
  trace_span span_;
  scoped_context scope_;
  scoped_scheduler sched_;
  scoped_cancel cancel_;
};

namespace detail {

template <typename L, typename R>
void par_do_native(const context& ctx, L&& left, R&& right) {
  work_stealing_pool* pool = this_thread_pool();
  pool_lease lease;
  if (pool == nullptr) {
    // Outermost fork of a run that was not dispatched through
    // registry::run/run_timed: lease a pool of the context's width for the
    // duration of this fork-join tree.
    lease = pool_lease(resolve_native_workers(ctx.workers));
    pool = this_thread_pool();
  }
  if (pool->num_workers() == 1) {
    // A 1-wide pool has no other workers: run strictly sequentially
    // instead of cycling jobs through the deque.
    left();
    right();
    return;
  }
  fn_job<R> rjob(right);
  pool->push(&rjob);
  left();
  if (pool->try_pop_specific(&rjob)) {
    right();
  } else {
    pool->wait_for(rjob);
  }
}

template <typename L, typename R>
void par_do_omp_inner(L&& left, R&& right) {
#pragma omp task shared(left) default(shared)
  left();
  right();
#pragma omp taskwait
}

template <typename L, typename R>
void par_do_omp(const context& ctx, L&& left, R&& right) {
  if (omp_in_parallel()) {
    par_do_omp_inner(left, right);
  } else {
    int nt = static_cast<int>(num_workers(ctx));
#pragma omp parallel default(shared) num_threads(nt)
#pragma omp single nowait
    par_do_omp_inner(left, right);
  }
}

}  // namespace detail

// Run `left` and `right`, potentially in parallel; returns when both are
// done (a binary fork).
template <typename L, typename R>
void par_do(const context& ctx, L&& left, R&& right) {
  switch (ctx.backend) {
    case backend_kind::sequential:
      left();
      right();
      break;
    case backend_kind::openmp:
      detail::par_do_omp(ctx, std::forward<L>(left), std::forward<R>(right));
      break;
    case backend_kind::native:
    default:
      detail::par_do_native(ctx, std::forward<L>(left), std::forward<R>(right));
      break;
  }
}

template <typename L, typename R>
void par_do(L&& left, R&& right) {
  par_do(current_context(), std::forward<L>(left), std::forward<R>(right));
}

namespace detail {

// Grain heuristic: enough sub-ranges to balance (8 per worker) but never
// absurdly small pieces. A parallel for-loop has O(log n) span from the
// recursive splitting, matching the model in the paper.
inline size_t auto_grain(size_t n, unsigned workers) {
  size_t pieces = static_cast<size_t>(workers) * 8;
  size_t g = n / (pieces == 0 ? 1 : pieces);
  if (g < 1) g = 1;
  return g;
}

template <typename F>
void parallel_for_rec(const context& ctx, size_t lo, size_t hi, F& f, size_t grain) {
  if (hi - lo <= grain) {
    for (size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  par_do(
      ctx, [&] { parallel_for_rec(ctx, lo, mid, f, grain); },
      [&] { parallel_for_rec(ctx, mid, hi, f, grain); });
}

}  // namespace detail

// Apply f(i) for i in [lo, hi). `grain` = 0 defers to ctx.grain, then to
// the auto heuristic.
template <typename F>
void parallel_for(const context& ctx, size_t lo, size_t hi, F f, size_t grain = 0) {
  if (hi <= lo) return;
  size_t n = hi - lo;
  if (grain == 0) grain = ctx.grain;
  switch (ctx.backend) {
    case backend_kind::sequential: {
      for (size_t i = lo; i < hi; ++i) f(i);
      return;
    }
    case backend_kind::openmp: {
      if (omp_in_parallel()) {
        // Nested inside an OpenMP region (e.g. a parallel_for body that
        // itself forks): recursive binary splitting over OpenMP tasks, the
        // same shape as the native backend. The old behavior — silently
        // serializing the nested loop — destroyed the span bounds of every
        // algorithm with nested parallelism.
        if (grain == 0) grain = detail::auto_grain(n, num_workers(ctx));
        detail::parallel_for_rec(ctx, lo, hi, f, grain);
      } else {
        int nt = static_cast<int>(num_workers(ctx));
        if (grain > 0) {
          // honor an explicit grain (argument or ctx.grain) as the chunk size
#pragma omp parallel for schedule(dynamic, static_cast<int>(grain)) num_threads(nt)
          for (size_t i = lo; i < hi; ++i) f(i);
        } else {
#pragma omp parallel for schedule(guided) num_threads(nt)
          for (size_t i = lo; i < hi; ++i) f(i);
        }
      }
      return;
    }
    case backend_kind::native:
    default: {
      if (grain == 0) grain = detail::auto_grain(n, num_workers(ctx));
      detail::parallel_for_rec(ctx, lo, hi, f, grain);
      return;
    }
  }
}

template <typename F>
void parallel_for(size_t lo, size_t hi, F f, size_t grain = 0) {
  parallel_for(current_context(), lo, hi, std::move(f), grain);
}

}  // namespace pp
