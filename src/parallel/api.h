// Public fork-join API: pp::par_do and pp::parallel_for.
//
// These are the only two control primitives the rest of the library uses;
// everything else (reduce, scan, sort, the phase-parallel runners) is built
// on top of them, mirroring the binary-forking model of the paper (Sec. 2).
//
// Both come in two forms: an explicit-context overload
// (`parallel_for(ctx, lo, hi, f)`) and a convenience form that runs under
// pp::current_context(). Solvers install their context argument with
// scoped_context at entry, so either form observes the right backend,
// worker count, and grain.
#pragma once

#include <omp.h>

#include <cstddef>
#include <utility>

#include "core/context.h"
#include "parallel/backend.h"
#include "parallel/scheduler.h"

namespace pp {

inline unsigned num_workers(const context& ctx) {
  switch (ctx.backend) {
    case backend_kind::sequential:
      return 1;
    case backend_kind::openmp:
      return ctx.workers != 0 ? ctx.workers
                              : static_cast<unsigned>(omp_get_max_threads());
    case backend_kind::native:
    default: {
      unsigned pool = detail::work_stealing_pool::instance().num_workers();
      // The pool is sized at first use; a context cannot grow it, only
      // advise a smaller effective width.
      return (ctx.workers != 0 && ctx.workers < pool) ? ctx.workers : pool;
    }
  }
}

inline unsigned num_workers() { return num_workers(current_context()); }

namespace detail {

template <typename L, typename R>
void par_do_native(L&& left, R&& right) {
  auto& pool = work_stealing_pool::instance();
  fn_job<R> rjob(right);
  pool.push(&rjob);
  left();
  if (pool.try_pop_specific(&rjob)) {
    right();
  } else {
    pool.wait_for(rjob);
  }
}

template <typename L, typename R>
void par_do_omp_inner(L&& left, R&& right) {
#pragma omp task shared(left) default(shared)
  left();
  right();
#pragma omp taskwait
}

template <typename L, typename R>
void par_do_omp(L&& left, R&& right, unsigned workers) {
  if (omp_in_parallel()) {
    par_do_omp_inner(left, right);
  } else {
    int nt = workers != 0 ? static_cast<int>(workers) : omp_get_max_threads();
#pragma omp parallel default(shared) num_threads(nt)
#pragma omp single nowait
    par_do_omp_inner(left, right);
  }
}

}  // namespace detail

// Run `left` and `right`, potentially in parallel; returns when both are
// done (a binary fork).
template <typename L, typename R>
void par_do(const context& ctx, L&& left, R&& right) {
  switch (ctx.backend) {
    case backend_kind::sequential:
      left();
      right();
      break;
    case backend_kind::openmp:
      detail::par_do_omp(std::forward<L>(left), std::forward<R>(right), ctx.workers);
      break;
    case backend_kind::native:
    default:
      detail::par_do_native(std::forward<L>(left), std::forward<R>(right));
      break;
  }
}

template <typename L, typename R>
void par_do(L&& left, R&& right) {
  par_do(current_context(), std::forward<L>(left), std::forward<R>(right));
}

namespace detail {

// Grain heuristic: enough sub-ranges to balance (8 per worker) but never
// absurdly small pieces. A parallel for-loop has O(log n) span from the
// recursive splitting, matching the model in the paper.
inline size_t auto_grain(size_t n, unsigned workers) {
  size_t pieces = static_cast<size_t>(workers) * 8;
  size_t g = n / (pieces == 0 ? 1 : pieces);
  if (g < 1) g = 1;
  return g;
}

template <typename F>
void parallel_for_rec(const context& ctx, size_t lo, size_t hi, F& f, size_t grain) {
  if (hi - lo <= grain) {
    for (size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  par_do(
      ctx, [&] { parallel_for_rec(ctx, lo, mid, f, grain); },
      [&] { parallel_for_rec(ctx, mid, hi, f, grain); });
}

}  // namespace detail

// Apply f(i) for i in [lo, hi). `grain` = 0 defers to ctx.grain, then to
// the auto heuristic.
template <typename F>
void parallel_for(const context& ctx, size_t lo, size_t hi, F f, size_t grain = 0) {
  if (hi <= lo) return;
  size_t n = hi - lo;
  if (grain == 0) grain = ctx.grain;
  switch (ctx.backend) {
    case backend_kind::sequential: {
      for (size_t i = lo; i < hi; ++i) f(i);
      return;
    }
    case backend_kind::openmp: {
      if (omp_in_parallel()) {
        // Nested inside an OpenMP region (e.g. a parallel_for body that
        // itself forks): recursive binary splitting over OpenMP tasks, the
        // same shape as the native backend. The old behavior — silently
        // serializing the nested loop — destroyed the span bounds of every
        // algorithm with nested parallelism.
        if (grain == 0) grain = detail::auto_grain(n, num_workers(ctx));
        detail::parallel_for_rec(ctx, lo, hi, f, grain);
      } else {
        int nt = ctx.workers != 0 ? static_cast<int>(ctx.workers) : omp_get_max_threads();
        if (grain > 0) {
          // honor an explicit grain (argument or ctx.grain) as the chunk size
#pragma omp parallel for schedule(dynamic, static_cast<int>(grain)) num_threads(nt)
          for (size_t i = lo; i < hi; ++i) f(i);
        } else {
#pragma omp parallel for schedule(guided) num_threads(nt)
          for (size_t i = lo; i < hi; ++i) f(i);
        }
      }
      return;
    }
    case backend_kind::native:
    default: {
      if (grain == 0) grain = detail::auto_grain(n, num_workers(ctx));
      detail::parallel_for_rec(ctx, lo, hi, f, grain);
      return;
    }
  }
}

template <typename F>
void parallel_for(size_t lo, size_t hi, F f, size_t grain = 0) {
  parallel_for(current_context(), lo, hi, std::move(f), grain);
}

}  // namespace pp
