// Public fork-join API: pp::par_do and pp::parallel_for.
//
// These are the only two control primitives the rest of the library uses;
// everything else (reduce, scan, sort, the phase-parallel runners) is built
// on top of them, mirroring the binary-forking model of the paper (Sec. 2).
#pragma once

#include <omp.h>

#include <cstddef>
#include <utility>

#include "parallel/backend.h"
#include "parallel/scheduler.h"

namespace pp {

inline unsigned num_workers() {
  switch (get_backend()) {
    case backend_kind::sequential:
      return 1;
    case backend_kind::openmp:
      return static_cast<unsigned>(omp_get_max_threads());
    case backend_kind::native:
    default:
      return detail::work_stealing_pool::instance().num_workers();
  }
}

namespace detail {

template <typename L, typename R>
void par_do_native(L&& left, R&& right) {
  auto& pool = work_stealing_pool::instance();
  fn_job<R> rjob(right);
  pool.push(&rjob);
  left();
  if (pool.try_pop_specific(&rjob)) {
    right();
  } else {
    pool.wait_for(rjob);
  }
}

template <typename L, typename R>
void par_do_omp_inner(L&& left, R&& right) {
#pragma omp task shared(left) default(shared)
  left();
  right();
#pragma omp taskwait
}

template <typename L, typename R>
void par_do_omp(L&& left, R&& right) {
  if (omp_in_parallel()) {
    par_do_omp_inner(left, right);
  } else {
#pragma omp parallel default(shared)
#pragma omp single nowait
    par_do_omp_inner(left, right);
  }
}

}  // namespace detail

// Run `left` and `right`, potentially in parallel; returns when both are
// done (a binary fork).
template <typename L, typename R>
void par_do(L&& left, R&& right) {
  switch (get_backend()) {
    case backend_kind::sequential:
      left();
      right();
      break;
    case backend_kind::openmp:
      detail::par_do_omp(std::forward<L>(left), std::forward<R>(right));
      break;
    case backend_kind::native:
    default:
      detail::par_do_native(std::forward<L>(left), std::forward<R>(right));
      break;
  }
}

namespace detail {

// Grain heuristic: enough sub-ranges to balance (8 per worker) but never
// absurdly small pieces. A parallel for-loop has O(log n) span from the
// recursive splitting, matching the model in the paper.
inline size_t auto_grain(size_t n, unsigned workers) {
  size_t pieces = static_cast<size_t>(workers) * 8;
  size_t g = n / (pieces == 0 ? 1 : pieces);
  if (g < 1) g = 1;
  return g;
}

template <typename F>
void parallel_for_rec(size_t lo, size_t hi, F& f, size_t grain) {
  if (hi - lo <= grain) {
    for (size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  par_do([&] { parallel_for_rec(lo, mid, f, grain); },
         [&] { parallel_for_rec(mid, hi, f, grain); });
}

}  // namespace detail

// Apply f(i) for i in [lo, hi). `grain` = 0 lets the library pick.
template <typename F>
void parallel_for(size_t lo, size_t hi, F f, size_t grain = 0) {
  if (hi <= lo) return;
  size_t n = hi - lo;
  switch (get_backend()) {
    case backend_kind::sequential: {
      for (size_t i = lo; i < hi; ++i) f(i);
      return;
    }
    case backend_kind::openmp: {
      if (omp_in_parallel()) {
        // Nested: fall back to a serial loop rather than oversubscribing.
        for (size_t i = lo; i < hi; ++i) f(i);
      } else {
#pragma omp parallel for schedule(guided)
        for (size_t i = lo; i < hi; ++i) f(i);
      }
      return;
    }
    case backend_kind::native:
    default: {
      if (grain == 0) grain = detail::auto_grain(n, num_workers());
      detail::parallel_for_rec(lo, hi, f, grain);
      return;
    }
  }
}

}  // namespace pp
