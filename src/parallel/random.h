// Deterministic, splittable randomness for parallel algorithms.
//
// All random choices in the library flow through stateless SplitMix64-style
// hashing of (seed, index). This gives the reproducibility property used by
// the tests: the same seed produces the same priorities / weights / pivots
// regardless of worker count or backend.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "parallel/primitives.h"
#include "parallel/sort.h"

namespace pp {

// SplitMix64 finalizer: a high-quality 64-bit mixer (Steele et al.).
inline uint64_t hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// A stateless random stream: draw i-th value of stream `seed` in O(1).
// The seed is required on purpose (pplint rejects defaulted seeds): a
// silent seed-0 stream is exactly the kind of hidden global that breaks
// run-to-run reproducibility audits.
class random_stream {
 public:
  explicit random_stream(uint64_t seed) : seed_(seed) {}

  uint64_t ith(uint64_t i) const { return hash64(seed_ ^ hash64(i + 1)); }

  // Uniform in [0, bound) by 128-bit multiply (Lemire reduction, modulo
  // bias negligible for bound << 2^64).
  uint64_t ith_bounded(uint64_t i, uint64_t bound) const {
    return static_cast<uint64_t>((static_cast<__uint128_t>(ith(i)) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  int64_t ith_range(uint64_t i, int64_t lo, int64_t hi) const {
    return lo + static_cast<int64_t>(ith_bounded(i, static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double ith_double(uint64_t i) const {
    return static_cast<double>(ith(i) >> 11) * 0x1.0p-53;
  }

  // Derive an independent child stream.
  random_stream fork(uint64_t salt) const { return random_stream(hash64(seed_ ^ (salt + 0x5851f42d4c957f2dull))); }

 private:
  uint64_t seed_;
};

// A random permutation of [0, n): indices sorted by a random key. O(n log n)
// work — fine for our scales, and fully deterministic per seed. Each key is
// (hash, index) so duplicate hashes cannot make the result depend on sort
// internals.
inline std::vector<uint32_t> random_permutation(size_t n, uint64_t seed) {
  random_stream rs(seed);
  std::vector<uint64_t> keys = tabulate<uint64_t>(n, [&](size_t i) { return rs.ith(i); });
  return sort_indices(n, [&](uint32_t a, uint32_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });
}

}  // namespace pp
