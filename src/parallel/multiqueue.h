// Relaxed k-MultiQueue priority scheduler (Alistarh et al., "Relaxed
// Schedulers Can Efficiently Parallelize Iterative Algorithms").
//
// The phase-parallel runners in this repo synchronize every round: all
// objects of rank r finish before any object of rank r+1 starts. That
// barrier is exactly what hurts on high-diameter SSSP (thousands of tiny
// rounds) and sparse-frontier MIS tails (rounds of O(remaining) scan work
// for a handful of decisions). The MultiQueue drops the barrier: workers
// pull the *approximately* smallest-priority element and tolerate bounded
// priority inversion, paying for it in wasted pops instead of idle
// barriers.
//
// Structure (the classic construction):
//   * max(2, 2k) sharded sequential binary-heap priority queues, where k
//     is `context::relax_k` — the relaxation factor and the ablation axis
//     of bench/ablation_relaxed;
//   * push inserts into one uniformly random shard;
//   * try_pop peeks two distinct random shards and pops the min of the two
//     tops (best-of-two), falling back to a full scan so the tail of a
//     drained queue is found quickly;
//   * elements may be inserted more than once (SSSP re-pushes an improved
//     vertex); the *solver* claims an element with a CAS on its own state
//     and reports a stale claim back as `wasted`, so duplicates are cheap
//     retries, never double work;
//   * termination is an atomic in-flight counter: push increments, the
//     worker decrements only after the pop has been fully processed
//     (including any re-inserts it performed), so counter==0 means no
//     element exists anywhere and none is being processed.
//
// Composition with the rest of the runtime:
//   * Workers are the run's leased pool: mq_run drives one worker loop per
//     num_workers(ctx) slot via parallel_for(ctx, ...) under the caller's
//     run_scope, so the MultiQueue leases its worker set from the same
//     pool_cache as every phase solver and composes with pp::serve's
//     exclusive pool leases (no thread of its own, ever).
//   * Cancellation: worker loops poll the context's token (the
//     non-throwing cancelled() form — a throw on a pool worker would
//     escape its job) every kCancelStride claims and cooperatively abort;
//     mq_run re-checks via cancel_point() after the join, on the run's own
//     thread, where run_scope installed the token. The unwind then follows
//     the standard phase-solver path (run_timed -> run_status::cancelled).
//   * Counters: every worker accumulates popped/wasted/retries locally and
//     merges once at exit; solvers copy them into phase_stats so they ride
//     the existing run_result envelope (relaxation cost = wasted/popped).
//
// Randomness is pp::random_stream per worker (seeded from ctx.seed and the
// worker index) — no std::rand, no clocks, so a run is reproducible in its
// (seed, workers, k) triple even though the *schedule* is not.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/annotations.h"
#include "core/context.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "parallel/api.h"
#include "parallel/random.h"

namespace pp {

// Counters a MultiQueue run exposes through phase_stats / run_result.
struct mq_counters {
  uint64_t popped = 0;   // claims handed to the solver
  uint64_t wasted = 0;   // claims the solver reported stale (already decided)
  uint64_t retries = 0;  // failed pop attempts + solver-requested re-inserts

  // The price of relaxation: fraction of claims that were wasted.
  double relaxation_cost() const {
    return popped == 0 ? 0.0 : static_cast<double>(wasted) / static_cast<double>(popped);
  }
};

class multiqueue {
 public:
  // Smaller priority = more urgent (vertex rank, tentative distance).
  struct entry {
    uint64_t priority;
    uint32_t item;
  };

  // max(2, 2*relax_k) shards: k=1 degenerates to the contended two-queue
  // baseline, larger k spreads insert/pop traffic at the cost of a worse
  // rank-error bound (more wasted work) — the trade the bench measures.
  static size_t shard_count(unsigned relax_k) {
    return std::max<size_t>(2, 2 * static_cast<size_t>(relax_k));
  }

  explicit multiqueue(unsigned relax_k) : shards_(shard_count(relax_k)) {
    for (auto& s : shards_) s = std::make_unique<shard>();
  }

  multiqueue(const multiqueue&) = delete;
  multiqueue& operator=(const multiqueue&) = delete;

  size_t num_shards() const { return shards_.size(); }

  // Insert into a uniformly random shard. `rs`/`draw` are the calling
  // worker's private random stream and draw cursor (stateless hashing, so
  // reproducible per worker). Safe from any worker loop and from the
  // seeding code before the loops start.
  void push(uint64_t priority, uint32_t item, const random_stream& rs, uint64_t& draw) {
    // in_flight rises before the element is visible, so no worker can ever
    // observe "queues empty, counter zero" while an element is in transit.
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    shard& s = *shards_[rs.ith_bounded(draw++, shards_.size())];
    sync::lock_guard<sync::mutex> lk(s.m);
    s.heap.push_back(entry{priority, item});
    std::push_heap(s.heap.begin(), s.heap.end(), later);
  }

  // Best-of-two delete-min: peek two distinct random shards, pop the
  // better top. Falls back to scanning all shards so the last few elements
  // of a draining queue are still found in one attempt. Returns false if
  // every shard was empty at the moment it was inspected.
  bool try_pop(entry& out, const random_stream& rs, uint64_t& draw) {
    const size_t n = shards_.size();
    size_t a = rs.ith_bounded(draw++, n);
    size_t b = rs.ith_bounded(draw++, n);
    if (a == b) b = (b + 1) % n;
    uint64_t pa = 0, pb = 0;
    bool ha = top_of(a, pa), hb = top_of(b, pb);
    if (ha || hb) {
      size_t pick = (!hb || (ha && pa <= pb)) ? a : b;
      if (pop_from(pick, out)) return true;
      // Lost the race for that shard's top; one sweep before giving up.
    }
    for (size_t i = 0; i < n; ++i) {
      if (pop_from((a + i) % n, out)) return true;
    }
    return false;
  }

  // The element handed out by try_pop is done *and* every re-insert it
  // triggered has been pushed. Order matters: a worker always pushes
  // successors before calling done(), so in_flight can only hit zero when
  // nothing remains.
  void done() { in_flight_.fetch_sub(1, std::memory_order_acq_rel); }

  // Zero iff no element is queued or being processed (see done()).
  int64_t in_flight() const { return in_flight_.load(std::memory_order_acquire); }

  // Cooperative abort (cancellation): all worker loops observe this and
  // exit without draining.
  void abort() { abort_.store(true, std::memory_order_release); }
  bool aborted() const { return abort_.load(std::memory_order_acquire); }

 private:
  // std::push_heap builds a max-heap; invert so the top is the *smallest*
  // priority.
  static bool later(const entry& x, const entry& y) { return x.priority > y.priority; }

  // Padded so two shards' locks never share a cache line.
  struct alignas(64) shard {
    sync::mutex m;
    std::vector<entry> heap PP_GUARDED_BY(m);
  };

  bool top_of(size_t i, uint64_t& priority) {
    shard& s = *shards_[i];
    sync::lock_guard<sync::mutex> lk(s.m);
    if (s.heap.empty()) return false;
    priority = s.heap.front().priority;
    return true;
  }

  bool pop_from(size_t i, entry& out) {
    shard& s = *shards_[i];
    sync::lock_guard<sync::mutex> lk(s.m);
    if (s.heap.empty()) return false;
    out = s.heap.front();
    std::pop_heap(s.heap.begin(), s.heap.end(), later);
    s.heap.pop_back();
    return true;
  }

  std::vector<std::unique_ptr<shard>> shards_;
  std::atomic<int64_t> in_flight_{0};
  std::atomic<bool> abort_{false};
};

// Per-worker view of a multiqueue: the worker's private random stream and
// local counters. Passed to the solver's process function so re-inserts
// ("a claimed element re-inserts its invalidated neighbors") go through
// the same worker-local randomness.
class mq_worker {
 public:
  mq_worker(multiqueue& q, uint64_t seed, unsigned index)
      : q_(q), rs_(random_stream(seed).fork(0x4d51u /*'MQ'*/ + index)) {}

  void push(uint64_t priority, uint32_t item) { q_.push(priority, item, rs_, draw_); }

  // A claim the solver could not apply yet (dependencies unresolved):
  // put it back and count the retry.
  void retry(uint64_t priority, uint32_t item) {
    q_.push(priority, item, rs_, draw_);
    ++counters_.retries;
  }

  // A claim that was stale — the element was already decided elsewhere.
  void wasted() { ++counters_.wasted; }

  const mq_counters& counters() const { return counters_; }

 private:
  template <typename Process>
  friend mq_counters mq_run(const context&, multiqueue&, Process&&);

  multiqueue& q_;
  random_stream rs_;
  uint64_t draw_ = 0;
  mq_counters counters_;
};

// Drive `process(worker, priority, item)` over the queue until it is
// globally drained (in-flight counter reaches zero) or the context's
// cancel token fires. One worker loop per num_workers(ctx) slot, scheduled
// with parallel_for over the caller's leased pool — callers hold a
// run_scope (every registry solver does), so this composes with pool_cache
// and pp::serve leases. Returns the merged counters.
//
// The loops never block: an empty pop with work still in flight is a
// counted retry + yield. That makes the driver safe even if the backend
// runs two worker slots on one thread sequentially — the first slot simply
// drains the queue alone and the second exits immediately.
template <typename Process>
mq_counters mq_run(const context& ctx, multiqueue& q, Process&& process) {
  cancel_point();  // pre-cancelled runs unwind before any worker starts
  const unsigned workers = std::max(1u, num_workers(ctx));
  // Poll the token often enough for prompt unwinds but off the hot path.
  constexpr uint64_t kCancelStride = 64;
  std::vector<mq_counters> per_worker(workers);

  auto loop = [&](size_t w) {
    mq_worker self(q, ctx.seed, static_cast<unsigned>(w));
    // One span per worker-loop chunk; popped/wasted attached at the end,
    // once the counts exist.
    trace_span span("mq/worker");
    uint64_t since_poll = 0;
    multiqueue::entry e;
    while (!q.aborted()) {
      if (++since_poll >= kCancelStride) {
        since_poll = 0;
        // Non-throwing poll: this may run on a pool worker thread, where a
        // cancel_point() throw would escape the job. mq_run re-checks (and
        // throws) after the join, on the run's own thread.
        if (ctx.cancel.cancelled()) {
          q.abort();
          break;
        }
      }
      if (q.try_pop(e, self.rs_, self.draw_)) {
        ++self.counters_.popped;
        process(self, e.priority, e.item);
        q.done();  // after process: its re-inserts are already counted
      } else {
        if (q.in_flight() == 0) break;  // globally drained
        ++self.counters_.retries;
        std::this_thread::yield();  // straggler holds the last elements
      }
    }
    per_worker[w] = self.counters_;
    span.args("popped", self.counters_.popped, "wasted", self.counters_.wasted);
  };
  // grain=1 pins one loop per slot; the loops do their own load balancing
  // through the queue, so splitting would only serialize them.
  parallel_for(ctx, 0, workers, loop, /*grain=*/1);

  cancel_point();  // outside every parallel region, on the run's thread

  mq_counters total;
  for (const mq_counters& c : per_worker) {
    total.popped += c.popped;
    total.wasted += c.wasted;
    total.retries += c.retries;
  }
  // One aggregated bump per run, not per pop: the hot loop stays free of
  // shared-cacheline traffic.
  metrics::catalog& m = metrics::catalog::get();
  m.mq_popped.inc(total.popped);
  m.mq_wasted.inc(total.wasted);
  m.mq_retries.inc(total.retries);
  return total;
}

}  // namespace pp
