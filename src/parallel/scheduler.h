// Work-stealing scheduler implementing the binary-forking model of the
// paper (Sec. 2): a computation forks two child tasks; the forking thread
// is suspended (here: it helps run other tasks) until both children finish.
//
// Design: one deque per worker. The calling thread that constructed the
// pool (normally `main`) owns worker slot 0 and participates in the
// computation whenever it reaches a join. Forked right-children are pushed
// to the owner's deque (LIFO for the owner); idle workers steal from the
// front (FIFO) of a random victim, which is the standard depth-first-work /
// breadth-first-steal discipline of work stealing [Blumofe & Leiserson].
//
// The deques are mutex-protected. On the target machines for this
// reproduction (a few cores) deque contention is negligible and the mutex
// variant avoids the memory-ordering subtleties of the Chase-Lev deque; the
// interface would admit a lock-free deque as a drop-in replacement.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace pp::detail {

// Type-erased unit of work. Fork-join jobs live on the forking thread's
// stack; the scheduler only ever sees raw pointers. A job must not be
// touched by its owner after `done` becomes true, and the job must not
// access its own members after setting `done` (the owner may have already
// destroyed it).
struct job {
  virtual void execute() = 0;
  std::atomic<bool> done{false};

 protected:
  ~job() = default;
};

template <typename F>
struct fn_job final : job {
  explicit fn_job(F& f) : f_(&f) {}
  void execute() override {
    F* f = f_;
    (*f)();
    done.store(true, std::memory_order_release);
    // `this` may be dead now; do not touch members.
  }

 private:
  F* f_;
};

class work_stealing_pool {
 public:
  // The constructing thread becomes worker 0. `nthreads` includes it.
  explicit work_stealing_pool(unsigned nthreads);
  ~work_stealing_pool();

  work_stealing_pool(const work_stealing_pool&) = delete;
  work_stealing_pool& operator=(const work_stealing_pool&) = delete;

  unsigned num_workers() const { return static_cast<unsigned>(deques_.size()); }

  // Push a job onto the calling worker's deque. Must be called from a
  // thread that owns a worker slot (worker 0 = pool constructor thread).
  void push(job* j);

  // Remove `j` from the calling worker's deque if it is still there.
  // Returns true on success (the caller then runs it inline); false means a
  // thief already took it.
  bool try_pop_specific(job* j);

  // Run other people's work until `j->done`. Called by the fork parent
  // whose right child was stolen.
  void wait_for(job& j);

  // Worker-id of the calling thread, or -1 if the thread is unknown to the
  // pool (e.g. a thread spawned by the user outside the scheduler).
  int worker_id() const;

  // Singleton used by pp::par_do. Size: PP_THREADS env var, else
  // std::thread::hardware_concurrency().
  static work_stealing_pool& instance();

 private:
  struct deque_slot {
    std::mutex m;
    std::deque<job*> q;
  };

  void worker_loop(unsigned id);
  job* try_pop_local(unsigned id);
  job* try_steal(unsigned thief_id);

  std::vector<std::unique_ptr<deque_slot>> deques_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> jobs_available_{0};  // wake hint for sleeping workers
  std::mutex sleep_m_;
  std::condition_variable sleep_cv_;
};

}  // namespace pp::detail
