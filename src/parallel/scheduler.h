// Work-stealing scheduler implementing the binary-forking model of the
// paper (Sec. 2): a computation forks two child tasks; the forking thread
// is suspended (here: it helps run other tasks) until both children finish.
//
// Design: one deque per worker. Worker slot 0 has no dedicated thread; it
// belongs to whichever thread currently *leases* the pool (normally the
// thread running a top-level solve), which participates in the computation
// whenever it reaches a join. Forked right-children are pushed to the
// owner's deque (LIFO for the owner); idle workers steal from the front
// (FIFO) of a random victim, which is the standard depth-first-work /
// breadth-first-steal discipline of work stealing [Blumofe & Leiserson].
//
// Pools are not process singletons. `pool_cache` keeps idle pools keyed by
// width; a `pool_lease` borrows one of exactly the width a run's context
// asks for (spawning it on first use) and pins the leasing thread to slot 0
// until the lease dies. Two concurrent top-level runs therefore never share
// a pool — not even when they ask for the same width — and a run asking for
// W workers really executes on W deques, which is what makes
// `context::workers` an honest experimental variable for the paper's
// scaling claims (Sec. 6).
//
// The deques are mutex-protected. On the target machines for this
// reproduction (a few cores) deque contention is negligible and the mutex
// variant avoids the memory-ordering subtleties of the Chase-Lev deque; the
// interface would admit a lock-free deque as a drop-in replacement.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/annotations.h"

namespace pp::detail {

// Type-erased unit of work. Fork-join jobs live on the forking thread's
// stack; the scheduler only ever sees raw pointers. A job must not be
// touched by its owner after `done` becomes true, and the job must not
// access its own members after setting `done` (the owner may have already
// destroyed it).
struct job {
  virtual void execute() = 0;
  std::atomic<bool> done{false};

 protected:
  ~job() = default;
};

template <typename F>
struct fn_job final : job {
  explicit fn_job(F& f) : f_(&f) {}
  void execute() override {
    F* f = f_;
    (*f)();
    done.store(true, std::memory_order_release);
    // `this` may be dead now; do not touch members.
  }

 private:
  F* f_;
};

class work_stealing_pool {
 public:
  // Spawns `nthreads - 1` worker threads for slots 1..nthreads-1; slot 0 is
  // reserved for the thread that leases the pool (see attach()).
  explicit work_stealing_pool(unsigned nthreads);
  ~work_stealing_pool();

  work_stealing_pool(const work_stealing_pool&) = delete;
  work_stealing_pool& operator=(const work_stealing_pool&) = delete;

  unsigned num_workers() const { return static_cast<unsigned>(deques_.size()); }

  // Bind the calling thread to worker slot 0 / unbind it. A pool has at
  // most one attached thread at a time (pool_cache hands each pool out
  // exclusively); a thread may be attached to at most one pool.
  void attach();
  void detach();

  // Push a job onto the calling worker's deque. Must be called from a
  // thread that owns a worker slot (worker 0 = the attached lease holder).
  void push(job* j);

  // Remove `j` from the calling worker's deque if it is still there.
  // Returns true on success (the caller then runs it inline); false means a
  // thief already took it.
  bool try_pop_specific(job* j);

  // Run other people's work until `j->done`. Called by the fork parent
  // whose right child was stolen.
  void wait_for(job& j);

  // Worker-id of the calling thread within *this* pool, or -1 if the
  // thread belongs to another pool or to no pool at all.
  int worker_id() const;

 private:
  struct deque_slot {
    sync::mutex m;
    std::deque<job*> q PP_GUARDED_BY(m);
  };

  void worker_loop(unsigned id);
  job* try_pop_local(unsigned id);
  job* try_steal(unsigned thief_id);

  std::vector<std::unique_ptr<deque_slot>> deques_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> active_{false};          // a lease holder is attached
  std::atomic<uint64_t> jobs_available_{0};  // wake hint for sleeping workers
  // Orders the atomic flag flips above against the workers' parking
  // predicate (guards no data of its own — the flags stay atomics so the
  // hot paths read them lock-free).
  sync::mutex sleep_m_;
  std::condition_variable_any sleep_cv_;
};

// The pool this thread is currently working for: its leased pool (between
// attach and detach) or, on a worker thread, the pool that spawned it.
// nullptr for threads outside any native-backend computation.
work_stealing_pool* this_thread_pool();

// True only on a pool-spawned worker thread (slot > 0) — i.e. a thread
// executing someone else's run. The lease holder (slot 0) is the run's own
// thread and returns false.
bool on_scheduler_worker_thread();

// Width the native backend uses for `requested` workers: the request
// itself, or — when the request is 0 — the PP_THREADS env var, else
// std::thread::hardware_concurrency(). Always >= 1.
unsigned resolve_native_workers(unsigned requested);

// Registry of idle pools keyed by width, handed out exclusively: while a
// lease holds a pool no other acquire() can return it. Pools are created
// on demand; *idle* pools are kept on a small LRU so repeated runs of the
// same width reuse threads, but a long-lived serving process that has
// seen many distinct widths does not hold worker threads forever — idle
// pools beyond `idle_cap()` are destroyed (threads joined), least
// recently used first. Leased pools are never evicted.
class pool_cache {
 public:
  static pool_cache& instance();

  // An idle pool of exactly `width` workers (creating one if necessary).
  // The caller owns it exclusively until release().
  work_stealing_pool* acquire(unsigned width);
  void release(work_stealing_pool* pool);

  // Introspection for tests: pools ever created (counter, survives
  // eviction) / currently idle.
  size_t pools_created() const;
  size_t pools_idle() const;

  // Pools currently alive (leased + idle). Bounded by
  // concurrent leases + idle_cap().
  size_t size() const;
  // Pools currently leased out (alive minus idle).
  size_t in_use() const;

  // The idle-pool LRU bound. Shrinking evicts immediately.
  size_t idle_cap() const;
  void set_idle_cap(size_t cap);

  // Total leases ever granted (acquire() calls). The honest amortization
  // metric for batching: a K-item registry::run_batch grants one lease
  // where a loop of K registry::run calls grants K.
  uint64_t acquires() const { return acquires_.load(std::memory_order_relaxed); }

 private:
  pool_cache() = default;

  // Pop evictees beyond `cap` off the LRU under m_; caller destroys them
  // (joins their threads) outside the lock.
  std::vector<std::unique_ptr<work_stealing_pool>> evict_locked(size_t cap) PP_REQUIRES(m_);

  mutable sync::mutex m_;
  // alive: leased + idle
  std::vector<std::unique_ptr<work_stealing_pool>> all_ PP_GUARDED_BY(m_);
  std::vector<work_stealing_pool*> idle_lru_ PP_GUARDED_BY(m_);  // back = most recent
  size_t idle_cap_ PP_GUARDED_BY(m_) = 8;
  size_t created_ PP_GUARDED_BY(m_) = 0;
  std::atomic<uint64_t> acquires_{0};
};

// RAII lease: acquires a pool of `width` workers from the cache and pins
// the constructing thread to its slot 0 until destruction. Must be
// destroyed on the thread that constructed it. The default-constructed
// lease holds nothing (used when the thread is already inside a pool).
class pool_lease {
 public:
  pool_lease() = default;
  explicit pool_lease(unsigned width);
  pool_lease(pool_lease&& o) noexcept : pool_(o.pool_) { o.pool_ = nullptr; }
  pool_lease& operator=(pool_lease&& o) noexcept {
    if (this != &o) {
      reset();
      pool_ = o.pool_;
      o.pool_ = nullptr;
    }
    return *this;
  }
  ~pool_lease() { reset(); }

  explicit operator bool() const { return pool_ != nullptr; }
  unsigned width() const { return pool_ ? pool_->num_workers() : 0; }

 private:
  void reset();
  work_stealing_pool* pool_ = nullptr;
};

}  // namespace pp::detail
