// Parallel sequence primitives built on par_do/parallel_for: reduce, scans,
// pack/filter, map, iota. These play the role ParlayLib plays in the
// authors' implementation.
//
// All primitives are deterministic: given the same input they produce the
// same output regardless of backend or worker count.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "parallel/api.h"

namespace pp {

// ---------------------------------------------------------------------------
// reduce
// ---------------------------------------------------------------------------

// Reduce f(lo..hi) with an associative `combine`; `map(i)` produces the i-th
// leaf value. O(n) work, O(log n) span.
template <typename T, typename Map, typename Combine>
T reduce_map(size_t lo, size_t hi, T identity, Map map, Combine combine, size_t grain = 0) {
  if (hi <= lo) return identity;
  if (grain == 0) grain = detail::auto_grain(hi - lo, num_workers());
  if (hi - lo <= grain) {
    T acc = identity;
    for (size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
    return acc;
  }
  size_t mid = lo + (hi - lo) / 2;
  T left{}, right{};
  par_do([&] { left = reduce_map(lo, mid, identity, map, combine, grain); },
         [&] { right = reduce_map(mid, hi, identity, map, combine, grain); });
  return combine(left, right);
}

template <typename T, typename Combine>
T reduce(std::span<const T> xs, T identity, Combine combine) {
  return reduce_map(
      size_t{0}, xs.size(), identity, [&](size_t i) { return xs[i]; }, combine);
}

template <typename T>
T reduce_add(std::span<const T> xs) {
  return reduce(xs, T{}, std::plus<T>{});
}

// ---------------------------------------------------------------------------
// scan
// ---------------------------------------------------------------------------

// Exclusive scan in place; returns the total. Two-pass blocked algorithm:
// O(n) work, O(log n) span (block count is O(P), the serial sweep over block
// sums is O(P) which we treat as polylog for machine-sized P).
template <typename T, typename Combine>
T scan_exclusive(std::span<T> xs, T identity, Combine combine) {
  size_t n = xs.size();
  if (n == 0) return identity;
  size_t nblocks = static_cast<size_t>(num_workers()) * 8;
  size_t bsize = (n + nblocks - 1) / nblocks;
  if (bsize < 2048) {  // small input: serial scan is faster and simpler
    T acc = identity;
    for (size_t i = 0; i < n; ++i) {
      T next = combine(acc, xs[i]);
      xs[i] = acc;
      acc = next;
    }
    return acc;
  }
  nblocks = (n + bsize - 1) / bsize;
  std::vector<T> sums(nblocks);
  parallel_for(0, nblocks, [&](size_t b) {
    size_t lo = b * bsize, hi = std::min(n, lo + bsize);
    T acc = identity;
    for (size_t i = lo; i < hi; ++i) acc = combine(acc, xs[i]);
    sums[b] = acc;
  });
  T total = identity;
  for (size_t b = 0; b < nblocks; ++b) {
    T next = combine(total, sums[b]);
    sums[b] = total;
    total = next;
  }
  parallel_for(0, nblocks, [&](size_t b) {
    size_t lo = b * bsize, hi = std::min(n, lo + bsize);
    T acc = sums[b];
    for (size_t i = lo; i < hi; ++i) {
      T next = combine(acc, xs[i]);
      xs[i] = acc;
      acc = next;
    }
  });
  return total;
}

template <typename T>
T scan_exclusive_add(std::span<T> xs) {
  return scan_exclusive(xs, T{}, std::plus<T>{});
}

// Inclusive scan in place; returns the total.
template <typename T, typename Combine>
T scan_inclusive(std::span<T> xs, T identity, Combine combine) {
  size_t n = xs.size();
  if (n == 0) return identity;
  size_t nblocks = static_cast<size_t>(num_workers()) * 8;
  size_t bsize = std::max<size_t>(2048, (n + nblocks - 1) / nblocks);
  nblocks = (n + bsize - 1) / bsize;
  std::vector<T> sums(nblocks);
  parallel_for(0, nblocks, [&](size_t b) {
    size_t lo = b * bsize, hi = std::min(n, lo + bsize);
    T acc = identity;
    for (size_t i = lo; i < hi; ++i) {
      acc = combine(acc, xs[i]);
      xs[i] = acc;
    }
    sums[b] = acc;
  });
  std::vector<T> offsets(nblocks);
  T total = identity;
  for (size_t b = 0; b < nblocks; ++b) {
    offsets[b] = total;
    total = combine(total, sums[b]);
  }
  parallel_for(1, nblocks, [&](size_t b) {
    size_t lo = b * bsize, hi = std::min(n, lo + bsize);
    for (size_t i = lo; i < hi; ++i) xs[i] = combine(offsets[b], xs[i]);
  });
  return total;
}

// ---------------------------------------------------------------------------
// pack / filter
// ---------------------------------------------------------------------------

// Stable pack: output[j] = xs[i] for the j-th index i with flag(i) true.
template <typename T, typename Flag>
std::vector<T> pack(std::span<const T> xs, Flag flag) {
  size_t n = xs.size();
  std::vector<size_t> pos(n);
  parallel_for(0, n, [&](size_t i) { pos[i] = flag(i) ? 1 : 0; });
  size_t total = scan_exclusive_add(std::span<size_t>(pos));
  std::vector<T> out(total);
  parallel_for(0, n, [&](size_t i) {
    if (flag(i)) out[pos[i]] = xs[i];
  });
  return out;
}

// Pack the *indices* [0,n) whose flag is true.
template <typename Flag>
std::vector<size_t> pack_index(size_t n, Flag flag) {
  std::vector<size_t> pos(n);
  parallel_for(0, n, [&](size_t i) { pos[i] = flag(i) ? 1 : 0; });
  size_t total = scan_exclusive_add(std::span<size_t>(pos));
  std::vector<size_t> out(total);
  parallel_for(0, n, [&](size_t i) {
    if (flag(i)) out[pos[i]] = i;
  });
  return out;
}

template <typename T, typename Pred>
std::vector<T> filter(std::span<const T> xs, Pred pred) {
  return pack(xs, [&](size_t i) { return pred(xs[i]); });
}

// ---------------------------------------------------------------------------
// map / tabulate / iota
// ---------------------------------------------------------------------------

template <typename T, typename F>
std::vector<T> tabulate(size_t n, F f) {
  std::vector<T> out(n);
  parallel_for(0, n, [&](size_t i) { out[i] = f(i); });
  return out;
}

template <typename T>
std::vector<T> iota(size_t n, T start = T{}) {
  return tabulate<T>(n, [&](size_t i) { return static_cast<T>(start + static_cast<T>(i)); });
}

template <typename In, typename F>
auto map(std::span<const In> xs, F f) {
  using Out = decltype(f(xs[0]));
  std::vector<Out> out(xs.size());
  parallel_for(0, xs.size(), [&](size_t i) { out[i] = f(xs[i]); });
  return out;
}

// ---------------------------------------------------------------------------
// min / max with index
// ---------------------------------------------------------------------------

// Index of the minimum element (first one on ties). O(n) work, O(log n) span.
template <typename T, typename Less = std::less<T>>
size_t min_index(std::span<const T> xs, Less less = Less{}) {
  assert(!xs.empty());
  return reduce_map(
      size_t{0}, xs.size(), xs.size(),
      [](size_t i) { return i; },
      [&](size_t a, size_t b) {
        if (a == xs.size()) return b;
        if (b == xs.size()) return a;
        if (less(xs[b], xs[a])) return b;
        return a;  // prefer smaller index on ties (a < b always here)
      });
}

template <typename T, typename Less = std::less<T>>
size_t max_index(std::span<const T> xs, Less less = Less{}) {
  return min_index(xs, [&](const T& a, const T& b) { return less(b, a); });
}

// ---------------------------------------------------------------------------
// write_min / write_max (atomic priority update, used by SSSP etc.)
// ---------------------------------------------------------------------------

template <typename T>
bool write_min(std::atomic<T>* target, T value) {
  T cur = target->load(std::memory_order_relaxed);
  while (value < cur) {
    if (target->compare_exchange_weak(cur, value, std::memory_order_relaxed)) return true;
  }
  return false;
}

template <typename T>
bool write_max(std::atomic<T>* target, T value) {
  T cur = target->load(std::memory_order_relaxed);
  while (cur < value) {
    if (target->compare_exchange_weak(cur, value, std::memory_order_relaxed)) return true;
  }
  return false;
}

}  // namespace pp
