#include "parallel/scheduler.h"

#include <cassert>
#include <chrono>
#include <cstdlib>

#include "core/metrics.h"
#include "core/trace.h"

namespace pp::detail {

namespace {
// Which pool the calling thread works for, and its slot in that pool.
// Worker threads set these once at startup; a lease holder sets them in
// attach() and clears them in detach(). Keeping the pool pointer thread-
// local (rather than a process-wide "the" pool) is what lets concurrent
// runs on different pools fork and join without seeing each other.
thread_local work_stealing_pool* tl_pool = nullptr;
thread_local int tl_worker_id = -1;

unsigned env_or_hardware_workers() {
  if (const char* env = std::getenv("PP_THREADS")) {
    int v = std::atoi(env);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}
}  // namespace

work_stealing_pool* this_thread_pool() { return tl_pool; }

bool on_scheduler_worker_thread() { return tl_pool != nullptr && tl_worker_id > 0; }

unsigned resolve_native_workers(unsigned requested) {
  if (requested >= 1) return requested;
  static const unsigned def = env_or_hardware_workers();
  return def;
}

work_stealing_pool::work_stealing_pool(unsigned nthreads) {
  if (nthreads < 1) nthreads = 1;
  deques_.reserve(nthreads);
  for (unsigned i = 0; i < nthreads; ++i) deques_.push_back(std::make_unique<deque_slot>());
  threads_.reserve(nthreads - 1);
  for (unsigned i = 1; i < nthreads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

work_stealing_pool::~work_stealing_pool() {
  {
    // Store under the sleep mutex so a worker between its parking
    // predicate check and the block cannot miss the shutdown notify.
    sync::lock_guard<sync::mutex> lk(sleep_m_);
    shutdown_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void work_stealing_pool::attach() {
  assert(tl_pool == nullptr && "thread already works for a pool");
  tl_pool = this;
  tl_worker_id = 0;
  {
    // The lock orders the flag flip against the workers' predicate check,
    // so a worker that just decided to park cannot miss the wake-up.
    sync::lock_guard<sync::mutex> lk(sleep_m_);
    active_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
}

void work_stealing_pool::detach() {
  assert(tl_pool == this && tl_worker_id == 0);
  active_.store(false, std::memory_order_release);
  tl_pool = nullptr;
  tl_worker_id = -1;
}

int work_stealing_pool::worker_id() const { return tl_pool == this ? tl_worker_id : -1; }

void work_stealing_pool::push(job* j) {
  int id = worker_id();
  // Unknown threads (never the case in-library: par_do attaches before the
  // first push) park their jobs on slot 0; worker 0 or a thief runs them.
  unsigned slot = id < 0 ? 0 : static_cast<unsigned>(id);
  {
    deque_slot& s = *deques_[slot];
    sync::lock_guard<sync::mutex> lk(s.m);
    s.q.push_back(j);
  }
  jobs_available_.fetch_add(1, std::memory_order_release);
  sleep_cv_.notify_one();
}

bool work_stealing_pool::try_pop_specific(job* j) {
  int id = worker_id();
  unsigned slot = id < 0 ? 0 : static_cast<unsigned>(id);
  deque_slot& s = *deques_[slot];
  sync::lock_guard<sync::mutex> lk(s.m);
  if (!s.q.empty() && s.q.back() == j) {
    s.q.pop_back();
    return true;
  }
  return false;
}

job* work_stealing_pool::try_pop_local(unsigned id) {
  deque_slot& s = *deques_[id];
  sync::lock_guard<sync::mutex> lk(s.m);
  if (s.q.empty()) return nullptr;
  job* j = s.q.back();
  s.q.pop_back();
  return j;
}

job* work_stealing_pool::try_steal(unsigned thief_id) {
  unsigned n = num_workers();
  if (n <= 1) return nullptr;
  // Cheap per-thread LCG for victim selection; statistical quality is
  // irrelevant here.
  thread_local uint64_t rng = 0x9e3779b97f4a7c15ull ^ (thief_id * 0xbf58476d1ce4e5b9ull + 1);
  for (unsigned attempt = 0; attempt < 2 * n; ++attempt) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    unsigned victim = static_cast<unsigned>((rng >> 33) % n);
    if (victim == thief_id) continue;
    deque_slot& s = *deques_[victim];
    if (!s.m.try_lock()) continue;
    job* j = nullptr;
    if (!s.q.empty()) {
      j = s.q.front();  // steal oldest = shallowest = biggest subtree
      s.q.pop_front();
    }
    s.m.unlock();
    if (j != nullptr) return j;
  }
  return nullptr;
}

void work_stealing_pool::wait_for(job& j) {
  int id = worker_id();
  unsigned self = id < 0 ? 0 : static_cast<unsigned>(id);
  unsigned idle_spins = 0;
  while (!j.done.load(std::memory_order_acquire)) {
    job* other = try_pop_local(self);
    if (other == nullptr) other = try_steal(self);
    if (other != nullptr) {
      other->execute();
      idle_spins = 0;
    } else if (++idle_spins < 64) {
      std::this_thread::yield();
    } else {
      // The job we are waiting for is running on another worker and there
      // is nothing to help with; back off briefly.
      std::this_thread::sleep_for(std::chrono::microseconds(20));
      idle_spins = 0;
    }
  }
}

void work_stealing_pool::worker_loop(unsigned id) {
  tl_pool = this;
  tl_worker_id = static_cast<int>(id);
  unsigned idle_spins = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    job* j = try_pop_local(id);
    if (j == nullptr) j = try_steal(id);
    if (j != nullptr) {
      j->execute();
      idle_spins = 0;
      continue;
    }
    if (++idle_spins < 64) {
      std::this_thread::yield();
    } else {
      uint64_t seen = jobs_available_.load(std::memory_order_acquire);
      sync::unique_lock<sync::mutex> lk(sleep_m_);
      if (!active_.load(std::memory_order_acquire)) {
        // The pool is idle in the cache (no lease holder): park until the
        // next attach instead of polling. A leased-but-quiet pool keeps
        // the short timed wait so a missed push notification costs at
        // most 1ms of steal latency.
        sleep_cv_.wait(lk, [&] {
          return shutdown_.load(std::memory_order_acquire) ||
                 active_.load(std::memory_order_acquire) ||
                 jobs_available_.load(std::memory_order_acquire) != seen;
        });
      } else {
        sleep_cv_.wait_for(lk, std::chrono::milliseconds(1));
      }
      idle_spins = 0;
    }
  }
}

pool_cache& pool_cache::instance() {
  static pool_cache* cache = new pool_cache();  // leaked: pools (and their
  // threads) stay valid for any static-destruction-order stragglers.
  return *cache;
}

work_stealing_pool* pool_cache::acquire(unsigned width) {
  if (width < 1) width = 1;
  acquires_.fetch_add(1, std::memory_order_relaxed);
  {
    sync::lock_guard<sync::mutex> lk(m_);
    // Most-recently-released match first (back of the LRU), so hot widths
    // stay warm and cold ones age toward eviction.
    for (size_t i = idle_lru_.size(); i-- > 0;) {
      if (idle_lru_[i]->num_workers() == width) {
        work_stealing_pool* p = idle_lru_[i];
        idle_lru_.erase(idle_lru_.begin() + static_cast<ptrdiff_t>(i));
        return p;
      }
    }
  }
  // Cache miss: spawn the new pool's threads outside the lock so a slow
  // construction never stalls concurrent acquires/releases. (size()/
  // in_use() don't see the pool until it lands in all_ below — a brief
  // under-report during construction, never an over-report.) created_ is
  // only counted once construction succeeded.
  auto fresh = std::make_unique<work_stealing_pool>(width);
  work_stealing_pool* p = fresh.get();
  sync::lock_guard<sync::mutex> lk(m_);
  ++created_;
  all_.push_back(std::move(fresh));
  return p;
}

void pool_cache::release(work_stealing_pool* pool) {
  std::vector<std::unique_ptr<work_stealing_pool>> evicted;
  {
    sync::lock_guard<sync::mutex> lk(m_);
    idle_lru_.push_back(pool);
    evicted = evict_locked(idle_cap_);
  }
  // Destruction joins the evicted pools' worker threads; do it outside the
  // lock so concurrent acquires/releases never wait on thread teardown.
  evicted.clear();
}

std::vector<std::unique_ptr<work_stealing_pool>> pool_cache::evict_locked(size_t cap) {
  std::vector<std::unique_ptr<work_stealing_pool>> out;
  while (idle_lru_.size() > cap) {
    work_stealing_pool* victim = idle_lru_.front();  // least recently used
    idle_lru_.erase(idle_lru_.begin());
    for (auto it = all_.begin(); it != all_.end(); ++it) {
      if (it->get() == victim) {
        out.push_back(std::move(*it));
        all_.erase(it);
        break;
      }
    }
  }
  return out;
}

size_t pool_cache::pools_created() const {
  sync::lock_guard<sync::mutex> lk(m_);
  return created_;
}

size_t pool_cache::pools_idle() const {
  sync::lock_guard<sync::mutex> lk(m_);
  return idle_lru_.size();
}

size_t pool_cache::size() const {
  sync::lock_guard<sync::mutex> lk(m_);
  return all_.size();
}

size_t pool_cache::in_use() const {
  sync::lock_guard<sync::mutex> lk(m_);
  return all_.size() - idle_lru_.size();
}

size_t pool_cache::idle_cap() const {
  sync::lock_guard<sync::mutex> lk(m_);
  return idle_cap_;
}

void pool_cache::set_idle_cap(size_t cap) {
  std::vector<std::unique_ptr<work_stealing_pool>> evicted;
  {
    sync::lock_guard<sync::mutex> lk(m_);
    idle_cap_ = cap;
    evicted = evict_locked(idle_cap_);
  }
  evicted.clear();
}

pool_lease::pool_lease(unsigned width) {
  assert(tl_pool == nullptr && "cannot lease a pool from inside another pool");
  trace_span span("pool/lease_acquire", "width", width);
  metrics::catalog::get().pool_leases.inc();
  pool_ = pool_cache::instance().acquire(width);
  pool_->attach();
}

void pool_lease::reset() {
  if (pool_ == nullptr) return;
  pool_->detach();
  pool_cache::instance().release(pool_);
  pool_ = nullptr;
}

}  // namespace pp::detail
