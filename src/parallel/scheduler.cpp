#include "parallel/scheduler.h"

#include <chrono>
#include <cstdlib>
#include <random>
#include <string>

namespace pp::detail {

namespace {
// Slot index of the calling thread within the singleton pool.
thread_local int tl_worker_id = -1;

unsigned configured_threads() {
  if (const char* env = std::getenv("PP_THREADS")) {
    int v = std::atoi(env);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}
}  // namespace

work_stealing_pool::work_stealing_pool(unsigned nthreads) {
  if (nthreads < 1) nthreads = 1;
  deques_.reserve(nthreads);
  for (unsigned i = 0; i < nthreads; ++i) deques_.push_back(std::make_unique<deque_slot>());
  tl_worker_id = 0;  // constructing thread adopts slot 0
  threads_.reserve(nthreads - 1);
  for (unsigned i = 1; i < nthreads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

work_stealing_pool::~work_stealing_pool() {
  shutdown_.store(true, std::memory_order_release);
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

int work_stealing_pool::worker_id() const { return tl_worker_id; }

void work_stealing_pool::push(job* j) {
  int id = tl_worker_id;
  // Unknown threads (never the case in-library, but a user thread could
  // call in) park their jobs on slot 0; worker 0 or a thief will run them.
  unsigned slot = id < 0 ? 0 : static_cast<unsigned>(id);
  {
    std::lock_guard<std::mutex> lk(deques_[slot]->m);
    deques_[slot]->q.push_back(j);
  }
  jobs_available_.fetch_add(1, std::memory_order_release);
  sleep_cv_.notify_one();
}

bool work_stealing_pool::try_pop_specific(job* j) {
  int id = tl_worker_id;
  unsigned slot = id < 0 ? 0 : static_cast<unsigned>(id);
  std::lock_guard<std::mutex> lk(deques_[slot]->m);
  auto& q = deques_[slot]->q;
  if (!q.empty() && q.back() == j) {
    q.pop_back();
    return true;
  }
  return false;
}

job* work_stealing_pool::try_pop_local(unsigned id) {
  std::lock_guard<std::mutex> lk(deques_[id]->m);
  auto& q = deques_[id]->q;
  if (q.empty()) return nullptr;
  job* j = q.back();
  q.pop_back();
  return j;
}

job* work_stealing_pool::try_steal(unsigned thief_id) {
  unsigned n = num_workers();
  if (n <= 1) return nullptr;
  // Cheap per-thread LCG for victim selection; statistical quality is
  // irrelevant here.
  thread_local uint64_t rng = 0x9e3779b97f4a7c15ull ^ (thief_id * 0xbf58476d1ce4e5b9ull + 1);
  for (unsigned attempt = 0; attempt < 2 * n; ++attempt) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    unsigned victim = static_cast<unsigned>((rng >> 33) % n);
    if (victim == thief_id) continue;
    std::unique_lock<std::mutex> lk(deques_[victim]->m, std::try_to_lock);
    if (!lk.owns_lock()) continue;
    auto& q = deques_[victim]->q;
    if (q.empty()) continue;
    job* j = q.front();  // steal oldest = shallowest = biggest subtree
    q.pop_front();
    return j;
  }
  return nullptr;
}

void work_stealing_pool::wait_for(job& j) {
  int id = tl_worker_id;
  unsigned self = id < 0 ? 0 : static_cast<unsigned>(id);
  unsigned idle_spins = 0;
  while (!j.done.load(std::memory_order_acquire)) {
    job* other = try_pop_local(self);
    if (other == nullptr) other = try_steal(self);
    if (other != nullptr) {
      other->execute();
      idle_spins = 0;
    } else if (++idle_spins < 64) {
      std::this_thread::yield();
    } else {
      // The job we are waiting for is running on another worker and there
      // is nothing to help with; back off briefly.
      std::this_thread::sleep_for(std::chrono::microseconds(20));
      idle_spins = 0;
    }
  }
}

void work_stealing_pool::worker_loop(unsigned id) {
  tl_worker_id = static_cast<int>(id);
  unsigned idle_spins = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    job* j = try_pop_local(id);
    if (j == nullptr) j = try_steal(id);
    if (j != nullptr) {
      j->execute();
      idle_spins = 0;
      continue;
    }
    if (++idle_spins < 64) {
      std::this_thread::yield();
    } else {
      std::unique_lock<std::mutex> lk(sleep_m_);
      sleep_cv_.wait_for(lk, std::chrono::milliseconds(1));
      idle_spins = 0;
    }
  }
}

work_stealing_pool& work_stealing_pool::instance() {
  static work_stealing_pool pool(configured_threads());
  return pool;
}

}  // namespace pp::detail
