// The one place metric names live. tools/pplint.py's metrics-coverage
// rule extracts every `("pp_..."` literal below and requires it to appear
// in both the README metric catalog and the tests/test_trace.cpp
// Prometheus golden — add a metric here and the lint tells you where the
// docs and tests still owe it.
#include "core/metrics.h"

#include <cstdio>

namespace pp::metrics {

catalog::catalog()
    : serve_submitted("pp_serve_submitted_total",
                      "Requests admitted to the engine queue as entries"),
      serve_completed("pp_serve_completed_total",
                      "Responses delivered ok (cache hits and fanned-out waiters included)"),
      serve_failed("pp_serve_failed_total", "Responses delivered with a non-QoS error"),
      serve_expired("pp_serve_expired_total",
                    "Requests dropped because their deadline passed while queued"),
      serve_cancelled("pp_serve_cancelled_total",
                      "Requests whose solve was cancelled mid-run by a blown deadline"),
      serve_cache_hits("pp_serve_cache_hits_total",
                       "Requests answered from the result cache at admission"),
      serve_cache_misses("pp_serve_cache_misses_total",
                         "Cache lookups that held no entry for the key"),
      serve_deduped("pp_serve_deduped_total",
                    "Requests collapsed onto an identical in-flight execution"),
      serve_queue_depth("pp_serve_queue_depth", "Requests waiting in the admission queue"),
      serve_inflight("pp_serve_inflight_runs", "run_batch flushes executing right now"),
      serve_batch_size("pp_serve_batch_size", "Coalesced requests per run_batch flush"),
      serve_latency_interactive("pp_serve_latency_interactive_usec",
                                "Submit-to-delivery latency, interactive class (microseconds)"),
      serve_latency_batch("pp_serve_latency_batch_usec",
                          "Submit-to-delivery latency, batch class (microseconds)"),
      trace_ring_overwrites("pp_trace_ring_overwrites_total",
                            "Trace records lost to per-thread ring wraparound (a nonzero "
                            "value means a timeline dump is missing its oldest spans)"),
      pool_leases("pp_pool_leases_total", "Work-stealing pool lease acquisitions"),
      mq_popped("pp_mq_popped_total", "Elements claimed from relaxed k-MultiQueues"),
      mq_wasted("pp_mq_wasted_total",
                "MultiQueue pops that were stale or already decided (relaxation cost)"),
      mq_retries("pp_mq_retries_total",
                 "MultiQueue empty best-of-two draws and not-yet-ready re-inserts") {
  counters_ = {&serve_submitted,  &serve_completed,    &serve_failed,
               &serve_expired,    &serve_cancelled,    &serve_cache_hits,
               &serve_cache_misses, &serve_deduped,    &trace_ring_overwrites,
               &pool_leases,      &mq_popped,          &mq_wasted,
               &mq_retries};
  gauges_ = {&serve_queue_depth, &serve_inflight};
  histograms_ = {&serve_batch_size, &serve_latency_interactive, &serve_latency_batch};
}

catalog& catalog::get() {
  // Leaked: emission points may fire from detached threads during
  // process teardown, after static destructors.
  static catalog* c = new catalog;
  return *c;
}

namespace {

void append_u64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void header(std::string& out, const char* name, const char* help, const char* type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string render_prometheus() {
  const catalog& c = catalog::get();
  std::string out;
  out.reserve(4096);
  for (const counter* m : c.counters()) {
    header(out, m->name(), m->help(), "counter");
    out += m->name();
    out += ' ';
    append_u64(out, m->value());
    out += '\n';
  }
  for (const gauge* m : c.gauges()) {
    header(out, m->name(), m->help(), "gauge");
    out += m->name();
    out += ' ';
    append_i64(out, m->value());
    out += '\n';
  }
  for (const histogram* m : c.histograms()) {
    header(out, m->name(), m->help(), "histogram");
    uint64_t cum = 0;
    for (int i = 0; i < histogram::kFiniteBuckets; ++i) {
      cum += m->bucket(i);
      out += m->name();
      out += "_bucket{le=\"";
      append_u64(out, uint64_t{1} << i);
      out += "\"} ";
      append_u64(out, cum);
      out += '\n';
    }
    cum += m->bucket(histogram::kFiniteBuckets);
    out += m->name();
    out += "_bucket{le=\"+Inf\"} ";
    append_u64(out, cum);
    out += '\n';
    out += m->name();
    out += "_sum ";
    append_u64(out, m->sum());
    out += '\n';
    out += m->name();
    out += "_count ";
    append_u64(out, cum);
    out += '\n';
  }
  return out;
}

void reset_for_tests() {
  catalog& c = catalog::get();
  for (counter* m : c.counters()) m->reset();
  for (gauge* m : c.gauges()) m->reset();
  for (histogram* m : c.histograms()) m->reset();
}

}  // namespace pp::metrics
