// Execution context: the single configuration surface for every
// phase-parallel run.
//
// A `pp::context` bundles what used to be scattered across a process-global
// backend flag and positional solver arguments: the parallel backend, the
// worker count, the RNG seed, the parallel-for grain, and algorithm policy
// knobs (currently the Type-2 pivot policy). Every solver in src/algos/
// takes a `const context&`; `parallel_for`/`par_do` consult the *current*
// context (api.h), so a solver that enters a `scoped_context` threads its
// configuration through every fork underneath it without any global state
// of its own.
//
// Three levels:
//   * default_context() — mutable process-wide defaults (what `main` or a
//     CLI flag parser edits once at startup);
//   * current_context() — the context active for the running computation:
//     the innermost scoped_context, or the default when none is active;
//   * scoped_context    — RAII activation of a context for one run; solver
//     entry points install their argument with it.
//
// The old `set_backend` / `scoped_backend` API is kept as thin deprecated
// shims over the default context so existing call sites keep compiling;
// new code should construct a context and pass it down.
#pragma once

#include <omp.h>

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "core/annotations.h"
#include "core/cancel.h"
#include "parallel/backend.h"

namespace pp {

// How a blocked Type-2 object picks the unfinished dominated object to
// sleep on (core/dominance_dp.h).
enum class pivot_policy {
  uniform_random,  // Algorithm 3 as analyzed (Lemma 5.4/5.5)
  rightmost,       // the heuristic used in the paper's experiments (Sec. 6.4)
};

inline const char* pivot_policy_name(pivot_policy p) {
  return p == pivot_policy::uniform_random ? "uniform_random" : "rightmost";
}

struct context {
  backend_kind backend = backend_kind::native;
  unsigned workers = 0;  // 0 = backend default (pool size / omp_get_max_threads)
  uint64_t seed = 1;     // seed for every random choice a solver makes
  size_t grain = 0;      // parallel_for grain; 0 = auto heuristic
  pivot_policy pivot = pivot_policy::rightmost;
  // Relaxation factor k for the relaxed k-MultiQueue execution mode
  // (parallel/multiqueue.h): the scheduler shards work over max(2, 2k)
  // sequential priority queues, so larger k trades contention for bounded
  // priority inversion (more wasted work). Ignored by phase/sequential
  // solvers; a configuration knob, so it participates in operator==.
  unsigned relax_k = 4;
  // Cooperative cancellation handle (core/cancel.h). Null by default; when
  // set, run_scope installs it for the run's thread and the phase loops
  // poll it between rounds. NOT a configuration knob: it never changes
  // what a run computes, only whether it finishes, so it is excluded from
  // operator== below (two racing runs that differ only in their tokens are
  // not cross-contaminating configs).
  cancel_token cancel{};

  // Value-style builders so call sites can derive variants in one line:
  //   registry::run(name, in, ctx.with_backend(backend_kind::openmp))
  context with_backend(backend_kind b) const {
    context c = *this;
    c.backend = b;
    return c;
  }
  context with_workers(unsigned w) const {
    context c = *this;
    c.workers = w;
    return c;
  }
  context with_seed(uint64_t s) const {
    context c = *this;
    c.seed = s;
    return c;
  }
  context with_grain(size_t g) const {
    context c = *this;
    c.grain = g;
    return c;
  }
  context with_pivot(pivot_policy p) const {
    context c = *this;
    c.pivot = p;
    return c;
  }
  context with_cancel(cancel_token t) const {
    context c = *this;
    c.cancel = std::move(t);
    return c;
  }
  context with_relax_k(unsigned k) const {
    context c = *this;
    c.relax_k = k;
    return c;
  }

  // Config-wise equality: two runs "agree" iff every knob that affects
  // what they compute matches. Used by the scope-race detector below and
  // handy in tests. The cancel token is deliberately ignored — concurrent
  // serving batches carry per-request deadline tokens and must not be
  // flagged as conflicting configs.
  friend bool operator==(const context& a, const context& b) {
    return a.backend == b.backend && a.workers == b.workers && a.seed == b.seed &&
           a.grain == b.grain && a.pivot == b.pivot && a.relax_k == b.relax_k;
  }
};

// Process-wide defaults; mutable so startup code can configure them once.
inline context& default_context() {
  static context c;
  return c;
}

// Per-item execution seed for item `i` of a batch run under base seed
// `seed`: one SplitMix64 step over (seed, i). The rule lives here — not
// inside the registry — because it is part of the public batching
// contract: item i of registry::run_batch(name, inputs, ctx) executes
// under ctx.with_seed(derive_seed(ctx.seed, i)), so a batch is
// reproducible item-by-item with plain registry::run calls.
inline uint64_t derive_seed(uint64_t seed, uint64_t i) {
  uint64_t x = seed + (i + 1) * 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace detail {
// The active context is held by shared_ptr so that interleaved or
// concurrent scopes can never restore a pointer into a dead stack frame:
// worst case two racing top-level runs observe each other's context (the
// same last-writer-wins semantics the old atomic backend flag had), never
// undefined behavior. The slot is a shared_mutex-guarded shared_ptr
// rather than std::atomic<shared_ptr>: readers (every implicit
// parallel_for/par_do entry) take a shared lock, writers (scope
// install/restore, already serialized on the scope registry mutex) take
// it exclusively. libstdc++'s atomic<shared_ptr> synchronizes through an
// internal spin bit ThreadSanitizer cannot model, which made every
// concurrent serving run (src/serve/) a TSan false positive; the rwlock
// costs the same order of magnitude per read and is fully TSan-visible.
// The guard relationship is annotated (core/annotations.h), so clang's
// -Wthread-safety proves every slot access takes the rwlock.
struct context_slot {
  sync::shared_mutex m;
  std::shared_ptr<const context> p PP_GUARDED_BY(m);
};
inline context_slot& slot() {
  static context_slot s;
  return s;
}
inline std::shared_ptr<const context> slot_load() {
  context_slot& s = slot();
  sync::shared_lock<sync::shared_mutex> lk(s.m);
  return s.p;
}
inline std::shared_ptr<const context> slot_exchange(std::shared_ptr<const context> p) {
  context_slot& s = slot();
  sync::lock_guard<sync::shared_mutex> lk(s.m);
  std::swap(s.p, p);
  return p;
}
inline void slot_store(std::shared_ptr<const context> p) {
  context_slot& s = slot();
  sync::lock_guard<sync::shared_mutex> lk(s.m);
  s.p = std::move(p);
}
// Store `desired` iff the slot still holds `expected`; returns whether it
// did. (The compare-exchange of the restore path.)
inline bool slot_compare_store(const std::shared_ptr<const context>& expected,
                               std::shared_ptr<const context> desired) {
  context_slot& s = slot();
  sync::lock_guard<sync::shared_mutex> lk(s.m);
  if (s.p != expected) return false;
  s.p = std::move(desired);
  return true;
}

// ---- Scope-race detector ----------------------------------------------------
//
// Activation is process-wide last-writer-wins, so two top-level runs racing
// on scoped_context with *different* configs silently cross-contaminate
// (each may execute under the other's backend/workers/seed). The detector
// keeps the set of live top-level scopes and counts conflicts: a top-level
// scope whose config differs from another live top-level scope. Debug
// builds assert so racing tests fail loudly; release builds count and warn
// so soak harnesses can check scope_conflicts() stayed zero. Prefer
// passing contexts explicitly (parallel_for(ctx, ...)) in genuinely
// concurrent code.
//
// "Top-level" means: first scope on this thread (per-thread depth 0) AND
// the thread is not a scheduler worker executing someone else's run — a
// scope installed from inside a work-stealing pool or an OpenMP region is
// part of the enclosing run, not a new racing run.

// Defined in parallel/scheduler.{h,cpp}; declared here to avoid pulling
// the scheduler into every context.h include. True only on a pool-spawned
// worker thread (slot > 0); a run's own thread — including one holding a
// pool lease via scoped_scheduler, as every registry::run does — is NOT a
// worker thread and its first scope still registers as top-level.
bool on_scheduler_worker_thread();

inline thread_local int tl_scope_depth = 0;

struct scope_registry {
  sync::mutex m;
  // live top-level scopes' configs
  std::vector<const context*> live PP_GUARDED_BY(m);
  // Slot value from before the first scope of the current overlap episode
  // registered — what the slot must return to once every scope has exited,
  // regardless of exit order.
  std::shared_ptr<const context> episode_base PP_GUARDED_BY(m);
  std::atomic<uint64_t> conflicts{0};
  // Debug-build kill switch. Tests that provoke a conflict on purpose (to
  // check the detector itself) clear it around the race.
  std::atomic<bool> assert_on_conflict{true};
};

inline scope_registry& scopes() {
  static scope_registry r;
  return r;
}

// Total conflicting top-level-scope activations observed so far.
inline uint64_t scope_conflicts() {
  return scopes().conflicts.load(std::memory_order_relaxed);
}
}  // namespace detail

// A snapshot of the context governing the running computation: the
// innermost active scoped_context, or the process defaults when none is
// active.
inline context current_context() {
  std::shared_ptr<const context> p = detail::slot_load();
  return p ? *p : default_context();
}

// RAII activation: while alive, current_context() returns (a copy of) `c`.
// Solver entry points install their context argument with this so that
// every parallel_for/par_do they reach runs under it. Like the old backend
// flag, activation is process-wide, not per-thread: fork-join workers must
// observe the caller's context. Concurrent top-level scopes with
// *different* configs are flagged by the scope-race detector above (assert
// in debug builds, counted warning otherwise); the destructor's
// compare-exchange restore keeps a finishing scope from yanking the slot
// out from under a still-live racing scope. What remains unflagged:
// overlapping scopes with equal configs (benign while both live — the
// loser of the exit race keeps a stale-but-identical config installed)
// and nested scopes entered on one thread (intended shadowing, not a
// race). The slot always points at live storage. For genuinely concurrent
// runs, pass contexts explicitly (parallel_for(ctx, ...)).
class scoped_context {
 public:
  // Both the slot mutation and the registry bookkeeping happen under
  // scopes().m, so a scope can never observe a slot state the registry
  // does not yet (or no longer) describes — without the shared critical
  // section, an install racing a register (or a final unregister racing a
  // fresh install) could record the wrong episode base or clobber a just-
  // installed live scope. current_context() readers never take the lock.
  explicit scoped_context(const context& c) : installed_(std::make_shared<const context>(c)) {
    top_level_ = detail::tl_scope_depth++ == 0 && !detail::on_scheduler_worker_thread() &&
                 omp_in_parallel() == 0;
    detail::scope_registry& r = detail::scopes();
    sync::lock_guard<sync::mutex> lk(r.m);
    saved_ = detail::slot_exchange(installed_);
    if (!top_level_) return;
    if (r.live.empty()) r.episode_base = saved_;
    bool conflict = false;
    for (const context* other : r.live) {
      if (!(*other == *installed_)) {
        conflict = true;
        break;
      }
    }
    r.live.push_back(installed_.get());
    if (conflict) {
      r.conflicts.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "pp: WARNING: two live top-level scoped_contexts with different "
                   "configs; concurrent runs may observe each other's settings. "
                   "Pass contexts explicitly to parallel_for/par_do instead.\n");
    }
    assert((!conflict || !r.assert_on_conflict.load()) &&
           "two live top-level scoped_contexts with different configs: "
           "racing runs would cross-contaminate");
  }
  ~scoped_context() {
    detail::scope_registry& r = detail::scopes();
    sync::lock_guard<sync::mutex> lk(r.m);
    --detail::tl_scope_depth;
    if (top_level_) {
      for (size_t i = r.live.size(); i-- > 0;) {
        if (r.live[i] == installed_.get()) {
          r.live.erase(r.live.begin() + static_cast<ptrdiff_t>(i));
          break;
        }
      }
      if (r.live.empty()) {
        // Last top-level scope of the overlap episode: restore the slot to
        // its pre-episode state regardless of exit order — a saved_-chain
        // restore could point at a scope that died earlier in the race.
        detail::slot_store(std::move(r.episode_base));
        r.episode_base.reset();
        return;
      }
    }
    // Other top-level scopes are still live (or we are a nested scope):
    // restore only if the slot still holds our context. If a racing scope
    // replaced it, leaving the slot alone keeps the *live* run's context
    // installed instead of yanking it back to ours mid-run.
    detail::slot_compare_store(installed_, std::move(saved_));
  }

  scoped_context(const scoped_context&) = delete;
  scoped_context& operator=(const scoped_context&) = delete;

 private:
  std::shared_ptr<const context> installed_;
  std::shared_ptr<const context> saved_;
  bool top_level_;
};

// ---- Deprecated shims over the default context ------------------------------
//
// Pre-context API. `set_backend` edits the process defaults; `scoped_backend`
// is a scoped_context that only overrides the backend. Prefer passing a
// context explicitly.

inline backend_kind get_backend() { return current_context().backend; }

inline void set_backend(backend_kind b) { default_context().backend = b; }

class scoped_backend {
 public:
  explicit scoped_backend(backend_kind b) : scope_(current_context().with_backend(b)) {}
  scoped_backend(const scoped_backend&) = delete;
  scoped_backend& operator=(const scoped_backend&) = delete;

 private:
  scoped_context scope_;
};

}  // namespace pp
