// Execution context: the single configuration surface for every
// phase-parallel run.
//
// A `pp::context` bundles what used to be scattered across a process-global
// backend flag and positional solver arguments: the parallel backend, the
// worker count, the RNG seed, the parallel-for grain, and algorithm policy
// knobs (currently the Type-2 pivot policy). Every solver in src/algos/
// takes a `const context&`; `parallel_for`/`par_do` consult the *current*
// context (api.h), so a solver that enters a `scoped_context` threads its
// configuration through every fork underneath it without any global state
// of its own.
//
// Three levels:
//   * default_context() — mutable process-wide defaults (what `main` or a
//     CLI flag parser edits once at startup);
//   * current_context() — the context active for the running computation:
//     the innermost scoped_context, or the default when none is active;
//   * scoped_context    — RAII activation of a context for one run; solver
//     entry points install their argument with it.
//
// The old `set_backend` / `scoped_backend` API is kept as thin deprecated
// shims over the default context so existing call sites keep compiling;
// new code should construct a context and pass it down.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "parallel/backend.h"

namespace pp {

// How a blocked Type-2 object picks the unfinished dominated object to
// sleep on (core/dominance_dp.h).
enum class pivot_policy {
  uniform_random,  // Algorithm 3 as analyzed (Lemma 5.4/5.5)
  rightmost,       // the heuristic used in the paper's experiments (Sec. 6.4)
};

inline const char* pivot_policy_name(pivot_policy p) {
  return p == pivot_policy::uniform_random ? "uniform_random" : "rightmost";
}

struct context {
  backend_kind backend = backend_kind::native;
  unsigned workers = 0;  // 0 = backend default (pool size / omp_get_max_threads)
  uint64_t seed = 1;     // seed for every random choice a solver makes
  size_t grain = 0;      // parallel_for grain; 0 = auto heuristic
  pivot_policy pivot = pivot_policy::rightmost;

  // Value-style builders so call sites can derive variants in one line:
  //   registry::run(name, in, ctx.with_backend(backend_kind::openmp))
  context with_backend(backend_kind b) const {
    context c = *this;
    c.backend = b;
    return c;
  }
  context with_workers(unsigned w) const {
    context c = *this;
    c.workers = w;
    return c;
  }
  context with_seed(uint64_t s) const {
    context c = *this;
    c.seed = s;
    return c;
  }
  context with_grain(size_t g) const {
    context c = *this;
    c.grain = g;
    return c;
  }
  context with_pivot(pivot_policy p) const {
    context c = *this;
    c.pivot = p;
    return c;
  }
};

// Process-wide defaults; mutable so startup code can configure them once.
inline context& default_context() {
  static context c;
  return c;
}

namespace detail {
// The active context is held by shared_ptr so that interleaved or
// concurrent scopes can never restore a pointer into a dead stack frame:
// worst case two racing top-level runs observe each other's context (the
// same last-writer-wins semantics the old atomic backend flag had), never
// undefined behavior.
inline std::atomic<std::shared_ptr<const context>>& current_context_slot() {
  static std::atomic<std::shared_ptr<const context>> p{nullptr};
  return p;
}
}  // namespace detail

// A snapshot of the context governing the running computation: the
// innermost active scoped_context, or the process defaults when none is
// active.
inline context current_context() {
  std::shared_ptr<const context> p =
      detail::current_context_slot().load(std::memory_order_acquire);
  return p ? *p : default_context();
}

// RAII activation: while alive, current_context() returns (a copy of) `c`.
// Solver entry points install their context argument with this so that
// every parallel_for/par_do they reach runs under it. Like the old backend
// flag, activation is process-wide, not per-thread: fork-join workers must
// observe the caller's context. Concurrent top-level runs racing on scopes
// may observe each other's configuration (prefer passing contexts
// explicitly), but the slot always points at live storage.
class scoped_context {
 public:
  explicit scoped_context(const context& c)
      : saved_(detail::current_context_slot().exchange(std::make_shared<const context>(c),
                                                       std::memory_order_acq_rel)) {}
  ~scoped_context() {
    detail::current_context_slot().store(std::move(saved_), std::memory_order_release);
  }

  scoped_context(const scoped_context&) = delete;
  scoped_context& operator=(const scoped_context&) = delete;

 private:
  std::shared_ptr<const context> saved_;
};

// ---- Deprecated shims over the default context ------------------------------
//
// Pre-context API. `set_backend` edits the process defaults; `scoped_backend`
// is a scoped_context that only overrides the backend. Prefer passing a
// context explicitly.

inline backend_kind get_backend() { return current_context().backend; }

inline void set_backend(backend_kind b) { default_context().backend = b; }

class scoped_backend {
 public:
  explicit scoped_backend(backend_kind b) : scope_(current_context().with_backend(b)) {}
  scoped_backend(const scoped_backend&) = delete;
  scoped_backend& operator=(const scoped_backend&) = delete;

 private:
  scoped_context scope_;
};

}  // namespace pp
