// Uniform result envelope for every solver run.
//
// `run_result<T>` wraps a solver's typed payload (lis_result, sssp_result,
// ...) together with the cross-cutting facts every caller wants: the phase
// statistics, wall-clock time, and the context facts (backend, seed) the
// run was executed under. The registry (core/registry.h) returns these for
// every dispatch; `run_timed` builds one around any direct solver call.
#pragma once

#include <chrono>
#include <string>
#include <type_traits>
#include <utility>

#include "core/context.h"
#include "core/stats.h"
#include "parallel/api.h"
#include "parallel/backend.h"

namespace pp {

template <typename T>
struct run_result {
  T value{};             // the solver's own result struct
  phase_stats stats{};   // copied out of value.stats when present
  double seconds = 0.0;  // wall-clock time of the solver call
  backend_kind backend = backend_kind::native;  // backend the run used
  uint64_t seed = 0;                            // seed the run used
  unsigned workers = 0;  // actual worker count the run executed on
  std::string solver;                           // registry name, e.g. "lis/parallel"
};

// Run fn(ctx) under `ctx` (fn must accept a const context&), time it, and
// wrap the result. The scheduler for the run is bound before the clock
// starts (pool lease + thread spawn-up stay out of the measurement) and
// held until fn returns, so the whole solve executes on — and the envelope
// reports — the width the context asked for. If the payload has a `.stats`
// member it is mirrored into the envelope.
template <typename F>
auto run_timed(std::string solver, const context& ctx, F&& fn)
    -> run_result<std::decay_t<decltype(fn(ctx))>> {
  run_result<std::decay_t<decltype(fn(ctx))>> out;
  out.solver = std::move(solver);
  out.backend = ctx.backend;
  out.seed = ctx.seed;
  scoped_scheduler sched(ctx);
  out.workers = sched.workers();
  auto t0 = std::chrono::steady_clock::now();
  out.value = fn(ctx);
  auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  if constexpr (requires(std::decay_t<decltype(fn(ctx))> v) { v.stats; }) {
    out.stats = out.value.stats;
  }
  return out;
}

}  // namespace pp
