// Uniform result envelopes for every solver run.
//
// `run_result<T>` wraps a solver's typed payload (lis_result, sssp_result,
// ...) together with the cross-cutting facts every caller wants: the phase
// statistics, wall-clock time, and the context facts (backend, seed) the
// run was executed under. The registry (core/registry.h) returns these for
// every dispatch; `run_timed` builds one around any direct solver call.
//
// `batch_result<T>` is the batched counterpart: the per-item envelopes of
// one registry::run_batch dispatch plus the aggregate facts a serving
// pipeline tracks (total/min/mean/p95 seconds, summed phase rounds,
// per-item canonical scores). All items of a batch execute under one
// scheduler binding, so aggregate seconds measure solve time only — the
// pool lease and team warm-up are paid once, outside every item's clock.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/context.h"
#include "core/stats.h"
#include "parallel/api.h"
#include "parallel/backend.h"

namespace pp {

template <typename T>
struct run_result {
  T value{};             // the solver's own result struct
  phase_stats stats{};   // copied out of value.stats when present
  double seconds = 0.0;  // wall-clock time of the solver call
  backend_kind backend = backend_kind::native;  // backend the run used
  uint64_t seed = 0;                            // seed the run used
  unsigned workers = 0;  // actual worker count the run executed on
  std::string solver;                           // registry name, e.g. "lis/parallel"
};

// How registry::run_batch walks a batch.
struct batch_options {
  enum class item_order {
    as_given,  // execute items in input order
    shuffled,  // execute in a seed-derived permutation (results still
               // reported in input order, and — with derived seeds —
               // identical to the as_given results item-for-item)
  };
  item_order order = item_order::as_given;
  // true: item i executes under derive_seed(ctx.seed, i), so items are
  // independent and the whole batch is reproducible from one base seed.
  // false: every item runs under ctx.seed verbatim (the --repeats shape:
  // the same measurement repeated, not a batch of independent tasks).
  bool derive_seeds = true;
};

inline const char* item_order_name(batch_options::item_order o) {
  return o == batch_options::item_order::as_given ? "as_given" : "shuffled";
}

template <typename T>
struct batch_result {
  std::vector<run_result<T>> items;  // index-aligned with the input span
  std::vector<int64_t> scores;       // canonical per-item score (score_of)

  // Aggregates over items[*].seconds / .stats (recompute_aggregates()).
  double total_seconds = 0.0;  // sum of per-item solve times
  double min_seconds = 0.0;
  double mean_seconds = 0.0;
  double p95_seconds = 0.0;  // nearest-rank 95th percentile
  size_t total_rounds = 0;   // summed phase rounds across items

  backend_kind backend = backend_kind::native;  // backend the batch used
  uint64_t seed = 0;      // base seed (items derive from it by index)
  unsigned workers = 0;   // width of the one scheduler binding
  std::string solver;     // registry name, e.g. "lis/parallel"

  size_t count() const { return items.size(); }

  // Refresh the timing/round aggregates from `items`. Called by
  // run_batch; call again after mutating items by hand.
  void recompute_aggregates() {
    total_seconds = min_seconds = mean_seconds = p95_seconds = 0.0;
    total_rounds = 0;
    if (items.empty()) return;
    std::vector<double> secs;
    secs.reserve(items.size());
    for (const auto& it : items) {
      secs.push_back(it.seconds);
      total_seconds += it.seconds;
      total_rounds += it.stats.rounds;
    }
    std::sort(secs.begin(), secs.end());
    min_seconds = secs.front();
    mean_seconds = total_seconds / static_cast<double>(secs.size());
    size_t rank = (secs.size() * 95 + 99) / 100;  // ceil(0.95 n), nearest-rank
    p95_seconds = secs[rank == 0 ? 0 : rank - 1];
  }
};

// Run fn(ctx) under `ctx` (fn must accept a const context&), time it, and
// wrap the result. The scheduler for the run is bound before the clock
// starts (pool lease + thread spawn-up stay out of the measurement) and
// held until fn returns, so the whole solve executes on — and the envelope
// reports — the width the context asked for. If the payload has a `.stats`
// member it is mirrored into the envelope.
template <typename F>
auto run_timed(std::string solver, const context& ctx, F&& fn)
    -> run_result<std::decay_t<decltype(fn(ctx))>> {
  run_result<std::decay_t<decltype(fn(ctx))>> out;
  out.solver = std::move(solver);
  out.backend = ctx.backend;
  out.seed = ctx.seed;
  scoped_scheduler sched(ctx);
  out.workers = sched.workers();
  auto t0 = std::chrono::steady_clock::now();
  out.value = fn(ctx);
  auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  if constexpr (requires(std::decay_t<decltype(fn(ctx))> v) { v.stats; }) {
    out.stats = out.value.stats;
  }
  return out;
}

}  // namespace pp
