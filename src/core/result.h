// Uniform result envelopes for every solver run.
//
// `run_result<T>` wraps a solver's typed payload (lis_result, sssp_result,
// ...) together with the cross-cutting facts every caller wants: the phase
// statistics, wall-clock time, and the context facts (backend, seed) the
// run was executed under. The registry (core/registry.h) returns these for
// every dispatch; `run_timed` builds one around any direct solver call.
//
// `batch_result<T>` is the batched counterpart: the per-item envelopes of
// one registry::run_batch dispatch plus the aggregate facts a serving
// pipeline tracks (total/min/mean/p95 seconds, summed phase rounds,
// per-item canonical scores). All items of a batch execute under one
// scheduler binding, so aggregate seconds measure solve time only — the
// pool lease and team warm-up are paid once, outside every item's clock.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/context.h"
#include "core/fingerprint.h"
#include "core/stats.h"
#include "parallel/api.h"
#include "parallel/backend.h"

namespace pp {

// How a run ended. `cancelled` means the run's cancel token fired (manual
// cancel or blown deadline) and the solver unwound at a phase boundary:
// `value` is default-constructed, `seconds` covers the partial solve.
enum class run_status { ok, cancelled };

inline const char* run_status_name(run_status s) {
  return s == run_status::ok ? "ok" : "cancelled";
}

template <typename T>
struct run_result {
  T value{};             // the solver's own result struct
  phase_stats stats{};   // copied out of value.stats when present
  double seconds = 0.0;  // wall-clock time of the solver call
  backend_kind backend = backend_kind::native;  // backend the run used
  uint64_t seed = 0;                            // seed the run used
  unsigned workers = 0;  // actual worker count the run executed on
  run_status status = run_status::ok;           // ok, or cancelled mid-run
  std::string solver;                           // registry name, e.g. "lis/parallel"
  // Canonical fingerprint of the input the run consumed (core/fingerprint.h).
  // Filled by the registry dispatchers, which hold the problem_input;
  // all-zero when the envelope was built around a raw closure (run_timed)
  // that never saw a registry input.
  fingerprint input_fp{};

  bool cancelled() const { return status == run_status::cancelled; }
};

// How registry::run_batch walks a batch.
struct batch_options {
  enum class item_order {
    as_given,  // execute items in input order
    shuffled,  // execute in a seed-derived permutation (results still
               // reported in input order, and — with derived seeds —
               // identical to the as_given results item-for-item)
  };
  item_order order = item_order::as_given;
  // true: item i executes under derive_seed(ctx.seed, i), so items are
  // independent and the whole batch is reproducible from one base seed.
  // false: every item runs under ctx.seed verbatim (the --repeats shape:
  // the same measurement repeated, not a batch of independent tasks).
  bool derive_seeds = true;
  // Non-empty: item i executes under ctx.with_seed(seeds[i]) verbatim,
  // overriding derive_seeds. This is the micro-batching shape (serve/): N
  // independent requests, each with its own seed, coalesced into one
  // batch — item i must reproduce registry::run under exactly seeds[i].
  // Size must equal the batch count (std::invalid_argument otherwise).
  std::vector<uint64_t> seeds;
  // Non-empty: item i executes under tokens[i] (null entries = not
  // cancellable). An item whose token has already fired when its turn
  // comes is skipped without running — its envelope reports
  // run_status::cancelled — and a token firing mid-item cancels that item
  // at its next phase boundary while later items still execute under
  // their own tokens. Size must equal the batch count.
  std::vector<cancel_token> tokens;
};

inline const char* item_order_name(batch_options::item_order o) {
  return o == batch_options::item_order::as_given ? "as_given" : "shuffled";
}

template <typename T>
struct batch_result {
  std::vector<run_result<T>> items;  // index-aligned with the input span
  std::vector<int64_t> scores;       // canonical per-item score (score_of)

  // Aggregates over items[*].seconds / .stats (recompute_aggregates()).
  // Percentiles are nearest-rank, so each one is an actual observed item
  // time and the ordering min <= p50 <= p95 <= p99 <= max always holds
  // (as does min <= mean <= max). Only items that completed (run_status::
  // ok) contribute: a cancelled item's partial (or zero, when skipped)
  // solve time is not a completed-solve observation and would deflate
  // min/mean/percentiles. All items cancelled = all aggregates zero.
  double total_seconds = 0.0;  // sum of per-item solve times
  double min_seconds = 0.0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;  // nearest-rank median
  double p95_seconds = 0.0;  // nearest-rank 95th percentile
  double p99_seconds = 0.0;  // nearest-rank 99th percentile
  double max_seconds = 0.0;
  size_t total_rounds = 0;   // summed phase rounds across items

  backend_kind backend = backend_kind::native;  // backend the batch used
  uint64_t seed = 0;      // base seed (items derive from it by index)
  unsigned workers = 0;   // width of the one scheduler binding
  std::string solver;     // registry name, e.g. "lis/parallel"

  size_t count() const { return items.size(); }

  // Refresh the timing/round aggregates from `items`. Called by
  // run_batch; call again after mutating items by hand.
  void recompute_aggregates() {
    total_seconds = min_seconds = mean_seconds = 0.0;
    p50_seconds = p95_seconds = p99_seconds = max_seconds = 0.0;
    total_rounds = 0;
    if (items.empty()) return;
    std::vector<double> secs;
    secs.reserve(items.size());
    for (const auto& it : items) {
      if (it.status != run_status::ok) continue;
      secs.push_back(it.seconds);
      total_seconds += it.seconds;
      total_rounds += it.stats.rounds;
    }
    if (secs.empty()) return;
    std::sort(secs.begin(), secs.end());
    min_seconds = secs.front();
    max_seconds = secs.back();
    mean_seconds = total_seconds / static_cast<double>(secs.size());
    auto pct = [&](size_t p) {  // nearest-rank: ceil(p/100 * n), 1-based
      size_t rank = (secs.size() * p + 99) / 100;
      return secs[rank == 0 ? 0 : rank - 1];
    };
    p50_seconds = pct(50);
    p95_seconds = pct(95);
    p99_seconds = pct(99);
  }
};

// Run fn(ctx) under `ctx` (fn must accept a const context&), time it, and
// wrap the result. The scheduler for the run is bound before the clock
// starts (pool lease + thread spawn-up stay out of the measurement) and
// held until fn returns, so the whole solve executes on — and the envelope
// reports — the width the context asked for. If the payload has a `.stats`
// member it is mirrored into the envelope. A cancelled_error unwinding out
// of fn (the context's cancel token fired at a phase boundary) is caught
// here and reported as run_status::cancelled, so cancellation is a status,
// not an exception, at every envelope-returning surface.
template <typename F>
auto run_timed(std::string solver, const context& ctx, F&& fn)
    -> run_result<std::decay_t<decltype(fn(ctx))>> {
  run_result<std::decay_t<decltype(fn(ctx))>> out;
  out.solver = std::move(solver);
  out.backend = ctx.backend;
  out.seed = ctx.seed;
  scoped_scheduler sched(ctx);
  out.workers = sched.workers();
  auto t0 = std::chrono::steady_clock::now();
  try {
    out.value = fn(ctx);
  } catch (const cancelled_error&) {
    out.status = run_status::cancelled;
  }
  auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  if constexpr (requires(std::decay_t<decltype(fn(ctx))> v) { v.stats; }) {
    out.stats = out.value.stats;
  }
  return out;
}

}  // namespace pp
