#include "core/registry.h"

#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "algos/relaxed.h"
#include "core/json.h"
#include "graph/generators.h"
#include "parallel/random.h"

namespace pp {

namespace {

template <typename T>
const T& expect(const problem_input& in, const std::string& solver, const char* problem) {
  // Snapshots dispatch as the input they pin, so every existing solver
  // accepts session traffic without knowing sessions exist.
  const T* p = std::get_if<T>(&unwrap_snapshot(in));
  if (!p) {
    throw std::invalid_argument("pp::registry: solver '" + solver + "' expects a '" + problem +
                                "' input (wrong problem_input alternative)");
  }
  return *p;
}

// Order-independent fold of a value vector into one scalar, for payloads
// whose natural answer is a whole array (list ranking, shuffle).
template <typename T>
int64_t fold_checksum(const std::vector<T>& xs) {
  uint64_t acc = 0;
  for (size_t i = 0; i < xs.size(); ++i) acc ^= hash64(hash64(i) ^ static_cast<uint64_t>(xs[i]));
  return static_cast<int64_t>(acc >> 1);
}

}  // namespace

phase_stats stats_of(const solver_value& v) {
  return std::visit([](const auto& r) { return r.stats; }, v);
}

int64_t score_of(const solver_value& v) {
  return std::visit(
      [](const auto& r) -> int64_t {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, lis_result>) {
          return r.length;
        } else if constexpr (std::is_same_v<T, activity_result> ||
                             std::is_same_v<T, unweighted_activity_result> ||
                             std::is_same_v<T, knapsack_result> ||
                             std::is_same_v<T, whac_result>) {
          return r.best;
        } else if constexpr (std::is_same_v<T, mis_result>) {
          return static_cast<int64_t>(r.mis_size);
        } else if constexpr (std::is_same_v<T, coloring_result>) {
          return static_cast<int64_t>(r.num_colors);
        } else if constexpr (std::is_same_v<T, matching_result>) {
          return static_cast<int64_t>(r.matching_size);
        } else if constexpr (std::is_same_v<T, sssp_result>) {
          int64_t sum = 0;
          size_t reachable = 0;
          for (auto d : r.dist) {
            if (d < kInfDist) {
              sum = static_cast<int64_t>(static_cast<uint64_t>(sum) + static_cast<uint64_t>(d));
              ++reachable;
            }
          }
          return static_cast<int64_t>(hash64(static_cast<uint64_t>(sum) ^ reachable) >> 1);
        } else if constexpr (std::is_same_v<T, huffman_result>) {
          return static_cast<int64_t>(r.wpl);
        } else if constexpr (std::is_same_v<T, list_ranking_result>) {
          return fold_checksum(r.rank);
        } else if constexpr (std::is_same_v<T, weighted_ranking_result>) {
          return fold_checksum(r.rank);
        } else {  // shuffle_result
          return fold_checksum(r.perm);
        }
      },
      v);
}

std::string summary_of(const solver_value& v) {
  const char* kind = std::visit(
      [](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, lis_result>) return "lis(length)";
        else if constexpr (std::is_same_v<T, activity_result>) return "activity(best)";
        else if constexpr (std::is_same_v<T, unweighted_activity_result>) return "activity(count)";
        else if constexpr (std::is_same_v<T, mis_result>) return "mis(size)";
        else if constexpr (std::is_same_v<T, coloring_result>) return "coloring(colors)";
        else if constexpr (std::is_same_v<T, matching_result>) return "matching(size)";
        else if constexpr (std::is_same_v<T, sssp_result>) return "sssp(dist-checksum)";
        else if constexpr (std::is_same_v<T, huffman_result>) return "huffman(wpl)";
        else if constexpr (std::is_same_v<T, list_ranking_result>) return "list(checksum)";
        else if constexpr (std::is_same_v<T, weighted_ranking_result>) return "list(checksum)";
        else return "shuffle(checksum)";
      },
      v);
  phase_stats st = stats_of(v);
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s=%lld rounds=%zu processed=%zu max_frontier=%zu", kind,
                static_cast<long long>(score_of(v)), st.rounds, st.processed, st.max_frontier);
  return buf;
}

void registry::add_solver(solver_info info, solver_fn fn) {
  std::string key = info.name;
  solvers_.insert_or_assign(std::move(key), solver_entry{std::move(info), std::move(fn)});
}

void registry::add_problem(std::string name, std::string description, input_fn make) {
  std::string key = name;
  problems_.insert_or_assign(
      std::move(key), problem_entry{problem_info{std::move(name), std::move(description)},
                                    std::move(make)});
}

bool registry::contains(std::string_view name) const {
  return solvers_.find(name) != solvers_.end();
}

const solver_info* registry::info(std::string_view name) const {
  auto it = solvers_.find(name);
  return it == solvers_.end() ? nullptr : &it->second.info;
}

const problem_input& unwrap_snapshot(const problem_input& in) {
  const auto* snap = std::get_if<snapshot_input>(&in);
  return snap ? *snap->base : in;
}

std::string_view problem_name_of(const problem_input& in) {
  // A snapshot belongs to whatever problem its pinned base input does
  // (`base` is never itself a snapshot, so this recurses at most once).
  if (const auto* snap = std::get_if<snapshot_input>(&in)) return problem_name_of(*snap->base);
  // Index-aligned with the plain problem_input variant alternatives;
  // matches the `problem` strings the built-in solvers register under.
  static constexpr std::string_view kNames[] = {"lis",      "activity", "graph",
                                                "sssp",     "huffman",  "knapsack",
                                                "list",     "shuffle",  "whac"};
  static_assert(std::variant_size_v<problem_input> == sizeof(kNames) / sizeof(kNames[0]) + 1);
  return kNames[in.index()];
}

// ---- Canonicalizers ---------------------------------------------------------
// One per problem_input alternative (pplint: fingerprint-coverage). Each
// emits a self-delimiting word stream: lengths before elements, every
// field in declaration order, no representational freedom left (see the
// per-struct notes in registry.h). Changing any encoding here is a
// fingerprint break: bump kFingerprintVersion and regenerate
// tests/golden_results.inc (`ppdriver golden`).

void canonicalize(const sequence_input& in, fingerprint_stream& s) {
  s.vec(in.a);
  // Unit-weight normalization: explicit all-ones == empty (see registry.h).
  bool unit = true;
  for (int32_t w : in.weights) unit = unit && w == 1;
  if (unit) {
    s.size(0);
  } else {
    s.vec(in.weights);
  }
}

void canonicalize(const activity_input& in, fingerprint_stream& s) {
  s.size(in.acts.size());
  for (const activity& a : in.acts) {
    s.i64(a.start);
    s.i64(a.end);
    s.i64(a.weight);
  }
}

void canonicalize(const graph_input& in, fingerprint_stream& s) {
  const graph& g = in.g;
  s.size(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) s.vec(g.neighbors(v));
  s.vec(in.vertex_priority);
  s.vec(in.edge_priority);
}

void canonicalize(const sssp_input& in, fingerprint_stream& s) {
  const wgraph& g = in.g;
  s.size(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    s.vec(g.out_neighbors(v));
    s.vec(g.out_weights(v));
  }
  s.u32(in.source);
  s.u32(in.delta);
}

void canonicalize(const huffman_input& in, fingerprint_stream& s) { s.vec(in.freqs); }

void canonicalize(const knapsack_input& in, fingerprint_stream& s) {
  s.i64(in.capacity);
  s.size(in.items.size());
  for (const knapsack_item& it : in.items) {
    s.i64(it.weight);
    s.i64(it.value);
  }
}

void canonicalize(const list_input& in, fingerprint_stream& s) {
  s.vec(in.next);
  s.vec(in.weights);  // deliberately NOT unit-normalized; see registry.h
}

void canonicalize(const shuffle_input& in, fingerprint_stream& s) {
  s.size(in.n);
  s.vec(in.targets);
}

void canonicalize(const whac_input& in, fingerprint_stream& s) {
  s.size(in.moles.size());
  for (const mole& m : in.moles) {
    s.i64(m.t);
    s.i64(m.p);
  }
}

void canonicalize(const snapshot_input& in, fingerprint_stream& s) {
  // The session store maintains `fp` incrementally (parent fp ⊕ delta fp
  // over the per-element content hashes — see serve/session.cpp), so the
  // canonical form of a snapshot is just those two words: content
  // addressing for a 200k-node instance costs O(1) per version instead of
  // O(m). The variant tag prepended by fingerprint_of keeps this domain
  // separated from every plain alternative, so a snapshot can never alias
  // a value-passed input that happens to contain the same words.
  s.u64(in.fp.hi);
  s.u64(in.fp.lo);
}

fingerprint fingerprint_of(const problem_input& in) {
  fingerprint_stream s;
  s.tag(in.index());  // domain separation between alternatives
  std::visit([&s](const auto& alt) { canonicalize(alt, s); }, in);
  return s.digest();
}

std::vector<solver_info> registry::solvers() const {
  std::vector<solver_info> out;
  out.reserve(solvers_.size());
  for (const auto& [k, e] : solvers_) out.push_back(e.info);
  return out;
}

std::vector<registry::problem_info> registry::problems() const {
  std::vector<problem_info> out;
  out.reserve(problems_.size());
  for (const auto& [k, e] : problems_) out.push_back(e.info);
  return out;
}

problem_input registry::make_input(std::string_view problem, size_t n, uint64_t seed) const {
  auto it = problems_.find(problem);
  if (it == problems_.end())
    throw std::out_of_range("pp::registry: unknown problem '" + std::string(problem) + "'");
  return it->second.make(n, seed);
}

const registry::solver_entry& registry::find_solver(std::string_view name) {
  registry& r = instance();
  auto it = r.solvers_.find(name);
  if (it == r.solvers_.end())
    throw std::out_of_range("pp::registry: unknown solver '" + std::string(name) + "'");
  return it->second;
}

run_result<solver_value> registry::run(std::string_view name, const problem_input& input,
                                       const context& ctx) {
  const solver_entry& e = find_solver(name);
  auto res = run_timed(e.info.name, ctx,
                       [&](const context& c) -> solver_value { return e.fn(input, c); });
  res.stats = stats_of(res.value);  // the variant hides the payload's .stats member
  res.input_fp = fingerprint_of(input);
  return res;
}

batch_result<solver_value> registry::run_batch_impl(
    const solver_entry& e, size_t count,
    const std::function<const problem_input&(size_t)>& input_at, const context& ctx,
    const batch_options& opts) {
  if (!opts.seeds.empty() && opts.seeds.size() != count) {
    throw std::invalid_argument("pp::registry: batch_options.seeds has " +
                                std::to_string(opts.seeds.size()) + " entries for " +
                                std::to_string(count) + " items");
  }
  if (!opts.tokens.empty() && opts.tokens.size() != count) {
    throw std::invalid_argument("pp::registry: batch_options.tokens has " +
                                std::to_string(opts.tokens.size()) + " entries for " +
                                std::to_string(count) + " items");
  }
  batch_result<solver_value> out;
  out.solver = e.info.name;
  out.backend = ctx.backend;
  out.seed = ctx.seed;
  out.items.resize(count);
  out.scores.resize(count);

  // Execution order: input order, or a Fisher-Yates permutation derived
  // from the base seed. Per-item seeds are derived from the *input* index,
  // so shuffling reorders wall-clock interleaving only — every item's
  // result is identical under either order.
  std::vector<size_t> order(count);
  std::iota(order.begin(), order.end(), size_t{0});
  if (opts.order == batch_options::item_order::shuffled) {
    for (size_t i = count; i > 1; --i) {
      size_t j = static_cast<size_t>(
          random_stream(hash64(ctx.seed ^ 0xba7c4ed5u)).ith_bounded(i - 1, i));
      std::swap(order[i - 1], order[j]);
    }
  }

  // Fingerprint each item's input once per distinct object: the --repeats
  // overload hands every item the same input&, so hashing by address
  // collapses N envelope fingerprints into one canonicalization pass.
  const problem_input* fp_src = nullptr;
  fingerprint fp{};
  auto fp_of = [&](const problem_input& in) {
    if (&in != fp_src) {
      fp_src = &in;
      fp = fingerprint_of(in);
    }
    return fp;
  };

  // The whole batch shares ONE run_scope: the context is installed and the
  // scheduler bound (pool lease / OpenMP team warm-up) here, once.
  // Per-item dispatches below construct nested scopes that reuse the
  // pinned pool, so scheduler acquisition is amortized across the batch —
  // and nests correctly when run_batch is itself called from inside an
  // enclosing run (the nested scope is not top-level for the race
  // detector, and no second lease is taken).
  run_scope scope(ctx);
  out.workers = scope.workers();
  for (size_t i : order) {
    context item_ctx = !opts.seeds.empty() ? ctx.with_seed(opts.seeds[i])
                       : opts.derive_seeds ? ctx.with_seed(derive_seed(ctx.seed, i))
                                           : ctx;
    if (!opts.tokens.empty()) item_ctx = item_ctx.with_cancel(opts.tokens[i]);
    // An item whose token already fired (e.g. its deadline passed while
    // earlier batchmates ran) is skipped outright: a cancelled envelope
    // with no solve time, instead of starting work nobody wants. Items
    // with live (or no) tokens execute normally — only the expired ones
    // fail.
    if (item_ctx.cancel.cancelled()) {
      run_result<solver_value> res;
      res.solver = e.info.name;
      res.backend = item_ctx.backend;
      res.seed = item_ctx.seed;
      res.workers = out.workers;
      res.status = run_status::cancelled;
      res.input_fp = fp_of(input_at(i));
      out.scores[i] = 0;
      out.items[i] = std::move(res);
      continue;
    }
    const problem_input& in = input_at(i);
    auto res = run_timed(e.info.name, item_ctx,
                         [&](const context& c) -> solver_value { return e.fn(in, c); });
    res.stats = stats_of(res.value);
    res.input_fp = fp_of(in);
    out.scores[i] = res.cancelled() ? 0 : score_of(res.value);
    out.items[i] = std::move(res);
  }
  out.recompute_aggregates();
  return out;
}

batch_result<solver_value> registry::run_batch(std::string_view name,
                                               std::span<const problem_input> inputs,
                                               const context& ctx, const batch_options& opts) {
  return run_batch_impl(
      find_solver(name), inputs.size(),
      [&inputs](size_t i) -> const problem_input& { return inputs[i]; }, ctx, opts);
}

batch_result<solver_value> registry::run_batch(std::string_view name, const problem_input& input,
                                               size_t count, const context& ctx,
                                               const batch_options& opts) {
  return run_batch_impl(
      find_solver(name), count, [&input](size_t) -> const problem_input& { return input; }, ctx,
      opts);
}

namespace {

// Shared body of both envelope serializers: the members of one run.
void write_run(json::writer& w, const run_result<solver_value>& r) {
  w.member("solver", r.solver);
  w.member("backend", backend_name(r.backend));
  w.member("workers", static_cast<uint64_t>(r.workers));
  w.member("seed", r.seed);
  w.member("status", run_status_name(r.status));
  w.member("input_fingerprint", r.input_fp.hex());
  w.member("seconds", r.seconds);
  w.member("score", score_of(r.value));
  w.member("summary", summary_of(r.value));
  w.key("stats").begin_object();
  w.member("rounds", static_cast<uint64_t>(r.stats.rounds));
  w.member("processed", static_cast<uint64_t>(r.stats.processed));
  w.member("wakeup_attempts", static_cast<uint64_t>(r.stats.wakeup_attempts));
  w.member("max_frontier", static_cast<uint64_t>(r.stats.max_frontier));
  w.member("substeps", static_cast<uint64_t>(r.stats.substeps));
  w.member("relaxations", static_cast<uint64_t>(r.stats.relaxations));
  w.member("popped", static_cast<uint64_t>(r.stats.popped));
  w.member("wasted", static_cast<uint64_t>(r.stats.wasted));
  w.member("retries", static_cast<uint64_t>(r.stats.retries));
  // Derived (a method, so pplint's json-fields data-member sweep cannot
  // demand it): the paper's wake-ups-per-object ratio, Table 2.
  w.member("avg_wakeups", r.stats.avg_wakeups());
  w.end_object();
}

}  // namespace

std::string to_json(const run_result<solver_value>& r) {
  json::writer w;
  w.begin_object();
  write_run(w, r);
  w.end_object();
  return w.str();
}

std::string to_json(const batch_result<solver_value>& b) {
  json::writer w;
  w.begin_object();
  w.member("solver", b.solver);
  w.member("backend", backend_name(b.backend));
  w.member("workers", static_cast<uint64_t>(b.workers));
  w.member("seed", b.seed);
  w.member("count", static_cast<uint64_t>(b.count()));
  w.member("total_seconds", b.total_seconds);
  w.member("min_seconds", b.min_seconds);
  w.member("mean_seconds", b.mean_seconds);
  w.member("p50_seconds", b.p50_seconds);
  w.member("p95_seconds", b.p95_seconds);
  w.member("p99_seconds", b.p99_seconds);
  w.member("max_seconds", b.max_seconds);
  w.member("total_rounds", static_cast<uint64_t>(b.total_rounds));
  w.key("scores").begin_array();
  for (int64_t s : b.scores) w.value(s);
  w.end_array();
  w.key("items").begin_array();
  for (const auto& item : b.items) {
    w.begin_object();
    write_run(w, item);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

namespace {

// All built-in solvers and problems, registered once on first
// registry::instance() access.
void register_builtins(registry& r) {
  // ---- problems: default random instances ----------------------------------
  r.add_problem("lis", "integer sequence (uniform values in [0, 4n))",
                [](size_t n, uint64_t seed) -> problem_input {
                  random_stream rs(seed);
                  sequence_input in;
                  in.a = tabulate<int64_t>(n, [&](size_t i) {
                    return rs.ith_range(i, 0, static_cast<int64_t>(4 * n) + 1);
                  });
                  return in;
                });
  r.add_problem("activity", "random weighted activities (Sec. 6.1 distribution)",
                [](size_t n, uint64_t seed) -> problem_input {
                  return activity_input{random_activities(n, 1'000'000, 800.0, 200.0, 100, seed)};
                });
  r.add_problem("graph", "rmat graph, ~8n edges, random vertex+edge priorities",
                [](size_t n, uint64_t seed) -> problem_input {
                  graph_input in;
                  in.g = rmat_graph(static_cast<vertex_t>(n), 8 * n, seed);
                  in.vertex_priority = random_permutation(in.g.num_vertices(), hash64(seed) | 1);
                  in.edge_priority = random_permutation(in.g.num_edges(), hash64(seed + 1) | 1);
                  return in;
                });
  r.add_problem("sssp", "random directed weighted graph, ~8n edges, weights in [1, 1024]",
                [](size_t n, uint64_t seed) -> problem_input {
                  sssp_input in;
                  auto g = random_graph(static_cast<vertex_t>(n), 8 * n, seed);
                  in.g = add_weights(g, 1, 1024, hash64(seed + 2));
                  in.source = 0;
                  return in;
                });
  r.add_problem("huffman", "sorted uniform frequencies in [1, 1000]",
                [](size_t n, uint64_t seed) -> problem_input {
                  return huffman_input{uniform_freqs(n, 1000, seed)};
                });
  r.add_problem("knapsack", "capacity n, 64 random items with weights in [25, 100]",
                [](size_t n, uint64_t seed) -> problem_input {
                  knapsack_input in;
                  in.capacity = static_cast<int64_t>(n);
                  in.items = random_items(64, 25, 100, 50, seed);
                  return in;
                });
  r.add_problem("list", "random linked list over n nodes",
                [](size_t n, uint64_t seed) -> problem_input {
                  return list_input{random_list(n, seed), {}};
                });
  r.add_problem("shuffle", "Knuth-shuffle swap targets for n elements",
                [](size_t n, uint64_t seed) -> problem_input {
                  return shuffle_input{n, knuth_targets(n, seed)};
                });
  r.add_problem("whac", "random moles (times in [0, 1e6), positions in [0, n/10))",
                [](size_t n, uint64_t seed) -> problem_input {
                  int64_t p_range = std::max<int64_t>(static_cast<int64_t>(n / 10), 100);
                  return whac_input{random_moles(n, 1'000'000, p_range, seed)};
                });

  // ---- solvers --------------------------------------------------------------
  auto seq = [](const problem_input& in, const char* who) -> const sequence_input& {
    return expect<sequence_input>(in, who, "lis");
  };
  r.add_solver({"lis/sequential", "lis", "classic O(n log n) Fenwick DP"},
               [seq](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& s = seq(in, "lis/sequential");
                 return s.weights.empty() ? lis_sequential(s.a, ctx)
                                          : lis_sequential_weighted(s.a, s.weights, ctx);
               });
  r.add_solver({"lis/parallel", "lis", "phase-parallel LIS (Algorithm 3, 2D range tree)"},
               [seq](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& s = seq(in, "lis/parallel");
                 return s.weights.empty() ? lis_parallel(s.a, ctx)
                                          : lis_parallel_weighted(s.a, s.weights, ctx);
               });

  auto act = [](const problem_input& in, const char* who) -> const activity_input& {
    return expect<activity_input>(in, who, "activity");
  };
  r.add_solver({"activity/sequential", "activity", "classic O(n log n) DP (Eq. 1)"},
               [act](const problem_input& in, const context& ctx) -> solver_value {
                 return activity_select_seq(act(in, "activity/sequential").acts, ctx);
               });
  r.add_solver({"activity/type1", "activity", "Algorithm 2: PA-BST range-query frontiers"},
               [act](const problem_input& in, const context& ctx) -> solver_value {
                 return activity_select_type1(act(in, "activity/type1").acts, ctx);
               });
  r.add_solver({"activity/type1_flat", "activity", "Type-1 frontiers on flat sorted arrays"},
               [act](const problem_input& in, const context& ctx) -> solver_value {
                 return activity_select_type1_flat(act(in, "activity/type1_flat").acts, ctx);
               });
  r.add_solver({"activity/type2", "activity", "Sec. 5.1 pivot wake-ups"},
               [act](const problem_input& in, const context& ctx) -> solver_value {
                 return activity_select_type2(act(in, "activity/type2").acts, ctx);
               });
  r.add_solver({"activity_unweighted/sequential", "activity", "earliest-end greedy chain"},
               [act](const problem_input& in, const context& ctx) -> solver_value {
                 return activity_unweighted_greedy_seq(
                     act(in, "activity_unweighted/sequential").acts, ctx);
               });
  r.add_solver({"activity_unweighted/parallel", "activity", "pivot forest + pointer jumping"},
               [act](const problem_input& in, const context& ctx) -> solver_value {
                 return activity_unweighted_parallel(act(in, "activity_unweighted/parallel").acts,
                                                     ctx);
               });
  r.add_solver({"activity_unweighted/euler", "activity",
                "pivot forest + Euler-tour depths (Theorem 5.3 route)"},
               [act](const problem_input& in, const context& ctx) -> solver_value {
                 return activity_unweighted_euler(act(in, "activity_unweighted/euler").acts, ctx);
               });

  auto gin = [](const problem_input& in, const char* who) -> const graph_input& {
    return expect<graph_input>(in, who, "graph");
  };
  r.add_solver({"mis/sequential", "graph", "greedy MIS by priority order"},
               [gin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& g = gin(in, "mis/sequential");
                 return mis_sequential(g.g, g.vertex_priority, ctx);
               });
  r.add_solver({"mis/rounds", "graph", "deterministic-reservation rounds [BFGS12]"},
               [gin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& g = gin(in, "mis/rounds");
                 return mis_rounds(g.g, g.vertex_priority, ctx);
               });
  r.add_solver({"mis/tas", "graph", "Algorithm 4: asynchronous TAS-tree wake-ups"},
               [gin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& g = gin(in, "mis/tas");
                 return mis_tas(g.g, g.vertex_priority, ctx);
               });
  r.add_solver({"coloring/sequential", "graph", "greedy coloring, Jones-Plassmann order"},
               [gin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& g = gin(in, "coloring/sequential");
                 return coloring_sequential(g.g, g.vertex_priority, ctx);
               });
  r.add_solver({"coloring/tas", "graph", "TAS-tree wake-up greedy coloring"},
               [gin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& g = gin(in, "coloring/tas");
                 return coloring_tas(g.g, g.vertex_priority, ctx);
               });
  r.add_solver({"matching/sequential", "graph", "greedy matching by edge priority"},
               [gin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& g = gin(in, "matching/sequential");
                 return matching_sequential(g.g, g.edge_priority, ctx);
               });
  r.add_solver({"matching/rounds", "graph", "round-synchronized greedy matching"},
               [gin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& g = gin(in, "matching/rounds");
                 return matching_rounds(g.g, g.edge_priority, ctx);
               });

  // Relaxed k-MultiQueue paradigm (parallel/multiqueue.h). Each description
  // names its phase-mode determinism reference ("phase ref: X") — the
  // pplint relaxed-coverage rule checks the marker, and the referenced
  // solver is what tests/checkers.h validates these against structurally.
  r.add_solver({"mis/relaxed", "graph",
                "k-MultiQueue asynchronous greedy MIS (phase ref: mis/rounds)"},
               [gin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& g = gin(in, "mis/relaxed");
                 return mis_relaxed(g.g, g.vertex_priority, ctx);
               });
  r.add_solver({"coloring/relaxed", "graph",
                "k-MultiQueue asynchronous greedy coloring (phase ref: coloring/tas)"},
               [gin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& g = gin(in, "coloring/relaxed");
                 return coloring_relaxed(g.g, g.vertex_priority, ctx);
               });
  r.add_solver({"matching/relaxed", "graph",
                "k-MultiQueue asynchronous greedy matching (phase ref: matching/rounds)"},
               [gin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& g = gin(in, "matching/relaxed");
                 return matching_relaxed(g.g, g.edge_priority, ctx);
               });

  auto sin = [](const problem_input& in, const char* who) -> const sssp_input& {
    return expect<sssp_input>(in, who, "sssp");
  };
  r.add_solver({"sssp/dijkstra", "sssp", "sequential binary-heap Dijkstra"},
               [sin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& s = sin(in, "sssp/dijkstra");
                 return sssp_dijkstra(s.g, s.source, ctx);
               });
  r.add_solver({"sssp/bellman_ford", "sssp", "frontier-based parallel Bellman-Ford"},
               [sin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& s = sin(in, "sssp/bellman_ford");
                 return sssp_bellman_ford(s.g, s.source, ctx);
               });
  r.add_solver({"sssp/delta_stepping", "sssp", "Meyer-Sanders buckets (delta from input)"},
               [sin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& s = sin(in, "sssp/delta_stepping");
                 uint32_t delta = s.delta != 0 ? s.delta : s.g.min_weight();
                 return sssp_delta_stepping(s.g, s.source, delta, ctx);
               });
  r.add_solver({"sssp/phase_parallel", "sssp", "Delta-stepping with Delta = w* (Theorem 4.5)"},
               [sin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& s = sin(in, "sssp/phase_parallel");
                 return sssp_phase_parallel(s.g, s.source, ctx);
               });
  r.add_solver({"sssp/crauser", "sssp", "Crauser IN/OUT-criterion rounds (Sec. 4.3)"},
               [sin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& s = sin(in, "sssp/crauser");
                 return sssp_crauser(s.g, s.source, /*use_in_criterion=*/true, ctx);
               });
  r.add_solver({"sssp/incremental", "sssp",
                "delta re-solve over session snapshots: seeds Dijkstra from the prior "
                "version's distances + inserted edges, exact (from-scratch ref: "
                "sssp/dijkstra)"},
               [sin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& s = sin(in, "sssp/incremental");
                 // Only a snapshot carries reusable labels; a plain input —
                 // or a snapshot whose hints a removal invalidated — gets
                 // the from-scratch reference, so the answer is exact and
                 // deterministic either way (golden-table safe).
                 if (const auto* snap = std::get_if<snapshot_input>(&in);
                     snap && snap->prior_dist) {
                   static const std::vector<wgraph::wedge> kNoEdges;
                   return sssp_incremental(
                       s.g, s.source, *snap->prior_dist,
                       snap->inserted_edges ? *snap->inserted_edges : kNoEdges, ctx);
                 }
                 return sssp_dijkstra(s.g, s.source, ctx);
               });
  r.add_solver({"sssp/relaxed", "sssp",
                "k-MultiQueue relaxed Dijkstra, exact distances (phase ref: "
                "sssp/phase_parallel)"},
               [sin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& s = sin(in, "sssp/relaxed");
                 return sssp_relaxed(s.g, s.source, ctx);
               });

  auto hin = [](const problem_input& in, const char* who) -> const huffman_input& {
    return expect<huffman_input>(in, who, "huffman");
  };
  r.add_solver({"huffman/sequential", "huffman", "two-queue O(n) merge"},
               [hin](const problem_input& in, const context& ctx) -> solver_value {
                 return huffman_seq(hin(in, "huffman/sequential").freqs, ctx);
               });
  r.add_solver({"huffman/parallel", "huffman", "relaxed-rank rounds (Theorem 4.7)"},
               [hin](const problem_input& in, const context& ctx) -> solver_value {
                 return huffman_parallel(hin(in, "huffman/parallel").freqs, ctx);
               });

  auto kin = [](const problem_input& in, const char* who) -> const knapsack_input& {
    return expect<knapsack_input>(in, who, "knapsack");
  };
  r.add_solver({"knapsack/sequential", "knapsack", "classic O(nW) DP (Eq. 2)"},
               [kin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& k = kin(in, "knapsack/sequential");
                 return knapsack_seq(k.capacity, k.items, ctx);
               });
  r.add_solver({"knapsack/parallel", "knapsack", "w*-window rounds (Theorem 4.3)"},
               [kin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& k = kin(in, "knapsack/parallel");
                 return knapsack_parallel(k.capacity, k.items, ctx);
               });

  auto lin = [](const problem_input& in, const char* who) -> const list_input& {
    return expect<list_input>(in, who, "list");
  };
  r.add_solver({"list_ranking/sequential", "list", "O(n) pointer chase"},
               [lin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& l = lin(in, "list_ranking/sequential");
                 if (l.weights.empty()) return list_ranking_seq(l.next, ctx);
                 return list_ranking_weighted_seq(l.next, l.weights, ctx);
               });
  r.add_solver({"list_ranking/parallel", "list", "phase-parallel contraction/expansion"},
               [lin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& l = lin(in, "list_ranking/parallel");
                 if (l.weights.empty()) return list_ranking_parallel(l.next, ctx);
                 return list_ranking_weighted_parallel(l.next, l.weights, ctx);
               });

  auto shin = [](const problem_input& in, const char* who) -> const shuffle_input& {
    return expect<shuffle_input>(in, who, "shuffle");
  };
  r.add_solver({"shuffle/sequential", "shuffle", "sequential Knuth shuffle"},
               [shin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& s = shin(in, "shuffle/sequential");
                 return knuth_shuffle_seq(s.n, s.targets, ctx);
               });
  r.add_solver({"shuffle/parallel", "shuffle", "deterministic-reservation rounds"},
               [shin](const problem_input& in, const context& ctx) -> solver_value {
                 const auto& s = shin(in, "shuffle/parallel");
                 return knuth_shuffle_parallel(s.n, s.targets, ctx);
               });

  auto win = [](const problem_input& in, const char* who) -> const whac_input& {
    return expect<whac_input>(in, who, "whac");
  };
  r.add_solver({"whac/sequential", "whac", "O(n log n) Fenwick DP in rotated coordinates"},
               [win](const problem_input& in, const context& ctx) -> solver_value {
                 return whac_sequential(win(in, "whac/sequential").moles, ctx);
               });
  r.add_solver({"whac/parallel", "whac", "dominance-engine wake-ups (Appendix B)"},
               [win](const problem_input& in, const context& ctx) -> solver_value {
                 return whac_parallel(win(in, "whac/parallel").moles, ctx);
               });
}

}  // namespace

registry& registry::instance() {
  static registry* r = [] {
    auto* reg = new registry();
    register_builtins(*reg);
    return reg;
  }();
  return *r;
}

}  // namespace pp
