// The phase-parallel loop skeletons (Algorithm 1 of the paper).
//
// Algorithm 1 processes objects in rounds ordered by rank; what varies per
// problem is how round i's frontier is obtained:
//   * Type 1 (Sec. 4): a range query extracts the maximal ready set;
//   * Type 2 (Sec. 5): finished objects wake up the objects pivoted on them.
// run_type1 captures the common round structure and statistics; the Type-2
// wake-up engine for dominance DPs lives in core/dominance_dp.h, and the
// TAS-tree algorithms (Sec. 5.3) are fully asynchronous and do not loop in
// rounds at all.
#pragma once

#include <vector>

#include "core/cancel.h"
#include "core/stats.h"

namespace pp {

// extract() -> container of ready objects for this round (empty = done);
// process(frontier) performs the round's work. The boundary between
// rounds is a quiescent point (no parallel region in flight), so the
// run's cancel token — if any — is polled there: a cancelled run throws
// cancelled_error out of the loop instead of burning its remaining
// rounds (run_timed turns that into run_status::cancelled).
template <typename Extract, typename Process>
phase_stats run_type1(Extract extract, Process process) {
  phase_stats stats;
  while (true) {
    cancel_point();
    auto frontier = extract();
    if (frontier.empty()) break;
    stats.record_frontier(frontier.size());
    process(frontier);
  }
  return stats;
}

}  // namespace pp
