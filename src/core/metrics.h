// pp::metrics — process-wide named counters, gauges, and fixed-bucket
// log-scale histograms, rendered in Prometheus text exposition format.
//
// Complement to the tracer (core/trace.h): traces answer "where did THIS
// run's time go", metrics answer "what is the process doing right now /
// since start". Every metric is a plain relaxed atomic — an increment is
// one fetch_add, there are no locks and no per-call allocation, so the
// serving hot path can bump them unconditionally.
//
// The full catalog is registered eagerly in one place (catalog's
// constructor, src/core/metrics.cpp — the only file where metric name
// literals live, which is what lets tools/pplint.py's metrics-coverage
// rule cross-check the README catalog and the test golden against the
// code). render_prometheus() therefore always emits every metric, zeroed
// or not, so scrapers see a stable schema from the first scrape.
//
// Exposed by ppserve as `{"metrics": true}` request lines (text carried
// in the JSON response) and as a loopback HTTP `GET /metrics` responder
// (`--metrics-port`).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace pp::metrics {

class counter {
 public:
  counter(const char* name, const char* help) : name_(name), help_(help) {}
  void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }
  const char* name() const { return name_; }
  const char* help() const { return help_; }

 private:
  const char* name_;
  const char* help_;
  std::atomic<uint64_t> v_{0};
};

class gauge {
 public:
  gauge(const char* name, const char* help) : name_(name), help_(help) {}
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }
  const char* name() const { return name_; }
  const char* help() const { return help_; }

 private:
  const char* name_;
  const char* help_;
  std::atomic<int64_t> v_{0};
};

// Fixed log-scale buckets: finite upper bounds 2^0, 2^1, ..., 2^30, then
// +Inf. One histogram shape for every unit (batch sizes, microsecond
// latencies) keeps observe() branch-free beyond the bucket index.
class histogram {
 public:
  static constexpr int kFiniteBuckets = 31;  // le = 1, 2, 4, ..., 2^30

  histogram(const char* name, const char* help) : name_(name), help_(help) {}

  void observe(uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  // Raw (non-cumulative) count of bucket i; i == kFiniteBuckets is +Inf.
  uint64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }
  uint64_t count() const {
    uint64_t c = 0;
    for (const auto& b : buckets_) c += b.load(std::memory_order_relaxed);
    return c;
  }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }
  const char* name() const { return name_; }
  const char* help() const { return help_; }

  // Smallest i with v <= 2^i, saturating into the +Inf bucket (index
  // kFiniteBuckets; finite bucket indices are 0..kFiniteBuckets-1).
  static int bucket_index(uint64_t v) {
    if (v <= 1) return 0;
    int w = 64 - std::countl_zero(v - 1);  // ceil(log2(v))
    return w >= kFiniteBuckets ? kFiniteBuckets : w;
  }

 private:
  const char* name_;
  const char* help_;
  std::atomic<uint64_t> buckets_[kFiniteBuckets + 1]{};
  std::atomic<uint64_t> sum_{0};
};

// The process catalog. Leaky singleton (same lifetime rule as the solver
// registry): emission points from any thread, at any point of shutdown,
// may still touch it.
struct catalog {
  // -- serving engine (src/serve/engine.cpp) --------------------------------
  counter serve_submitted;
  counter serve_completed;
  counter serve_failed;
  counter serve_expired;
  counter serve_cancelled;
  counter serve_cache_hits;
  counter serve_cache_misses;
  counter serve_deduped;
  gauge serve_queue_depth;
  gauge serve_inflight;
  histogram serve_batch_size;
  histogram serve_latency_interactive;
  histogram serve_latency_batch;
  // -- tracer ring buffers (core/trace.h) -----------------------------------
  counter trace_ring_overwrites;
  // -- scheduler (src/parallel/scheduler.cpp) -------------------------------
  counter pool_leases;
  // -- relaxed k-MultiQueue (src/parallel/multiqueue.h) ---------------------
  counter mq_popped;
  counter mq_wasted;
  counter mq_retries;

  static catalog& get();

  // Registration-ordered views the renderer iterates.
  const std::vector<counter*>& counters() const { return counters_; }
  const std::vector<gauge*>& gauges() const { return gauges_; }
  const std::vector<histogram*>& histograms() const { return histograms_; }

 private:
  catalog();
  std::vector<counter*> counters_;
  std::vector<gauge*> gauges_;
  std::vector<histogram*> histograms_;
};

// Prometheus text exposition format (# HELP / # TYPE + samples; histogram
// as cumulative _bucket{le=...} series plus _sum/_count).
std::string render_prometheus();

// Zero every metric (tests only — production metrics are monotonic).
void reset_for_tests();

}  // namespace pp::metrics
