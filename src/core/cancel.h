// Cooperative cancellation for phase-parallel runs.
//
// The paper's framework makes every run's round structure explicit, which
// is exactly the hook a serving system needs to stop work that no longer
// matters: between rounds the algorithm is at a quiescent point (no
// parallel region in flight), so a run can check whether its caller still
// wants the answer and unwind cleanly if not.
//
// `cancel_token` is a shared handle over one cancellation state: a manual
// flag (`cancel()`), an optional deadline (steady clock), or both. A
// default-constructed token is *null* — it never cancels and costs one
// thread-local pointer read per check, so token-free runs execute
// bit-for-bit what they always did.
//
//   pp::cancel_token tok = pp::cancel_token::after(std::chrono::milliseconds(50));
//   auto res = pp::registry::run("lis/parallel", in, ctx.with_cancel(tok));
//   if (res.status == pp::run_status::cancelled) ...  // unwound between rounds
//
// Granularity is the *phase*: the round loops (core/phase_runner.h,
// core/dominance_dp.h, and the hand-rolled loops in src/algos/) call
// `cancel_point()` between rounds on the run's own thread, which throws
// `cancelled_error` when the installed token has been cancelled or its
// deadline has passed. `run_timed` (core/result.h) catches it and stamps
// `run_status::cancelled` into the envelope, so a cancelled dispatch is a
// status, not an exception, at every registry/serving surface.
//
// Checks are deliberately NOT placed inside parallel_for/par_do:
//  * a throw on a pool worker thread would escape its job and terminate;
//  * a throw on the run thread between a fork and its join would abandon a
//    job another worker is still executing (dangling references);
//  * the implicit parallel_for form reads the process-wide context slot,
//    which under concurrent serving executors can hold a *different*
//    run's context — a token read there could cancel the wrong run.
// The thread-local install below avoids all three: `run_scope` installs
// the context's token on the run's own thread only, round boundaries are
// outside every parallel region, and nested scopes shadow (a token-free
// nested run is never cancelled by an enclosing token).
//
// This contract is enforced mechanically: tools/pplint.py (ctest
// `test_pplint` + a CI job) rejects any `cancel_point()` that appears
// lexically inside a parallel_for/par_do call's argument list, so the
// three failure modes above cannot be reintroduced by a refactor that
// TSan happens not to catch.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

namespace pp {

// Thrown by cancel_point()/cancel_token::check() on the run's own thread;
// caught by run_timed and surfaced as run_status::cancelled. Direct solver
// callers that pass a token should be prepared to catch it.
struct cancelled_error : std::runtime_error {
  cancelled_error() : std::runtime_error("pp: run cancelled") {}
};

class cancel_token {
 public:
  using clock = std::chrono::steady_clock;

  // Null token: valid() is false, never cancels, checks are a pointer test.
  cancel_token() = default;

  // Manually cancellable token (no deadline).
  static cancel_token manual() {
    cancel_token t;
    t.s_ = std::make_shared<state>();
    return t;
  }

  // Token that auto-cancels once `deadline` passes (and can still be
  // cancelled manually before that).
  static cancel_token at(clock::time_point deadline) {
    cancel_token t;
    t.s_ = std::make_shared<state>();
    t.s_->has_deadline = true;
    t.s_->deadline = deadline;
    return t;
  }

  // Convenience: deadline `budget` from now.
  template <typename Rep, typename Period>
  static cancel_token after(std::chrono::duration<Rep, Period> budget) {
    return at(clock::now() + std::chrono::duration_cast<clock::duration>(budget));
  }

  bool valid() const { return s_ != nullptr; }

  // Request cancellation. Safe from any thread; copies of this token share
  // the state, so cancelling one handle cancels the run holding another.
  void cancel() const {
    if (s_) s_->cancelled.store(true, std::memory_order_release);
  }

  // True once cancelled manually or past the deadline. A passed deadline
  // is latched into the flag so later checks skip the clock read.
  bool cancelled() const {
    if (!s_) return false;
    if (s_->cancelled.load(std::memory_order_acquire)) return true;
    if (s_->has_deadline && clock::now() >= s_->deadline) {
      s_->cancelled.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  std::optional<clock::time_point> deadline() const {
    if (s_ && s_->has_deadline) return s_->deadline;
    return std::nullopt;
  }

  // Throw cancelled_error if cancelled. The round loops call this through
  // cancel_point() below.
  void check() const {
    if (cancelled()) throw cancelled_error();
  }

 private:
  struct state {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;  // immutable after construction
    clock::time_point deadline{};
  };
  std::shared_ptr<state> s_;
};

namespace detail {
// The token governing the run executing on THIS thread (installed by
// run_scope via scoped_cancel). Thread-local on purpose: pool workers and
// concurrent executors never observe another run's token, unlike the
// process-wide context slot.
inline thread_local const cancel_token* tl_cancel = nullptr;
}  // namespace detail

// RAII install of a run's token on the current thread. A null token
// installs "no token" (shadowing any enclosing one), so a token-free
// nested run — e.g. one item of a serving batch whose neighbor carries a
// deadline — can never be cancelled by state it was not given.
class scoped_cancel {
 public:
  explicit scoped_cancel(cancel_token t) : tok_(std::move(t)), prev_(detail::tl_cancel) {
    detail::tl_cancel = tok_.valid() ? &tok_ : nullptr;
  }
  ~scoped_cancel() { detail::tl_cancel = prev_; }

  scoped_cancel(const scoped_cancel&) = delete;
  scoped_cancel& operator=(const scoped_cancel&) = delete;

 private:
  cancel_token tok_;  // owned copy: the install outlives the caller's handle
  const cancel_token* prev_;
};

// The per-round cancellation check. Call between phases, on the run's own
// thread, outside any parallel region. No installed token = one
// thread-local read, so instrumented loops are free for token-less runs.
inline void cancel_point() {
  if (detail::tl_cancel != nullptr) detail::tl_cancel->check();
}

}  // namespace pp
