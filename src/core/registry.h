// String-keyed solver registry: one dispatch surface for every
// phase-parallel algorithm in the library.
//
//   auto in  = pp::registry::instance().make_input("lis", 100'000, /*seed=*/1);
//   auto res = pp::registry::run("lis/parallel", in, ctx);
//   // res.value holds a lis_result; res.stats/seconds/backend are uniform.
//
// Solvers are registered under "problem/variant" names ("mis/tas",
// "sssp/delta_stepping", ...). Inputs are per-problem descriptor structs
// collected in the `problem_input` variant, so benches, examples, the
// tests, and tools/ppdriver.cpp all build and dispatch workloads the same
// way. Each problem also registers a default input factory (a random
// instance of size n from a seed) for uniform driving from the CLI.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "algos/activity.h"
#include "algos/activity_unweighted.h"
#include "algos/coloring.h"
#include "algos/huffman.h"
#include "algos/knapsack.h"
#include "algos/lis.h"
#include "algos/list_ranking.h"
#include "algos/matching.h"
#include "algos/mis.h"
#include "algos/random_shuffle.h"
#include "algos/sssp.h"
#include "algos/whac.h"
#include "core/context.h"
#include "core/fingerprint.h"
#include "core/result.h"
#include "graph/csr.h"

namespace pp {

// ---- Per-problem input descriptors ------------------------------------------
//
// Every descriptor has a canonicalizer (declared beside it, implemented in
// registry.cpp) that emits its canonical word stream into a
// fingerprint_stream — see the stability contract in core/fingerprint.h.
// tools/pplint.py's fingerprint-coverage rule enforces that every
// problem_input alternative keeps one.

struct sequence_input {  // problem "lis": LIS / weighted LIS
  std::vector<int64_t> a;
  std::vector<int32_t> weights;  // empty = unit weights
};
// Canonical form: an explicit all-ones weight vector IS the unit-weight
// input (both LIS paths compute `weights.empty() ? 1 : weights[i]`), so it
// canonicalizes to the empty spelling and the two fingerprint identically.
void canonicalize(const sequence_input& in, fingerprint_stream& s);

struct activity_input {  // problem "activity": weighted + unweighted selection
  std::vector<activity> acts;  // sorted by sort_activities()
};
void canonicalize(const activity_input& in, fingerprint_stream& s);

struct graph_input {  // problem "graph": MIS, coloring, matching
  graph g;
  std::vector<uint32_t> vertex_priority;  // permutation of 0..n-1
  std::vector<uint32_t> edge_priority;    // permutation of 0..m-1 (canonical edge order)
};
// CSR adjacency is sorted + deduped by construction, so two graphs built
// from any edge-list ordering serialize — and fingerprint — identically.
void canonicalize(const graph_input& in, fingerprint_stream& s);

struct sssp_input {  // problem "sssp"
  wgraph g;
  vertex_t source = 0;
  uint32_t delta = 0;  // 0 = let delta-stepping pick min edge weight
};
void canonicalize(const sssp_input& in, fingerprint_stream& s);

struct huffman_input {  // problem "huffman"
  std::vector<uint64_t> freqs;  // sorted ascending, all >= 1
};
void canonicalize(const huffman_input& in, fingerprint_stream& s);

struct knapsack_input {  // problem "knapsack"
  int64_t capacity = 0;
  std::vector<knapsack_item> items;
};
void canonicalize(const knapsack_input& in, fingerprint_stream& s);

struct list_input {  // problem "list": list ranking (weighted when weights set)
  std::vector<uint32_t> next;
  std::vector<int64_t> weights;  // empty = unweighted ranking
};
// NOT normalized like sequence_input: empty weights select the unweighted
// solvers (list_ranking_result), explicit weights the weighted ones
// (weighted_ranking_result) — different payload types, so an all-ones
// weight vector is a logically different input and keeps its own bytes.
void canonicalize(const list_input& in, fingerprint_stream& s);

struct shuffle_input {  // problem "shuffle": parallel Knuth shuffle
  size_t n = 0;
  std::vector<uint32_t> targets;  // H[i] in [0, i]
};
void canonicalize(const shuffle_input& in, fingerprint_stream& s);

struct whac_input {  // problem "whac": Whac-A-Mole dominance DP
  std::vector<mole> moles;
};
void canonicalize(const whac_input& in, fingerprint_stream& s);

struct snapshot_input;  // versioned session snapshot (defined below the variant)

using problem_input =
    std::variant<sequence_input, activity_input, graph_input, sssp_input, huffman_input,
                 knapsack_input, list_input, shuffle_input, whac_input, snapshot_input>;

// An immutable versioned view of a session instance (src/serve/session.h).
// Holds the materialized base input by shared pointer — copies are O(1), and
// in-flight solves pin version v while the session writer installs v+1.
// `base` is never null and never itself a snapshot. `fp` is maintained
// incrementally by the session store (per-version fp = parent fp ⊕ delta
// fp), so canonicalize() emits just those two words: the serve-layer result
// cache and in-flight dedup address a 200k-node instance without rehashing
// it on every delta. The optional hint fields let incremental solvers
// (sssp/incremental) reuse the previous version's labels; solvers that
// ignore them see exactly the base input.
struct snapshot_input {
  std::shared_ptr<const problem_input> base;
  uint64_t version = 0;
  fingerprint fp{};
  // Incremental-solve hints: distances computed at some earlier version,
  // plus every edge inserted since. Null/empty when no usable prior solve
  // exists (fresh instance, or a delta that invalidated the labels).
  std::shared_ptr<const std::vector<int64_t>> prior_dist;
  std::shared_ptr<const std::vector<wgraph::wedge>> inserted_edges;
};
void canonicalize(const snapshot_input& in, fingerprint_stream& s);

// The held alternative with any snapshot wrapper removed: snapshots resolve
// to their materialized base input, every other alternative returns itself.
// Solver dispatch, score checking, and the structural checkers all unwrap
// through this so a snapshot behaves exactly like the value it pins.
const problem_input& unwrap_snapshot(const problem_input& in);

// Which problem the held alternative belongs to ("lis", "graph", ...) —
// the same string solver_info::problem uses, so callers can check an
// input/solver pairing without attempting a dispatch.
std::string_view problem_name_of(const problem_input& in);

// The 128-bit content address of an input: variant tag + the held
// alternative's canonical word stream, digested. Two inputs with equal
// fingerprints are (up to 2^-128 collisions) the same logical problem
// instance, so (solver, fingerprint, seed) addresses a deterministic
// result — the key the serve-layer cache/dedup, the ppfuzz corpus, and
// the golden-result regression table share.
fingerprint fingerprint_of(const problem_input& in);

// ---- Type-erased solver payload ---------------------------------------------

using solver_value =
    std::variant<lis_result, activity_result, unweighted_activity_result, mis_result,
                 coloring_result, matching_result, sssp_result, huffman_result,
                 knapsack_result, list_ranking_result, weighted_ranking_result,
                 shuffle_result, whac_result>;

// Every payload carries phase statistics; extract them uniformly.
phase_stats stats_of(const solver_value& v);

// A canonical scalar answer per payload (LIS length, |MIS|, best weight,
// weighted path length, ...) for quick cross-checks and CLI output.
int64_t score_of(const solver_value& v);

// One-line human-readable summary of the payload.
std::string summary_of(const solver_value& v);

// Machine-readable envelopes (core/json.h writer; no external deps). The
// batch form nests every per-item envelope under "items" plus the
// aggregate seconds/rounds/scores, so CI can track the perf trajectory of
// a whole batch from one document.
std::string to_json(const run_result<solver_value>& r);
std::string to_json(const batch_result<solver_value>& b);

// ---- The registry -----------------------------------------------------------

struct solver_info {
  std::string name;         // "lis/parallel"
  std::string problem;      // "lis" — which problem_input alternative it consumes
  std::string description;  // one line
};

// ---- Execution paradigms ----------------------------------------------------
//
// Three ways a registered solver executes:
//   sequential — one thread, the work-efficient baseline/reference;
//   phase      — round-synchronous phase-parallel (the paper's model);
//                deterministic in (input, seed), covered by the golden
//                bit-stability table (tests/golden_results.inc);
//   relaxed    — asynchronous over the k-MultiQueue scheduler
//                (parallel/multiqueue.h); honors context::relax_k, its
//                outputs are validated structurally against the phase
//                reference, and it is EXEMPT from the golden table (the
//                structural contract, not bit-stability, is what it
//                promises).
// The paradigm is derived from the registered name — "<family>/relaxed"
// and "<family>/sequential" are naming contracts (pplint enforces the
// relaxed side) — so the 30+ existing registrations need no extra field.
enum class solver_paradigm { sequential, phase, relaxed };

inline solver_paradigm paradigm_of(const solver_info& info) {
  std::string_view name = info.name;
  size_t slash = name.rfind('/');
  std::string_view variant = slash == std::string_view::npos ? name : name.substr(slash + 1);
  if (variant == "relaxed") return solver_paradigm::relaxed;
  // sssp/dijkstra is the sequential reference of its family despite the
  // historical name (the same exception tools/pplint.py's solver-coverage
  // rule carries).
  if (variant == "sequential" || name == "sssp/dijkstra") return solver_paradigm::sequential;
  return solver_paradigm::phase;
}

inline const char* paradigm_name(solver_paradigm p) {
  switch (p) {
    case solver_paradigm::sequential: return "sequential";
    case solver_paradigm::phase: return "phase";
    case solver_paradigm::relaxed: return "relaxed";
  }
  return "phase";
}

// Whether the solver consults context::relax_k (today: exactly the
// relaxed paradigm).
inline bool accepts_relax_knob(const solver_info& info) {
  return paradigm_of(info) == solver_paradigm::relaxed;
}

class registry {
 public:
  using solver_fn = std::function<solver_value(const problem_input&, const context&)>;
  using input_fn = std::function<problem_input(size_t n, uint64_t seed)>;

  struct problem_info {
    std::string name;
    std::string description;
  };

  // The process-wide registry, with all built-in solvers registered.
  static registry& instance();

  void add_solver(solver_info info, solver_fn fn);
  void add_problem(std::string name, std::string description, input_fn make);

  bool contains(std::string_view name) const;
  std::vector<solver_info> solvers() const;    // sorted by name
  std::vector<problem_info> problems() const;  // sorted by name

  // Non-throwing metadata lookup: the solver's info, or nullptr when the
  // name is unknown. The serving engine validates requests with this at
  // admission time so one bad request cannot poison a coalesced batch.
  const solver_info* info(std::string_view name) const;

  // Default random instance of a problem (size n, derived from seed).
  problem_input make_input(std::string_view problem, size_t n, uint64_t seed) const;

  // Look up `name`, run it on `input` under `ctx`, and wrap payload +
  // stats + timing in a run_result. Throws std::out_of_range for unknown
  // solvers and std::invalid_argument when `input` holds the wrong
  // alternative for the solver's problem.
  static run_result<solver_value> run(std::string_view name, const problem_input& input,
                                      const context& ctx = default_context());

  // Batched dispatch: run `name` on every input under ONE run_scope (one
  // scoped_context + one scheduler binding), so the pool lease / OpenMP
  // team warm-up is paid once per batch instead of once per item — the
  // serving-traffic shape. Item i executes under
  // ctx.with_seed(derive_seed(ctx.seed, i)) (unless opts.derive_seeds is
  // off), so results are independent of opts.order and reproducible
  // item-by-item with plain run() calls. Items land in `items`/`scores`
  // at their input index regardless of execution order. Throws like run().
  static batch_result<solver_value> run_batch(std::string_view name,
                                              std::span<const problem_input> inputs,
                                              const context& ctx = default_context(),
                                              const batch_options& opts = {});

  // Repeat one input `count` times without copying it (the --repeats
  // shape; combine with opts.derive_seeds=false for identical repeats).
  static batch_result<solver_value> run_batch(std::string_view name, const problem_input& input,
                                              size_t count,
                                              const context& ctx = default_context(),
                                              const batch_options& opts = {});

 private:
  registry() = default;

  struct solver_entry {
    solver_info info;
    solver_fn fn;
  };
  struct problem_entry {
    problem_info info;
    input_fn make;
  };

  // Lookup for the static dispatchers; throws std::out_of_range on an
  // unknown name.
  static const solver_entry& find_solver(std::string_view name);

  // Shared core of both run_batch overloads: `input_at(i)` supplies item
  // i's input (a span element, or the same input `count` times).
  static batch_result<solver_value> run_batch_impl(
      const solver_entry& e, size_t count,
      const std::function<const problem_input&(size_t)>& input_at, const context& ctx,
      const batch_options& opts);

  std::map<std::string, solver_entry, std::less<>> solvers_;
  std::map<std::string, problem_entry, std::less<>> problems_;
};

}  // namespace pp
