// Fenwick (binary indexed) trees for prefix-maximum, in a plain and an
// atomic flavour.
//
// Prefix-max Fenwicks only ever *raise* values, which makes the atomic
// variant race-free under concurrent updates (write_max per node is
// commutative and monotone): batches of dp updates in the flat Type-1
// activity-selection variant and the Type-2 wake-up algorithms can be
// applied with plain parallel_for. Queries must still be separated from
// updates by the round structure (the phase-parallel frontier guarantees
// all dp values a query depends on were written in earlier rounds).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "parallel/api.h"
#include "parallel/primitives.h"

namespace pp {

template <typename T>
class fenwick_max {
 public:
  explicit fenwick_max(size_t n, T identity) : n_(n), id_(identity), t_(n + 1, identity) {}

  // max over positions [0, k)
  T prefix_max(size_t k) const {
    T acc = id_;
    for (size_t i = k; i > 0; i -= i & (~i + 1))
      if (t_[i] > acc) acc = t_[i];
    return acc;
  }

  // raise position p to at least v
  void raise(size_t p, T v) {
    for (size_t i = p + 1; i <= n_; i += i & (~i + 1))
      if (v > t_[i]) t_[i] = v;
  }

  size_t size() const { return n_; }

 private:
  size_t n_;
  T id_;
  std::vector<T> t_;
};

template <typename T>
class atomic_fenwick_max {
 public:
  explicit atomic_fenwick_max(size_t n, T identity) : n_(n), id_(identity) {
    t_ = std::vector<std::atomic<T>>(n + 1);
    parallel_for(0, n + 1, [&](size_t i) { t_[i].store(identity, std::memory_order_relaxed); });
  }

  T prefix_max(size_t k) const {
    T acc = id_;
    for (size_t i = k; i > 0; i -= i & (~i + 1)) {
      T v = t_[i].load(std::memory_order_relaxed);
      if (v > acc) acc = v;
    }
    return acc;
  }

  // Concurrent-safe: write_max every node on the update path.
  void raise(size_t p, T v) {
    for (size_t i = p + 1; i <= n_; i += i & (~i + 1)) write_max(&t_[i], v);
  }

  size_t size() const { return n_; }

 private:
  size_t n_;
  T id_;
  std::vector<std::atomic<T>> t_;
};

}  // namespace pp
