// Execution statistics for phase-parallel algorithms: the quantities the
// paper reports (number of rounds == rank of the input, wake-up attempts
// per object — Table 2 / Lemma 5.5) and that the tests/benches verify.
#pragma once

#include <cstddef>

#include "core/trace.h"

namespace pp {

struct phase_stats {
  size_t rounds = 0;             // parallel rounds executed (== rank(S) for exact ranks)
  size_t processed = 0;          // objects processed in total
  size_t wakeup_attempts = 0;    // Type-2: readiness checks performed
  size_t max_frontier = 0;       // largest single-round frontier
  size_t substeps = 0;           // inner iterations (e.g. Delta-stepping Bellman-Ford substeps)
  size_t relaxations = 0;        // SSSP edge relaxations

  // Relaxed k-MultiQueue mode (parallel/multiqueue.h; zero for phase runs).
  size_t popped = 0;   // elements claimed from the MultiQueue
  size_t wasted = 0;   // pops that were stale/already decided (relaxation cost)
  size_t retries = 0;  // empty best-of-two draws + not-yet-ready re-inserts

  void record_frontier(size_t size) {
    // Per-round trace event (round index + frontier size); one relaxed
    // atomic load + branch when tracing is off.
    trace::instant("phase/round", "round", rounds, "frontier", size);
    rounds++;
    processed += size;
    if (size > max_frontier) max_frontier = size;
  }

  double avg_wakeups() const {
    return processed == 0 ? 0.0 : static_cast<double>(wakeup_attempts) / static_cast<double>(processed);
  }
};

}  // namespace pp
