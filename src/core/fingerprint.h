// Canonical input fingerprints: a 128-bit content hash over a canonical
// serialized form of a problem input.
//
// The paper's central property — every solver is deterministic given
// (algorithm, input, seed) — makes responses content-addressable. This
// header supplies the addressing half: `fingerprint_stream` absorbs a
// canonical word stream and digests it into a `fingerprint`, the key the
// serving engine's result cache / in-flight dedup (src/serve/), the ppfuzz
// corpus dedup, and the registry golden-result tables all share.
//
// Stability contract (locked by tests/golden_results.inc):
//
//  * Identical logical inputs produce identical word streams and identical
//    fingerprints, regardless of construction path. Each canonicalizer
//    (declared next to its descriptor struct in core/registry.h) is
//    responsible for emitting a *canonical* encoding: CSR graphs are
//    already edge-order-independent, and representational degrees of
//    freedom (an explicit all-ones LIS weight vector versus the empty
//    "unit weights" spelling) are normalized away.
//  * The digest is pure integer arithmetic (SplitMix64 finalizers over
//    64-bit words), so a fingerprint is identical across platforms,
//    compilers, and word orders — safe to commit to the repo and to shard
//    on (the planned consistent-hash pprouter front end).
//  * The encoding is versioned by kFingerprintVersion, absorbed into
//    every digest. Changing any canonicalizer must bump it (and
//    regenerate the golden table), so stale cross-process cache keys can
//    never alias fresh ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace pp {

// Bump when any canonical encoding changes; see the stability contract.
inline constexpr uint64_t kFingerprintVersion = 1;

struct fingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const fingerprint&, const fingerprint&) = default;
  friend auto operator<=>(const fingerprint&, const fingerprint&) = default;

  // 32 lowercase hex digits, hi word first — the spelling the JSON
  // envelopes, the golden table, and the ppserve wire format all use.
  std::string hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) out[15 - i] = kDigits[(hi >> (4 * i)) & 0xf];
    for (int i = 0; i < 16; ++i) out[31 - i] = kDigits[(lo >> (4 * i)) & 0xf];
    return out;
  }
};

namespace detail {
// SplitMix64 finalizer — the same mixer parallel/random.h builds its
// deterministic streams from, restated here so core/fingerprint.h stays a
// leaf header (no parallel/ include from core/).
inline uint64_t fp_mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
inline uint64_t fp_rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }
}  // namespace detail

// Absorbs a stream of 64-bit words into two cross-mixed SplitMix64 lanes.
// Every primitive a canonicalizer emits is widened to one word, so the
// encoding has no byte-order or padding freedom to get wrong. digest() is
// length-strengthened (the word count enters the finalizer), so a stream
// and any proper prefix of it can never collide trivially.
class fingerprint_stream {
 public:
  fingerprint_stream() { word(kFingerprintVersion); }

  void word(uint64_t w) {
    ++len_;
    h1_ = detail::fp_mix64(h1_ ^ (w * 0x9e3779b97f4a7c15ULL));
    h2_ = detail::fp_mix64(detail::fp_rotl(h2_, 29) ^ (w + 0xd1b54a32d192ed03ULL));
  }

  // Domain-separation tag: every canonicalizer leads with its variant
  // index, so e.g. an empty sequence and an empty frequency table digest
  // differently.
  void tag(uint64_t t) { word(0xf1a6f1a6f1a6f1a6ULL ^ t); }

  void u64(uint64_t v) { word(v); }
  void i64(int64_t v) { word(static_cast<uint64_t>(v)); }  // two's complement
  void u32(uint32_t v) { word(v); }
  void i32(int32_t v) { word(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  void size(size_t v) { word(static_cast<uint64_t>(v)); }

  // Length-prefixed vector of integral values — the one aggregate shape
  // every descriptor struct is built from.
  template <typename Vec>
  void vec(const Vec& xs) {
    size(xs.size());
    for (const auto& x : xs) word(static_cast<uint64_t>(static_cast<int64_t>(x)));
  }

  fingerprint digest() const {
    uint64_t a = detail::fp_mix64(h1_ ^ detail::fp_mix64(len_));
    uint64_t b = detail::fp_mix64(h2_ + a);
    return fingerprint{a, b};
  }

 private:
  uint64_t h1_ = 0x243f6a8885a308d3ULL;  // pi digits; arbitrary fixed IVs
  uint64_t h2_ = 0x13198a2e03707344ULL;
  uint64_t len_ = 0;
};

}  // namespace pp
