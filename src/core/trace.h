// Lock-light span/event tracer: per-run timelines as Chrome trace-event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Design goals, in order:
//
//  1. Disabled cost ~ one branch. Every emission point first loads one
//     process-wide relaxed atomic; when tracing is off nothing else
//     happens — no clock read, no allocation, no thread-local buffer is
//     even created (bench/trace_overhead asserts this stays <2% of the
//     serving path).
//  2. Lock-light when enabled. Records land in per-thread ring buffers;
//     the only lock a recording thread ever takes is its own buffer's
//     (uncontended except while an export/clear snapshots it). There is
//     no global lock on the hot path.
//  3. Bounded memory. Each thread keeps the newest kRingCapacity records;
//     older ones are overwritten (wraparound), so a tracer left enabled
//     cannot grow without bound.
//
// Record shape is `{name, tid, t_start, t_end, args}` where `name` and
// the arg keys must be string literals (static storage duration — the
// buffer stores the pointers, not copies) and args are up to two u64
// key/value pairs (round index + frontier size, popped + wasted, ...).
//
// Emission points wired by the library: `run_scope` (whole run),
// `pool_lease` acquire+attach, every `phase_stats::record_frontier`
// round, `mq_run` worker loops, and the serve engine's queue-wait /
// coalesce / gather / flush / cache-hit points. Export surfaces:
// `ppdriver run --trace out.json` and ppserve `--trace-dir`.
//
// Control-plane calls (set_enabled / snapshot / chrome_json / clear) are
// thread-safe; timestamps are steady_clock nanoseconds relative to one
// process-wide epoch (Chrome "ts"/"dur" are microseconds).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/json.h"
#include "core/metrics.h"

namespace pp::trace {

// Per-thread ring capacity, in records. Exceeding it overwrites the
// oldest records of that thread (newest-wins wraparound).
inline constexpr size_t kRingCapacity = 8192;

struct record {
  const char* name = nullptr;  // string literal
  uint32_t tid = 0;            // tracer-assigned thread id (dense, from 1)
  int64_t t_start_ns = 0;      // steady_clock, process-epoch relative
  int64_t t_end_ns = 0;
  const char* k1 = nullptr;  // optional args: up to two u64 pairs
  uint64_t v1 = 0;
  const char* k2 = nullptr;
  uint64_t v2 = 0;
};

namespace detail {

inline int64_t now_ns() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

// One thread's ring. Owner pushes under its own (uncontended) mutex;
// the collector takes the same mutex only to snapshot or clear.
class ring_buffer {
 public:
  explicit ring_buffer(uint32_t tid) : tid_(tid) { rec_.reserve(kRingCapacity); }

  void push(record r) {
    r.tid = tid_;
    std::lock_guard<std::mutex> lk(m_);
    if (rec_.size() < kRingCapacity) {
      rec_.push_back(r);
    } else {
      rec_[next_ % kRingCapacity] = r;  // overwrite the oldest
      // Lost-history signal: a timeline exported after this wrapped is
      // missing its oldest spans (pp_trace_ring_overwrites_total in the
      // README metric catalog).
      metrics::catalog::get().trace_ring_overwrites.inc();
    }
    ++next_;
  }

  void snapshot_into(std::vector<record>& out) const {
    std::lock_guard<std::mutex> lk(m_);
    out.insert(out.end(), rec_.begin(), rec_.end());
  }

  void clear() {
    std::lock_guard<std::mutex> lk(m_);
    rec_.clear();
    next_ = 0;
  }

  uint32_t tid() const { return tid_; }

 private:
  const uint32_t tid_;
  mutable std::mutex m_;
  std::vector<record> rec_;
  size_t next_ = 0;  // total pushes; next_ % capacity = overwrite slot
};

// Process-wide registry of live thread buffers plus the records of
// threads that already exited ("retired"). Leaked on purpose: thread
// destructors may run during process teardown, after function-local
// statics would have been destroyed.
class collector {
 public:
  static collector& instance() {
    static collector* c = new collector;
    return *c;
  }

  ring_buffer* create_buffer() {
    std::lock_guard<std::mutex> lk(m_);
    auto* b = new ring_buffer(next_tid_++);
    buffers_.push_back(b);
    ++buffers_created_;
    return b;
  }

  // Thread exit: keep its records, drop the buffer.
  void retire(ring_buffer* b) {
    std::lock_guard<std::mutex> lk(m_);
    b->snapshot_into(retired_);
    for (auto it = buffers_.begin(); it != buffers_.end(); ++it) {
      if (*it == b) {
        buffers_.erase(it);
        break;
      }
    }
    delete b;
  }

  std::vector<record> snapshot() const {
    std::lock_guard<std::mutex> lk(m_);
    std::vector<record> out = retired_;
    for (const ring_buffer* b : buffers_) b->snapshot_into(out);
    return out;
  }

  void clear() {
    std::lock_guard<std::mutex> lk(m_);
    retired_.clear();
    for (ring_buffer* b : buffers_) b->clear();
  }

  size_t record_count() const { return snapshot().size(); }

  // Buffers ever created — a disabled tracer must never move this
  // (the zero-allocation guarantee tests/test_trace.cpp pins).
  uint64_t buffers_created() const {
    std::lock_guard<std::mutex> lk(m_);
    return buffers_created_;
  }

 private:
  collector() = default;
  mutable std::mutex m_;
  std::vector<ring_buffer*> buffers_;
  std::vector<record> retired_;
  uint32_t next_tid_ = 1;
  uint64_t buffers_created_ = 0;
};

inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> f{false};
  return f;
}

// Thread-local handle; retires the buffer's records into the collector
// when the thread exits.
struct buffer_handle {
  ring_buffer* b = nullptr;
  ~buffer_handle() {
    if (b != nullptr) collector::instance().retire(b);
  }
};

inline ring_buffer*& tls_buffer() {
  thread_local buffer_handle h;
  return h.b;
}

inline void emit(const record& r) {
  ring_buffer*& b = tls_buffer();
  if (b == nullptr) b = collector::instance().create_buffer();
  b->push(r);
}

}  // namespace detail

// The single enabled check every emission point pays (relaxed load).
inline bool enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

// Drop every recorded span (live buffers and retired threads).
inline void clear() { detail::collector::instance().clear(); }

// Records currently held across all threads (control-plane; snapshots).
inline size_t record_count() { return detail::collector::instance().record_count(); }

inline std::vector<record> snapshot() { return detail::collector::instance().snapshot(); }

inline uint64_t buffers_created() {
  return detail::collector::instance().buffers_created();
}

// Zero-duration event (a phase round, a cache hit): one record with
// t_start == t_end.
inline void instant(const char* name, const char* k1 = nullptr, uint64_t v1 = 0,
                    const char* k2 = nullptr, uint64_t v2 = 0) {
  if (!enabled()) return;
  record r;
  r.name = name;
  r.t_start_ns = r.t_end_ns = detail::now_ns();
  r.k1 = k1;
  r.v1 = v1;
  r.k2 = k2;
  r.v2 = v2;
  detail::emit(r);
}

// RAII span: records [construction, destruction) on the current thread.
// The enabled decision is taken once, at construction — a span that
// started disabled stays silent even if tracing flips on under it.
class span {
 public:
  explicit span(const char* name, const char* k1 = nullptr, uint64_t v1 = 0,
                const char* k2 = nullptr, uint64_t v2 = 0) {
    if (!enabled()) return;
    active_ = true;
    rec_.name = name;
    rec_.k1 = k1;
    rec_.v1 = v1;
    rec_.k2 = k2;
    rec_.v2 = v2;
    rec_.t_start_ns = detail::now_ns();
  }

  ~span() { end(); }

  // Close the span early (before scope exit); idempotent.
  void end() {
    if (!active_) return;
    active_ = false;
    rec_.t_end_ns = detail::now_ns();
    detail::emit(rec_);
  }

  // Set/replace the args late, once their values exist (e.g. a worker
  // loop's final popped/wasted counts).
  void args(const char* k1, uint64_t v1, const char* k2 = nullptr, uint64_t v2 = 0) {
    if (!active_) return;
    rec_.k1 = k1;
    rec_.v1 = v1;
    rec_.k2 = k2;
    rec_.v2 = v2;
  }

  span(const span&) = delete;
  span& operator=(const span&) = delete;

 private:
  record rec_{};
  bool active_ = false;
};

// Current records as Chrome trace-event JSON ("X" complete events, ts/dur
// in microseconds) — the format Perfetto and chrome://tracing load.
inline std::string chrome_json() {
  std::vector<record> recs = snapshot();
  json::writer w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const record& r : recs) {
    w.begin_object();
    w.member("name", r.name);
    w.member("cat", "pp");
    w.member("ph", "X");
    w.member("ts", static_cast<double>(r.t_start_ns) / 1000.0);
    w.member("dur", static_cast<double>(r.t_end_ns - r.t_start_ns) / 1000.0);
    w.member("pid", int64_t{1});
    w.member("tid", static_cast<uint64_t>(r.tid));
    if (r.k1 != nullptr || r.k2 != nullptr) {
      w.key("args").begin_object();
      if (r.k1 != nullptr) w.member(r.k1, r.v1);
      if (r.k2 != nullptr) w.member(r.k2, r.v2);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.member("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

// Write chrome_json() to `path`; false (with errno intact) on I/O failure.
inline bool write_chrome_json(const std::string& path) {
  std::string body = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t n = std::fwrite(body.data(), 1, body.size(), f);
  bool ok = (n == body.size());
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

}  // namespace pp::trace

namespace pp {
// The name the emission points use (ISSUE/README spelling).
using trace_span = trace::span;
}  // namespace pp
