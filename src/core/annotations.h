// Clang thread-safety annotations + capability-annotated lock types.
//
// The repo's concurrency invariants — which mutex guards which member, and
// which functions must be entered with a lock held — used to live in
// comments (the pool-lease protocol in parallel/scheduler.h, the admission
// deques in serve/engine.h, the context slot in core/context.h). This
// header turns them into machine-checked facts: Clang's -Wthread-safety
// static analysis proves, at compile time and over ALL interleavings, that
// every access to a PP_GUARDED_BY member happens under its mutex — TSan
// only sees the interleavings a test happens to hit.
//
// Two parts:
//
//  * The PP_* attribute macros. They expand to clang's thread-safety
//    attributes under clang and to nothing elsewhere, so gcc builds are
//    bit-identical to before. The analysis itself runs only when
//    -Wthread-safety is passed (CMake: -DPP_THREAD_SAFETY=ON, which also
//    promotes the warnings to errors).
//
//  * pp::sync — drop-in lock types. The analysis is attribute-driven:
//    libstdc++'s std::mutex / std::lock_guard carry no attributes, so a
//    lock taken through them is invisible to the checker. pp::sync::mutex,
//    shared_mutex, lock_guard, unique_lock, and shared_lock are zero-cost
//    inline wrappers over the std types with the capability attributes
//    attached. Condition variables keep working: unique_lock is a
//    BasicLockable, so std::condition_variable_any waits on it directly.
//    Predicate lambdas passed to wait(lk, pred) are analyzed as separate
//    functions that do NOT know the lock is held — write the wait loop
//    out (`while (!pred) cv.wait(lk);`) so guarded reads stay inside the
//    annotated scope.
//
// Annotation discipline used across the repo:
//   * every mutex-protected member:            PP_GUARDED_BY(m_)
//   * every must-hold-to-call helper:          PP_REQUIRES(m_)
//   * lock-wrapper methods:                    PP_ACQUIRE / PP_RELEASE /
//                                              PP_TRY_ACQUIRE
//   * lock expressions use a local reference (`deque_slot& s = *deques_[i];
//     lock_guard lk(s.m); s.q...`) so the checker can match the lock
//     expression to the guard expression syntactically.
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define PP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PP_THREAD_ANNOTATION(x)  // no-op: gcc/msvc have no -Wthread-safety
#endif

// A type that is a lockable capability ("mutex" in diagnostics).
#define PP_CAPABILITY(x) PP_THREAD_ANNOTATION(capability(x))
// An RAII type that acquires a capability at construction and releases it
// at destruction (lock_guard / unique_lock below).
#define PP_SCOPED_CAPABILITY PP_THREAD_ANNOTATION(scoped_lockable)
// Data member readable/writable only with the named capability held.
#define PP_GUARDED_BY(x) PP_THREAD_ANNOTATION(guarded_by(x))
// Pointer member whose *pointee* is protected by the named capability.
#define PP_PT_GUARDED_BY(x) PP_THREAD_ANNOTATION(pt_guarded_by(x))
// Function that must be called with the capability held (and not released).
#define PP_REQUIRES(...) PP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PP_REQUIRES_SHARED(...) \
  PP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// Function that acquires / releases the capability (no argument on a
// member of the capability type itself: the capability is *this).
#define PP_ACQUIRE(...) PP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PP_ACQUIRE_SHARED(...) PP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PP_RELEASE(...) PP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PP_RELEASE_SHARED(...) PP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
// Function that acquires the capability iff it returns the given value.
#define PP_TRY_ACQUIRE(...) PP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Function that must NOT be called with the capability held (deadlock
// guard for lock-then-call-self shapes).
#define PP_EXCLUDES(...) PP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Escape hatch; use only with a comment explaining why the analysis is
// wrong, never to silence a finding that might be real.
#define PP_NO_THREAD_SAFETY_ANALYSIS PP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pp::sync {

// Exclusive mutex with capability attributes. Same layout and cost as the
// std::mutex it wraps.
class PP_CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() PP_ACQUIRE() { m_.lock(); }
  void unlock() PP_RELEASE() { m_.unlock(); }
  bool try_lock() PP_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

// Reader-writer mutex with capability attributes (the context slot).
class PP_CAPABILITY("shared_mutex") shared_mutex {
 public:
  shared_mutex() = default;
  shared_mutex(const shared_mutex&) = delete;
  shared_mutex& operator=(const shared_mutex&) = delete;

  void lock() PP_ACQUIRE() { m_.lock(); }
  void unlock() PP_RELEASE() { m_.unlock(); }
  bool try_lock() PP_TRY_ACQUIRE(true) { return m_.try_lock(); }
  void lock_shared() PP_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() PP_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

// std::lock_guard counterpart: exclusive lock for one scope.
template <typename M>
class PP_SCOPED_CAPABILITY lock_guard {
 public:
  explicit lock_guard(M& m) PP_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~lock_guard() PP_RELEASE() { m_.unlock(); }

  lock_guard(const lock_guard&) = delete;
  lock_guard& operator=(const lock_guard&) = delete;

 private:
  M& m_;
};

// std::unique_lock counterpart: relockable scoped lock, BasicLockable, so
// std::condition_variable_any can wait on it. The analysis tracks the
// held/released state through lock()/unlock(); the destructor releases iff
// still held (a wait() leaves the lock held, so the common path never
// branches differently from std::unique_lock).
template <typename M>
class PP_SCOPED_CAPABILITY unique_lock {
 public:
  explicit unique_lock(M& m) PP_ACQUIRE(m) : m_(m), owns_(true) { m_.lock(); }
  ~unique_lock() PP_RELEASE() {
    if (owns_) m_.unlock();
  }

  void lock() PP_ACQUIRE() {
    m_.lock();
    owns_ = true;
  }
  void unlock() PP_RELEASE() {
    m_.unlock();
    owns_ = false;
  }
  bool owns_lock() const { return owns_; }

  unique_lock(const unique_lock&) = delete;
  unique_lock& operator=(const unique_lock&) = delete;

 private:
  M& m_;
  bool owns_;
};

// std::shared_lock counterpart over sync::shared_mutex.
template <typename M>
class PP_SCOPED_CAPABILITY shared_lock {
 public:
  explicit shared_lock(M& m) PP_ACQUIRE_SHARED(m) : m_(m) { m_.lock_shared(); }
  ~shared_lock() PP_RELEASE() { m_.unlock_shared(); }

  shared_lock(const shared_lock&) = delete;
  shared_lock& operator=(const shared_lock&) = delete;

 private:
  M& m_;
};

}  // namespace pp::sync
