// The Type-2 wake-up engine for dominance dynamic programs — the paper's
// Algorithm 3, generalized so that both LIS (Sec. 5.2) and Whac-A-Mole
// (Appendix B) are instances of it.
//
// Problem shape: objects 0..n-1 in sequential order; object i depends on
// exactly the objects in its *dominated set*
//     P(i) = { j : j < qx(i), yrank(j) < yrank(i) },
// and its DP value is dp(i) = w(i) + max(0, max_{j in P(i)} dp(j)).
// For LIS, qx(i) = i and yrank is the value rank (rank(x) = LIS length
// ending at x). For Whac-A-Mole, objects are sorted by t+p, qx(i) excludes
// ties in t+p, and yrank ranks t-p.
//
// The engine runs the paper's wake-up strategy verbatim:
//   * every object initially gets one readiness check (the role of the
//     virtual point p[0]);
//   * an object that is not ready picks an unfinished object of P(i) as its
//     pivot (policy: uniformly random, or the rightmost heuristic of
//     Sec. 6.4) and goes to sleep in the pivot multi-map;
//   * when a frontier finishes, the objects pivoted on it are rechecked;
//   * readiness, DP values and pivot candidates all come from one O(log^2 n)
//     query on the augmented 2D range tree.
//
// Work O(n log^3 n) whp, span O(rank * log^2 n) whp (Theorem 5.6); the
// number of wake-up attempts per object is O(log n) whp (Lemma 5.5) and is
// reported in the returned statistics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/context.h"
#include "core/stats.h"
#include "pabst/multimap.h"
#include "parallel/primitives.h"
#include "parallel/random.h"
#include "rangetree/policies.h"
#include "rangetree/range_tree2d.h"

namespace pp {
// pivot_policy lives in core/context.h so that a context can carry it.

struct dominance_result {
  std::vector<int32_t> dp;  // dp value per object
  int64_t best = 0;         // max dp (0 for empty input)
  phase_stats stats;
};

namespace detail {

template <typename Agg>
dominance_result dominance_dp_impl(std::span<const uint32_t> y_ranks,
                                   std::span<const uint32_t> qx,
                                   std::span<const int32_t> weights, uint64_t seed) {
  const uint32_t n = static_cast<uint32_t>(y_ranks.size());
  dominance_result res;
  res.dp.assign(n, 0);
  if (n == 0) return res;

  range_tree2d<Agg> tree(
      y_ranks, [](uint32_t id) { return Agg::unfinished_leaf(id); }, seed);
  pivot_multimap<uint32_t, uint32_t> pivots;
  random_stream rs(hash64(seed ^ 0x5eedull));

  // Round 0 plays the role of the virtual point 0: attempt to wake
  // everyone once. Rank-1 objects succeed; the rest register a pivot.
  std::vector<uint32_t> todo = tabulate<uint32_t>(n, [](size_t i) { return static_cast<uint32_t>(i); });

  std::vector<uint8_t> ready_flag(n);
  std::vector<uint32_t> new_pivot(n);
  size_t round = 0;
  while (!todo.empty()) {
    cancel_point();  // between wake-up rounds: quiescent, cancellable
    ++round;
    res.stats.wakeup_attempts += todo.size();
    // Attempt to wake every object in the todo list (Lines 28-33).
    parallel_for(0, todo.size(), [&](size_t k) {
      uint32_t q = todo[k];
      auto v = tree.query_prefix(qx[q], y_ranks[q], rs.ith(round * n + q));
      if (!Agg::has_unfinished(v)) {
        int32_t base = Agg::dp_of(v);
        if (base == kDomNegInf) base = 0;  // empty dominated set
        if (base < 0) base = 0;
        res.dp[q] = (weights.empty() ? 1 : weights[q]) + base;
        ready_flag[q] = 1;
      } else {
        ready_flag[q] = 0;
        new_pivot[q] = Agg::cand_of(v);
      }
    });
    auto frontier = pack(std::span<const uint32_t>(todo),
                         [&](size_t k) { return ready_flag[todo[k]] != 0; });
    auto blocked = pack(std::span<const uint32_t>(todo),
                        [&](size_t k) { return ready_flag[todo[k]] == 0; });
    res.stats.record_frontier(frontier.size());

    // Register new pivots for the still-blocked objects (Lines 35-36).
    if (!blocked.empty()) {
      std::vector<pivot_multimap<uint32_t, uint32_t>::pair_t> pairs(blocked.size());
      parallel_for(0, blocked.size(), [&](size_t k) {
        pairs[k] = {new_pivot[blocked[k]], blocked[k]};
      });
      pivots.multi_insert(std::move(pairs));
    }

    // Publish the frontier's dp values in the range tree (Line 37).
    if (!frontier.empty()) {
      auto vals = tabulate<typename Agg::value_type>(frontier.size(), [&](size_t k) {
        return Agg::finished_leaf(frontier[k], res.dp[frontier[k]]);
      });
      tree.batch_update(frontier, vals, rs.ith(round));
      // Wake the objects pivoted on the finished frontier (Line 27).
      sort_inplace(std::span<uint32_t>(frontier));
      todo = pivots.extract_buckets(frontier);
    } else {
      todo.clear();
    }
  }

  int64_t best = 0;
  for (uint32_t i = 0; i < n; ++i) best = std::max<int64_t>(best, res.dp[i]);
  res.best = best;
  return res;
}

}  // namespace detail

// Solve the dominance DP. `weights` may be empty (unit weights). `qx[i]`
// is the exclusive x-bound of object i's dominated set (for plain LIS pass
// qx[i] = i). Policy and seed are required — pass ctx.pivot/ctx.seed (or
// use the context overload below) so no run picks up a hidden default.
inline dominance_result dominance_dp(std::span<const uint32_t> y_ranks,
                                     std::span<const uint32_t> qx,
                                     std::span<const int32_t> weights,
                                     pivot_policy policy, uint64_t seed) {
  if (policy == pivot_policy::uniform_random)
    return detail::dominance_dp_impl<dom_agg_random>(y_ranks, qx, weights, seed);
  return detail::dominance_dp_impl<dom_agg_rightmost>(y_ranks, qx, weights, seed);
}

// Context form: pivot policy and seed come from ctx, and the whole solve
// runs under it.
inline dominance_result dominance_dp(std::span<const uint32_t> y_ranks,
                                     std::span<const uint32_t> qx,
                                     std::span<const int32_t> weights, const context& ctx) {
  run_scope scope(ctx);
  return dominance_dp(y_ranks, qx, weights, ctx.pivot, ctx.seed);
}

}  // namespace pp
