// Minimal JSON writer — no external dependencies.
//
// The machine-readable result envelopes (`pp::to_json` over run_result /
// batch_result in core/registry.h, and ppdriver's --json output) are built
// on this. The writer emits RFC 8259 JSON: objects/arrays with automatic
// comma placement, full string escaping, and doubles via %.17g (shortest
// round-trip is not required; 17 significant digits always round-trips).
// Non-finite doubles have no JSON spelling and are emitted as null.
//
//   pp::json::writer w;
//   w.begin_object();
//   w.member("solver", "lis/parallel").member("seconds", 0.123);
//   w.key("items").begin_array().value(int64_t{1}).value(int64_t{2}).end_array();
//   w.end_object();
//   puts(w.str().c_str());
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace pp::json {

class writer {
 public:
  writer& begin_object() {
    open('{');
    return *this;
  }
  writer& end_object() {
    close('}');
    return *this;
  }
  writer& begin_array() {
    open('[');
    return *this;
  }
  writer& end_array() {
    close(']');
    return *this;
  }

  // Object key; must be followed by exactly one value / begin_*.
  writer& key(std::string_view k) {
    separate();
    append_string(k);
    out_ += ": ";
    pending_key_ = true;
    return *this;
  }

  writer& value(std::string_view s) {
    separate();
    append_string(s);
    return *this;
  }
  writer& value(const char* s) { return value(std::string_view(s)); }
  writer& value(bool b) {
    separate();
    out_ += b ? "true" : "false";
    return *this;
  }
  writer& value(int64_t v) {
    separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
    return *this;
  }
  writer& value(uint64_t v) {
    separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
  }
  writer& value(double v) {
    separate();
    if (!std::isfinite(v)) {
      out_ += "null";
      return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
  }

  template <typename V>
  writer& member(std::string_view k, V v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void open(char c) {
    separate();
    out_ += c;
    need_comma_.push_back(false);
  }
  void close(char c) {
    if (!need_comma_.empty()) need_comma_.pop_back();
    out_ += c;
    if (!need_comma_.empty()) need_comma_.back() = true;
  }
  // Comma before the next element of the enclosing aggregate — unless this
  // value completes a `key:` pair (the comma was placed before the key).
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!need_comma_.empty()) {
      if (need_comma_.back()) out_ += ", ";
      need_comma_.back() = true;
    }
  }
  void append_string(std::string_view s) {
    out_ += '"';
    for (unsigned char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\b': out_ += "\\b"; break;
        case '\f': out_ += "\\f"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += static_cast<char>(c);
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> need_comma_;
  bool pending_key_ = false;
};

}  // namespace pp::json
