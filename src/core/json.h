// Minimal JSON writer and reader — no external dependencies.
//
// The machine-readable result envelopes (`pp::to_json` over run_result /
// batch_result in core/registry.h, and ppdriver's --json output) are built
// on the writer. The writer emits RFC 8259 JSON: objects/arrays with
// automatic comma placement, full string escaping, and doubles via %.17g
// (shortest round-trip is not required; 17 significant digits always
// round-trips). Non-finite doubles have no JSON spelling and are emitted
// as null.
//
// The reader (json::value + json::parse below) is the counterpart the
// ppserve daemon uses to decode newline-delimited request lines: a small
// recursive-descent RFC 8259 parser into a value variant. Integral number
// tokens that fit int64 are kept exact (seeds are 64-bit); everything else
// becomes double. \uXXXX escapes decode to UTF-8, including surrogate
// pairs; raw UTF-8 in strings passes through untouched.
//
//   pp::json::writer w;
//   w.begin_object();
//   w.member("solver", "lis/parallel").member("seconds", 0.123);
//   w.key("items").begin_array().value(int64_t{1}).value(int64_t{2}).end_array();
//   w.end_object();
//   puts(w.str().c_str());
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace pp::json {

class writer {
 public:
  writer& begin_object() {
    open('{');
    return *this;
  }
  writer& end_object() {
    close('}');
    return *this;
  }
  writer& begin_array() {
    open('[');
    return *this;
  }
  writer& end_array() {
    close(']');
    return *this;
  }

  // Object key; must be followed by exactly one value / begin_*.
  writer& key(std::string_view k) {
    separate();
    append_string(k);
    out_ += ": ";
    pending_key_ = true;
    return *this;
  }

  writer& value(std::string_view s) {
    separate();
    append_string(s);
    return *this;
  }
  writer& value(const char* s) { return value(std::string_view(s)); }
  writer& value(bool b) {
    separate();
    out_ += b ? "true" : "false";
    return *this;
  }
  writer& value(int64_t v) {
    separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
    return *this;
  }
  writer& value(uint64_t v) {
    separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
  }
  writer& value(double v) {
    separate();
    if (!std::isfinite(v)) {
      out_ += "null";
      return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
  }

  // Splice pre-serialized JSON in as one value (e.g. a nested envelope
  // another writer produced). The caller vouches that `json_text` is a
  // complete, valid JSON value.
  writer& value_raw(std::string_view json_text) {
    separate();
    out_ += json_text;
    return *this;
  }

  template <typename V>
  writer& member(std::string_view k, V v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void open(char c) {
    separate();
    out_ += c;
    need_comma_.push_back(false);
  }
  void close(char c) {
    if (!need_comma_.empty()) need_comma_.pop_back();
    out_ += c;
    if (!need_comma_.empty()) need_comma_.back() = true;
  }
  // Comma before the next element of the enclosing aggregate — unless this
  // value completes a `key:` pair (the comma was placed before the key).
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!need_comma_.empty()) {
      if (need_comma_.back()) out_ += ", ";
      need_comma_.back() = true;
    }
  }
  void append_string(std::string_view s) {
    out_ += '"';
    for (unsigned char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\b': out_ += "\\b"; break;
        case '\f': out_ += "\\f"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += static_cast<char>(c);
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> need_comma_;
  bool pending_key_ = false;
};

// ---- Reader -----------------------------------------------------------------

// A parsed JSON document. Objects keep member order (vector of pairs, not a
// map) and lookup is linear — request lines have a handful of keys.
class value {
 public:
  using array = std::vector<value>;
  using object = std::vector<std::pair<std::string, value>>;
  // Integral tokens keep an exact alternative: int64 normally, uint64 for
  // values in [2^63, 2^64) — the top half of the seed space, which a
  // double would silently round.
  using storage = std::variant<std::nullptr_t, bool, int64_t, uint64_t, double, std::string,
                               array, object>;

  value() : v_(nullptr) {}
  explicit value(storage v) : v_(std::move(v)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const {
    return std::holds_alternative<int64_t>(v_) || std::holds_alternative<uint64_t>(v_) ||
           std::holds_alternative<double>(v_);
  }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<array>(v_); }
  bool is_object() const { return std::holds_alternative<object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_double() const {
    if (const int64_t* i = std::get_if<int64_t>(&v_)) return static_cast<double>(*i);
    if (const uint64_t* u = std::get_if<uint64_t>(&v_)) return static_cast<double>(*u);
    return std::get<double>(v_);
  }
  int64_t as_int64() const {
    if (const int64_t* i = std::get_if<int64_t>(&v_)) return *i;
    if (const uint64_t* u = std::get_if<uint64_t>(&v_)) {
      return *u > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())
                 ? std::numeric_limits<int64_t>::max()
                 : static_cast<int64_t>(*u);
    }
    // Clamp instead of static_cast: converting an out-of-range double to
    // int64 is undefined behavior, and any daemon request line can carry
    // {"n": 1e300}. 2^63 itself is not representable, so clamp against
    // the largest double strictly below it.
    double d = std::get<double>(v_);
    if (std::isnan(d)) return 0;
    constexpr double kMax = 9223372036854774784.0;  // largest double < 2^63
    constexpr double kMin = -9223372036854775808.0;  // -2^63, exactly representable
    if (d >= kMax) return static_cast<int64_t>(kMax);
    if (d <= kMin) return std::numeric_limits<int64_t>::min();
    return static_cast<int64_t>(d);
  }
  uint64_t as_uint64() const {
    if (const uint64_t* u = std::get_if<uint64_t>(&v_)) return *u;
    if (const int64_t* i = std::get_if<int64_t>(&v_))
      return *i < 0 ? 0 : static_cast<uint64_t>(*i);
    double d = std::get<double>(v_);
    if (std::isnan(d) || d <= 0.0) return 0;
    constexpr double kMax = 18446744073709549568.0;  // largest double < 2^64
    if (d >= kMax) return static_cast<uint64_t>(kMax);
    return static_cast<uint64_t>(d);
  }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const array& as_array() const { return std::get<array>(v_); }
  const object& as_object() const { return std::get<object>(v_); }

  // Object member lookup: the value under `key`, or nullptr when this is
  // not an object or has no such member.
  const value* find(std::string_view key) const {
    const object* o = std::get_if<object>(&v_);
    if (o == nullptr) return nullptr;
    for (const auto& [k, v] : *o)
      if (k == key) return &v;
    return nullptr;
  }

  storage& raw() { return v_; }
  const storage& raw() const { return v_; }

 private:
  storage v_;
};

namespace detail {

struct parser {
  const char* p;
  const char* end;
  std::string err;

  bool fail(const std::string& what) {
    if (err.empty())
      err = what + " at offset " + std::to_string(static_cast<size_t>(p - begin));
    return false;
  }
  const char* begin;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }
  bool consume(char c) {
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool literal(const char* lit) {
    const char* q = lit;
    const char* save = p;
    while (*q != '\0') {
      if (p >= end || *p != *q) {
        p = save;
        return false;
      }
      ++p;
      ++q;
    }
    return true;
  }

  static void append_utf8(std::string& s, uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xc0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xe0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      s += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      s += static_cast<char>(0xf0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      s += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  bool hex4(uint32_t& out) {
    if (end - p < 4) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = *p++;
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<uint32_t>(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    while (p < end) {
      unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        ++p;
        if (p >= end) return fail("truncated escape");
        char e = *p++;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            uint32_t cp;
            if (!hex4(cp)) return false;
            if (cp >= 0xd800 && cp <= 0xdbff) {  // high surrogate: need the pair
              if (end - p < 6 || p[0] != '\\' || p[1] != 'u')
                return fail("unpaired surrogate in \\u escape");
              p += 2;
              uint32_t lo;
              if (!hex4(lo)) return false;
              if (lo < 0xdc00 || lo > 0xdfff) return fail("bad low surrogate in \\u escape");
              cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
            } else if (cp >= 0xdc00 && cp <= 0xdfff) {
              return fail("unpaired surrogate in \\u escape");
            }
            append_utf8(out, cp);
            break;
          }
          default: return fail("unknown escape");
        }
      } else if (c < 0x20) {
        return fail("raw control character in string");
      } else {
        out += static_cast<char>(c);  // UTF-8 passthrough
        ++p;
      }
    }
    return fail("unterminated string");
  }

  // RFC 8259 number grammar, enforced here rather than delegated to
  // strtod (which would also accept "01", "1.", ".5", ...):
  //   -? (0 | [1-9][0-9]*) ('.' [0-9]+)? ([eE] [+-]? [0-9]+)?
  bool parse_number(value& out) {
    const char* start = p;
    consume('-');
    size_t int_digits = 0;
    while (p < end && *p >= '0' && *p <= '9') {
      ++p;
      ++int_digits;
    }
    if (int_digits == 0) return fail("bad number");
    if (int_digits > 1 && start[*start == '-' ? 1 : 0] == '0')
      return fail("bad number (leading zero)");
    bool integral = true;
    if (consume('.')) {
      integral = false;
      size_t frac_digits = 0;
      while (p < end && *p >= '0' && *p <= '9') {
        ++p;
        ++frac_digits;
      }
      if (frac_digits == 0) return fail("bad number (no digits after '.')");
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      integral = false;
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      size_t exp_digits = 0;
      while (p < end && *p >= '0' && *p <= '9') {
        ++p;
        ++exp_digits;
      }
      if (exp_digits == 0) return fail("bad number (no exponent digits)");
    }
    std::string tok(start, static_cast<size_t>(p - start));
    errno = 0;
    if (integral) {
      char* tail = nullptr;
      long long ll = std::strtoll(tok.c_str(), &tail, 10);
      if (errno == 0 && tail != nullptr && *tail == '\0') {
        out = value(value::storage(static_cast<int64_t>(ll)));
        return true;
      }
      if (*start != '-') {
        // [2^63, 2^64): the top half of the 64-bit seed space — keep it
        // exact instead of rounding through double.
        errno = 0;
        tail = nullptr;
        unsigned long long ull = std::strtoull(tok.c_str(), &tail, 10);
        if (errno == 0 && tail != nullptr && *tail == '\0') {
          out = value(value::storage(static_cast<uint64_t>(ull)));
          return true;
        }
      }
      errno = 0;  // out of uint64 range too: fall through to double
    }
    char* tail = nullptr;
    double d = std::strtod(tok.c_str(), &tail);
    if (tail == nullptr || *tail != '\0') return fail("bad number");
    out = value(value::storage(d));
    return true;
  }

  bool parse_value(value& out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    char c = *p;
    if (c == 'n') return literal("null") ? (out = value(), true) : fail("bad literal");
    if (c == 't') return literal("true") ? (out = value(value::storage(true)), true)
                                         : fail("bad literal");
    if (c == 'f') return literal("false") ? (out = value(value::storage(false)), true)
                                          : fail("bad literal");
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = value(value::storage(std::move(s)));
      return true;
    }
    if (c == '[') {
      ++p;
      value::array arr;
      skip_ws();
      if (consume(']')) {
        out = value(value::storage(std::move(arr)));
        return true;
      }
      for (;;) {
        value v;
        if (!parse_value(v, depth + 1)) return false;
        arr.push_back(std::move(v));
        skip_ws();
        if (consume(']')) break;
        if (!consume(',')) return fail("expected ',' or ']'");
      }
      out = value(value::storage(std::move(arr)));
      return true;
    }
    if (c == '{') {
      ++p;
      value::object obj;
      skip_ws();
      if (consume('}')) {
        out = value(value::storage(std::move(obj)));
        return true;
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        value v;
        if (!parse_value(v, depth + 1)) return false;
        obj.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (consume('}')) break;
        if (!consume(',')) return fail("expected ',' or '}'");
      }
      out = value(value::storage(std::move(obj)));
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    return fail("unexpected character");
  }
};

}  // namespace detail

// Parse one JSON document (leading/trailing whitespace allowed, anything
// else after the document is an error). Returns false and fills *err (when
// given) on malformed input.
inline bool parse(std::string_view text, value& out, std::string* err = nullptr) {
  detail::parser ps{text.data(), text.data() + text.size(), {}, text.data()};
  if (!ps.parse_value(out, 0)) {
    if (err != nullptr) *err = ps.err;
    return false;
  }
  ps.skip_ws();
  if (ps.p != ps.end) {
    if (err != nullptr) *err = "trailing characters after JSON document";
    return false;
  }
  return true;
}

}  // namespace pp::json
