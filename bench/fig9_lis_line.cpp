// Fig. 9 + Table 2 (bottom): LIS on the *line* pattern — a_i = t*i + noise;
// the slope/noise ratio controls the LIS size.
//
// Paper setup: n = 1e8; same columns as the segment pattern; wake-ups up to
// ~8.4 (the line pattern defeats the rightmost heuristic more often).
#include <cmath>

#include "lis_bench.h"

namespace {
// Choose line parameters for an expected LIS of ~target ("changing the
// slope t and the distribution of b", Sec. 6.4). Targets below ~2*sqrt(n)
// need quantized noise (q distinct levels bound the LIS by ~q); larger
// targets use the slope: with t*n = m*R the sequence decomposes into ~m
// value-separated windows and LIS ~ 2*sqrt(m*n).
std::vector<int64_t> line_for_target(size_t n, size_t target) {
  constexpr int64_t R = 4'000'000;
  double sq = 2.0 * std::sqrt(static_cast<double>(n));
  if (static_cast<double>(target) < 0.6 * sq) {
    // q-level quantized noise, zero slope: LIS == q whp
    int64_t q = static_cast<int64_t>(target);
    auto raw = pp::lis_line_pattern(n, 0, R, 23);
    for (auto& x : raw) x = (x * q / R) * (R / q);
    return raw;
  }
  double m = std::max(0.0, static_cast<double>(target) * target / (4.0 * n) - 1.0);
  int64_t slope = static_cast<int64_t>(m * R / static_cast<double>(n));
  return pp::lis_line_pattern(n, slope, R, 23);
}
}  // namespace

int main() {
  bench::banner("LIS, line pattern: Table-2 columns vs output size",
                "Fig. 9 + Table 2, Sec. 6.4");
  size_t n = bench::scaled(500'000);
  bench::lis_table("line", line_for_target, n, {3, 10, 30, 100, 300, 1000, 3000});
  return 0;
}
