// Fig. 10: the LIS input data patterns. Emits CSV samples of the segment
// and line patterns (the four panels of the figure) so they can be
// plotted, plus their measured LIS sizes.
#include <cstdio>

#include "algos/lis.h"
#include "bench_common.h"

namespace {

void emit(const char* name, const std::vector<int64_t>& a, size_t points) {
  auto len = pp::lis_sequential(a).length;
  std::printf("\n# pattern=%s n=%zu lis=%lld (sampled to %zu points)\n", name, a.size(),
              (long long)len, points);
  std::printf("i,a_i\n");
  size_t stride = std::max<size_t>(1, a.size() / points);
  for (size_t i = 0; i < a.size(); i += stride)
    std::printf("%zu,%lld\n", i, (long long)a[i]);
}

}  // namespace

int main() {
  bench::banner("LIS input patterns (CSV samples)", "Fig. 10, Sec. 6.4");
  size_t n = bench::scaled(100'000);
  emit("segment-k10", pp::lis_segment_pattern(n, 10, 1), 40);
  emit("segment-k300", pp::lis_segment_pattern(n, 300, 2), 40);
  emit("line-shallow", pp::lis_line_pattern(n, 10, 4'000'000, 3), 40);
  emit("line-steep", pp::lis_line_pattern(n, 40, 4'000'000, 4), 40);
  return 0;
}
