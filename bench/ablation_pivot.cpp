// Ablation: uniformly-random pivots (Algorithm 3 as analyzed) vs the
// rightmost-unfinished heuristic (what the paper's implementation uses,
// Sec. 6.4). The heuristic cuts wake-up attempts — especially on the
// segment pattern, where the rightmost unfinished point is almost always
// the last blocker.
#include <cstdio>

#include "algos/lis.h"
#include "bench_common.h"

int main() {
  bench::banner("Ablation: LIS pivot policy (random vs rightmost)", "Sec. 6.4 heuristic");
  size_t n = bench::scaled(300'000);
  std::printf("%-10s %8s | %12s %12s | %12s %12s\n", "pattern", "output", "rand-wakeup",
              "right-wakeup", "rand(s)", "right(s)");
  struct Case {
    const char* name;
    std::vector<int64_t> a;
  } cases[] = {
      {"segment", pp::lis_segment_pattern(n, 100, 3)},
      {"segment", pp::lis_segment_pattern(n, 1000, 4)},
      {"line", pp::lis_line_pattern(n, 8, 4'000'000, 5)},
      {"line", pp::lis_line_pattern(n, 40, 4'000'000, 6)},
  };
  for (auto& c : cases) {
    pp::lis_result rnd, rgt;
    double trnd = bench::time_s([&] { rnd = pp::lis_parallel(c.a, pp::pivot_policy::uniform_random, 9); });
    double trgt = bench::time_s([&] { rgt = pp::lis_parallel(c.a, pp::pivot_policy::rightmost, 9); });
    if (rnd.length != rgt.length) {
      std::printf("MISMATCH!\n");
      return 1;
    }
    std::printf("%-10s %8lld | %12.2f %12.2f | %12.3f %12.3f\n", c.name, (long long)rgt.length,
                rnd.stats.avg_wakeups(), rgt.stats.avg_wakeups(), trnd, trgt);
  }
  std::printf("\nShape check: the rightmost heuristic needs fewer wake-ups than uniform\n"
              "random pivots (paper reports <= 8.4 avg on line, <= 3.9 on segment).\n");
  return 0;
}
