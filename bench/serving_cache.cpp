// serving_cache: result-cache hit rate and lease amortization under
// repeat traffic, cache ON vs OFF.
//
// The content-addressing question for the serving engine (src/serve/):
// serving traffic repeats — the same (solver, input, seed) triple arrives
// again and again — and every run is deterministic in that triple, so a
// repeat answered from the result cache is bit-identical to a re-execution
// at zero pool leases. This bench measures that amortization: one
// closed-loop client cycles R requests over D distinct inputs (D = the
// working-set size), cache on vs off, and reports hits, misses, pool
// leases (pool_cache::acquires delta — the honest "work actually executed"
// metric, as in the batching benches), and a score checksum proving cached
// envelopes carry the same answers the executions produced.
//
// The client is strictly sequential (submit, wait, repeat), so every
// counter is exact and deterministic: with the cache on, exactly D
// requests execute (leases == batches == D) and R-D are answered from the
// LRU; off, all R execute. The checksum is identical in both modes — the
// cache changes cost, never answers.
//
// Output: a human table, or with --json a single JSON envelope on stdout
// whose deterministic_top / deterministic_row lists tell the generic
// checker (tools/bench_baseline_check.py) which fields the committed
// baseline BENCH_serving_cache.json locks in CI (hits/misses/leases/
// checksum — NOT wall-clock). Regenerate it with
// `bench/serving_cache --json > BENCH_serving_cache.json` after an
// intentional change.
//
// Env: REPRO_SCALE scales the input size, PP_SEED the base seed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "core/json.h"
#include "core/registry.h"
#include "parallel/scheduler.h"
#include "serve/engine.h"

namespace {

constexpr const char* kSolver = "lis/parallel";
constexpr size_t kRequests = 48;
constexpr size_t kDistinct[] = {1, 4, 16};  // working-set sizes (divide kRequests)

struct cache_result {
  bool cache_on = false;
  size_t distinct = 0;
  uint64_t leases = 0;            // pool_cache::acquires delta across the run
  uint64_t cached_responses = 0;  // responses delivered with response::cached
  long long checksum = 0;         // sum of per-response scores
  double wall_s = 0.0;
  pp::serve::engine_stats stats;
};

cache_result run_mode(bool cache_on, size_t distinct, size_t n, const pp::context& base) {
  pp::serve::engine_options opt;
  opt.max_inflight_runs = 1;  // one executor: leases == batches, exactly
  opt.workers_per_run = 2;
  // Coalescing off: a sequential client never has two requests in flight,
  // so a batch window would only add idle waiting to every miss.
  opt.batch_window = std::chrono::microseconds{0};
  opt.max_batch = 1;
  opt.queue_capacity = 64;
  opt.cache_entries = cache_on ? 256 : 0;
  opt.ctx = base;
  pp::serve::engine eng(opt);

  auto& reg = pp::registry::instance();
  std::vector<pp::problem_input> inputs;
  std::vector<uint64_t> seeds;
  for (size_t d = 0; d < distinct; ++d) {
    seeds.push_back(base.seed + 100 + d);
    inputs.push_back(reg.make_input("lis", n, seeds.back()));
  }

  auto& pool = pp::detail::pool_cache::instance();
  const uint64_t leases0 = pool.acquires();

  cache_result out;
  out.cache_on = cache_on;
  out.distinct = distinct;
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kRequests; ++i) {
    size_t d = i % distinct;
    pp::serve::request req;
    req.solver = kSolver;
    req.input = inputs[d];
    req.seed = seeds[d];  // a repeat is the identical (solver, fingerprint, seed)
    pp::serve::response r = eng.submit(std::move(req)).get();
    if (!r.ok()) {
      std::fprintf(stderr, "serving_cache: request %zu failed: %s\n", i, r.error.c_str());
      std::exit(1);
    }
    out.checksum += static_cast<long long>(pp::score_of(r.result.value));
    if (r.cached) ++out.cached_responses;
  }
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.leases = pool.acquires() - leases0;  // futures resolved => all flushes done
  out.stats = eng.stats();
  eng.stop(/*drain=*/false);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = bench::has_flag(argc, argv, "--json");
  pp::context ctx = bench::env_context().with_backend(pp::backend_kind::native);
  const size_t n = bench::scaled(2'000);

  if (!json) {
    bench::banner("serving_cache: repeat-traffic hit rate vs working-set size, cache on/off",
                  "serving extension (determinism => content-addressable results)", ctx);
    std::printf("%-6s %9s %9s %6s %8s %8s %8s %10s %14s %9s\n", "cache", "distinct", "requests",
                "hits", "misses", "leases", "hit%", "wall_ms", "checksum", "req/s");
  }

  std::vector<cache_result> rows;
  bool pass = true;
  for (size_t distinct : kDistinct) {
    long long checksum[2] = {0, 0};
    for (int on = 0; on <= 1; ++on) {
      cache_result r = run_mode(on != 0, distinct, n, ctx);
      checksum[on] = r.checksum;
      // The invariants the cache exists to deliver: with the cache on,
      // only the working set executes; off, everything does.
      uint64_t want_leases = on != 0 ? distinct : kRequests;
      pass = pass && r.leases == want_leases && r.stats.batches == want_leases &&
             r.cached_responses == r.stats.cache_hits &&
             r.stats.cache_hits == (on != 0 ? kRequests - distinct : 0);
      if (!json) {
        std::printf("%-6s %9zu %9zu %6llu %8llu %8llu %7.1f%% %10.2f %14lld %9.0f\n",
                    on != 0 ? "on" : "off", distinct, kRequests,
                    static_cast<unsigned long long>(r.stats.cache_hits),
                    static_cast<unsigned long long>(r.stats.cache_misses),
                    static_cast<unsigned long long>(r.leases),
                    100.0 * static_cast<double>(r.stats.cache_hits) /
                        static_cast<double>(kRequests),
                    r.wall_s * 1e3, r.checksum,
                    static_cast<double>(kRequests) / r.wall_s);
      }
      rows.push_back(std::move(r));
    }
    pass = pass && checksum[0] == checksum[1];  // the cache never changes answers
  }

  if (json) {
    pp::json::writer w;
    bench::begin_envelope(w, "serving_cache",
                          {"solver", "n", "requests", "pass"},
                          {"cache", "distinct", "cache_hits", "cache_misses", "deduped",
                           "submitted", "batches", "leases", "cached_responses",
                           "score_checksum"});
    w.member("solver", kSolver);
    w.member("n", static_cast<uint64_t>(n)).member("requests", static_cast<uint64_t>(kRequests));
    w.member("pass", pass);
    w.key("rows").begin_array();
    for (const auto& r : rows) {
      w.begin_object();
      w.member("cache", r.cache_on).member("distinct", static_cast<uint64_t>(r.distinct));
      w.member("cache_hits", r.stats.cache_hits).member("cache_misses", r.stats.cache_misses);
      w.member("deduped", r.stats.deduped).member("submitted", r.stats.submitted);
      w.member("batches", r.stats.batches).member("leases", r.leases);
      w.member("cached_responses", r.cached_responses);
      w.member("score_checksum", static_cast<int64_t>(r.checksum));
      // Timing is environment-dependent — reported, never baseline-compared.
      w.member("wall_seconds", r.wall_s);
      w.member("requests_per_s", static_cast<double>(kRequests) / r.wall_s);
      w.end_object();
    }
    w.end_array().end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("invariants (leases == working set with cache on, == requests off, "
                "checksums equal) -> %s\n", pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}
