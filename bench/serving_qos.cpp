// serving_qos: interactive tail latency under a saturating batch-class
// background load, priority classes ON vs OFF.
//
// The QoS question for the serving engine (src/serve/): when throughput
// traffic keeps the admission queue non-empty, what happens to the tail
// latency of a small latency-sensitive request? Setup:
//
//   background  B closed-loop clients submitting batch-class requests of a
//               chunky solve (each client: submit, wait, repeat — so the
//               queue always holds ~B batch requests);
//   probes      one client submitting an interactive-class request of a
//               tiny solve every `think` ms, measuring submit -> response.
//
// Both modes run the identical workload; the only difference is
// engine_options::priority_classes:
//
//   OFF  one FIFO queue: every probe waits behind ~B queued batch solves;
//   ON   interactive pops first: a probe waits only for the run already
//        on the executor (the engine never preempts a running solve —
//        cancellation is cooperative and deadline-driven, not a scheduler
//        hook), then jumps every queued batch request.
//
// Expected shape: interactive p99 strictly lower with priority classes on
// — roughly (residual of one background solve + probe solve) vs (~B
// background solves). Batch-class throughput is unaffected to first order
// (the probes are a negligible fraction of total work).
//
// Env: REPRO_SCALE scales input sizes, PP_SEED the base seed. The final
// line prints PASS/FAIL on "p99 on < p99 off".
//
// With --json, a single envelope is printed instead. Latencies are
// environment noise, so the committed baseline BENCH_serving_qos.json locks
// only the deterministic fields (the config echo, and per-mode: every probe
// completed, nothing expired, nothing failed — the QoS layer must never
// trade correctness for latency); the p99 comparison stays a human-mode
// assertion. Regenerate with
// `bench/serving_qos --json > BENCH_serving_qos.json`.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/json.h"
#include "core/registry.h"
#include "serve/engine.h"

namespace {

constexpr const char* kSolver = "lis/parallel";

struct qos_result {
  std::vector<double> probe_ms;  // per-probe submit -> response latency
  uint64_t background_done = 0;
  pp::serve::engine_stats stats;
};

double pct(std::vector<double> xs, size_t p) {  // nearest-rank percentile
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  size_t rank = (xs.size() * p + 99) / 100;
  return xs[rank == 0 ? 0 : rank - 1];
}

qos_result run_mode(bool priority_on, size_t n_bg, size_t n_probe, size_t probes,
                    unsigned bg_clients, const pp::context& base) {
  using namespace std::chrono;
  pp::serve::engine_options opt;
  opt.max_inflight_runs = 1;  // one executor: the contended resource
  opt.workers_per_run = 2;
  // Coalescing off: with one shared solver, FIFO-mode gathers would pull a
  // probe into a background flush and blur the comparison — this bench
  // isolates pure pop-order QoS (serving_async covers batching).
  opt.batch_window = microseconds{0};
  opt.max_batch = 1;
  opt.queue_capacity = 256;
  opt.priority_classes = priority_on;
  opt.ctx = base;
  pp::serve::engine eng(opt);

  auto& reg = pp::registry::instance();
  auto bg_in = reg.make_input("lis", n_bg, base.seed + 1);
  auto probe_in = reg.make_input("lis", n_probe, base.seed + 2);

  qos_result out;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bg_done{0};
  std::vector<std::thread> bg;
  for (unsigned c = 0; c < bg_clients; ++c) {
    bg.emplace_back([&, c] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        pp::serve::request req;
        req.solver = kSolver;
        req.input = bg_in;
        req.seed = 1000 + c * 1'000'000 + i++;
        req.prio = pp::serve::priority::batch;
        auto fut = eng.submit(std::move(req));
        if (!fut.valid()) break;
        fut.get();
        bg_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let the background fill the queue before probing.
  std::this_thread::sleep_for(milliseconds(100));
  for (size_t p = 0; p < probes; ++p) {
    pp::serve::request req;
    req.solver = kSolver;
    req.input = probe_in;
    req.seed = 9000 + p;
    req.prio = pp::serve::priority::interactive;
    auto t0 = steady_clock::now();
    auto fut = eng.submit(std::move(req));
    pp::serve::response r = fut.get();
    double ms = duration<double, std::milli>(steady_clock::now() - t0).count();
    if (r.ok()) out.probe_ms.push_back(ms);
    std::this_thread::sleep_for(milliseconds(10));  // probe think time
  }

  stop.store(true);
  for (auto& t : bg) t.join();
  out.stats = eng.stats();
  eng.stop(/*drain=*/false);
  out.background_done = bg_done.load();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::has_flag(argc, argv, "--json");
  pp::context ctx = bench::env_context().with_backend(pp::backend_kind::native);
  const size_t n_bg = bench::scaled(1'500);    // chunky background solve
  const size_t n_probe = bench::scaled(150);   // tiny interactive solve
  const size_t probes = 30;
  const unsigned bg_clients = 4;

  if (!json) {
    std::printf("serving_qos: interactive p99 under saturating batch load (%s, %u bg clients,\n"
                "             bg n=%zu, probe n=%zu, %zu probes)\n",
                kSolver, bg_clients, n_bg, n_probe, probes);
    std::printf("%-16s %10s %10s %10s %12s %10s\n", "priority_classes", "p50_ms", "p99_ms",
                "max_ms", "bg_done", "batches");
  }

  double p99[2] = {0, 0};
  std::vector<qos_result> rows;
  for (int on = 0; on <= 1; ++on) {
    auto r = run_mode(on != 0, n_bg, n_probe, probes, bg_clients, ctx);
    p99[on] = pct(r.probe_ms, 99);
    if (!json) {
      std::printf("%-16s %10.2f %10.2f %10.2f %12llu %10llu\n", on ? "on" : "off",
                  pct(r.probe_ms, 50), p99[on],
                  r.probe_ms.empty() ? 0.0
                                     : *std::max_element(r.probe_ms.begin(), r.probe_ms.end()),
                  static_cast<unsigned long long>(r.background_done),
                  static_cast<unsigned long long>(r.stats.batches));
    }
    rows.push_back(std::move(r));
  }

  if (json) {
    // The deterministic contract of the QoS layer: both modes answer every
    // probe, drop nothing to deadlines, fail nothing. The p99 ordering is
    // timing and stays out of the baseline.
    bool pass = true;
    for (const auto& r : rows)
      pass = pass && r.probe_ms.size() == probes && r.stats.expired == 0 && r.stats.failed == 0;
    pp::json::writer w;
    bench::begin_envelope(w, "serving_qos",
                          {"solver", "bg_clients", "n_bg", "n_probe", "probes", "pass"},
                          {"priority_classes", "probes_completed", "expired", "failed"});
    w.member("solver", kSolver).member("bg_clients", static_cast<uint64_t>(bg_clients));
    w.member("n_bg", static_cast<uint64_t>(n_bg)).member("n_probe", static_cast<uint64_t>(n_probe));
    w.member("probes", static_cast<uint64_t>(probes)).member("pass", pass);
    w.key("rows").begin_array();
    for (size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      w.begin_object();
      w.member("priority_classes", i == 1);
      w.member("probes_completed", static_cast<uint64_t>(r.probe_ms.size()));
      w.member("expired", r.stats.expired).member("failed", r.stats.failed);
      // Environment-dependent — reported, never baseline-compared.
      w.member("p50_ms", pct(r.probe_ms, 50)).member("p99_ms", pct(r.probe_ms, 99));
      w.member("background_done", r.background_done).member("batches", r.stats.batches);
      w.end_object();
    }
    w.end_array().end_object();
    std::printf("%s\n", w.str().c_str());
    return pass ? 0 : 1;
  }

  bool pass = p99[1] < p99[0];
  std::printf("interactive p99: %.2f ms (on) vs %.2f ms (off) -> %s\n", p99[1], p99[0],
              pass ? "PASS (priority classes cut the interactive tail)" : "FAIL");
  return pass ? 0 : 1;
}
