// Fig. 6: Delta-stepping running time vs Delta, for several minimum edge
// weights w*.
//
// Paper setup: Twitter (41.7M vertices / 1.47B edges) and Friendster
// (65.6M / 3.61B), w_max = 2^23, w* swept 2^17..2^22, Delta swept
// 2^16..2^26. Claim: on low-diameter graphs the best Delta is within 2x of
// w* when w*/w_max is large (work-efficiency wins); for small w*,
// Delta = w* under-parallelizes. On road-like graphs Delta = w* is *not*
// best (frontiers too small).
//
// Substitution (DESIGN.md §3): Twitter/Friendster -> synthetic RMAT
// power-law (low diameter); road graphs -> 2D grid (high diameter).
#include <cinttypes>
#include <cstdio>

#include "algos/sssp.h"
#include "bench_common.h"
#include "graph/generators.h"

namespace {

void sweep(const pp::wgraph& wg, const char* name) {
  std::printf("\n--- %s: n=%u, m=%zu, w*=%u, wmax=%u ---\n", name, wg.num_vertices(),
              wg.num_edges(), wg.min_weight(), wg.max_weight());
  std::printf("%10s %10s %10s %12s %12s\n", "log2(dlt)", "time(s)", "buckets", "substeps",
              "relax/m");
  auto dj = pp::sssp_dijkstra(wg, 0);
  pp::scoped_scheduler sched(pp::current_context());  // one pool lease for the whole sweep
  double best_t = 1e100;
  uint32_t best_delta = 0;
  for (uint32_t ld = 14; ld <= 26; ld += 2) {
    uint32_t delta = 1u << ld;
    pp::sssp_result r;
    double t = bench::time_s([&] { r = pp::sssp_delta_stepping(wg, 0, delta); });
    if (r.dist != dj.dist) {
      std::printf("MISMATCH at delta=2^%u!\n", ld);
      std::exit(1);
    }
    std::printf("%10u %10.3f %10zu %12zu %12.2f\n", ld, t, r.stats.rounds, r.stats.substeps,
                static_cast<double>(r.stats.relaxations) / wg.num_edges());
    if (t < best_t) {
      best_t = t;
      best_delta = delta;
    }
  }
  std::printf("best Delta = 2^%d vs w* = 2^%d\n", best_delta == 0 ? -1 : (int)(31 - __builtin_clz(best_delta)),
              (int)(31 - __builtin_clz(wg.min_weight())));
}

}  // namespace

int main() {
  bench::banner("SSSP: Delta-stepping time vs Delta for several w*", "Fig. 6, Sec. 6.3");
  constexpr uint32_t wmax = 1u << 23;

  // Low-diameter power-law proxy for Twitter/Friendster.
  auto social = pp::rmat_graph(static_cast<uint32_t>(bench::scaled(1u << 17)),
                               bench::scaled(1u << 21), 11);
  for (uint32_t lw : {22u, 20u, 17u}) {
    auto wg = pp::add_weights(social, 1u << lw, wmax, 13);
    sweep(wg, "rmat-social");
  }

  // High-diameter grid proxy for road networks.
  uint32_t side = static_cast<uint32_t>(bench::scaled(300));
  auto grid = pp::grid_graph(side, side);
  {
    auto wg = pp::add_weights(grid, 1u << 22, wmax, 17);
    sweep(wg, "grid-road");
  }

  std::printf("\nShape check vs paper: on the low-diameter graph the best Delta is\n"
              "within ~2-4x of w* when w* is close to wmax, and moves above w* as\n"
              "w* shrinks; on the grid, Delta = w* is not the best choice.\n");
  return 0;
}
